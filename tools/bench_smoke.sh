#!/usr/bin/env bash
#===- tools/bench_smoke.sh - build + run the JSON-emitting micro benches ---===#
#
# Part of AsyncG-C++. MIT License.
#
# Smoke-checks the benchmark JSON pipeline: configures a Release build,
# runs micro_ag, micro_eventloop, micro_ring, micro_codec, and a short
# soak_steady_state config with --json, and validates that each emitted
# BENCH_<name>.json matches the BenchReport schema (bench / config /
# metrics[{name, value, unit}], including the automatic peak_rss metric).
# Exits non-zero on any build, run, or schema failure.
#
# With --check, additionally:
#   - self-compares every emitted JSON with tools/bench_compare.py (a
#     report must never regress against itself — catches schema/parse
#     drift in the compare tool and the reports together), and when
#     --baseline DIR is given, diffs each BENCH_<name>.json against the
#     same-named file in DIR with a 15% threshold (wall-clock reports use
#     bench_compare's own wall tolerance class);
#   - runs the wire legs (Linux only, skipped with a notice elsewhere):
#     acmeair_cluster --serve across 2 SO_REUSEPORT loops on the epoll
#     backend and again on the io_uring backend (skipped loudly when the
#     runtime capability probe says the host kernel cannot do it), each
#     under an agload burst, gating nonzero req/s and zero dropped
#     connections, then a SIGTERM shutdown that must exit cleanly;
#   - runs the fault leg (Linux only): the same 2-loop epoll server with
#     the default deterministic fault mix injected (--fault-spec default),
#     driven by agload with per-request timeouts and a retry budget; gates
#     every request completed with none abandoned, plus the same SIGTERM
#     clean-shutdown check — a faulted server must still drain and exit 0;
#   - configures an ASan+UBSan build (-DASYNCG_ASAN=ON) and runs the
#     retirement test suite plus the short soak under it: the retirement
#     freelists recycle node/edge/adjacency storage, which is exactly the
#     kind of code ASan exists for;
#   - runs the trace-codec leg under the same ASan build: the replay
#     parity + decoder robustness suites (trace_replay_test,
#     trace_codec_v4_test — truncated/bit-flipped traces through both
#     transports) and micro_codec --parity-only, so the v4 frame
#     decoder's pointer arithmetic is sanitizer-verified on every real
#     encode/decode path;
#   - runs the ingest leg: records a Table-I case trace with asyncg_cli
#     --record, then diffs agingest --serial against agingest --jobs 4
#     (warnings on stdout, DOT via --dot) — the ordered-commit byte-parity
#     contract checked end to end through the CLI tools;
#   - configures a TSan build (-DASYNCG_TSAN=ON) and runs the SPSC ring
#     and multi-loop cluster tests under it, plus the ingest test suite —
#     the MpmcQueue stress and the jobs>=2 decode pool (workers + ordered
#     committer + steal path) are the new concurrent surface.
#
# Usage: tools/bench_smoke.sh [--check] [--baseline DIR] [build-dir]
#        (default build dir: build-bench-smoke)
#===------------------------------------------------------------------------===#

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
CHECK_MODE=0
BASELINE_DIR=""
while [ $# -gt 0 ]; do
  case "$1" in
    --check) CHECK_MODE=1; shift ;;
    --baseline) BASELINE_DIR="$2"; shift 2 ;;
    *) break ;;
  esac
done
BUILD_DIR="${1:-$REPO_ROOT/build-bench-smoke}"
OUT_DIR="$BUILD_DIR/bench-json"

echo "== configuring Release build in $BUILD_DIR"
cmake -S "$REPO_ROOT" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release >/dev/null

echo "== building micro_ag + micro_eventloop + micro_ring + micro_codec"
echo "   + soak_steady_state + cluster_scaling + ingest_scaling"
cmake --build "$BUILD_DIR" --target micro_ag micro_eventloop micro_ring \
  micro_codec soak_steady_state cluster_scaling ingest_scaling -j >/dev/null

mkdir -p "$OUT_DIR"

run_bench() {
  local name="$1"
  shift
  local json="$OUT_DIR/BENCH_${name}.json"
  echo "== running $name --json $json"
  "$BUILD_DIR/bench/$name" --json "$json" "$@" >/dev/null
  [ -s "$json" ] || { echo "FAIL: $json missing or empty"; exit 1; }
}

run_bench micro_ag --benchmark_min_time=0.01
run_bench micro_eventloop --benchmark_min_time=0.01
run_bench micro_ring --benchmark_min_time=0.01
# Short soak: exercises the retire-on/off comparison end to end; the
# 10%-footprint acceptance gates only arm at >= 10000 requests.
run_bench soak_steady_state --requests 2000 --clients 8
# Cluster scaling: 1/2/4 loops, virtual-throughput scaling and merge gates.
run_bench cluster_scaling
# Trace codec: v3 vs v4 size + ingest speed, DOT parity, and the exit-code
# gates (>=4x size, derived slow-storage >=2x, cold floor >=1.2x).
run_bench micro_codec
# Parallel ingest: decode-stage speedup gate (>=1.25x pipelined over serial
# replay), jobs sweep, streaming merge, and byte parity at every job count.
run_bench ingest_scaling

echo "== validating schema"
python3 - "$OUT_DIR"/BENCH_*.json <<'EOF'
import json
import sys

failed = False
for path in sys.argv[1:]:
    try:
        with open(path) as f:
            doc = json.load(f)
        assert isinstance(doc, dict), "top level must be an object"
        assert isinstance(doc.get("bench"), str) and doc["bench"], \
            "missing 'bench' name"
        assert isinstance(doc.get("config"), dict), "missing 'config' object"
        metrics = doc.get("metrics")
        assert isinstance(metrics, list) and metrics, \
            "'metrics' must be a non-empty array"
        for m in metrics:
            assert isinstance(m.get("name"), str) and m["name"], \
                "metric missing 'name'"
            assert isinstance(m.get("value"), (int, float)), \
                "metric missing numeric 'value'"
            assert isinstance(m.get("unit"), str) and m["unit"], \
                "metric missing 'unit'"
        print(f"ok   {path} ({len(metrics)} metrics)")
    except Exception as e:
        print(f"FAIL {path}: {e}")
        failed = True
sys.exit(1 if failed else 0)
EOF

if [ "$CHECK_MODE" = 1 ]; then
  echo "== [check] bench_compare self-comparison sanity"
  for json in "$OUT_DIR"/BENCH_*.json; do
    python3 "$REPO_ROOT/tools/bench_compare.py" "$json" "$json" \
      --threshold 0.01 >/dev/null \
      || { echo "FAIL: $json does not compare clean against itself"; exit 1; }
  done
  if [ -n "$BASELINE_DIR" ]; then
    echo "== [check] comparing against baseline dir $BASELINE_DIR"
    for json in "$OUT_DIR"/BENCH_*.json; do
      base="$BASELINE_DIR/$(basename "$json")"
      if [ -f "$base" ]; then
        python3 "$REPO_ROOT/tools/bench_compare.py" "$base" "$json" \
          --threshold 15
      else
        echo "   (no baseline for $(basename "$json"), skipping)"
      fi
    done
  fi

  # One wire leg: --serve on $1 (kernel backend) at $2 (port), agload
  # burst, gates, SIGTERM clean shutdown.
  run_wire_leg() {
    local kernel="$1" port="$2"
    local json="$OUT_DIR/agload_burst_${kernel}.json"
    "$BUILD_DIR/tools/acmeair_cluster" --kernel "$kernel" --loops 2 --serve \
      --port "$port" >"$OUT_DIR/wire_server_${kernel}.log" 2>&1 &
    local pid=$!
    if ! "$BUILD_DIR/tools/agload" --port "$port" --conns 8 \
        --requests 2000 --json "$json" >/dev/null; then
      kill -TERM "$pid" 2>/dev/null || true
      echo "FAIL: agload burst against the $kernel server failed"
      exit 1
    fi
    kill -TERM "$pid"
    wait "$pid" \
      || { echo "FAIL: $kernel server did not shut down cleanly on SIGTERM"; \
           exit 1; }
    python3 - "$json" "$kernel" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
leg = sys.argv[2]
assert doc["req_per_sec"] > 0, f"{leg} wire leg served zero req/s"
assert doc["dropped_conns"] == 0, \
    f"{leg} wire leg dropped {doc['dropped_conns']} connection(s)"
assert doc["completed"] == 2000 and doc["errors"] == 0, \
    f"{leg} wire leg: completed={doc['completed']} errors={doc['errors']}"
print(f"ok   {leg} wire leg: {doc['req_per_sec']:.0f} req/s, "
      f"p99 {doc['p99_us']:.0f} us, 0 dropped")
EOF
  }

  if [ "$(uname -s)" = "Linux" ]; then
    echo "== [check] wire leg: AcmeAir on the epoll backend + agload burst"
    cmake --build "$BUILD_DIR" --target acmeair_cluster agload -j >/dev/null
    run_wire_leg epoll 9560
    echo "== [check] epoll wire leg OK"
    # The uring leg needs more than "Linux": the runtime capability probe
    # must clear the host kernel (op support, no seccomp veto). Skip loudly
    # when it does not — CI on such hosts stays green and says why.
    if "$BUILD_DIR/tools/acmeair_cluster" --probe | grep -q '^uring: available'; then
      echo "== [check] wire leg: AcmeAir on the io_uring backend + agload burst"
      run_wire_leg uring 9562
      echo "== [check] uring wire leg OK"
    else
      echo "== [check] uring wire leg SKIPPED: the io_uring capability" \
           "probe reports unavailable on this host:"
      "$BUILD_DIR/tools/acmeair_cluster" --probe | sed 's/^/     /'
    fi

    # Fault leg: the epoll server again, now with the default deterministic
    # fault mix injected (DESIGN.md §5i). agload drives it with per-request
    # timeouts and a retry budget; its exit status gates that every request
    # completed with zero errors and none abandoned. The SIGTERM shutdown
    # must still drain cleanly — injected faults must degrade service, not
    # the process.
    echo "== [check] fault leg: epoll server under --fault-spec default"
    fault_json="$OUT_DIR/agload_fault_epoll.json"
    "$BUILD_DIR/tools/acmeair_cluster" --kernel epoll --loops 2 --serve \
      --port 9566 --fault-spec default --fault-seed 7 \
      >"$OUT_DIR/wire_server_fault.log" 2>&1 &
    fault_pid=$!
    if ! "$BUILD_DIR/tools/agload" --port 9566 --conns 8 --requests 2000 \
        --timeout-ms 2000 --retries 3 --json "$fault_json" >/dev/null; then
      kill -TERM "$fault_pid" 2>/dev/null || true
      echo "FAIL: agload burst against the faulted epoll server failed"
      exit 1
    fi
    kill -TERM "$fault_pid"
    wait "$fault_pid" \
      || { echo "FAIL: faulted epoll server did not shut down cleanly on" \
                "SIGTERM"; exit 1; }
    python3 - "$fault_json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["completed"] == 2000 and doc["errors"] == 0, \
    f"fault leg: completed={doc['completed']} errors={doc['errors']}"
assert doc["abandoned"] == 0, \
    f"fault leg abandoned {doc['abandoned']} request(s)"
print(f"ok   fault leg: {doc['req_per_sec']:.0f} req/s, "
      f"{doc['dropped_conns']:.0f} dropped conn(s) recovered via "
      f"{doc['retries']:.0f} retries, 0 abandoned")
EOF
    echo "== [check] fault leg OK"
  else
    echo "== [check] wire legs SKIPPED: the real kernel backends need" \
         "Linux (this is $(uname -s)); virtual-time legs above still ran"
  fi

  ASAN_DIR="$BUILD_DIR-asan"
  echo "== [check] configuring ASan+UBSan build in $ASAN_DIR"
  cmake -S "$REPO_ROOT" -B "$ASAN_DIR" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DASYNCG_ASAN=ON >/dev/null
  echo "== [check] building retirement_test + soak_steady_state"
  cmake --build "$ASAN_DIR" --target retirement_test soak_steady_state -j \
    >/dev/null
  echo "== [check] running retirement tests under ASan"
  # detect_leaks=0: the simulated network layer keeps sockets alive in
  # closure cycles until process exit (a known property of the simulator,
  # not of the graph). Use-after-free / overflow detection — what the
  # freelist recycling needs — is unaffected.
  ASAN_OPTIONS=detect_leaks=0 "$ASAN_DIR/tests/retirement_test"
  echo "== [check] running short soak under ASan"
  ASAN_OPTIONS=detect_leaks=0 \
    "$ASAN_DIR/bench/soak_steady_state" --requests 1000 --clients 4 >/dev/null
  echo "== [check] ASan retirement checks OK"

  echo "== [check] building trace codec leg (tests + micro_codec) under ASan"
  cmake --build "$ASAN_DIR" --target trace_replay_test trace_codec_v4_test \
    micro_codec -j >/dev/null
  echo "== [check] running replay parity + decoder robustness under ASan"
  ASAN_OPTIONS=detect_leaks=0 "$ASAN_DIR/tests/trace_replay_test"
  ASAN_OPTIONS=detect_leaks=0 "$ASAN_DIR/tests/trace_codec_v4_test"
  echo "== [check] running micro_codec --parity-only under ASan"
  ASAN_OPTIONS=detect_leaks=0 \
    "$ASAN_DIR/bench/micro_codec" --parity-only >/dev/null
  echo "== [check] ASan trace codec checks OK"

  echo "== [check] building fault-injection leg (fault_kernel_test) under ASan"
  cmake --build "$ASAN_DIR" --target fault_kernel_test -j >/dev/null
  echo "== [check] running fault injection + degradation ladder under ASan"
  # The injected error paths (EINTR retries, short-write resubmission,
  # reset teardown, ladder shedding) are exactly the branches normal runs
  # never take; ASan is what turns "survives faults" into "survives faults
  # without corrupting memory".
  ASAN_OPTIONS=detect_leaks=0 "$ASAN_DIR/tests/fault_kernel_test"
  echo "== [check] ASan fault injection checks OK"

  # Ingest leg: the ordered-commit parity contract through the CLI tools.
  # A recorded case trace must produce byte-identical warnings and DOT
  # whether agingest replays it serially or through the 4-thread decode
  # pool.
  echo "== [check] ingest leg: asyncg_cli --record + agingest serial-vs-jobs-4 diff"
  cmake --build "$BUILD_DIR" --target asyncg_cli agingest -j >/dev/null
  ingest_trace="$OUT_DIR/ingest_check.agtrace"
  "$BUILD_DIR/tools/asyncg_cli" --case SO-31978347 --record "$ingest_trace" \
    --quiet >/dev/null
  "$BUILD_DIR/tools/agingest" --in "$ingest_trace" --serial \
    --dot "$OUT_DIR/ingest_serial.dot" >"$OUT_DIR/ingest_serial.warn" 2>/dev/null
  "$BUILD_DIR/tools/agingest" --in "$ingest_trace" --jobs 4 \
    --dot "$OUT_DIR/ingest_jobs4.dot" >"$OUT_DIR/ingest_jobs4.warn" 2>/dev/null
  diff -q "$OUT_DIR/ingest_serial.warn" "$OUT_DIR/ingest_jobs4.warn" \
    || { echo "FAIL: agingest --jobs 4 warnings diverged from --serial"; exit 1; }
  diff -q "$OUT_DIR/ingest_serial.dot" "$OUT_DIR/ingest_jobs4.dot" \
    || { echo "FAIL: agingest --jobs 4 DOT diverged from --serial"; exit 1; }
  echo "== [check] ingest parity leg OK"

  TSAN_DIR="$BUILD_DIR-tsan"
  echo "== [check] configuring TSan build in $TSAN_DIR"
  cmake -S "$REPO_ROOT" -B "$TSAN_DIR" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DASYNCG_TSAN=ON >/dev/null
  echo "== [check] building spsc_ring_test + cluster_test + ingest_test"
  cmake --build "$TSAN_DIR" --target spsc_ring_test cluster_test ingest_test \
    -j >/dev/null
  echo "== [check] running SPSC ring tests under TSan"
  "$TSAN_DIR/tests/spsc_ring_test"
  echo "== [check] running multi-loop cluster tests under TSan"
  "$TSAN_DIR/tests/cluster_test"
  echo "== [check] running ingest decode pool + MpmcQueue tests under TSan"
  "$TSAN_DIR/tests/ingest_test"
  echo "== [check] TSan concurrency checks OK"
fi

echo "== bench smoke OK"
