#!/usr/bin/env bash
#===- tools/bench_smoke.sh - build + run the JSON-emitting micro benches ---===#
#
# Part of AsyncG-C++. MIT License.
#
# Smoke-checks the benchmark JSON pipeline: configures a Release build,
# runs micro_ag, micro_eventloop, and micro_ring with --json, and validates that each
# emitted BENCH_<name>.json matches the BenchReport schema
# (bench / config / metrics[{name, value, unit}]). Exits non-zero on any
# build, run, or schema failure.
#
# Usage: tools/bench_smoke.sh [build-dir]   (default: build-bench-smoke)
#===------------------------------------------------------------------------===#

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-bench-smoke}"
OUT_DIR="$BUILD_DIR/bench-json"

echo "== configuring Release build in $BUILD_DIR"
cmake -S "$REPO_ROOT" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release >/dev/null

echo "== building micro_ag + micro_eventloop + micro_ring"
cmake --build "$BUILD_DIR" --target micro_ag micro_eventloop micro_ring -j >/dev/null

mkdir -p "$OUT_DIR"

run_bench() {
  local name="$1"
  local json="$OUT_DIR/BENCH_${name}.json"
  echo "== running $name --json $json"
  "$BUILD_DIR/bench/$name" --json "$json" --benchmark_min_time=0.01 \
    >/dev/null
  [ -s "$json" ] || { echo "FAIL: $json missing or empty"; exit 1; }
}

run_bench micro_ag
run_bench micro_eventloop
run_bench micro_ring

echo "== validating schema"
python3 - "$OUT_DIR"/BENCH_*.json <<'EOF'
import json
import sys

failed = False
for path in sys.argv[1:]:
    try:
        with open(path) as f:
            doc = json.load(f)
        assert isinstance(doc, dict), "top level must be an object"
        assert isinstance(doc.get("bench"), str) and doc["bench"], \
            "missing 'bench' name"
        assert isinstance(doc.get("config"), dict), "missing 'config' object"
        metrics = doc.get("metrics")
        assert isinstance(metrics, list) and metrics, \
            "'metrics' must be a non-empty array"
        for m in metrics:
            assert isinstance(m.get("name"), str) and m["name"], \
                "metric missing 'name'"
            assert isinstance(m.get("value"), (int, float)), \
                "metric missing numeric 'value'"
            assert isinstance(m.get("unit"), str) and m["unit"], \
                "metric missing 'unit'"
        print(f"ok   {path} ({len(metrics)} metrics)")
    except Exception as e:
        print(f"FAIL {path}: {e}")
        failed = True
sys.exit(1 if failed else 0)
EOF

echo "== bench smoke OK"
