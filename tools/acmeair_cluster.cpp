//===- acmeair_cluster.cpp - run AcmeAir across N event loops ------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Runs the AcmeAir workload across a sharded multi-loop cluster (cluster
// mode's `node cluster` analogue) and reports per-shard and merged-graph
// results:
//
//   acmeair_cluster [--loops N] [--requests N] [--clients N] [--seed N]
//                   [--kernel sim|epoll|uring|auto] [--port N] [--probe]
//                   [--sync] [--no-gossip] [--baseline] [--dot FILE]
//                   [--record-dir DIR] [--trace-version N]
//                   [--sample-budget PCT] [--degrade]
//                   [--fault-spec kind:rate,...|default] [--fault-seed N]
//
// --kernel epoll or uring (Linux only) swaps the virtual-time kernel for a
// real reactor: every loop binds --port with SO_REUSEPORT, the built-in
// wire load generator drives --clients keep-alive HTTP connections, and
// the numbers reported are wall-clock (including the kernel-syscall cost
// model — syscalls/request is where io_uring's batched submission shows).
// --kernel auto probes uring -> epoll -> sim and prints why it chose.
// --probe prints each backend's availability and exits.
//
// --record-dir writes one `.agtrace` per shard (shard<S>.agtrace) in the
// chosen --trace-version (default v4 columnar frames) for offline replay
// and merge. --sample-budget caps each shard pipeline's instrumentation
// overhead at PCT percent of loop wall time; the dropped decoration
// coverage is reported per shard.
//
// --fault-spec enables deterministic fault injection (DESIGN.md §5i) at
// the given per-decision rates; --fault-seed selects the schedule (each
// shard derives its own seed, so the same seed replays the identical
// cluster-wide schedule). --degrade switches the shard pipelines from
// blocking backpressure to the graceful-degradation ladder.
//
// Each loop runs on its own thread with its own runtime, AcmeAir server,
// workload shard, and Async Graph builder (behind a per-shard SPSC ring
// pipeline unless --sync); after the loops join, the per-shard graphs are
// merged with cross-loop edges and the merged warnings are printed.
//
//===----------------------------------------------------------------------===//

#include "apps/cluster/Harness.h"
#include "viz/Dot.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

using namespace asyncg;

namespace {

/// The running harness, for the --serve signal handler (stop() is an
/// atomic store, so calling it from the handler is safe).
cluster::ClusterHarness *ActiveHarness = nullptr;

extern "C" void handleStopSignal(int) {
  if (ActiveHarness)
    ActiveHarness->stop();
}

} // namespace

int main(int argc, char **argv) {
  cluster::ClusterConfig Cfg;
  Cfg.TotalRequests = 2000;
  Cfg.TotalClients = 8;
  Cfg.Mode = ag::PipelineMode::Async;
  std::string DotPath;

  for (int I = 1; I < argc; ++I) {
    auto Num = [&](const char *Flag) -> long long {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", Flag);
        std::exit(2);
      }
      return std::atoll(argv[++I]);
    };
    if (!std::strcmp(argv[I], "--loops"))
      Cfg.Loops = static_cast<uint32_t>(Num("--loops"));
    else if (!std::strcmp(argv[I], "--requests"))
      Cfg.TotalRequests = static_cast<uint64_t>(Num("--requests"));
    else if (!std::strcmp(argv[I], "--clients"))
      Cfg.TotalClients = static_cast<int>(Num("--clients"));
    else if (!std::strcmp(argv[I], "--seed"))
      Cfg.Seed = static_cast<uint64_t>(Num("--seed"));
    else if (!std::strcmp(argv[I], "--port"))
      Cfg.Port = static_cast<int>(Num("--port"));
    else if (!std::strcmp(argv[I], "--kernel")) {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "--kernel needs a value\n");
        return 2;
      }
      if (!std::strcmp(argv[I + 1], "auto")) {
        ++I;
        std::string Why;
        Cfg.Backend = sim::resolveAutoKernelBackend(&Why);
        std::fprintf(stderr, "--kernel auto: %s\n", Why.c_str());
      } else if (!sim::parseKernelBackend(argv[++I], Cfg.Backend)) {
        std::fprintf(stderr,
                     "--kernel must be 'auto' or one of the backends "
                     "available here: %s\n",
                     sim::availableKernelBackendNames().c_str());
        return 2;
      }
    } else if (!std::strcmp(argv[I], "--probe")) {
      for (sim::KernelBackend B :
           {sim::KernelBackend::Sim, sim::KernelBackend::Epoll,
            sim::KernelBackend::Uring}) {
        std::string Why;
        sim::kernelBackendAvailable(B, &Why);
        std::printf("%s\n", Why.c_str());
      }
      std::string Why;
      sim::resolveAutoKernelBackend(&Why);
      std::printf("auto: %s\n", Why.c_str());
      return 0;
    } else if (!std::strcmp(argv[I], "--serve"))
      Cfg.ServeOnly = true;
    else if (!std::strcmp(argv[I], "--sync"))
      Cfg.Mode = ag::PipelineMode::Synchronous;
    else if (!std::strcmp(argv[I], "--no-gossip"))
      Cfg.Gossip = false;
    else if (!std::strcmp(argv[I], "--baseline"))
      Cfg.Instrument = false;
    else if (!std::strcmp(argv[I], "--trace-version"))
      Cfg.TraceVer = static_cast<uint32_t>(Num("--trace-version"));
    else if (!std::strcmp(argv[I], "--sample-budget")) {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "--sample-budget needs a value\n");
        return 2;
      }
      Cfg.SampleBudgetPct = std::atof(argv[++I]);
    } else if (!std::strcmp(argv[I], "--fault-spec")) {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "--fault-spec needs a value\n");
        return 2;
      }
      std::string Err;
      if (!sim::FaultSpec::parse(argv[++I], Cfg.Faults, &Err)) {
        std::fprintf(stderr, "--fault-spec: %s\n", Err.c_str());
        return 2;
      }
    } else if (!std::strcmp(argv[I], "--fault-seed"))
      Cfg.FaultSeed = static_cast<uint64_t>(Num("--fault-seed"));
    else if (!std::strcmp(argv[I], "--degrade"))
      Cfg.Policy = ag::BackpressurePolicy::Degrade;
    else if (!std::strcmp(argv[I], "--record-dir")) {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "--record-dir needs a value\n");
        return 2;
      }
      Cfg.RecordDir = argv[++I];
    } else if (!std::strcmp(argv[I], "--dot")) {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "--dot needs a value\n");
        return 2;
      }
      DotPath = argv[++I];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--loops N] [--requests N] [--clients N]"
                   " [--seed N]\n"
                   "          [--kernel sim|epoll|uring|auto] [--port N]"
                   " [--probe]\n"
                   "          [--sync] [--no-gossip] [--baseline]"
                   " [--dot FILE]\n"
                   "          [--record-dir DIR] [--trace-version N]"
                   " [--sample-budget PCT]\n"
                   "          [--degrade] [--fault-spec kind:rate,...]"
                   " [--fault-seed N]\n",
                   argv[0]);
      return 2;
    }
  }
  {
    std::string Why;
    if (!sim::kernelBackendAvailable(Cfg.Backend, &Why)) {
      std::fprintf(stderr,
                   "kernel backend '%s' is not available here (%s); "
                   "available: %s\n",
                   sim::kernelBackendName(Cfg.Backend), Why.c_str(),
                   sim::availableKernelBackendNames().c_str());
      return 2;
    }
  }
  if (Cfg.ServeOnly && Cfg.Backend == sim::KernelBackend::Sim) {
    std::fprintf(stderr, "--serve needs a real backend (--kernel "
                         "epoll|uring|auto); the sim backend has no wire "
                         "to serve\n");
    return 2;
  }
  if (Cfg.TraceVer < 2 || Cfg.TraceVer > trace::TraceVersion) {
    std::fprintf(stderr, "--trace-version must be 2..%u\n",
                 trace::TraceVersion);
    return 2;
  }
  if (Cfg.SampleBudgetPct < 0 || Cfg.SampleBudgetPct > 100) {
    std::fprintf(stderr, "--sample-budget must be in [0, 100]\n");
    return 2;
  }
  if (!Cfg.RecordDir.empty() && Cfg.Loops > 1 && Cfg.TraceVer < 3) {
    std::fprintf(stderr, "--record-dir with --loops > 1 needs "
                         "--trace-version >= 3 (ShardInfo records)\n");
    return 2;
  }
  if (Cfg.Loops == 0 || Cfg.Loops > jsrt::MaxShardId) {
    std::fprintf(stderr, "--loops must be 1..%u\n", jsrt::MaxShardId);
    return 2;
  }

  cluster::ClusterHarness Harness(Cfg);
  if (Cfg.ServeOnly) {
    ActiveHarness = &Harness;
    std::signal(SIGINT, handleStopSignal);
    std::signal(SIGTERM, handleStopSignal);
    std::fprintf(stderr, "serving on 127.0.0.1:%d across %u loop(s); "
                         "SIGINT/SIGTERM stops\n",
                 Cfg.Port, Cfg.Loops);
  }
  cluster::ClusterResult R = Harness.run();
  const bool WireMode = Cfg.Backend != sim::KernelBackend::Sim;

  std::printf("cluster: %u loop(s), %llu requests, %d clients, seed %llu, "
              "kernel %s\n",
              Cfg.Loops,
              static_cast<unsigned long long>(Cfg.TotalRequests),
              Cfg.TotalClients, static_cast<unsigned long long>(Cfg.Seed),
              sim::kernelBackendName(Cfg.Backend));
  std::printf("%-6s %10s %8s %8s %12s %7s %7s %10s\n", "shard", "completed",
              "errors", "served", "virtual(ms)", "sent", "recv", "records");
  for (size_t S = 0; S != R.Shards.size(); ++S) {
    const cluster::ShardResult &SR = R.Shards[S];
    std::printf("s%-5zu %10llu %8llu %8llu %12.2f %7llu %7llu %10llu\n", S,
                static_cast<unsigned long long>(SR.Completed),
                static_cast<unsigned long long>(SR.Errors),
                static_cast<unsigned long long>(SR.Served),
                static_cast<double>(SR.VirtualTimeUs) / 1000.0,
                static_cast<unsigned long long>(SR.Sent),
                static_cast<unsigned long long>(SR.Received),
                static_cast<unsigned long long>(SR.PushedRecords));
  }
  if (!Cfg.RecordDir.empty()) {
    uint64_t Bytes = 0;
    for (const cluster::ShardResult &SR : R.Shards)
      Bytes += SR.RecordedBytes;
    std::printf("recorded: v%u traces, %llu record bytes -> %s/shard*.agtrace\n",
                Cfg.TraceVer, static_cast<unsigned long long>(Bytes),
                Cfg.RecordDir.c_str());
  }
  if (Cfg.SampleBudgetPct > 0) {
    for (size_t S = 0; S != R.Shards.size(); ++S) {
      const ag::SamplingStats &SS = R.Shards[S].Sampling;
      std::printf("s%zu sampling: %llu/%llu ticks covered, %llu decoration "
                  "events skipped\n",
                  S, static_cast<unsigned long long>(SS.SampledTicks),
                  static_cast<unsigned long long>(SS.TotalTicks),
                  static_cast<unsigned long long>(SS.DroppedEvents));
    }
  }
  if (Cfg.Faults.any()) {
    std::printf("faults: spec %s, seed %llu: %llu injected over %llu "
                "decision(s)\n",
                Cfg.Faults.str().c_str(),
                static_cast<unsigned long long>(Cfg.FaultSeed),
                static_cast<unsigned long long>(R.FaultsInjected),
                static_cast<unsigned long long>(R.FaultDecisions));
    for (size_t S = 0; S != R.Shards.size(); ++S)
      std::printf("  s%zu digest %016llx (%llu injected)\n", S,
                  static_cast<unsigned long long>(R.Shards[S].FaultDigest),
                  static_cast<unsigned long long>(R.Shards[S].FaultsInjected));
    const sim::NetRecoveryStats &NR = R.Net;
    std::printf("  recovered: %llu EINTR retries, %llu accept pauses, "
                "%llu ENOBUFS backoffs, %llu short writes, %llu resets, "
                "%llu drained conn(s)\n",
                static_cast<unsigned long long>(NR.EintrRetries),
                static_cast<unsigned long long>(NR.AcceptPauses),
                static_cast<unsigned long long>(NR.EnobufsRetries),
                static_cast<unsigned long long>(NR.ShortWrites),
                static_cast<unsigned long long>(NR.ResetsInjected),
                static_cast<unsigned long long>(NR.DrainedConns));
  }
  if (Cfg.Policy == ag::BackpressurePolicy::Degrade) {
    const ag::DegradationStats &D = R.Degradation;
    std::printf("degradation ladder: %llu escalation(s), %llu recover(ies), "
                "%llu record(s) shed, %llu watchdog stall(s); "
                "tier ms lossless/sampled/structural %.1f/%.1f/%.1f\n",
                static_cast<unsigned long long>(D.Escalations),
                static_cast<unsigned long long>(D.Recoveries),
                static_cast<unsigned long long>(D.RecordsShed),
                static_cast<unsigned long long>(D.WatchdogStalls),
                static_cast<double>(D.TimeNs[0]) / 1e6,
                static_cast<double>(D.TimeNs[1]) / 1e6,
                static_cast<double>(D.TimeNs[2]) / 1e6);
  }
  if (WireMode) {
    std::printf("\nwire load: %llu completed, %llu errors, %llu dropped "
                "conn(s)\n",
                static_cast<unsigned long long>(R.Wire.Completed),
                static_cast<unsigned long long>(R.Wire.Errors),
                static_cast<unsigned long long>(R.Wire.DroppedConns));
    std::printf("wall-clock throughput: %.0f req/s, latency p50 %llu us, "
                "p90 %llu us, p99 %llu us\n",
                R.Wire.ReqPerSec,
                static_cast<unsigned long long>(R.Wire.P50Us),
                static_cast<unsigned long long>(R.Wire.P90Us),
                static_cast<unsigned long long>(R.Wire.P99Us));
    // In --serve mode requests are counted by the external client, not the
    // server, so a per-request figure is unknowable here rather than zero.
    char PerReq[32];
    if (R.Wire.Completed)
      std::snprintf(PerReq, sizeof(PerReq), "%.2f/request",
                    static_cast<double>(R.Sys.Syscalls) /
                        static_cast<double>(R.Wire.Completed));
    else
      std::snprintf(PerReq, sizeof(PerReq), "n/a per request");
    std::printf("kernel cost: %llu syscalls (%s), %llu enters, "
                "%llu sqes in %llu batches (max %llu), %llu completions, "
                "%llu zero-syscall reaps, %llu wakeups\n",
                static_cast<unsigned long long>(R.Sys.Syscalls), PerReq,
                static_cast<unsigned long long>(R.Sys.Enters),
                static_cast<unsigned long long>(R.Sys.SqesSubmitted),
                static_cast<unsigned long long>(R.Sys.SubmitBatches),
                static_cast<unsigned long long>(R.Sys.MaxSqeBatch),
                static_cast<unsigned long long>(R.Sys.Completions),
                static_cast<unsigned long long>(R.Sys.ZeroSyscallReaps),
                static_cast<unsigned long long>(R.Sys.Wakeups));
  } else {
    std::printf("\nvirtual throughput: %.0f req/s (slowest shard %.2f ms "
                "virtual)\n",
                R.VirtualThroughput,
                static_cast<double>(R.MaxVirtualTimeUs) / 1000.0);
  }
  std::printf("wall: %.3f s\n", R.WallSeconds);
  if (Cfg.Instrument) {
    std::printf("merged graph: %llu nodes, %llu edges, %llu ticks, "
                "%llu xloop edge(s), %llu warning(s)\n",
                static_cast<unsigned long long>(R.Merge.Nodes),
                static_cast<unsigned long long>(R.Merge.Edges),
                static_cast<unsigned long long>(R.Merge.Ticks),
                static_cast<unsigned long long>(R.Merge.CrossLoopEdges),
                static_cast<unsigned long long>(R.Warnings.size()));
    for (const std::string &W : R.Warnings)
      std::printf("  warning: %s\n", W.c_str());
  }

  if (!DotPath.empty() && Cfg.Instrument) {
    std::ofstream Out(DotPath);
    if (!Out) {
      std::fprintf(stderr, "cannot write %s\n", DotPath.c_str());
      return 1;
    }
    Out << viz::toDot(Harness.merged());
    std::printf("wrote %s\n", DotPath.c_str());
  }

  // Under fault injection a request may be abandoned after its retry
  // budget, and a retried request can draw a non-200 (its reconnect lands
  // on a sibling shard that never saw the session's login). Both are
  // direct casualties of injected faults, so the gate is then "every
  // request was accounted for, and errors never exceed the connections
  // faults tore down" — nothing hung or vanished. The sim backend's
  // faults are jitter-only, so its gate stays strict.
  bool Ok;
  if (WireMode)
    Ok = Cfg.ServeOnly ||
         (Cfg.Faults.any()
              ? (R.Wire.Completed + R.Wire.Abandoned == Cfg.TotalRequests &&
                 R.Wire.Errors <= R.Wire.DroppedConns + R.Wire.Timeouts)
              : (R.Wire.Completed == Cfg.TotalRequests && R.Wire.Errors == 0 &&
                 R.Wire.DroppedConns == 0));
  else
    Ok = R.TotalCompleted == Cfg.TotalRequests && R.TotalErrors == 0;
  if (!Ok)
    std::printf("RUN FAILED: completed=%llu errors=%llu dropped=%llu\n",
                static_cast<unsigned long long>(
                    WireMode ? R.Wire.Completed : R.TotalCompleted),
                static_cast<unsigned long long>(
                    WireMode ? R.Wire.Errors : R.TotalErrors),
                static_cast<unsigned long long>(R.Wire.DroppedConns));
  return Ok ? 0 : 1;
}
