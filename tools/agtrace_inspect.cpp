//===- agtrace_inspect.cpp - .agtrace structure dump ---------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Prints the structure of an `.agtrace` file: header fields, per-opcode
// record counts, symbol-table size, and — for v4 columnar traces — the
// per-column compressed byte totals across all frames, so the effect of
// the delta compression is visible column by column:
//
//   agtrace_inspect [--stats] run.agtrace [more.agtrace ...]
//
// Works on v2/v3 raw-row traces and v4 frame traces alike; raw traces
// simply report 32 bytes/record with no column breakdown.
//
// --stats appends, for v4 traces, the frame-shape histograms (bytes per
// frame and records per frame in power-of-two buckets) and a decode-time
// breakdown that times the two stages the parallel ingest hub splits:
// the header-only frame scan (what IngestHub::prepareStream runs up
// front) and the full record decode. Default output is unchanged so
// existing golden diffs keep passing.
//
//===----------------------------------------------------------------------===//

#include "support/TraceFormat.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace asyncg;
using namespace asyncg::trace;

namespace {

const char *opName(unsigned Op) {
  switch (static_cast<TraceOp>(Op)) {
  case TraceOp::FuncDef:
    return "FuncDef";
  case TraceOp::EnterTrigger:
    return "EnterTrigger";
  case TraceOp::Enter:
    return "Enter";
  case TraceOp::Exit:
    return "Exit";
  case TraceOp::ApiBase:
    return "ApiBase";
  case TraceOp::ApiExt:
    return "ApiExt";
  case TraceOp::ApiFuncs:
    return "ApiFuncs";
  case TraceOp::ApiInputs:
    return "ApiInputs";
  case TraceOp::ObjCreate:
    return "ObjCreate";
  case TraceOp::ReactionResult:
    return "ReactionResult";
  case TraceOp::PromiseLink:
    return "PromiseLink";
  case TraceOp::LoopEnd:
    return "LoopEnd";
  case TraceOp::ObjectRelease:
    return "ObjectRelease";
  case TraceOp::ShardInfo:
    return "ShardInfo";
  }
  return "unknown";
}

const char *colName(unsigned C) {
  static const char *Names[FrameColumns] = {"Op",  "Mask", "A8",  "B16",
                                            "C32", "D64",  "E64", "F64"};
  return C < FrameColumns ? Names[C] : "?";
}

/// Reads the whole file so the v4 frame chain can be walked directly.
bool slurp(const std::string &Path, std::vector<uint8_t> &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  std::fseek(F, 0, SEEK_END);
  long Size = std::ftell(F);
  std::fseek(F, 0, SEEK_SET);
  if (Size < 0) {
    std::fclose(F);
    return false;
  }
  Out.resize(static_cast<size_t>(Size));
  bool Ok = Out.empty() || std::fread(Out.data(), 1, Out.size(), F) ==
                               Out.size();
  std::fclose(F);
  return Ok;
}

/// Log2 bucket index for the frame-shape histograms (bucket B covers
/// [2^B, 2^(B+1))).
unsigned bucketOf(uint64_t V) {
  unsigned B = 0;
  while (V > 1) {
    V >>= 1;
    ++B;
  }
  return B;
}

void printHistogram(const char *Title, const uint64_t *Buckets, unsigned N,
                    uint64_t Total) {
  std::printf("  %s\n", Title);
  unsigned Lo = N, Hi = 0;
  for (unsigned B = 0; B != N; ++B)
    if (Buckets[B]) {
      if (B < Lo)
        Lo = B;
      Hi = B;
    }
  for (unsigned B = Lo; B <= Hi && Lo != N; ++B) {
    double Pct = Total ? 100.0 * Buckets[B] / Total : 0.0;
    std::printf("    [%8" PRIu64 ", %8" PRIu64 ") %8" PRIu64 "  %5.1f%%  ",
                uint64_t(1) << B, uint64_t(1) << (B + 1), Buckets[B], Pct);
    for (int Bar = 0; Bar < static_cast<int>(Pct / 2.5); ++Bar)
      std::putchar('#');
    std::putchar('\n');
  }
}

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

int inspect(const std::string &Path, bool Stats) {
  std::vector<uint8_t> Image;
  if (!slurp(Path, Image)) {
    std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
    return 1;
  }
  TraceFileHeader Header;
  std::vector<SymbolId> Remap;
  std::string Err;
  if (!validateTraceImage(Image.data(), Image.size(), Header, Remap, &Err)) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Err.c_str());
    return 1;
  }

  uint64_t RecordBytes = Header.SymtabOffset - sizeof(TraceFileHeader);
  uint64_t SymtabBytes = Image.size() - Header.SymtabOffset;
  std::printf("%s\n", Path.c_str());
  std::printf("  version        v%" PRIu32 "\n", Header.Version);
  std::printf("  file size      %zu bytes\n", Image.size());
  std::printf("  records        %" PRIu64 " (%" PRIu64
              " record bytes, %.2f bytes/rec)\n",
              Header.RecordCount, RecordBytes,
              Header.RecordCount
                  ? static_cast<double>(RecordBytes) / Header.RecordCount
                  : 0.0);
  std::printf("  symbols        %zu (%" PRIu64 " bytes)\n", Remap.size(),
              SymtabBytes);

  // Per-opcode counts; for v4 also the per-column compressed totals.
  uint64_t OpCount[TraceOpLimit + 1] = {};
  const uint8_t *Rec = Image.data() + sizeof(TraceFileHeader);
  if (Header.Version <= TraceLastRawVersion) {
    for (uint64_t I = 0; I != Header.RecordCount; ++I) {
      uint8_t Op = Rec[I * sizeof(TraceRecord)];
      ++OpCount[Op < TraceOpLimit ? Op : TraceOpLimit];
    }
    if (Stats)
      std::printf("  stats          raw v%" PRIu32 " rows: no frame "
                  "structure to histogram\n",
                  Header.Version);
  } else {
    uint64_t ColTotal[FrameColumns] = {};
    uint64_t Frames = 0;
    uint64_t SymFrames = 0, SymFrameBytes = 0;
    constexpr unsigned HistBuckets = 32;
    uint64_t ByteHist[HistBuckets] = {}, RecHist[HistBuckets] = {};
    const uint8_t *P = Rec;
    uint64_t Left = RecordBytes;
    auto DecodeT0 = std::chrono::steady_clock::now();
    while (Left > 0) {
      size_t Skip = 0;
      if (skipSymFrame(P, static_cast<size_t>(Left), Skip)) {
        ++SymFrames;
        SymFrameBytes += Skip;
        P += Skip;
        Left -= Skip;
        continue;
      }
      size_t Consumed = 0;
      bool Ok = decodeV4Frame(
          P, static_cast<size_t>(Left), Consumed,
          [&](const TraceRecord &R) {
            ++OpCount[R.Op < TraceOpLimit ? R.Op : TraceOpLimit];
          },
          &Err);
      if (!Ok) {
        std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Err.c_str());
        return 1;
      }
      TraceFrameHeader FH;
      std::memcpy(&FH, P, sizeof(FH));
      for (unsigned C = 0; C != FrameColumns; ++C)
        ColTotal[C] += FH.ColBytes[C];
      ++ByteHist[bucketOf(Consumed) < HistBuckets ? bucketOf(Consumed)
                                                  : HistBuckets - 1];
      ++RecHist[bucketOf(FH.RecordCount) < HistBuckets
                    ? bucketOf(FH.RecordCount)
                    : HistBuckets - 1];
      ++Frames;
      P += Consumed;
      Left -= Consumed;
    }
    double DecodeMs = msSince(DecodeT0);
    std::printf("  frames         %" PRIu64 " (%u records/frame max)\n",
                Frames, FrameRecords);
    if (SymFrames)
      std::printf("  checkpoints    %" PRIu64 " symbol frames (%" PRIu64
                  " bytes)\n",
                  SymFrames, SymFrameBytes);
    std::printf("  columns        (compressed bytes across all frames)\n");
    for (unsigned C = 0; C != FrameColumns; ++C)
      std::printf("    %-12s %10" PRIu64 "  %6.2f bytes/rec\n", colName(C),
                  ColTotal[C],
                  Header.RecordCount
                      ? static_cast<double>(ColTotal[C]) / Header.RecordCount
                      : 0.0);

    if (Stats) {
      printHistogram("frame bytes    (histogram)", ByteHist, HistBuckets,
                     Frames);
      printHistogram("frame records  (histogram)", RecHist, HistBuckets,
                     Frames);

      // Time the two stages the parallel ingest hub splits: the
      // header-only frame scan it runs up front, and the full record
      // decode its workers carry. The decode number above already ran;
      // re-run the scan alone so the split is visible.
      std::vector<TraceFrameRef> Refs;
      auto ScanT0 = std::chrono::steady_clock::now();
      if (!scanV4Frames(Rec, static_cast<size_t>(RecordBytes),
                        Header.RecordCount, Refs, &Err)) {
        std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Err.c_str());
        return 1;
      }
      double ScanMs = msSince(ScanT0);
      std::printf("  decode time\n");
      std::printf("    frame scan   %8.3f ms  (%" PRIu64 " frames located)\n",
                  ScanMs, static_cast<uint64_t>(Refs.size()));
      std::printf("    record decode%8.3f ms  (%.1f Mrec/s, %.1f MiB/s)\n",
                  DecodeMs,
                  DecodeMs > 0 ? Header.RecordCount / DecodeMs / 1e3 : 0.0,
                  DecodeMs > 0
                      ? RecordBytes / DecodeMs * 1e3 / (1024.0 * 1024.0)
                      : 0.0);
    }
  }

  std::printf("  opcodes\n");
  for (unsigned Op = 0; Op <= TraceOpLimit; ++Op)
    if (OpCount[Op])
      std::printf("    %-14s %10" PRIu64 "\n",
                  Op == TraceOpLimit ? "unknown" : opName(Op), OpCount[Op]);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Stats = false;
  std::vector<std::string> Paths;
  for (int I = 1; I < Argc; ++I) {
    if (std::string(Argv[I]) == "--stats")
      Stats = true;
    else
      Paths.push_back(Argv[I]);
  }
  if (Paths.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--stats] FILE.agtrace [FILE.agtrace ...]\n",
                 Argv[0]);
    return 2;
  }
  int Rc = 0;
  for (const std::string &P : Paths)
    Rc |= inspect(P, Stats);
  return Rc;
}
