//===- agload.cpp - wire-level AcmeAir load generator CLI ----------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Drives a running AcmeAir server (any process serving the REST API over
// HTTP/1.1, e.g. `acmeair_cluster --kernel epoll`) with the closed-loop
// keep-alive workload and prints throughput and latency percentiles:
//
//   agload [--port N] [--conns N] [--requests N] [--seed N] [--json FILE]
//          [--timeout-ms N] [--retries N]
//
// The request mix and per-connection seeding mirror the in-loop
// WorkloadDriver, so a wire run exercises the same logical workload the
// virtual-time runs measure. --timeout-ms bounds each request's wait;
// --retries resends a timed-out or connection-lost request on a fresh
// connection (bounded, jittered backoff) — together they keep the driver
// honest against a faulty server instead of blocking forever. Exit status
// is 0 only when every request got a 200 and none was abandoned (dropped
// connections also fail the run unless --retries recovers them).
//
//===----------------------------------------------------------------------===//

#include "apps/acmeair/LoadGen.h"
#include "support/JsonWriter.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace asyncg;

int main(int argc, char **argv) {
  acmeair::LoadConfig Cfg;
  Cfg.TotalRequests = 1000;
  std::string JsonPath;

  for (int I = 1; I < argc; ++I) {
    auto Num = [&](const char *Flag) -> long long {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", Flag);
        std::exit(2);
      }
      return std::atoll(argv[++I]);
    };
    if (!std::strcmp(argv[I], "--port"))
      Cfg.Port = static_cast<int>(Num("--port"));
    else if (!std::strcmp(argv[I], "--conns"))
      Cfg.Connections = static_cast<int>(Num("--conns"));
    else if (!std::strcmp(argv[I], "--requests"))
      Cfg.TotalRequests = static_cast<uint64_t>(Num("--requests"));
    else if (!std::strcmp(argv[I], "--seed"))
      Cfg.Seed = static_cast<uint64_t>(Num("--seed"));
    else if (!std::strcmp(argv[I], "--timeout-ms"))
      Cfg.RequestTimeoutMs = static_cast<int>(Num("--timeout-ms"));
    else if (!std::strcmp(argv[I], "--retries"))
      Cfg.MaxRetries = static_cast<int>(Num("--retries"));
    else if (!std::strcmp(argv[I], "--json")) {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "--json needs a value\n");
        return 2;
      }
      JsonPath = argv[++I];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--conns N] [--requests N]"
                   " [--seed N] [--json FILE]\n"
                   "          [--timeout-ms N] [--retries N]\n",
                   argv[0]);
      return 2;
    }
  }

  if (!acmeair::wireLoadSupported()) {
    std::fprintf(stderr, "agload: wire load needs Linux (the target server "
                         "runs on the epoll kernel backend)\n");
    return 2;
  }

  acmeair::LoadStats S;
  if (!acmeair::runWireLoad(Cfg, S)) {
    std::fprintf(stderr, "agload: no connection to 127.0.0.1:%d (is the "
                         "server running?)\n",
                 Cfg.Port);
    return 1;
  }

  std::printf("agload: %d conn(s) -> 127.0.0.1:%d, %llu issued\n",
              Cfg.Connections, Cfg.Port,
              static_cast<unsigned long long>(S.Issued));
  std::printf("completed %llu, errors %llu, dropped conns %llu\n",
              static_cast<unsigned long long>(S.Completed),
              static_cast<unsigned long long>(S.Errors),
              static_cast<unsigned long long>(S.DroppedConns));
  if (Cfg.RequestTimeoutMs > 0 || Cfg.MaxRetries > 0)
    std::printf("timeouts %llu, retries %llu, abandoned %llu\n",
                static_cast<unsigned long long>(S.Timeouts),
                static_cast<unsigned long long>(S.Retries),
                static_cast<unsigned long long>(S.Abandoned));
  std::printf("throughput %.0f req/s over %.3f s\n", S.ReqPerSec,
              S.WallSeconds);
  std::printf("latency p50 %llu us, p90 %llu us, p99 %llu us\n",
              static_cast<unsigned long long>(S.P50Us),
              static_cast<unsigned long long>(S.P90Us),
              static_cast<unsigned long long>(S.P99Us));

  if (!JsonPath.empty()) {
    JsonWriter W;
    W.beginObject();
    W.field("port", static_cast<double>(Cfg.Port));
    W.field("conns", static_cast<double>(Cfg.Connections));
    W.field("issued", static_cast<double>(S.Issued));
    W.field("completed", static_cast<double>(S.Completed));
    W.field("errors", static_cast<double>(S.Errors));
    W.field("dropped_conns", static_cast<double>(S.DroppedConns));
    W.field("timeouts", static_cast<double>(S.Timeouts));
    W.field("retries", static_cast<double>(S.Retries));
    W.field("abandoned", static_cast<double>(S.Abandoned));
    W.field("req_per_sec", S.ReqPerSec);
    W.field("p50_us", static_cast<double>(S.P50Us));
    W.field("p90_us", static_cast<double>(S.P90Us));
    W.field("p99_us", static_cast<double>(S.P99Us));
    W.endObject();
    std::FILE *F = std::fopen(JsonPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "agload: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    std::string J = W.take();
    J += "\n";
    std::fwrite(J.data(), 1, J.size(), F);
    std::fclose(F);
  }

  // With a retry budget, dropped connections are recoverable noise (the
  // requests on them must still complete); without one they fail the run.
  bool Ok = S.Completed == Cfg.TotalRequests && S.Errors == 0 &&
            S.Abandoned == 0 &&
            (Cfg.MaxRetries > 0 || S.DroppedConns == 0);
  return Ok ? 0 : 1;
}
