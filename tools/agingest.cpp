//===- agingest.cpp - parallel trace ingestion front end -----------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Ingests one or more recorded `.agtrace` streams into a single Async
// Graph through the parallel ingest hub (ag/IngestHub.h):
//
//   agingest --in a.agtrace [--in b.agtrace ...] [--jobs N] [--window N]
//            [--serial] [--nopromise] [--retire] [--retain-window N]
//            [--no-detect] [--dot FILE] [--quiet]
//
// Multiple --in streams are merged shard-major in argument order (pass
// cluster shards in shard-id order). --jobs picks the decode parallelism
// (1 = inline pipelined, the default). --serial bypasses the hub entirely
// and rebuilds the graph through the classic replayTrace() +
// ShardedGraph::build() path — the reference for parity checks: for any
// input set, `agingest --serial` and `agingest --jobs N` must produce
// byte-identical stdout and --dot output.
//
// stdout carries only the deterministic warnings report; ingestion and
// merge statistics go to stderr (suppressed by --quiet).
//
//===----------------------------------------------------------------------===//

#include "ag/Builder.h"
#include "ag/IngestHub.h"
#include "ag/ShardedGraph.h"
#include "detect/Detectors.h"
#include "instr/TraceCodec.h"
#include "viz/Dot.h"
#include "viz/TextReport.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace asyncg;

namespace {

int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s --in FILE [--in FILE ...] [--jobs N] [--window N]\n"
               "           [--serial] [--nopromise] [--retire]"
               " [--retain-window N]\n"
               "           [--no-detect] [--dot FILE] [--quiet]\n",
               Prog);
  return 2;
}

bool writeFile(const std::string &Path, const std::string &Content) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  bool Ok = Content.empty() ||
            std::fwrite(Content.data(), 1, Content.size(), F) ==
                Content.size();
  return std::fclose(F) == 0 && Ok;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Inputs;
  std::string DotFile;
  bool Serial = false, NoPromise = false, Retire = false, NoDetect = false;
  bool Quiet = false;
  unsigned long Jobs = 1, Window = 256, RetainWindow = 8;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&](std::string &Out) {
      if (I + 1 >= Argc)
        return false;
      Out = Argv[++I];
      return true;
    };
    auto NextNum = [&](unsigned long &Out, unsigned long Min) {
      std::string N;
      if (!Next(N))
        return false;
      char *End = nullptr;
      Out = std::strtoul(N.c_str(), &End, 10);
      return End != N.c_str() && *End == '\0' && Out >= Min;
    };
    if (Arg == "--in") {
      std::string In;
      if (!Next(In))
        return usage(Argv[0]);
      Inputs.push_back(In);
    } else if (Arg == "--jobs") {
      if (!NextNum(Jobs, 1)) {
        std::fprintf(stderr, "error: --jobs expects a positive count\n");
        return 2;
      }
    } else if (Arg == "--window") {
      if (!NextNum(Window, 1)) {
        std::fprintf(stderr, "error: --window expects a positive tick "
                             "count\n");
        return 2;
      }
    } else if (Arg == "--retain-window") {
      if (!NextNum(RetainWindow, 1)) {
        std::fprintf(stderr, "error: --retain-window expects a positive "
                             "tick count\n");
        return 2;
      }
    } else if (Arg == "--serial")
      Serial = true;
    else if (Arg == "--nopromise")
      NoPromise = true;
    else if (Arg == "--retire")
      Retire = true;
    else if (Arg == "--no-detect")
      NoDetect = true;
    else if (Arg == "--quiet")
      Quiet = true;
    else if (Arg == "--dot" && Next(DotFile))
      continue;
    else
      return usage(Argv[0]);
  }
  if (Inputs.empty())
    return usage(Argv[0]);

  ag::BuilderConfig Config;
  Config.TrackPromises = !NoPromise;
  Config.Retire = Retire;
  Config.RetainWindow = static_cast<uint32_t>(RetainWindow);

  // One builder + detector suite per stream either way; the suite holds
  // per-graph state, so it is never shared across builders.
  std::vector<std::unique_ptr<detect::DetectorSuite>> Suites;

  const ag::AsyncGraph *Result = nullptr;

  // Serial reference path: classic replay + single-shot batch merge.
  std::vector<std::unique_ptr<ag::AsyncGBuilder>> SerialBuilders;
  ag::ShardedGraph SerialMerged;

  // Hub path.
  ag::IngestOptions Opts;
  Opts.Jobs = static_cast<unsigned>(Jobs);
  Opts.WindowTicks = static_cast<uint32_t>(Window);
  Opts.Builder = Config;
  ag::IngestHub Hub(Opts);

  if (Serial) {
    for (const std::string &In : Inputs) {
      SerialBuilders.emplace_back(new ag::AsyncGBuilder(Config));
      if (!NoDetect) {
        Suites.emplace_back(new detect::DetectorSuite());
        Suites.back()->attachTo(*SerialBuilders.back());
      }
      std::string Err;
      if (!instr::replayTrace(In, *SerialBuilders.back(), &Err)) {
        std::fprintf(stderr, "error: %s: %s\n", In.c_str(), Err.c_str());
        return 1;
      }
    }
    if (Inputs.size() > 1) {
      std::vector<const ag::AsyncGraph *> Shards;
      for (auto &B : SerialBuilders)
        Shards.push_back(&B->graph());
      SerialMerged.build(Shards);
      Result = &SerialMerged.merged();
    } else {
      Result = &SerialBuilders.front()->graph();
    }
  } else {
    for (const std::string &In : Inputs) {
      size_t S = Hub.addFile(In);
      if (!NoDetect) {
        Suites.emplace_back(new detect::DetectorSuite());
        Suites.back()->attachTo(Hub.builder(S));
      }
    }
    std::string Err;
    if (!Hub.run(&Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    Result = &Hub.graph();

    if (!Quiet) {
      const ag::IngestStats &IS = Hub.stats();
      std::fprintf(stderr,
                   "ingest: %llu records in %llu frames across %zu "
                   "stream(s), %llu window turns, jobs=%lu\n",
                   static_cast<unsigned long long>(IS.Records),
                   static_cast<unsigned long long>(IS.Frames),
                   Hub.streams(),
                   static_cast<unsigned long long>(IS.Windows), Jobs);
      for (const ag::IngestStreamStats &SS : IS.Streams)
        std::fprintf(stderr,
                     "  %s: v%u %llu records%s%s%s\n", SS.Path.c_str(),
                     SS.Version,
                     static_cast<unsigned long long>(SS.Records),
                     SS.Fallback ? " (fallback replay)" : "",
                     SS.Recovered ? " (recovered prefix)" : "",
                     SS.BadRecords ? " [bad records]" : "");
      if (Hub.streams() > 1) {
        const ag::MergeStats &MS = Hub.mergeStats();
        std::fprintf(stderr,
                     "merge: %llu ticks, %llu nodes, %llu xloop edges "
                     "(%llu unresolved); live handoffs %llu/%llu\n",
                     static_cast<unsigned long long>(MS.Ticks),
                     static_cast<unsigned long long>(MS.Nodes),
                     static_cast<unsigned long long>(MS.CrossLoopEdges),
                     static_cast<unsigned long long>(MS.UnresolvedHandoffs),
                     static_cast<unsigned long long>(
                         IS.HandoffsResolvedLive),
                     static_cast<unsigned long long>(IS.HandoffsSeen));
      }
    }
  }

  if (!DotFile.empty() && !writeFile(DotFile, viz::toDot(*Result))) {
    std::fprintf(stderr, "error: cannot write %s\n", DotFile.c_str());
    return 1;
  }
  std::fputs(viz::warningsReport(*Result).c_str(), stdout);
  return 0;
}
