//===- asyncg_cli.cpp - command-line front end ---------------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// The equivalent of the artifact's run script: executes one of the bundled
// Table-I case programs under AsyncG and dumps the Async Graph for the
// visualization front ends.
//
//   asyncg_cli --list
//   asyncg_cli --case SO-33330277 [--fixed] [--nopromise] [--async]
//              [--retire] [--retain-window N] [--record FILE] [--dot FILE]
//              [--json FILE] [--html FILE] [--quiet]
//   asyncg_cli --replay FILE [--nopromise] [--retire] [--retain-window N]
//              [--dot FILE] [--json FILE] [--html FILE] [--quiet]
//
// With no output flags, prints the tick-by-tick text rendering and the
// warnings to stdout. --async routes construction through the off-thread
// pipeline (ag/AsyncPipeline.h); --record additionally writes a binary
// .agtrace of the run, and --replay rebuilds a graph from such a trace
// without executing any case. --retire enables tick-epoch retirement
// (bounded-memory steady state): quiesced regions older than the retain
// window (--retain-window, default 8 ticks) are folded into summary
// counters and reclaimed; warnings are unaffected.
//
//===----------------------------------------------------------------------===//

#include "ag/AsyncPipeline.h"
#include "cases/Case.h"
#include "instr/TraceCodec.h"
#include "support/Format.h"
#include "viz/Dot.h"
#include "viz/Html.h"
#include "viz/JsonDump.h"
#include "viz/TextReport.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

using namespace asyncg;
using namespace asyncg::cases;

namespace {

int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s --list\n"
               "       %s --case NAME [--fixed] [--nopromise] [--async]"
               " [--retire]\n"
               "           [--retain-window N] [--record FILE] [--dot FILE]"
               " [--json FILE]\n"
               "           [--html FILE] [--quiet]\n"
               "       %s --replay FILE [--nopromise] [--retire]"
               " [--retain-window N]\n"
               "           [--dot FILE] [--json FILE] [--html FILE]"
               " [--quiet]\n",
               Prog, Prog, Prog);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string CaseName, DotFile, JsonFile, HtmlFile, RecordFile, ReplayFile;
  bool Fixed = false, NoPromise = false, Quiet = false, List = false;
  bool Async = false, Retire = false;
  unsigned long RetainWindow = 8;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&](std::string &Out) {
      if (I + 1 >= Argc)
        return false;
      Out = Argv[++I];
      return true;
    };
    if (Arg == "--list")
      List = true;
    else if (Arg == "--fixed")
      Fixed = true;
    else if (Arg == "--nopromise")
      NoPromise = true;
    else if (Arg == "--quiet")
      Quiet = true;
    else if (Arg == "--async")
      Async = true;
    else if (Arg == "--retire")
      Retire = true;
    else if (Arg == "--retain-window") {
      std::string N;
      if (!Next(N))
        return usage(Argv[0]);
      char *End = nullptr;
      RetainWindow = std::strtoul(N.c_str(), &End, 10);
      if (End == N.c_str() || *End != '\0' || RetainWindow == 0) {
        std::fprintf(stderr, "error: --retain-window expects a positive "
                             "tick count\n");
        return 2;
      }
    } else if (Arg == "--record" && Next(RecordFile))
      continue;
    else if (Arg == "--replay" && Next(ReplayFile))
      continue;
    else if (Arg == "--case" && Next(CaseName))
      continue;
    else if (Arg == "--dot" && Next(DotFile))
      continue;
    else if (Arg == "--json" && Next(JsonFile))
      continue;
    else if (Arg == "--html" && Next(HtmlFile))
      continue;
    else
      return usage(Argv[0]);
  }

  if (List) {
    std::printf("%-14s %-34s %s\n", "name", "category", "description");
    for (const CaseDef &Def : allCases())
      std::printf("%-14s %-34s %s\n", Def.Name.c_str(),
                  ag::bugCategoryName(Def.Expected),
                  Def.Description.c_str());
    return 0;
  }
  if (CaseName.empty() == ReplayFile.empty()) // exactly one of the two
    return usage(Argv[0]);

  ag::BuilderConfig BCfg;
  BCfg.TrackPromises = !NoPromise;
  BCfg.Retire = Retire;
  BCfg.RetainWindow = static_cast<uint32_t>(RetainWindow);

  // Shared tail: text rendering + file dumps for whichever graph we built.
  auto Emit = [&](const ag::AsyncGraph &G) {
    if (!DotFile.empty() && !viz::writeFile(DotFile, viz::toDot(G))) {
      std::fprintf(stderr, "error: cannot write %s\n", DotFile.c_str());
      return 1;
    }
    if (!JsonFile.empty() && !viz::writeFile(JsonFile, viz::toJson(G))) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonFile.c_str());
      return 1;
    }
    if (!HtmlFile.empty() &&
        !viz::writeFile(HtmlFile, viz::toHtml(G, CaseName.empty()
                                                  ? ReplayFile + " — Async Graph"
                                                  : CaseName + " — Async Graph"))) {
      std::fprintf(stderr, "error: cannot write %s\n", HtmlFile.c_str());
      return 1;
    }
    return 0;
  };

  if (!ReplayFile.empty()) {
    ag::AsyncGBuilder Builder(BCfg);
    detect::DetectorSuite Detectors;
    Detectors.attachTo(Builder);
    std::string Err;
    if (!instr::replayTrace(ReplayFile, Builder, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    const ag::AsyncGraph &G = Builder.graph();
    if (!Quiet) {
      std::printf("=== replay of %s%s ===\n", ReplayFile.c_str(),
                  NoPromise ? " (promise tracking off)" : "");
      std::printf("graph: %zu nodes, %zu edges\n\n", G.nodeCount(),
                  G.liveEdgeCount());
      viz::TextOptions TOpts;
      TOpts.MaxTicks = 12;
      std::printf("%s\n%s", viz::toText(G, TOpts).c_str(),
                  viz::warningsReport(G).c_str());
    }
    return Emit(G);
  }

  const CaseDef *Found = nullptr;
  for (const CaseDef &Def : allCases())
    if (Def.Name == CaseName)
      Found = &Def;
  if (!Found) {
    std::fprintf(stderr, "error: unknown case '%s' (try --list)\n",
                 CaseName.c_str());
    return 2;
  }

  // Run under a fresh runtime so we keep the graph for dumping.
  jsrt::Runtime RT(Found->Config);
  ag::AsyncGBuilder Builder(BCfg);
  detect::DetectorSuite Detectors;
  Detectors.attachTo(Builder);
  std::unique_ptr<ag::AsyncPipeline> Pipeline;
  if (Async) {
    Pipeline = std::make_unique<ag::AsyncPipeline>(Builder);
    RT.hooks().attach(Pipeline.get());
  } else {
    RT.hooks().attach(&Builder);
  }
  instr::TraceRecorder Recorder;
  if (!RecordFile.empty()) {
    if (!Recorder.open(RecordFile)) {
      std::fprintf(stderr, "error: cannot write %s\n", RecordFile.c_str());
      return 1;
    }
    RT.hooks().attach(&Recorder);
  }
  Found->Run(RT, Fixed);
  if (Pipeline)
    Pipeline->stop(); // barrier: graph complete before we read it
  if (!RecordFile.empty()) {
    if (!Recorder.finalize()) {
      std::fprintf(stderr, "error: cannot finalize %s\n", RecordFile.c_str());
      return 1;
    }
    if (!Quiet)
      std::printf("trace: %llu records -> %s\n",
                  static_cast<unsigned long long>(Recorder.recordCount()),
                  RecordFile.c_str());
  }
  if (Found->PostAnalysis)
    Found->PostAnalysis(RT, Builder.graph());

  const ag::AsyncGraph &G = Builder.graph();
  if (!Quiet) {
    std::printf("=== %s (%s variant%s) ===\n", Found->Name.c_str(),
                Fixed ? "fixed" : "buggy",
                NoPromise ? ", promise tracking off" : "");
    std::printf("%s\n", Found->Description.c_str());
    std::printf("ticks: %llu%s | graph: %zu nodes, %zu edges\n\n",
                static_cast<unsigned long long>(RT.tickCount()),
                RT.tickBudgetExhausted() ? " (budget exhausted: starved)"
                                         : "",
                G.nodeCount(), G.liveEdgeCount());
    viz::TextOptions TOpts;
    TOpts.MaxTicks = 12;
    std::printf("%s\n%s", viz::toText(G, TOpts).c_str(),
                viz::warningsReport(G).c_str());
  }

  return Emit(G);
}
