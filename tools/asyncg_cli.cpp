//===- asyncg_cli.cpp - command-line front end ---------------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// The equivalent of the artifact's run script: executes one of the bundled
// Table-I case programs under AsyncG and dumps the Async Graph for the
// visualization front ends.
//
//   asyncg_cli --list
//   asyncg_cli --case SO-33330277 [--fixed] [--nopromise]
//              [--dot FILE] [--json FILE] [--html FILE] [--quiet]
//
// With no output flags, prints the tick-by-tick text rendering and the
// warnings to stdout.
//
//===----------------------------------------------------------------------===//

#include "cases/Case.h"
#include "support/Format.h"
#include "viz/Dot.h"
#include "viz/Html.h"
#include "viz/JsonDump.h"
#include "viz/TextReport.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace asyncg;
using namespace asyncg::cases;

namespace {

int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s --list\n"
               "       %s --case NAME [--fixed] [--nopromise] [--dot FILE]"
               " [--json FILE] [--html FILE] [--quiet]\n",
               Prog, Prog);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string CaseName, DotFile, JsonFile, HtmlFile;
  bool Fixed = false, NoPromise = false, Quiet = false, List = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&](std::string &Out) {
      if (I + 1 >= Argc)
        return false;
      Out = Argv[++I];
      return true;
    };
    if (Arg == "--list")
      List = true;
    else if (Arg == "--fixed")
      Fixed = true;
    else if (Arg == "--nopromise")
      NoPromise = true;
    else if (Arg == "--quiet")
      Quiet = true;
    else if (Arg == "--case" && Next(CaseName))
      continue;
    else if (Arg == "--dot" && Next(DotFile))
      continue;
    else if (Arg == "--json" && Next(JsonFile))
      continue;
    else if (Arg == "--html" && Next(HtmlFile))
      continue;
    else
      return usage(Argv[0]);
  }

  if (List) {
    std::printf("%-14s %-34s %s\n", "name", "category", "description");
    for (const CaseDef &Def : allCases())
      std::printf("%-14s %-34s %s\n", Def.Name.c_str(),
                  ag::bugCategoryName(Def.Expected),
                  Def.Description.c_str());
    return 0;
  }
  if (CaseName.empty())
    return usage(Argv[0]);

  const CaseDef *Found = nullptr;
  for (const CaseDef &Def : allCases())
    if (Def.Name == CaseName)
      Found = &Def;
  if (!Found) {
    std::fprintf(stderr, "error: unknown case '%s' (try --list)\n",
                 CaseName.c_str());
    return 2;
  }

  // Run under a fresh runtime so we keep the graph for dumping.
  jsrt::Runtime RT(Found->Config);
  ag::BuilderConfig BCfg;
  BCfg.TrackPromises = !NoPromise;
  ag::AsyncGBuilder Builder(BCfg);
  detect::DetectorSuite Detectors;
  Detectors.attachTo(Builder);
  RT.hooks().attach(&Builder);
  Found->Run(RT, Fixed);
  if (Found->PostAnalysis)
    Found->PostAnalysis(RT, Builder.graph());

  const ag::AsyncGraph &G = Builder.graph();
  if (!Quiet) {
    std::printf("=== %s (%s variant%s) ===\n", Found->Name.c_str(),
                Fixed ? "fixed" : "buggy",
                NoPromise ? ", promise tracking off" : "");
    std::printf("%s\n", Found->Description.c_str());
    std::printf("ticks: %llu%s | graph: %zu nodes, %zu edges\n\n",
                static_cast<unsigned long long>(RT.tickCount()),
                RT.tickBudgetExhausted() ? " (budget exhausted: starved)"
                                         : "",
                G.nodeCount(), G.edges().size());
    viz::TextOptions TOpts;
    TOpts.MaxTicks = 12;
    std::printf("%s\n%s", viz::toText(G, TOpts).c_str(),
                viz::warningsReport(G).c_str());
  }

  if (!DotFile.empty() && !viz::writeFile(DotFile, viz::toDot(G))) {
    std::fprintf(stderr, "error: cannot write %s\n", DotFile.c_str());
    return 1;
  }
  if (!JsonFile.empty() && !viz::writeFile(JsonFile, viz::toJson(G))) {
    std::fprintf(stderr, "error: cannot write %s\n", JsonFile.c_str());
    return 1;
  }
  if (!HtmlFile.empty() &&
      !viz::writeFile(HtmlFile,
                      viz::toHtml(G, Found->Name + " — Async Graph"))) {
    std::fprintf(stderr, "error: cannot write %s\n", HtmlFile.c_str());
    return 1;
  }
  return 0;
}
