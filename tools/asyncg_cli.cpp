//===- asyncg_cli.cpp - command-line front end ---------------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// The equivalent of the artifact's run script: executes one of the bundled
// Table-I case programs under AsyncG and dumps the Async Graph for the
// visualization front ends.
//
//   asyncg_cli --list
//   asyncg_cli --case SO-33330277 [--fixed] [--nopromise] [--async]
//              [--retire] [--retain-window N] [--record FILE]
//              [--trace-version N] [--sample-budget PCT] [--dot FILE]
//              [--json FILE] [--html FILE] [--quiet]
//   asyncg_cli --replay FILE [--nopromise] [--retire] [--retain-window N]
//              [--mmap|--stdio] [--dot FILE] [--json FILE] [--html FILE]
//              [--quiet]
//
// With no output flags, prints the tick-by-tick text rendering and the
// warnings to stdout. --async routes construction through the off-thread
// pipeline (ag/AsyncPipeline.h); --record additionally writes a binary
// .agtrace of the run (--trace-version picks the file encoding: 4 =
// columnar delta frames, the default; 2/3 = raw 32-byte rows), and
// --replay rebuilds a graph from such a trace without executing any case
// (v4 files replay zero-copy from an mmap; --mmap/--stdio force the
// transport). --sample-budget enables overhead-budgeted sampling in the
// async pipeline: decoration events are emitted only while the estimated
// instrumentation spend stays under PCT percent of loop wall time, and the
// dropped coverage is reported so detector confidence can be judged.
// --retire enables tick-epoch retirement (bounded-memory steady state):
// quiesced regions older than the retain window (--retain-window, default
// 8 ticks) are folded into summary counters and reclaimed; warnings are
// unaffected.
//
//===----------------------------------------------------------------------===//

#include "ag/AsyncPipeline.h"
#include "cases/Case.h"
#include "instr/TraceCodec.h"
#include "sim/Kernel.h"
#include "support/Format.h"
#include "viz/Dot.h"
#include "viz/Html.h"
#include "viz/JsonDump.h"
#include "viz/TextReport.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

using namespace asyncg;
using namespace asyncg::cases;

namespace {

int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s --list\n"
               "       %s --case NAME [--kernel sim|epoll|uring|auto]"
               " [--fixed]"
               " [--nopromise] [--async]\n"
               "           [--retire]\n"
               "           [--retain-window N] [--record FILE]"
               " [--trace-version N]\n"
               "           [--sample-budget PCT] [--dot FILE]"
               " [--json FILE]\n"
               "           [--html FILE] [--quiet]\n"
               "       %s --replay FILE [--nopromise] [--retire]"
               " [--retain-window N]\n"
               "           [--mmap|--stdio] [--dot FILE] [--json FILE]"
               " [--html FILE]\n"
               "           [--quiet]\n",
               Prog, Prog, Prog);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string CaseName, DotFile, JsonFile, HtmlFile, RecordFile, ReplayFile;
  bool Fixed = false, NoPromise = false, Quiet = false, List = false;
  bool Async = false, Retire = false;
  sim::KernelBackend Backend = sim::KernelBackend::Sim;
  bool KernelSet = false;
  unsigned long RetainWindow = 8;
  unsigned long TraceVer = trace::TraceVersion;
  double SampleBudget = 0;
  instr::ReplayTransport Transport = instr::ReplayTransport::Auto;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&](std::string &Out) {
      if (I + 1 >= Argc)
        return false;
      Out = Argv[++I];
      return true;
    };
    if (Arg == "--list")
      List = true;
    else if (Arg == "--fixed")
      Fixed = true;
    else if (Arg == "--nopromise")
      NoPromise = true;
    else if (Arg == "--quiet")
      Quiet = true;
    else if (Arg == "--async")
      Async = true;
    else if (Arg == "--retire")
      Retire = true;
    else if (Arg == "--retain-window") {
      std::string N;
      if (!Next(N))
        return usage(Argv[0]);
      char *End = nullptr;
      RetainWindow = std::strtoul(N.c_str(), &End, 10);
      if (End == N.c_str() || *End != '\0' || RetainWindow == 0) {
        std::fprintf(stderr, "error: --retain-window expects a positive "
                             "tick count\n");
        return 2;
      }
    } else if (Arg == "--trace-version") {
      std::string N;
      if (!Next(N))
        return usage(Argv[0]);
      char *End = nullptr;
      TraceVer = std::strtoul(N.c_str(), &End, 10);
      if (End == N.c_str() || *End != '\0' || TraceVer < 2 ||
          TraceVer > trace::TraceVersion) {
        std::fprintf(stderr, "error: --trace-version expects 2..%u\n",
                     trace::TraceVersion);
        return 2;
      }
    } else if (Arg == "--sample-budget") {
      std::string N;
      if (!Next(N))
        return usage(Argv[0]);
      char *End = nullptr;
      SampleBudget = std::strtod(N.c_str(), &End);
      if (End == N.c_str() || *End != '\0' || SampleBudget <= 0 ||
          SampleBudget > 100) {
        std::fprintf(stderr,
                     "error: --sample-budget expects a percentage in "
                     "(0, 100]\n");
        return 2;
      }
    } else if (Arg == "--kernel") {
      std::string N;
      if (!Next(N))
        return usage(Argv[0]);
      if (N == "auto") {
        std::string Why;
        Backend = sim::resolveAutoKernelBackend(&Why);
        if (!Quiet)
          std::fprintf(stderr, "--kernel auto: %s\n", Why.c_str());
      } else if (!sim::parseKernelBackend(N, Backend)) {
        std::fprintf(stderr,
                     "error: --kernel expects 'auto' or one of the "
                     "backends available here (%s), got '%s'\n",
                     sim::availableKernelBackendNames().c_str(), N.c_str());
        return 2;
      }
      KernelSet = true;
    } else if (Arg == "--mmap")
      Transport = instr::ReplayTransport::Mmap;
    else if (Arg == "--stdio")
      Transport = instr::ReplayTransport::Stdio;
    else if (Arg == "--record" && Next(RecordFile))
      continue;
    else if (Arg == "--replay" && Next(ReplayFile))
      continue;
    else if (Arg == "--case" && Next(CaseName))
      continue;
    else if (Arg == "--dot" && Next(DotFile))
      continue;
    else if (Arg == "--json" && Next(JsonFile))
      continue;
    else if (Arg == "--html" && Next(HtmlFile))
      continue;
    else
      return usage(Argv[0]);
  }

  if (List) {
    std::printf("%-14s %-34s %s\n", "name", "category", "description");
    for (const CaseDef &Def : allCases())
      std::printf("%-14s %-34s %s\n", Def.Name.c_str(),
                  ag::bugCategoryName(Def.Expected),
                  Def.Description.c_str());
    return 0;
  }
  if (CaseName.empty() == ReplayFile.empty()) // exactly one of the two
    return usage(Argv[0]);
  if (SampleBudget > 0 && !Async) {
    std::fprintf(stderr, "error: --sample-budget requires --async (the "
                         "budget governs the pipeline producer)\n");
    return 2;
  }
  if (KernelSet) {
    std::string Why;
    if (!sim::kernelBackendAvailable(Backend, &Why)) {
      std::fprintf(stderr,
                   "error: kernel backend '%s' is not available here "
                   "(%s); available: %s\n",
                   sim::kernelBackendName(Backend), Why.c_str(),
                   sim::availableKernelBackendNames().c_str());
      return 2;
    }
  }

  ag::BuilderConfig BCfg;
  BCfg.TrackPromises = !NoPromise;
  BCfg.Retire = Retire;
  BCfg.RetainWindow = static_cast<uint32_t>(RetainWindow);

  // Shared tail: text rendering + file dumps for whichever graph we built.
  auto Emit = [&](const ag::AsyncGraph &G) {
    if (!DotFile.empty() && !viz::writeFile(DotFile, viz::toDot(G))) {
      std::fprintf(stderr, "error: cannot write %s\n", DotFile.c_str());
      return 1;
    }
    if (!JsonFile.empty() && !viz::writeFile(JsonFile, viz::toJson(G))) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonFile.c_str());
      return 1;
    }
    if (!HtmlFile.empty() &&
        !viz::writeFile(HtmlFile, viz::toHtml(G, CaseName.empty()
                                                  ? ReplayFile + " — Async Graph"
                                                  : CaseName + " — Async Graph"))) {
      std::fprintf(stderr, "error: cannot write %s\n", HtmlFile.c_str());
      return 1;
    }
    return 0;
  };

  if (!ReplayFile.empty()) {
    ag::AsyncGBuilder Builder(BCfg);
    detect::DetectorSuite Detectors;
    Detectors.attachTo(Builder);
    std::string Err;
    instr::ReplayStats RStats;
    if (!instr::replayTrace(ReplayFile, Builder, &Err, Transport, &RStats)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    const ag::AsyncGraph &G = Builder.graph();
    if (!Quiet) {
      std::printf("=== replay of %s%s ===\n", ReplayFile.c_str(),
                  NoPromise ? " (promise tracking off)" : "");
      std::printf("trace: v%u, %llu records, %llu record bytes\n",
                  RStats.Version,
                  static_cast<unsigned long long>(RStats.Records),
                  static_cast<unsigned long long>(RStats.RecordBytes));
      std::printf("graph: %zu nodes, %zu edges\n\n", G.nodeCount(),
                  G.liveEdgeCount());
      viz::TextOptions TOpts;
      TOpts.MaxTicks = 12;
      std::printf("%s\n%s", viz::toText(G, TOpts).c_str(),
                  viz::warningsReport(G).c_str());
    }
    return Emit(G);
  }

  const CaseDef *Found = nullptr;
  for (const CaseDef &Def : allCases())
    if (Def.Name == CaseName)
      Found = &Def;
  if (!Found) {
    std::fprintf(stderr, "error: unknown case '%s' (try --list)\n",
                 CaseName.c_str());
    return 2;
  }

  // Run under a fresh runtime so we keep the graph for dumping.
  jsrt::RuntimeConfig RC = Found->Config;
  if (KernelSet) {
    RC.Backend = Backend;
    // Case programs exchange raw discrete messages, not HTTP, so the real
    // wire carries them length-prefixed.
    if (Backend != sim::KernelBackend::Sim)
      RC.Wire = sim::WireFormat::Framed;
  }
  jsrt::Runtime RT(RC);
  ag::AsyncGBuilder Builder(BCfg);
  detect::DetectorSuite Detectors;
  Detectors.attachTo(Builder);
  std::unique_ptr<ag::AsyncPipeline> Pipeline;
  if (Async) {
    ag::PipelineConfig PCfg;
    PCfg.SampleBudgetPct = SampleBudget;
    Pipeline = std::make_unique<ag::AsyncPipeline>(Builder, PCfg);
    RT.hooks().attach(Pipeline.get());
  } else {
    RT.hooks().attach(&Builder);
  }
  instr::TraceRecorder Recorder;
  if (!RecordFile.empty()) {
    if (!Recorder.open(RecordFile, /*Shard=*/0,
                       static_cast<uint32_t>(TraceVer))) {
      std::fprintf(stderr, "error: cannot write %s\n", RecordFile.c_str());
      return 1;
    }
    RT.hooks().attach(&Recorder);
  }
  Found->Run(RT, Fixed);
  if (Pipeline)
    Pipeline->stop(); // barrier: graph complete before we read it
  if (!RecordFile.empty()) {
    if (!Recorder.finalize()) {
      std::fprintf(stderr, "error: cannot finalize %s\n", RecordFile.c_str());
      return 1;
    }
    if (!Quiet)
      std::printf("trace: v%lu, %llu records, %llu record bytes -> %s\n",
                  TraceVer,
                  static_cast<unsigned long long>(Recorder.recordCount()),
                  static_cast<unsigned long long>(Recorder.recordBytes()),
                  RecordFile.c_str());
  }
  if (Pipeline && SampleBudget > 0) {
    ag::SamplingStats SS = Pipeline->sampling();
    std::fprintf(stderr,
                 "sampling: budget %.1f%%, %llu/%llu ticks covered, "
                 "%llu decoration events skipped\n",
                 SS.BudgetPct,
                 static_cast<unsigned long long>(SS.SampledTicks),
                 static_cast<unsigned long long>(SS.TotalTicks),
                 static_cast<unsigned long long>(SS.DroppedEvents));
    if (SS.DroppedEvents)
      std::fprintf(stderr,
                   "sampling: coverage incomplete — linearizability and "
                   "lifetime warnings may be missed (never fabricated)\n");
  }
  if (Found->PostAnalysis)
    Found->PostAnalysis(RT, Builder.graph());

  const ag::AsyncGraph &G = Builder.graph();
  if (!Quiet) {
    std::printf("=== %s (%s variant%s) ===\n", Found->Name.c_str(),
                Fixed ? "fixed" : "buggy",
                NoPromise ? ", promise tracking off" : "");
    std::printf("%s\n", Found->Description.c_str());
    std::printf("ticks: %llu%s | graph: %zu nodes, %zu edges\n\n",
                static_cast<unsigned long long>(RT.tickCount()),
                RT.tickBudgetExhausted() ? " (budget exhausted: starved)"
                                         : "",
                G.nodeCount(), G.liveEdgeCount());
    viz::TextOptions TOpts;
    TOpts.MaxTicks = 12;
    std::printf("%s\n%s", viz::toText(G, TOpts).c_str(),
                viz::warningsReport(G).c_str());
  }

  return Emit(G);
}
