#!/usr/bin/env python3
"""Compare two BenchReport JSON files and flag regressions.

Usage:
    tools/bench_compare.py BASELINE.json CURRENT.json [--threshold PCT]
                           [--wall-threshold PCT] [--allow-missing]

Matches metrics by name and judges each by its unit's direction:

  - rate units ("req/s", "items/s", anything ending in "/s"): higher is
    better; a drop of more than the threshold is a regression.
  - cost units ("x" slowdown factors, "ns"/"ms"/"s" times, "KiB"/"MiB"
    sizes, "bytes"): lower is better; a rise past the threshold is a
    regression.
  - "bool": exact match required (gates like ordering_holds flipping from
    1 to 0 is a regression regardless of threshold).
  - "ratio" metrics named *speedup* or size_ratio*: higher is better (the
    codec's compression and replay-speed ratios, the ingest hub's
    ingest_speedup_* family). Other ratios stay informational — the unit
    is ambiguous (footprint_ratio is a cost).
  - degradation-ladder counters (names starting with "degr_", from the
    fault_soak bench's DegradationStats): lower is better — more
    escalations, shed records, or watchdog stalls at the same workload is
    a robustness regression even though the unit is a plain count.
  - anything else ("records", "count", "edges", ...): informational only —
    printed, never gated. These are workload-shape numbers, not
    performance.

A metric present in the baseline but missing from the current report is a
regression unless --allow-missing is given (renames should be caught, not
silently dropped from the trend). New metrics in the current report are
informational.

Tolerance classes: reports that declare `"timing": "wall-clock"` in their
config block (the wire_throughput bench) carry real-time measurements that
jitter with the host's scheduler, so they are judged against the looser
--wall-threshold (default 35%) instead of --threshold. Those benches
already gate on medians-of-reps internally; the values compared here ARE
the medians, and the wall tolerance only has to absorb cross-run machine
variance, not single-run noise. Virtual-time reports keep the tight
default — they are deterministic and deserve it.

Exit code: 0 when no regressions, 1 otherwise, 2 on bad input.
"""

import argparse
import json
import sys

RATE_SUFFIX = "/s"
COST_UNITS = {"x", "ns", "us", "ms", "s", "KiB", "MiB", "bytes"}


def direction(unit, name=""):
    """'up' = higher is better, 'down' = lower is better, 'bool', or None
    (informational)."""
    if unit.endswith(RATE_SUFFIX):
        return "up"
    if unit in COST_UNITS:
        return "down"
    if unit == "bool":
        return "bool"
    if unit == "ratio" and ("speedup" in name or name.startswith("size_ratio")):
        return "up"
    if name.startswith("degr_"):
        return "down"
    return None


def load(path):
    """Returns (metrics dict, is_wall_clock)."""
    try:
        with open(path) as f:
            doc = json.load(f)
        metrics = {m["name"]: (float(m["value"]), m["unit"])
                   for m in doc["metrics"]}
        wall = doc.get("config", {}).get("timing") == "wall-clock"
        return metrics, wall
    except (OSError, ValueError, KeyError, TypeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def main():
    ap = argparse.ArgumentParser(
        description="diff two BENCH_*.json files with a % threshold")
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="allowed regression in percent (default 10)")
    ap.add_argument("--wall-threshold", type=float, default=35.0,
                    help="allowed regression for wall-clock reports "
                         "(config timing == 'wall-clock'; default 35)")
    ap.add_argument("--allow-missing", action="store_true",
                    help="metrics missing from CURRENT are not regressions")
    args = ap.parse_args()

    base, base_wall = load(args.baseline)
    cur, cur_wall = load(args.current)
    threshold = args.wall_threshold if (base_wall or cur_wall) \
        else args.threshold

    regressions = []
    rows = []
    for name, (bval, bunit) in sorted(base.items()):
        if name not in cur:
            rows.append((name, bunit, bval, None, "MISSING"))
            if not args.allow_missing:
                regressions.append(name)
            continue
        cval, cunit = cur[name]
        d = direction(bunit if bunit == cunit else "", name)
        if d == "bool":
            ok = bval == cval
            rows.append((name, bunit, bval, cval, "ok" if ok else "FLIPPED"))
            if not ok:
                regressions.append(name)
            continue
        if d is None or bval == 0:
            rows.append((name, bunit, bval, cval, "info"))
            continue
        delta = (cval - bval) / bval * 100.0
        worse = -delta if d == "up" else delta
        status = f"{delta:+.1f}%"
        if worse > threshold:
            status += " REGRESSION"
            regressions.append(name)
        rows.append((name, bunit, bval, cval, status))
    for name in sorted(cur):
        if name not in base:
            rows.append((name, cur[name][1], None, cur[name][0], "new"))

    wide = max((len(r[0]) for r in rows), default=10)
    fmt_v = lambda v: "-" if v is None else f"{v:.6g}"
    print(f"{'metric':<{wide}} {'unit':>8} {'baseline':>14} "
          f"{'current':>14}  status")
    for name, unit, bval, cval, status in rows:
        print(f"{name:<{wide}} {unit:>8} {fmt_v(bval):>14} "
              f"{fmt_v(cval):>14}  {status}")

    cls = " [wall-clock tolerance]" if (base_wall or cur_wall) else ""
    if regressions:
        print(f"\n{len(regressions)} regression(s) past "
              f"{threshold:.1f}%{cls}: {', '.join(regressions)}")
        return 1
    print(f"\nno regressions (threshold {threshold:.1f}%{cls})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
