//===- CasesTest.cpp - Table-I case study as an integration suite ------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs every Table-I bug case under the full AsyncG pipeline and asserts
/// that the paper's expected category is detected in the buggy variant and
/// absent in the fixed variant.
///
//===----------------------------------------------------------------------===//

#include "cases/Case.h"

#include <gtest/gtest.h>

using namespace asyncg;
using namespace asyncg::cases;

namespace {

class CaseDetection : public ::testing::TestWithParam<size_t> {};

std::string caseName(const ::testing::TestParamInfo<size_t> &Info) {
  std::string N = allCases()[Info.param].Name;
  for (char &C : N)
    if (C == '-')
      C = '_';
  return N;
}

TEST_P(CaseDetection, BuggyVariantDetected) {
  const CaseDef &Def = allCases()[GetParam()];
  CaseResult R = runCase(Def, /*Fixed=*/false);
  EXPECT_TRUE(R.ExpectedDetected)
      << Def.Name << ": expected category '"
      << ag::bugCategoryName(Def.Expected) << "' not reported; got "
      << R.Warnings.size() << " warnings";
  for (const ag::Warning &W : R.Warnings)
    SCOPED_TRACE(std::string(ag::bugCategoryName(W.Category)) + ": " +
                 W.Message.str());
}

TEST_P(CaseDetection, FixedVariantClean) {
  const CaseDef &Def = allCases()[GetParam()];
  if (!Def.HasFix)
    GTEST_SKIP() << "no fixed variant";
  CaseResult R = runCase(Def, /*Fixed=*/true);
  EXPECT_FALSE(R.ExpectedDetected)
      << Def.Name << ": fixed variant still reports '"
      << ag::bugCategoryName(Def.Expected) << "'";
}

TEST_P(CaseDetection, GraphNonTrivial) {
  const CaseDef &Def = allCases()[GetParam()];
  CaseResult R = runCase(Def, /*Fixed=*/false);
  EXPECT_GT(R.GraphNodes, 2u) << Def.Name;
  EXPECT_GT(R.Ticks, 0u) << Def.Name;
}

INSTANTIATE_TEST_SUITE_P(AllCases, CaseDetection,
                         ::testing::Range<size_t>(0, allCases().size()),
                         caseName);

/// The Fig. 6(a) "nopromise" configuration loses exactly the
/// promise-family detections — coverage ablation of the analysis.
TEST(CaseDetectionAblation, NopromiseMissesPromiseBugs) {
  ag::BuilderConfig NoPromise;
  NoPromise.TrackPromises = false;

  // Promise bug: invisible without promise tracking.
  const CaseDef &Flock = findCase("GH-flock-13");
  EXPECT_FALSE(runCase(Flock, false, NoPromise).ExpectedDetected);
  EXPECT_TRUE(runCase(Flock, false).ExpectedDetected);

  // Emitter bug: still detected without promise tracking.
  const CaseDef &DeadEmit = findCase("SO-38140113");
  EXPECT_TRUE(runCase(DeadEmit, false, NoPromise).ExpectedDetected);

  // Scheduling bug: still detected.
  const CaseDef &Recursive = findCase("GH-npm-12754");
  EXPECT_TRUE(runCase(Recursive, false, NoPromise).ExpectedDetected);
}

/// The detector-threshold configuration is honoured.
TEST(CaseDetectionAblation, RecursiveThresholdConfigurable) {
  detect::DetectorConfig DCfg;
  DCfg.RecursiveMicrotaskThreshold = 1000000; // effectively off
  const CaseDef &Recursive = findCase("SO-30515037");
  EXPECT_FALSE(
      runCase(Recursive, false, ag::BuilderConfig(), DCfg).ExpectedDetected);
}

} // namespace
