//===- StressTest.cpp - large-scale correctness smoke tests --------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "ag/AsyncPipeline.h"
#include "ag/Builder.h"
#include "apps/acmeair/App.h"
#include "apps/acmeair/Workload.h"
#include "detect/Detectors.h"
#include "viz/Dot.h"

#include <gtest/gtest.h>

using namespace asyncg;
using namespace asyncg::ag;
using namespace asyncg::jsrt;
using namespace asyncg::testhelpers;

namespace {

TEST(Stress, DeepPromiseChain) {
  Runtime RT;
  AsyncGBuilder B;
  RT.hooks().attach(&B);
  double Final = 0;
  constexpr int Depth = 5000;
  runMain(RT, [&](Runtime &R) {
    PromiseRef P = R.promiseResolvedWith(JSLOC, Value::number(0));
    for (int I = 0; I < Depth; ++I)
      P = R.promiseThen(JSLOC, P,
                        R.makeBuiltin("inc",
                                      [](Runtime &, const CallArgs &A) {
                                        return Completion::normal(
                                            Value::number(
                                                A.arg(0).asNumber() + 1));
                                      }));
    R.promiseThen(JSLOC, P,
                  R.makeBuiltin("final", [&Final](Runtime &,
                                                  const CallArgs &A) {
                    Final = A.arg(0).asNumber();
                    return Completion::normal();
                  }));
  });
  EXPECT_EQ(Final, Depth);
  // One CE per reaction plus registrations and OBs.
  EXPECT_GT(B.graph().nodeCount(), static_cast<size_t>(2 * Depth));
}

TEST(Stress, ManyTimersFireInDeadlineOrder) {
  Runtime RT;
  std::vector<double> Fired;
  constexpr int N = 5000;
  runMain(RT, [&](Runtime &R) {
    for (int I = 0; I < N; ++I) {
      double Ms = static_cast<double>((I * 7919) % 5000 + 1);
      R.setTimeout(JSLOC,
                   R.makeBuiltin("t",
                                 [&Fired, Ms](Runtime &, const CallArgs &) {
                                   Fired.push_back(Ms);
                                   return Completion::normal();
                                 }),
                   Ms);
    }
  });
  ASSERT_EQ(Fired.size(), static_cast<size_t>(N));
  EXPECT_TRUE(std::is_sorted(Fired.begin(), Fired.end()));
}

TEST(Stress, WideEmitterFanout) {
  Runtime RT;
  int Invocations = 0;
  runMain(RT, [&](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLOC);
    for (int I = 0; I < 1000; ++I)
      R.emitterOn(JSLOC, E, "tick",
                  R.makeBuiltin("l" + std::to_string(I),
                                [&Invocations](Runtime &, const CallArgs &) {
                                  ++Invocations;
                                  return Completion::normal();
                                }));
    for (int I = 0; I < 20; ++I)
      R.emitterEmit(JSLOC, E, "tick");
  });
  EXPECT_EQ(Invocations, 20000);
}

TEST(Stress, AcmeAirGraphInvariantsAtScale) {
  Runtime RT;
  acmeair::AppConfig ACfg;
  acmeair::AcmeAirApp App(RT, ACfg);
  acmeair::WorkloadConfig WCfg;
  WCfg.TotalRequests = 600;
  WCfg.Clients = 8;
  acmeair::WorkloadDriver Driver(RT, ACfg.Port, WCfg);

  AsyncGBuilder Builder;
  detect::DetectorSuite Detectors;
  Detectors.attachTo(Builder);
  RT.hooks().attach(&Builder);

  runMain(RT, [&](Runtime &) {
    App.start(JSLOC);
    Driver.start();
  });
  ASSERT_EQ(Driver.errors(), 0u);

  const AsyncGraph &G = Builder.graph();
  ASSERT_GT(G.nodeCount(), 10000u);

  // The property-test invariants must survive a realistic server run.
  uint32_t PrevTick = 0;
  for (const AgTick &T : G.ticks()) {
    EXPECT_GT(T.Index, PrevTick);
    PrevTick = T.Index;
    EXPECT_FALSE(T.Nodes.empty());
  }
  for (const AgEdge &E : G.edges()) {
    EXPECT_LT(E.From, G.nodeCount());
    EXPECT_LT(E.To, G.nodeCount());
    if (E.Kind == EdgeKind::Causal) {
      EXPECT_LE(G.node(E.From).Tick, G.node(E.To).Tick);
    }
    if (E.Kind == EdgeKind::Binding) {
      EXPECT_EQ(G.node(E.From).Kind, NodeKind::CE);
      EXPECT_EQ(G.node(E.To).Kind, NodeKind::CR);
    }
  }
  // Every request handler execution is a CE bound to the router CR.
  NodeId RouterCr = InvalidNode;
  for (const AgNode &N : G.nodes())
    if (N.Kind == NodeKind::CR && N.Api == ApiKind::HttpCreateServer)
      RouterCr = N.Id;
  ASSERT_NE(RouterCr, InvalidNode);
  EXPECT_EQ(G.node(RouterCr).ExecCount, 600u);
}

/// The off-thread pipeline under a realistic server workload: the graph the
/// builder thread constructs from ring records must match the inline-built
/// graph byte-for-byte.
TEST(Stress, AcmeAirAsyncPipelineMatchesSync) {
  auto RunServer = [](instr::AnalysisBase &Analysis) {
    Runtime RT;
    acmeair::AppConfig ACfg;
    acmeair::AcmeAirApp App(RT, ACfg);
    acmeair::WorkloadConfig WCfg;
    WCfg.TotalRequests = 300;
    WCfg.Clients = 8;
    acmeair::WorkloadDriver Driver(RT, ACfg.Port, WCfg);
    RT.hooks().attach(&Analysis);
    runMain(RT, [&](Runtime &) {
      App.start(JSLOC);
      Driver.start();
    });
    ASSERT_EQ(Driver.errors(), 0u);
  };

  AsyncGBuilder Sync;
  RunServer(Sync);

  AsyncGBuilder OffThread;
  {
    ag::AsyncPipeline Pipeline(OffThread);
    RunServer(Pipeline);
    Pipeline.stop();
    EXPECT_GT(Pipeline.pushedRecords(), 10000u);
    EXPECT_EQ(Pipeline.pushedRecords(), Pipeline.consumedRecords());
    EXPECT_EQ(Pipeline.droppedEvents(), 0u);
  }

  EXPECT_EQ(viz::toDot(OffThread.graph()), viz::toDot(Sync.graph()));
}

} // namespace
