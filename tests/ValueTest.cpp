//===- ValueTest.cpp - unit tests for values, objects, completions ------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "jsrt/Completion.h"
#include "jsrt/Emitter.h"
#include "jsrt/Object.h"
#include "jsrt/Promise.h"
#include "jsrt/Runtime.h"
#include "jsrt/Value.h"

#include <gtest/gtest.h>

using namespace asyncg;
using namespace asyncg::jsrt;

namespace {

TEST(Value, KindsAndAccessors) {
  EXPECT_TRUE(Value().isUndefined());
  EXPECT_TRUE(Value::null().isNull());
  EXPECT_TRUE(Value::null().isNullish());
  EXPECT_TRUE(Value::boolean(true).asBoolean());
  EXPECT_EQ(Value::number(2.5).asNumber(), 2.5);
  EXPECT_EQ(Value::str("hi").asString(), "hi");
  EXPECT_EQ(Value::str("hi").kind(), ValueKind::String);
  Value O = Object::make("Thing");
  EXPECT_TRUE(O.isObject());
  EXPECT_EQ(O.asObject()->className(), "Thing");
  Value A = ArrayData::make({Value::number(1), Value::number(2)});
  EXPECT_TRUE(A.isArray());
  EXPECT_EQ(A.asArray()->size(), 2u);
}

TEST(Value, Truthiness) {
  EXPECT_FALSE(Value().toBoolean());
  EXPECT_FALSE(Value::null().toBoolean());
  EXPECT_FALSE(Value::boolean(false).toBoolean());
  EXPECT_FALSE(Value::number(0).toBoolean());
  EXPECT_FALSE(Value::number(0.0 / 0.0).toBoolean()); // NaN
  EXPECT_FALSE(Value::str("").toBoolean());
  EXPECT_TRUE(Value::number(-1).toBoolean());
  EXPECT_TRUE(Value::str("0").toBoolean());
  EXPECT_TRUE(Object::make().toBoolean());
  EXPECT_TRUE(ArrayData::make().toBoolean());
}

TEST(Value, TypeOf) {
  EXPECT_STREQ(Value().typeOf(), "undefined");
  EXPECT_STREQ(Value::null().typeOf(), "object");
  EXPECT_STREQ(Value::boolean(true).typeOf(), "boolean");
  EXPECT_STREQ(Value::number(1).typeOf(), "number");
  EXPECT_STREQ(Value::str("s").typeOf(), "string");
  Runtime RT;
  Function F = RT.makeBuiltin("f", [](Runtime &, const CallArgs &) {
    return Completion::normal();
  });
  EXPECT_STREQ(F.toValue().typeOf(), "function");
}

TEST(Value, StrictEquals) {
  EXPECT_TRUE(Value().strictEquals(Value::undefined()));
  EXPECT_TRUE(Value::null().strictEquals(Value::null()));
  EXPECT_FALSE(Value::null().strictEquals(Value::undefined()));
  EXPECT_TRUE(Value::number(3).strictEquals(Value::number(3)));
  EXPECT_FALSE(Value::number(3).strictEquals(Value::number(4)));
  EXPECT_FALSE(Value::number(3).strictEquals(Value::str("3")));
  EXPECT_TRUE(Value::str("a").strictEquals(Value::str("a")));

  // Reference identity for heap entities.
  Value O1 = Object::make(), O2 = Object::make();
  EXPECT_TRUE(O1.strictEquals(O1));
  EXPECT_FALSE(O1.strictEquals(O2));

  Runtime RT;
  auto Body = [](Runtime &, const CallArgs &) { return Completion::normal(); };
  Function F1 = RT.makeBuiltin("f", Body);
  Function F2 = RT.makeBuiltin("f", Body);
  EXPECT_TRUE(F1.toValue().strictEquals(F1.toValue()));
  EXPECT_FALSE(F1.toValue().strictEquals(F2.toValue()));
  EXPECT_TRUE(F1.sameAs(F1));
  EXPECT_FALSE(F1.sameAs(F2));
}

TEST(Value, DisplayStrings) {
  EXPECT_EQ(Value().toDisplayString(), "undefined");
  EXPECT_EQ(Value::number(42).toDisplayString(), "42");
  EXPECT_EQ(Value::str("s").toDisplayString(), "s");
  EXPECT_EQ(Object::make("Session").toDisplayString(), "[object Session]");
  EXPECT_EQ(ArrayData::make({Value::number(1)}).toDisplayString(),
            "[Array(1)]");
  Runtime RT;
  EmitterRef E = RT.emitterCreate(JSLOC, "Bus");
  EXPECT_NE(Value::emitter(E).toDisplayString().find("Bus"),
            std::string::npos);
  PromiseRef P = RT.promiseBare(JSLOC);
  EXPECT_NE(Value::promise(P).toDisplayString().find("pending"),
            std::string::npos);
}

TEST(Value, ExternalRoundTrip) {
  auto Payload = std::make_shared<int>(7);
  Value V = Value::external(Payload, "test.payload");
  EXPECT_TRUE(V.isExternal());
  EXPECT_EQ(*V.asExternal<int>("test.payload"), 7);
  EXPECT_TRUE(V.strictEquals(Value::external(Payload, "test.payload")));
}

TEST(Object, Properties) {
  Value V = Object::make();
  ObjectRef O = V.asObject();
  EXPECT_FALSE(O->has("a"));
  EXPECT_TRUE(O->get("a").isUndefined());
  O->set("a", Value::number(1));
  O->set("b", Value::str("x"));
  EXPECT_TRUE(O->has("a"));
  EXPECT_EQ(O->size(), 2u);
  EXPECT_EQ(O->get("b").asString(), "x");
  O->set("a", Value::number(2)); // overwrite
  EXPECT_EQ(O->get("a").asNumber(), 2);
  EXPECT_TRUE(O->erase("a"));
  EXPECT_FALSE(O->erase("a"));
  EXPECT_EQ(O->size(), 1u);
}

TEST(Object, ArrayOps) {
  Value V = ArrayData::make();
  ArrayRef A = V.asArray();
  EXPECT_EQ(A->size(), 0u);
  A->push(Value::number(5));
  A->push(Value::str("s"));
  EXPECT_EQ(A->at(0).asNumber(), 5);
  EXPECT_TRUE(A->at(99).isUndefined());
}

TEST(Completion, NormalAndThrow) {
  Completion N = Completion::normal(Value::number(1));
  EXPECT_TRUE(N.isNormal());
  EXPECT_FALSE(N.isThrow());
  EXPECT_EQ(N.value().asNumber(), 1);

  Completion T = Completion::thrown(Value::str("boom"));
  EXPECT_TRUE(T.isThrow());
  EXPECT_EQ(T.value().asString(), "boom");

  Completion E = Completion::error("TypeError: x");
  EXPECT_TRUE(E.isThrow());
  EXPECT_EQ(E.value().asString(), "TypeError: x");

  // Implicit Value -> normal completion (used by co_return).
  Completion Implicit = Value::number(9);
  EXPECT_TRUE(Implicit.isNormal());
  EXPECT_EQ(Implicit.value().asNumber(), 9);

  Completion Default;
  EXPECT_TRUE(Default.isNormal());
  EXPECT_TRUE(Default.value().isUndefined());
}

TEST(CallArgsTest, OutOfRangeIsUndefined) {
  CallArgs Empty;
  EXPECT_EQ(Empty.size(), 0u);
  EXPECT_TRUE(Empty.arg(0).isUndefined());
  CallArgs Two(Value::number(1), {Value::str("a"), Value::str("b")});
  EXPECT_EQ(Two.size(), 2u);
  EXPECT_EQ(Two.thisValue().asNumber(), 1);
  EXPECT_EQ(Two.arg(1).asString(), "b");
  EXPECT_TRUE(Two.arg(2).isUndefined());
}

TEST(FunctionTest, IdentityAndMetadata) {
  Runtime RT;
  Function F = RT.makeFunction("myFn", JSLINE("x.js", 12),
                               [](Runtime &, const CallArgs &) {
                                 return Completion::normal();
                               });
  EXPECT_TRUE(F.isValid());
  EXPECT_GT(F.id(), 0u);
  EXPECT_EQ(F.name(), "myFn");
  EXPECT_EQ(F.loc().line(), 12u);
  EXPECT_FALSE(F.isBuiltin());

  Function B = RT.makeBuiltin("b", [](Runtime &, const CallArgs &) {
    return Completion::normal();
  });
  EXPECT_TRUE(B.isBuiltin());
  EXPECT_TRUE(B.loc().isInternal());
  EXPECT_NE(F.id(), B.id());

  Function Invalid;
  EXPECT_FALSE(Invalid.isValid());
  EXPECT_EQ(Invalid.id(), 0u);
}

TEST(EmitterData, StateQueries) {
  Runtime RT;
  EmitterRef E = RT.emitterCreate(JSLOC);
  EXPECT_EQ(E->listenerCount("x"), 0u);
  EXPECT_FALSE(E->hasListeners("x"));
  Function F = RT.makeBuiltin("l", [](Runtime &, const CallArgs &) {
    return Completion::normal();
  });
  RT.emitterOn(JSLOC, E, "x", F);
  RT.emitterOn(JSLOC, E, "x", F);
  RT.emitterOn(JSLOC, E, "y", F);
  EXPECT_EQ(E->listenerCount("x"), 2u);
  EXPECT_EQ(E->eventNames(), (std::vector<std::string>{"x", "y"}));
}

} // namespace
