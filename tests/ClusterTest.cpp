//===- ClusterTest.cpp - sharded multi-loop cluster mode ---------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cluster mode's correctness contract:
///  - shard-id packing round-trips, and shard 0 is the identity encoding;
///  - a 1-loop cluster run produces a merged graph byte-identical (as DOT)
///    to the classic single-loop build of the same workload;
///  - an N-loop run is deterministic where it promises to be: repeated
///    runs with the same seed yield the identical merged warning set, and
///    that set equals the single-loop one (loop-local bugs neither move
///    nor duplicate under sharding);
///  - cross-loop handoffs surface as "xloop" Causal edges in the merged
///    graph, with no unresolved handoff ids;
///  - the v3 trace format announces the recording shard and stays
///    byte-identical to v2 for shard 0.
///
//===----------------------------------------------------------------------===//

#include "ag/Builder.h"
#include "apps/acmeair/App.h"
#include "apps/acmeair/Workload.h"
#include "apps/cluster/Harness.h"
#include "detect/Detectors.h"
#include "instr/TraceCodec.h"
#include "jsrt/Ids.h"
#include "jsrt/Runtime.h"
#include "viz/Dot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace asyncg;
using namespace asyncg::jsrt;

namespace {

TEST(ShardIds, PackingRoundTrips) {
  EXPECT_EQ(shardIdBase(0), 0u);
  EXPECT_EQ(idShard(shardIdBase(3) | 42u), 3u);
  EXPECT_EQ(idLocal(shardIdBase(3) | 42u), 42u);
  EXPECT_EQ(idShard(MaxShardId), 0u); // small local ids carry no shard
  EXPECT_EQ(idShard(shardIdBase(MaxShardId)), MaxShardId);
  EXPECT_EQ(idLocal(shardIdBase(MaxShardId)), 0u);
  // Shard 0 is the identity encoding: packing changes nothing.
  for (uint64_t Id : {uint64_t(0), uint64_t(1), uint64_t(1) << 40}) {
    EXPECT_EQ(shardIdBase(0) | Id, Id);
    EXPECT_EQ(idLocal(Id), Id);
  }
}

TEST(ShardIds, RuntimeMintsPackedIds) {
  RuntimeConfig RC;
  RC.Shard = 5;
  Runtime RT(RC);
  Function F = RT.makeBuiltin(
      "f", [](Runtime &, const CallArgs &) { return Completion::normal(); });
  EXPECT_EQ(idShard(F.id()), 5u);
  EXPECT_GT(idLocal(F.id()), 0u);
}

/// The classic single-loop build of the AcmeAir workload, mirroring what
/// the cluster harness does for its only shard when Loops == 1.
std::string singleLoopDot(uint64_t Requests, int Clients, uint64_t Seed) {
  Runtime RT;
  acmeair::AppConfig ACfg;
  acmeair::AcmeAirApp App(RT, ACfg);
  acmeair::WorkloadConfig WCfg;
  WCfg.Clients = Clients;
  WCfg.TotalRequests = Requests;
  WCfg.Seed = Seed;
  acmeair::WorkloadDriver Driver(RT, ACfg.Port, WCfg);

  ag::AsyncGBuilder Builder;
  detect::DetectorSuite Detectors;
  Detectors.attachTo(Builder);
  RT.hooks().attach(&Builder);

  // Same app-start location the cluster harness uses, so the graphs can
  // be compared byte-for-byte (JSLOC would bake in this file's line).
  Function Main = RT.makeBuiltin("main", [&](Runtime &, const CallArgs &) {
    App.start(JSLINE("cluster.js", 1));
    Driver.start();
    return Completion::normal();
  });
  RT.main(Main);
  EXPECT_EQ(Driver.completed(), Requests);
  return viz::toDot(Builder.graph());
}

TEST(ClusterMode, OneLoopMergedDotMatchesClassicSingleLoop) {
  cluster::ClusterConfig Cfg;
  Cfg.Loops = 1;
  Cfg.TotalRequests = 300;
  Cfg.TotalClients = 8;
  Cfg.Mode = ag::PipelineMode::Synchronous;
  cluster::ClusterHarness H(Cfg);
  cluster::ClusterResult R = H.run();
  ASSERT_EQ(R.TotalCompleted, Cfg.TotalRequests);
  ASSERT_EQ(R.TotalErrors, 0u);
  EXPECT_EQ(R.Merge.CrossLoopEdges, 0u);

  std::string Merged = viz::toDot(H.merged());
  std::string Classic =
      singleLoopDot(Cfg.TotalRequests, Cfg.TotalClients, Cfg.Seed);
  // Compare by hand: a full gtest string diff of two multi-megabyte DOT
  // files is unreadable (and slow); the first divergent byte is enough.
  if (Merged != Classic) {
    size_t At = 0;
    while (At < Merged.size() && At < Classic.size() &&
           Merged[At] == Classic[At])
      ++At;
    FAIL() << "merged DOT diverges from classic single-loop DOT at byte "
           << At << " (sizes " << Merged.size() << " vs " << Classic.size()
           << "):\n merged:  ..."
           << Merged.substr(At > 40 ? At - 40 : 0, 120) << "\n classic: ..."
           << Classic.substr(At > 40 ? At - 40 : 0, 120);
  }
}

cluster::ClusterConfig fourLoopConfig() {
  cluster::ClusterConfig Cfg;
  Cfg.Loops = 4;
  Cfg.TotalRequests = 400;
  Cfg.TotalClients = 16;
  Cfg.Mode = ag::PipelineMode::Async;
  Cfg.GossipIntervalMs = 1;
  return Cfg;
}

TEST(ClusterMode, MergedWarningsDeterministicAndEqualToSingleLoop) {
  cluster::ClusterConfig Cfg1;
  Cfg1.TotalRequests = 400;
  Cfg1.TotalClients = 16;
  cluster::ClusterHarness H1(Cfg1);
  cluster::ClusterResult R1 = H1.run();
  ASSERT_EQ(R1.TotalCompleted, Cfg1.TotalRequests);
  ASSERT_FALSE(R1.Warnings.empty());

  std::vector<std::string> First;
  for (int Run = 0; Run != 3; ++Run) {
    cluster::ClusterHarness H(fourLoopConfig());
    cluster::ClusterResult R = H.run();
    ASSERT_EQ(R.TotalCompleted, 400u) << "run " << Run;
    ASSERT_EQ(R.TotalErrors, 0u) << "run " << Run;
    if (Run == 0)
      First = R.Warnings;
    else
      EXPECT_EQ(R.Warnings, First) << "run " << Run;
  }
  // Loop-local bugs neither move nor duplicate when the app is sharded.
  EXPECT_EQ(First, R1.Warnings);
}

TEST(ClusterMode, CrossLoopHandoffsBecomeXloopEdges) {
  cluster::ClusterHarness H(fourLoopConfig());
  cluster::ClusterResult R = H.run();
  ASSERT_EQ(R.TotalCompleted, 400u);
  EXPECT_GT(R.Merge.CrossLoopEdges, 0u);
  EXPECT_EQ(R.Merge.UnresolvedHandoffs, 0u);
  EXPECT_EQ(R.Merge.Shards, 4u);

  uint64_t Sent = 0, Received = 0;
  for (const cluster::ShardResult &S : R.Shards) {
    Sent += S.Sent;
    Received += S.Received;
  }
  EXPECT_GT(Sent, 0u);
  // The kernel delivers every message posted before quiesce; the merged
  // graph carries exactly one xloop edge per delivered message.
  EXPECT_EQ(R.Merge.CrossLoopEdges, Received);
  EXPECT_LE(Received, Sent);
}

/// A tiny deterministic workload for trace tests.
void runTinyWorkload(Runtime &RT) {
  Function Main = RT.makeBuiltin("main", [](Runtime &R, const CallArgs &) {
    Function Cb = R.makeFunction(
        "tick", JSLOC,
        [](Runtime &, const CallArgs &) { return Completion::normal(); });
    R.setTimeout(JSLOC, Cb, 1);
    return Completion::normal();
  });
  RT.main(Main);
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

TEST(TraceV3, ShardInfoRoundTripsAndShardZeroStaysV2) {
  std::string P0 = ::testing::TempDir() + "cluster_s0.agtrace";
  std::string P0x = ::testing::TempDir() + "cluster_s0x.agtrace";
  std::string P3 = ::testing::TempDir() + "cluster_s3.agtrace";

  {
    Runtime RT;
    instr::TraceRecorder Rec;
    ASSERT_TRUE(Rec.open(P0)); // default shard
    RT.hooks().attach(&Rec);
    runTinyWorkload(RT);
    ASSERT_TRUE(Rec.finalize());
  }
  {
    Runtime RT;
    instr::TraceRecorder Rec;
    ASSERT_TRUE(Rec.open(P0x, /*Shard=*/0)); // explicit shard 0
    RT.hooks().attach(&Rec);
    runTinyWorkload(RT);
    ASSERT_TRUE(Rec.finalize());
  }
  // Shard 0 writes no ShardInfo record: explicit and default are
  // byte-identical, i.e. exactly the v2 stream.
  EXPECT_EQ(slurp(P0), slurp(P0x));

  {
    RuntimeConfig RC;
    RC.Shard = 3;
    Runtime RT(RC);
    instr::TraceRecorder Rec;
    ASSERT_TRUE(Rec.open(P3, /*Shard=*/3));
    RT.hooks().attach(&Rec);
    runTinyWorkload(RT);
    ASSERT_TRUE(Rec.finalize());
  }

  // Replay the shard-3 trace by hand so the decoder is inspectable.
  trace::TraceFileReader Reader;
  std::string Err;
  ASSERT_TRUE(Reader.open(P3, &Err)) << Err;
  instr::TraceDecoder Decoder;
  Decoder.setSymbolRemap(Reader.symbolRemap());
  ag::AsyncGBuilder Builder;
  trace::TraceRecord Buf[256];
  while (size_t N = Reader.read(Buf, 256))
    Decoder.decode(Buf, N, Builder);
  EXPECT_EQ(Decoder.shard(), 3u);
  EXPECT_EQ(Decoder.badRecords(), 0u);
  EXPECT_GT(Builder.graph().nodes().size(), 0u);

  std::remove(P0.c_str());
  std::remove(P0x.c_str());
  std::remove(P3.c_str());
}

} // namespace
