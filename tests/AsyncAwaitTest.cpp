//===- AsyncAwaitTest.cpp - async/await coroutine tests ------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "jsrt/AsyncAwait.h"

#include <gtest/gtest.h>

using namespace asyncg;
using namespace asyncg::jsrt;
using namespace asyncg::testhelpers;

namespace {

PromiseRef resolveLater(Runtime &RT, double Ms, Value V) {
  PromiseRef P = RT.promiseBare(JSLOC);
  RT.setTimeout(JSLOC,
                RT.makeBuiltin("resolveLater",
                               [P, V](Runtime &R, const CallArgs &) {
                                 R.resolvePromise(JSLOC, P, V);
                                 return Completion::normal();
                               }),
                Ms);
  return P;
}

PromiseRef rejectLater(Runtime &RT, double Ms, Value V) {
  PromiseRef P = RT.promiseBare(JSLOC);
  RT.setTimeout(JSLOC,
                RT.makeBuiltin("rejectLater",
                               [P, V](Runtime &R, const CallArgs &) {
                                 R.rejectPromise(JSLOC, P, V);
                                 return Completion::normal();
                               }),
                Ms);
  return P;
}

JsAsync simpleAdd(Runtime &RT, AsyncOrigin, double A, double B) {
  Value X = co_await Await(resolveLater(RT, 1, Value::number(A)));
  Value Y = co_await Await(resolveLater(RT, 1, Value::number(B)));
  co_return Value::number(X.asNumber() + Y.asNumber());
}

TEST(AsyncAwait, SequentialAwaits) {
  Runtime RT;
  double Got = 0;
  runMain(RT, [&](Runtime &R) {
    JsAsync A = simpleAdd(R, AsyncOrigin{"simpleAdd", JSLOC}, 3, 4);
    R.promiseThen(JSLOC, A.promise(),
                  R.makeBuiltin("h", [&Got](Runtime &, const CallArgs &Ar) {
                    Got = Ar.arg(0).asNumber();
                    return Completion::normal();
                  }));
  });
  EXPECT_EQ(Got, 7);
}

JsAsync runsToFirstAwait(Runtime &RT, AsyncOrigin,
                         std::vector<std::string> &Log) {
  Log.push_back("body-start");
  co_await Await(resolveLater(RT, 1, Value::undefined()));
  Log.push_back("body-resumed");
  co_return Value::undefined();
}

TEST(AsyncAwait, BodyRunsSynchronouslyToFirstAwait) {
  Runtime RT;
  std::vector<std::string> Log;
  runMain(RT, [&](Runtime &R) {
    Log.push_back("before-call");
    runsToFirstAwait(R, AsyncOrigin{"f", JSLOC}, Log);
    Log.push_back("after-call");
  });
  ASSERT_EQ(Log.size(), 4u);
  EXPECT_EQ(Log[0], "before-call");
  EXPECT_EQ(Log[1], "body-start");
  EXPECT_EQ(Log[2], "after-call");
  EXPECT_EQ(Log[3], "body-resumed");
}

JsAsync abandonsOnRejection(Runtime &RT, AsyncOrigin, bool &ReachedTail) {
  co_await Await(rejectLater(RT, 1, Value::str("nope")));
  ReachedTail = true;
  co_return Value::undefined();
}

TEST(AsyncAwait, RejectionAbandonsBodyAndRejectsResult) {
  Runtime RT;
  bool ReachedTail = false;
  std::string Err;
  runMain(RT, [&](Runtime &R) {
    JsAsync A = abandonsOnRejection(R, AsyncOrigin{"f", JSLOC}, ReachedTail);
    R.promiseCatch(JSLOC, A.promise(),
                   R.makeBuiltin("h", [&Err](Runtime &, const CallArgs &Ar) {
                     Err = Ar.arg(0).asString();
                     return Completion::normal();
                   }));
  });
  EXPECT_FALSE(ReachedTail);
  EXPECT_EQ(Err, "nope");
}

JsAsync handlesRejection(Runtime &RT, AsyncOrigin) {
  AwaitResult R = co_await TryAwait(rejectLater(RT, 1, Value::str("caught")));
  if (R.Rejected)
    co_return Value::str("recovered:" + R.V.asString());
  co_return Value::str("unexpected");
}

TEST(AsyncAwait, TryAwaitCatchesRejection) {
  Runtime RT;
  std::string Got;
  runMain(RT, [&](Runtime &R) {
    JsAsync A = handlesRejection(R, AsyncOrigin{"f", JSLOC});
    R.promiseThen(JSLOC, A.promise(),
                  R.makeBuiltin("h", [&Got](Runtime &, const CallArgs &Ar) {
                    Got = Ar.arg(0).asString();
                    return Completion::normal();
                  }));
  });
  EXPECT_EQ(Got, "recovered:caught");
}

JsAsync awaitsPlainValue(Runtime &RT, AsyncOrigin,
                         std::vector<std::string> &Log) {
  (void)RT;
  Value V = co_await Await(Value::number(5));
  Log.push_back("got:" + V.toDisplayString());
  co_return V;
}

TEST(AsyncAwait, AwaitNonPromiseStillYieldsToMicrotasks) {
  Runtime RT;
  std::vector<std::string> Log;
  runMain(RT, [&](Runtime &R) {
    awaitsPlainValue(R, AsyncOrigin{"f", JSLOC}, Log);
    Log.push_back("sync-after");
  });
  // Awaiting a plain value resumes in a micro-task, not synchronously.
  EXPECT_EQ(Log, (std::vector<std::string>{"sync-after", "got:5"}));
}

JsAsync inner(Runtime &RT, AsyncOrigin) {
  Value V = co_await Await(resolveLater(RT, 1, Value::number(10)));
  co_return V;
}

JsAsync outer(Runtime &RT, AsyncOrigin) {
  JsAsync I = inner(RT, AsyncOrigin{"inner", JSLOC});
  Value V = co_await Await(I.promise());
  co_return Value::number(V.asNumber() * 2);
}

TEST(AsyncAwait, NestedAsyncFunctions) {
  Runtime RT;
  double Got = 0;
  runMain(RT, [&](Runtime &R) {
    JsAsync O = outer(R, AsyncOrigin{"outer", JSLOC});
    R.promiseThen(JSLOC, O.promise(),
                  R.makeBuiltin("h", [&Got](Runtime &, const CallArgs &Ar) {
                    Got = Ar.arg(0).asNumber();
                    return Completion::normal();
                  }));
  });
  EXPECT_EQ(Got, 20);
}

JsAsync throws(Runtime &RT, AsyncOrigin) {
  co_await Await(resolveLater(RT, 1, Value::undefined()));
  co_return Completion::thrown(Value::str("async-throw"));
}

TEST(AsyncAwait, CoReturnThrownRejectsResultPromise) {
  Runtime RT;
  std::string Err;
  runMain(RT, [&](Runtime &R) {
    JsAsync A = throws(R, AsyncOrigin{"f", JSLOC});
    R.promiseCatch(JSLOC, A.promise(),
                   R.makeBuiltin("h", [&Err](Runtime &, const CallArgs &Ar) {
                     Err = Ar.arg(0).asString();
                     return Completion::normal();
                   }));
  });
  EXPECT_EQ(Err, "async-throw");
}

JsAsync returnsPromise(Runtime &RT, AsyncOrigin) {
  co_return Value::promise(resolveLater(RT, 1, Value::number(99)));
}

TEST(AsyncAwait, CoReturnPromiseIsAdopted) {
  Runtime RT;
  double Got = 0;
  runMain(RT, [&](Runtime &R) {
    JsAsync A = returnsPromise(R, AsyncOrigin{"f", JSLOC});
    R.promiseThen(JSLOC, A.promise(),
                  R.makeBuiltin("h", [&Got](Runtime &, const CallArgs &Ar) {
                    Got = Ar.arg(0).asNumber();
                    return Completion::normal();
                  }));
  });
  EXPECT_EQ(Got, 99);
}

JsAsync noOriginParam(Runtime &RT) {
  Value V = co_await Await(resolveLater(RT, 1, Value::number(1)));
  co_return V;
}

TEST(AsyncAwait, OriginParameterIsOptional) {
  Runtime RT;
  double Got = 0;
  runMain(RT, [&](Runtime &R) {
    JsAsync A = noOriginParam(R);
    R.promiseThen(JSLOC, A.promise(),
                  R.makeBuiltin("h", [&Got](Runtime &, const CallArgs &Ar) {
                    Got = Ar.arg(0).asNumber();
                    return Completion::normal();
                  }));
  });
  EXPECT_EQ(Got, 1);
}

} // namespace
