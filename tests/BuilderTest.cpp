//===- BuilderTest.cpp - Async Graph construction tests (Algorithms 1-3) ------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "ag/Builder.h"
#include "ag/Templates.h"
#include "ag/Validator.h"

#include <gtest/gtest.h>

using namespace asyncg;
using namespace asyncg::ag;
using namespace asyncg::jsrt;
using namespace asyncg::testhelpers;

namespace {

/// Runs \p Body under a fresh builder and returns it.
std::unique_ptr<AsyncGBuilder> build(std::function<void(Runtime &)> Body,
                                     BuilderConfig Cfg = BuilderConfig()) {
  auto B = std::make_unique<AsyncGBuilder>(Cfg);
  Runtime RT;
  RT.hooks().attach(B.get());
  runMain(RT, std::move(Body));
  return B;
}

/// First node of the given kind, or nullptr.
const AgNode *firstNode(const AsyncGraph &G, NodeKind K,
                        ApiKind Api = ApiKind::None) {
  for (const AgNode &N : G.nodes())
    if (N.Kind == K && (Api == ApiKind::None || N.Api == Api))
      return &N;
  return nullptr;
}

size_t countNodes(const AsyncGraph &G, NodeKind K) {
  size_t C = 0;
  for (const AgNode &N : G.nodes())
    C += N.Kind == K;
  return C;
}

TEST(Builder, TicksStartAtTopLevelDispatchOnly) {
  auto B = build([](Runtime &R) {
    // A nested plain call must not open a tick (Algorithm 1: the shadow
    // stack is non-empty).
    Function Inner = R.makeBuiltin("inner", [](Runtime &, const CallArgs &) {
      return Completion::normal();
    });
    R.call(Inner);
    R.nextTick(JSLOC, R.makeBuiltin("t", [](Runtime &, const CallArgs &) {
      return Completion::normal();
    }));
  });
  const AsyncGraph &G = B->graph();
  ASSERT_EQ(G.ticks().size(), 2u);
  EXPECT_EQ(G.ticks()[0].Phase, PhaseKind::Main);
  EXPECT_EQ(G.ticks()[0].Index, 1u);
  EXPECT_EQ(G.ticks()[1].Phase, PhaseKind::NextTick);
}

TEST(Builder, EmptyTicksAreNotCommitted) {
  // A callback that performs no tracked activity still executes, but with
  // BuildGraph the CE roots the tick — so instead check the nopromise
  // filter: promise-only micro ticks vanish entirely.
  BuilderConfig Cfg;
  Cfg.TrackPromises = false;
  auto B = build(
      [](Runtime &R) {
        PromiseRef P = R.promiseResolvedWith(JSLOC, Value::number(1));
        R.promiseThen(JSLOC, P,
                      R.makeBuiltin("r", [](Runtime &, const CallArgs &) {
                        return Completion::normal();
                      }));
      },
      Cfg);
  for (const AgTick &T : B->graph().ticks())
    EXPECT_NE(T.Phase, PhaseKind::PromiseMicro);
}

TEST(Builder, CeBindsToCrWithBothEdges) {
  auto B = build([](Runtime &R) {
    R.setTimeout(JSLOC,
                 R.makeFunction("cb", JSLINE("t.js", 2),
                                [](Runtime &, const CallArgs &) {
                                  return Completion::normal();
                                }),
                 5);
  });
  const AsyncGraph &G = B->graph();
  const AgNode *Cr = firstNode(G, NodeKind::CR, ApiKind::SetTimeout);
  ASSERT_NE(Cr, nullptr);
  EXPECT_EQ(Cr->ExecCount, 1u);
  auto Execs = G.executionsOf(Cr->Sched);
  ASSERT_EQ(Execs.size(), 1u);
  const AgNode &Ce = G.node(Execs.front());
  EXPECT_EQ(Ce.Kind, NodeKind::CE);
  EXPECT_GT(Ce.Tick, Cr->Tick);

  // Dashed binding edge CE -> CR and causal edge CR -> CE.
  bool Binding = false, Causal = false;
  for (uint32_t E : G.outEdges(Ce.Id))
    Binding |= G.edge(E).Kind == EdgeKind::Binding && G.edge(E).To == Cr->Id;
  for (uint32_t E : G.inEdges(Ce.Id))
    Causal |= G.edge(E).Kind == EdgeKind::Causal && G.edge(E).From == Cr->Id;
  EXPECT_TRUE(Binding);
  EXPECT_TRUE(Causal);
}

TEST(Builder, EmitProducesCtWithCausalEdgesToListeners) {
  auto B = build([](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLINE("t.js", 1));
    R.emitterOn(JSLINE("t.js", 2), E, "x",
                R.makeFunction("l1", JSLINE("t.js", 2),
                               [](Runtime &, const CallArgs &) {
                                 return Completion::normal();
                               }));
    R.emitterOn(JSLINE("t.js", 3), E, "x",
                R.makeFunction("l2", JSLINE("t.js", 3),
                               [](Runtime &, const CallArgs &) {
                                 return Completion::normal();
                               }));
    R.emitterEmit(JSLINE("t.js", 4), E, "x");
  });
  const AsyncGraph &G = B->graph();
  const AgNode *Ct = firstNode(G, NodeKind::CT, ApiKind::EmitterEmit);
  ASSERT_NE(Ct, nullptr);
  EXPECT_TRUE(Ct->HadEffect);
  EXPECT_EQ(Ct->Event, "x");

  // Two CE nodes, both caused by the CT (star -> circle).
  size_t CausedCes = 0;
  for (uint32_t E : G.outEdges(Ct->Id)) {
    const AgEdge &Edge = G.edge(E);
    if (Edge.Kind == EdgeKind::Causal &&
        G.node(Edge.To).Kind == NodeKind::CE)
      ++CausedCes;
  }
  EXPECT_EQ(CausedCes, 2u);

  // Everything happened in the main tick (emit is synchronous).
  for (const AgNode &N : G.nodes())
    EXPECT_EQ(N.Tick, 1u);
}

TEST(Builder, HappensInEdgesFromEnclosingCe) {
  auto B = build([](Runtime &R) {
    R.nextTick(JSLOC,
               R.makeFunction("outer", JSLINE("t.js", 1),
                              [](Runtime &R2, const CallArgs &) {
                                R2.setImmediate(
                                    JSLINE("t.js", 2),
                                    R2.makeBuiltin("inner",
                                                   [](Runtime &,
                                                      const CallArgs &) {
                                                     return Completion::
                                                         normal();
                                                   }));
                                return Completion::normal();
                              }));
  });
  const AsyncGraph &G = B->graph();
  const AgNode *OuterCe = firstNode(G, NodeKind::CE, ApiKind::NextTick);
  const AgNode *ImmCr = firstNode(G, NodeKind::CR, ApiKind::SetImmediate);
  ASSERT_NE(OuterCe, nullptr);
  ASSERT_NE(ImmCr, nullptr);
  bool HappensIn = false;
  for (uint32_t E : G.outEdges(OuterCe->Id)) {
    const AgEdge &Edge = G.edge(E);
    HappensIn |=
        Edge.Kind == EdgeKind::HappensIn && Edge.To == ImmCr->Id;
  }
  EXPECT_TRUE(HappensIn);
  EXPECT_EQ(ImmCr->Tick, OuterCe->Tick);
}

TEST(Builder, PromiseChainRelationEdges) {
  auto B = build([](Runtime &R) {
    PromiseRef P = R.promiseResolvedWith(JSLINE("t.js", 1), Value::number(0));
    PromiseRef P2 = R.promiseThen(
        JSLINE("t.js", 2), P,
        R.makeBuiltin("a", [](Runtime &, const CallArgs &A) {
          return Completion::normal(A.arg(0));
        }));
    R.promiseCatch(JSLINE("t.js", 3), P2,
                   R.makeBuiltin("b", [](Runtime &, const CallArgs &) {
                     return Completion::normal();
                   }));
  });
  const AsyncGraph &G = B->graph();
  ASSERT_EQ(countNodes(G, NodeKind::OB), 3u);
  NodeId Root = InvalidNode;
  for (const AgNode &N : G.nodes())
    if (N.Kind == NodeKind::OB && G.parentPromise(N.Id) == InvalidNode)
      Root = N.Id;
  ASSERT_NE(Root, InvalidNode);
  auto Level1 = G.derivedPromises(Root);
  ASSERT_EQ(Level1.size(), 1u);
  auto Level2 = G.derivedPromises(Level1.front());
  ASSERT_EQ(Level2.size(), 1u);
  EXPECT_TRUE(G.derivedPromises(Level2.front()).empty());
  EXPECT_EQ(G.parentPromise(Level1.front()), Root);

  // "then"-filtered derivation distinguishes the catch step.
  EXPECT_EQ(G.derivedPromises(Root, "then").size(), 1u);
  EXPECT_EQ(G.derivedPromises(Level1.front(), "then").size(), 0u);
}

TEST(Builder, LinkEdgeWhenReactionReturnsPromise) {
  auto B = build([](Runtime &R) {
    PromiseRef P = R.promiseResolvedWith(JSLOC, Value::number(0));
    R.promiseThen(JSLOC, P,
                  R.makeBuiltin("makesPromise",
                                [](Runtime &R2, const CallArgs &) {
                                  PromiseRef Inner = R2.promiseResolvedWith(
                                      JSLOC, Value::number(1));
                                  return Completion::normal(
                                      Value::promise(Inner));
                                }));
  });
  const AsyncGraph &G = B->graph();
  bool SawLink = false;
  for (const AgEdge &E : G.edges())
    SawLink |= E.Kind == EdgeKind::Relation && E.Label == "link";
  EXPECT_TRUE(SawLink);
}

TEST(Builder, CombinatorRelationEdges) {
  auto B = build([](Runtime &R) {
    PromiseRef A = R.promiseResolvedWith(JSLOC, Value::number(1));
    PromiseRef Bp = R.promiseResolvedWith(JSLOC, Value::number(2));
    R.promiseAll(JSLOC, {A, Bp});
  });
  const AsyncGraph &G = B->graph();
  size_t AllEdges = 0;
  for (const AgEdge &E : G.edges())
    AllEdges += E.Kind == EdgeKind::Relation && E.Label == "Promise.all";
  EXPECT_EQ(AllEdges, 2u);
}

TEST(Builder, ListenerRegistrationRelationEdge) {
  auto B = build([](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLINE("t.js", 1), "Bus");
    R.emitterOn(JSLINE("t.js", 2), E, "msg",
                R.makeBuiltin("l", [](Runtime &, const CallArgs &) {
                  return Completion::normal();
                }));
  });
  const AsyncGraph &G = B->graph();
  const AgNode *Ob = firstNode(G, NodeKind::OB);
  const AgNode *Cr = firstNode(G, NodeKind::CR, ApiKind::EmitterOn);
  ASSERT_NE(Ob, nullptr);
  ASSERT_NE(Cr, nullptr);
  bool Edge = false;
  for (uint32_t EI : G.outEdges(Ob->Id)) {
    const AgEdge &E = G.edge(EI);
    Edge |= E.Kind == EdgeKind::Relation && E.To == Cr->Id &&
            E.Label == "msg";
  }
  EXPECT_TRUE(Edge);
}

TEST(Builder, RemovedListenersAreMarked) {
  auto B = build([](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLOC);
    Function L = R.makeBuiltin("l", [](Runtime &, const CallArgs &) {
      return Completion::normal();
    });
    R.emitterOn(JSLINE("t.js", 2), E, "x", L);
    R.emitterRemoveListener(JSLINE("t.js", 3), E, "x", L);
  });
  const AgNode *Cr =
      firstNode(B->graph(), NodeKind::CR, ApiKind::EmitterOn);
  ASSERT_NE(Cr, nullptr);
  EXPECT_TRUE(Cr->Removed);
}

TEST(Builder, DeadEmitCtFlagged) {
  auto B = build([](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLOC);
    R.emitterEmit(JSLINE("t.js", 5), E, "ghost");
  });
  const AgNode *Ct =
      firstNode(B->graph(), NodeKind::CT, ApiKind::EmitterEmit);
  ASSERT_NE(Ct, nullptr);
  EXPECT_FALSE(Ct->HadEffect);
}

TEST(Builder, NopromiseModeSkipsPromiseNodes) {
  BuilderConfig Cfg;
  Cfg.TrackPromises = false;
  auto B = build(
      [](Runtime &R) {
        PromiseRef P = R.promiseResolvedWith(JSLOC, Value::number(1));
        R.promiseThen(JSLOC, P,
                      R.makeBuiltin("r", [](Runtime &, const CallArgs &) {
                        return Completion::normal();
                      }));
        R.nextTick(JSLOC, R.makeBuiltin("t", [](Runtime &, const CallArgs &) {
          return Completion::normal();
        }));
      },
      Cfg);
  const AsyncGraph &G = B->graph();
  EXPECT_EQ(countNodes(G, NodeKind::OB), 0u);
  for (const AgNode &N : G.nodes())
    EXPECT_FALSE(isPromiseApi(N.Api)) << N.Label;
  // nextTick still tracked.
  EXPECT_NE(firstNode(G, NodeKind::CR, ApiKind::NextTick), nullptr);
}

TEST(Builder, BuildGraphOffOnlyCountsTicks) {
  BuilderConfig Cfg;
  Cfg.BuildGraph = false;
  auto B = build(
      [](Runtime &R) {
        R.nextTick(JSLOC, R.makeBuiltin("t", [](Runtime &, const CallArgs &) {
          return Completion::normal();
        }));
      },
      Cfg);
  EXPECT_EQ(B->graph().nodeCount(), 0u);
  EXPECT_EQ(B->ticksOpened(), 2u);
}

TEST(Builder, InternalIoDispatcherRootsItsTick) {
  auto B = build([](Runtime &R) {
    R.kernel().submit(10, [&R] {
      R.dispatchInternal("(test io)", [](Runtime &) {});
    });
  });
  const AsyncGraph &G = B->graph();
  ASSERT_EQ(G.ticks().size(), 2u);
  EXPECT_EQ(G.ticks()[1].Phase, PhaseKind::Io);
  const AgNode &Root = G.node(G.ticks()[1].Nodes.front());
  EXPECT_EQ(Root.Kind, NodeKind::CE);
  EXPECT_TRUE(Root.Internal);
}

TEST(Builder, AwaitAppearsAsRegistrationAndResumption) {
  // Table II: AsyncG supports async/await — awaits are CRs bound to the
  // awaited promise, and resumptions are CEs in promise ticks.
  AsyncGBuilder B;
  Runtime RT;
  RT.hooks().attach(&B);
  runMain(RT, [](Runtime &R) {
    PromiseRef P = R.promiseBare(JSLINE("aw.js", 1));
    R.promiseAwait(JSLINE("aw.js", 2), P, "myAsyncFn",
                   [](Runtime &, Value, bool) {});
    R.setTimeout(JSLINE("aw.js", 3),
                 R.makeBuiltin("resolver",
                               [P](Runtime &R2, const CallArgs &) {
                                 R2.resolvePromise(JSLINE("aw.js", 3), P,
                                                   Value::number(1));
                                 return Completion::normal();
                               }),
                 1);
  });
  const AsyncGraph &G = B.graph();
  const AgNode *Cr = firstNode(G, NodeKind::CR, ApiKind::Await);
  ASSERT_NE(Cr, nullptr);
  EXPECT_TRUE(Cr->HasRejectHandler); // await forwards rejections
  EXPECT_NE(Cr->Obj, 0u);
  auto Execs = G.executionsOf(Cr->Sched);
  ASSERT_EQ(Execs.size(), 1u);
  const AgNode &Ce = G.node(Execs.front());
  EXPECT_NE(Ce.Label.view().find("myAsyncFn (resumed)"), std::string_view::npos);
  // The resumption runs in a promise micro-tick.
  for (const AgTick &T : G.ticks()) {
    if (T.Index == Ce.Tick) {
      EXPECT_EQ(T.Phase, PhaseKind::PromiseMicro);
    }
  }
}

TEST(Builder, MainTickHoldsMainCe) {
  auto B = build([](Runtime &) {});
  const AsyncGraph &G = B->graph();
  ASSERT_EQ(G.ticks().size(), 1u);
  EXPECT_EQ(G.ticks()[0].name(), "t1: main");
  EXPECT_EQ(G.node(G.ticks()[0].Nodes.front()).Kind, NodeKind::CE);
}

//===----------------------------------------------------------------------===//
// Context validator unit tests (Algorithm 3, contextual path)
//===----------------------------------------------------------------------===//

TEST(Validator, SelfSchedulingMatchesByPhase) {
  PendingReg Reg;
  Reg.Api = ApiKind::NextTick;
  Reg.TargetPhase = PhaseKind::NextTick;
  DispatchInfo D; // no Sched: force the contextual path
  EXPECT_TRUE(
      ContextValidator::isValid(Reg, D, PhaseKind::NextTick));
  EXPECT_FALSE(ContextValidator::isValid(Reg, D, PhaseKind::Timers));
}

TEST(Validator, EmitterListenerNeedsMatchingTrigger) {
  PendingReg Reg;
  Reg.Api = ApiKind::EmitterOn;
  Reg.BoundObj = 5;
  Reg.Event = "data";
  DispatchInfo D;
  D.Trigger.K = TriggerInfo::Kind::Emitter;
  D.Trigger.Obj = 5;
  D.Trigger.Event = "data";
  EXPECT_TRUE(ContextValidator::contextMatches(Reg, D, PhaseKind::Io));
  D.Trigger.Event = "end";
  EXPECT_FALSE(ContextValidator::contextMatches(Reg, D, PhaseKind::Io));
  D.Trigger.Event = "data";
  D.Trigger.Obj = 6;
  EXPECT_FALSE(ContextValidator::contextMatches(Reg, D, PhaseKind::Io));
}

TEST(Validator, PromiseReactionNeedsPromiseTriggerInMicroTick) {
  PendingReg Reg;
  Reg.Api = ApiKind::PromiseThen;
  Reg.TargetPhase = PhaseKind::PromiseMicro;
  Reg.BoundObj = 9;
  DispatchInfo D;
  D.Trigger.K = TriggerInfo::Kind::Promise;
  D.Trigger.Obj = 9;
  EXPECT_TRUE(
      ContextValidator::contextMatches(Reg, D, PhaseKind::PromiseMicro));
  EXPECT_FALSE(
      ContextValidator::contextMatches(Reg, D, PhaseKind::NextTick));
  D.Trigger.Obj = 10;
  EXPECT_FALSE(
      ContextValidator::contextMatches(Reg, D, PhaseKind::PromiseMicro));
}

TEST(Validator, SchedIdIsAuthoritativeWhenPresent) {
  PendingReg Reg;
  Reg.Sched = 3;
  Reg.Api = ApiKind::SetTimeout;
  Reg.TargetPhase = PhaseKind::Timers;
  DispatchInfo D;
  D.Sched = 3;
  EXPECT_TRUE(ContextValidator::isValid(Reg, D, PhaseKind::Timers));
  D.Sched = 4;
  EXPECT_FALSE(ContextValidator::isValid(Reg, D, PhaseKind::Timers));
}

TEST(Builder, ContextualMappingWithoutSchedHints) {
  // Algorithm 3 without registration-id hints: synthetic events where the
  // dispatch carries Sched=0 force the purely contextual validator path.
  // The same callback function is registered on two different emitters;
  // the trigger context must select the right CR.
  AsyncGBuilder B;
  jsrt::CallArgs NoArgs;
  jsrt::Completion Ok;

  auto Fn = std::make_shared<jsrt::FunctionData>();
  Fn->Id = 77;
  Fn->Name = "sharedListener";
  jsrt::Function F(Fn);

  auto registerOn = [&](ObjectId Obj, ScheduleId Sched) {
    instr::ObjectCreateEvent OE;
    OE.Obj = Obj;
    OE.Name = "EventEmitter";
    B.onObjectCreate(OE);
    instr::ApiCallEvent Reg;
    Reg.Api = ApiKind::EmitterOn;
    Reg.Sched = Sched;
    Reg.Callbacks = {F};
    Reg.Once = false;
    Reg.BoundObj = Obj;
    Reg.EventName = "data";
    B.onApiCall(Reg);
  };
  registerOn(100, 1);
  registerOn(200, 2);

  // Emission on emitter 200: the execution context names the emitter and
  // event, but no registration id.
  instr::ApiCallEvent Emit;
  Emit.Api = ApiKind::EmitterEmit;
  Emit.BoundObj = 200;
  Emit.EventName = "data";
  Emit.Trigger = 9;
  Emit.TriggerHadEffect = true;
  B.onApiCall(Emit);

  jsrt::DispatchInfo D;
  D.Phase = PhaseKind::Io;
  D.TopLevel = true;
  D.Sched = 0; // contextual matching only
  D.Api = ApiKind::EmitterOn;
  D.Trigger.K = jsrt::TriggerInfo::Kind::Emitter;
  D.Trigger.Id = 9;
  D.Trigger.Obj = 200;
  D.Trigger.Event = "data";
  B.onFunctionEnter(instr::FunctionEnterEvent{F, NoArgs, D});
  B.onFunctionExit(instr::FunctionExitEvent{F, Ok, D});
  B.onLoopEnd(instr::LoopEndEvent{1, false});

  const AsyncGraph &G = B.graph();
  NodeId Cr1 = G.registrationNode(1);
  NodeId Cr2 = G.registrationNode(2);
  ASSERT_NE(Cr1, InvalidNode);
  ASSERT_NE(Cr2, InvalidNode);
  // The CE bound to the emitter-200 registration, not the emitter-100 one.
  EXPECT_EQ(G.node(Cr1).ExecCount, 0u);
  EXPECT_EQ(G.node(Cr2).ExecCount, 1u);
  auto Execs = G.executionsOf(2);
  ASSERT_EQ(Execs.size(), 1u);
  EXPECT_EQ(G.node(Execs.front()).Obj, 200u);
}

TEST(Templates, ClassificationMatchesApiFamilies) {
  EXPECT_EQ(getAsyncTemplate(ApiKind::NextTick).Kind,
            TemplateKind::Registration);
  EXPECT_EQ(getAsyncTemplate(ApiKind::FsReadFile).Kind,
            TemplateKind::Registration);
  EXPECT_TRUE(getAsyncTemplate(ApiKind::FsReadFile).External);
  EXPECT_FALSE(getAsyncTemplate(ApiKind::NextTick).External);
  EXPECT_EQ(getAsyncTemplate(ApiKind::EmitterEmit).Kind,
            TemplateKind::Trigger);
  EXPECT_EQ(getAsyncTemplate(ApiKind::PromiseAll).Kind,
            TemplateKind::Combinator);
  EXPECT_EQ(getAsyncTemplate(ApiKind::EmitterRemoveListener).Kind,
            TemplateKind::Misc);
}

} // namespace
