//===- NodeTest.cpp - node layer tests (fs, net, http) -------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "node/Events.h"
#include "node/Fs.h"
#include "node/Http.h"
#include "node/Net.h"

#include <gtest/gtest.h>

using namespace asyncg;
using namespace asyncg::jsrt;
using namespace asyncg::testhelpers;
namespace http = asyncg::node::http;

namespace {

TEST(NodeFs, ReadFileSuccessAndError) {
  Runtime RT;
  RT.fileSystem().putFile("ok.txt", "payload");
  std::string Data, Err;
  runMain(RT, [&](Runtime &R) {
    node::Fs Fs(R);
    Fs.readFile(JSLOC, "ok.txt",
                R.makeBuiltin("cb1", [&Data](Runtime &, const CallArgs &A) {
                  EXPECT_TRUE(A.arg(0).isNull());
                  Data = A.arg(1).asString();
                  return Completion::normal();
                }));
    Fs.readFile(JSLOC, "missing.txt",
                R.makeBuiltin("cb2", [&Err](Runtime &, const CallArgs &A) {
                  Err = A.arg(0).asString();
                  EXPECT_TRUE(A.arg(1).isUndefined());
                  return Completion::normal();
                }));
  });
  EXPECT_EQ(Data, "payload");
  EXPECT_NE(Err.find("ENOENT"), std::string::npos);
}

TEST(NodeFs, WriteThenRead) {
  Runtime RT;
  std::string RoundTrip;
  runMain(RT, [&](Runtime &R) {
    auto Fs = std::make_shared<node::Fs>(R);
    Fs->writeFile(JSLOC, "new.txt", "fresh",
                  R.makeBuiltin("onWrite", [Fs, &RoundTrip](
                                               Runtime &R2,
                                               const CallArgs &A) {
                    EXPECT_TRUE(A.arg(0).isNull());
                    Fs->readFile(JSLOC, "new.txt",
                                 R2.makeBuiltin(
                                     "onRead",
                                     [&RoundTrip](Runtime &,
                                                  const CallArgs &A2) {
                                       RoundTrip = A2.arg(1).asString();
                                       return Completion::normal();
                                     }));
                    return Completion::normal();
                  }));
  });
  EXPECT_EQ(RoundTrip, "fresh");
}

TEST(NodeFs, PromiseInterface) {
  Runtime RT;
  RT.fileSystem().putFile("p.txt", "via-promise");
  std::string Data;
  runMain(RT, [&](Runtime &R) {
    node::Fs Fs(R);
    PromiseRef P = Fs.readFilePromise(JSLOC, "p.txt");
    R.promiseThen(JSLOC, P,
                  R.makeBuiltin("h", [&Data](Runtime &, const CallArgs &A) {
                    Data = A.arg(0).asString();
                    return Completion::normal();
                  }));
  });
  EXPECT_EQ(Data, "via-promise");
}

TEST(NodeNet, EchoServer) {
  Runtime RT;
  std::vector<std::string> ClientGot;
  runMain(RT, [&](Runtime &R) {
    // Echo server: replies with "echo:<data>".
    Function OnConnection = R.makeFunction(
        "onConnection", JSLOC, [](Runtime &R2, const CallArgs &A) {
          auto Sock = node::Socket::from(A.arg(0));
          R2.emitterOn(JSLOC, Sock->emitter(), "data",
                       R2.makeBuiltin("echo",
                                      [Sock](Runtime &, const CallArgs &A2) {
                                        Sock->write("echo:" +
                                                    A2.arg(0).asString());
                                        return Completion::normal();
                                      }));
          return Completion::normal();
        });
    auto Server = node::createServer(R, JSLOC, OnConnection);
    ASSERT_TRUE(Server->listen(JSLOC, 7777));

    node::connect(R, JSLOC, 7777,
                  R.makeFunction("onConnect", JSLOC,
                                 [&ClientGot](Runtime &R2,
                                              const CallArgs &A) {
                                   auto Client = node::Socket::from(A.arg(0));
                                   R2.emitterOn(
                                       JSLOC, Client->emitter(), "data",
                                       R2.makeBuiltin(
                                           "clientData",
                                           [&ClientGot, Client](
                                               Runtime &,
                                               const CallArgs &A2) {
                                             ClientGot.push_back(
                                                 A2.arg(0).asString());
                                             Client->destroy();
                                             return Completion::normal();
                                           }));
                                   Client->write("hello");
                                   return Completion::normal();
                                 }));
  });
  EXPECT_EQ(ClientGot, (std::vector<std::string>{"echo:hello"}));
}

TEST(NodeNet, CloseEventsArriveInClosePhase) {
  Runtime RT;
  std::vector<std::string> Log;
  runMain(RT, [&](Runtime &R) {
    Function OnConnection = R.makeFunction(
        "onConnection", JSLOC, [&Log](Runtime &R2, const CallArgs &A) {
          auto Sock = node::Socket::from(A.arg(0));
          R2.emitterOn(JSLOC, Sock->emitter(), "close",
                       R2.makeBuiltin("onClose",
                                      [&Log](Runtime &R3, const CallArgs &) {
                                        Log.push_back("close");
                                        EXPECT_EQ(R3.currentPhase(),
                                                  PhaseKind::Close);
                                        return Completion::normal();
                                      }));
          return Completion::normal();
        });
    auto Server = node::createServer(R, JSLOC, OnConnection);
    ASSERT_TRUE(Server->listen(JSLOC, 7001));
    node::connect(R, JSLOC, 7001,
                  R.makeBuiltin("client", [](Runtime &, const CallArgs &A) {
                    node::Socket::from(A.arg(0))->destroy();
                    return Completion::normal();
                  }));
  });
  EXPECT_EQ(Log, (std::vector<std::string>{"close"}));
}

TEST(NodeNet, ListenOnBusyPortFails) {
  Runtime RT;
  runMain(RT, [&](Runtime &R) {
    auto A = node::createServer(R, JSLOC);
    auto B = node::createServer(R, JSLOC);
    EXPECT_TRUE(A->listen(JSLOC, 7002));
    EXPECT_FALSE(B->listen(JSLOC, 7002));
    A->close(JSLOC);
    EXPECT_TRUE(B->listen(JSLOC, 7002));
  });
}

TEST(NodeHttp, RequestResponseRoundTrip) {
  Runtime RT;
  int Status = 0;
  std::string Body;
  runMain(RT, [&](Runtime &R) {
    Function OnRequest = R.makeFunction(
        "handler", JSLOC, [](Runtime &, const CallArgs &A) {
          auto Req = http::IncomingMessage::from(A.arg(0));
          auto Res = http::ServerResponse::from(A.arg(1));
          EXPECT_EQ(Req->method(), "GET");
          EXPECT_EQ(Req->url(), "/hello?x=1");
          Res->writeHead(201);
          Res->end("hi-there");
          return Completion::normal();
        });
    auto Server = http::HttpServer::create(R, JSLOC, OnRequest);
    ASSERT_TRUE(Server->listen(JSLOC, 8080));

    http::RequestOptions Opts;
    Opts.Method = "GET";
    Opts.Port = 8080;
    Opts.Path = "/hello?x=1";
    http::request(R, JSLOC, Opts,
                  R.makeBuiltin("onResponse",
                                [&](Runtime &, const CallArgs &A) {
                                  EXPECT_TRUE(A.arg(0).isNull());
                                  Status = static_cast<int>(
                                      A.arg(1).asNumber());
                                  Body = A.arg(2).asString();
                                  return Completion::normal();
                                }));
  });
  EXPECT_EQ(Status, 201);
  EXPECT_EQ(Body, "hi-there");
}

TEST(NodeHttp, BodyChunksStreamAsDataEvents) {
  Runtime RT;
  std::vector<std::string> Chunks;
  bool SawEnd = false;
  std::string Resp;
  runMain(RT, [&](Runtime &R) {
    Function OnRequest = R.makeFunction(
        "handler", JSLOC,
        [&Chunks, &SawEnd](Runtime &R2, const CallArgs &A) {
          auto Req = http::IncomingMessage::from(A.arg(0));
          auto Res = http::ServerResponse::from(A.arg(1));
          R2.emitterOn(JSLOC, Req->emitter(), "data",
                       R2.makeBuiltin("onData",
                                      [&Chunks](Runtime &,
                                                const CallArgs &A2) {
                                        Chunks.push_back(
                                            A2.arg(0).asString());
                                        return Completion::normal();
                                      }));
          R2.emitterOn(JSLOC, Req->emitter(), "end",
                       R2.makeBuiltin("onEnd",
                                      [&SawEnd, Res](Runtime &,
                                                     const CallArgs &) {
                                        SawEnd = true;
                                        Res->end("done");
                                        return Completion::normal();
                                      }));
          return Completion::normal();
        });
    auto Server = http::HttpServer::create(R, JSLOC, OnRequest);
    ASSERT_TRUE(Server->listen(JSLOC, 8081));

    http::RequestOptions Opts;
    Opts.Method = "POST";
    Opts.Port = 8081;
    Opts.Path = "/upload";
    Opts.BodyChunks = {"part1", "part2"};
    http::request(R, JSLOC, Opts,
                  R.makeBuiltin("onResponse",
                                [&Resp](Runtime &, const CallArgs &A) {
                                  Resp = A.arg(2).asString();
                                  return Completion::normal();
                                }));
  });
  EXPECT_EQ(Chunks, (std::vector<std::string>{"part1", "part2"}));
  EXPECT_TRUE(SawEnd);
  EXPECT_EQ(Resp, "done");
}

TEST(NodeHttp, ConnectionRefused) {
  Runtime RT;
  std::string Err;
  runMain(RT, [&](Runtime &R) {
    http::RequestOptions Opts;
    Opts.Port = 9999; // nothing listening
    http::request(R, JSLOC, Opts,
                  R.makeBuiltin("onResponse",
                                [&Err](Runtime &, const CallArgs &A) {
                                  Err = A.arg(0).asString();
                                  return Completion::normal();
                                }));
  });
  EXPECT_NE(Err.find("ECONNREFUSED"), std::string::npos);
}

TEST(NodeHttp, ResponseEndIsIdempotent) {
  Runtime RT;
  int Responses = 0;
  runMain(RT, [&](Runtime &R) {
    Function OnRequest = R.makeFunction(
        "handler", JSLOC, [](Runtime &, const CallArgs &A) {
          auto Res = http::ServerResponse::from(A.arg(1));
          EXPECT_TRUE(Res->end("one"));
          EXPECT_FALSE(Res->end("two"));
          return Completion::normal();
        });
    auto Server = http::HttpServer::create(R, JSLOC, OnRequest);
    ASSERT_TRUE(Server->listen(JSLOC, 8082));
    http::RequestOptions Opts;
    Opts.Port = 8082;
    http::request(R, JSLOC, Opts,
                  R.makeBuiltin("onResponse",
                                [&Responses](Runtime &, const CallArgs &A) {
                                  ++Responses;
                                  EXPECT_EQ(A.arg(2).asString(), "one");
                                  return Completion::normal();
                                }));
  });
  EXPECT_EQ(Responses, 1);
}

TEST(NodeHttp, FramingHelpers) {
  EXPECT_EQ(http::frameRequestLine("GET", "/x"), "REQ GET /x");
  EXPECT_EQ(http::frameDataChunk("abc"), "DAT abc");
  EXPECT_EQ(http::frameEnd(), "END");
  EXPECT_EQ(http::frameResponse(200, "ok"), "RES 200 ok");

  http::ClientResponse R;
  EXPECT_TRUE(http::parseResponse("RES 404 not found", R));
  EXPECT_EQ(R.Status, 404);
  EXPECT_EQ(R.Body, "not found");
  EXPECT_TRUE(http::parseResponse("RES 200", R));
  EXPECT_EQ(R.Status, 200);
  EXPECT_EQ(R.Body, "");
  EXPECT_FALSE(http::parseResponse("REQ GET /", R));
}

TEST(NodeEvents, OnceResolvesWithEmitArgs) {
  Runtime RT;
  std::vector<double> Got;
  runMain(RT, [&](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLOC);
    PromiseRef P = node::events::once(R, JSLOC, E, "ready");
    R.promiseThen(JSLOC, P,
                  R.makeBuiltin("h", [&Got](Runtime &, const CallArgs &A) {
                    for (const Value &V : A.arg(0).asArray()->Elems)
                      Got.push_back(V.asNumber());
                    return Completion::normal();
                  }));
    R.setImmediate(JSLOC,
                   R.makeBuiltin("emitReady",
                                 [E](Runtime &R2, const CallArgs &) {
                                   R2.emitterEmit(JSLOC, E, "ready",
                                                  {Value::number(1),
                                                   Value::number(2)});
                                   // A second emission is ignored.
                                   R2.emitterEmit(JSLOC, E, "ready",
                                                  {Value::number(9)});
                                   return Completion::normal();
                                 }));
  });
  EXPECT_EQ(Got, (std::vector<double>{1, 2}));
}

TEST(NodeEvents, OnceRejectsOnErrorEvent) {
  Runtime RT;
  std::string Err;
  runMain(RT, [&](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLOC);
    PromiseRef P = node::events::once(R, JSLOC, E, "ready");
    R.promiseCatch(JSLOC, P,
                   R.makeBuiltin("h", [&Err](Runtime &, const CallArgs &A) {
                     Err = A.arg(0).asString();
                     return Completion::normal();
                   }));
    R.setImmediate(JSLOC,
                   R.makeBuiltin("emitError",
                                 [E](Runtime &R2, const CallArgs &) {
                                   R2.emitterEmit(JSLOC, E, "error",
                                                  {Value::str("broke")});
                                   return Completion::normal();
                                 }));
  });
  EXPECT_EQ(Err, "broke");
  // The internal once-error listener handled the 'error' event.
  EXPECT_TRUE(RT.uncaughtErrors().empty());
}

TEST(NodeEvents, OnceForErrorEventItselfResolves) {
  Runtime RT;
  bool Resolved = false;
  runMain(RT, [&](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLOC);
    PromiseRef P = node::events::once(R, JSLOC, E, "error");
    R.promiseThen(JSLOC, P,
                  R.makeBuiltin("h", [&Resolved](Runtime &,
                                                 const CallArgs &) {
                    Resolved = true;
                    return Completion::normal();
                  }));
    R.setImmediate(JSLOC,
                   R.makeBuiltin("emitError",
                                 [E](Runtime &R2, const CallArgs &) {
                                   R2.emitterEmit(JSLOC, E, "error",
                                                  {Value::str("x")});
                                   return Completion::normal();
                                 }));
  });
  EXPECT_TRUE(Resolved);
}

} // namespace
