//===- FaultKernelTest.cpp - fault injection + degradation ladder tests ------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Tests for the deterministic fault-injection layer (DESIGN.md §5i) and
/// the hardening above it: FaultSpec parsing, schedule determinism (same
/// seed → identical decision stream and digest), FaultKernel jitter and
/// spurious-wake semantics over the simulated kernel, the async pipeline's
/// graceful-degradation ladder (escalate under pressure, recover when the
/// ring drains, structure never shed), the builder-thread watchdog, and —
/// on Linux — an end-to-end AcmeAir run over the epoll backend under an
/// aggressive fault mix where every request still gets accounted for.
///
//===----------------------------------------------------------------------===//

#include "ag/AsyncPipeline.h"
#include "sim/Fault.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#ifdef __linux__
#include "apps/cluster/Harness.h"
#endif

using namespace asyncg;
using namespace asyncg::sim;

namespace {

//===----------------------------------------------------------------------===//
// FaultSpec parsing
//===----------------------------------------------------------------------===//

TEST(FaultSpec, ParsesKindRateListAndRoundTrips) {
  FaultSpec S;
  std::string Err;
  ASSERT_TRUE(FaultSpec::parse("eintr:0.5,shortwrite:0.25,reset:1", S, &Err))
      << Err;
  EXPECT_DOUBLE_EQ(S.rate(FaultKind::Eintr), 0.5);
  EXPECT_DOUBLE_EQ(S.rate(FaultKind::ShortWrite), 0.25);
  EXPECT_DOUBLE_EQ(S.rate(FaultKind::Reset), 1.0);
  EXPECT_DOUBLE_EQ(S.rate(FaultKind::Emfile), 0.0);
  EXPECT_TRUE(S.any());

  // str() is parseable back to the same rates.
  FaultSpec S2;
  ASSERT_TRUE(FaultSpec::parse(S.str(), S2, &Err)) << Err;
  for (size_t K = 0; K != NumFaultKinds; ++K)
    EXPECT_DOUBLE_EQ(S.Rate[K], S2.Rate[K]);
}

TEST(FaultSpec, DefaultTokenEnablesEveryKind) {
  FaultSpec S;
  ASSERT_TRUE(FaultSpec::parse("default", S, nullptr));
  for (size_t K = 0; K != NumFaultKinds; ++K)
    EXPECT_GT(S.Rate[K], 0.0) << faultKindName(static_cast<FaultKind>(K));
}

TEST(FaultSpec, RejectsUnknownKindsAndBadRates) {
  FaultSpec S;
  std::string Err;
  EXPECT_FALSE(FaultSpec::parse("sigsegv:0.5", S, &Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(FaultSpec::parse("eintr:1.5", S, &Err));
  EXPECT_FALSE(FaultSpec::parse("eintr:-0.1", S, &Err));
  EXPECT_FALSE(FaultSpec::parse("eintr", S, &Err));
  // "" is the canonical form of a no-fault spec (str() round-trip).
  EXPECT_TRUE(FaultSpec::parse("", S, &Err));
  EXPECT_FALSE(S.any());
}

//===----------------------------------------------------------------------===//
// Injector determinism
//===----------------------------------------------------------------------===//

TEST(FaultInjector, SameSeedReplaysIdenticalSchedule) {
  FaultSpec S;
  ASSERT_TRUE(FaultSpec::parse("default", S, nullptr));
  FaultInjector A(S, 1234), B(S, 1234);
  for (int I = 0; I != 5000; ++I) {
    FaultKind K = static_cast<FaultKind>(I % NumFaultKinds);
    EXPECT_EQ(A.shouldInject(K), B.shouldInject(K)) << "decision " << I;
  }
  EXPECT_EQ(A.scheduleDigest(), B.scheduleDigest());
  EXPECT_EQ(A.decisions(), 5000u);
  EXPECT_EQ(A.totalInjected(), B.totalInjected());
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultSpec S;
  ASSERT_TRUE(FaultSpec::parse("default", S, nullptr));
  FaultInjector A(S, 1), B(S, 2);
  for (int I = 0; I != 5000; ++I) {
    FaultKind K = static_cast<FaultKind>(I % NumFaultKinds);
    A.shouldInject(K);
    B.shouldInject(K);
  }
  EXPECT_NE(A.scheduleDigest(), B.scheduleDigest());
}

TEST(FaultInjector, DigestCoversOutcomesNotJustCounts) {
  // Two enabled kinds with swapped rates produce the same *number* of
  // decisions but a different fire pattern — the digest must see it.
  FaultSpec SA, SB;
  ASSERT_TRUE(FaultSpec::parse("eintr:0.9,reset:0.1", SA, nullptr));
  ASSERT_TRUE(FaultSpec::parse("eintr:0.1,reset:0.9", SB, nullptr));
  FaultInjector A(SA, 7), B(SB, 7);
  for (int I = 0; I != 2000; ++I) {
    A.shouldInject(FaultKind::Eintr);
    A.shouldInject(FaultKind::Reset);
    B.shouldInject(FaultKind::Eintr);
    B.shouldInject(FaultKind::Reset);
  }
  EXPECT_EQ(A.decisions(), B.decisions());
  EXPECT_NE(A.scheduleDigest(), B.scheduleDigest());
}

TEST(FaultInjector, JitterAndShortWriteStayInBounds) {
  FaultSpec S;
  S.Rate[static_cast<size_t>(FaultKind::Jitter)] = 1.0;
  S.MaxJitterUs = 100;
  FaultInjector Inj(S, 99);
  for (int I = 0; I != 2000; ++I) {
    uint64_t J = Inj.jitterUs();
    EXPECT_GE(J, 1u);
    EXPECT_LE(J, 100u);
  }
  for (size_t N : {size_t(2), size_t(3), size_t(100), size_t(65536)}) {
    size_t Cut = Inj.shortenWrite(N);
    EXPECT_GE(Cut, 1u) << "short write must keep a non-empty prefix";
    EXPECT_LT(Cut, N) << "short write must be a strict prefix";
  }
  // Too small to clamp: passes through untouched.
  EXPECT_EQ(Inj.shortenWrite(1), 1u);
  EXPECT_EQ(Inj.shortenWrite(0), 0u);
}

TEST(FaultInjector, ZeroRatesNeverFire) {
  FaultSpec S; // all rates zero
  FaultInjector Inj(S, 5);
  for (int I = 0; I != 1000; ++I)
    EXPECT_FALSE(Inj.shouldInject(static_cast<FaultKind>(I % NumFaultKinds)));
  EXPECT_EQ(Inj.totalInjected(), 0u);
  EXPECT_EQ(Inj.decisions(), 1000u);
}

//===----------------------------------------------------------------------===//
// FaultKernel over the simulated kernel
//===----------------------------------------------------------------------===//

TEST(FaultKernel, JitterDelaysSubmittedDeadlines) {
  FaultSpec S;
  S.Rate[static_cast<size_t>(FaultKind::Jitter)] = 1.0;
  S.MaxJitterUs = 50;
  FaultInjector Inj(S, 42);

  Clock C;
  FaultKernel FK(std::make_unique<Kernel>(C), Inj);
  bool Ran = false;
  FK.submit(100, [&] { Ran = true; });
  SimTime DL = FK.nextDeadline();
  EXPECT_GT(DL, 100u) << "jitter must delay the nominal deadline";
  EXPECT_LE(DL, 150u) << "jitter is bounded by MaxJitterUs";
  // The delayed deadline still completes normally.
  ASSERT_TRUE(FK.waitUntil(DL));
  auto Due = FK.takeDue();
  ASSERT_EQ(Due.size(), 1u);
  Due[0]();
  EXPECT_TRUE(Ran);
  EXPECT_EQ(Inj.injected(FaultKind::Jitter), 1u);
}

TEST(FaultKernel, SpuriousWakeReturnsEarlyWithNothingDue) {
  FaultSpec S;
  S.Rate[static_cast<size_t>(FaultKind::Eintr)] = 1.0;
  FaultInjector Inj(S, 42);

  Clock C;
  FaultKernel FK(std::make_unique<Kernel>(C), Inj);
  FK.submit(1000, [] {});
  SimTime DL = FK.nextDeadline();
  ASSERT_EQ(DL, 1000u);
  // The injected spurious wake advances time by one tiny slice only — the
  // loop observes an early return with nothing due, like an interrupted
  // epoll_wait.
  ASSERT_TRUE(FK.waitUntil(DL));
  EXPECT_LT(FK.now(), DL);
  EXPECT_TRUE(FK.takeDue().empty());
  // Re-waiting (what a hardened loop does) eventually reaches the deadline.
  int Spins = 0;
  while (FK.now() < DL && ++Spins < 2000)
    FK.waitUntil(DL);
  EXPECT_EQ(FK.now(), DL);
  EXPECT_EQ(FK.takeDue().size(), 1u);
}

TEST(FaultKernel, ForwardsEverythingElse) {
  FaultSpec S; // no faults enabled: pure pass-through
  FaultInjector Inj(S, 1);
  Clock C;
  FaultKernel FK(std::make_unique<Kernel>(C), Inj);
  OpId Id = FK.submit(10, [] {});
  EXPECT_TRUE(FK.hasPending());
  EXPECT_EQ(FK.pendingCount(), 1u);
  EXPECT_EQ(FK.nextDeadline(), 10u);
  EXPECT_FALSE(FK.isRealTime());
  EXPECT_TRUE(FK.cancel(Id));
  EXPECT_FALSE(FK.hasPending());
  EXPECT_EQ(FK.kernelStats().Syscalls, 0u);
}

//===----------------------------------------------------------------------===//
// Degradation ladder + watchdog
//===----------------------------------------------------------------------===//

/// Counts delivered events; optionally stalls to force ring pressure.
class LadderSink : public instr::AnalysisBase {
public:
  const char *analysisName() const override { return "ladder-sink"; }

  void onFunctionEnter(const instr::FunctionEnterEvent &) override {
    ++Enters;
  }
  void onFunctionExit(const instr::FunctionExitEvent &) override { ++Exits; }
  void onObjectCreate(const instr::ObjectCreateEvent &) override {
    ++Objects;
    if (StallUs.load(std::memory_order_relaxed))
      std::this_thread::sleep_for(
          std::chrono::microseconds(StallUs.load(std::memory_order_relaxed)));
  }

  uint64_t Enters = 0;
  uint64_t Exits = 0;
  uint64_t Objects = 0;
  std::atomic<uint64_t> StallUs{0};
};

TEST(DegradationLadder, EscalatesUnderPressureAndRecoversWhenQuiet) {
  LadderSink Sink;
  Sink.StallUs.store(200); // consumer loses the race

  ag::PipelineConfig Cfg;
  Cfg.RingCapacity = 1024;
  Cfg.Policy = ag::BackpressurePolicy::Degrade;
  Cfg.Drain = ag::DrainMode::Concurrent;
  Cfg.ProducerChunk = 0;       // per-event pushes: pressure is immediate
  Cfg.EscalateSpinNs = 50000;  // escalate fast; the test is about the ladder
  Cfg.RecoverQuietTicks = 4;
  ag::AsyncPipeline P(Sink, Cfg);

  // Flood decorations until the ladder has escalated.
  instr::ObjectCreateEvent Ev;
  instr::TickBoundaryEvent Tick;
  uint64_t Pushed = 0;
  while (P.degradation().Escalations == 0 && Pushed < 2000000) {
    Ev.Obj = ++Pushed;
    P.onObjectCreate(Ev);
  }
  ag::DegradationStats Mid = P.degradation();
  ASSERT_GE(Mid.Escalations, 1u) << "ladder never escalated under pressure";
  EXPECT_GT(Mid.FinalTier, 0u);

  // Pressure off: the consumer drains, quiet tick boundaries walk the
  // ladder back down to lossless.
  Sink.StallUs.store(0);
  for (int I = 0; I != 20000 && P.degradation().FinalTier != 0; ++I) {
    P.onTickBoundary(Tick);
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  P.stop();

  ag::DegradationStats D = P.degradation();
  EXPECT_GE(D.Escalations, 1u);
  EXPECT_GE(D.Recoveries, 1u) << "ladder never stepped back down";
  EXPECT_EQ(D.FinalTier, 0u) << "run must end back at lossless";
  EXPECT_GT(D.TimeNs[1] + D.TimeNs[2], 0u)
      << "time must be accounted to the degraded tiers";
}

TEST(DegradationLadder, StructureSurvivesFullShed) {
  LadderSink Sink;
  Sink.StallUs.store(100);

  ag::PipelineConfig Cfg;
  Cfg.RingCapacity = 1024;
  Cfg.Policy = ag::BackpressurePolicy::Degrade;
  Cfg.Drain = ag::DrainMode::Concurrent;
  Cfg.ProducerChunk = 0;
  Cfg.EscalateSpinNs = 20000;
  ag::AsyncPipeline P(Sink, Cfg);

  auto Data = std::make_shared<jsrt::FunctionData>();
  Data->Id = 1;
  Data->Name = "f";
  jsrt::Function F(Data);
  jsrt::CallArgs Args;
  jsrt::DispatchInfo Dispatch;
  jsrt::Completion Result;

  constexpr uint64_t Total = 20000;
  instr::ObjectCreateEvent Ev;
  for (uint64_t I = 0; I != Total; ++I) {
    instr::FunctionEnterEvent Enter{F, Args, Dispatch};
    P.onFunctionEnter(Enter);
    Ev.Obj = I + 1;
    P.onObjectCreate(Ev); // decoration: sheddable
    instr::FunctionExitEvent Exit{F, Result, Dispatch};
    P.onFunctionExit(Exit);
  }
  Sink.StallUs.store(0);
  P.stop();

  // Structure is never shed, whatever the ladder did to decorations.
  EXPECT_EQ(Sink.Enters, Total);
  EXPECT_EQ(Sink.Exits, Total);
  ag::DegradationStats D = P.degradation();
  EXPECT_EQ(Sink.Objects + D.RecordsShed, Total)
      << "every decoration is either delivered or counted as shed";
}

TEST(DegradationLadder, WatchdogCountsBuilderStalls) {
  LadderSink Sink;
  Sink.StallUs.store(200000); // one event pins the builder for 200ms

  ag::PipelineConfig Cfg;
  Cfg.RingCapacity = 1 << 12;
  Cfg.Drain = ag::DrainMode::Concurrent;
  Cfg.WatchdogStallMs = 20;
  ag::AsyncPipeline P(Sink, Cfg);

  // First decoration wedges the builder; keep a backlog queued behind it.
  instr::ObjectCreateEvent Ev;
  for (uint64_t I = 0; I != 64; ++I) {
    Ev.Obj = I + 1;
    P.onObjectCreate(Ev);
  }
  instr::TickBoundaryEvent Tick;
  P.onTickBoundary(Tick); // spill the producer chunk into the ring
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  P.onTickBoundary(Tick); // heartbeat is now stale with a backlog: stall
  Sink.StallUs.store(0);
  P.stop();
  EXPECT_GE(P.degradation().WatchdogStalls, 1u);
}

//===----------------------------------------------------------------------===//
// End-to-end: faults through the runtime stack
//===----------------------------------------------------------------------===//

#ifdef __linux__

TEST(FaultE2E, EpollClusterSurvivesAggressiveMixAndAccountsEveryRequest) {
  std::string Why;
  if (!kernelBackendAvailable(KernelBackend::Epoll, &Why))
    GTEST_SKIP() << "epoll backend unavailable: " << Why;

  cluster::ClusterConfig Cfg;
  Cfg.Loops = 1;
  Cfg.Backend = KernelBackend::Epoll;
  Cfg.Port = 9391;
  Cfg.TotalRequests = 400;
  Cfg.TotalClients = 4;
  Cfg.Mode = ag::PipelineMode::Async;
  Cfg.Policy = ag::BackpressurePolicy::Degrade;
  Cfg.Gossip = false;
  ASSERT_TRUE(
      FaultSpec::parse("eintr:0.05,eagain:0.03,enobufs:0.02,shortwrite:0.1,"
                       "reset:0.005,jitter:0.02",
                       Cfg.Faults, nullptr));
  Cfg.FaultSeed = 11;

  cluster::ClusterHarness H(Cfg);
  cluster::ClusterResult R = H.run();

  // Nothing hung or vanished: every request completed or was explicitly
  // abandoned after its retry budget.
  EXPECT_EQ(R.Wire.Completed + R.Wire.Abandoned, Cfg.TotalRequests);
  EXPECT_GT(R.Wire.Completed, 0u);
  // Faults actually fired and the hardened paths actually recovered.
  EXPECT_GT(R.FaultsInjected, 0u);
  EXPECT_GT(R.FaultDecisions, R.FaultsInjected);
  EXPECT_GT(R.Net.EintrRetries + R.Net.ShortWrites + R.Net.EnobufsRetries,
            0u);
  ASSERT_EQ(R.Shards.size(), 1u);
  EXPECT_NE(R.Shards[0].FaultDigest, 0u);
}

TEST(FaultE2E, SameSeedReproducesIdenticalFaultSchedule) {
  std::string Why;
  if (!kernelBackendAvailable(KernelBackend::Epoll, &Why))
    GTEST_SKIP() << "epoll backend unavailable: " << Why;

  // Two serve-only runs with the same seed process different wall-clock
  // interleavings, so digests may differ — the reproducibility contract is
  // per decision stream, which the sim backend pins exactly: same (spec,
  // seed, workload) → same decisions, same digest.
  cluster::ClusterConfig Cfg;
  Cfg.Loops = 2;
  Cfg.Backend = KernelBackend::Sim;
  Cfg.TotalRequests = 500;
  Cfg.TotalClients = 6;
  // Gossip off: cross-loop message arrival is real thread interleaving
  // even under virtual time, which would perturb when each shard's kernel
  // draws its fault decisions. Without it every shard is single-threaded
  // and its decision stream is exactly (spec, seed, workload).
  Cfg.Gossip = false;
  ASSERT_TRUE(FaultSpec::parse("jitter:0.2,eintr:0.1", Cfg.Faults, nullptr));
  Cfg.FaultSeed = 77;

  cluster::ClusterResult A = cluster::ClusterHarness(Cfg).run();
  cluster::ClusterResult B = cluster::ClusterHarness(Cfg).run();
  ASSERT_EQ(A.Shards.size(), B.Shards.size());
  EXPECT_GT(A.FaultsInjected, 0u);
  for (size_t S = 0; S != A.Shards.size(); ++S) {
    EXPECT_EQ(A.Shards[S].FaultDigest, B.Shards[S].FaultDigest)
        << "shard " << S << " fault schedule diverged across runs";
    EXPECT_EQ(A.Shards[S].FaultDecisions, B.Shards[S].FaultDecisions);
    EXPECT_EQ(A.Shards[S].FaultsInjected, B.Shards[S].FaultsInjected);
  }
  // And the workload outcome itself stays deterministic under faults.
  EXPECT_EQ(A.TotalCompleted, B.TotalCompleted);
  EXPECT_EQ(A.MaxVirtualTimeUs, B.MaxVirtualTimeUs);
}

#endif // __linux__

} // namespace
