//===- RaceDetectorTest.cpp - data-flow race detector tests --------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "ag/Builder.h"
#include "detect/RaceDetector.h"
#include "node/Fs.h"

#include <gtest/gtest.h>

using namespace asyncg;
using namespace asyncg::ag;
using namespace asyncg::jsrt;
using namespace asyncg::testhelpers;

namespace {

struct RaceRun {
  AsyncGBuilder Builder;
  std::unique_ptr<detect::RaceDetector> Races;
  RaceRun() { Races = std::make_unique<detect::RaceDetector>(Builder); }
};

std::unique_ptr<RaceRun> runWithRaces(std::function<void(Runtime &)> Body,
                                      Runtime *RTOut = nullptr) {
  auto R = std::make_unique<RaceRun>();
  Runtime Local;
  Runtime &RT = RTOut ? *RTOut : Local;
  RT.hooks().attach(&R->Builder);
  RT.hooks().attach(R->Races.get());
  runMain(RT, std::move(Body));
  return R;
}

TEST(RaceDetector, FiresOnUnorderedIoWriteAndRead) {
  Runtime RT;
  RT.fileSystem().putFile("a", "1");
  RT.fileSystem().putFile("b", "2");
  auto R = runWithRaces(
      [](Runtime &Rr) {
        Value State = Object::make();
        node::Fs Fs(Rr);
        // Two independent I/O completions touch the same property: the
        // completion order is an OS artifact.
        Fs.readFile(JSLINE("race.js", 2), "a",
                    Rr.makeFunction("onA", JSLINE("race.js", 2),
                                    [State](Runtime &R2, const CallArgs &A) {
                                      R2.setProperty(JSLINE("race.js", 3),
                                                     State, "latest",
                                                     A.arg(1));
                                      return Completion::normal();
                                    }));
        Fs.readFile(JSLINE("race.js", 5), "b",
                    Rr.makeFunction("onB", JSLINE("race.js", 5),
                                    [State](Runtime &R2, const CallArgs &) {
                                      R2.getProperty(JSLINE("race.js", 6),
                                                     State, "latest");
                                      return Completion::normal();
                                    }));
      },
      &RT);
  ASSERT_FALSE(R->Races->warnings().empty());
  EXPECT_EQ(R->Races->warnings()[0].Category, BugCategory::EventRace);
  EXPECT_TRUE(R->Builder.graph().hasWarning(BugCategory::EventRace));
}

TEST(RaceDetector, QuietWhenCausallyOrdered) {
  Runtime RT;
  RT.fileSystem().putFile("a", "1");
  auto R = runWithRaces(
      [](Runtime &Rr) {
        Value State = Object::make();
        node::Fs Fs(Rr);
        // The read is scheduled from inside the write callback: ordered.
        Fs.readFile(
            JSLINE("race.js", 2), "a",
            Rr.makeFunction(
                "onA", JSLINE("race.js", 2),
                [State](Runtime &R2, const CallArgs &A) {
                  R2.setProperty(JSLINE("race.js", 3), State, "latest",
                                 A.arg(1));
                  R2.setTimeout(
                      JSLINE("race.js", 4),
                      R2.makeFunction("later", JSLINE("race.js", 4),
                                      [State](Runtime &R3,
                                              const CallArgs &) {
                                        R3.getProperty(JSLINE("race.js", 5),
                                                       State, "latest");
                                        return Completion::normal();
                                      }),
                      1);
                  return Completion::normal();
                }));
      },
      &RT);
  EXPECT_TRUE(R->Races->warnings().empty());
}

TEST(RaceDetector, QuietForSameTickAccesses) {
  auto R = runWithRaces([](Runtime &Rr) {
    Value State = Object::make();
    Rr.setProperty(JSLINE("race.js", 1), State, "x", Value::number(1));
    Rr.getProperty(JSLINE("race.js", 2), State, "x");
  });
  EXPECT_TRUE(R->Races->warnings().empty());
}

TEST(RaceDetector, QuietForPureMicrotaskInterleavings) {
  auto R = runWithRaces([](Runtime &Rr) {
    Value State = Object::make();
    // Deterministic ordering (nextTick before promise): not a race.
    Rr.nextTick(JSLINE("race.js", 1),
                Rr.makeFunction("w", JSLINE("race.js", 1),
                                [State](Runtime &R2, const CallArgs &) {
                                  R2.setProperty(JSLINE("race.js", 1),
                                                 State, "x",
                                                 Value::number(1));
                                  return Completion::normal();
                                }));
    PromiseRef P = Rr.promiseResolvedWith(JSLINE("race.js", 2),
                                          Value::number(0));
    Rr.promiseThen(JSLINE("race.js", 3), P,
                   Rr.makeFunction("r", JSLINE("race.js", 3),
                                   [State](Runtime &R2, const CallArgs &) {
                                     R2.getProperty(JSLINE("race.js", 3),
                                                    State, "x");
                                     return Completion::normal();
                                   }));
  });
  EXPECT_TRUE(R->Races->warnings().empty());
}

TEST(RaceDetector, WriteWriteConflictDetectedOnce) {
  auto R = runWithRaces([](Runtime &Rr) {
    Value State = Object::make();
    for (int I = 0; I < 2; ++I) {
      Rr.setTimeout(JSLINE("race.js", static_cast<uint32_t>(10 + I)),
                    Rr.makeFunction("w" + std::to_string(I),
                                    JSLINE("race.js",
                                           static_cast<uint32_t>(10 + I)),
                                    [State, I](Runtime &R2,
                                               const CallArgs &) {
                                      R2.setProperty(
                                          JSLINE("race.js",
                                                 static_cast<uint32_t>(10 +
                                                                       I)),
                                          State, "winner",
                                          Value::number(I));
                                      return Completion::normal();
                                    }),
                    static_cast<double>(5 + I));
    }
  });
  // Two same-deadline-ish timers writing the same slot: exactly one
  // write/write race pair.
  EXPECT_EQ(R->Races->warnings().size(), 1u);
}

TEST(RaceDetector, DistinctKeysDoNotConflict) {
  auto R = runWithRaces([](Runtime &Rr) {
    Value State = Object::make();
    Rr.setTimeout(JSLINE("race.js", 1),
                  Rr.makeFunction("w1", JSLINE("race.js", 1),
                                  [State](Runtime &R2, const CallArgs &) {
                                    R2.setProperty(JSLINE("race.js", 1),
                                                   State, "a",
                                                   Value::number(1));
                                    return Completion::normal();
                                  }),
                  5);
    Rr.setTimeout(JSLINE("race.js", 2),
                  Rr.makeFunction("w2", JSLINE("race.js", 2),
                                  [State](Runtime &R2, const CallArgs &) {
                                    R2.setProperty(JSLINE("race.js", 2),
                                                   State, "b",
                                                   Value::number(2));
                                    return Completion::normal();
                                  }),
                  6);
  });
  EXPECT_TRUE(R->Races->warnings().empty());
}

} // namespace
