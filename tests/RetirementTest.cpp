//===- RetirementTest.cpp - tick-epoch retirement tests -----------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Bounded-memory steady state: retirement must reclaim quiesced regions
// without changing what the automatic (§VI-A) detector suite reports.
// Covers warning parity across the Table-I cases and an AcmeAir run,
// .agtrace replay parity, storage reclamation, and live-ID stability.
//
// The §VI-B manual post-analyses (AgQueries) are intentionally NOT part of
// the parity contract: they inspect whatever is retained, which under
// --retire is the retain window (see DESIGN.md §5d).
//
//===----------------------------------------------------------------------===//

#include "ag/Builder.h"
#include "apps/acmeair/App.h"
#include "apps/acmeair/Workload.h"
#include "cases/Case.h"
#include "detect/Detectors.h"
#include "instr/TraceCodec.h"
#include "viz/Dot.h"
#include "viz/JsonDump.h"
#include "viz/TextReport.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <tuple>
#include <vector>

using namespace asyncg;
using namespace asyncg::jsrt;
using namespace asyncg::cases;

namespace {

/// (category, message, file:line) — node ids are excluded on purpose:
/// retirement recycles them.
using WarningKey = std::tuple<std::string, std::string, std::string>;

std::vector<WarningKey> warningKeys(const ag::AsyncGraph &G) {
  std::vector<WarningKey> Keys;
  for (const ag::Warning &W : G.warnings())
    Keys.emplace_back(ag::bugCategoryName(W.Category), W.Message.str(),
                      W.Loc.str());
  std::sort(Keys.begin(), Keys.end());
  return Keys;
}

struct CaseRun {
  std::vector<WarningKey> Warnings;
  size_t FootprintBytes = 0;
  size_t LiveNodes = 0;
  uint64_t RetiredTicks = 0;
  std::string Text, Dot, Json;
};

CaseRun runCase(const CaseDef &Def, bool Fixed, bool Retire,
                uint32_t Window = 8) {
  Runtime RT(Def.Config);
  ag::BuilderConfig BCfg;
  BCfg.Retire = Retire;
  BCfg.RetainWindow = Window;
  ag::AsyncGBuilder Builder(BCfg);
  detect::DetectorSuite Detectors;
  Detectors.attachTo(Builder);
  RT.hooks().attach(&Builder);
  Def.Run(RT, Fixed);

  CaseRun R;
  R.Warnings = warningKeys(Builder.graph());
  R.FootprintBytes = Builder.memoryFootprint();
  R.LiveNodes = Builder.graph().nodeCount();
  R.RetiredTicks = Builder.graph().retired().Ticks;
  // Rendering must tolerate freelisted slots and tombstoned ticks.
  R.Text = viz::toText(Builder.graph());
  R.Dot = viz::toDot(Builder.graph());
  R.Json = viz::toJson(Builder.graph());
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// Warning parity: Table I
//===----------------------------------------------------------------------===//

TEST(RetirementParity, TableOneCasesIdenticalWarnings) {
  for (const CaseDef &Def : allCases()) {
    for (bool Fixed : {false, true}) {
      if (Fixed && !Def.HasFix)
        continue;
      CaseRun Off = runCase(Def, Fixed, /*Retire=*/false);
      CaseRun On = runCase(Def, Fixed, /*Retire=*/true);
      EXPECT_EQ(Off.Warnings, On.Warnings)
          << Def.Name << (Fixed ? " (fixed)" : " (buggy)");
    }
  }
}

TEST(RetirementParity, TightWindowKeepsDetectorWarnings) {
  // Window 1 is the most aggressive setting: only the newest committed
  // tick survives. The incremental detectors must still agree.
  for (const CaseDef &Def : allCases()) {
    for (bool Fixed : {false, true}) {
      if (Fixed && !Def.HasFix)
        continue;
      CaseRun Off = runCase(Def, Fixed, /*Retire=*/false);
      CaseRun On = runCase(Def, Fixed, /*Retire=*/true, /*Window=*/1);
      // The §VI-B post-analyses are window-scoped (see file header); at
      // window 1 two cases lose manual-query warnings. Compare only the
      // automatic detector categories here.
      auto IsManual = [](const WarningKey &K) {
        const std::string &Cat = std::get<0>(K);
        return Cat == "Broken Promise Chain" || Cat == "Expect Sync Callback";
      };
      std::vector<WarningKey> OffAuto, OnAuto;
      for (const WarningKey &K : Off.Warnings)
        if (!IsManual(K))
          OffAuto.push_back(K);
      for (const WarningKey &K : On.Warnings)
        if (!IsManual(K))
          OnAuto.push_back(K);
      EXPECT_EQ(OffAuto, OnAuto)
          << Def.Name << (Fixed ? " (fixed)" : " (buggy)");
    }
  }
}

//===----------------------------------------------------------------------===//
// Warning parity + reclamation: AcmeAir
//===----------------------------------------------------------------------===//

TEST(RetirementAcmeAir, ParityAndFootprintReduction) {
  auto Run = [](bool Retire) {
    Runtime RT;
    acmeair::AppConfig ACfg;
    acmeair::AcmeAirApp App(RT, ACfg);
    acmeair::WorkloadConfig WCfg;
    WCfg.TotalRequests = 300;
    WCfg.Clients = 4;
    acmeair::WorkloadDriver Driver(RT, ACfg.Port, WCfg);

    ag::BuilderConfig BCfg;
    BCfg.Retire = Retire;
    ag::AsyncGBuilder Builder(BCfg);
    detect::DetectorSuite Detectors;
    Detectors.attachTo(Builder);
    RT.hooks().attach(&Builder);

    Function Main = RT.makeBuiltin("main", [&](Runtime &, const CallArgs &) {
      App.start(JSLOC);
      Driver.start();
      return Completion::normal();
    });
    RT.main(Main);
    EXPECT_EQ(Driver.completed(), WCfg.TotalRequests);
    return std::make_tuple(warningKeys(Builder.graph()),
                           Builder.memoryFootprint(),
                           Builder.graph().retired().Ticks);
  };

  auto [WOff, FootOff, RetOff] = Run(false);
  auto [WOn, FootOn, RetOn] = Run(true);
  EXPECT_EQ(WOff, WOn);
  EXPECT_EQ(RetOff, 0u);
  EXPECT_GT(RetOn, 0u);
  // 300 keep-alive requests: the retained window must be a small fraction
  // of the full graph.
  EXPECT_LT(FootOn * 4, FootOff);
}

//===----------------------------------------------------------------------===//
// Replay parity
//===----------------------------------------------------------------------===//

TEST(RetirementReplay, RecordedTraceAgreesAcrossModes) {
  // Record a case once, then rebuild the graph from the identical event
  // stream with and without retirement.
  const CaseDef *Def = nullptr;
  for (const CaseDef &D : allCases())
    if (D.Name == "SO-17894000")
      Def = &D;
  ASSERT_NE(Def, nullptr);

  std::string Path = ::testing::TempDir() + "retirement_replay.agtrace";
  {
    Runtime RT(Def->Config);
    instr::TraceRecorder Rec;
    ASSERT_TRUE(Rec.open(Path));
    RT.hooks().attach(&Rec);
    Def->Run(RT, /*Fixed=*/true);
    ASSERT_TRUE(Rec.finalize());
  }

  auto Replay = [&](bool Retire, uint32_t Window) {
    ag::BuilderConfig BCfg;
    BCfg.Retire = Retire;
    BCfg.RetainWindow = Window;
    ag::AsyncGBuilder Builder(BCfg);
    detect::DetectorSuite Detectors;
    Detectors.attachTo(Builder);
    std::string Err;
    EXPECT_TRUE(instr::replayTrace(Path, Builder, &Err)) << Err;
    return warningKeys(Builder.graph());
  };

  std::vector<WarningKey> Off = Replay(false, 8);
  EXPECT_EQ(Off, Replay(true, 8));
  EXPECT_EQ(Off, Replay(true, 1));
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Reclamation mechanics
//===----------------------------------------------------------------------===//

TEST(RetirementMechanics, ReclaimsStorageAndKeepsLiveIdsStable) {
  // Find a case with enough ticks to retire something at window 1.
  const CaseDef *Def = nullptr;
  for (const CaseDef &D : allCases())
    if (D.Name == "SO-17894000")
      Def = &D;
  ASSERT_NE(Def, nullptr);

  CaseRun Off = runCase(*Def, /*Fixed=*/false, /*Retire=*/false);
  CaseRun On = runCase(*Def, /*Fixed=*/false, /*Retire=*/true, /*Window=*/1);

  EXPECT_GT(On.RetiredTicks, 0u);
  EXPECT_LT(On.LiveNodes, Off.LiveNodes);
  // No footprint assertion here: on a ten-tick case the retirement
  // accounting maps outweigh the reclaimed bytes; the AcmeAir test above
  // covers the at-scale reduction.

  // The renderers must have skipped every reclaimed slot: no "(dead)"
  // artifacts, and the retired banner is present.
  EXPECT_NE(On.Text.find("retired tick"), std::string::npos);
  EXPECT_EQ(On.Json.find("4294967295"), std::string::npos); // InvalidNode
  EXPECT_FALSE(On.Dot.empty());

  // Warnings anchored to retired nodes must have dropped their node
  // reference rather than dangle.
  // (Validated structurally: every warning's node, when set, is live.)
}

TEST(RetirementMechanics, WarningNodesAreLiveOrDetached) {
  for (const CaseDef &Def : allCases()) {
    Runtime RT(Def.Config);
    ag::BuilderConfig BCfg;
    BCfg.Retire = true;
    BCfg.RetainWindow = 1;
    ag::AsyncGBuilder Builder(BCfg);
    detect::DetectorSuite Detectors;
    Detectors.attachTo(Builder);
    RT.hooks().attach(&Builder);
    Def.Run(RT, /*Fixed=*/false);

    const ag::AsyncGraph &G = Builder.graph();
    for (const ag::Warning &W : G.warnings()) {
      if (W.Node == ag::InvalidNode)
        continue;
      ASSERT_LT(W.Node, G.nodes().size()) << Def.Name;
      EXPECT_EQ(G.nodes()[W.Node].Id, W.Node)
          << Def.Name << ": warning anchored to a reclaimed node";
    }
  }
}
