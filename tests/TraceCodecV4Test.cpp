//===- TraceCodecV4Test.cpp - v4 columnar codec parity + robustness ----------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The v4 columnar codec's contracts, beyond the default-version round
/// trips in TraceReplayTest.cpp:
///
///  - cross-version parity: the same deterministic run recorded as v2, v3,
///    and v4 must replay to byte-identical DOT through every version and
///    transport (v4 through both buffered stdio and zero-copy mmap), over
///    the Table-I cases and an AcmeAir workload;
///  - sharded round-trip: per-shard v4 traces of a cluster run, replayed
///    offline and joined by ShardedGraph, must reproduce the harness's
///    merged graph byte-for-byte;
///  - robustness: truncated and bit-flipped real traces must never crash,
///    hang, or read out of bounds. Since the v4 writer interleaves symbol
///    checkpoints and flushes per frame, a damaged file with an intact
///    header magic recovers its clean frame-aligned prefix — byte-identical
///    through both the Stdio and Mmap transports — instead of failing; only
///    images cut inside the 8-byte magic still fail, with a clean error.
///    The bench smoke --check leg runs this suite under sanitizers, which
///    is what turns "no out-of-bounds read" into an enforced property.
///
//===----------------------------------------------------------------------===//

#include "ag/ShardedGraph.h"
#include "apps/acmeair/App.h"
#include "apps/acmeair/Workload.h"
#include "apps/cluster/Harness.h"
#include "cases/Case.h"
#include "detect/Detectors.h"
#include "instr/TraceCodec.h"
#include "viz/Dot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace asyncg;
using namespace asyncg::cases;

namespace {

std::string tempPath(const std::string &Tag) {
  return ::testing::TempDir() + "agtrace_v4_" + Tag + ".agtrace";
}

std::vector<uint8_t> slurpBytes(const std::string &Path) {
  std::vector<uint8_t> Bytes;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  EXPECT_NE(F, nullptr) << Path;
  if (!F)
    return Bytes;
  std::fseek(F, 0, SEEK_END);
  long Size = std::ftell(F);
  std::fseek(F, 0, SEEK_SET);
  Bytes.resize(static_cast<size_t>(Size));
  EXPECT_EQ(std::fread(Bytes.data(), 1, Bytes.size(), F), Bytes.size());
  std::fclose(F);
  return Bytes;
}

void spitBytes(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr) << Path;
  ASSERT_EQ(std::fwrite(Bytes.data(), 1, Bytes.size(), F), Bytes.size());
  std::fclose(F);
}

std::string replayDot(const std::string &Path,
                      instr::ReplayTransport Transport) {
  ag::AsyncGBuilder Builder;
  std::string Err;
  EXPECT_TRUE(instr::replayTrace(Path, Builder, &Err, Transport))
      << Path << ": " << Err;
  return viz::toDot(Builder.graph());
}

/// Codec-level sink for corrupt-input tests: replaying garbage into the
/// full graph builder would exercise the builder's event validation, not
/// the decoder's memory safety, which is what these tests pin down.
struct NullSink final : instr::AnalysisBase {
  const char *analysisName() const override { return "null-sink"; }
};

//===----------------------------------------------------------------------===//
// Cross-version parity: Table-I cases
//===----------------------------------------------------------------------===//

class CrossVersionParity : public ::testing::TestWithParam<size_t> {};

std::string caseName(const ::testing::TestParamInfo<size_t> &Info) {
  std::string N = allCases()[Info.param].Name;
  for (char &C : N)
    if (C == '-')
      C = '_';
  return N;
}

TEST_P(CrossVersionParity, EveryVersionReplaysToSyncDot) {
  const CaseDef &Def = allCases()[GetParam()];
  for (bool Fixed : {false, true}) {
    if (Fixed && !Def.HasFix)
      continue;
    SCOPED_TRACE(Fixed ? "fixed" : "buggy");

    // Case runs are deterministic (TraceReplayTest relies on the same
    // property), so each version records its own run of the same case.
    std::string Want;
    {
      ag::AsyncGBuilder Inline;
      runCaseWith(Def, Fixed, Inline);
      Want = viz::toDot(Inline.graph());
    }

    uint64_t Counts[3] = {0, 0, 0};
    for (uint32_t Version : {2u, 3u, 4u}) {
      SCOPED_TRACE("v" + std::to_string(Version));
      std::string Path = tempPath(Def.Name + (Fixed ? "_f" : "_b") + "_v" +
                                  std::to_string(Version));
      instr::TraceRecorder Rec;
      ASSERT_TRUE(Rec.open(Path, /*Shard=*/0, Version));
      runCaseWith(Def, Fixed, Rec);
      ASSERT_TRUE(Rec.finalize());
      Counts[Version - 2] = Rec.recordCount();

      EXPECT_EQ(replayDot(Path, instr::ReplayTransport::Stdio), Want);
      if (Version == 4) {
        EXPECT_EQ(replayDot(Path, instr::ReplayTransport::Mmap), Want);
      }
      std::remove(Path.c_str());
    }
    // Same events in, same record stream length out of every encoding.
    EXPECT_EQ(Counts[0], Counts[1]);
    EXPECT_EQ(Counts[1], Counts[2]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCases, CrossVersionParity,
                         ::testing::Range<size_t>(0, allCases().size()),
                         caseName);

//===----------------------------------------------------------------------===//
// Cross-version parity: AcmeAir workload
//===----------------------------------------------------------------------===//

TEST(CrossVersionParityAcmeAir, V3AndV4ReplayIdentically) {
  std::string P3 = tempPath("acmeair_v3"), P4 = tempPath("acmeair_v4");
  instr::TraceRecorder R3, R4;
  ASSERT_TRUE(R3.open(P3, /*Shard=*/0, /*Version=*/3));
  ASSERT_TRUE(R4.open(P4, /*Shard=*/0, /*Version=*/4));
  {
    // One run, both recorders attached: the two files encode the identical
    // event stream, so any replay divergence is the codec's fault alone.
    jsrt::Runtime RT;
    acmeair::AppConfig ACfg;
    acmeair::AcmeAirApp App(RT, ACfg);
    acmeair::WorkloadConfig WCfg;
    WCfg.TotalRequests = 300;
    WCfg.Clients = 4;
    acmeair::WorkloadDriver Driver(RT, ACfg.Port, WCfg);
    RT.hooks().attach(&R3);
    RT.hooks().attach(&R4);
    jsrt::Function Main = RT.makeBuiltin(
        "main", [&](jsrt::Runtime &, const jsrt::CallArgs &) {
          App.start(JSLOC);
          Driver.start();
          return jsrt::Completion::normal();
        });
    RT.main(Main);
    ASSERT_EQ(Driver.completed(), WCfg.TotalRequests);
    ASSERT_EQ(Driver.errors(), 0u);
  }
  ASSERT_TRUE(R3.finalize());
  ASSERT_TRUE(R4.finalize());
  ASSERT_EQ(R3.recordCount(), R4.recordCount());
  ASSERT_GT(R4.recordCount(), 1000u);
  // The headline compression must hold on a real workload, not just on
  // hand-picked cases.
  EXPECT_GE(static_cast<double>(R3.recordBytes()),
            4.0 * static_cast<double>(R4.recordBytes()));

  std::string D3 = replayDot(P3, instr::ReplayTransport::Stdio);
  ASSERT_FALSE(D3.empty());
  EXPECT_EQ(replayDot(P4, instr::ReplayTransport::Stdio), D3);
  EXPECT_EQ(replayDot(P4, instr::ReplayTransport::Mmap), D3);
  std::remove(P3.c_str());
  std::remove(P4.c_str());
}

//===----------------------------------------------------------------------===//
// Sharded round-trip
//===----------------------------------------------------------------------===//

TEST(ShardedRoundTrip, V4ShardTracesRebuildMergedGraph) {
  cluster::ClusterConfig Cfg;
  Cfg.Loops = 2;
  Cfg.TotalRequests = 200;
  Cfg.TotalClients = 4;
  Cfg.RecordDir = ::testing::TempDir();
  Cfg.TraceVer = 4;
  cluster::ClusterHarness H(Cfg);
  cluster::ClusterResult R = H.run();
  ASSERT_EQ(R.TotalCompleted, Cfg.TotalRequests);
  ASSERT_EQ(R.TotalErrors, 0u);
  for (const cluster::ShardResult &S : R.Shards)
    EXPECT_GT(S.RecordedBytes, 0u);
  std::string Want = viz::toDot(H.merged());

  // Offline: replay each shard's v4 trace into its own builder (detectors
  // attached, as the harness had them), then join through the same merge
  // layer the harness used.
  std::vector<std::unique_ptr<ag::AsyncGBuilder>> Builders;
  std::vector<std::unique_ptr<detect::DetectorSuite>> Suites;
  std::vector<const ag::AsyncGraph *> Graphs;
  for (uint32_t S = 0; S < Cfg.Loops; ++S) {
    std::string Path =
        Cfg.RecordDir + "/shard" + std::to_string(S) + ".agtrace";
    auto B = std::make_unique<ag::AsyncGBuilder>();
    auto D = std::make_unique<detect::DetectorSuite>();
    D->attachTo(*B);
    std::string Err;
    ASSERT_TRUE(
        instr::replayTrace(Path, *B, &Err, instr::ReplayTransport::Mmap))
        << Path << ": " << Err;
    Builders.push_back(std::move(B));
    Suites.push_back(std::move(D));
  }
  for (const auto &B : Builders)
    Graphs.push_back(&B->graph());
  ag::ShardedGraph Merged;
  ag::MergeStats Stats = Merged.build(Graphs);
  EXPECT_EQ(Stats.Shards, Cfg.Loops);
  EXPECT_EQ(Stats.UnresolvedHandoffs, 0u);
  EXPECT_EQ(viz::toDot(Merged.merged()), Want);

  for (uint32_t S = 0; S < Cfg.Loops; ++S)
    std::remove(
        (Cfg.RecordDir + "/shard" + std::to_string(S) + ".agtrace").c_str());
}

//===----------------------------------------------------------------------===//
// Decoder robustness: corrupt inputs fail cleanly, never crash
//===----------------------------------------------------------------------===//

class Robustness : public ::testing::Test {
protected:
  void SetUp() override {
    // A real v4 trace exercising every record kind: several Table-I case
    // runs appended into one file (one run alone is under 200 bytes when
    // the test process starts cold — too small for the cut/flip sweeps).
    // Replay correctness of the concatenation is irrelevant here; the
    // decoder only has to survive it.
    Path = tempPath("robust");
    instr::TraceRecorder Rec;
    ASSERT_TRUE(Rec.open(Path, /*Shard=*/0, /*Version=*/4));
    for (size_t C = 0; C < allCases().size() && C < 6; ++C)
      runCaseWith(allCases()[C], /*Fixed=*/false, Rec);
    ASSERT_TRUE(Rec.finalize());
    Original = slurpBytes(Path);
    ASSERT_GT(Original.size(), 512u);
  }
  void TearDown() override { std::remove(Path.c_str()); }

  /// Replays \p Bytes through both transports. The hard requirement is
  /// memory-safe, terminating behavior with a non-empty error whenever a
  /// replay reports failure. Returns how many of the two transports
  /// failed.
  int replayMutated(const std::vector<uint8_t> &Bytes) {
    std::string MutPath = Path + ".mut";
    spitBytes(MutPath, Bytes);
    int Failures = 0;
    for (auto T :
         {instr::ReplayTransport::Stdio, instr::ReplayTransport::Mmap}) {
      NullSink Sink;
      std::string Err;
      if (!instr::replayTrace(MutPath, Sink, &Err, T)) {
        EXPECT_FALSE(Err.empty());
        ++Failures;
      }
    }
    std::remove(MutPath.c_str());
    return Failures;
  }

  std::string Path;
  std::vector<uint8_t> Original;
};

TEST_F(Robustness, TruncationsRecoverCleanPrefix) {
  const size_t N = Original.size();
  // Cuts landing in the header, the record section, and the symbol
  // section. A cut inside the 8-byte magic is unrecoverable and must fail
  // on both transports; everything else recovers a (possibly empty) clean
  // frame prefix, and the two transports must agree on it byte for byte.
  std::vector<size_t> Cuts = {0,     1,     7,         16,     32,
                              63,    64,    N / 4,     N / 2,  3 * N / 4,
                              N - 64, N - 17, N - 1};
  for (size_t Cut : Cuts) {
    if (Cut >= N)
      continue;
    SCOPED_TRACE("truncated to " + std::to_string(Cut) + " of " +
                 std::to_string(N) + " bytes");
    std::vector<uint8_t> T(Original.begin(),
                           Original.begin() + static_cast<long>(Cut));
    if (Cut < sizeof(trace::TraceMagic)) {
      EXPECT_EQ(replayMutated(T), 2);
      continue;
    }
    std::string MutPath = Path + ".mut";
    spitBytes(MutPath, T);
    instr::ReplayStats Stats[2];
    int I = 0;
    for (auto Tr :
         {instr::ReplayTransport::Stdio, instr::ReplayTransport::Mmap}) {
      NullSink Sink;
      std::string Err;
      EXPECT_TRUE(instr::replayTrace(MutPath, Sink, &Err, Tr, &Stats[I]))
          << Err;
      EXPECT_TRUE(Stats[I].Recovered);
      ++I;
    }
    // Transport parity: the recovered prefix is a property of the bytes,
    // not of how they were read.
    EXPECT_EQ(Stats[0].Records, Stats[1].Records);
    EXPECT_EQ(Stats[0].RecordBytes, Stats[1].RecordBytes);
    EXPECT_EQ(Stats[0].DroppedTailBytes, Stats[1].DroppedTailBytes);
    std::remove(MutPath.c_str());
  }
}

TEST_F(Robustness, TornTailRecoversPrefixWithDotParity) {
  // A single deterministic case run, so the recovered prefix replays into
  // a real graph and DOT output is comparable across transports and cuts.
  std::string P = tempPath("torn");
  instr::TraceRecorder Rec;
  ASSERT_TRUE(Rec.open(P, /*Shard=*/0, /*Version=*/4));
  runCaseWith(allCases()[0], /*Fixed=*/false, Rec);
  ASSERT_TRUE(Rec.finalize());
  std::vector<uint8_t> Full = slurpBytes(P);
  std::string Pristine = replayDot(P, instr::ReplayTransport::Stdio);

  trace::TraceFileHeader H;
  std::memcpy(&H, Full.data(), sizeof(H));
  ASSERT_EQ(H.Version, 4u);
  ASSERT_LT(H.SymtabOffset, Full.size());

  auto replayRecoveredDot = [&](const std::vector<uint8_t> &Bytes,
                                instr::ReplayTransport T,
                                instr::ReplayStats &Stats) {
    std::string MutPath = P + ".mut";
    spitBytes(MutPath, Bytes);
    ag::AsyncGBuilder B;
    std::string Err;
    EXPECT_TRUE(instr::replayTrace(MutPath, B, &Err, T, &Stats)) << Err;
    std::remove(MutPath.c_str());
    return viz::toDot(B.graph());
  };

  // Cut exactly at the symbol section: what a crash after the last frame
  // flush (but before finalize) leaves behind. Also zero the header's
  // patched counts to match the placeholder a real torn file carries.
  // Every record survives, so the DOT must equal the pristine replay.
  {
    std::vector<uint8_t> T(Full.begin(),
                           Full.begin() +
                               static_cast<long>(H.SymtabOffset));
    for (size_t I = 16; I < 32; ++I)
      T[I] = 0;
    for (auto Tr :
         {instr::ReplayTransport::Stdio, instr::ReplayTransport::Mmap}) {
      instr::ReplayStats Stats;
      EXPECT_EQ(replayRecoveredDot(T, Tr, Stats), Pristine);
      EXPECT_TRUE(Stats.Recovered);
      EXPECT_EQ(Stats.Records, Rec.recordCount());
      EXPECT_EQ(Stats.DroppedTailBytes, 0u);
    }
  }

  // Mid-frame and mid-header cuts: both transports agree byte for byte on
  // the (possibly empty) recovered graph.
  for (size_t Cut : {size_t(16), size_t(32), size_t(32) + 20,
                     static_cast<size_t>(H.SymtabOffset) / 2}) {
    if (Cut >= Full.size())
      continue;
    SCOPED_TRACE("cut at " + std::to_string(Cut));
    std::vector<uint8_t> T(Full.begin(),
                           Full.begin() + static_cast<long>(Cut));
    instr::ReplayStats S0, S1;
    std::string D0 = replayRecoveredDot(T, instr::ReplayTransport::Stdio, S0);
    std::string D1 = replayRecoveredDot(T, instr::ReplayTransport::Mmap, S1);
    EXPECT_EQ(D0, D1);
    EXPECT_EQ(S0.Records, S1.Records);
    EXPECT_TRUE(S0.Recovered);
    EXPECT_TRUE(S1.Recovered);
  }

  // Bit-flipped tail: damage in the record section's last frame loses at
  // most that frame; both transports recover the identical prefix.
  {
    std::vector<uint8_t> M = Full;
    M[H.SymtabOffset - 20] ^= 0x40;
    // Invalidate the symbol section too so the strict open cannot succeed
    // and mask the flip (a flip in a value column decodes as valid data).
    M.resize(H.SymtabOffset);
    instr::ReplayStats S0, S1;
    std::string D0 = replayRecoveredDot(M, instr::ReplayTransport::Stdio, S0);
    std::string D1 = replayRecoveredDot(M, instr::ReplayTransport::Mmap, S1);
    EXPECT_EQ(D0, D1);
    EXPECT_EQ(S0.Records, S1.Records);
    EXPECT_EQ(S0.DroppedTailBytes, S1.DroppedTailBytes);
  }

  std::remove(P.c_str());
}

TEST_F(Robustness, BitFlipsNeverCrash) {
  const size_t N = Original.size();
  // Deterministic sweep: 64 flip positions spread over the whole file,
  // cycling through bit indices — covers the header fields, frame headers,
  // raw and varint columns, and the symbol section. A flip may land in a
  // symbol string or a value column and decode as a different-but-valid
  // trace; everything else must fail with an error. Either way: no crash,
  // no hang, no out-of-bounds access (sanitizer-enforced).
  const size_t Positions = 64;
  for (size_t I = 0; I < Positions; ++I) {
    size_t Off = (I * N) / Positions;
    int Bit = static_cast<int>(I % 8);
    SCOPED_TRACE("flip bit " + std::to_string(Bit) + " at byte " +
                 std::to_string(Off));
    std::vector<uint8_t> M = Original;
    M[Off] ^= static_cast<uint8_t>(1u << Bit);
    replayMutated(M);
  }
}

TEST_F(Robustness, GarbageRecordSectionRecoversEmptyPrefix) {
  // Keep the valid header, stomp the record section with a repeating
  // pattern: no frame magic can survive, so the strict open fails and
  // recovery finds no clean frame — a successful replay of an empty
  // prefix, with the damage reported through the stats.
  std::vector<uint8_t> M = Original;
  size_t End = M.size() > 128 ? M.size() - 64 : M.size();
  for (size_t I = sizeof(trace::TraceFileHeader); I < End; ++I)
    M[I] = static_cast<uint8_t>(0xA5 ^ (I & 0xFF));
  std::string MutPath = Path + ".mut";
  spitBytes(MutPath, M);
  for (auto T :
       {instr::ReplayTransport::Stdio, instr::ReplayTransport::Mmap}) {
    NullSink Sink;
    std::string Err;
    instr::ReplayStats Stats;
    EXPECT_TRUE(instr::replayTrace(MutPath, Sink, &Err, T, &Stats)) << Err;
    EXPECT_TRUE(Stats.Recovered);
    EXPECT_EQ(Stats.Records, 0u);
    EXPECT_GT(Stats.DroppedTailBytes, 0u);
  }
  std::remove(MutPath.c_str());
}

} // namespace
