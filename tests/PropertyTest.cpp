//===- PropertyTest.cpp - property-based tests over random programs ------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random asynchronous programs (mixes of nextTick, timers,
/// immediates, promises, and emitters, nested to random depth) and checks
/// structural invariants of the runtime and the Async Graph over many
/// seeds:
///
///  I1. The loop terminates and every once-scheduled callback ran exactly
///      once.
///  I2. Every CE node has exactly one binding edge, pointing to a CR.
///  I3. Committed ticks have strictly increasing indices and are
///      non-empty.
///  I4. Causal edges never point backwards in time (source tick <= CE
///      tick).
///  I5. Micro-task priority: within the trace, a nextTick callback
///      scheduled in tick T runs before any promise reaction scheduled in
///      the same tick T.
///  I6. The builder is deterministic: node/edge/tick counts are identical
///      across two runs with the same seed.
///  I7. Every warning is anchored to a node that exists (or to none).
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "ag/Builder.h"
#include "detect/Detectors.h"
#include "sim/Random.h"

#include <gtest/gtest.h>

#include <memory>

using namespace asyncg;
using namespace asyncg::ag;
using namespace asyncg::jsrt;
using namespace asyncg::testhelpers;

namespace {

/// Trace entry: (sched-tick, phase, action id).
struct TraceEntry {
  uint64_t ScheduledInTick;
  PhaseKind Phase;
  int Action;
};

/// Random-program driver state shared by all generated callbacks.
struct GenState {
  sim::Random Rng;
  int Budget; // remaining actions to schedule
  std::vector<TraceEntry> Trace;
  std::vector<EmitterRef> Emitters;
  std::vector<PromiseRef> Pending;
  int Scheduled = 0;
  int Executed = 0;

  explicit GenState(uint64_t Seed, int Budget)
      : Rng(Seed), Budget(Budget) {}
};

void scheduleRandom(Runtime &R, const std::shared_ptr<GenState> &S,
                    int Depth);

/// A callback that records execution and maybe schedules more work.
Function genCallback(Runtime &R, const std::shared_ptr<GenState> &S,
                     int Depth, int Action) {
  uint64_t Now = R.tickCount();
  return R.makeFunction(
      "gen" + std::to_string(Action), JSLINE("gen.js", Action % 97 + 1),
      [S, Depth, Action, Now](Runtime &R2, const CallArgs &) {
        ++S->Executed;
        S->Trace.push_back(TraceEntry{Now, R2.currentPhase(), Action});
        if (Depth < 4 && S->Budget > 0)
          scheduleRandom(R2, S, Depth + 1);
        return Completion::normal();
      });
}

void scheduleRandom(Runtime &R, const std::shared_ptr<GenState> &S,
                    int Depth) {
  int Ops = static_cast<int>(S->Rng.nextInt(1, 3));
  for (int I = 0; I < Ops && S->Budget > 0; ++I) {
    --S->Budget;
    int Action = S->Scheduled++;
    switch (S->Rng.nextInt(0, 7)) {
    case 0:
      R.nextTick(JSLINE("gen.js", 1), genCallback(R, S, Depth, Action));
      break;
    case 7:
      R.queueMicrotask(JSLINE("gen.js", 14),
                       genCallback(R, S, Depth, Action));
      break;
    case 1:
      R.setTimeout(JSLINE("gen.js", 2), genCallback(R, S, Depth, Action),
                   static_cast<double>(S->Rng.nextInt(0, 20)));
      break;
    case 2:
      R.setImmediate(JSLINE("gen.js", 3), genCallback(R, S, Depth, Action));
      break;
    case 3: { // promise then-chain
      PromiseRef P = R.promiseResolvedWith(
          JSLINE("gen.js", 4), Value::number(static_cast<double>(Action)));
      PromiseRef D =
          R.promiseThen(JSLINE("gen.js", 5), P,
                        genCallback(R, S, Depth, Action));
      R.promiseCatch(JSLINE("gen.js", 6), D,
                     R.makeBuiltin("c", [](Runtime &, const CallArgs &) {
                       return Completion::normal();
                     }));
      break;
    }
    case 4: { // emitter listener + deferred emit
      EmitterRef E = R.emitterCreate(JSLINE("gen.js", 7));
      S->Emitters.push_back(E);
      R.emitterOn(JSLINE("gen.js", 8), E, "evt",
                  genCallback(R, S, Depth, Action));
      R.setImmediate(JSLINE("gen.js", 9),
                     R.makeBuiltin("emitLater",
                                   [E](Runtime &R3, const CallArgs &) {
                                     R3.emitterEmit(JSLINE("gen.js", 9), E,
                                                    "evt");
                                     return Completion::normal();
                                   }));
      break;
    }
    case 5: { // deferred promise resolution (either outcome runs the cb)
      PromiseRef P = R.promiseBare(JSLINE("gen.js", 10));
      S->Pending.push_back(P);
      Function Cb = genCallback(R, S, Depth, Action);
      R.promiseThen(JSLINE("gen.js", 11), P, Cb, Cb);
      R.setTimeout(JSLINE("gen.js", 12),
                   R.makeBuiltin("resolveLater",
                                 [P, S](Runtime &R3, const CallArgs &) {
                                   if (S->Rng.nextBool())
                                     R3.resolvePromise(JSLINE("gen.js", 12),
                                                       P, Value::number(1));
                                   else
                                     R3.rejectPromise(JSLINE("gen.js", 12),
                                                      P, Value::str("e"));
                                   return Completion::normal();
                                 }),
                   static_cast<double>(S->Rng.nextInt(1, 10)));
      break;
    }
    default: // close-phase callback
      R.scheduleCloseCallback(JSLINE("gen.js", 13),
                              genCallback(R, S, Depth, Action), {},
                              /*Internal=*/false);
      break;
    }
  }
}

struct RunResult {
  std::shared_ptr<GenState> S;
  size_t Nodes = 0;
  size_t Edges = 0;
  size_t Ticks = 0;
  std::unique_ptr<AsyncGBuilder> Builder;
};

RunResult runSeed(uint64_t Seed) {
  RunResult Out;
  Out.S = std::make_shared<GenState>(Seed, 40);
  Out.Builder = std::make_unique<AsyncGBuilder>();
  Runtime RT;
  RT.hooks().attach(Out.Builder.get());
  auto S = Out.S;
  runMain(RT, [S](Runtime &R) { scheduleRandom(R, S, 0); });
  Out.Nodes = Out.Builder->graph().nodeCount();
  Out.Edges = Out.Builder->graph().edges().size();
  Out.Ticks = Out.Builder->graph().ticks().size();
  return Out;
}

class RandomPrograms : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomPrograms, InvariantsHold) {
  RunResult R = runSeed(GetParam());
  const AsyncGraph &G = R.Builder->graph();

  // I1: termination (we got here) and full execution coverage: every
  // promise was eventually settled and every generated callback either ran
  // or was an emitter listener whose deferred emit covered it.
  EXPECT_EQ(R.S->Executed, R.S->Scheduled);

  // I2: every CE has exactly one binding edge pointing to a CR (internal
  // root CEs have none).
  for (const AgNode &N : G.nodes()) {
    if (N.Kind != NodeKind::CE)
      continue;
    size_t Bindings = 0;
    for (uint32_t E : G.outEdges(N.Id)) {
      if (G.edge(E).Kind == EdgeKind::Binding) {
        ++Bindings;
        EXPECT_EQ(G.node(G.edge(E).To).Kind, NodeKind::CR);
      }
    }
    if (N.Sched != 0)
      EXPECT_EQ(Bindings, 1u) << N.Label;
    else
      EXPECT_EQ(Bindings, 0u) << N.Label;
  }

  // I3: ticks strictly increasing and non-empty.
  uint32_t PrevIdx = 0;
  for (const AgTick &T : G.ticks()) {
    EXPECT_GT(T.Index, PrevIdx);
    PrevIdx = T.Index;
    EXPECT_FALSE(T.Nodes.empty());
  }

  // I4: causal edges flow forward in time.
  for (const AgEdge &E : G.edges()) {
    if (E.Kind != EdgeKind::Causal)
      continue;
    EXPECT_LE(G.node(E.From).Tick, G.node(E.To).Tick);
  }

  // I7: warnings anchor to real nodes.
  for (const Warning &W : G.warnings()) {
    if (W.Node != InvalidNode) {
      EXPECT_LT(W.Node, G.nodeCount());
    }
  }
}

TEST_P(RandomPrograms, BuilderIsDeterministic) {
  RunResult A = runSeed(GetParam());
  RunResult B = runSeed(GetParam());
  EXPECT_EQ(A.Nodes, B.Nodes);
  EXPECT_EQ(A.Edges, B.Edges);
  EXPECT_EQ(A.Ticks, B.Ticks);
  EXPECT_EQ(A.S->Executed, B.S->Executed);
  ASSERT_EQ(A.S->Trace.size(), B.S->Trace.size());
  for (size_t I = 0; I < A.S->Trace.size(); ++I) {
    EXPECT_EQ(A.S->Trace[I].Action, B.S->Trace[I].Action);
    EXPECT_EQ(A.S->Trace[I].Phase, B.S->Trace[I].Phase);
  }
}

TEST_P(RandomPrograms, MicrotaskPriorityObserved) {
  // Run with detectors too: exercises the online analyses on random input
  // without crashing or violating dedup invariants.
  Runtime RT;
  AsyncGBuilder Builder;
  detect::DetectorSuite Suite;
  Suite.attachTo(Builder);
  RT.hooks().attach(&Builder);
  auto S = std::make_shared<GenState>(GetParam() ^ 0x5a5a, 30);
  runMain(RT, [S](Runtime &R) { scheduleRandom(R, S, 0); });
  EXPECT_EQ(S->Executed, S->Scheduled);

  // I5: for actions scheduled in the same tick, nexttick-phase entries
  // precede promise-phase entries in the trace.
  for (size_t I = 0; I < S->Trace.size(); ++I) {
    for (size_t J = I + 1; J < S->Trace.size(); ++J) {
      if (S->Trace[I].ScheduledInTick != S->Trace[J].ScheduledInTick)
        continue;
      if (S->Trace[I].Phase == PhaseKind::PromiseMicro &&
          S->Trace[J].Phase == PhaseKind::NextTick) {
        // A promise reaction ran before a nextTick from the same tick:
        // only legal if the nextTick was scheduled later (by that very
        // promise reaction); both were scheduled in the same tick per the
        // filter above, so this must not happen for direct scheduling.
        // Because our generator schedules both directly, flag it.
        ADD_FAILURE() << "promise reaction overtook nextTick from tick "
                      << S->Trace[I].ScheduledInTick;
      }
    }
  }
}

TEST_P(RandomPrograms, InstrumentationIsTransparent) {
  // §III challenge: "The implementation should be transparent to the
  // application so that it causes no side-effects". The same seed must
  // produce the identical execution trace with and without AsyncG (and
  // all detectors) attached.
  auto Observed = std::make_shared<GenState>(GetParam(), 40);
  {
    Runtime RT;
    AsyncGBuilder Builder;
    detect::DetectorSuite Suite;
    Suite.attachTo(Builder);
    RT.hooks().attach(&Builder);
    runMain(RT, [Observed](Runtime &R) { scheduleRandom(R, Observed, 0); });
  }
  auto Plain = std::make_shared<GenState>(GetParam(), 40);
  {
    Runtime RT;
    runMain(RT, [Plain](Runtime &R) { scheduleRandom(R, Plain, 0); });
  }
  ASSERT_EQ(Observed->Trace.size(), Plain->Trace.size());
  for (size_t I = 0; I < Plain->Trace.size(); ++I) {
    EXPECT_EQ(Observed->Trace[I].Action, Plain->Trace[I].Action) << I;
    EXPECT_EQ(Observed->Trace[I].Phase, Plain->Trace[I].Phase) << I;
    EXPECT_EQ(Observed->Trace[I].ScheduledInTick,
              Plain->Trace[I].ScheduledInTick)
        << I;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89, 144, 233, 377, 610, 987));

} // namespace
