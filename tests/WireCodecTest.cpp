//===- WireCodecTest.cpp - unit tests for the wire codecs ---------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "sim/WireCodec.h"

#include <gtest/gtest.h>

using namespace asyncg::sim;

namespace {

/// Feeds \p Wire into \p C one byte at a time, collecting messages.
std::vector<std::string> ingestByteByByte(WireCodec &C,
                                          const std::string &Wire) {
  std::vector<std::string> Msgs;
  for (char B : Wire)
    EXPECT_TRUE(C.ingest(&B, 1, Msgs));
  return Msgs;
}

std::string encodeAll(WireCodec &C, const std::vector<std::string> &Msgs) {
  std::string Out;
  for (const std::string &M : Msgs)
    C.encode(M, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Framed
//===----------------------------------------------------------------------===//

TEST(FramedCodec, RoundTripsMessages) {
  auto Enc = makeWireCodec(WireFormat::Framed, /*ServerRole=*/false);
  auto Dec = makeWireCodec(WireFormat::Framed, /*ServerRole=*/true);
  std::string Wire = encodeAll(*Enc, {"hello", "", std::string("\0\x01", 2)});
  std::vector<std::string> Msgs;
  ASSERT_TRUE(Dec->ingest(Wire.data(), Wire.size(), Msgs));
  ASSERT_EQ(Msgs.size(), 3u);
  EXPECT_EQ(Msgs[0], "hello");
  EXPECT_EQ(Msgs[1], "");
  EXPECT_EQ(Msgs[2], std::string("\0\x01", 2));
}

TEST(FramedCodec, SurvivesByteByByteFragmentation) {
  auto Enc = makeWireCodec(WireFormat::Framed, false);
  auto Dec = makeWireCodec(WireFormat::Framed, true);
  std::string Wire = encodeAll(*Enc, {"REQ GET /a", "END"});
  std::vector<std::string> Msgs = ingestByteByByte(*Dec, Wire);
  EXPECT_EQ(Msgs, (std::vector<std::string>{"REQ GET /a", "END"}));
}

TEST(FramedCodec, RejectsOversizedFrame) {
  auto Dec = makeWireCodec(WireFormat::Framed, true);
  // Length prefix claiming 2 GiB.
  char Hdr[4] = {'\x7f', '\xff', '\xff', '\xff'};
  std::vector<std::string> Msgs;
  EXPECT_FALSE(Dec->ingest(Hdr, 4, Msgs));
}

//===----------------------------------------------------------------------===//
// HTTP/1.1 server side
//===----------------------------------------------------------------------===//

TEST(HttpServerCodec, ParsesGetWithoutBody) {
  auto C = makeWireCodec(WireFormat::Http1, /*ServerRole=*/true);
  std::string Wire = "GET /rest/api/queryflights?from=A&to=B HTTP/1.1\r\n"
                     "Host: x\r\nContent-Length: 0\r\n\r\n";
  std::vector<std::string> Msgs;
  ASSERT_TRUE(C->ingest(Wire.data(), Wire.size(), Msgs));
  EXPECT_EQ(Msgs, (std::vector<std::string>{
                      "REQ GET /rest/api/queryflights?from=A&to=B", "END"}));
}

TEST(HttpServerCodec, ParsesPostBodyAsDataChunk) {
  auto C = makeWireCodec(WireFormat::Http1, true);
  std::string Wire = "POST /rest/api/login HTTP/1.1\r\n"
                     "content-length: 9\r\n\r\nuser=uid1";
  std::vector<std::string> Msgs = ingestByteByByte(*C, Wire);
  EXPECT_EQ(Msgs, (std::vector<std::string>{"REQ POST /rest/api/login",
                                            "DAT user=uid1", "END"}));
}

TEST(HttpServerCodec, HandlesPipelinedRequestsInOneRead) {
  auto C = makeWireCodec(WireFormat::Http1, true);
  std::string Wire = "GET /a HTTP/1.1\r\nContent-Length: 0\r\n\r\n"
                     "POST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
  std::vector<std::string> Msgs;
  ASSERT_TRUE(C->ingest(Wire.data(), Wire.size(), Msgs));
  EXPECT_EQ(Msgs, (std::vector<std::string>{"REQ GET /a", "END",
                                            "REQ POST /b", "DAT hi", "END"}));
}

TEST(HttpServerCodec, EncodesResponseWithContentLength) {
  auto C = makeWireCodec(WireFormat::Http1, true);
  std::string Out;
  C->encode("RES 200 OK token=abc", Out);
  EXPECT_EQ(Out, "HTTP/1.1 200 OK\r\n"
                 "Content-Type: text/plain\r\n"
                 "Content-Length: 12\r\n"
                 "Connection: keep-alive\r\n\r\n"
                 "OK token=abc");
}

TEST(HttpServerCodec, EncodesBodylessStatus) {
  auto C = makeWireCodec(WireFormat::Http1, true);
  std::string Out;
  C->encode("RES 401", Out);
  EXPECT_NE(Out.find("HTTP/1.1 401 Unauthorized\r\n"), std::string::npos);
  EXPECT_NE(Out.find("Content-Length: 0\r\n"), std::string::npos);
}

TEST(HttpServerCodec, RejectsGarbage) {
  auto C = makeWireCodec(WireFormat::Http1, true);
  std::string Wire = "\r\nnonsense\r\n\r\n";
  std::vector<std::string> Msgs;
  EXPECT_FALSE(C->ingest(Wire.data(), Wire.size(), Msgs));
}

//===----------------------------------------------------------------------===//
// HTTP/1.1 client side
//===----------------------------------------------------------------------===//

TEST(HttpClientCodec, BuffersRequestUntilEnd) {
  auto C = makeWireCodec(WireFormat::Http1, /*ServerRole=*/false);
  std::string Out;
  C->encode("REQ POST /rest/api/login", Out);
  C->encode("DAT user=uid3&password=password", Out);
  EXPECT_TRUE(Out.empty()); // nothing flushes before END
  C->encode("END", Out);
  EXPECT_EQ(Out, "POST /rest/api/login HTTP/1.1\r\n"
                 "Host: 127.0.0.1\r\n"
                 "Content-Length: 27\r\n"
                 "Connection: keep-alive\r\n\r\n"
                 "user=uid3&password=password");
}

TEST(HttpClientCodec, ParsesResponsesFragmented) {
  auto C = makeWireCodec(WireFormat::Http1, false);
  std::string Wire = "HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello"
                     "HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n";
  std::vector<std::string> Msgs = ingestByteByByte(*C, Wire);
  EXPECT_EQ(Msgs, (std::vector<std::string>{"RES 200 hello", "RES 404"}));
}

TEST(HttpClientCodec, RoundTripsThroughServerCodec) {
  auto Client = makeWireCodec(WireFormat::Http1, false);
  auto Server = makeWireCodec(WireFormat::Http1, true);
  std::string Wire;
  Client->encode("REQ GET /rest/api/customer/byid?token=t1", Wire);
  Client->encode("END", Wire);
  std::vector<std::string> AtServer;
  ASSERT_TRUE(Server->ingest(Wire.data(), Wire.size(), AtServer));
  EXPECT_EQ(AtServer,
            (std::vector<std::string>{
                "REQ GET /rest/api/customer/byid?token=t1", "END"}));
  std::string Resp;
  Server->encode("RES 200 profile", Resp);
  std::vector<std::string> AtClient;
  ASSERT_TRUE(Client->ingest(Resp.data(), Resp.size(), AtClient));
  EXPECT_EQ(AtClient, (std::vector<std::string>{"RES 200 profile"}));
}

} // namespace
