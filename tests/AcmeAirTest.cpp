//===- AcmeAirTest.cpp - integration tests for the evaluation app ------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "apps/acmeair/App.h"
#include "apps/acmeair/Workload.h"
#include "ag/Builder.h"
#include "baselines/ApiUsageCounter.h"
#include "detect/Detectors.h"

#include <gtest/gtest.h>

using namespace asyncg;
using namespace asyncg::jsrt;
using namespace asyncg::acmeair;

namespace {

struct RunOutcome {
  uint64_t Completed = 0;
  uint64_t Errors = 0;
  uint64_t Served = 0;
  uint64_t Ticks = 0;
  baselines::ApiUsageCounter Usage;
};

RunOutcome runAcmeAir(uint64_t Requests, bool UsePromises,
                      instr::AnalysisBase *Extra = nullptr) {
  Runtime RT;
  AppConfig ACfg;
  ACfg.UsePromises = UsePromises;
  AcmeAirApp App(RT, ACfg);
  WorkloadConfig WCfg;
  WCfg.TotalRequests = Requests;
  WCfg.Clients = 4;
  WorkloadDriver Driver(RT, ACfg.Port, WCfg);

  RunOutcome Out;
  RT.hooks().attach(&Out.Usage);
  if (Extra)
    RT.hooks().attach(Extra);

  Function Main = RT.makeBuiltin("main", [&](Runtime &R, const CallArgs &) {
    App.start(JSLOC);
    Driver.start();
    (void)R;
    return Completion::normal();
  });
  RT.main(Main);

  Out.Completed = Driver.completed();
  Out.Errors = Driver.errors();
  Out.Served = App.served();
  Out.Ticks = RT.tickCount();
  EXPECT_TRUE(RT.uncaughtErrors().empty());
  return Out;
}

TEST(AcmeAir, ServesAllRequestsWithoutErrors) {
  RunOutcome Out = runAcmeAir(200, /*UsePromises=*/true);
  EXPECT_EQ(Out.Completed, 200u);
  EXPECT_EQ(Out.Errors, 0u);
  EXPECT_EQ(Out.Served, 200u);
  EXPECT_GT(Out.Ticks, 400u);
}

TEST(AcmeAir, CallbackModeAlsoServes) {
  RunOutcome Out = runAcmeAir(200, /*UsePromises=*/false);
  EXPECT_EQ(Out.Completed, 200u);
  EXPECT_EQ(Out.Errors, 0u);
  // Stock AcmeAir uses no promises.
  EXPECT_EQ(Out.Usage.executions(baselines::ApiFamily::Promise), 0u);
}

TEST(AcmeAir, ApiMixMatchesFig6bShape) {
  RunOutcome Out = runAcmeAir(400, /*UsePromises=*/true);
  double N = 400.0;
  double NextTick =
      static_cast<double>(Out.Usage.executions(baselines::ApiFamily::NextTick)) / N;
  double Emitter =
      static_cast<double>(Out.Usage.executions(baselines::ApiFamily::Emitter)) / N;
  double Promise =
      static_cast<double>(Out.Usage.executions(baselines::ApiFamily::Promise)) / N;
  // Fig. 6(b): nextTick ~8.70 > emitter ~4.31 > promise ~1.31 per request.
  EXPECT_GT(NextTick, Emitter);
  EXPECT_GT(Emitter, Promise);
  EXPECT_GT(Promise, 0.2);
  EXPECT_LT(Promise, 4.0);
  EXPECT_GT(NextTick, 3.0);
}

TEST(AcmeAir, RunsUnderFullAsyncG) {
  ag::AsyncGBuilder Builder;
  detect::DetectorSuite Detectors;
  Detectors.attachTo(Builder);
  RunOutcome Out = runAcmeAir(100, /*UsePromises=*/true, &Builder);
  EXPECT_EQ(Out.Completed, 100u);
  EXPECT_EQ(Out.Errors, 0u);
  // The graph covers the whole run.
  EXPECT_GT(Builder.graph().nodeCount(), 1000u);
  EXPECT_GT(Builder.graph().ticks().size(), 400u);
}

TEST(AcmeAir, DeterministicAcrossRuns) {
  RunOutcome A = runAcmeAir(150, true);
  RunOutcome B = runAcmeAir(150, true);
  EXPECT_EQ(A.Ticks, B.Ticks);
  EXPECT_EQ(A.Usage.executions(baselines::ApiFamily::NextTick),
            B.Usage.executions(baselines::ApiFamily::NextTick));
  EXPECT_EQ(A.Usage.executions(baselines::ApiFamily::Emitter),
            B.Usage.executions(baselines::ApiFamily::Emitter));
}

} // namespace
