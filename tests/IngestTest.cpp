//===- IngestTest.cpp - parallel ingest hub parity + MpmcQueue ---------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel ingest hub's one non-negotiable contract is byte parity:
/// whatever replayTrace() would have produced — DOT output and warning
/// report — IngestHub must reproduce exactly, at every job count, for
/// every stream condition it claims to handle. These tests pin that down:
///
///  - Table-I cases and an AcmeAir workload, serial vs jobs 1/2/4;
///  - two-shard cluster streams: the hub's streaming merge vs the batch
///    ShardedGraph reference vs the harness's own merged graph;
///  - torn-tail traces: the hub's clean-prefix recovery vs the serial
///    recovered replay, again across job counts;
///  - raw v2/v3 traces: the replayTrace() fallback path, flagged as such.
///
/// Plus unit and two-thread stress coverage for the MpmcQueue the decode
/// pool schedules through. The bench smoke --check leg re-runs this suite
/// under TSan, which is what turns "the pool has no data races" into an
/// enforced property.
///
//===----------------------------------------------------------------------===//

#include "ag/IngestHub.h"
#include "ag/ShardedGraph.h"
#include "apps/acmeair/App.h"
#include "apps/acmeair/Workload.h"
#include "apps/cluster/Harness.h"
#include "cases/Case.h"
#include "detect/Detectors.h"
#include "instr/TraceCodec.h"
#include "support/MpmcQueue.h"
#include "viz/Dot.h"
#include "viz/TextReport.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace asyncg;
using namespace asyncg::cases;

namespace {

std::string tempPath(const std::string &Tag) {
  return ::testing::TempDir() + "ingest_" + Tag + ".agtrace";
}

std::vector<uint8_t> slurpBytes(const std::string &Path) {
  std::vector<uint8_t> Bytes;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  EXPECT_NE(F, nullptr) << Path;
  if (!F)
    return Bytes;
  std::fseek(F, 0, SEEK_END);
  long Size = std::ftell(F);
  std::fseek(F, 0, SEEK_SET);
  Bytes.resize(static_cast<size_t>(Size));
  EXPECT_EQ(std::fread(Bytes.data(), 1, Bytes.size(), F), Bytes.size());
  std::fclose(F);
  return Bytes;
}

void spitBytes(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr) << Path;
  ASSERT_EQ(std::fwrite(Bytes.data(), 1, Bytes.size(), F), Bytes.size());
  std::fclose(F);
}

/// Serial reference: replayTrace into a fresh builder; DOT + warnings.
void serialReference(const std::string &Path, std::string &Dot,
                     std::string &Warnings, bool Detect = false) {
  ag::AsyncGBuilder Builder;
  std::unique_ptr<detect::DetectorSuite> Suite;
  if (Detect) {
    Suite.reset(new detect::DetectorSuite());
    Suite->attachTo(Builder);
  }
  std::string Err;
  ASSERT_TRUE(instr::replayTrace(Path, Builder, &Err)) << Path << ": " << Err;
  Dot = viz::toDot(Builder.graph());
  Warnings = viz::warningsReport(Builder.graph());
}

/// Hub under test: same trace(s) through IngestHub at \p Jobs.
void hubResult(const std::vector<std::string> &Paths, unsigned Jobs,
               std::string &Dot, std::string &Warnings,
               ag::IngestStats *Stats = nullptr, bool Detect = false) {
  ag::IngestOptions Opts;
  Opts.Jobs = Jobs;
  ag::IngestHub Hub(Opts);
  std::vector<std::unique_ptr<detect::DetectorSuite>> Suites;
  for (const std::string &P : Paths) {
    size_t S = Hub.addFile(P);
    if (Detect) {
      Suites.emplace_back(new detect::DetectorSuite());
      Suites.back()->attachTo(Hub.builder(S));
    }
  }
  std::string Err;
  ASSERT_TRUE(Hub.run(&Err)) << Err;
  Dot = viz::toDot(Hub.graph());
  Warnings = viz::warningsReport(Hub.graph());
  if (Stats)
    *Stats = Hub.stats();
}

//===----------------------------------------------------------------------===//
// MpmcQueue
//===----------------------------------------------------------------------===//

TEST(MpmcQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpmcQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(MpmcQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(MpmcQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(MpmcQueue<int>(64).capacity(), 64u);
  EXPECT_EQ(MpmcQueue<int>(65).capacity(), 128u);
}

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<int> Q(8);
  int Out = -1;
  EXPECT_FALSE(Q.tryPop(Out));
  for (int I = 0; I != 8; ++I)
    EXPECT_TRUE(Q.tryPush(I));
  EXPECT_FALSE(Q.tryPush(99)) << "queue should be full";
  for (int I = 0; I != 8; ++I) {
    ASSERT_TRUE(Q.tryPop(Out));
    EXPECT_EQ(Out, I);
  }
  EXPECT_FALSE(Q.tryPop(Out));
}

TEST(MpmcQueue, WrapsAroundManyTimes) {
  MpmcQueue<int> Q(4);
  int Out = -1;
  for (int I = 0; I != 1000; ++I) {
    ASSERT_TRUE(Q.tryPush(I));
    ASSERT_TRUE(Q.tryPop(Out));
    EXPECT_EQ(Out, I);
  }
}

TEST(MpmcQueue, MovesValues) {
  MpmcQueue<std::unique_ptr<int>> Q(4);
  ASSERT_TRUE(Q.tryPush(std::make_unique<int>(42)));
  std::unique_ptr<int> Out;
  ASSERT_TRUE(Q.tryPop(Out));
  ASSERT_NE(Out, nullptr);
  EXPECT_EQ(*Out, 42);
}

TEST(MpmcQueue, ConcurrentProducersConsumers) {
  // 2 producers x 2 consumers over a small ring: every pushed value must
  // come out exactly once. Run under TSan by the bench smoke --check leg.
  constexpr int PerProducer = 20000;
  MpmcQueue<int> Q(64);
  std::atomic<int> Consumed{0};
  std::vector<std::atomic<int>> Seen(2 * PerProducer);
  for (auto &S : Seen)
    S.store(0);

  auto Producer = [&](int Base) {
    for (int I = 0; I != PerProducer; ++I)
      while (!Q.tryPush(Base + I))
        std::this_thread::yield();
  };
  auto Consumer = [&] {
    int V;
    while (Consumed.load(std::memory_order_relaxed) < 2 * PerProducer) {
      if (Q.tryPop(V)) {
        Seen[static_cast<size_t>(V)].fetch_add(1);
        Consumed.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::this_thread::yield();
      }
    }
  };
  std::thread P0(Producer, 0), P1(Producer, PerProducer);
  std::thread C0(Consumer), C1(Consumer);
  P0.join();
  P1.join();
  C0.join();
  C1.join();
  for (int I = 0; I != 2 * PerProducer; ++I)
    ASSERT_EQ(Seen[static_cast<size_t>(I)].load(), 1) << "value " << I;
}

//===----------------------------------------------------------------------===//
// Table-I case parity across job counts
//===----------------------------------------------------------------------===//

class IngestCaseParity : public ::testing::TestWithParam<size_t> {};

std::string ingestCaseName(const ::testing::TestParamInfo<size_t> &Info) {
  std::string N = allCases()[Info.param].Name;
  for (char &C : N)
    if (C == '-')
      C = '_';
  return N;
}

TEST_P(IngestCaseParity, EveryJobCountMatchesSerialReplay) {
  const CaseDef &Def = allCases()[GetParam()];
  std::string Path = tempPath(Def.Name);
  instr::TraceRecorder Rec;
  ASSERT_TRUE(Rec.open(Path));
  runCaseWith(Def, /*Fixed=*/false, Rec);
  ASSERT_TRUE(Rec.finalize());

  std::string WantDot, WantWarn;
  serialReference(Path, WantDot, WantWarn);
  for (unsigned Jobs : {1u, 2u, 4u}) {
    SCOPED_TRACE("jobs=" + std::to_string(Jobs));
    std::string Dot, Warn;
    ag::IngestStats Stats;
    hubResult({Path}, Jobs, Dot, Warn, &Stats);
    EXPECT_EQ(Dot, WantDot);
    EXPECT_EQ(Warn, WantWarn);
    ASSERT_EQ(Stats.Streams.size(), 1u);
    EXPECT_FALSE(Stats.Streams[0].Fallback);
    EXPECT_FALSE(Stats.Streams[0].Recovered);
    EXPECT_EQ(Stats.Records, Stats.Streams[0].Records);
  }
  std::remove(Path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllCases, IngestCaseParity,
                         ::testing::Range<size_t>(0, allCases().size()),
                         ingestCaseName);

//===----------------------------------------------------------------------===//
// AcmeAir workload parity (with live detectors riding the ordered commit)
//===----------------------------------------------------------------------===//

TEST(IngestAcmeAir, JobSweepMatchesSerialReplay) {
  using namespace asyncg::jsrt;
  using namespace asyncg::acmeair;
  std::string Path = tempPath("acmeair");
  instr::TraceRecorder Rec;
  ASSERT_TRUE(Rec.open(Path));
  {
    Runtime RT;
    AppConfig ACfg;
    AcmeAirApp App(RT, ACfg);
    WorkloadConfig WCfg;
    WCfg.TotalRequests = 400;
    WCfg.Clients = 4;
    WorkloadDriver Driver(RT, ACfg.Port, WCfg);
    RT.hooks().attach(&Rec);
    Function Main = RT.makeBuiltin("main", [&](Runtime &, const CallArgs &) {
      App.start(JSLOC);
      Driver.start();
      return Completion::normal();
    });
    RT.main(Main);
    ASSERT_TRUE(Rec.finalize());
    ASSERT_EQ(Driver.completed(), 400u);
  }

  std::string WantDot, WantWarn;
  serialReference(Path, WantDot, WantWarn, /*Detect=*/true);
  for (unsigned Jobs : {1u, 4u}) {
    SCOPED_TRACE("jobs=" + std::to_string(Jobs));
    std::string Dot, Warn;
    hubResult({Path}, Jobs, Dot, Warn, nullptr, /*Detect=*/true);
    EXPECT_EQ(Dot, WantDot);
    EXPECT_EQ(Warn, WantWarn);
  }
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Multi-stream merge parity
//===----------------------------------------------------------------------===//

TEST(IngestMerge, StreamingMergeMatchesBatchAndHarness) {
  using namespace asyncg::cluster;
  std::string Dir = ::testing::TempDir() + "ingest_shards";
  ASSERT_EQ(::system(("mkdir -p " + Dir).c_str()), 0);
  ClusterConfig CCfg;
  CCfg.Loops = 2;
  CCfg.TotalRequests = 300;
  CCfg.TotalClients = 4;
  CCfg.RecordDir = Dir;
  ClusterHarness Harness(CCfg);
  Harness.run();
  std::string HarnessDot = viz::toDot(Harness.merged());

  std::vector<std::string> Paths = {Dir + "/shard0.agtrace",
                                    Dir + "/shard1.agtrace"};

  // Batch reference: serial replay per shard + ShardedGraph::build, with
  // a detector suite per shard builder exactly as the harness had them.
  std::string WantDot, WantWarn;
  {
    std::vector<std::unique_ptr<ag::AsyncGBuilder>> Builders;
    std::vector<std::unique_ptr<detect::DetectorSuite>> Suites;
    std::string Err;
    for (const std::string &P : Paths) {
      Builders.emplace_back(new ag::AsyncGBuilder());
      Suites.emplace_back(new detect::DetectorSuite());
      Suites.back()->attachTo(*Builders.back());
      ASSERT_TRUE(instr::replayTrace(P, *Builders.back(), &Err))
          << P << ": " << Err;
    }
    ag::ShardedGraph Merged;
    std::vector<const ag::AsyncGraph *> Shards;
    for (auto &B : Builders)
      Shards.push_back(&B->graph());
    Merged.build(Shards);
    WantDot = viz::toDot(Merged.merged());
    WantWarn = viz::warningsReport(Merged.merged());
  }
  EXPECT_EQ(WantDot, HarnessDot)
      << "batch replay reference diverged from the harness's own merge";

  for (unsigned Jobs : {1u, 4u}) {
    SCOPED_TRACE("jobs=" + std::to_string(Jobs));
    std::string Dot, Warn;
    ag::IngestStats Stats;
    hubResult(Paths, Jobs, Dot, Warn, &Stats, /*Detect=*/true);
    EXPECT_EQ(Dot, WantDot);
    EXPECT_EQ(Warn, WantWarn);
    ASSERT_EQ(Stats.Streams.size(), 2u);
    // Round-robin windows: with two live streams every stream must have
    // been scheduled at least once.
    EXPECT_GE(Stats.Windows, 2u);
    // Cross-loop deliveries exist in any 2-loop cluster run, and the
    // live view must agree with itself: resolved <= seen.
    EXPECT_GT(Stats.HandoffsSeen, 0u);
    EXPECT_LE(Stats.HandoffsResolvedLive, Stats.HandoffsSeen);
  }
  for (const std::string &P : Paths)
    std::remove(P.c_str());
}

//===----------------------------------------------------------------------===//
// Torn-tail recovery parity
//===----------------------------------------------------------------------===//

TEST(IngestRecovery, TornTailMatchesSerialRecoveredReplay) {
  // Record a real workload, then cut the file mid-frame. The serial
  // replay recovers the clean frame prefix; the hub must produce the
  // exact same graph from the same prefix, at any job count. The
  // Table-I programs vary widely in trace size, so pick the first one
  // whose recording is big enough that a 60% cut still lands inside
  // the record section.
  std::string Path = tempPath("torn");
  std::vector<uint8_t> Image;
  for (const CaseDef &Def : allCases()) {
    instr::TraceRecorder Rec;
    ASSERT_TRUE(Rec.open(Path));
    runCaseWith(Def, /*Fixed=*/false, Rec);
    ASSERT_TRUE(Rec.finalize());
    Image = slurpBytes(Path);
    if (Image.size() > 4096)
      break;
  }
  ASSERT_GT(Image.size(), 4096u)
      << "no Table-I case records a trace big enough to tear";

  for (double Frac : {0.9, 0.6}) {
    SCOPED_TRACE("cut at " + std::to_string(Frac));
    std::string Torn = tempPath("torn_cut");
    spitBytes(Torn, std::vector<uint8_t>(
                        Image.begin(),
                        Image.begin() + static_cast<size_t>(
                                            Image.size() * Frac)));

    ag::AsyncGBuilder Serial;
    std::string Err;
    instr::ReplayStats RStats;
    ASSERT_TRUE(instr::replayTrace(Torn, Serial, &Err,
                                   instr::ReplayTransport::Auto, &RStats))
        << Err;
    ASSERT_TRUE(RStats.Recovered);
    std::string WantDot = viz::toDot(Serial.graph());
    std::string WantWarn = viz::warningsReport(Serial.graph());

    for (unsigned Jobs : {1u, 4u}) {
      SCOPED_TRACE("jobs=" + std::to_string(Jobs));
      std::string Dot, Warn;
      ag::IngestStats Stats;
      hubResult({Torn}, Jobs, Dot, Warn, &Stats);
      EXPECT_EQ(Dot, WantDot);
      EXPECT_EQ(Warn, WantWarn);
      ASSERT_EQ(Stats.Streams.size(), 1u);
      EXPECT_TRUE(Stats.Streams[0].Recovered);
      EXPECT_FALSE(Stats.Streams[0].Fallback);
      EXPECT_EQ(Stats.Streams[0].Records, RStats.Records);
      EXPECT_GT(Stats.Streams[0].DroppedTailBytes, 0u);
    }
    std::remove(Torn.c_str());
  }
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Raw-version fallback
//===----------------------------------------------------------------------===//

TEST(IngestFallback, RawTracesGoThroughReplayTrace) {
  const CaseDef &Def = allCases()[0];
  for (uint32_t Version : {2u, 3u}) {
    SCOPED_TRACE("v" + std::to_string(Version));
    std::string Path = tempPath("raw_v" + std::to_string(Version));
    instr::TraceRecorder Rec;
    ASSERT_TRUE(Rec.open(Path, /*Shard=*/0, Version));
    runCaseWith(Def, /*Fixed=*/false, Rec);
    ASSERT_TRUE(Rec.finalize());

    std::string WantDot, WantWarn;
    serialReference(Path, WantDot, WantWarn);
    std::string Dot, Warn;
    ag::IngestStats Stats;
    hubResult({Path}, 4, Dot, Warn, &Stats);
    EXPECT_EQ(Dot, WantDot);
    EXPECT_EQ(Warn, WantWarn);
    ASSERT_EQ(Stats.Streams.size(), 1u);
    EXPECT_TRUE(Stats.Streams[0].Fallback);
    std::remove(Path.c_str());
  }
}

} // namespace
