//===- DetectorTest.cpp - per-detector positive/negative tests -----------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every automatic detector of §VI-A gets a minimal positive program (the
/// bug fires) and a negative program (a near-miss that must stay quiet),
/// independent of the larger Table-I case programs.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "ag/Builder.h"
#include "detect/Detectors.h"

#include <gtest/gtest.h>

using namespace asyncg;
using namespace asyncg::ag;
using namespace asyncg::jsrt;
using namespace asyncg::testhelpers;

namespace {

/// Runs a program under AsyncG + all detectors and returns the graph's
/// warning categories.
std::set<BugCategory> detect(std::function<void(Runtime &)> Body,
                             RuntimeConfig Cfg = RuntimeConfig()) {
  Runtime RT(Cfg);
  AsyncGBuilder Builder;
  detect::DetectorSuite Suite;
  Suite.attachTo(Builder);
  RT.hooks().attach(&Builder);
  runMain(RT, std::move(Body));
  std::set<BugCategory> S;
  for (const Warning &W : Builder.graph().warnings())
    S.insert(W.Category);
  return S;
}

Function noop(Runtime &R, const char *Name, uint32_t Line = 1) {
  return R.makeFunction(Name, JSLINE("d.js", Line),
                        [](Runtime &, const CallArgs &) {
                          return Completion::normal();
                        });
}

//===----------------------------------------------------------------------===//
// Scheduling detectors
//===----------------------------------------------------------------------===//

TEST(DetectRecursiveMicrotask, FiresOnSelfRescheduling) {
  RuntimeConfig Cfg;
  Cfg.MaxTicks = 30;
  auto S = detect(
      [](Runtime &R) {
        Function Spin = R.makeFunction("spin", JSLINE("d.js", 2), nullptr);
        Spin.ref()->Body = [Spin](Runtime &R2, const CallArgs &) {
          R2.nextTick(JSLINE("d.js", 3), Spin);
          return Completion::normal();
        };
        R.nextTick(JSLINE("d.js", 5), Spin);
      },
      Cfg);
  EXPECT_TRUE(S.count(BugCategory::RecursiveMicrotask));
}

TEST(DetectRecursiveMicrotask, QuietOnBoundedChain) {
  auto S = detect([](Runtime &R) {
    // Two different callbacks ping-ponging a bounded number of times is
    // not a same-callback recursion.
    auto Count = std::make_shared<int>(0);
    Function A = R.makeFunction("a", JSLINE("d.js", 1), nullptr);
    Function B = R.makeFunction("b", JSLINE("d.js", 2), nullptr);
    A.ref()->Body = [Count, B](Runtime &R2, const CallArgs &) {
      if (++*Count < 5)
        R2.nextTick(JSLINE("d.js", 1), B);
      return Completion::normal();
    };
    B.ref()->Body = [Count, A](Runtime &R2, const CallArgs &) {
      if (++*Count < 5)
        R2.nextTick(JSLINE("d.js", 2), A);
      return Completion::normal();
    };
    R.nextTick(JSLINE("d.js", 3), A);
  });
  EXPECT_FALSE(S.count(BugCategory::RecursiveMicrotask));
}

TEST(DetectMixedApis, FiresOnNextTickPlusSetImmediate) {
  auto S = detect([](Runtime &R) {
    R.nextTick(JSLINE("d.js", 1), noop(R, "a", 1));
    R.setImmediate(JSLINE("d.js", 2), noop(R, "b", 2));
  });
  EXPECT_TRUE(S.count(BugCategory::MixedSimilarApis));
}

TEST(DetectMixedApis, QuietForLargeTimeouts) {
  auto S = detect([](Runtime &R) {
    // setTimeout with a real delay is not in the "similar" family.
    R.nextTick(JSLINE("d.js", 1), noop(R, "a", 1));
    R.setTimeout(JSLINE("d.js", 2), noop(R, "b", 2), 250);
  });
  EXPECT_FALSE(S.count(BugCategory::MixedSimilarApis));
}

TEST(DetectMixedApis, QuietAcrossDifferentTicks) {
  auto S = detect([](Runtime &R) {
    R.nextTick(JSLINE("d.js", 1),
               R.makeFunction("a", JSLINE("d.js", 1),
                              [](Runtime &R2, const CallArgs &) {
                                // Different tick: no mixing.
                                R2.setImmediate(JSLINE("d.js", 2),
                                                noop(R2, "b", 2));
                                return Completion::normal();
                              }));
  });
  EXPECT_FALSE(S.count(BugCategory::MixedSimilarApis));
}

TEST(DetectTimeoutOrder, FiresWhenExpiredLargerTimeoutRunsFirst) {
  auto S = detect([](Runtime &R) {
    R.setTimeout(JSLINE("d.js", 1), noop(R, "foo", 1), 101);
    R.setTimeout(JSLINE("d.js", 2), noop(R, "bar", 2), 100);
    R.clock().advanceBy(sim::millis(300)); // block past both deadlines
  });
  EXPECT_TRUE(S.count(BugCategory::TimeoutExecutionOrder));
}

TEST(DetectTimeoutOrder, QuietWhenDeadlinesRespected) {
  auto S = detect([](Runtime &R) {
    R.setTimeout(JSLINE("d.js", 1), noop(R, "foo", 1), 101);
    R.setTimeout(JSLINE("d.js", 2), noop(R, "bar", 2), 100);
  });
  EXPECT_FALSE(S.count(BugCategory::TimeoutExecutionOrder));
}

//===----------------------------------------------------------------------===//
// Emitter detectors
//===----------------------------------------------------------------------===//

TEST(DetectDeadListener, FiresForNeverEmittedEvent) {
  auto S = detect([](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLINE("d.js", 1));
    R.emitterOn(JSLINE("d.js", 2), E, "never", noop(R, "l", 2));
  });
  EXPECT_TRUE(S.count(BugCategory::DeadListener));
}

TEST(DetectDeadListener, QuietWhenExecutedOrRemoved) {
  auto S = detect([](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLINE("d.js", 1));
    Function L = noop(R, "l", 2);
    R.emitterOn(JSLINE("d.js", 2), E, "x", L);
    R.emitterEmit(JSLINE("d.js", 3), E, "x");
    Function M = noop(R, "m", 4);
    R.emitterOn(JSLINE("d.js", 4), E, "y", M);
    R.emitterRemoveListener(JSLINE("d.js", 5), E, "y", M);
  });
  EXPECT_FALSE(S.count(BugCategory::DeadListener));
}

TEST(DetectDeadEmit, FiresAndIsQuietAfterListenerExists) {
  auto S = detect([](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLINE("d.js", 1));
    R.emitterEmit(JSLINE("d.js", 2), E, "x"); // dead
  });
  EXPECT_TRUE(S.count(BugCategory::DeadEmit));

  auto S2 = detect([](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLINE("d.js", 1));
    R.emitterOn(JSLINE("d.js", 2), E, "x", noop(R, "l", 2));
    R.emitterEmit(JSLINE("d.js", 3), E, "x");
  });
  EXPECT_FALSE(S2.count(BugCategory::DeadEmit));
}

TEST(DetectInvalidRemoval, FiresOnLookAlike) {
  auto S = detect([](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLINE("d.js", 1));
    R.emitterOn(JSLINE("d.js", 2), E, "x", noop(R, "h", 2));
    R.emitterRemoveListener(JSLINE("d.js", 3), E, "x", noop(R, "h", 2));
    R.emitterEmit(JSLINE("d.js", 4), E, "x");
  });
  EXPECT_TRUE(S.count(BugCategory::InvalidListenerRemoval));
}

TEST(DetectInvalidRemoval, QuietOnRealRemoval) {
  auto S = detect([](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLINE("d.js", 1));
    Function H = noop(R, "h", 2);
    R.emitterOn(JSLINE("d.js", 2), E, "x", H);
    R.emitterEmit(JSLINE("d.js", 3), E, "x");
    R.emitterRemoveListener(JSLINE("d.js", 4), E, "x", H);
  });
  EXPECT_FALSE(S.count(BugCategory::InvalidListenerRemoval));
}

TEST(DetectDuplicateListener, FiresOnSecondRegistration) {
  auto S = detect([](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLINE("d.js", 1));
    Function H = noop(R, "h", 2);
    R.emitterOn(JSLINE("d.js", 2), E, "x", H);
    R.emitterOn(JSLINE("d.js", 3), E, "x", H);
    R.emitterEmit(JSLINE("d.js", 4), E, "x");
  });
  EXPECT_TRUE(S.count(BugCategory::DuplicateListener));
}

TEST(DetectDuplicateListener, QuietAfterRemovalOrOnceOrOtherEvent) {
  auto S = detect([](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLINE("d.js", 1));
    Function H = noop(R, "h", 2);
    // Remove-then-re-add is not a duplicate.
    R.emitterOn(JSLINE("d.js", 2), E, "x", H);
    R.emitterRemoveListener(JSLINE("d.js", 3), E, "x", H);
    R.emitterOn(JSLINE("d.js", 4), E, "x", H);
    // A consumed once-listener re-added is not a duplicate.
    Function O = noop(R, "o", 5);
    R.emitterOnce(JSLINE("d.js", 5), E, "y", O);
    R.emitterEmit(JSLINE("d.js", 6), E, "y");
    R.emitterOnce(JSLINE("d.js", 7), E, "y", O);
    // The same function on another event is not a duplicate.
    R.emitterOn(JSLINE("d.js", 8), E, "z", H);
    R.emitterEmit(JSLINE("d.js", 9), E, "x");
    R.emitterEmit(JSLINE("d.js", 9), E, "y");
    R.emitterEmit(JSLINE("d.js", 9), E, "z");
  });
  EXPECT_FALSE(S.count(BugCategory::DuplicateListener));
}

TEST(DetectAddWithinListener, FiresOnSameEmitterOnly) {
  auto S = detect([](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLINE("d.js", 1));
    R.emitterOn(JSLINE("d.js", 2), E, "outer",
                R.makeFunction("outerL", JSLINE("d.js", 2),
                               [E](Runtime &R2, const CallArgs &) {
                                 R2.emitterOn(JSLINE("d.js", 3), E, "inner",
                                              noop(R2, "innerL", 3));
                                 return Completion::normal();
                               }));
    R.emitterEmit(JSLINE("d.js", 5), E, "outer");
    R.emitterEmit(JSLINE("d.js", 6), E, "inner");
  });
  EXPECT_TRUE(S.count(BugCategory::AddListenerWithinListener));

  auto S2 = detect([](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLINE("d.js", 1));
    EmitterRef Other = R.emitterCreate(JSLINE("d.js", 2));
    R.emitterOn(JSLINE("d.js", 3), E, "outer",
                R.makeFunction("outerL", JSLINE("d.js", 3),
                               [Other](Runtime &R2, const CallArgs &) {
                                 // A different emitter: fine.
                                 R2.emitterOn(JSLINE("d.js", 4), Other,
                                              "inner",
                                              noop(R2, "innerL", 4));
                                 return Completion::normal();
                               }));
    R.emitterEmit(JSLINE("d.js", 6), E, "outer");
    R.emitterEmit(JSLINE("d.js", 7), Other, "inner");
  });
  EXPECT_FALSE(S2.count(BugCategory::AddListenerWithinListener));
}

TEST(DetectListenerLeak, FiresPastMaxListeners) {
  auto S = detect([](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLINE("d.js", 1));
    for (int I = 0; I < 11; ++I)
      R.emitterOn(JSLINE("d.js", 2), E, "data",
                  noop(R, ("l" + std::to_string(I)).c_str(), 2));
    R.emitterEmit(JSLINE("d.js", 3), E, "data");
  });
  EXPECT_TRUE(S.count(BugCategory::ListenerLeak));
}

TEST(DetectListenerLeak, QuietWithChurnOrAcrossEvents) {
  auto S = detect([](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLINE("d.js", 1));
    // 20 subscribe/unsubscribe cycles never exceed one live listener.
    for (int I = 0; I < 20; ++I) {
      Function L = noop(R, "l", 2);
      R.emitterOn(JSLINE("d.js", 2), E, "data", L);
      R.emitterEmit(JSLINE("d.js", 3), E, "data");
      R.emitterRemoveListener(JSLINE("d.js", 4), E, "data", L);
    }
    // 8 listeners each on two events stay under the per-event limit.
    for (int I = 0; I < 8; ++I) {
      R.emitterOn(JSLINE("d.js", 5), E, "a",
                  noop(R, ("a" + std::to_string(I)).c_str(), 5));
      R.emitterOn(JSLINE("d.js", 6), E, "b",
                  noop(R, ("b" + std::to_string(I)).c_str(), 6));
    }
    R.emitterEmit(JSLINE("d.js", 7), E, "a");
    R.emitterEmit(JSLINE("d.js", 7), E, "b");
  });
  EXPECT_FALSE(S.count(BugCategory::ListenerLeak));
}

//===----------------------------------------------------------------------===//
// Promise detectors
//===----------------------------------------------------------------------===//

TEST(DetectDeadPromise, FiresForPendingForever) {
  auto S = detect([](Runtime &R) {
    PromiseRef P = R.promiseBare(JSLINE("d.js", 1));
    (void)P;
  });
  EXPECT_TRUE(S.count(BugCategory::DeadPromise));
}

TEST(DetectDeadPromise, QuietWhenSettled) {
  auto S = detect([](Runtime &R) {
    PromiseRef P = R.promiseBare(JSLINE("d.js", 1));
    R.resolvePromise(JSLINE("d.js", 2), P, Value::number(1));
    R.promiseThen(JSLINE("d.js", 3), P, noop(R, "h", 3));
  });
  EXPECT_FALSE(S.count(BugCategory::DeadPromise));
}

TEST(DetectMissingReaction, FiresForUnusedSettledPromise) {
  auto S = detect([](Runtime &R) {
    R.promiseResolvedWith(JSLINE("d.js", 1), Value::number(1));
  });
  EXPECT_TRUE(S.count(BugCategory::MissingReaction));
}

TEST(DetectMissingReaction, QuietWhenAwaitedOrCombined) {
  auto S = detect([](Runtime &R) {
    PromiseRef P = R.promiseResolvedWith(JSLINE("d.js", 1), Value::number(1));
    R.promiseAll(JSLINE("d.js", 2), {P}); // consumed by a combinator
  });
  // P is consumed; the Promise.all result itself is reacted to? No — but
  // the result promise is a root with no reaction, so only IT may warn.
  // Verify P's location is not in the warnings.
  Runtime RT;
  AsyncGBuilder Builder;
  detect::DetectorSuite Suite;
  Suite.attachTo(Builder);
  RT.hooks().attach(&Builder);
  runMain(RT, [](Runtime &R) {
    PromiseRef P = R.promiseResolvedWith(JSLINE("d.js", 1), Value::number(1));
    PromiseRef All = R.promiseAll(JSLINE("d.js", 2), {P});
    R.promiseThen(JSLINE("d.js", 3), All, noop(R, "h", 3));
  });
  for (const Warning &W : Builder.graph().warnings())
    EXPECT_NE(W.Category, BugCategory::MissingReaction) << W.Message;
  (void)S;
}

TEST(DetectMissingExceptionalReaction, FiresWithoutCatch) {
  auto S = detect([](Runtime &R) {
    PromiseRef P = R.promiseResolvedWith(JSLINE("d.js", 1), Value::number(1));
    R.promiseThen(JSLINE("d.js", 2), P, noop(R, "h", 2));
  });
  EXPECT_TRUE(S.count(BugCategory::MissingExceptionalReaction));
}

TEST(DetectMissingExceptionalReaction, QuietWithCatchOrTwoArgThen) {
  auto S = detect([](Runtime &R) {
    PromiseRef P = R.promiseResolvedWith(JSLINE("d.js", 1), Value::number(1));
    PromiseRef P2 = R.promiseThen(JSLINE("d.js", 2), P, noop(R, "h", 2));
    R.promiseCatch(JSLINE("d.js", 3), P2, noop(R, "c", 3));

    PromiseRef Q = R.promiseResolvedWith(JSLINE("d.js", 4), Value::number(2));
    R.promiseThen(JSLINE("d.js", 5), Q, noop(R, "h2", 5), noop(R, "r2", 5));
  });
  EXPECT_FALSE(S.count(BugCategory::MissingExceptionalReaction));
}

TEST(DetectMissingReturn, FiresWhenChainContinues) {
  auto S = detect([](Runtime &R) {
    PromiseRef P = R.promiseResolvedWith(JSLINE("d.js", 1), Value::number(1));
    PromiseRef P2 = R.promiseThen(JSLINE("d.js", 2), P,
                                  noop(R, "forgets", 2)); // returns undefined
    PromiseRef P3 = R.promiseThen(JSLINE("d.js", 3), P2, noop(R, "uses", 3));
    R.promiseCatch(JSLINE("d.js", 4), P3, noop(R, "c", 4));
  });
  EXPECT_TRUE(S.count(BugCategory::MissingReturnInThen));
}

TEST(DetectMissingReturn, QuietAtChainTailOrWithReturn) {
  auto S = detect([](Runtime &R) {
    PromiseRef P = R.promiseResolvedWith(JSLINE("d.js", 1), Value::number(1));
    // Tail then for side effects only: fine.
    PromiseRef P2 = R.promiseThen(JSLINE("d.js", 2), P, noop(R, "tail", 2));
    R.promiseCatch(JSLINE("d.js", 3), P2, noop(R, "c", 3));

    // Returning a value: fine.
    PromiseRef Q = R.promiseResolvedWith(JSLINE("d.js", 4), Value::number(2));
    PromiseRef Q2 = R.promiseThen(
        JSLINE("d.js", 5), Q,
        R.makeFunction("returns", JSLINE("d.js", 5),
                       [](Runtime &, const CallArgs &A) {
                         return Completion::normal(A.arg(0));
                       }));
    PromiseRef Q3 = R.promiseThen(JSLINE("d.js", 6), Q2, noop(R, "use", 6));
    R.promiseCatch(JSLINE("d.js", 7), Q3, noop(R, "c2", 7));
  });
  EXPECT_FALSE(S.count(BugCategory::MissingReturnInThen));
}

TEST(DetectDoubleSettle, FiresOnSecondResolve) {
  auto S = detect([](Runtime &R) {
    PromiseRef P = R.promiseBare(JSLINE("d.js", 1));
    R.resolvePromise(JSLINE("d.js", 2), P, Value::number(1));
    R.resolvePromise(JSLINE("d.js", 3), P, Value::number(2));
    R.promiseThen(JSLINE("d.js", 4), P, noop(R, "h", 4));
  });
  EXPECT_TRUE(S.count(BugCategory::DoubleSettle));
}

TEST(DetectDoubleSettle, QuietForSingleSettleAndInternalForwards) {
  auto S = detect([](Runtime &R) {
    PromiseRef Inner = R.promiseResolvedWith(JSLINE("d.js", 1),
                                             Value::number(1));
    PromiseRef Outer = R.promiseBare(JSLINE("d.js", 2));
    R.resolvePromise(JSLINE("d.js", 3), Outer, Value::promise(Inner));
    R.promiseThen(JSLINE("d.js", 4), Outer, noop(R, "h", 4));
    R.promiseThen(JSLINE("d.js", 5), Inner, noop(R, "h2", 5));
  });
  EXPECT_FALSE(S.count(BugCategory::DoubleSettle));
}

//===----------------------------------------------------------------------===//
// Suite management
//===----------------------------------------------------------------------===//

TEST(DetectorSuite, DisableSilencesOneDetector) {
  Runtime RT;
  AsyncGBuilder Builder;
  detect::DetectorSuite Suite;
  Suite.disable(&Suite.DeadEmit);
  Suite.attachTo(Builder);
  RT.hooks().attach(&Builder);
  runMain(RT, [](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLINE("d.js", 1));
    R.emitterEmit(JSLINE("d.js", 2), E, "x"); // dead emit, but disabled
    R.emitterOn(JSLINE("d.js", 3), E, "y", noop(R, "l", 3)); // dead listener
  });
  std::set<BugCategory> S;
  for (const Warning &W : Builder.graph().warnings())
    S.insert(W.Category);
  EXPECT_FALSE(S.count(BugCategory::DeadEmit));
  EXPECT_TRUE(S.count(BugCategory::DeadListener));
}

TEST(DetectorSuite, WarningsRecomputedOnSecondLoopDrain) {
  Runtime RT;
  AsyncGBuilder Builder;
  detect::DetectorSuite Suite;
  Suite.attachTo(Builder);
  RT.hooks().attach(&Builder);

  EmitterRef E;
  Function L;
  runMain(RT, [&](Runtime &R) {
    E = R.emitterCreate(JSLINE("d.js", 1));
    L = noop(R, "l", 2);
    R.emitterOn(JSLINE("d.js", 2), E, "x", L);
  });
  EXPECT_TRUE(Builder.graph().hasWarning(BugCategory::DeadListener));

  // Pump more work: the listener fires now; the end-of-run pass must
  // retract the stale dead-listener warning.
  RT.emitterEmit(JSLINE("d.js", 9), E, "x");
  RT.runLoop();
  EXPECT_FALSE(Builder.graph().hasWarning(BugCategory::DeadListener));
}

} // namespace
