//===- AcmeAirRoutesTest.cpp - endpoint-level tests for the eval app -----------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives every AcmeAir REST endpoint through the JS-world http client and
/// asserts the response protocol, in both the promise-enabled and the
/// callback-only configuration.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "apps/acmeair/App.h"
#include "node/Http.h"

#include <gtest/gtest.h>

using namespace asyncg;
using namespace asyncg::jsrt;
using namespace asyncg::acmeair;
using namespace asyncg::testhelpers;
namespace http = asyncg::node::http;

namespace {

struct Response {
  int Status = -1;
  std::string Body;
};

class AcmeAirRoutes : public ::testing::TestWithParam<bool> {
protected:
  /// Sends one request and returns its response after draining the loop.
  /// Multiple calls pump the same runtime again.
  Response send(Runtime &RT, const std::string &Method,
                const std::string &Path,
                const std::vector<std::string> &Body = {}) {
    auto Out = std::make_shared<Response>();
    http::RequestOptions Opts;
    Opts.Method = Method;
    Opts.Port = 9080;
    Opts.Path = Path;
    Opts.BodyChunks = Body;
    http::request(RT, JSLOC, Opts,
                  RT.makeBuiltin("onResponse",
                                 [Out](Runtime &, const CallArgs &A) {
                                   Out->Status = static_cast<int>(
                                       A.arg(1).asNumber());
                                   Out->Body = A.arg(2).asString();
                                   return Completion::normal();
                                 }));
    RT.runLoop();
    return *Out;
  }
};

TEST_P(AcmeAirRoutes, FullSessionFlow) {
  Runtime RT;
  AppConfig Cfg;
  Cfg.UsePromises = GetParam();
  AcmeAirApp App(RT, Cfg);
  runMain(RT, [&](Runtime &) { App.start(JSLOC); });

  // Login with the right password.
  Response Login = send(RT, "POST", "/rest/api/login",
                        {"user=uid3&password=password"});
  EXPECT_EQ(Login.Status, 200);
  EXPECT_EQ(Login.Body, "OK token=s-uid3");

  // Login with a wrong password.
  Response BadLogin = send(RT, "POST", "/rest/api/login",
                           {"user=uid3&password=nope"});
  EXPECT_EQ(BadLogin.Status, 401);

  // Query flights both directions.
  Response Query =
      send(RT, "GET", "/rest/api/queryflights?from=SFO&to=JFK");
  EXPECT_EQ(Query.Status, 200);
  EXPECT_EQ(Query.Body, "OK out=5 ret=5"); // FlightsPerRoute default

  // Book a flight with the session.
  Response Book = send(RT, "POST", "/rest/api/bookflights",
                       {"token=s-uid3&flight=SFO-JFK|f0"});
  EXPECT_EQ(Book.Status, 200);
  EXPECT_EQ(Book.Body.find("OK booked=uid3|b"), 0u);

  // Booking without a session fails.
  Response BadBook = send(RT, "POST", "/rest/api/bookflights",
                          {"token=s-ghost&flight=SFO-JFK|f0"});
  EXPECT_EQ(BadBook.Status, 401);

  // Profile view.
  Response View =
      send(RT, "GET", "/rest/api/customer/byid?token=s-uid3");
  EXPECT_EQ(View.Status, 200);
  EXPECT_EQ(View.Body, "OK name=Customer 3");

  // Profile update, then view reflects it.
  Response Update = send(RT, "POST", "/rest/api/customer/update",
                         {"token=s-uid3&name=Renamed"});
  EXPECT_EQ(Update.Status, 200);
  Response View2 =
      send(RT, "GET", "/rest/api/customer/byid?token=s-uid3");
  EXPECT_EQ(View2.Body, "OK name=Renamed");

  // Booking count includes the one above.
  Response Count = send(RT, "GET", "/rest/api/config/countBookings");
  EXPECT_EQ(Count.Status, 200);
  EXPECT_EQ(Count.Body, "OK count=1");

  // Unknown route.
  Response Missing = send(RT, "GET", "/rest/api/nope");
  EXPECT_EQ(Missing.Status, 404);

  EXPECT_TRUE(RT.uncaughtErrors().empty());
  EXPECT_EQ(App.served(), 10u); // every request above, including the
                                // 401s and the 404, ended a response
}

TEST_P(AcmeAirRoutes, UnknownUserLoginRejected) {
  Runtime RT;
  AppConfig Cfg;
  Cfg.UsePromises = GetParam();
  AcmeAirApp App(RT, Cfg);
  runMain(RT, [&](Runtime &) { App.start(JSLOC); });
  Response R = send(RT, "POST", "/rest/api/login",
                    {"user=ghost&password=password"});
  EXPECT_EQ(R.Status, 401);
}

TEST_P(AcmeAirRoutes, QueryUnknownRouteGivesZeroFlights) {
  Runtime RT;
  AppConfig Cfg;
  Cfg.UsePromises = GetParam();
  AcmeAirApp App(RT, Cfg);
  runMain(RT, [&](Runtime &) { App.start(JSLOC); });
  Response R = send(RT, "GET", "/rest/api/queryflights?from=XXX&to=YYY");
  EXPECT_EQ(R.Status, 200);
  EXPECT_EQ(R.Body, "OK out=0 ret=0");
}

INSTANTIATE_TEST_SUITE_P(PromiseAndCallbackModes, AcmeAirRoutes,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool> &I) {
                           return I.param ? "promises" : "callbacks";
                         });

TEST(ParseForm, KeyValuePairs) {
  auto M = parseForm("a=1&b=two&c");
  EXPECT_EQ(M.size(), 3u);
  EXPECT_EQ(M["a"], "1");
  EXPECT_EQ(M["b"], "two");
  EXPECT_EQ(M["c"], "");
  EXPECT_TRUE(parseForm("").empty());
}

} // namespace
