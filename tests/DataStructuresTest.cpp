//===- DataStructuresTest.cpp - TimerHeap and AsyncGraph unit tests ------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "ag/Builder.h"
#include "ag/Graph.h"
#include "jsrt/TimerHeap.h"

#include <gtest/gtest.h>

using namespace asyncg;
using namespace asyncg::ag;
using namespace asyncg::jsrt;
using namespace asyncg::testhelpers;

namespace {

TimerEntry timer(uint64_t Id, uint64_t Seq, sim::SimTime Due) {
  TimerEntry T;
  T.Id = Id;
  T.Seq = Seq;
  T.Due = Due;
  return T;
}

TEST(TimerHeap, DeadlineGatesBatchMembership) {
  TimerHeap H;
  H.add(timer(1, 1, 100));
  H.add(timer(2, 2, 50));
  EXPECT_EQ(H.nextDeadline(), 50u);
  auto Due = H.takeDue(60);
  ASSERT_EQ(Due.size(), 1u);
  EXPECT_EQ(Due[0].Id, 2u);
  EXPECT_EQ(H.size(), 1u);
  EXPECT_EQ(H.nextDeadline(), 100u);
}

TEST(TimerHeap, BatchRunsInRegistrationOrder) {
  // §VI-A.1c: within one batch, earlier-registered timers run first even
  // when their deadline is later.
  TimerHeap H;
  H.add(timer(1, /*Seq=*/1, /*Due=*/101));
  H.add(timer(2, /*Seq=*/2, /*Due=*/100));
  auto Due = H.takeDue(500);
  ASSERT_EQ(Due.size(), 2u);
  EXPECT_EQ(Due[0].Id, 1u);
  EXPECT_EQ(Due[1].Id, 2u);
}

TEST(TimerHeap, CancelAndEmpty) {
  TimerHeap H;
  EXPECT_TRUE(H.empty());
  EXPECT_EQ(H.nextDeadline(), sim::NoDeadline);
  H.add(timer(7, 1, 10));
  EXPECT_TRUE(H.cancel(7));
  EXPECT_FALSE(H.cancel(7));
  EXPECT_TRUE(H.empty());
  EXPECT_TRUE(H.takeDue(1000).empty());
}

AgNode node(NodeKind K) {
  AgNode N;
  N.Kind = K;
  return N;
}

TEST(Graph, NodeIndexing) {
  AsyncGraph G;
  AgTick T;
  T.Index = 1;

  AgNode Ob = node(NodeKind::OB);
  Ob.Obj = 42;
  NodeId ObId = G.addNode(Ob, T);

  AgNode Cr = node(NodeKind::CR);
  Cr.Sched = 7;
  NodeId CrId = G.addNode(Cr, T);

  AgNode Ct = node(NodeKind::CT);
  Ct.Trigger = 9;
  NodeId CtId = G.addNode(Ct, T);

  AgNode Ce = node(NodeKind::CE);
  Ce.Sched = 7;
  NodeId CeId = G.addNode(Ce, T);
  G.appendTick(T);

  EXPECT_EQ(G.objectNode(42), ObId);
  EXPECT_EQ(G.objectNode(43), InvalidNode);
  EXPECT_EQ(G.registrationNode(7), CrId);
  EXPECT_EQ(G.triggerNode(9), CtId);
  ASSERT_EQ(G.executionsOf(7).size(), 1u);
  EXPECT_EQ(G.executionsOf(7)[0], CeId);
  EXPECT_EQ(G.node(CeId).Tick, 1u);
}

TEST(Graph, AdjacencyMaintained) {
  AsyncGraph G;
  AgTick T;
  T.Index = 1;
  NodeId A = G.addNode(node(NodeKind::CR), T);
  NodeId B = G.addNode(node(NodeKind::CE), T);
  G.appendTick(T);
  G.addEdge(A, B, EdgeKind::Causal);
  G.addEdge(B, A, EdgeKind::Binding, "b");
  ASSERT_EQ(G.outEdges(A).size(), 1u);
  ASSERT_EQ(G.inEdges(A).size(), 1u);
  EXPECT_EQ(G.edge(G.outEdges(A)[0]).To, B);
  EXPECT_EQ(G.edge(G.inEdges(A)[0]).Label, "b");
}

TEST(Graph, WarningDedupAndClear) {
  AsyncGraph G;
  AgTick T;
  T.Index = 1;
  NodeId N = G.addNode(node(NodeKind::CR), T);
  G.appendTick(T);

  Warning W;
  W.Category = BugCategory::DeadListener;
  W.Node = N;
  W.Loc = SourceLocation("x.js", 1);
  EXPECT_TRUE(G.addWarning(W));
  EXPECT_FALSE(G.addWarning(W)); // dedup
  W.Loc = SourceLocation("x.js", 2);
  EXPECT_TRUE(G.addWarning(W)); // different location
  W.Category = BugCategory::DeadEmit;
  EXPECT_TRUE(G.addWarning(W)); // different category
  EXPECT_EQ(G.warnings().size(), 3u);
  EXPECT_TRUE(G.hasWarning(BugCategory::DeadListener));
  EXPECT_EQ(G.warningsOf(BugCategory::DeadListener).size(), 2u);

  G.clearWarnings({BugCategory::DeadListener});
  EXPECT_FALSE(G.hasWarning(BugCategory::DeadListener));
  EXPECT_TRUE(G.hasWarning(BugCategory::DeadEmit));
  // Cleared warnings can be re-added (recompute semantics).
  W.Category = BugCategory::DeadListener;
  W.Loc = SourceLocation("x.js", 1);
  EXPECT_TRUE(G.addWarning(W));
}

TEST(Graph, TickNames) {
  AgTick T;
  T.Index = 3;
  T.Phase = PhaseKind::Io;
  EXPECT_EQ(T.name(), "t3: io");
  T.Phase = PhaseKind::Check;
  EXPECT_EQ(T.name(), "t3: immediate");
}

TEST(QueueMicrotask, RunsAfterNextTickBeforeMacro) {
  Runtime RT;
  std::vector<std::string> Log;
  runMain(RT, [&](Runtime &R) {
    R.setImmediate(JSLOC, recorder(R, Log, "macro"));
    R.queueMicrotask(JSLOC, recorder(R, Log, "micro"));
    R.nextTick(JSLOC, recorder(R, Log, "tick"));
  });
  EXPECT_EQ(Log, (std::vector<std::string>{"tick", "micro", "macro"}));
}

TEST(QueueMicrotask, ProducesCrAndCeInGraph) {
  Runtime RT;
  AsyncGBuilder B;
  RT.hooks().attach(&B);
  runMain(RT, [&](Runtime &R) {
    R.queueMicrotask(JSLINE("m.js", 2),
                     R.makeFunction("m", JSLINE("m.js", 2),
                                    [](Runtime &, const CallArgs &) {
                                      return Completion::normal();
                                    }));
  });
  bool SawCr = false, SawCe = false;
  for (const AgNode &N : B.graph().nodes()) {
    if (N.Api != ApiKind::QueueMicrotask)
      continue;
    SawCr |= N.Kind == NodeKind::CR;
    SawCe |= N.Kind == NodeKind::CE;
  }
  EXPECT_TRUE(SawCr);
  EXPECT_TRUE(SawCe);
}

} // namespace
