//===- DataStructuresTest.cpp - TimerHeap and AsyncGraph unit tests ------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "ag/Builder.h"
#include "ag/Graph.h"
#include "jsrt/TimerHeap.h"
#include "support/FlatMap.h"
#include "support/SymbolTable.h"

#include <gtest/gtest.h>

#include <map>
#include <random>

using namespace asyncg;
using namespace asyncg::ag;
using namespace asyncg::jsrt;
using namespace asyncg::testhelpers;

namespace {

TimerEntry timer(uint64_t Id, uint64_t Seq, sim::SimTime Due) {
  TimerEntry T;
  T.Id = Id;
  T.Seq = Seq;
  T.Due = Due;
  return T;
}

TEST(TimerHeap, DeadlineGatesBatchMembership) {
  TimerHeap H;
  H.add(timer(1, 1, 100));
  H.add(timer(2, 2, 50));
  EXPECT_EQ(H.nextDeadline(), 50u);
  auto Due = H.takeDue(60);
  ASSERT_EQ(Due.size(), 1u);
  EXPECT_EQ(Due[0].Id, 2u);
  EXPECT_EQ(H.size(), 1u);
  EXPECT_EQ(H.nextDeadline(), 100u);
}

TEST(TimerHeap, BatchRunsInRegistrationOrder) {
  // §VI-A.1c: within one batch, earlier-registered timers run first even
  // when their deadline is later.
  TimerHeap H;
  H.add(timer(1, /*Seq=*/1, /*Due=*/101));
  H.add(timer(2, /*Seq=*/2, /*Due=*/100));
  auto Due = H.takeDue(500);
  ASSERT_EQ(Due.size(), 2u);
  EXPECT_EQ(Due[0].Id, 1u);
  EXPECT_EQ(Due[1].Id, 2u);
}

TEST(TimerHeap, CancelAndEmpty) {
  TimerHeap H;
  EXPECT_TRUE(H.empty());
  EXPECT_EQ(H.nextDeadline(), sim::NoDeadline);
  H.add(timer(7, 1, 10));
  EXPECT_TRUE(H.cancel(7));
  EXPECT_FALSE(H.cancel(7));
  EXPECT_TRUE(H.empty());
  EXPECT_TRUE(H.takeDue(1000).empty());
}

AgNode node(NodeKind K) {
  AgNode N;
  N.Kind = K;
  return N;
}

TEST(Graph, NodeIndexing) {
  AsyncGraph G;
  AgTick T;
  T.Index = 1;

  AgNode Ob = node(NodeKind::OB);
  Ob.Obj = 42;
  NodeId ObId = G.addNode(Ob, T);

  AgNode Cr = node(NodeKind::CR);
  Cr.Sched = 7;
  NodeId CrId = G.addNode(Cr, T);

  AgNode Ct = node(NodeKind::CT);
  Ct.Trigger = 9;
  NodeId CtId = G.addNode(Ct, T);

  AgNode Ce = node(NodeKind::CE);
  Ce.Sched = 7;
  NodeId CeId = G.addNode(Ce, T);
  G.appendTick(T);

  EXPECT_EQ(G.objectNode(42), ObId);
  EXPECT_EQ(G.objectNode(43), InvalidNode);
  EXPECT_EQ(G.registrationNode(7), CrId);
  EXPECT_EQ(G.triggerNode(9), CtId);
  ASSERT_EQ(G.executionsOf(7).size(), 1u);
  EXPECT_EQ(G.executionsOf(7)[0], CeId);
  EXPECT_EQ(G.node(CeId).Tick, 1u);
}

TEST(Graph, AdjacencyMaintained) {
  AsyncGraph G;
  AgTick T;
  T.Index = 1;
  NodeId A = G.addNode(node(NodeKind::CR), T);
  NodeId B = G.addNode(node(NodeKind::CE), T);
  G.appendTick(T);
  G.addEdge(A, B, EdgeKind::Causal);
  G.addEdge(B, A, EdgeKind::Binding, "b");
  ASSERT_EQ(G.outEdges(A).size(), 1u);
  ASSERT_EQ(G.inEdges(A).size(), 1u);
  EXPECT_EQ(G.edge(G.outEdges(A)[0]).To, B);
  EXPECT_EQ(G.edge(G.inEdges(A)[0]).Label, "b");
}

TEST(Graph, WarningDedupAndClear) {
  AsyncGraph G;
  AgTick T;
  T.Index = 1;
  NodeId N = G.addNode(node(NodeKind::CR), T);
  G.appendTick(T);

  Warning W;
  W.Category = BugCategory::DeadListener;
  W.Node = N;
  W.Loc = SourceLocation("x.js", 1);
  EXPECT_TRUE(G.addWarning(W));
  EXPECT_FALSE(G.addWarning(W)); // dedup
  W.Loc = SourceLocation("x.js", 2);
  EXPECT_TRUE(G.addWarning(W)); // different location
  W.Category = BugCategory::DeadEmit;
  EXPECT_TRUE(G.addWarning(W)); // different category
  EXPECT_EQ(G.warnings().size(), 3u);
  EXPECT_TRUE(G.hasWarning(BugCategory::DeadListener));
  EXPECT_EQ(G.warningsOf(BugCategory::DeadListener).size(), 2u);

  G.clearWarnings({BugCategory::DeadListener});
  EXPECT_FALSE(G.hasWarning(BugCategory::DeadListener));
  EXPECT_TRUE(G.hasWarning(BugCategory::DeadEmit));
  // Cleared warnings can be re-added (recompute semantics).
  W.Category = BugCategory::DeadListener;
  W.Loc = SourceLocation("x.js", 1);
  EXPECT_TRUE(G.addWarning(W));
}

TEST(Graph, TickNames) {
  AgTick T;
  T.Index = 3;
  T.Phase = PhaseKind::Io;
  EXPECT_EQ(T.name(), "t3: io");
  T.Phase = PhaseKind::Check;
  EXPECT_EQ(T.name(), "t3: immediate");
}

//===----------------------------------------------------------------------===//
// FlatMap (open addressing, backward-shift deletion) vs std::map oracle
//===----------------------------------------------------------------------===//

TEST(FlatMap, BasicInsertFindErase) {
  FlatMap<uint64_t, int> M;
  EXPECT_TRUE(M.empty());
  EXPECT_EQ(M.find(7), nullptr);
  M[7] = 42;
  ASSERT_NE(M.find(7), nullptr);
  EXPECT_EQ(*M.find(7), 42);
  EXPECT_EQ(M.size(), 1u);
  M[7] = 43; // overwrite, not duplicate
  EXPECT_EQ(*M.find(7), 43);
  EXPECT_EQ(M.size(), 1u);
  EXPECT_TRUE(M.erase(7));
  EXPECT_FALSE(M.erase(7));
  EXPECT_EQ(M.find(7), nullptr);
  EXPECT_TRUE(M.empty());
}

TEST(FlatMap, GrowthPreservesEntries) {
  FlatMap<uint32_t, uint32_t> M;
  const uint32_t N = 10000; // forces many rehashes from the 16-slot start
  for (uint32_t I = 0; I < N; ++I)
    M[I * 2654435761u] = I;
  EXPECT_EQ(M.size(), N);
  for (uint32_t I = 0; I < N; ++I) {
    const uint32_t *V = M.find(I * 2654435761u);
    ASSERT_NE(V, nullptr);
    EXPECT_EQ(*V, I);
  }
}

TEST(FlatMap, RandomOpsMatchStdMapOracle) {
  // Property test: a random interleaving of insert / overwrite / erase /
  // lookup must agree with std::map at every step. Keys are drawn from a
  // small range so collisions, tombstone-free deletions, and re-insertion
  // into shifted slots all get exercised.
  std::mt19937 Rng(0xA5CEC5u);
  FlatMap<uint64_t, uint64_t> M;
  std::map<uint64_t, uint64_t> Oracle;
  for (int Step = 0; Step < 20000; ++Step) {
    uint64_t Key = Rng() % 512;
    switch (Rng() % 4) {
    case 0:
    case 1: { // insert / overwrite
      uint64_t Val = Rng();
      M[Key] = Val;
      Oracle[Key] = Val;
      break;
    }
    case 2: { // erase
      bool Erased = M.erase(Key);
      EXPECT_EQ(Erased, Oracle.erase(Key) == 1u);
      break;
    }
    case 3: { // lookup
      const uint64_t *V = M.find(Key);
      auto It = Oracle.find(Key);
      if (It == Oracle.end()) {
        EXPECT_EQ(V, nullptr);
      } else {
        ASSERT_NE(V, nullptr);
        EXPECT_EQ(*V, It->second);
      }
      break;
    }
    }
    ASSERT_EQ(M.size(), Oracle.size());
  }
  // Final sweep: every surviving key agrees; iteration sees each exactly
  // once.
  std::map<uint64_t, uint64_t> Seen;
  for (const auto &[K, V] : M) {
    EXPECT_TRUE(Seen.emplace(K, V).second);
  }
  EXPECT_EQ(Seen, Oracle);
  EXPECT_GT(M.memoryUsage(), 0u);
}

TEST(FlatMap, ReserveAvoidsRehash) {
  FlatMap<uint64_t, uint64_t> M;
  M.reserve(1000);
  size_t Cap = M.capacity();
  for (uint64_t I = 0; I < 1000; ++I)
    M[I] = I;
  EXPECT_EQ(M.capacity(), Cap);
  M.clear();
  EXPECT_TRUE(M.empty());
  EXPECT_EQ(M.find(5), nullptr);
}

//===----------------------------------------------------------------------===//
// SymbolTable / Symbol
//===----------------------------------------------------------------------===//

TEST(SymbolTable, InternIsIdempotent) {
  SymbolTable T;
  SymbolId A = T.intern("setTimeout");
  SymbolId B = T.intern("setTimeout");
  EXPECT_EQ(A, B);
  EXPECT_NE(A, T.intern("nextTick"));
  EXPECT_EQ(T.intern(""), 0u); // id 0 is always the empty string
}

TEST(SymbolTable, IdsStableAcrossGrowth) {
  // Interning thousands of strings forces both arena-chunk and hash-table
  // growth; previously handed-out ids must keep resolving to their bytes.
  SymbolTable T;
  std::vector<SymbolId> Ids;
  std::vector<std::string> Strs;
  for (int I = 0; I < 5000; ++I) {
    Strs.push_back("label-" + std::to_string(I));
    Ids.push_back(T.intern(Strs.back()));
  }
  for (int I = 0; I < 5000; ++I) {
    EXPECT_EQ(T.view(Ids[I]), Strs[I]);
    EXPECT_EQ(T.intern(Strs[I]), Ids[I]); // still idempotent after growth
  }
  EXPECT_EQ(T.size(), 5001u); // + the empty string
  EXPECT_GT(T.memoryUsage(), 0u);
}

TEST(SymbolTable, ResolveRoundTrip) {
  SymbolTable T;
  SymbolId Id = T.intern("on('data')");
  EXPECT_EQ(T.view(Id), "on('data')");
  EXPECT_STREQ(T.c_str(Id), "on('data')"); // arena strings are terminated
  // Long strings larger than one arena chunk still round-trip.
  std::string Big(200000, 'x');
  SymbolId BigId = T.intern(Big);
  EXPECT_EQ(T.view(BigId), Big);
}

TEST(SymbolValue, ComparesAndConverts) {
  Symbol A = "data";
  Symbol B = std::string("data");
  Symbol C = "error";
  EXPECT_EQ(A, B); // same id, integer compare
  EXPECT_NE(A, C);
  EXPECT_EQ(A, "data"); // text compare against non-interned strings
  EXPECT_NE(A, "err");
  EXPECT_EQ(A.str(), "data");
  EXPECT_TRUE(Symbol().empty());
  EXPECT_EQ(Symbol::fromId(A.id()), A);
}

//===----------------------------------------------------------------------===//
// Pooled adjacency (EdgeRange) and the memory footprint accessor
//===----------------------------------------------------------------------===//

TEST(Graph, EdgeRangeIterationMatchesInsertion) {
  AsyncGraph G;
  AgTick T;
  T.Index = 1;
  NodeId Hub = G.addNode(node(NodeKind::CR), T);
  std::vector<NodeId> Spokes;
  for (int I = 0; I < 40; ++I)
    Spokes.push_back(G.addNode(node(NodeKind::CE), T));
  G.appendTick(T);
  for (NodeId S : Spokes)
    G.addEdge(Hub, S, EdgeKind::Causal);

  auto Range = G.outEdges(Hub);
  EXPECT_FALSE(Range.empty());
  ASSERT_EQ(Range.size(), Spokes.size());
  size_t I = 0;
  for (uint32_t EdgeId : Range) { // pooled lists keep insertion order
    EXPECT_EQ(G.edge(EdgeId).To, Spokes[I]);
    ++I;
  }
  EXPECT_EQ(I, Spokes.size());
  for (NodeId S : Spokes)
    EXPECT_EQ(G.inEdges(S).size(), 1u);
}

TEST(Graph, MemoryFootprintGrowsWithContent) {
  AsyncGraph G;
  size_t Empty = G.memoryFootprint();
  AgTick T;
  T.Index = 1;
  NodeId Prev = G.addNode(node(NodeKind::CR), T);
  for (int I = 0; I < 1000; ++I) {
    NodeId N = G.addNode(node(NodeKind::CE), T);
    G.addEdge(Prev, N, EdgeKind::Causal);
    Prev = N;
  }
  G.appendTick(T);
  EXPECT_GT(G.memoryFootprint(), Empty);
}

TEST(QueueMicrotask, RunsAfterNextTickBeforeMacro) {
  Runtime RT;
  std::vector<std::string> Log;
  runMain(RT, [&](Runtime &R) {
    R.setImmediate(JSLOC, recorder(R, Log, "macro"));
    R.queueMicrotask(JSLOC, recorder(R, Log, "micro"));
    R.nextTick(JSLOC, recorder(R, Log, "tick"));
  });
  EXPECT_EQ(Log, (std::vector<std::string>{"tick", "micro", "macro"}));
}

TEST(QueueMicrotask, ProducesCrAndCeInGraph) {
  Runtime RT;
  AsyncGBuilder B;
  RT.hooks().attach(&B);
  runMain(RT, [&](Runtime &R) {
    R.queueMicrotask(JSLINE("m.js", 2),
                     R.makeFunction("m", JSLINE("m.js", 2),
                                    [](Runtime &, const CallArgs &) {
                                      return Completion::normal();
                                    }));
  });
  bool SawCr = false, SawCe = false;
  for (const AgNode &N : B.graph().nodes()) {
    if (N.Api != ApiKind::QueueMicrotask)
      continue;
    SawCr |= N.Kind == NodeKind::CR;
    SawCe |= N.Kind == NodeKind::CE;
  }
  EXPECT_TRUE(SawCr);
  EXPECT_TRUE(SawCe);
}

} // namespace
