//===- SpscRingTest.cpp - Lock-free SPSC ring + pipeline backpressure --------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises the SPSC ring's single-threaded edges (full/empty, wraparound,
/// all-or-nothing batches) and its cross-thread FIFO contract under a tiny
/// capacity that forces constant wraparound — the test to run under TSan
/// (-DASYNCG_TSAN=ON). Also checks the async pipeline's drop-counter
/// accounting: every event is either delivered or counted as dropped, and
/// structural events are never dropped.
///
//===----------------------------------------------------------------------===//

#include "ag/AsyncPipeline.h"
#include "support/SpscRing.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

using namespace asyncg;

namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<uint64_t>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<uint64_t>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<uint64_t>(100).capacity(), 128u);
  EXPECT_EQ(SpscRing<uint64_t>(1024).capacity(), 1024u);
}

TEST(SpscRing, EmptyPopFails) {
  SpscRing<uint64_t> R(8);
  uint64_t V = 0;
  EXPECT_FALSE(R.tryPop(V));
  EXPECT_TRUE(R.emptyApprox());
}

TEST(SpscRing, FullPushFails) {
  SpscRing<uint64_t> R(8);
  for (uint64_t I = 0; I != 8; ++I)
    EXPECT_TRUE(R.tryPush(I));
  EXPECT_FALSE(R.tryPush(99));
  EXPECT_EQ(R.sizeApprox(), 8u);

  uint64_t V = 0;
  EXPECT_TRUE(R.tryPop(V));
  EXPECT_EQ(V, 0u);
  EXPECT_TRUE(R.tryPush(99));
  EXPECT_FALSE(R.tryPush(100));
}

TEST(SpscRing, FifoOrderSingleThread) {
  SpscRing<uint64_t> R(16);
  uint64_t Next = 0;
  // Push/pop far more than the capacity so every slot wraps many times.
  for (int Round = 0; Round != 100; ++Round) {
    for (uint64_t I = 0; I != 11; ++I)
      ASSERT_TRUE(R.tryPush(Round * 11 + I));
    for (uint64_t I = 0; I != 11; ++I) {
      uint64_t V = 0;
      ASSERT_TRUE(R.tryPop(V));
      ASSERT_EQ(V, Next++);
    }
  }
  EXPECT_TRUE(R.emptyApprox());
}

TEST(SpscRing, BatchPushIsAllOrNothing) {
  SpscRing<uint64_t> R(8);
  uint64_t Batch[5] = {1, 2, 3, 4, 5};
  ASSERT_TRUE(R.tryPushAll(Batch, 5));
  // Only 3 slots free: the next batch of 5 must not partially land.
  EXPECT_FALSE(R.tryPushAll(Batch, 5));
  EXPECT_EQ(R.sizeApprox(), 5u);
  // 3 fits exactly.
  EXPECT_TRUE(R.tryPushAll(Batch, 3));
  EXPECT_EQ(R.sizeApprox(), 8u);

  uint64_t Out[8];
  EXPECT_EQ(R.tryPopBatch(Out, 8), 8u);
  EXPECT_EQ(Out[4], 5u);
  EXPECT_EQ(Out[5], 1u);
}

TEST(SpscRing, PopBatchBounded) {
  SpscRing<uint64_t> R(16);
  for (uint64_t I = 0; I != 10; ++I)
    ASSERT_TRUE(R.tryPush(I));
  uint64_t Out[4];
  EXPECT_EQ(R.tryPopBatch(Out, 4), 4u);
  EXPECT_EQ(Out[0], 0u);
  EXPECT_EQ(Out[3], 3u);
  EXPECT_EQ(R.tryPopBatch(Out, 4), 4u);
  EXPECT_EQ(R.tryPopBatch(Out, 4), 2u);
  EXPECT_EQ(Out[1], 9u);
  EXPECT_EQ(R.tryPopBatch(Out, 4), 0u);
}

/// Cross-thread FIFO: a tiny ring forces constant full/empty transitions
/// and wraparound while both threads run flat out. Run under TSan to check
/// the release/acquire publication of slots.
TEST(SpscRing, ConcurrentFifoStress) {
  constexpr uint64_t Total = 200000;
  SpscRing<uint64_t> R(16);

  std::thread Producer([&R] {
    for (uint64_t I = 0; I != Total; ++I)
      while (!R.tryPush(I))
        std::this_thread::yield();
  });

  uint64_t Expected = 0;
  uint64_t Buf[32];
  while (Expected != Total) {
    size_t N = R.tryPopBatch(Buf, 32);
    if (N == 0) {
      std::this_thread::yield();
      continue;
    }
    for (size_t I = 0; I != N; ++I)
      ASSERT_EQ(Buf[I], Expected++);
  }
  Producer.join();
  EXPECT_TRUE(R.emptyApprox());
}

/// Same contract with multi-record batches: batches land contiguously
/// (never torn or interleaved), in order.
TEST(SpscRing, ConcurrentBatchStress) {
  constexpr uint64_t Batches = 50000;
  SpscRing<uint64_t> R(32);

  std::thread Producer([&R] {
    uint64_t Seq = 0;
    for (uint64_t B = 0; B != Batches; ++B) {
      uint64_t Span[5];
      size_t N = 1 + B % 5;
      for (size_t I = 0; I != N; ++I)
        Span[I] = Seq++;
      while (!R.tryPushAll(Span, N))
        std::this_thread::yield();
    }
  });

  uint64_t Total = 0;
  for (uint64_t B = 0; B != Batches; ++B)
    Total += 1 + B % 5;

  uint64_t Expected = 0;
  uint64_t Buf[64];
  while (Expected != Total) {
    size_t N = R.tryPopBatch(Buf, 64);
    if (N == 0) {
      std::this_thread::yield();
      continue;
    }
    for (size_t I = 0; I != N; ++I)
      ASSERT_EQ(Buf[I], Expected++);
  }
  Producer.join();
}

//===----------------------------------------------------------------------===//
// Pipeline backpressure accounting
//===----------------------------------------------------------------------===//

/// Counts delivered events; optionally throttles to force ring pressure.
class CountingSink : public instr::AnalysisBase {
public:
  const char *analysisName() const override { return "counting-sink"; }

  void onFunctionEnter(const instr::FunctionEnterEvent &) override {
    ++Enters;
  }
  void onFunctionExit(const instr::FunctionExitEvent &) override { ++Exits; }
  void onObjectCreate(const instr::ObjectCreateEvent &) override {
    ++Objects;
    if (ThrottleEvery && Objects % ThrottleEvery == 0)
      std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  uint64_t Enters = 0;
  uint64_t Exits = 0;
  uint64_t Objects = 0;
  uint64_t ThrottleEvery = 0;
};

TEST(AsyncPipelineBackpressure, DropCounterAccountsForEveryEvent) {
  CountingSink Sink;
  Sink.ThrottleEvery = 64; // make the consumer lose the race

  ag::PipelineConfig Cfg;
  Cfg.RingCapacity = 1024;
  Cfg.Policy = ag::BackpressurePolicy::Drop;
  constexpr uint64_t Total = 20000;
  {
    ag::AsyncPipeline P(Sink, Cfg);
    instr::ObjectCreateEvent Ev;
    Ev.IsPromise = true;
    for (uint64_t I = 0; I != Total; ++I) {
      Ev.Obj = I + 1;
      P.onObjectCreate(Ev);
    }
    P.stop();
    // Every event either reached the sink or was counted as dropped.
    EXPECT_EQ(Sink.Objects + P.droppedEvents(), Total);
  }
}

TEST(AsyncPipelineBackpressure, StructuralEventsNeverDrop) {
  CountingSink Sink;
  Sink.ThrottleEvery = 0;

  ag::PipelineConfig Cfg;
  Cfg.RingCapacity = 1024;
  Cfg.Policy = ag::BackpressurePolicy::Drop;

  auto Data = std::make_shared<jsrt::FunctionData>();
  Data->Id = 1;
  Data->Name = "f";
  jsrt::Function F(Data);
  jsrt::CallArgs Args;
  jsrt::DispatchInfo Dispatch;
  jsrt::Completion Result;

  constexpr uint64_t Total = 50000;
  ag::AsyncPipeline P(Sink, Cfg);
  for (uint64_t I = 0; I != Total; ++I) {
    instr::FunctionEnterEvent Enter{F, Args, Dispatch};
    P.onFunctionEnter(Enter);
    instr::FunctionExitEvent Exit{F, Result, Dispatch};
    P.onFunctionExit(Exit);
  }
  P.stop();
  EXPECT_EQ(Sink.Enters, Total);
  EXPECT_EQ(Sink.Exits, Total);
  EXPECT_EQ(P.droppedEvents(), 0u) << "structural events must block, not drop";
}

/// Deferred drain: the builder thread parks while the ring buffers events;
/// nothing reaches the sink until flush() (given a ring big enough for the
/// whole run), and flush() delivers everything.
TEST(AsyncPipelineDeferred, BuffersUntilFlush) {
  CountingSink Sink;

  ag::PipelineConfig Cfg;
  Cfg.RingCapacity = 1 << 15;
  Cfg.Drain = ag::DrainMode::Deferred;
  constexpr uint64_t Total = 20000;
  ag::AsyncPipeline P(Sink, Cfg);
  instr::ObjectCreateEvent Ev;
  for (uint64_t I = 0; I != Total; ++I) {
    Ev.Obj = I + 1;
    P.onObjectCreate(Ev);
  }
  // The consumer is parked and the ring (32k slots) holds every record.
  EXPECT_EQ(Sink.Objects, 0u);
  EXPECT_EQ(P.consumedRecords(), 0u);
  P.flush();
  EXPECT_EQ(Sink.Objects, Total);
  P.stop();
  EXPECT_EQ(P.pushedRecords(), P.consumedRecords());
}

/// Deferred drain with a ring smaller than the run: overflow wakes the
/// consumer mid-run and the pipeline stays lossless.
TEST(AsyncPipelineDeferred, OverflowWakesConsumerAndStaysLossless) {
  CountingSink Sink;

  ag::PipelineConfig Cfg;
  Cfg.RingCapacity = 1024;
  Cfg.Drain = ag::DrainMode::Deferred;
  constexpr uint64_t Total = 50000;
  {
    ag::AsyncPipeline P(Sink, Cfg);
    instr::ObjectCreateEvent Ev;
    for (uint64_t I = 0; I != Total; ++I) {
      Ev.Obj = I + 1;
      P.onObjectCreate(Ev);
    }
    P.stop();
    EXPECT_EQ(Sink.Objects, Total);
    EXPECT_EQ(P.droppedEvents(), 0u);
    EXPECT_EQ(P.pushedRecords(), P.consumedRecords());
  }
}

TEST(AsyncPipelineBackpressure, BlockPolicyIsLossless) {
  CountingSink Sink;
  Sink.ThrottleEvery = 256;

  ag::PipelineConfig Cfg;
  Cfg.RingCapacity = 1024;
  Cfg.Policy = ag::BackpressurePolicy::Block;
  constexpr uint64_t Total = 20000;
  ag::AsyncPipeline P(Sink, Cfg);
  instr::ObjectCreateEvent Ev;
  for (uint64_t I = 0; I != Total; ++I) {
    Ev.Obj = I + 1;
    P.onObjectCreate(Ev);
  }
  P.stop();
  EXPECT_EQ(Sink.Objects, Total);
  EXPECT_EQ(P.droppedEvents(), 0u);
  EXPECT_EQ(P.pushedRecords(), P.consumedRecords());
}

} // namespace
