//===- TraceReplayTest.cpp - .agtrace record/replay round-trips --------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The codec's correctness contract: a graph rebuilt from a recorded
/// `.agtrace` trace — or built off-thread through the async pipeline — must
/// be byte-identical (as DOT) to the graph the builder produces inline.
/// Runs the check over every Table-I case, buggy and fixed variants. Also
/// covers trace-file validation (bad magic, wrong version).
///
//===----------------------------------------------------------------------===//

#include "ag/AsyncPipeline.h"
#include "cases/Case.h"
#include "instr/TraceCodec.h"
#include "viz/Dot.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <string>

using namespace asyncg;
using namespace asyncg::cases;

namespace {

std::string tempTracePath(const std::string &Tag) {
  return ::testing::TempDir() + "agtrace_" + Tag + ".agtrace";
}

/// Builds the reference graph inline (builder attached directly).
std::string syncDot(const CaseDef &Def, bool Fixed) {
  ag::AsyncGBuilder Builder;
  runCaseWith(Def, Fixed, Builder);
  return viz::toDot(Builder.graph());
}

class TraceRoundTrip : public ::testing::TestWithParam<size_t> {};

std::string caseName(const ::testing::TestParamInfo<size_t> &Info) {
  std::string N = allCases()[Info.param].Name;
  for (char &C : N)
    if (C == '-')
      C = '_';
  return N;
}

TEST_P(TraceRoundTrip, ReplayedGraphMatchesSyncDot) {
  const CaseDef &Def = allCases()[GetParam()];
  for (bool Fixed : {false, true}) {
    if (Fixed && !Def.HasFix)
      continue;
    SCOPED_TRACE(Fixed ? "fixed" : "buggy");

    std::string Path = tempTracePath(Def.Name + (Fixed ? "_f" : "_b"));
    instr::TraceRecorder Rec;
    ASSERT_TRUE(Rec.open(Path));
    runCaseWith(Def, Fixed, Rec);
    ASSERT_TRUE(Rec.finalize());
    EXPECT_GT(Rec.recordCount(), 0u);

    ag::AsyncGBuilder Replayed;
    std::string Err;
    ASSERT_TRUE(instr::replayTrace(Path, Replayed, &Err)) << Err;
    EXPECT_EQ(viz::toDot(Replayed.graph()), syncDot(Def, Fixed));
    std::remove(Path.c_str());
  }
}

TEST_P(TraceRoundTrip, AsyncPipelineGraphMatchesSyncDot) {
  const CaseDef &Def = allCases()[GetParam()];
  for (bool Fixed : {false, true}) {
    if (Fixed && !Def.HasFix)
      continue;
    SCOPED_TRACE(Fixed ? "fixed" : "buggy");

    ag::AsyncGBuilder OffThread;
    {
      ag::AsyncPipeline Pipeline(OffThread);
      runCaseWith(Def, Fixed, Pipeline);
      Pipeline.stop();
      EXPECT_EQ(Pipeline.droppedEvents(), 0u);
    }
    EXPECT_EQ(viz::toDot(OffThread.graph()), syncDot(Def, Fixed));
  }
}

INSTANTIATE_TEST_SUITE_P(AllCases, TraceRoundTrip,
                         ::testing::Range<size_t>(0, allCases().size()),
                         caseName);

//===----------------------------------------------------------------------===//
// Trace-file validation
//===----------------------------------------------------------------------===//

TEST(TraceFile, RejectsBadMagic) {
  std::string Path = tempTracePath("badmagic");
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  const char Junk[64] = "definitely not a trace";
  std::fwrite(Junk, 1, sizeof(Junk), F);
  std::fclose(F);

  ag::AsyncGBuilder B;
  std::string Err;
  EXPECT_FALSE(instr::replayTrace(Path, B, &Err));
  EXPECT_NE(Err.find("bad magic"), std::string::npos) << Err;
  std::remove(Path.c_str());
}

TEST(TraceFile, RejectsWrongVersion) {
  std::string Path = tempTracePath("badversion");
  // Start from a valid (empty) trace, then corrupt the version field.
  {
    trace::TraceFileWriter W;
    ASSERT_TRUE(W.open(Path));
    ASSERT_TRUE(W.finalize());
  }
  std::FILE *F = std::fopen(Path.c_str(), "r+b");
  ASSERT_NE(F, nullptr);
  uint32_t Bogus = trace::TraceVersion + 41;
  std::fseek(F, offsetof(trace::TraceFileHeader, Version), SEEK_SET);
  std::fwrite(&Bogus, sizeof(Bogus), 1, F);
  std::fclose(F);

  ag::AsyncGBuilder B;
  std::string Err;
  EXPECT_FALSE(instr::replayTrace(Path, B, &Err));
  EXPECT_NE(Err.find("unsupported trace version"), std::string::npos) << Err;
  std::remove(Path.c_str());
}

TEST(TraceFile, RejectsMissingFile) {
  ag::AsyncGBuilder B;
  std::string Err;
  EXPECT_FALSE(
      instr::replayTrace(tempTracePath("nonexistent_nope"), B, &Err));
  EXPECT_FALSE(Err.empty());
}

} // namespace
