//===- TestHelpers.h - shared helpers for the test suites -------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_TESTS_TESTHELPERS_H
#define ASYNCG_TESTS_TESTHELPERS_H

#include "jsrt/Runtime.h"

#include <string>
#include <vector>

namespace asyncg {
namespace testhelpers {

/// A function that appends \p Tag to \p Log when invoked.
inline jsrt::Function recorder(jsrt::Runtime &RT, std::vector<std::string> &Log,
                               std::string Tag,
                               SourceLocation Loc = SourceLocation()) {
  return RT.makeFunction(Tag, Loc.isValid() ? Loc : JSLOC,
                         [&Log, Tag](jsrt::Runtime &, const jsrt::CallArgs &) {
                           Log.push_back(Tag);
                           return jsrt::Completion::normal();
                         });
}

/// Runs \p Body as the program's main tick and drains the loop.
inline void runMain(jsrt::Runtime &RT,
                    std::function<void(jsrt::Runtime &)> Body) {
  jsrt::Function Main = RT.makeFunction(
      "main", JSLOC, [Body = std::move(Body)](jsrt::Runtime &R,
                                              const jsrt::CallArgs &) {
        Body(R);
        return jsrt::Completion::normal();
      });
  RT.main(Main);
}

} // namespace testhelpers
} // namespace asyncg

#endif // ASYNCG_TESTS_TESTHELPERS_H
