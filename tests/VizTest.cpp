//===- VizTest.cpp - DOT/JSON/text serialization tests -------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "ag/Builder.h"
#include "detect/Detectors.h"
#include "viz/Dot.h"
#include "viz/Html.h"
#include "viz/JsonDump.h"
#include "viz/TextReport.h"

#include <gtest/gtest.h>

using namespace asyncg;
using namespace asyncg::ag;
using namespace asyncg::jsrt;
using namespace asyncg::testhelpers;

namespace {

/// Builder plus the detector suite it observes (kept together so the
/// observer pointer stays valid for the builder's lifetime).
struct Sample {
  AsyncGBuilder Builder;
  detect::DetectorSuite Suite;
  const AsyncGraph &graph() { return Builder.graph(); }
};

/// Builds the small mixed graph used by all serialization tests.
std::unique_ptr<Sample> sampleGraph() {
  auto B = std::make_unique<Sample>();
  B->Suite.attachTo(B->Builder);
  Runtime RT;
  RT.hooks().attach(&B->Builder);
  runMain(RT, [](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLINE("s.js", 1));
    R.emitterEmit(JSLINE("s.js", 2), E, "ghost"); // dead emit warning
    R.emitterOn(JSLINE("s.js", 3), E, "msg",
                R.makeFunction("onMsg", JSLINE("s.js", 3),
                               [](Runtime &, const CallArgs &) {
                                 return Completion::normal();
                               }));
    R.emitterEmit(JSLINE("s.js", 4), E, "msg");
    R.nextTick(JSLINE("s.js", 5),
               R.makeFunction("tickCb", JSLINE("s.js", 5),
                              [](Runtime &, const CallArgs &) {
                                return Completion::normal();
                              }));
  });
  return B;
}

size_t countOccurrences(const std::string &Hay, const std::string &Needle) {
  size_t Count = 0, Pos = 0;
  while ((Pos = Hay.find(Needle, Pos)) != std::string::npos) {
    ++Count;
    Pos += Needle.size();
  }
  return Count;
}

TEST(Dot, ContainsTicksNodesAndShapes) {
  auto B = sampleGraph();
  std::string Dot = viz::toDot(B->graph());
  EXPECT_NE(Dot.find("digraph AsyncGraph"), std::string::npos);
  EXPECT_NE(Dot.find("cluster_t1"), std::string::npos);
  EXPECT_NE(Dot.find("t1: main"), std::string::npos);
  EXPECT_NE(Dot.find("t2: nexttick"), std::string::npos);
  EXPECT_NE(Dot.find("shape=box"), std::string::npos);      // CR
  EXPECT_NE(Dot.find("shape=ellipse"), std::string::npos);  // CE
  EXPECT_NE(Dot.find("shape=diamond"), std::string::npos);  // CT
  EXPECT_NE(Dot.find("shape=triangle"), std::string::npos); // OB
  EXPECT_NE(Dot.find("L2: emit(ghost)"), std::string::npos);
  // The dead emit warning highlights its node.
  EXPECT_NE(Dot.find("(!) L2: emit(ghost)"), std::string::npos);
  EXPECT_NE(Dot.find("color=red"), std::string::npos);
}

TEST(Dot, OptionsFilterInternalAndHappensIn) {
  auto B = sampleGraph();
  viz::DotOptions Opts;
  Opts.IncludeHappensIn = false;
  std::string Dot = viz::toDot(B->graph(), Opts);
  EXPECT_EQ(Dot.find("style=dotted"), std::string::npos);
  std::string Full = viz::toDot(B->graph());
  EXPECT_NE(Full.find("style=dotted"), std::string::npos);
}

TEST(Json, BalancedAndContainsSections) {
  auto B = sampleGraph();
  std::string J = viz::toJson(B->graph());
  EXPECT_EQ(countOccurrences(J, "{"), countOccurrences(J, "}"));
  EXPECT_EQ(countOccurrences(J, "["), countOccurrences(J, "]"));
  EXPECT_NE(J.find("\"ticks\":"), std::string::npos);
  EXPECT_NE(J.find("\"nodes\":"), std::string::npos);
  EXPECT_NE(J.find("\"edges\":"), std::string::npos);
  EXPECT_NE(J.find("\"warnings\":"), std::string::npos);
  EXPECT_NE(J.find("\"stats\":"), std::string::npos);
  EXPECT_NE(J.find("\"Dead Emits\""), std::string::npos);
  EXPECT_NE(J.find("\"kind\":\"CT\""), std::string::npos);
}

TEST(Json, StatsMatchGraph) {
  auto B = sampleGraph();
  const AsyncGraph &G = B->graph();
  std::string J = viz::toJson(G);
  std::string Expect = "\"nodes\":" + std::to_string(G.nodes().size());
  // The stats object repeats the node count.
  EXPECT_NE(J.rfind(Expect), std::string::npos);
}

TEST(Text, TickBlocksAndWarnMarkers) {
  auto B = sampleGraph();
  std::string T = viz::toText(B->graph());
  EXPECT_NE(T.find("t1: main"), std::string::npos);
  EXPECT_NE(T.find("t2: nexttick"), std::string::npos);
  EXPECT_NE(T.find("(!)"), std::string::npos);
  EXPECT_NE(T.find("[] L5: nextTick"), std::string::npos);
  EXPECT_NE(T.find("** L2: emit(ghost)"), std::string::npos);

  viz::TextOptions Opts;
  Opts.MaxTicks = 1;
  std::string Short = viz::toText(B->graph(), Opts);
  EXPECT_NE(Short.find("more ticks"), std::string::npos);
  EXPECT_EQ(Short.find("t2:"), std::string::npos);
}

TEST(Text, WarningsReport) {
  auto B = sampleGraph();
  std::string W = viz::warningsReport(B->graph());
  EXPECT_NE(W.find("warning[Dead Emits] @ s.js:2"), std::string::npos);

  AsyncGraph Empty;
  EXPECT_EQ(viz::warningsReport(Empty), "no warnings\n");
}

TEST(Viz, WriteFileRoundTrip) {
  std::string Path = "/tmp/asyncg_viz_test.json";
  EXPECT_TRUE(viz::writeFile(Path, "{\"x\":1}"));
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr);
  char Buf[32] = {};
  size_t N = std::fread(Buf, 1, sizeof(Buf), F);
  std::fclose(F);
  EXPECT_EQ(std::string(Buf, N), "{\"x\":1}");
  std::remove(Path.c_str());
  EXPECT_FALSE(viz::writeFile("/nonexistent-dir/x/y.json", "data"));
}

TEST(Html, SelfContainedViewer) {
  auto B = sampleGraph();
  std::string H = viz::toHtml(B->graph(), "sample");
  EXPECT_NE(H.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(H.find("const AG = {"), std::string::npos);
  EXPECT_NE(H.find("<title>sample</title>"), std::string::npos);
  // The embedded JSON must not close the script tag early.
  size_t ScriptStart = H.find("<script>");
  size_t ScriptEnd = H.find("</script>");
  ASSERT_NE(ScriptStart, std::string::npos);
  ASSERT_NE(ScriptEnd, std::string::npos);
  std::string Body = H.substr(ScriptStart, ScriptEnd - ScriptStart);
  EXPECT_EQ(Body.find("</"), std::string::npos)
      << "unescaped close tag inside script";
  // Warnings section present.
  EXPECT_NE(H.find("Dead Emits"), std::string::npos);
}

} // namespace
