//===- EventLoopTest.cpp - event-loop dispatch semantics (§II-B) --------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins down the event-loop semantics of Fig. 2: phase ordering, micro-task
/// priority (nextTick over promise, mutual scheduling), immediate-vs-I/O
/// fairness, timer behaviour, cancellation, and the tick budget.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "node/Fs.h"

#include <gtest/gtest.h>

using namespace asyncg;
using namespace asyncg::jsrt;
using namespace asyncg::testhelpers;

namespace {

TEST(EventLoop, PhasePriorityOrder) {
  Runtime RT;
  std::vector<std::string> Log;
  RT.fileSystem().putFile("f", "x");
  runMain(RT, [&](Runtime &R) {
    node::Fs Fs(R);
    Fs.readFile(JSLOC, "f", recorder(R, Log, "io"));
    R.setImmediate(JSLOC, recorder(R, Log, "immediate"));
    R.setTimeout(JSLOC, recorder(R, Log, "timer"), 0);
    PromiseRef P = R.promiseResolvedWith(JSLOC, Value::number(0));
    R.promiseThen(JSLOC, P, recorder(R, Log, "promise"));
    R.nextTick(JSLOC, recorder(R, Log, "nexttick"));
  });
  // Micro-tasks first (nextTick before promise). Among the macro phases
  // the immediate is runnable at t=0 already, the fs completion becomes
  // due at the 100us fs latency, and the 0ms timer was clamped to 1ms.
  ASSERT_EQ(Log.size(), 5u);
  EXPECT_EQ(Log[0], "nexttick");
  EXPECT_EQ(Log[1], "promise");
  EXPECT_EQ(Log[2], "immediate");
  EXPECT_EQ(Log[3], "io");
  EXPECT_EQ(Log[4], "timer");
}

TEST(EventLoop, MicrotasksScheduleEachOther) {
  Runtime RT;
  std::vector<std::string> Log;
  runMain(RT, [&](Runtime &R) {
    PromiseRef P = R.promiseResolvedWith(JSLOC, Value::number(0));
    R.promiseThen(JSLOC, P,
                  R.makeFunction("fromPromise", JSLOC,
                                 [&Log](Runtime &R2, const CallArgs &) {
                                   Log.push_back("promise1");
                                   R2.nextTick(JSLOC,
                                               recorder(R2, Log,
                                                        "tickFromPromise"));
                                   return Completion::normal();
                                 }));
    R.nextTick(JSLOC,
               R.makeFunction("fromTick", JSLOC,
                              [&Log](Runtime &R2, const CallArgs &) {
                                Log.push_back("tick1");
                                PromiseRef P2 = R2.promiseResolvedWith(
                                    JSLOC, Value::number(1));
                                R2.promiseThen(
                                    JSLOC, P2,
                                    recorder(R2, Log, "promiseFromTick"));
                                return Completion::normal();
                              }));
  });
  // tick1 runs first (nextTick priority), then promise micro-tasks, and a
  // nextTick scheduled from a promise jumps ahead of remaining promises.
  ASSERT_EQ(Log.size(), 4u);
  EXPECT_EQ(Log[0], "tick1");
  EXPECT_EQ(Log[1], "promise1");
  EXPECT_EQ(Log[2], "tickFromPromise");
  EXPECT_EQ(Log[3], "promiseFromTick");
}

TEST(EventLoop, IoInterleavesWithImmediateChain) {
  // Fig. 3(b): a self-rescheduling setImmediate chain (the fixed Fig. 1
  // program) lets polled I/O events in between check phases, unlike the
  // recursive-nextTick version.
  Runtime RT;
  RT.fileSystem().putFile("f", "x");
  int Hops = 0;
  int HopsWhenIoArrived = -1;
  runMain(RT, [&](Runtime &R) {
    node::Fs Fs(R);
    Fs.readFile(JSLOC, "f",
                R.makeBuiltin("onRead",
                              [&](Runtime &, const CallArgs &) {
                                HopsWhenIoArrived = Hops;
                                return Completion::normal();
                              }));
    Function Chain = R.makeBuiltin("chain", nullptr);
    Chain.ref()->Body = [&, Chain](Runtime &R2, const CallArgs &) {
      if (++Hops < 5000 && HopsWhenIoArrived < 0)
        R2.setImmediate(JSLOC, Chain);
      return Completion::normal();
    };
    R.setImmediate(JSLOC, Chain);
  });
  // The I/O event arrived while the chain was still running: interleaved.
  ASSERT_GE(HopsWhenIoArrived, 1);
  EXPECT_LT(HopsWhenIoArrived, 5000);
}

TEST(EventLoop, ImmediateScheduledDuringCheckWaitsForNextIteration) {
  Runtime RT;
  std::vector<std::string> Log;
  runMain(RT, [&](Runtime &R) {
    R.setImmediate(JSLOC,
                   R.makeFunction("imm1", JSLOC,
                                  [&Log](Runtime &R2, const CallArgs &) {
                                    Log.push_back("imm1");
                                    R2.setImmediate(JSLOC,
                                                    recorder(R2, Log,
                                                             "imm2"));
                                    return Completion::normal();
                                  }));
    R.setImmediate(JSLOC, recorder(R, Log, "imm1b"));
  });
  // imm1 and imm1b run in the same check phase; imm2 in the next one.
  EXPECT_EQ(Log, (std::vector<std::string>{"imm1", "imm1b", "imm2"}));
}

TEST(EventLoop, TimerOrderingByDeadline) {
  Runtime RT;
  std::vector<std::string> Log;
  runMain(RT, [&](Runtime &R) {
    R.setTimeout(JSLOC, recorder(R, Log, "t30"), 30);
    R.setTimeout(JSLOC, recorder(R, Log, "t10"), 10);
    R.setTimeout(JSLOC, recorder(R, Log, "t20"), 20);
  });
  EXPECT_EQ(Log, (std::vector<std::string>{"t10", "t20", "t30"}));
}

TEST(EventLoop, ExpiredTimersRunInRegistrationOrder) {
  // §VI-A.1c: when the loop is blocked past both deadlines, the earlier
  // registered timer runs first even with the larger timeout.
  Runtime RT;
  std::vector<std::string> Log;
  runMain(RT, [&](Runtime &R) {
    R.setTimeout(JSLOC, recorder(R, Log, "foo101"), 101);
    R.setTimeout(JSLOC, recorder(R, Log, "bar100"), 100);
    // Block the loop past both deadlines with a long busy main phase.
    R.clock().advanceBy(sim::millis(500));
  });
  EXPECT_EQ(Log, (std::vector<std::string>{"foo101", "bar100"}));
}

TEST(EventLoop, ZeroTimeoutClampedToOneMs) {
  Runtime RT;
  sim::SimTime FireTime = 0;
  runMain(RT, [&](Runtime &R) {
    R.setTimeout(JSLOC,
                 R.makeBuiltin("t",
                               [&FireTime](Runtime &R2, const CallArgs &) {
                                 FireTime = R2.clock().now();
                                 return Completion::normal();
                               }),
                 0);
  });
  EXPECT_EQ(FireTime, sim::millis(1));
}

TEST(EventLoop, ClampingCanBeDisabled) {
  RuntimeConfig Cfg;
  Cfg.ClampZeroTimeout = false;
  Cfg.TickCostUs = 0; // exact fire-time comparison below
  Runtime RT(Cfg);
  sim::SimTime FireTime = 1;
  runMain(RT, [&](Runtime &R) {
    R.setTimeout(JSLOC,
                 R.makeBuiltin("t",
                               [&FireTime](Runtime &R2, const CallArgs &) {
                                 FireTime = R2.clock().now();
                                 return Completion::normal();
                               }),
                 0);
  });
  EXPECT_EQ(FireTime, 0u);
}

TEST(EventLoop, IntervalRepeatsAndClears) {
  Runtime RT;
  int Count = 0;
  runMain(RT, [&](Runtime &R) {
    auto Handle = std::make_shared<TimerHandle>();
    *Handle = R.setInterval(
        JSLOC,
        R.makeBuiltin("interval",
                      [&Count, Handle](Runtime &R2, const CallArgs &) {
                        if (++Count == 3) {
                          // The interval is currently running, so the heap
                          // no longer holds it; the re-add is suppressed.
                          EXPECT_FALSE(R2.clearTimer(*Handle));
                        }
                        return Completion::normal();
                      }),
        10);
  });
  EXPECT_EQ(Count, 3);
}

TEST(EventLoop, ClearTimeoutPreventsExecution) {
  Runtime RT;
  int Ran = 0;
  runMain(RT, [&](Runtime &R) {
    TimerHandle H = R.setTimeout(JSLOC,
                                 R.makeBuiltin("t",
                                               [&Ran](Runtime &,
                                                      const CallArgs &) {
                                                 ++Ran;
                                                 return Completion::normal();
                                               }),
                                 10);
    EXPECT_TRUE(R.clearTimer(H));
  });
  EXPECT_EQ(Ran, 0);
}

TEST(EventLoop, ClearImmediate) {
  Runtime RT;
  std::vector<std::string> Log;
  runMain(RT, [&](Runtime &R) {
    ImmediateHandle H = R.setImmediate(JSLOC, recorder(R, Log, "a"));
    R.setImmediate(JSLOC, recorder(R, Log, "b"));
    EXPECT_TRUE(R.clearImmediate(H));
    EXPECT_FALSE(R.clearImmediate(H));
  });
  EXPECT_EQ(Log, (std::vector<std::string>{"b"}));
}

TEST(EventLoop, NextTickArgsArePassed) {
  Runtime RT;
  double Got = 0;
  std::string GotS;
  runMain(RT, [&](Runtime &R) {
    R.nextTick(JSLOC,
               R.makeBuiltin("cb",
                             [&](Runtime &, const CallArgs &A) {
                               Got = A.arg(0).asNumber();
                               GotS = A.arg(1).asString();
                               return Completion::normal();
                             }),
               {Value::number(7), Value::str("x")});
  });
  EXPECT_EQ(Got, 7);
  EXPECT_EQ(GotS, "x");
}

TEST(EventLoop, UncaughtErrorsAreRecorded) {
  Runtime RT;
  runMain(RT, [&](Runtime &R) {
    R.setTimeout(JSLOC,
                 R.makeFunction("thrower", JSLINE("x.js", 3),
                                [](Runtime &, const CallArgs &) {
                                  return Completion::error("boom");
                                }),
                 1);
  });
  ASSERT_EQ(RT.uncaughtErrors().size(), 1u);
  EXPECT_EQ(RT.uncaughtErrors()[0].Error.asString(), "boom");
  EXPECT_EQ(RT.uncaughtErrors()[0].Loc.line(), 3u);
}

TEST(EventLoop, StopRequestHaltsTheLoop) {
  Runtime RT;
  int Count = 0;
  runMain(RT, [&](Runtime &R) {
    Function Self = R.makeBuiltin("loop", nullptr);
    Self.ref()->Body = [&Count, Self](Runtime &R2, const CallArgs &) {
      if (++Count == 5)
        R2.stop();
      else
        R2.setImmediate(JSLOC, Self);
      return Completion::normal();
    };
    R.setImmediate(JSLOC, Self);
  });
  EXPECT_EQ(Count, 5);
  EXPECT_FALSE(RT.tickBudgetExhausted());
}

TEST(EventLoop, TickBudgetStopsStarvation) {
  RuntimeConfig Cfg;
  Cfg.MaxTicks = 25;
  Runtime RT(Cfg);
  int Count = 0;
  runMain(RT, [&](Runtime &R) {
    Function Self = R.makeBuiltin("spin", nullptr);
    Self.ref()->Body = [&Count, Self](Runtime &R2, const CallArgs &) {
      ++Count;
      R2.nextTick(JSLOC, Self);
      return Completion::normal();
    };
    R.nextTick(JSLOC, Self);
  });
  EXPECT_TRUE(RT.tickBudgetExhausted());
  EXPECT_LE(RT.tickCount(), 25u);
  EXPECT_GT(Count, 10);
}

TEST(EventLoop, VirtualTimeOnlyAdvancesWhenIdle) {
  Runtime RT;
  std::vector<sim::SimTime> Times;
  runMain(RT, [&](Runtime &R) {
    R.setTimeout(JSLOC,
                 R.makeBuiltin("a",
                               [&Times](Runtime &R2, const CallArgs &) {
                                 Times.push_back(R2.clock().now());
                                 return Completion::normal();
                               }),
                 5);
    R.setTimeout(JSLOC,
                 R.makeBuiltin("b",
                               [&Times](Runtime &R2, const CallArgs &) {
                                 Times.push_back(R2.clock().now());
                                 return Completion::normal();
                               }),
                 50);
  });
  ASSERT_EQ(Times.size(), 2u);
  EXPECT_EQ(Times[0], sim::millis(5));
  EXPECT_EQ(Times[1], sim::millis(50));
}

TEST(EventLoop, CloseCallbacksRunLast) {
  Runtime RT;
  std::vector<std::string> Log;
  runMain(RT, [&](Runtime &R) {
    R.scheduleCloseCallback(JSLOC, recorder(R, Log, "close"));
    R.setImmediate(JSLOC, recorder(R, Log, "immediate"));
    R.nextTick(JSLOC, recorder(R, Log, "tick"));
  });
  EXPECT_EQ(Log,
            (std::vector<std::string>{"tick", "immediate", "close"}));
}

TEST(EventLoop, NestedCallsShareTheTick) {
  Runtime RT;
  std::vector<uint64_t> Ticks;
  runMain(RT, [&](Runtime &R) {
    Function Inner = R.makeBuiltin("inner", [&](Runtime &R2,
                                                const CallArgs &) {
      Ticks.push_back(R2.tickCount());
      return Completion::normal();
    });
    Ticks.push_back(R.tickCount());
    R.call(Inner);
    R.call(Inner);
  });
  ASSERT_EQ(Ticks.size(), 3u);
  EXPECT_EQ(Ticks[0], Ticks[1]);
  EXPECT_EQ(Ticks[1], Ticks[2]);
}

TEST(EventLoop, StatsCountTicks) {
  Runtime RT;
  runMain(RT, [&](Runtime &R) {
    R.nextTick(JSLOC, R.makeBuiltin("t", [](Runtime &, const CallArgs &) {
      return Completion::normal();
    }));
  });
  EXPECT_EQ(RT.stats().get("jsrt.ticks"), 2); // main + nexttick
}

TEST(EventLoop, BeforeExitFiresOnDrain) {
  Runtime RT;
  int Fires = 0;
  runMain(RT, [&](Runtime &R) {
    R.emitterOn(JSLOC, R.process(), "beforeExit",
                R.makeBuiltin("onBeforeExit",
                              [&Fires](Runtime &, const CallArgs &) {
                                ++Fires;
                                return Completion::normal();
                              }));
  });
  // Emitted once; the listener scheduled nothing, so the loop exited.
  EXPECT_EQ(Fires, 1);
}

TEST(EventLoop, BeforeExitCanKeepTheLoopAlive) {
  Runtime RT;
  std::vector<std::string> Log;
  int Fires = 0;
  runMain(RT, [&](Runtime &R) {
    R.setTimeout(JSLOC, recorder(R, Log, "work1"), 1);
    R.emitterOn(JSLOC, R.process(), "beforeExit",
                R.makeBuiltin("onBeforeExit",
                              [&Fires, &Log](Runtime &R2, const CallArgs &) {
                                if (++Fires == 1)
                                  R2.setTimeout(JSLOC,
                                                recorder(R2, Log, "work2"),
                                                1);
                                return Completion::normal();
                              }));
  });
  // First drain -> beforeExit schedules work2 -> second drain -> second
  // beforeExit schedules nothing -> exit.
  EXPECT_EQ(Fires, 2);
  EXPECT_EQ(Log, (std::vector<std::string>{"work1", "work2"}));
}

TEST(EventLoop, NoBeforeExitListenersNoExtraTicks) {
  Runtime RT;
  runMain(RT, [&](Runtime &R) { (void)R.process(); });
  EXPECT_EQ(RT.stats().get("jsrt.ticks"), 1); // just main
}

} // namespace
