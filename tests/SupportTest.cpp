//===- SupportTest.cpp - unit tests for the support library -------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"
#include "support/JsonWriter.h"
#include "support/SourceLocation.h"
#include "support/Statistic.h"

#include <gtest/gtest.h>

using namespace asyncg;

namespace {

TEST(Format, StrFormatBasic) {
  EXPECT_EQ(strFormat("x=%d", 42), "x=42");
  EXPECT_EQ(strFormat("%s-%s", "a", "b"), "a-b");
  EXPECT_EQ(strFormat("empty"), "empty");
  EXPECT_EQ(strFormat("%05.1f", 2.25), "002.2");
}

TEST(Format, StrFormatLongStrings) {
  std::string Long(5000, 'x');
  EXPECT_EQ(strFormat("%s!", Long.c_str()).size(), 5001u);
}

TEST(Format, JoinStrings) {
  EXPECT_EQ(joinStrings({}, ","), "");
  EXPECT_EQ(joinStrings({"a"}, ","), "a");
  EXPECT_EQ(joinStrings({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Format, EscapeString) {
  EXPECT_EQ(escapeString("plain"), "plain");
  EXPECT_EQ(escapeString("a\"b"), "a\\\"b");
  EXPECT_EQ(escapeString("a\\b"), "a\\\\b");
  EXPECT_EQ(escapeString("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(escapeString(std::string(1, '\x01')), "\\u0001");
}

TEST(Format, StartsEndsWith) {
  EXPECT_TRUE(startsWith("REQ GET /", "REQ "));
  EXPECT_FALSE(startsWith("RE", "REQ"));
  EXPECT_TRUE(endsWith("file.dot", ".dot"));
  EXPECT_FALSE(endsWith("dot", ".dot"));
  EXPECT_TRUE(startsWith("", ""));
}

TEST(Format, SplitString) {
  auto P = splitString("a=1&b=2&c", '&');
  ASSERT_EQ(P.size(), 3u);
  EXPECT_EQ(P[0], "a=1");
  EXPECT_EQ(P[2], "c");
  EXPECT_EQ(splitString("", ',').size(), 1u);
  EXPECT_EQ(splitString("a,,b", ',').size(), 3u);
  EXPECT_EQ(splitString("a,,b", ',')[1], "");
}

TEST(Format, FormatNumber) {
  EXPECT_EQ(formatNumber(42), "42");
  EXPECT_EQ(formatNumber(-3), "-3");
  EXPECT_EQ(formatNumber(1.5), "1.5");
  EXPECT_EQ(formatNumber(0.25), "0.25");
  EXPECT_EQ(formatNumber(0), "0");
  EXPECT_EQ(formatNumber(0.0 / 0.0), "NaN");
  EXPECT_EQ(formatNumber(1.0 / 0.0), "Infinity");
  EXPECT_EQ(formatNumber(-1.0 / 0.0), "-Infinity");
}

TEST(SourceLocation, Basics) {
  SourceLocation L("app.js", 7);
  EXPECT_TRUE(L.isValid());
  EXPECT_FALSE(L.isInternal());
  EXPECT_EQ(L.str(), "app.js:7");
  EXPECT_EQ(L.shortStr(), "L7");

  SourceLocation Internal = SourceLocation::internal();
  EXPECT_TRUE(Internal.isInternal());
  EXPECT_EQ(Internal.str(), "*");
  EXPECT_EQ(Internal.shortStr(), "*");

  SourceLocation Invalid;
  EXPECT_FALSE(Invalid.isValid());
  EXPECT_EQ(Invalid.str(), "<unknown>");
}

TEST(SourceLocation, Equality) {
  EXPECT_EQ(SourceLocation("a.js", 1), SourceLocation("a.js", 1));
  EXPECT_NE(SourceLocation("a.js", 1), SourceLocation("a.js", 2));
  EXPECT_NE(SourceLocation("a.js", 1), SourceLocation("b.js", 1));
}

TEST(SourceLocation, JslocMacro) {
  SourceLocation L = JSLOC;
  EXPECT_TRUE(endsWith(std::string(L.file()), "SupportTest.cpp"));
  EXPECT_GT(L.line(), 0u);
}

TEST(JsonWriter, FlatObject) {
  JsonWriter W;
  W.beginObject();
  W.field("a", 1);
  W.field("b", "two");
  W.field("c", true);
  W.key("d");
  W.nullValue();
  W.endObject();
  EXPECT_EQ(W.take(), "{\"a\":1,\"b\":\"two\",\"c\":true,\"d\":null}");
}

TEST(JsonWriter, NestedArrays) {
  JsonWriter W;
  W.beginArray();
  W.value(1);
  W.beginArray();
  W.value(2.5);
  W.endArray();
  W.beginObject();
  W.field("k", "v");
  W.endObject();
  W.endArray();
  EXPECT_EQ(W.take(), "[1,[2.5],{\"k\":\"v\"}]");
}

TEST(JsonWriter, EscapesKeysAndValues) {
  JsonWriter W;
  W.beginObject();
  W.field("a\"b", "c\nd");
  W.endObject();
  EXPECT_EQ(W.take(), "{\"a\\\"b\":\"c\\nd\"}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter W;
  W.beginArray();
  W.value(0.0 / 0.0);
  W.value(1e18); // large but finite
  W.endArray();
  std::string S = W.take();
  EXPECT_TRUE(startsWith(S, "[null,"));
}

TEST(Statistic, Counters) {
  StatisticSet S;
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.get("x"), 0);
  S.add("x");
  S.add("x", 4);
  S.add("y", -2);
  EXPECT_EQ(S.get("x"), 5);
  EXPECT_EQ(S.get("y"), -2);
  EXPECT_EQ(S.str(), "x=5\ny=-2\n");
  S.clear();
  EXPECT_TRUE(S.empty());
}

TEST(Statistic, RunningStat) {
  RunningStat R;
  EXPECT_EQ(R.count(), 0u);
  EXPECT_EQ(R.mean(), 0.0);
  R.sample(2);
  R.sample(4);
  R.sample(9);
  EXPECT_EQ(R.count(), 3u);
  EXPECT_EQ(R.min(), 2.0);
  EXPECT_EQ(R.max(), 9.0);
  EXPECT_DOUBLE_EQ(R.mean(), 5.0);
  EXPECT_DOUBLE_EQ(R.sum(), 15.0);
}

} // namespace
