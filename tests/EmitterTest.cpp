//===- EmitterTest.cpp - EventEmitter semantics tests --------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace asyncg;
using namespace asyncg::jsrt;
using namespace asyncg::testhelpers;

namespace {

TEST(Emitter, ListenersRunSynchronouslyInOrder) {
  Runtime RT;
  std::vector<std::string> Log;
  runMain(RT, [&](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLOC);
    R.emitterOn(JSLOC, E, "x", recorder(R, Log, "first"));
    R.emitterOn(JSLOC, E, "x", recorder(R, Log, "second"));
    Log.push_back("pre");
    EXPECT_TRUE(R.emitterEmit(JSLOC, E, "x"));
    Log.push_back("post");
  });
  EXPECT_EQ(Log, (std::vector<std::string>{"pre", "first", "second",
                                           "post"}));
}

TEST(Emitter, EmitReturnsFalseWithoutListeners) {
  Runtime RT;
  runMain(RT, [&](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLOC);
    EXPECT_FALSE(R.emitterEmit(JSLOC, E, "nothing"));
  });
}

TEST(Emitter, EmitPassesArguments) {
  Runtime RT;
  double N = 0;
  std::string S;
  runMain(RT, [&](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLOC);
    R.emitterOn(JSLOC, E, "pair",
                R.makeFunction("l", JSLOC,
                               [&](Runtime &, const CallArgs &A) {
                                 N = A.arg(0).asNumber();
                                 S = A.arg(1).asString();
                                 return Completion::normal();
                               }));
    R.emitterEmit(JSLOC, E, "pair", {Value::number(4), Value::str("ok")});
  });
  EXPECT_EQ(N, 4);
  EXPECT_EQ(S, "ok");
}

TEST(Emitter, OnceFiresExactlyOnce) {
  Runtime RT;
  int Count = 0;
  runMain(RT, [&](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLOC);
    R.emitterOnce(JSLOC, E, "x",
                  R.makeBuiltin("once", [&Count](Runtime &,
                                                 const CallArgs &) {
                    ++Count;
                    return Completion::normal();
                  }));
    R.emitterEmit(JSLOC, E, "x");
    R.emitterEmit(JSLOC, E, "x");
    EXPECT_EQ(E->listenerCount("x"), 0u);
  });
  EXPECT_EQ(Count, 1);
}

TEST(Emitter, PrependListenerRunsFirst) {
  Runtime RT;
  std::vector<std::string> Log;
  runMain(RT, [&](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLOC);
    R.emitterOn(JSLOC, E, "x", recorder(R, Log, "normal"));
    R.emitterPrepend(JSLOC, E, "x", recorder(R, Log, "prepended"));
    R.emitterEmit(JSLOC, E, "x");
  });
  EXPECT_EQ(Log, (std::vector<std::string>{"prepended", "normal"}));
}

TEST(Emitter, RemoveListenerByIdentity) {
  Runtime RT;
  std::vector<std::string> Log;
  runMain(RT, [&](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLOC);
    Function L = recorder(R, Log, "kept");
    Function M = recorder(R, Log, "removed");
    R.emitterOn(JSLOC, E, "x", L);
    R.emitterOn(JSLOC, E, "x", M);
    EXPECT_TRUE(R.emitterRemoveListener(JSLOC, E, "x", M));
    // Removing a look-alike function fails (identity semantics).
    Function LookAlike = recorder(R, Log, "kept");
    EXPECT_FALSE(R.emitterRemoveListener(JSLOC, E, "x", LookAlike));
    R.emitterEmit(JSLOC, E, "x");
  });
  EXPECT_EQ(Log, (std::vector<std::string>{"kept"}));
}

TEST(Emitter, RemoveFirstMatchingOnly) {
  Runtime RT;
  int Count = 0;
  runMain(RT, [&](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLOC);
    Function L = R.makeBuiltin("l", [&Count](Runtime &, const CallArgs &) {
      ++Count;
      return Completion::normal();
    });
    R.emitterOn(JSLOC, E, "x", L);
    R.emitterOn(JSLOC, E, "x", L); // duplicate registration
    EXPECT_TRUE(R.emitterRemoveListener(JSLOC, E, "x", L));
    EXPECT_EQ(E->listenerCount("x"), 1u);
    R.emitterEmit(JSLOC, E, "x");
  });
  EXPECT_EQ(Count, 1);
}

TEST(Emitter, RemoveAllListeners) {
  Runtime RT;
  runMain(RT, [&](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLOC);
    Function L = R.makeBuiltin("l", [](Runtime &, const CallArgs &) {
      return Completion::normal();
    });
    R.emitterOn(JSLOC, E, "x", L);
    R.emitterOn(JSLOC, E, "x", L);
    R.emitterOn(JSLOC, E, "y", L);
    R.emitterRemoveAll(JSLOC, E, "x");
    EXPECT_EQ(E->listenerCount("x"), 0u);
    EXPECT_EQ(E->listenerCount("y"), 1u);
  });
}

TEST(Emitter, MutationDuringEmitUsesSnapshot) {
  Runtime RT;
  std::vector<std::string> Log;
  runMain(RT, [&](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLOC);
    Function Late = recorder(R, Log, "late");
    R.emitterOn(JSLOC, E, "x",
                R.makeBuiltin("adder", [&Log, E, Late](Runtime &R2,
                                                       const CallArgs &) {
                  Log.push_back("adder");
                  // Added during emission: not invoked by THIS emit.
                  R2.emitterOn(JSLOC, E, "x", Late);
                  return Completion::normal();
                }));
    R.emitterEmit(JSLOC, E, "x");
    EXPECT_EQ(Log, (std::vector<std::string>{"adder"}));
    R.emitterEmit(JSLOC, E, "x");
  });
  EXPECT_EQ(Log, (std::vector<std::string>{"adder", "adder", "late"}));
}

TEST(Emitter, RemovalDuringEmitStillInvokesSnapshot) {
  Runtime RT;
  std::vector<std::string> Log;
  runMain(RT, [&](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLOC);
    Function Second = recorder(R, Log, "second");
    R.emitterOn(JSLOC, E, "x",
                R.makeBuiltin("remover", [&Log, E, Second](Runtime &R2,
                                                           const CallArgs &) {
                  Log.push_back("remover");
                  R2.emitterRemoveListener(JSLOC, E, "x", Second);
                  return Completion::normal();
                }));
    R.emitterOn(JSLOC, E, "x", Second);
    R.emitterEmit(JSLOC, E, "x");
    // Node snapshots the listener array at emit time.
    EXPECT_EQ(Log, (std::vector<std::string>{"remover", "second"}));
    R.emitterEmit(JSLOC, E, "x");
  });
  EXPECT_EQ(Log,
            (std::vector<std::string>{"remover", "second", "remover"}));
}

TEST(Emitter, UnhandledErrorEventBecomesUncaught) {
  Runtime RT;
  runMain(RT, [&](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLOC);
    R.emitterEmit(JSLINE("x.js", 9), E, "error", {Value::str("broken")});
  });
  ASSERT_EQ(RT.uncaughtErrors().size(), 1u);
  EXPECT_EQ(RT.uncaughtErrors()[0].Error.asString(), "broken");
}

TEST(Emitter, HandledErrorEventIsFine) {
  Runtime RT;
  std::vector<std::string> Log;
  runMain(RT, [&](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLOC);
    R.emitterOn(JSLOC, E, "error", recorder(R, Log, "handler"));
    R.emitterEmit(JSLOC, E, "error", {Value::str("broken")});
  });
  EXPECT_TRUE(RT.uncaughtErrors().empty());
  EXPECT_EQ(Log, (std::vector<std::string>{"handler"}));
}

TEST(Emitter, ThrowingListenerBecomesUncaughtAndOthersStillRun) {
  Runtime RT;
  std::vector<std::string> Log;
  runMain(RT, [&](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLOC);
    R.emitterOn(JSLOC, E, "x",
                R.makeFunction("thrower", JSLOC,
                               [](Runtime &, const CallArgs &) {
                                 return Completion::error("listener-boom");
                               }));
    R.emitterOn(JSLOC, E, "x", recorder(R, Log, "survivor"));
    R.emitterEmit(JSLOC, E, "x");
  });
  EXPECT_EQ(RT.uncaughtErrors().size(), 1u);
  EXPECT_EQ(Log, (std::vector<std::string>{"survivor"}));
}

TEST(Emitter, LiveEmittersTracksWeakly) {
  Runtime RT;
  EmitterRef Kept;
  runMain(RT, [&](Runtime &R) {
    Kept = R.emitterCreate(JSLOC, "KeptBus");
    R.emitterCreate(JSLOC, "DroppedBus");
  });
  auto Live = RT.liveEmitters();
  ASSERT_EQ(Live.size(), 1u);
  EXPECT_EQ(Live[0]->Name, "KeptBus");
}

} // namespace
