//===- JsrtSmokeTest.cpp - early smoke tests for the jsrt core --------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "jsrt/AsyncAwait.h"
#include "jsrt/Runtime.h"

#include <gtest/gtest.h>

using namespace asyncg;
using namespace asyncg::jsrt;

namespace {

TEST(JsrtSmoke, MicrotaskPriorityOverTimers) {
  Runtime RT;
  std::vector<std::string> Order;

  Function Main = RT.makeFunction("main", JSLOC, [&](Runtime &R,
                                                     const CallArgs &) {
    PromiseRef P = R.promiseResolvedWith(JSLOC, Value::number(0));
    R.promiseThen(JSLOC, P, R.makeFunction("thenCb", JSLOC,
                                           [&](Runtime &, const CallArgs &) {
                                             Order.push_back("promise");
                                             return Completion::normal();
                                           }));
    R.setTimeout(JSLOC,
                 R.makeFunction("timeoutCb", JSLOC,
                                [&](Runtime &, const CallArgs &) {
                                  Order.push_back("timeout");
                                  return Completion::normal();
                                }),
                 0);
    R.nextTick(JSLOC, R.makeFunction("tickCb", JSLOC,
                                     [&](Runtime &, const CallArgs &) {
                                       Order.push_back("nexttick");
                                       return Completion::normal();
                                     }));
    return Completion::normal();
  });

  RT.main(Main);
  ASSERT_EQ(Order.size(), 3u);
  EXPECT_EQ(Order[0], "nexttick");
  EXPECT_EQ(Order[1], "promise");
  EXPECT_EQ(Order[2], "timeout");
}

TEST(JsrtSmoke, EmitterSynchronousAndOnce) {
  Runtime RT;
  int OnCount = 0, OnceCount = 0;

  Function Main = RT.makeFunction("main", JSLOC, [&](Runtime &R,
                                                     const CallArgs &) {
    EmitterRef E = R.emitterCreate(JSLOC);
    R.emitterOn(JSLOC, E, "x",
                R.makeFunction("onX", JSLOC, [&](Runtime &, const CallArgs &) {
                  ++OnCount;
                  return Completion::normal();
                }));
    R.emitterOnce(JSLOC, E, "x",
                  R.makeFunction("onceX", JSLOC,
                                 [&](Runtime &, const CallArgs &) {
                                   ++OnceCount;
                                   return Completion::normal();
                                 }));
    EXPECT_TRUE(R.emitterEmit(JSLOC, E, "x"));
    EXPECT_TRUE(R.emitterEmit(JSLOC, E, "x"));
    EXPECT_FALSE(R.emitterEmit(JSLOC, E, "unknown"));
    return Completion::normal();
  });

  RT.main(Main);
  EXPECT_EQ(OnCount, 2);
  EXPECT_EQ(OnceCount, 1);
}

JsAsync addLater(Runtime &RT, AsyncOrigin, double A, double B) {
  PromiseRef P = RT.promiseBare(JSLOC, "delay");
  RT.setTimeout(JSLOC,
                RT.makeBuiltin("resolveDelay",
                               [P, A, B](Runtime &R, const CallArgs &) {
                                 R.resolvePromise(JSLOC, P,
                                                  Value::number(A + B));
                                 return Completion::normal();
                               }),
                5);
  Value V = co_await Await(P);
  co_return V;
}

TEST(JsrtSmoke, AsyncAwaitResolves) {
  Runtime RT;
  double Got = -1;

  Function Main = RT.makeFunction("main", JSLOC, [&](Runtime &R,
                                                     const CallArgs &) {
    JsAsync A = addLater(R, AsyncOrigin{"addLater", JSLOC}, 2, 3);
    R.promiseThen(JSLOC, A.promise(),
                  R.makeFunction("got", JSLOC,
                                 [&](Runtime &, const CallArgs &Args) {
                                   Got = Args.arg(0).asNumber();
                                   return Completion::normal();
                                 }));
    return Completion::normal();
  });

  RT.main(Main);
  EXPECT_EQ(Got, 5.0);
}

TEST(JsrtSmoke, RecursiveNextTickHitsBudget) {
  RuntimeConfig Cfg;
  Cfg.MaxTicks = 50;
  Runtime RT(Cfg);
  int Computes = 0;

  Function Compute = RT.makeFunction("compute", JSLOC, nullptr);
  Compute.ref()->Body = [&](Runtime &R, const CallArgs &) {
    ++Computes;
    R.nextTick(JSLOC, Compute);
    return Completion::normal();
  };

  Function Main =
      RT.makeFunction("main", JSLOC, [&](Runtime &R, const CallArgs &) {
        R.setTimeout(JSLOC,
                     R.makeFunction("never", JSLOC,
                                    [&](Runtime &, const CallArgs &) {
                                      ADD_FAILURE() << "timer must starve";
                                      return Completion::normal();
                                    }),
                     1);
        return R.call(Compute);
      });

  RT.main(Main);
  EXPECT_TRUE(RT.tickBudgetExhausted());
  EXPECT_GT(Computes, 10);
}

} // namespace
