//===- EpollKernelTest.cpp - real-traffic backend tests (Linux only) ----------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Tests for the epoll kernel/network backend: kernel-level timing and the
/// cancellation contract, wire edge paths (EAGAIN partial writes, peer
/// reset, backlog overflow), and — the acceptance gate — AcmeAir served
/// over real loopback TCP with the warning set and DOT output matching the
/// simulated kernel on the same scripted workload.
///
/// Each test that binds a port uses its own port number: ctest may run the
/// tests of this binary in parallel processes.
///
//===----------------------------------------------------------------------===//

#ifdef __linux__

#include "ag/Builder.h"
#include "apps/acmeair/App.h"
#include "apps/acmeair/Workload.h"
#include "apps/cluster/Harness.h"
#include "detect/Detectors.h"
#include "jsrt/Runtime.h"
#include "sim/EpollKernel.h"
#include "sim/EpollNetwork.h"
#include "viz/Dot.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace asyncg;
using namespace asyncg::jsrt;
using namespace asyncg::acmeair;

namespace {

/// Hook that asks the epoll kernel to stop serving once a predicate holds
/// (checked at tick boundaries, on the loop thread). Passive: adds nothing
/// to the graph, so parity runs stay comparable.
struct StopWhen : instr::AnalysisBase {
  const char *analysisName() const override { return "stop-when"; }
  void onTickBoundary(const instr::TickBoundaryEvent &) override {
    if (EK && Pred && Pred())
      EK->requestStop();
  }
  sim::EpollKernel *EK = nullptr;
  std::function<bool()> Pred;
};

/// Returns the runtime's kernel as an EpollKernel (test-only downcast; the
/// caller created the runtime with the epoll backend).
sim::EpollKernel &epollKernel(Runtime &RT) {
  return static_cast<sim::EpollKernel &>(RT.kernel());
}

std::vector<std::string> formatWarnings(const ag::AsyncGraph &G) {
  std::vector<std::string> Out;
  for (const ag::Warning &W : G.warnings()) {
    std::string S(ag::bugCategoryName(W.Category));
    S += ": ";
    S += W.Message.view();
    S += " (";
    S += W.Loc.str();
    S += ")";
    Out.push_back(std::move(S));
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

//===----------------------------------------------------------------------===//
// Kernel level
//===----------------------------------------------------------------------===//

TEST(EpollKernel, BackendIsSupportedOnLinux) {
  EXPECT_TRUE(sim::kernelBackendSupported(sim::KernelBackend::Epoll));
  sim::KernelBackend B;
  EXPECT_TRUE(sim::parseKernelBackend("epoll", B));
  EXPECT_EQ(B, sim::KernelBackend::Epoll);
  EXPECT_TRUE(sim::parseKernelBackend("sim", B));
  EXPECT_EQ(B, sim::KernelBackend::Sim);
  EXPECT_FALSE(sim::parseKernelBackend("uring", B));
}

TEST(EpollKernel, TimersFireInWallClockTime) {
  sim::Clock C;
  sim::EpollKernel K(C);
  ASSERT_TRUE(K.valid());
  std::vector<int> Order;
  K.submit(5000, [&] { Order.push_back(2); }); // 5 ms
  K.submit(1000, [&] { Order.push_back(1); }); // 1 ms
  auto T0 = std::chrono::steady_clock::now();
  while (Order.size() < 2) {
    ASSERT_TRUE(K.waitUntil(K.nextDeadline()));
    for (auto &A : K.takeDue())
      A();
  }
  auto ElapsedUs = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - T0)
                       .count();
  EXPECT_EQ(Order, (std::vector<int>{1, 2}));
  EXPECT_GE(ElapsedUs, 5000); // the 5 ms deadline was a real deadline
  EXPECT_FALSE(K.hasPending());
}

// The cancellation contract (sim/Kernel.h) holds identically on the real
// kernel: an op the kernel still holds — even one already due — cancels
// with a guarantee it never runs; one handed out by takeDue() does not.
TEST(EpollKernel, CancelContractMatchesSimKernel) {
  sim::Clock C;
  sim::EpollKernel K(C);
  ASSERT_TRUE(K.valid());
  int Ran = 0;

  sim::OpId Due = K.submit(1000, [&] { ++Ran; });
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  K.syncClock(); // Due is now past-deadline but still held by the kernel
  EXPECT_TRUE(K.cancel(Due));
  EXPECT_TRUE(K.takeDue().empty());
  EXPECT_EQ(Ran, 0);

  sim::OpId Taken = K.submit(1000, [&] { ++Ran; });
  ASSERT_TRUE(K.waitUntil(K.nextDeadline()));
  auto Batch = K.takeDue();
  ASSERT_EQ(Batch.size(), 1u);
  EXPECT_FALSE(K.cancel(Taken)); // already dispatched to the loop
  EXPECT_EQ(Ran, 0);
  for (auto &A : Batch)
    A();
  EXPECT_EQ(Ran, 1);
}

TEST(EpollKernel, ExternalSubmitWakesBlockedWait) {
  sim::Clock C;
  sim::EpollKernel K(C);
  ASSERT_TRUE(K.valid());
  bool Ran = false;
  K.submit(3'000'000, [] {}); // far deadline the wait should not reach
  std::thread Poster([&K] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    K.submitExternal([] {});
  });
  auto T0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(K.waitUntil(K.nextDeadline()));
  for (auto &A : K.takeDue()) {
    A();
    Ran = true;
  }
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - T0)
                       .count();
  Poster.join();
  EXPECT_TRUE(Ran);
  EXPECT_LT(ElapsedMs, 2000); // woke for the external op, not the timer
}

//===----------------------------------------------------------------------===//
// Wire edge paths
//===----------------------------------------------------------------------===//

/// Runs \p Script under a runtime on \p Backend with the full detector
/// suite attached; returns the sorted warning strings. Used to assert the
/// edge paths leave the graph in the same state on both backends. The
/// script receives the runtime and, on the epoll backend, the kernel (null
/// on sim) so it can request a stop once its work is done.
template <typename ScriptFn>
std::vector<std::string> runScripted(sim::KernelBackend Backend,
                                     ScriptFn Script) {
  RuntimeConfig RC;
  RC.Backend = Backend;
  RC.Wire = sim::WireFormat::Framed;
  Runtime RT(RC);
  sim::EpollKernel *EK =
      Backend == sim::KernelBackend::Epoll ? &epollKernel(RT) : nullptr;
  ag::AsyncGBuilder Builder;
  detect::DetectorSuite Detectors;
  Detectors.attachTo(Builder);
  RT.hooks().attach(&Builder);
  Function Main = RT.makeBuiltin("main", [&](Runtime &R, const CallArgs &) {
    Script(R, EK);
    return Completion::normal();
  });
  RT.main(Main);
  EXPECT_TRUE(RT.uncaughtErrors().empty());
  return formatWarnings(Builder.graph());
}

// A 16 MiB message does not fit the loopback socket buffers: the server's
// send hits EAGAIN repeatedly and finishes over EPOLLOUT rounds. The
// message must still arrive as one intact delivery (sim semantics).
TEST(EpollNetwork, PartialWritesReassembleLargeMessage) {
  const int Port = 9411;
  const std::string Big(16u << 20, 'x');
  std::string Received;
  std::vector<std::shared_ptr<sim::Socket>> Held;

  // Same script for both backends; EK is null on sim, where the loop
  // drains naturally once the kernel has no pending ops.
  auto Script = [&](Runtime &R, sim::EpollKernel *EK) {
    R.network().listen(Port, [&](std::shared_ptr<sim::Socket> S) {
      Held.push_back(S);
      S->write(Big);
      S->end();
    });
    bool Ok = R.network().connect(Port, [&, EK](std::shared_ptr<sim::Socket> S) {
      Held.push_back(S);
      S->onData([&, EK](const std::string &M) {
        Received = M;
        if (EK)
          EK->requestStop();
      });
    });
    EXPECT_TRUE(Ok);
  };

  std::vector<std::string> EpollWarnings =
      runScripted(sim::KernelBackend::Epoll, Script);
  ASSERT_EQ(Received.size(), Big.size());
  EXPECT_TRUE(Received == Big);

  Received.clear();
  Held.clear();
  std::vector<std::string> SimWarnings =
      runScripted(sim::KernelBackend::Sim, Script);
  EXPECT_TRUE(Received == Big);
  EXPECT_EQ(EpollWarnings, SimWarnings);
}

// Peer resets (destroy) while the server still owes it data: the server
// side must observe a close event — the sim analogue of destroy — and the
// loop must drain without leaking the graph or erroring.
TEST(EpollNetwork, PeerResetDeliversCloseEvent) {
  const int Port = 9412;
  bool ServerClosed = false;
  std::vector<std::shared_ptr<sim::Socket>> Held;

  auto Script = [&](Runtime &R, sim::EpollKernel *EK) {
    R.network().listen(Port, [&, EK](std::shared_ptr<sim::Socket> S) {
      Held.push_back(S);
      sim::Socket *Raw = S.get();
      Raw->onClose([&] { ServerClosed = true; });
      Raw->onData([Raw, EK](const std::string &) {
        // By the time this write lands the peer is gone: it is dropped
        // (sim) or fails against the torn-down fd (epoll) — silently.
        Raw->write("response");
        if (EK)
          EK->requestStop();
      });
    });
    bool Ok = R.network().connect(Port, [](std::shared_ptr<sim::Socket> S) {
      S->write("request");
      S->destroy(); // RST
    });
    EXPECT_TRUE(Ok);
  };

  std::vector<std::string> EpollWarnings =
      runScripted(sim::KernelBackend::Epoll, Script);
  EXPECT_TRUE(ServerClosed);

  ServerClosed = false;
  Held.clear();
  std::vector<std::string> SimWarnings =
      runScripted(sim::KernelBackend::Sim, Script);
  EXPECT_TRUE(ServerClosed);
  EXPECT_EQ(EpollWarnings, SimWarnings);
}

// More simultaneous connects than the listen backlog: the kernel drops the
// excess SYNs, the clients retransmit, and every connection is eventually
// accepted and served — no drops surface at the application layer.
TEST(EpollNetwork, BacklogOverflowEventuallyServesAll) {
  const int Port = 9413;
  const int NConns = 8;
  int Echoed = 0;

  RuntimeConfig RC;
  RC.Backend = sim::KernelBackend::Epoll;
  RC.Wire = sim::WireFormat::Framed;
  Runtime RT(RC);
  auto &Net = static_cast<sim::EpollNetwork &>(RT.network());

  std::vector<std::shared_ptr<sim::Socket>> Held;
  Function Main = RT.makeBuiltin("main", [&](Runtime &R, const CallArgs &) {
    bool Listening = Net.listenWithBacklog(
        Port,
        [&](std::shared_ptr<sim::Socket> S) {
          Held.push_back(S);
          sim::Socket *Raw = S.get();
          Raw->onData([Raw](const std::string &M) { Raw->write("echo:" + M); });
        },
        /*Backlog=*/1);
    EXPECT_TRUE(Listening);
    for (int I = 0; I != NConns; ++I) {
      bool Ok = R.network().connect(
          Port, [&, I](std::shared_ptr<sim::Socket> S) {
            Held.push_back(S);
            sim::Socket *Raw = S.get();
            Raw->onData([&, I](const std::string &M) {
              EXPECT_EQ(M, "echo:ping" + std::to_string(I));
              if (++Echoed == NConns)
                epollKernel(RT).requestStop();
            });
            Raw->write("ping" + std::to_string(I));
          });
      EXPECT_TRUE(Ok);
    }
    return Completion::normal();
  });
  RT.main(Main);

  EXPECT_EQ(Echoed, NConns);
  EXPECT_EQ(Net.acceptedCount(), static_cast<uint64_t>(NConns));
  EXPECT_TRUE(RT.uncaughtErrors().empty());
}

//===----------------------------------------------------------------------===//
// AcmeAir over real loopback HTTP: the acceptance gate
//===----------------------------------------------------------------------===//

struct AcmeRun {
  uint64_t Completed = 0;
  uint64_t Errors = 0;
  uint64_t Served = 0;
  std::vector<std::string> Warnings;
  std::string Dot;
};

AcmeRun runAcmeAir(sim::KernelBackend Backend, int Port, uint64_t Requests) {
  RuntimeConfig RC;
  RC.Backend = Backend;
  Runtime RT(RC);
  AppConfig ACfg;
  ACfg.Port = Port;
  AcmeAirApp App(RT, ACfg);
  WorkloadConfig WCfg;
  WCfg.TotalRequests = Requests;
  // One closed-loop client: the request sequence is strictly sequential,
  // so graph structure is comparable across backends (real concurrency
  // would reorder ticks).
  WCfg.Clients = 1;
  WorkloadDriver Driver(RT, Port, WCfg);

  ag::AsyncGBuilder Builder;
  detect::DetectorSuite Detectors;
  Detectors.attachTo(Builder);
  RT.hooks().attach(&Builder);

  StopWhen Stop;
  if (Backend == sim::KernelBackend::Epoll) {
    Stop.EK = &epollKernel(RT);
    Stop.Pred = [&Driver, Requests] {
      return Driver.completed() >= Requests;
    };
    RT.hooks().attach(&Stop);
  }

  Function Main = RT.makeBuiltin("main", [&](Runtime &R, const CallArgs &) {
    App.start(JSLOC);
    Driver.start();
    (void)R;
    return Completion::normal();
  });
  RT.main(Main);

  AcmeRun Out;
  Out.Completed = Driver.completed();
  Out.Errors = Driver.errors();
  Out.Served = App.served();
  Out.Warnings = formatWarnings(Builder.graph());
  Out.Dot = viz::toDot(Builder.graph());
  EXPECT_TRUE(RT.uncaughtErrors().empty());
  return Out;
}

TEST(EpollAcmeAir, ServesWireHttpWithSimParity) {
  const uint64_t Requests = 40;
  AcmeRun Epoll = runAcmeAir(sim::KernelBackend::Epoll, 9414, Requests);
  AcmeRun Sim = runAcmeAir(sim::KernelBackend::Sim, 9414, Requests);

  EXPECT_EQ(Epoll.Completed, Requests);
  EXPECT_EQ(Epoll.Errors, 0u);
  EXPECT_EQ(Epoll.Served, Requests);
  EXPECT_EQ(Sim.Completed, Requests);

  // The acceptance gate: same warnings, same graph (DOT carries no
  // timestamps, so equality is already "modulo timestamps").
  EXPECT_EQ(Epoll.Warnings, Sim.Warnings);
  EXPECT_EQ(Epoll.Dot, Sim.Dot);
}

//===----------------------------------------------------------------------===//
// SO_REUSEPORT cluster mode
//===----------------------------------------------------------------------===//

TEST(EpollCluster, ReuseportServesAcrossLoops) {
  cluster::ClusterConfig Cfg;
  Cfg.Backend = sim::KernelBackend::Epoll;
  Cfg.Port = 9415;
  Cfg.Loops = 2;
  Cfg.TotalClients = 4;
  Cfg.TotalRequests = 60;
  cluster::ClusterHarness H(Cfg);
  cluster::ClusterResult R = H.run();

  EXPECT_EQ(R.Wire.Completed, 60u);
  EXPECT_EQ(R.Wire.Errors, 0u);
  EXPECT_EQ(R.Wire.DroppedConns, 0u);
  EXPECT_GT(R.Wire.ReqPerSec, 0);
  uint64_t Served = 0;
  ASSERT_EQ(R.Shards.size(), 2u);
  for (const cluster::ShardResult &S : R.Shards)
    Served += S.Served;
  // The Linux kernel balances accepts across the SO_REUSEPORT group; which
  // shard serves how much is its choice, but nothing may be lost.
  EXPECT_EQ(Served, 60u);
  // Gossip crossed the loops and every delivery was drained.
  uint64_t Sent = 0, Received = 0;
  for (const cluster::ShardResult &S : R.Shards) {
    Sent += S.Sent;
    Received += S.Received;
  }
  EXPECT_GT(Sent, 0u);
  EXPECT_EQ(Sent, Received);
}

} // namespace

#else // !__linux__

#include "sim/Kernel.h"

#include <gtest/gtest.h>

TEST(EpollKernel, UnsupportedOnThisPlatform) {
  EXPECT_FALSE(asyncg::sim::kernelBackendSupported(
      asyncg::sim::KernelBackend::Epoll));
}

#endif // __linux__
