//===- EpollKernelTest.cpp - real-traffic backend matrix tests (Linux) -------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Backend-matrix tests for the real-traffic kernel/network backends: every
/// wire test runs parameterized over {epoll, io_uring}, skipping (loudly,
/// with the probe's reason) any backend the host cannot provide. Covered
/// per backend: kernel-level timing and the cancellation contract, the
/// kernel-syscall cost model, wire edge paths (EAGAIN partial writes, peer
/// reset, backlog overflow, cancellation on teardown), and — the
/// acceptance gate — AcmeAir served over real loopback TCP with the
/// warning set and DOT output matching the simulated kernel on the same
/// scripted workload (which also pins epoll/uring parity by transitivity).
///
/// Each test that binds a port uses its own port number, offset by the
/// backend under test: ctest may run this binary's tests in parallel
/// processes.
///
//===----------------------------------------------------------------------===//

#ifdef __linux__

#include "ag/Builder.h"
#include "apps/acmeair/App.h"
#include "apps/acmeair/Workload.h"
#include "apps/cluster/Harness.h"
#include "detect/Detectors.h"
#include "jsrt/Runtime.h"
#include "sim/EpollKernel.h"
#include "sim/EpollNetwork.h"
#include "sim/UringKernel.h"
#include "sim/UringNetwork.h"
#include "viz/Dot.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace asyncg;
using namespace asyncg::jsrt;
using namespace asyncg::acmeair;

namespace {

/// Hook that asks the real kernel to stop serving once a predicate holds
/// (checked at tick boundaries, on the loop thread). Passive: adds nothing
/// to the graph, so parity runs stay comparable.
struct StopWhen : instr::AnalysisBase {
  const char *analysisName() const override { return "stop-when"; }
  void onTickBoundary(const instr::TickBoundaryEvent &) override {
    if (RK && Pred && Pred())
      RK->requestStop();
  }
  sim::RealKernel *RK = nullptr;
  std::function<bool()> Pred;
};

/// Returns the runtime's kernel as a RealKernel (test-only downcast; the
/// caller created the runtime with a real backend).
sim::RealKernel &realKernel(Runtime &RT) {
  return static_cast<sim::RealKernel &>(RT.kernel());
}

/// Constructs a standalone kernel of the given real backend, or null when
/// construction failed (callers assert).
std::unique_ptr<sim::RealKernel> makeKernel(sim::KernelBackend B,
                                            sim::Clock &C) {
  std::unique_ptr<sim::RealKernel> K;
  if (B == sim::KernelBackend::Uring)
    K = std::make_unique<sim::UringKernel>(C);
  else
    K = std::make_unique<sim::EpollKernel>(C);
  if (!K->valid())
    return nullptr;
  return K;
}

uint64_t acceptedCount(Runtime &RT, sim::KernelBackend B) {
  if (B == sim::KernelBackend::Uring)
    return static_cast<sim::UringNetwork &>(RT.network()).acceptedCount();
  return static_cast<sim::EpollNetwork &>(RT.network()).acceptedCount();
}

std::vector<std::string> formatWarnings(const ag::AsyncGraph &G) {
  std::vector<std::string> Out;
  for (const ag::Warning &W : G.warnings()) {
    std::string S(ag::bugCategoryName(W.Category));
    S += ": ";
    S += W.Message.view();
    S += " (";
    S += W.Loc.str();
    S += ")";
    Out.push_back(std::move(S));
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

/// The backend matrix. Every TEST_P below runs once per real backend;
/// backends the host cannot provide skip with the capability probe's
/// reason (so CI on hosts without io_uring stays green and says why).
class BackendMatrix : public ::testing::TestWithParam<sim::KernelBackend> {
protected:
  void SetUp() override {
    std::string Why;
    if (!sim::kernelBackendAvailable(GetParam(), &Why))
      GTEST_SKIP() << "backend '" << sim::kernelBackendName(GetParam())
                   << "' unavailable on this host: " << Why;
  }

  /// A test-unique port, offset by the backend so the epoll and uring
  /// instantiations never collide when ctest shards run concurrently.
  int portFor(int Base) const { return Base + static_cast<int>(GetParam()); }
};

std::string backendParamName(
    const ::testing::TestParamInfo<sim::KernelBackend> &Info) {
  return sim::kernelBackendName(Info.param);
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendMatrix,
                         ::testing::Values(sim::KernelBackend::Epoll,
                                           sim::KernelBackend::Uring),
                         backendParamName);

//===----------------------------------------------------------------------===//
// Kernel level
//===----------------------------------------------------------------------===//

TEST(RealKernel, BackendNamesParseAndProbe) {
  EXPECT_TRUE(sim::kernelBackendSupported(sim::KernelBackend::Epoll));
  EXPECT_TRUE(sim::kernelBackendSupported(sim::KernelBackend::Uring));
  sim::KernelBackend B;
  EXPECT_TRUE(sim::parseKernelBackend("epoll", B));
  EXPECT_EQ(B, sim::KernelBackend::Epoll);
  EXPECT_TRUE(sim::parseKernelBackend("uring", B));
  EXPECT_EQ(B, sim::KernelBackend::Uring);
  EXPECT_TRUE(sim::parseKernelBackend("sim", B));
  EXPECT_EQ(B, sim::KernelBackend::Sim);
  EXPECT_FALSE(sim::parseKernelBackend("kqueue", B));

  // The probe always explains itself, and auto always resolves to an
  // available backend (sim at worst).
  std::string Why;
  sim::kernelBackendAvailable(sim::KernelBackend::Uring, &Why);
  EXPECT_FALSE(Why.empty());
  Why.clear();
  sim::KernelBackend Auto = sim::resolveAutoKernelBackend(&Why);
  EXPECT_FALSE(Why.empty());
  EXPECT_TRUE(sim::kernelBackendAvailable(Auto, nullptr));
  // The available-backend list the CLI error paths print always holds sim.
  EXPECT_NE(sim::availableKernelBackendNames().find("sim"),
            std::string::npos);
}

TEST_P(BackendMatrix, TimersFireInWallClockTime) {
  sim::Clock C;
  auto K = makeKernel(GetParam(), C);
  ASSERT_TRUE(K);
  // Deadlines are relative to the shared clock; sync it past the kernel's
  // construction cost (ring setup is ~1 ms on uring) before measuring.
  K->syncClock();
  std::vector<int> Order;
  K->submit(5000, [&] { Order.push_back(2); }); // 5 ms
  K->submit(1000, [&] { Order.push_back(1); }); // 1 ms
  auto T0 = std::chrono::steady_clock::now();
  while (Order.size() < 2) {
    ASSERT_TRUE(K->waitUntil(K->nextDeadline()));
    for (auto &A : K->takeDue())
      A();
  }
  auto ElapsedUs = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - T0)
                       .count();
  EXPECT_EQ(Order, (std::vector<int>{1, 2}));
  EXPECT_GE(ElapsedUs, 5000); // the 5 ms deadline was a real deadline
  EXPECT_FALSE(K->hasPending());
}

// The cancellation contract (sim/Kernel.h) holds identically on every real
// kernel: an op the kernel still holds — even one already due — cancels
// with a guarantee it never runs; one handed out by takeDue() does not.
TEST_P(BackendMatrix, CancelContractMatchesSimKernel) {
  sim::Clock C;
  auto K = makeKernel(GetParam(), C);
  ASSERT_TRUE(K);
  int Ran = 0;

  sim::OpId Due = K->submit(1000, [&] { ++Ran; });
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  K->syncClock(); // Due is now past-deadline but still held by the kernel
  EXPECT_TRUE(K->cancel(Due));
  EXPECT_TRUE(K->takeDue().empty());
  EXPECT_EQ(Ran, 0);

  sim::OpId Taken = K->submit(1000, [&] { ++Ran; });
  ASSERT_TRUE(K->waitUntil(K->nextDeadline()));
  auto Batch = K->takeDue();
  ASSERT_EQ(Batch.size(), 1u);
  EXPECT_FALSE(K->cancel(Taken)); // already dispatched to the loop
  EXPECT_EQ(Ran, 0);
  for (auto &A : Batch)
    A();
  EXPECT_EQ(Ran, 1);
}

TEST_P(BackendMatrix, ExternalSubmitWakesBlockedWait) {
  sim::Clock C;
  auto K = makeKernel(GetParam(), C);
  ASSERT_TRUE(K);
  bool Ran = false;
  K->submit(3'000'000, [] {}); // far deadline the wait should not reach
  sim::RealKernel *Raw = K.get();
  std::thread Poster([Raw] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    Raw->submitExternal([] {});
  });
  auto T0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(K->waitUntil(K->nextDeadline()));
  for (auto &A : K->takeDue()) {
    A();
    Ran = true;
  }
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - T0)
                       .count();
  Poster.join();
  EXPECT_TRUE(Ran);
  EXPECT_LT(ElapsedMs, 2000); // woke for the external op, not the timer
}

// The kernel-syscall cost model: both backends count their OS entries, and
// the uring backend's defining property — batched SQE submission — shows
// up as submitted SQEs where epoll reports none.
TEST_P(BackendMatrix, KernelStatsModelTheBackend) {
  sim::Clock C;
  auto K = makeKernel(GetParam(), C);
  ASSERT_TRUE(K);
  int Ran = 0;
  K->submit(1000, [&] { ++Ran; });
  while (!Ran) {
    ASSERT_TRUE(K->waitUntil(K->nextDeadline()));
    for (auto &A : K->takeDue())
      A();
  }
  sim::KernelStats S = K->kernelStats();
  EXPECT_GT(S.Syscalls, 0u);
  EXPECT_GT(S.Enters, 0u);
  if (GetParam() == sim::KernelBackend::Uring) {
    EXPECT_GT(S.SqesSubmitted, 0u);
    EXPECT_GT(S.SubmitBatches, 0u);
    EXPECT_GE(S.MaxSqeBatch, 1u);
    EXPECT_GT(S.Completions, 0u);
  } else {
    EXPECT_EQ(S.SqesSubmitted, 0u); // epoll has no submission queue
    EXPECT_EQ(S.SubmitBatches, 0u);
  }
}

//===----------------------------------------------------------------------===//
// Wire edge paths
//===----------------------------------------------------------------------===//

/// Runs \p Script under a runtime on \p Backend with the full detector
/// suite attached; returns the sorted warning strings. Used to assert the
/// edge paths leave the graph in the same state on every backend. The
/// script receives the runtime and, on real backends, the kernel (null on
/// sim) so it can request a stop once its work is done.
template <typename ScriptFn>
std::vector<std::string> runScripted(sim::KernelBackend Backend,
                                     ScriptFn Script) {
  RuntimeConfig RC;
  RC.Backend = Backend;
  RC.Wire = sim::WireFormat::Framed;
  Runtime RT(RC);
  sim::RealKernel *RK =
      Backend != sim::KernelBackend::Sim ? &realKernel(RT) : nullptr;
  ag::AsyncGBuilder Builder;
  detect::DetectorSuite Detectors;
  Detectors.attachTo(Builder);
  RT.hooks().attach(&Builder);
  Function Main = RT.makeBuiltin("main", [&](Runtime &R, const CallArgs &) {
    Script(R, RK);
    return Completion::normal();
  });
  RT.main(Main);
  EXPECT_TRUE(RT.uncaughtErrors().empty());
  return formatWarnings(Builder.graph());
}

// A 16 MiB message does not fit the loopback socket buffers: the server's
// send hits EAGAIN/partial completions repeatedly and finishes over
// multiple readiness (epoll) or re-staged-send (uring) rounds. The message
// must still arrive as one intact delivery (sim semantics).
TEST_P(BackendMatrix, PartialWritesReassembleLargeMessage) {
  const int Port = portFor(9420);
  const std::string Big(16u << 20, 'x');
  std::string Received;
  std::vector<std::shared_ptr<sim::Socket>> Held;

  // Same script for both backends; RK is null on sim, where the loop
  // drains naturally once the kernel has no pending ops.
  auto Script = [&](Runtime &R, sim::RealKernel *RK) {
    R.network().listen(Port, [&](std::shared_ptr<sim::Socket> S) {
      Held.push_back(S);
      S->write(Big);
      S->end();
    });
    bool Ok = R.network().connect(Port, [&, RK](std::shared_ptr<sim::Socket> S) {
      Held.push_back(S);
      S->onData([&, RK](const std::string &M) {
        Received = M;
        if (RK)
          RK->requestStop();
      });
    });
    EXPECT_TRUE(Ok);
  };

  std::vector<std::string> WireWarnings = runScripted(GetParam(), Script);
  ASSERT_EQ(Received.size(), Big.size());
  EXPECT_TRUE(Received == Big);

  Received.clear();
  Held.clear();
  std::vector<std::string> SimWarnings =
      runScripted(sim::KernelBackend::Sim, Script);
  EXPECT_TRUE(Received == Big);
  EXPECT_EQ(WireWarnings, SimWarnings);
}

// Peer resets (destroy) while the server still owes it data: the server
// side must observe a close event — the sim analogue of destroy — and the
// loop must drain without leaking the graph or erroring.
TEST_P(BackendMatrix, PeerResetDeliversCloseEvent) {
  const int Port = portFor(9430);
  bool ServerClosed = false;
  std::vector<std::shared_ptr<sim::Socket>> Held;

  auto Script = [&](Runtime &R, sim::RealKernel *RK) {
    R.network().listen(Port, [&, RK](std::shared_ptr<sim::Socket> S) {
      Held.push_back(S);
      sim::Socket *Raw = S.get();
      Raw->onClose([&] { ServerClosed = true; });
      Raw->onData([Raw, RK](const std::string &) {
        // By the time this write lands the peer is gone: it is dropped
        // (sim) or fails against the torn-down fd (real) — silently.
        Raw->write("response");
        if (RK)
          RK->requestStop();
      });
    });
    bool Ok = R.network().connect(Port, [](std::shared_ptr<sim::Socket> S) {
      S->write("request");
      S->destroy(); // RST
    });
    EXPECT_TRUE(Ok);
  };

  std::vector<std::string> WireWarnings = runScripted(GetParam(), Script);
  EXPECT_TRUE(ServerClosed);

  ServerClosed = false;
  Held.clear();
  std::vector<std::string> SimWarnings =
      runScripted(sim::KernelBackend::Sim, Script);
  EXPECT_TRUE(ServerClosed);
  EXPECT_EQ(WireWarnings, SimWarnings);
}

// Teardown with reads/accepts still in flight: destroy() must cancel the
// staged kernel ops (epoll: unwatch; uring: ASYNC_CANCEL per the buffer
// ownership rules in DESIGN.md §5h) so the loop drains instead of waiting
// on a connection nobody will ever write to.
TEST_P(BackendMatrix, DestroyCancelsInFlightOps) {
  const int Port = portFor(9440);
  bool ClientGotData = false;

  auto Script = [&](Runtime &R, sim::RealKernel *RK) {
    R.network().listen(Port, [&](std::shared_ptr<sim::Socket> S) {
      // Server never writes; the client's pending recv can only be
      // retired by cancellation.
      (void)S;
    });
    bool Ok = R.network().connect(Port, [&, RK](std::shared_ptr<sim::Socket> S) {
      S->onData([&](const std::string &) { ClientGotData = true; });
      S->destroy(); // tears down with the recv (and accept) staged
      if (RK)
        RK->requestStop();
    });
    EXPECT_TRUE(Ok);
  };

  runScripted(GetParam(), Script);
  EXPECT_FALSE(ClientGotData);
}

// More simultaneous connects than the listen backlog: the kernel drops the
// excess SYNs, the clients retransmit, and every connection is eventually
// accepted and served — no drops surface at the application layer. (On
// uring the accepts arrive through the multishot accept SQE.)
TEST_P(BackendMatrix, BacklogOverflowEventuallyServesAll) {
  const int Port = portFor(9450);
  const int NConns = 8;
  int Echoed = 0;

  RuntimeConfig RC;
  RC.Backend = GetParam();
  RC.Wire = sim::WireFormat::Framed;
  Runtime RT(RC);

  std::vector<std::shared_ptr<sim::Socket>> Held;
  Function Main = RT.makeBuiltin("main", [&](Runtime &R, const CallArgs &) {
    bool Listening = R.network().listenWithBacklog(
        Port,
        [&](std::shared_ptr<sim::Socket> S) {
          Held.push_back(S);
          sim::Socket *Raw = S.get();
          Raw->onData([Raw](const std::string &M) { Raw->write("echo:" + M); });
        },
        /*Backlog=*/1);
    EXPECT_TRUE(Listening);
    for (int I = 0; I != NConns; ++I) {
      bool Ok = R.network().connect(
          Port, [&, I](std::shared_ptr<sim::Socket> S) {
            Held.push_back(S);
            sim::Socket *Raw = S.get();
            Raw->onData([&, I](const std::string &M) {
              EXPECT_EQ(M, "echo:ping" + std::to_string(I));
              if (++Echoed == NConns)
                realKernel(RT).requestStop();
            });
            Raw->write("ping" + std::to_string(I));
          });
      EXPECT_TRUE(Ok);
    }
    return Completion::normal();
  });
  RT.main(Main);

  EXPECT_EQ(Echoed, NConns);
  EXPECT_EQ(acceptedCount(RT, GetParam()), static_cast<uint64_t>(NConns));
  EXPECT_TRUE(RT.uncaughtErrors().empty());
}

//===----------------------------------------------------------------------===//
// AcmeAir over real loopback HTTP: the acceptance gate
//===----------------------------------------------------------------------===//

struct AcmeRun {
  uint64_t Completed = 0;
  uint64_t Errors = 0;
  uint64_t Served = 0;
  std::vector<std::string> Warnings;
  std::string Dot;
};

AcmeRun runAcmeAir(sim::KernelBackend Backend, int Port, uint64_t Requests) {
  RuntimeConfig RC;
  RC.Backend = Backend;
  Runtime RT(RC);
  AppConfig ACfg;
  ACfg.Port = Port;
  AcmeAirApp App(RT, ACfg);
  WorkloadConfig WCfg;
  WCfg.TotalRequests = Requests;
  // One closed-loop client: the request sequence is strictly sequential,
  // so graph structure is comparable across backends (real concurrency
  // would reorder ticks).
  WCfg.Clients = 1;
  WorkloadDriver Driver(RT, Port, WCfg);

  ag::AsyncGBuilder Builder;
  detect::DetectorSuite Detectors;
  Detectors.attachTo(Builder);
  RT.hooks().attach(&Builder);

  StopWhen Stop;
  if (Backend != sim::KernelBackend::Sim) {
    Stop.RK = &realKernel(RT);
    Stop.Pred = [&Driver, Requests] {
      return Driver.completed() >= Requests;
    };
    RT.hooks().attach(&Stop);
  }

  Function Main = RT.makeBuiltin("main", [&](Runtime &R, const CallArgs &) {
    App.start(JSLOC);
    Driver.start();
    (void)R;
    return Completion::normal();
  });
  RT.main(Main);

  AcmeRun Out;
  Out.Completed = Driver.completed();
  Out.Errors = Driver.errors();
  Out.Served = App.served();
  Out.Warnings = formatWarnings(Builder.graph());
  Out.Dot = viz::toDot(Builder.graph());
  EXPECT_TRUE(RT.uncaughtErrors().empty());
  return Out;
}

TEST_P(BackendMatrix, AcmeAirServesWireHttpWithSimParity) {
  const uint64_t Requests = 40;
  const int Port = portFor(9460);
  AcmeRun Wire = runAcmeAir(GetParam(), Port, Requests);
  AcmeRun Sim = runAcmeAir(sim::KernelBackend::Sim, Port, Requests);

  EXPECT_EQ(Wire.Completed, Requests);
  EXPECT_EQ(Wire.Errors, 0u);
  EXPECT_EQ(Wire.Served, Requests);
  EXPECT_EQ(Sim.Completed, Requests);

  // The acceptance gate: same warnings, same graph (DOT carries no
  // timestamps, so equality is already "modulo timestamps"). Both real
  // backends matching sim also pins epoll-vs-uring DOT parity.
  EXPECT_EQ(Wire.Warnings, Sim.Warnings);
  EXPECT_EQ(Wire.Dot, Sim.Dot);
}

//===----------------------------------------------------------------------===//
// SO_REUSEPORT cluster mode
//===----------------------------------------------------------------------===//

TEST_P(BackendMatrix, ReuseportServesAcrossLoops) {
  cluster::ClusterConfig Cfg;
  Cfg.Backend = GetParam();
  Cfg.Port = portFor(9470);
  Cfg.Loops = 2;
  Cfg.TotalClients = 4;
  Cfg.TotalRequests = 60;
  cluster::ClusterHarness H(Cfg);
  cluster::ClusterResult R = H.run();

  EXPECT_EQ(R.Wire.Completed, 60u);
  EXPECT_EQ(R.Wire.Errors, 0u);
  EXPECT_EQ(R.Wire.DroppedConns, 0u);
  EXPECT_GT(R.Wire.ReqPerSec, 0);
  uint64_t Served = 0;
  ASSERT_EQ(R.Shards.size(), 2u);
  for (const cluster::ShardResult &S : R.Shards)
    Served += S.Served;
  // The Linux kernel balances accepts across the SO_REUSEPORT group; which
  // shard serves how much is its choice, but nothing may be lost.
  EXPECT_EQ(Served, 60u);
  // Gossip crossed the loops and every delivery was drained.
  uint64_t Sent = 0, Received = 0;
  for (const cluster::ShardResult &S : R.Shards) {
    Sent += S.Sent;
    Received += S.Received;
  }
  EXPECT_GT(Sent, 0u);
  EXPECT_EQ(Sent, Received);
  // The syscall cost model flowed through the shard aggregation.
  EXPECT_GT(R.Sys.Syscalls, 0u);
  EXPECT_GT(R.Sys.Enters, 0u);
  if (GetParam() == sim::KernelBackend::Uring) {
    EXPECT_GT(R.Sys.SqesSubmitted, 0u);
  }
}

} // namespace

#else // !__linux__

#include "sim/Kernel.h"

#include <gtest/gtest.h>

TEST(RealKernel, UnsupportedOnThisPlatform) {
  using asyncg::sim::KernelBackend;
  EXPECT_FALSE(asyncg::sim::kernelBackendSupported(KernelBackend::Epoll));
  EXPECT_FALSE(asyncg::sim::kernelBackendSupported(KernelBackend::Uring));
  // The probe's reason strings and the available-backend list (which the
  // CLI error paths print) must still work here: only sim is on offer.
  std::string Why;
  EXPECT_FALSE(
      asyncg::sim::kernelBackendAvailable(KernelBackend::Uring, &Why));
  EXPECT_FALSE(Why.empty());
  EXPECT_EQ(asyncg::sim::availableKernelBackendNames(), "sim");
  EXPECT_EQ(asyncg::sim::resolveAutoKernelBackend(nullptr),
            KernelBackend::Sim);
}

#endif // __linux__
