//===- AnalysesTest.cpp - AG queries, baselines, hook lifecycle ----------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "ag/Builder.h"
#include "baselines/ApiUsageCounter.h"
#include "baselines/EmitterOnlyAnalyzer.h"
#include "baselines/PromiseOnlyAnalyzer.h"
#include "detect/AgQueries.h"
#include "node/Fs.h"

#include <gtest/gtest.h>

using namespace asyncg;
using namespace asyncg::ag;
using namespace asyncg::jsrt;
using namespace asyncg::testhelpers;

namespace {

//===----------------------------------------------------------------------===//
// AG query helpers (§VI-B)
//===----------------------------------------------------------------------===//

TEST(AgQueries, TicksUntilExecution) {
  AsyncGBuilder B;
  Runtime RT;
  RT.hooks().attach(&B);
  RT.fileSystem().putFile("f", "x");
  ScheduleId ReadSched = 0, NeverSched = 0;
  runMain(RT, [&](Runtime &R) {
    node::Fs Fs(R);
    ReadSched = Fs.readFile(JSLINE("q.js", 2), "f",
                            R.makeBuiltin("cb",
                                          [](Runtime &, const CallArgs &) {
                                            return Completion::normal();
                                          }));
    NeverSched = R.registerExternal(JSLINE("q.js", 3), ApiKind::DbQuery,
                                    R.makeBuiltin("never",
                                                  [](Runtime &,
                                                     const CallArgs &) {
                                                    return Completion::
                                                        normal();
                                                  }));
  });
  EXPECT_GT(detect::ticksUntilExecution(B.graph(), ReadSched), 0);
  EXPECT_EQ(detect::ticksUntilExecution(B.graph(), NeverSched), -1);
  EXPECT_EQ(detect::ticksUntilExecution(B.graph(), 9999), -1);

  EXPECT_TRUE(detect::reportExpectSyncCallback(B.graph(), ReadSched));
  EXPECT_TRUE(B.graph().hasWarning(BugCategory::ExpectSyncCallback));
  // Re-reporting dedups.
  EXPECT_FALSE(detect::reportExpectSyncCallback(B.graph(), ReadSched));
}

TEST(AgQueries, ExpectSyncQuietForInstantCallback) {
  AsyncGBuilder B;
  Runtime RT;
  RT.hooks().attach(&B);
  ScheduleId Sched = 0;
  runMain(RT, [&](Runtime &R) {
    // A promise executor runs in the registration tick: gap 0.
    R.promiseCreate(JSLINE("q.js", 1),
                    R.makeFunction("exec", JSLINE("q.js", 1),
                                   [](Runtime &, const CallArgs &) {
                                     return Completion::normal();
                                   }));
    Sched = 0;
    // Find the executor registration: the only PromiseCtor CR.
    for (const AgNode &N : B.graph().nodes())
      if (N.Kind == NodeKind::CR && N.Api == ApiKind::PromiseCtor)
        Sched = N.Sched;
  });
  ASSERT_NE(Sched, 0u);
  EXPECT_EQ(detect::ticksUntilExecution(B.graph(), Sched), 0);
  EXPECT_FALSE(detect::reportExpectSyncCallback(B.graph(), Sched));
}

TEST(AgQueries, DroppedChainPromises) {
  AsyncGBuilder B;
  Runtime RT;
  RT.hooks().attach(&B);
  runMain(RT, [&](Runtime &R) {
    PromiseRef P = R.promiseResolvedWith(JSLINE("q.js", 1), Value::number(0));
    R.promiseThen(JSLINE("q.js", 2), P,
                  R.makeFunction("dropper", JSLINE("q.js", 2),
                                 [](Runtime &R2, const CallArgs &) {
                                   // Created and dropped inside a reaction.
                                   R2.promiseResolvedWith(JSLINE("q.js", 3),
                                                          Value::number(1));
                                   return Completion::normal();
                                 }));
  });
  auto Dropped = detect::findDroppedChainPromises(B.graph());
  ASSERT_EQ(Dropped.size(), 1u);
  EXPECT_EQ(B.graph().node(Dropped.front()).Loc.line(), 3u);
  EXPECT_GT(detect::reportBrokenPromiseChains(B.graph()), 0u);
}

TEST(AgQueries, ReturnedPromiseIsNotDropped) {
  AsyncGBuilder B;
  Runtime RT;
  RT.hooks().attach(&B);
  runMain(RT, [&](Runtime &R) {
    PromiseRef P = R.promiseResolvedWith(JSLINE("q.js", 1), Value::number(0));
    PromiseRef P2 = R.promiseThen(
        JSLINE("q.js", 2), P,
        R.makeFunction("returner", JSLINE("q.js", 2),
                       [](Runtime &R2, const CallArgs &) {
                         PromiseRef Inner = R2.promiseResolvedWith(
                             JSLINE("q.js", 3), Value::number(1));
                         return Completion::normal(Value::promise(Inner));
                       }));
    R.promiseCatch(JSLINE("q.js", 4), P2,
                   R.makeBuiltin("c", [](Runtime &, const CallArgs &) {
                     return Completion::normal();
                   }));
  });
  EXPECT_TRUE(detect::findDroppedChainPromises(B.graph()).empty());
  EXPECT_EQ(detect::reportBrokenPromiseChains(B.graph()), 0u);
}

//===----------------------------------------------------------------------===//
// Baselines
//===----------------------------------------------------------------------===//

TEST(ApiUsageCounter, CountsPerFamily) {
  baselines::ApiUsageCounter C;
  Runtime RT;
  RT.hooks().attach(&C);
  runMain(RT, [&](Runtime &R) {
    R.nextTick(JSLOC, R.makeBuiltin("a", [](Runtime &, const CallArgs &) {
      return Completion::normal();
    }));
    R.setTimeout(JSLOC,
                 R.makeBuiltin("b",
                               [](Runtime &, const CallArgs &) {
                                 return Completion::normal();
                               }),
                 1);
    EmitterRef E = R.emitterCreate(JSLOC);
    R.emitterOn(JSLOC, E, "x",
                R.makeBuiltin("c", [](Runtime &, const CallArgs &) {
                  return Completion::normal();
                }));
    R.emitterEmit(JSLOC, E, "x");
    R.emitterEmit(JSLOC, E, "x");
    PromiseRef P = R.promiseResolvedWith(JSLOC, Value::number(1));
    R.promiseThen(JSLOC, P,
                  R.makeBuiltin("d", [](Runtime &, const CallArgs &) {
                    return Completion::normal();
                  }));
  });
  using baselines::ApiFamily;
  EXPECT_EQ(C.executions(ApiFamily::NextTick), 1u);
  EXPECT_EQ(C.executions(ApiFamily::Timer), 1u);
  EXPECT_EQ(C.executions(ApiFamily::Emitter), 2u);
  EXPECT_EQ(C.executions(ApiFamily::Promise), 1u);
  EXPECT_EQ(C.totalExecutions(), 5u);
  C.reset();
  EXPECT_EQ(C.totalExecutions(), 0u);
}

TEST(PromiseOnlyBaseline, DetectsPromiseBugsOnly) {
  baselines::PromiseOnlyAnalyzer A;
  Runtime RT;
  RT.hooks().attach(&A);
  runMain(RT, [&](Runtime &R) {
    // Promise bug: settled, never reacted.
    R.promiseResolvedWith(JSLINE("p.js", 1), Value::number(1));
    // Emitter bug it cannot see: dead emit.
    EmitterRef E = R.emitterCreate(JSLINE("p.js", 2));
    R.emitterEmit(JSLINE("p.js", 3), E, "ghost");
  });
  auto Cats = A.detectedCategories();
  EXPECT_TRUE(Cats.count(BugCategory::MissingReaction));
  EXPECT_FALSE(Cats.count(BugCategory::DeadEmit));
}

TEST(PromiseOnlyBaseline, ChainTracking) {
  baselines::PromiseOnlyAnalyzer A;
  Runtime RT;
  RT.hooks().attach(&A);
  runMain(RT, [&](Runtime &R) {
    PromiseRef P = R.promiseResolvedWith(JSLINE("p.js", 1), Value::number(1));
    R.promiseThen(JSLINE("p.js", 2), P,
                  R.makeBuiltin("h", [](Runtime &, const CallArgs &) {
                    return Completion::normal();
                  }));
  });
  EXPECT_TRUE(A.detectedCategories().count(
      BugCategory::MissingExceptionalReaction));
}

TEST(EmitterOnlyBaseline, DetectsEmitterBugsOnly) {
  baselines::EmitterOnlyAnalyzer A;
  Runtime RT;
  RT.hooks().attach(&A);
  runMain(RT, [&](Runtime &R) {
    EmitterRef E = R.emitterCreate(JSLINE("e.js", 1));
    R.emitterEmit(JSLINE("e.js", 2), E, "ghost"); // dead emit
    R.emitterOn(JSLINE("e.js", 3), E, "quiet",
                R.makeFunction("l", JSLINE("e.js", 3),
                               [](Runtime &, const CallArgs &) {
                                 return Completion::normal();
                               })); // dead listener
    // Promise bug it cannot see.
    R.promiseResolvedWith(JSLINE("e.js", 4), Value::number(1));
  });
  auto Cats = A.detectedCategories();
  EXPECT_TRUE(Cats.count(BugCategory::DeadEmit));
  EXPECT_TRUE(Cats.count(BugCategory::DeadListener));
  EXPECT_FALSE(Cats.count(BugCategory::MissingReaction));
}

//===----------------------------------------------------------------------===//
// Hook registry lifecycle (NodeProf's runtime (de)activation)
//===----------------------------------------------------------------------===//

class CountingAnalysis : public instr::AnalysisBase {
public:
  const char *analysisName() const override { return "counting"; }
  void onFunctionEnter(const instr::FunctionEnterEvent &) override {
    ++Enters;
  }
  void onApiCall(const instr::ApiCallEvent &) override { ++ApiCalls; }
  int Enters = 0;
  int ApiCalls = 0;
};

TEST(Instrumentation, AttachAndDetachAtRuntime) {
  Runtime RT;
  CountingAnalysis A;
  runMain(RT, [&](Runtime &R) {
    // Attach mid-run: only later events observed.
    R.nextTick(JSLOC, R.makeBuiltin("pre", [](Runtime &, const CallArgs &) {
      return Completion::normal();
    }));
    R.hooks().attach(&A);
    R.nextTick(JSLOC,
               R.makeBuiltin("during",
                             [&A](Runtime &R2, const CallArgs &) {
                               // Detach from within a callback: later
                               // ticks unobserved.
                               R2.hooks().detach(&A);
                               R2.nextTick(JSLOC,
                                           R2.makeBuiltin(
                                               "post",
                                               [](Runtime &,
                                                  const CallArgs &) {
                                                 return Completion::normal();
                                               }));
                               return Completion::normal();
                             }));
  });
  // Observed: the "during" registration (api call) and executions between
  // attach and detach.
  EXPECT_EQ(A.ApiCalls, 1);
  EXPECT_GE(A.Enters, 1);
  EXPECT_LE(A.Enters, 3);
}

TEST(Instrumentation, BuilderAttachedMidRunStartsCleanly) {
  // §V-B: "If AsyncG is enabled in the middle of the run ... it will
  // construct the shadow stack from the following tick."
  Runtime RT;
  AsyncGBuilder B;
  runMain(RT, [&](Runtime &R) {
    R.nextTick(JSLOC, R.makeBuiltin("first", [](Runtime &, const CallArgs &) {
      return Completion::normal();
    }));
    R.setTimeout(JSLOC,
                 R.makeBuiltin("attacher",
                               [&B](Runtime &R2, const CallArgs &) {
                                 R2.hooks().attach(&B);
                                 return Completion::normal();
                               }),
                 1);
    R.setTimeout(JSLOC,
                 R.makeBuiltin("observed",
                               [](Runtime &, const CallArgs &) {
                                 return Completion::normal();
                               }),
                 2);
  });
  // The builder saw at least the "observed" tick; its shadow stack ended
  // balanced (the onLoopEnd assert did not fire) and ticks are committed.
  EXPECT_GE(B.graph().ticks().size(), 1u);
}

TEST(Instrumentation, MultipleAnalysesAllReceiveEvents) {
  Runtime RT;
  CountingAnalysis A1, A2;
  RT.hooks().attach(&A1);
  RT.hooks().attach(&A2);
  EXPECT_EQ(RT.hooks().size(), 2u);
  runMain(RT, [&](Runtime &R) {
    R.nextTick(JSLOC, R.makeBuiltin("t", [](Runtime &, const CallArgs &) {
      return Completion::normal();
    }));
  });
  EXPECT_EQ(A1.Enters, A2.Enters);
  EXPECT_EQ(A1.ApiCalls, A2.ApiCalls);
  EXPECT_GT(A1.Enters, 0);
}

/// Detaches a chosen analysis from inside its own onApiCall hook.
class DetachingAnalysis : public instr::AnalysisBase {
public:
  const char *analysisName() const override { return "detaching"; }
  void onApiCall(const instr::ApiCallEvent &) override {
    ++ApiCalls;
    if (Reg && Victim) {
      Reg->detach(Victim);
      Victim = nullptr;
    }
  }
  instr::HookRegistry *Reg = nullptr;
  instr::AnalysisBase *Victim = nullptr;
  int ApiCalls = 0;
};

TEST(Instrumentation, SelfDetachDuringFireIsSafe) {
  // Regression: detach used to erase from the vector the fire loop was
  // iterating, invalidating the loop. Now it nulls the slot and compacts
  // after the outermost fire returns.
  instr::HookRegistry Reg;
  CountingAnalysis Before, After;
  DetachingAnalysis Self;
  Reg.attach(&Before);
  Reg.attach(&Self);
  Reg.attach(&After);
  Self.Reg = &Reg;
  Self.Victim = &Self;

  instr::ApiCallEvent E;
  Reg.fireApiCall(E);
  // Everyone saw the in-flight event, including analyses after the
  // detached slot.
  EXPECT_EQ(Before.ApiCalls, 1);
  EXPECT_EQ(Self.ApiCalls, 1);
  EXPECT_EQ(After.ApiCalls, 1);
  EXPECT_EQ(Reg.size(), 2u);

  Reg.fireApiCall(E);
  EXPECT_EQ(Self.ApiCalls, 1); // detached: no further events
  EXPECT_EQ(Before.ApiCalls, 2);
  EXPECT_EQ(After.ApiCalls, 2);
}

TEST(Instrumentation, DetachLaterAnalysisDuringFireSkipsIt) {
  instr::HookRegistry Reg;
  DetachingAnalysis First;
  CountingAnalysis Last;
  Reg.attach(&First);
  Reg.attach(&Last);
  First.Reg = &Reg;
  First.Victim = &Last;

  instr::ApiCallEvent E;
  Reg.fireApiCall(E);
  // Last's slot was nulled before the loop reached it: not invoked for
  // the event that caused its detach.
  EXPECT_EQ(First.ApiCalls, 1);
  EXPECT_EQ(Last.ApiCalls, 0);
  EXPECT_EQ(Reg.size(), 1u);

  Reg.fireApiCall(E);
  EXPECT_EQ(First.ApiCalls, 2);
  EXPECT_EQ(Last.ApiCalls, 0);
}

TEST(Instrumentation, EmptyRegistryConstructsNoEvents) {
  // The hot-path contract: with no analyses attached, hook sites must not
  // even build the event structs (their default ctors count themselves).
  auto Workload = [](Runtime &R) {
    R.nextTick(JSLOC, R.makeBuiltin("t", [](Runtime &, const CallArgs &) {
      return Completion::normal();
    }));
    R.setTimeout(JSLOC,
                 R.makeBuiltin("timer",
                               [](Runtime &, const CallArgs &) {
                                 return Completion::normal();
                               }),
                 1);
    EmitterRef Em = R.emitterCreate(JSLOC);
    R.emitterOn(JSLOC, Em, "evt",
                R.makeBuiltin("l", [](Runtime &, const CallArgs &) {
                  return Completion::normal();
                }));
    R.emitterEmit(JSLOC, Em, "evt", {});
    PromiseRef P = R.promiseResolvedWith(JSLOC, Value::number(1));
    R.promiseThen(JSLOC, P,
                  R.makeBuiltin("then", [](Runtime &, const CallArgs &A) {
                    return Completion::normal(A.arg(0));
                  }));
  };

  {
    Runtime RT;
    instr::resetConstructedEventCount();
    runMain(RT, Workload);
    EXPECT_EQ(instr::constructedEventCount(), 0u);
  }
  {
    Runtime RT;
    AsyncGBuilder B;
    RT.hooks().attach(&B);
    instr::resetConstructedEventCount();
    runMain(RT, Workload);
    EXPECT_GT(instr::constructedEventCount(), 0u);
  }
}

} // namespace
