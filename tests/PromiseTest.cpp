//===- PromiseTest.cpp - promise semantics tests -------------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace asyncg;
using namespace asyncg::jsrt;
using namespace asyncg::testhelpers;

namespace {

TEST(Promise, ExecutorRunsSynchronously) {
  Runtime RT;
  std::vector<std::string> Log;
  runMain(RT, [&](Runtime &R) {
    Log.push_back("before");
    R.promiseCreate(JSLOC,
                    R.makeFunction("executor", JSLOC,
                                   [&Log](Runtime &, const CallArgs &) {
                                     Log.push_back("executor");
                                     return Completion::normal();
                                   }));
    Log.push_back("after");
  });
  EXPECT_EQ(Log, (std::vector<std::string>{"before", "executor", "after"}));
}

TEST(Promise, ReactionsAreMicrotasks) {
  Runtime RT;
  std::vector<std::string> Log;
  runMain(RT, [&](Runtime &R) {
    PromiseRef P = R.promiseResolvedWith(JSLOC, Value::number(1));
    R.promiseThen(JSLOC, P, recorder(R, Log, "reaction"));
    Log.push_back("sync");
  });
  EXPECT_EQ(Log, (std::vector<std::string>{"sync", "reaction"}));
}

TEST(Promise, ThenReceivesValueAndChains) {
  Runtime RT;
  std::vector<double> Seen;
  runMain(RT, [&](Runtime &R) {
    PromiseRef P = R.promiseResolvedWith(JSLOC, Value::number(1));
    PromiseRef P2 = R.promiseThen(
        JSLOC, P,
        R.makeFunction("addOne", JSLOC, [&Seen](Runtime &, const CallArgs &A) {
          Seen.push_back(A.arg(0).asNumber());
          return Completion::normal(Value::number(A.arg(0).asNumber() + 1));
        }));
    R.promiseThen(JSLOC, P2,
                  R.makeFunction("final", JSLOC,
                                 [&Seen](Runtime &, const CallArgs &A) {
                                   Seen.push_back(A.arg(0).asNumber());
                                   return Completion::normal();
                                 }));
  });
  EXPECT_EQ(Seen, (std::vector<double>{1, 2}));
}

TEST(Promise, RejectionFlowsToCatchSkippingThen) {
  Runtime RT;
  std::vector<std::string> Log;
  runMain(RT, [&](Runtime &R) {
    PromiseRef P = R.promiseRejectedWith(JSLOC, Value::str("err"));
    PromiseRef P2 = R.promiseThen(JSLOC, P, recorder(R, Log, "skipped"));
    R.promiseCatch(JSLOC, P2,
                   R.makeFunction("handler", JSLOC,
                                  [&Log](Runtime &, const CallArgs &A) {
                                    Log.push_back("caught:" +
                                                  A.arg(0).asString());
                                    return Completion::normal();
                                  }));
  });
  EXPECT_EQ(Log, (std::vector<std::string>{"caught:err"}));
}

TEST(Promise, ThrowInReactionRejectsDerived) {
  Runtime RT;
  std::string Caught;
  runMain(RT, [&](Runtime &R) {
    PromiseRef P = R.promiseResolvedWith(JSLOC, Value::number(0));
    PromiseRef P2 = R.promiseThen(
        JSLOC, P, R.makeFunction("thrower", JSLOC,
                                 [](Runtime &, const CallArgs &) {
                                   return Completion::error("boom");
                                 }));
    R.promiseCatch(JSLOC, P2,
                   R.makeFunction("handler", JSLOC,
                                  [&Caught](Runtime &, const CallArgs &A) {
                                    Caught = A.arg(0).asString();
                                    return Completion::normal();
                                  }));
  });
  EXPECT_EQ(Caught, "boom");
}

TEST(Promise, ThrowInExecutorRejects) {
  Runtime RT;
  std::string Caught;
  runMain(RT, [&](Runtime &R) {
    PromiseRef P = R.promiseCreate(
        JSLOC, R.makeFunction("executor", JSLOC,
                              [](Runtime &, const CallArgs &) {
                                return Completion::error("ctor-boom");
                              }));
    R.promiseCatch(JSLOC, P,
                   R.makeFunction("handler", JSLOC,
                                  [&Caught](Runtime &, const CallArgs &A) {
                                    Caught = A.arg(0).asString();
                                    return Completion::normal();
                                  }));
  });
  EXPECT_EQ(Caught, "ctor-boom");
}

TEST(Promise, ReturnedPromiseIsAdopted) {
  Runtime RT;
  double Got = 0;
  runMain(RT, [&](Runtime &R) {
    PromiseRef P = R.promiseResolvedWith(JSLOC, Value::number(0));
    PromiseRef P2 = R.promiseThen(
        JSLOC, P,
        R.makeFunction("inner", JSLOC, [](Runtime &R2, const CallArgs &) {
          PromiseRef Inner = R2.promiseBare(JSLOC);
          R2.setTimeout(JSLOC,
                        R2.makeBuiltin("resolveInner",
                                       [Inner](Runtime &R3,
                                               const CallArgs &) {
                                         R3.resolvePromise(
                                             JSLOC, Inner,
                                             Value::number(42));
                                         return Completion::normal();
                                       }),
                        5);
          return Completion::normal(Value::promise(Inner));
        }));
    R.promiseThen(JSLOC, P2,
                  R.makeFunction("outer", JSLOC,
                                 [&Got](Runtime &, const CallArgs &A) {
                                   Got = A.arg(0).asNumber();
                                   return Completion::normal();
                                 }));
  });
  EXPECT_EQ(Got, 42);
}

TEST(Promise, ResolveWithPromiseAdoptsState) {
  Runtime RT;
  std::string Got;
  runMain(RT, [&](Runtime &R) {
    PromiseRef Inner = R.promiseRejectedWith(JSLOC, Value::str("inner-err"));
    PromiseRef Outer = R.promiseBare(JSLOC);
    R.resolvePromise(JSLOC, Outer, Value::promise(Inner));
    R.promiseCatch(JSLOC, Outer,
                   R.makeFunction("handler", JSLOC,
                                  [&Got](Runtime &, const CallArgs &A) {
                                    Got = A.arg(0).asString();
                                    return Completion::normal();
                                  }));
  });
  EXPECT_EQ(Got, "inner-err");
}

TEST(Promise, DoubleResolveHasNoEffect) {
  Runtime RT;
  std::vector<double> Got;
  PromiseRef Kept;
  runMain(RT, [&](Runtime &R) {
    PromiseRef P = R.promiseBare(JSLOC);
    Kept = P;
    R.resolvePromise(JSLOC, P, Value::number(1));
    R.resolvePromise(JSLOC, P, Value::number(2));
    R.rejectPromise(JSLOC, P, Value::str("late"));
    R.promiseThen(JSLOC, P,
                  R.makeFunction("h", JSLOC,
                                 [&Got](Runtime &, const CallArgs &A) {
                                   Got.push_back(A.arg(0).asNumber());
                                   return Completion::normal();
                                 }));
  });
  EXPECT_EQ(Got, (std::vector<double>{1}));
  // livePromises tracks weakly; the promise we kept alive is visible.
  ASSERT_EQ(RT.livePromises().size(), 1u);
  EXPECT_EQ(Kept->State, PromiseState::Fulfilled);
  EXPECT_EQ(Kept->Result.asNumber(), 1);
}

TEST(Promise, ThenOnSettledPromiseStillAsync) {
  Runtime RT;
  std::vector<std::string> Log;
  runMain(RT, [&](Runtime &R) {
    PromiseRef P = R.promiseResolvedWith(JSLOC, Value::number(0));
    R.nextTick(JSLOC,
               R.makeBuiltin("later", [&Log, P](Runtime &R2,
                                                const CallArgs &) {
                 R2.promiseThen(JSLOC, P, recorder(R2, Log, "lateThen"));
                 Log.push_back("attached");
                 return Completion::normal();
               }));
  });
  EXPECT_EQ(Log, (std::vector<std::string>{"attached", "lateThen"}));
}

TEST(Promise, FinallyRunsOnBothPathsAndPassesThrough) {
  Runtime RT;
  std::vector<std::string> Log;
  runMain(RT, [&](Runtime &R) {
    PromiseRef Ok = R.promiseResolvedWith(JSLOC, Value::number(7));
    PromiseRef AfterOk = R.promiseFinally(JSLOC, Ok,
                                          recorder(R, Log, "finally-ok"));
    R.promiseThen(JSLOC, AfterOk,
                  R.makeFunction("h", JSLOC,
                                 [&Log](Runtime &, const CallArgs &A) {
                                   Log.push_back(
                                       "value:" +
                                       A.arg(0).toDisplayString());
                                   return Completion::normal();
                                 }));

    PromiseRef Bad = R.promiseRejectedWith(JSLOC, Value::str("e"));
    PromiseRef AfterBad = R.promiseFinally(JSLOC, Bad,
                                           recorder(R, Log, "finally-bad"));
    R.promiseCatch(JSLOC, AfterBad,
                   R.makeFunction("h2", JSLOC,
                                  [&Log](Runtime &, const CallArgs &A) {
                                    Log.push_back("err:" +
                                                  A.arg(0).asString());
                                    return Completion::normal();
                                  }));
  });
  ASSERT_EQ(Log.size(), 4u);
  EXPECT_EQ(Log[0], "finally-ok");
  EXPECT_EQ(Log[1], "finally-bad");
  EXPECT_EQ(Log[2], "value:7");
  EXPECT_EQ(Log[3], "err:e");
}

TEST(Promise, AllResolvesWithOrderedValues) {
  Runtime RT;
  std::vector<double> Got;
  runMain(RT, [&](Runtime &R) {
    PromiseRef A = R.promiseBare(JSLOC);
    PromiseRef B = R.promiseResolvedWith(JSLOC, Value::number(2));
    // A resolves later than B, but keeps position 0.
    R.setTimeout(JSLOC,
                 R.makeBuiltin("ra",
                               [A](Runtime &R2, const CallArgs &) {
                                 R2.resolvePromise(JSLOC, A,
                                                   Value::number(1));
                                 return Completion::normal();
                               }),
                 5);
    PromiseRef All = R.promiseAll(JSLOC, {A, B});
    R.promiseThen(JSLOC, All,
                  R.makeFunction("h", JSLOC,
                                 [&Got](Runtime &, const CallArgs &Args) {
                                   const ArrayRef &Arr = Args.arg(0).asArray();
                                   for (const Value &V : Arr->Elems)
                                     Got.push_back(V.asNumber());
                                   return Completion::normal();
                                 }));
  });
  EXPECT_EQ(Got, (std::vector<double>{1, 2}));
}

TEST(Promise, AllRejectsOnFirstRejection) {
  Runtime RT;
  std::string Err;
  runMain(RT, [&](Runtime &R) {
    PromiseRef A = R.promiseBare(JSLOC); // never settles
    PromiseRef B = R.promiseRejectedWith(JSLOC, Value::str("b-fail"));
    PromiseRef All = R.promiseAll(JSLOC, {A, B});
    R.promiseCatch(JSLOC, All,
                   R.makeFunction("h", JSLOC,
                                  [&Err](Runtime &, const CallArgs &A2) {
                                    Err = A2.arg(0).asString();
                                    return Completion::normal();
                                  }));
  });
  EXPECT_EQ(Err, "b-fail");
}

TEST(Promise, AllOfEmptyResolvesImmediately) {
  Runtime RT;
  bool Resolved = false;
  runMain(RT, [&](Runtime &R) {
    PromiseRef All = R.promiseAll(JSLOC, {});
    R.promiseThen(JSLOC, All,
                  R.makeBuiltin("h",
                                [&Resolved](Runtime &, const CallArgs &A) {
                                  Resolved = A.arg(0).isArray() &&
                                             A.arg(0).asArray()->size() == 0;
                                  return Completion::normal();
                                }));
  });
  EXPECT_TRUE(Resolved);
}

TEST(Promise, RaceTakesFirstSettlement) {
  Runtime RT;
  double Got = 0;
  runMain(RT, [&](Runtime &R) {
    PromiseRef Slow = R.promiseBare(JSLOC);
    PromiseRef Fast = R.promiseBare(JSLOC);
    R.setTimeout(JSLOC,
                 R.makeBuiltin("fast",
                               [Fast](Runtime &R2, const CallArgs &) {
                                 R2.resolvePromise(JSLOC, Fast,
                                                   Value::number(10));
                                 return Completion::normal();
                               }),
                 5);
    R.setTimeout(JSLOC,
                 R.makeBuiltin("slow",
                               [Slow](Runtime &R2, const CallArgs &) {
                                 R2.resolvePromise(JSLOC, Slow,
                                                   Value::number(20));
                                 return Completion::normal();
                               }),
                 50);
    PromiseRef Race = R.promiseRace(JSLOC, {Slow, Fast});
    R.promiseThen(JSLOC, Race,
                  R.makeFunction("h", JSLOC,
                                 [&Got](Runtime &, const CallArgs &A) {
                                   Got = A.arg(0).asNumber();
                                   return Completion::normal();
                                 }));
  });
  EXPECT_EQ(Got, 10);
}

TEST(Promise, AllSettledReportsBothOutcomes) {
  Runtime RT;
  std::vector<std::string> Statuses;
  runMain(RT, [&](Runtime &R) {
    PromiseRef A = R.promiseResolvedWith(JSLOC, Value::number(1));
    PromiseRef B = R.promiseRejectedWith(JSLOC, Value::str("nope"));
    PromiseRef S = R.promiseAllSettled(JSLOC, {A, B});
    R.promiseThen(JSLOC, S,
                  R.makeFunction("h", JSLOC,
                                 [&Statuses](Runtime &,
                                             const CallArgs &Args) {
                                   for (const Value &E :
                                        Args.arg(0).asArray()->Elems)
                                     Statuses.push_back(
                                         E.asObject()
                                             ->get("status")
                                             .asString());
                                   return Completion::normal();
                                 }));
  });
  EXPECT_EQ(Statuses,
            (std::vector<std::string>{"fulfilled", "rejected"}));
}

TEST(Promise, AnyResolvesOnFirstFulfillment) {
  Runtime RT;
  double Got = 0;
  std::string AllRejectedErr;
  runMain(RT, [&](Runtime &R) {
    PromiseRef A = R.promiseRejectedWith(JSLOC, Value::str("a"));
    PromiseRef B = R.promiseResolvedWith(JSLOC, Value::number(5));
    PromiseRef Any = R.promiseAny(JSLOC, {A, B});
    R.promiseThen(JSLOC, Any,
                  R.makeFunction("h", JSLOC,
                                 [&Got](Runtime &, const CallArgs &A2) {
                                   Got = A2.arg(0).asNumber();
                                   return Completion::normal();
                                 }));

    PromiseRef C = R.promiseRejectedWith(JSLOC, Value::str("c"));
    PromiseRef AllBad = R.promiseAny(JSLOC, {C});
    R.promiseCatch(JSLOC, AllBad,
                   R.makeFunction("h2", JSLOC,
                                  [&AllRejectedErr](Runtime &,
                                                    const CallArgs &A2) {
                                    AllRejectedErr = A2.arg(0).asString();
                                    return Completion::normal();
                                  }));
  });
  EXPECT_EQ(Got, 5);
  EXPECT_NE(AllRejectedErr.find("AggregateError"), std::string::npos);
}

TEST(Promise, UnhandledRejectionsAreQueryable) {
  Runtime RT;
  PromiseRef KeepLost, KeepHandled; // livePromises tracks weakly
  runMain(RT, [&](Runtime &R) {
    KeepLost = R.promiseRejectedWith(JSLINE("x.js", 3), Value::str("lost"));
    KeepHandled = R.promiseRejectedWith(JSLOC, Value::str("ok"));
    R.promiseCatch(JSLOC, KeepHandled,
                   R.makeBuiltin("h", [](Runtime &, const CallArgs &) {
                     return Completion::normal();
                   }));
  });
  auto Unhandled = RT.unhandledRejections();
  ASSERT_EQ(Unhandled.size(), 1u);
  EXPECT_EQ(Unhandled[0]->Result.asString(), "lost");
  EXPECT_EQ(Unhandled[0]->CreatedAt.line(), 3u);
}

TEST(Promise, PassthroughSkipsMissingHandlers) {
  Runtime RT;
  double Got = 0;
  runMain(RT, [&](Runtime &R) {
    PromiseRef P = R.promiseResolvedWith(JSLOC, Value::number(3));
    // catch() has no fulfill handler: the value passes through.
    PromiseRef P2 = R.promiseCatch(JSLOC, P,
                                   R.makeBuiltin("never",
                                                 [](Runtime &,
                                                    const CallArgs &) {
                                                   ADD_FAILURE();
                                                   return Completion::normal();
                                                 }));
    R.promiseThen(JSLOC, P2,
                  R.makeFunction("h", JSLOC,
                                 [&Got](Runtime &, const CallArgs &A) {
                                   Got = A.arg(0).asNumber();
                                   return Completion::normal();
                                 }));
  });
  EXPECT_EQ(Got, 3);
}

TEST(Promise, PromiseResolvedWithExistingPromiseReturnsIt) {
  Runtime RT;
  runMain(RT, [&](Runtime &R) {
    PromiseRef P = R.promiseBare(JSLOC);
    PromiseRef Same = R.promiseResolvedWith(JSLOC, Value::promise(P));
    EXPECT_EQ(P, Same);
  });
}

} // namespace
