//===- PaperExamplesTest.cpp - the paper's inline examples, pinned -------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the paper's §III motivating example (callback-order crash), the
/// §II-A http chain example, and HTTP keep-alive connections end-to-end.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "ag/Builder.h"
#include "detect/Detectors.h"
#include "node/Http.h"
#include "node/Net.h"

#include <gtest/gtest.h>

using namespace asyncg;
using namespace asyncg::ag;
using namespace asyncg::jsrt;
using namespace asyncg::testhelpers;
namespace http = asyncg::node::http;

namespace {

TEST(PaperExamples, SectionThreeExecutionOrderAndCrash) {
  // let foo;
  // Promise.resolve({}).then((v) => { foo = v; });      L2
  // setTimeout(() => { foo.bar = ...; }, 0);            L5
  // process.nextTick(() => { foo.bar(); });             L8
  // Real order: L8 - L2 - L5; the nextTick callback crashes.
  Runtime RT;
  AsyncGBuilder B;
  detect::DetectorSuite Suite;
  Suite.attachTo(B);
  RT.hooks().attach(&B);

  const char *F = "s3.js";
  std::vector<int> Order;
  auto Foo = std::make_shared<Value>();

  runMain(RT, [&](Runtime &R) {
    PromiseRef P = R.promiseResolvedWith(JSLINE(F, 2), Object::make());
    R.promiseThen(JSLINE(F, 2), P,
                  R.makeFunction("setFoo", JSLINE(F, 2),
                                 [&, Foo](Runtime &, const CallArgs &A) {
                                   Order.push_back(2);
                                   *Foo = A.arg(0);
                                   return Completion::normal();
                                 }));
    R.setTimeout(JSLINE(F, 5),
                 R.makeFunction("installBar", JSLINE(F, 5),
                                [&](Runtime &, const CallArgs &) {
                                  Order.push_back(5);
                                  return Completion::normal();
                                }),
                 0);
    R.nextTick(JSLINE(F, 8),
               R.makeFunction("callBar", JSLINE(F, 8),
                              [&, Foo](Runtime &, const CallArgs &) {
                                Order.push_back(8);
                                if (!Foo->isObject() ||
                                    !Foo->asObject()->has("bar"))
                                  return Completion::error(
                                      "TypeError: foo.bar is not a "
                                      "function");
                                return Completion::normal();
                              }));
  });

  EXPECT_EQ(Order, (std::vector<int>{8, 2, 5}));
  ASSERT_EQ(RT.uncaughtErrors().size(), 1u);
  EXPECT_EQ(RT.uncaughtErrors()[0].Loc.line(), 8u);
  EXPECT_TRUE(B.graph().hasWarning(BugCategory::MixedSimilarApis));
}

TEST(PaperExamples, SectionTwoHttpChain) {
  // The §II-A server: http-request -> data receiving -> setImmediate ->
  // data processing -> response.
  Runtime RT;
  AsyncGBuilder B;
  RT.hooks().attach(&B);

  const char *F = "s2.js";
  std::string Answer;
  runMain(RT, [&](Runtime &R) {
    Function Accept = R.makeFunction(
        "accept", JSLINE(F, 1), [F](Runtime &R2, const CallArgs &A) {
          auto Req = http::IncomingMessage::from(A.arg(0));
          auto Res = http::ServerResponse::from(A.arg(1));
          auto Body = std::make_shared<std::string>();
          R2.emitterOn(JSLINE(F, 3), Req->emitter(), "data",
                       R2.makeFunction("data", JSLINE(F, 3),
                                       [Body](Runtime &,
                                              const CallArgs &A2) {
                                         *Body += A2.arg(0).asString();
                                         return Completion::normal();
                                       }));
          R2.emitterOn(
              JSLINE(F, 5), Req->emitter(), "end",
              R2.makeFunction(
                  "end", JSLINE(F, 5),
                  [Body, Res, F](Runtime &R3, const CallArgs &) {
                    R3.setImmediate(
                        JSLINE(F, 6),
                        R3.makeFunction("defer", JSLINE(F, 6),
                                        [Body, Res](Runtime &,
                                                    const CallArgs &) {
                                          Res->end("processed:" + *Body);
                                          return Completion::normal();
                                        }));
                    return Completion::normal();
                  }));
          return Completion::normal();
        });
    auto Server = http::HttpServer::create(R, JSLINE(F, 1), Accept);
    ASSERT_TRUE(Server->listen(JSLINE(F, 10), 8200));

    http::RequestOptions Opts;
    Opts.Method = "POST";
    Opts.Port = 8200;
    Opts.Path = "/";
    Opts.BodyChunks = {"abc", "def"};
    http::request(R, JSLINE(F, 12), Opts,
                  R.makeBuiltin("onResponse",
                                [&Answer](Runtime &, const CallArgs &A) {
                                  Answer = A.arg(2).asString();
                                  return Completion::normal();
                                }));
  });
  EXPECT_EQ(Answer, "processed:abcdef");

  // The chain's phases appear in the graph: io ticks (request/data/end)
  // and an immediate tick for the deferred processing.
  bool SawIo = false, SawCheck = false;
  for (const AgTick &T : B.graph().ticks()) {
    SawIo |= T.Phase == PhaseKind::Io;
    SawCheck |= T.Phase == PhaseKind::Check;
  }
  EXPECT_TRUE(SawIo);
  EXPECT_TRUE(SawCheck);
}

TEST(PaperExamples, HttpKeepAliveServesSequentialRequests) {
  Runtime RT;
  std::vector<std::string> Responses;
  runMain(RT, [&](Runtime &R) {
    Function OnRequest = R.makeFunction(
        "handler", JSLOC, [](Runtime &, const CallArgs &A) {
          auto Req = http::IncomingMessage::from(A.arg(0));
          auto Res = http::ServerResponse::from(A.arg(1));
          Res->end("path=" + Req->url());
          return Completion::normal();
        });
    auto Server = http::HttpServer::create(R, JSLOC, OnRequest);
    ASSERT_TRUE(Server->listen(JSLOC, 8201));

    // Drive two REQ/END cycles over one raw connection (keep-alive), as
    // the workload driver does.
    Runtime *RPtr = &R;
    R.network().connect(8201, [RPtr, &Responses](
                                  std::shared_ptr<sim::Socket> Raw) {
      auto Pending = std::make_shared<int>(0);
      Raw->onData([Raw, Pending, &Responses](const std::string &Msg) {
        http::ClientResponse Res;
        if (!http::parseResponse(Msg, Res))
          return;
        Responses.push_back(Res.Body);
        if (++*Pending == 1) {
          Raw->write(http::frameRequestLine("GET", "/second"));
          Raw->write(http::frameEnd());
        } else {
          Raw->end();
        }
      });
      Raw->write(http::frameRequestLine("GET", "/first"));
      Raw->write(http::frameEnd());
      (void)RPtr;
    });
  });
  EXPECT_EQ(Responses,
            (std::vector<std::string>{"path=/first", "path=/second"}));
}

} // namespace
