//===- SimTest.cpp - unit tests for the simulated OS substrate ----------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "sim/Clock.h"
#include "sim/FileSystem.h"
#include "sim/Kernel.h"
#include "sim/Network.h"
#include "sim/Random.h"

#include <gtest/gtest.h>

using namespace asyncg;
using namespace asyncg::sim;

namespace {

TEST(Clock, AdvancesMonotonically) {
  Clock C;
  EXPECT_EQ(C.now(), 0u);
  C.advanceTo(100);
  EXPECT_EQ(C.now(), 100u);
  C.advanceTo(50); // never backwards
  EXPECT_EQ(C.now(), 100u);
  C.advanceBy(25);
  EXPECT_EQ(C.now(), 125u);
  EXPECT_EQ(millis(3), 3000u);
}

TEST(Kernel, CompletionOrderByDeadlineThenSubmission) {
  Clock C;
  Kernel K(C);
  std::vector<int> Order;
  K.submit(100, [&] { Order.push_back(1); });
  K.submit(50, [&] { Order.push_back(2); });
  K.submit(100, [&] { Order.push_back(3); });

  EXPECT_EQ(K.nextDeadline(), 50u);
  C.advanceTo(200);
  for (auto &A : K.takeDue())
    A();
  ASSERT_EQ(Order.size(), 3u);
  EXPECT_EQ(Order, (std::vector<int>{2, 1, 3}));
  EXPECT_FALSE(K.hasPending());
  EXPECT_EQ(K.nextDeadline(), NoDeadline);
}

TEST(Kernel, TakeDueOnlyTakesDue) {
  Clock C;
  Kernel K(C);
  int Ran = 0;
  K.submit(10, [&] { ++Ran; });
  K.submit(20, [&] { ++Ran; });
  C.advanceTo(10);
  for (auto &A : K.takeDue())
    A();
  EXPECT_EQ(Ran, 1);
  EXPECT_TRUE(K.hasPending());
  C.advanceTo(20);
  for (auto &A : K.takeDue())
    A();
  EXPECT_EQ(Ran, 2);
}

TEST(Kernel, Cancel) {
  Clock C;
  Kernel K(C);
  int Ran = 0;
  OpId Id = K.submit(10, [&] { ++Ran; });
  EXPECT_TRUE(K.cancel(Id));
  EXPECT_FALSE(K.cancel(Id)); // Already cancelled.
  C.advanceTo(100);
  EXPECT_TRUE(K.takeDue().empty());
  EXPECT_EQ(Ran, 0);
}

// Pins the written cancellation contract (sim/Kernel.h): cancel succeeds —
// and guarantees the action never runs — for any op the kernel still
// holds, including ops already due; once takeDue() has handed the op to
// the loop, cancel returns false even if the action has not executed yet.
TEST(Kernel, CancelContract) {
  Clock C;
  Kernel K(C);
  int Ran = 0;

  // Due-but-not-yet-taken: still cancellable.
  OpId Due = K.submit(10, [&] { ++Ran; });
  C.advanceTo(50);
  EXPECT_TRUE(K.cancel(Due));
  EXPECT_TRUE(K.takeDue().empty());
  EXPECT_EQ(Ran, 0);

  // Handed to the loop: no longer cancellable, runs regardless.
  OpId Taken = K.submit(10, [&] { ++Ran; });
  C.advanceTo(100);
  auto Batch = K.takeDue();
  ASSERT_EQ(Batch.size(), 1u);
  EXPECT_FALSE(K.cancel(Taken));
  EXPECT_EQ(Ran, 0); // cancel attempt did not run it early
  for (auto &A : Batch)
    A();
  EXPECT_EQ(Ran, 1);
}

TEST(Kernel, SubmitDuringCompletion) {
  Clock C;
  Kernel K(C);
  std::vector<int> Order;
  K.submit(10, [&] {
    Order.push_back(1);
    K.submit(0, [&] { Order.push_back(2); });
  });
  C.advanceTo(10);
  for (auto &A : K.takeDue())
    A();
  // The nested op was submitted at t=10 with 0 delay: due on a later poll,
  // not inside the same batch.
  EXPECT_EQ(Order, (std::vector<int>{1}));
  for (auto &A : K.takeDue())
    A();
  EXPECT_EQ(Order, (std::vector<int>{1, 2}));
}

TEST(Random, DeterministicAcrossInstances) {
  Random A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Random, RangesRespected) {
  Random R(7);
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = R.nextInt(5, 9);
    EXPECT_GE(V, 5u);
    EXPECT_LE(V, 9u);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Random, WeightedPickCoversAllAndOnlyPositive) {
  Random R(11);
  double W[3] = {1, 0, 3};
  int Counts[3] = {};
  for (int I = 0; I < 3000; ++I)
    ++Counts[R.pickWeighted(W)];
  EXPECT_GT(Counts[0], 0);
  EXPECT_EQ(Counts[1], 0);
  EXPECT_GT(Counts[2], Counts[0]); // ~3x more likely.
}

class NetworkTest : public ::testing::Test {
protected:
  /// Pumps the kernel until idle (advancing virtual time).
  void pump() {
    while (K.hasPending()) {
      C.advanceTo(K.nextDeadline());
      for (auto &A : K.takeDue())
        A();
    }
  }

  Clock C;
  Kernel K{C};
  Network Net{K, 50};
};

TEST_F(NetworkTest, ConnectDeliversBothEndpoints) {
  std::shared_ptr<Socket> ServerSide, ClientSide;
  ASSERT_TRUE(Net.listen(80, [&](std::shared_ptr<Socket> S) {
    ServerSide = std::move(S);
  }));
  EXPECT_TRUE(Net.isListening(80));
  ASSERT_TRUE(Net.connect(80, [&](std::shared_ptr<Socket> S) {
    ClientSide = std::move(S);
  }));
  EXPECT_EQ(ServerSide, nullptr); // Not before the latency elapsed.
  pump();
  ASSERT_NE(ServerSide, nullptr);
  ASSERT_NE(ClientSide, nullptr);
}

TEST_F(NetworkTest, ConnectToClosedPortFails) {
  EXPECT_FALSE(Net.connect(81, nullptr));
  Net.listen(81, [](std::shared_ptr<Socket>) {});
  Net.closePort(81);
  EXPECT_FALSE(Net.connect(81, nullptr));
}

TEST_F(NetworkTest, DataFlowsWithLatency) {
  std::shared_ptr<Socket> ServerSide, ClientSide;
  std::vector<std::string> Received;
  Net.listen(80, [&](std::shared_ptr<Socket> S) {
    ServerSide = S;
    S->onData([&](const std::string &D) { Received.push_back(D); });
  });
  Net.connect(80, [&](std::shared_ptr<Socket> S) { ClientSide = S; });
  pump();
  ASSERT_NE(ClientSide, nullptr);

  ClientSide->write("one");
  ClientSide->write("two");
  pump();
  EXPECT_EQ(Received, (std::vector<std::string>{"one", "two"}));
}

TEST_F(NetworkTest, EndAndCloseSemantics) {
  std::shared_ptr<Socket> ServerSide, ClientSide;
  bool SawEnd = false, ServerClosed = false, ClientClosed = false;
  Net.listen(80, [&](std::shared_ptr<Socket> S) {
    ServerSide = S;
    S->onEnd([&] { SawEnd = true; });
    S->onClose([&] { ServerClosed = true; });
  });
  Net.connect(80, [&](std::shared_ptr<Socket> S) {
    ClientSide = S;
    S->onClose([&] { ClientClosed = true; });
  });
  pump();

  ClientSide->end();
  EXPECT_TRUE(ClientSide->isEnded());
  EXPECT_FALSE(ClientSide->write("late")); // Cannot write after end.
  pump();
  EXPECT_TRUE(SawEnd);
  EXPECT_FALSE(ServerClosed);

  ServerSide->destroy();
  pump();
  EXPECT_TRUE(ServerClosed);
  EXPECT_TRUE(ClientClosed);
}

TEST(FileSystemTest, ReadWriteAndErrors) {
  Clock C;
  Kernel K(C);
  FileSystem FS(K, 100);
  FS.putFile("a.txt", "hello");
  EXPECT_TRUE(FS.exists("a.txt"));
  EXPECT_EQ(FS.getFile("a.txt"), "hello");

  FileResult ReadOk, ReadMissing, WriteOk;
  FS.readFileAsync("a.txt", [&](FileResult R) { ReadOk = std::move(R); });
  FS.readFileAsync("missing.txt",
                   [&](FileResult R) { ReadMissing = std::move(R); });
  FS.writeFileAsync("b.txt", "world",
                    [&](FileResult R) { WriteOk = std::move(R); });
  while (K.hasPending()) {
    C.advanceTo(K.nextDeadline());
    for (auto &A : K.takeDue())
      A();
  }
  EXPECT_TRUE(ReadOk.ok());
  EXPECT_EQ(ReadOk.Data, "hello");
  EXPECT_FALSE(ReadMissing.ok());
  EXPECT_NE(ReadMissing.Error.find("ENOENT"), std::string::npos);
  EXPECT_TRUE(WriteOk.ok());
  EXPECT_EQ(FS.getFile("b.txt"), "world");
}

} // namespace
