//===- fig4_promise_emitter.cpp - the paper's Fig. 4 / Fig. 5 example ---------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// The Fig. 4 program combining promises and emitters:
//
//   1  var ee = new EventEmitter();
//   2  var p = new Promise(
//   3    resolve => { resolve(0); }
//   4  );
//   7  p.then(() => {
//   9    ee.on('foo', () => {     // unused listener
//  10    });
//  12 -});                         // missing exception handler
//  12 +}).catch((err) => {});
//  15 -ee.emit('foo');             // dead emit
//  15 +setImmediate(() => { ee.emit('foo'); });
//
// The buggy variant shows the three warnings of Fig. 5(a): the emit at
// L15 happens before the then-reaction of the *next* tick registers the
// listener (dead emit + dead listener), and the promise chain ends
// without a reject reaction. The fixed variant delays the emission past
// the micro-task queue and adds the catch.
//
//===----------------------------------------------------------------------===//

#include "ag/Builder.h"
#include "detect/Detectors.h"
#include "jsrt/Runtime.h"
#include "viz/Dot.h"
#include "viz/JsonDump.h"
#include "viz/TextReport.h"

#include <cstdio>

using namespace asyncg;
using namespace asyncg::jsrt;

static void runVariant(bool Fixed) {
  std::printf("=== %s variant ===\n", Fixed ? "fixed" : "buggy");
  Runtime RT;
  ag::AsyncGBuilder AsyncG;
  detect::DetectorSuite Detectors;
  Detectors.attachTo(AsyncG);
  RT.hooks().attach(&AsyncG);

  const char *F = "fig4.js";
  Function Main = RT.makeFunction("main", JSLINE(F, 1), [F, Fixed](
                                                            Runtime &R,
                                                            const CallArgs &) {
    EmitterRef Ee = R.emitterCreate(JSLINE(F, 1));

    // var p = new Promise(resolve => { resolve(0); });
    Function Executor = R.makeFunction(
        "executor", JSLINE(F, 3), [](Runtime &R2, const CallArgs &A) {
          return R2.call(Function(A.arg(0).asFunctionRef()),
                         {Value::number(0)});
        });
    PromiseRef P = R.promiseCreate(JSLINE(F, 2), Executor);

    // p.then(() => { ee.on('foo', () => {}); })
    Function Reaction = R.makeFunction(
        "reaction", JSLINE(F, 7), [Ee, F](Runtime &R2, const CallArgs &) {
          R2.emitterOn(JSLINE(F, 9), Ee, "foo",
                       R2.makeFunction("fooListener", JSLINE(F, 9),
                                       [](Runtime &, const CallArgs &) {
                                         return Completion::normal();
                                       }));
          return Completion::normal();
        });
    PromiseRef P2 = R.promiseThen(JSLINE(F, 7), P, Reaction);
    if (Fixed)
      R.promiseCatch(JSLINE(F, 12), P2,
                     R.makeFunction("onErr", JSLINE(F, 12),
                                    [](Runtime &, const CallArgs &) {
                                      return Completion::normal();
                                    }));

    // ee.emit('foo')  — or deferred via setImmediate in the fix.
    if (Fixed) {
      R.setImmediate(JSLINE(F, 15),
                     R.makeFunction("emitFoo", JSLINE(F, 15),
                                    [Ee, F](Runtime &R2, const CallArgs &) {
                                      R2.emitterEmit(JSLINE(F, 15), Ee,
                                                     "foo");
                                      return Completion::normal();
                                    }));
    } else {
      R.emitterEmit(JSLINE(F, 15), Ee, "foo");
    }
    return Completion::normal();
  });

  RT.main(Main);

  std::printf("%s", viz::toText(AsyncG.graph()).c_str());
  std::printf("%s\n", viz::warningsReport(AsyncG.graph()).c_str());
  std::string DotFile = Fixed ? "fig4_fixed.dot" : "fig4_buggy.dot";
  viz::writeFile(DotFile, viz::toDot(AsyncG.graph()));
  std::printf("wrote %s\n\n", DotFile.c_str());
}

int main() {
  runVariant(/*Fixed=*/false);
  runVariant(/*Fixed=*/true);
  return 0;
}
