//===- chat_server.cpp - a pub/sub chat server under AsyncG --------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// A second domain example beyond AcmeAir: a TCP chat server with rooms.
// Each room is an EventEmitter; joining subscribes the connection's
// delivery listener to the room, every received line is broadcast via
// emit. The server contains a deliberate real-world bug: re-joining a
// room registers the delivery listener again without removing the old one
// (the SO-45881685 pattern at scale), so rejoining clients receive every
// message twice — and AsyncG's Duplicate-Listeners detector pinpoints it.
//
// Protocol (one simulated network message per line):
//   "JOIN <room>" | "SAY <room> <text>" | "LEAVE <room>"
// Deliveries to clients: "MSG <room> <text>".
//
//===----------------------------------------------------------------------===//

#include "ag/Builder.h"
#include "detect/Detectors.h"
#include "jsrt/Runtime.h"
#include "node/Net.h"
#include "viz/TextReport.h"

#include <cstdio>
#include <map>

using namespace asyncg;
using namespace asyncg::jsrt;

namespace {

/// Server state shared by the connection handler.
struct ChatState {
  std::map<std::string, EmitterRef> Rooms;
  /// Per (client, room): the registered delivery listener, so LEAVE (and a
  /// correct JOIN) can remove it.
  std::map<std::pair<const void *, std::string>, Function> Subscriptions;
  bool FixedVariant = false;
  int Broadcasts = 0;
};

EmitterRef roomOf(Runtime &R, ChatState &St, const std::string &Name) {
  auto It = St.Rooms.find(Name);
  if (It != St.Rooms.end())
    return It->second;
  EmitterRef Room = R.emitterCreate(JSLINE("chat.js", 4), "Room:" + Name);
  St.Rooms.emplace(Name, Room);
  return Room;
}

void handleLine(Runtime &R, const std::shared_ptr<ChatState> &St,
                const std::shared_ptr<node::Socket> &Client,
                const std::string &Line) {
  const char *F = "chat.js";
  size_t Sp1 = Line.find(' ');
  std::string Cmd = Line.substr(0, Sp1);
  std::string Rest = Sp1 == std::string::npos ? "" : Line.substr(Sp1 + 1);

  if (Cmd == "JOIN") {
    EmitterRef Room = roomOf(R, *St, Rest);
    auto Key = std::make_pair<const void *, std::string>(Client.get(),
                                                         std::string(Rest));
    auto Existing = St->Subscriptions.find(Key);
    if (Existing != St->Subscriptions.end()) {
      if (St->FixedVariant) {
        // Fixed: drop the previous subscription before re-adding.
        R.emitterRemoveListener(JSLINE(F, 12), Room, "message",
                                Existing->second);
      }
      // Buggy variant: falls through and registers a duplicate.
    }
    Function Deliver =
        Existing != St->Subscriptions.end() && !St->FixedVariant
            ? Existing->second
            : R.makeFunction("deliver", JSLINE(F, 15),
                             [Client, Rest](Runtime &, const CallArgs &A) {
                               Client->write("MSG " + Rest + " " +
                                             A.arg(0).asString());
                               return Completion::normal();
                             });
    R.emitterOn(JSLINE(F, 15), Room, "message", Deliver);
    St->Subscriptions[Key] = Deliver;
    return;
  }

  if (Cmd == "SAY") {
    size_t Sp2 = Rest.find(' ');
    std::string RoomName = Rest.substr(0, Sp2);
    std::string Text = Sp2 == std::string::npos ? "" : Rest.substr(Sp2 + 1);
    EmitterRef Room = roomOf(R, *St, RoomName);
    ++St->Broadcasts;
    R.emitterEmit(JSLINE(F, 22), Room, "message", {Value::str(Text)});
    return;
  }

  if (Cmd == "LEAVE") {
    auto Key = std::make_pair<const void *, std::string>(Client.get(),
                                                         std::string(Rest));
    auto It = St->Subscriptions.find(Key);
    if (It == St->Subscriptions.end())
      return;
    EmitterRef Room = roomOf(R, *St, Rest);
    R.emitterRemoveListener(JSLINE(F, 28), Room, "message", It->second);
    St->Subscriptions.erase(It);
  }
}

void runVariant(bool Fixed) {
  std::printf("=== %s variant ===\n", Fixed ? "fixed (unsubscribe first)"
                                            : "buggy (duplicate join)");
  Runtime RT;
  ag::AsyncGBuilder AsyncG;
  detect::DetectorSuite Detectors;
  Detectors.attachTo(AsyncG);
  RT.hooks().attach(&AsyncG);

  auto St = std::make_shared<ChatState>();
  St->FixedVariant = Fixed;
  auto Deliveries = std::make_shared<int>(0);

  Function Main = RT.makeFunction(
      "main", JSLINE("chat.js", 1), [St, Deliveries](Runtime &R,
                                                     const CallArgs &) {
        Function OnConnection = R.makeFunction(
            "onConnection", JSLINE("chat.js", 2),
            [St](Runtime &R2, const CallArgs &A) {
              auto Client = node::Socket::from(A.arg(0));
              R2.emitterOn(
                  JSLINE("chat.js", 3), Client->emitter(), "data",
                  R2.makeBuiltin("onLine",
                                 [St, Client](Runtime &R3,
                                              const CallArgs &A2) {
                                   handleLine(R3, St, Client,
                                              A2.arg(0).asString());
                                   return Completion::normal();
                                 }));
              return Completion::normal();
            });
        auto Server = node::createServer(R, JSLINE("chat.js", 2),
                                         OnConnection);
        Server->listen(JSLINE("chat.js", 30), 6000);

        // A client joins #general twice (e.g. after a flaky reconnect in
        // the app's UI), then a second client says hello.
        node::connect(R, SourceLocation::internal(), 6000,
                      R.makeBuiltin("clientA", [Deliveries](
                                                   Runtime &R2,
                                                   const CallArgs &A) {
                        auto Sock = node::Socket::from(A.arg(0));
                        R2.emitterOn(SourceLocation::internal(),
                                     Sock->emitter(), "data",
                                     R2.makeBuiltin(
                                         "aReceives",
                                         [Deliveries](Runtime &,
                                                      const CallArgs &A2) {
                                           ++*Deliveries;
                                           std::printf("  client A got: "
                                                       "%s\n",
                                                       A2.arg(0)
                                                           .asString()
                                                           .c_str());
                                           return Completion::normal();
                                         }));
                        Sock->write("JOIN general");
                        Sock->write("JOIN general"); // rejoin!
                        return Completion::normal();
                      }));
        node::connect(R, SourceLocation::internal(), 6000,
                      R.makeBuiltin("clientB", [](Runtime &R2,
                                                  const CallArgs &A) {
                        auto Sock = node::Socket::from(A.arg(0));
                        R2.setTimeout(
                            SourceLocation::internal(),
                            R2.makeBuiltin("sayHello",
                                           [Sock](Runtime &,
                                                  const CallArgs &) {
                                             Sock->write(
                                                 "SAY general hello");
                                             return Completion::normal();
                                           }),
                            5);
                        return Completion::normal();
                      }));
        return Completion::normal();
      });

  RT.main(Main);

  std::printf("  broadcasts: %d, deliveries to client A: %d%s\n",
              St->Broadcasts, *Deliveries,
              *Deliveries > St->Broadcasts ? "  <-- duplicated!" : "");
  std::printf("\ndetector findings:\n");
  bool Found = false;
  for (const ag::Warning &W : AsyncG.graph().warnings()) {
    if (W.Category != ag::BugCategory::DuplicateListener)
      continue;
    Found = true;
    std::printf("  [%s] @ %s: %s\n", ag::bugCategoryName(W.Category),
                W.Loc.str().c_str(), W.Message.c_str());
  }
  if (!Found)
    std::printf("  no duplicate-listener findings\n");
  std::printf("\n");
}

} // namespace

int main() {
  runVariant(/*Fixed=*/false);
  runVariant(/*Fixed=*/true);
  return 0;
}
