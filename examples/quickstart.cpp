//===- quickstart.cpp - first steps with AsyncG-C++ ---------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// The §III motivating example: three callbacks registered in source order
// (promise reaction, setTimeout, nextTick) that execute in a different
// order — nextTick, promise, timeout — crashing the program because
// `foo.bar` is called before the timeout callback assigns it.
//
//   1  let foo;
//   2  Promise.resolve({}).then((v) => {
//   3    foo = v;
//   4  });
//   5  setTimeout(() => {
//   6    foo.bar = function() { ... };
//   7  }, 0);
//   8  process.nextTick(() => {
//   9    foo.bar();          // TypeError: foo is undefined here!
//  10  });
//
// Run it to see the execution order, the uncaught error, the Async Graph,
// and the Mixing-Similar-APIs warning AsyncG reports. The DOT rendering is
// written to quickstart.dot (render with: dot -Tpdf quickstart.dot).
//
//===----------------------------------------------------------------------===//

#include "ag/Builder.h"
#include "detect/Detectors.h"
#include "jsrt/Runtime.h"
#include "viz/Dot.h"
#include "viz/Html.h"
#include "viz/JsonDump.h"
#include "viz/TextReport.h"

#include <cstdio>

using namespace asyncg;
using namespace asyncg::jsrt;

int main() {
  Runtime RT;

  // Attach AsyncG with all automatic detectors (this is the whole setup).
  ag::AsyncGBuilder AsyncG;
  detect::DetectorSuite Detectors;
  Detectors.attachTo(AsyncG);
  RT.hooks().attach(&AsyncG);

  const char *F = "quickstart.js";
  auto Foo = std::make_shared<Value>(); // let foo;

  Function Main = RT.makeFunction("main", JSLINE(F, 1), [&](Runtime &R,
                                                            const CallArgs &) {
    // Promise.resolve({}).then((v) => { foo = v; });
    PromiseRef P = R.promiseResolvedWith(JSLINE(F, 2), Object::make());
    R.promiseThen(JSLINE(F, 2), P,
                  R.makeFunction("setFoo", JSLINE(F, 2),
                                 [Foo](Runtime &, const CallArgs &A) {
                                   std::printf("  promise reaction ran\n");
                                   *Foo = A.arg(0);
                                   return Completion::normal();
                                 }));

    // setTimeout(() => { foo.bar = ...; }, 0);
    R.setTimeout(JSLINE(F, 5),
                 R.makeFunction("installBar", JSLINE(F, 5),
                                [Foo](Runtime &R2, const CallArgs &) {
                                  std::printf("  setTimeout ran\n");
                                  if (Foo->isObject())
                                    Foo->asObject()->set(
                                        "bar",
                                        R2.makeBuiltin(
                                             "bar",
                                             [](Runtime &,
                                                const CallArgs &) {
                                               return Completion::normal();
                                             })
                                            .toValue());
                                  return Completion::normal();
                                }),
                 0);

    // process.nextTick(() => { foo.bar(); });
    R.nextTick(JSLINE(F, 8),
               R.makeFunction("callBar", JSLINE(F, 8),
                              [Foo](Runtime &R2, const CallArgs &) {
                                std::printf("  nextTick ran\n");
                                Value Bar = Foo->isObject()
                                                ? Foo->asObject()->get("bar")
                                                : Value::undefined();
                                if (!Bar.isFunction())
                                  return Completion::error(
                                      "TypeError: foo.bar is not a "
                                      "function");
                                return R2.call(Function(Bar.asFunctionRef()));
                              }));
    return Completion::normal();
  });

  std::printf("execution order:\n");
  RT.main(Main);

  std::printf("\nuncaught errors: %zu\n", RT.uncaughtErrors().size());
  for (const Runtime::UncaughtError &E : RT.uncaughtErrors())
    std::printf("  %s (tick %llu)\n", E.Error.toDisplayString().c_str(),
                static_cast<unsigned long long>(E.Tick));

  std::printf("\n=== Async Graph ===\n%s",
              viz::toText(AsyncG.graph()).c_str());
  std::printf("\n=== Warnings ===\n%s",
              viz::warningsReport(AsyncG.graph()).c_str());

  viz::writeFile("quickstart.dot", viz::toDot(AsyncG.graph()));
  viz::writeFile("quickstart.json", viz::toJson(AsyncG.graph()));
  viz::writeFile("quickstart.html",
                 viz::toHtml(AsyncG.graph(), "quickstart.js — Async Graph"));
  std::printf("\nwrote quickstart.dot, quickstart.json, and "
              "quickstart.html (open in a browser)\n");
  return 0;
}
