//===- fig1_server_bug.cpp - the paper's Fig. 1 / Fig. 3 example --------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Reproduces the SO-33330277 bug of Fig. 1 and the Async Graphs of Fig. 3:
//
//   1  const http = require('http');
//   2  function compute() {
//   3    performSomeComputation();
//   5  - process.nextTick(compute);   // recursive nextTick: starves I/O
//   5  + setImmediate(compute);       // fix: immediates let I/O interleave
//   6  }
//   7  http.createServer((request, response) => {
//   8    response.end('Hello World!');
//   9  }).listen(5000);
//  10  compute();
//
// Both variants run under AsyncG with a client sending requests; the
// buggy one starves (tick budget), reports Recursive-Micro-Tasks and a
// Dead Listener on the server handler; the fixed one serves the requests.
// DOT files fig1_buggy.dot / fig1_fixed.dot are written next to the
// binary.
//
//===----------------------------------------------------------------------===//

#include "cases/Case.h"
#include "viz/Dot.h"
#include "viz/JsonDump.h"
#include "viz/TextReport.h"

#include <cstdio>

using namespace asyncg;
using namespace asyncg::cases;

static void runVariant(bool Fixed) {
  const CaseDef &Def = findCase("SO-33330277");
  std::printf("=== %s variant ===\n", Fixed ? "fixed (setImmediate)"
                                            : "buggy (nextTick)");

  jsrt::Runtime RT(Def.Config);
  ag::AsyncGBuilder AsyncG;
  detect::DetectorSuite Detectors;
  Detectors.attachTo(AsyncG);
  RT.hooks().attach(&AsyncG);
  Def.Run(RT, Fixed);

  std::printf("ticks: %llu%s\n",
              static_cast<unsigned long long>(RT.tickCount()),
              RT.tickBudgetExhausted() ? " (tick budget exhausted: the "
                                         "event loop was starved)"
                                       : "");

  viz::TextOptions TOpts;
  TOpts.MaxTicks = 8; // The graph grows infinitely in the buggy variant;
                      // the paper also shows only the first ticks.
  std::printf("%s", viz::toText(AsyncG.graph(), TOpts).c_str());
  std::printf("%s\n", viz::warningsReport(AsyncG.graph()).c_str());

  std::string DotFile = Fixed ? "fig1_fixed.dot" : "fig1_buggy.dot";
  viz::writeFile(DotFile, viz::toDot(AsyncG.graph()));
  std::printf("wrote %s\n\n", DotFile.c_str());
}

int main() {
  runVariant(/*Fixed=*/false);
  runVariant(/*Fixed=*/true);
  return 0;
}
