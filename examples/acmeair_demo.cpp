//===- acmeair_demo.cpp - the evaluation server under AsyncG ------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Runs the AcmeAir-like flight-booking server (§VII-B) against the
// JMeter-like workload driver with full AsyncG attached, then prints the
// served-request statistics, the per-request API usage (the Fig. 6(b)
// quantities), the Async Graph size, and any warnings the detectors
// report on the application.
//
//===----------------------------------------------------------------------===//

#include "ag/Builder.h"
#include "apps/acmeair/App.h"
#include "apps/acmeair/Workload.h"
#include "baselines/ApiUsageCounter.h"
#include "detect/Detectors.h"
#include "viz/TextReport.h"

#include <cstdio>

using namespace asyncg;
using namespace asyncg::jsrt;
using namespace asyncg::acmeair;

int main() {
  Runtime RT;
  AppConfig ACfg;
  AcmeAirApp App(RT, ACfg);

  WorkloadConfig WCfg;
  WCfg.TotalRequests = 500;
  WCfg.Clients = 8;
  WorkloadDriver Driver(RT, ACfg.Port, WCfg);

  ag::AsyncGBuilder AsyncG;
  detect::DetectorSuite Detectors;
  Detectors.attachTo(AsyncG);
  baselines::ApiUsageCounter Usage;
  RT.hooks().attach(&AsyncG);
  RT.hooks().attach(&Usage);

  Function Main = RT.makeBuiltin("main", [&](Runtime &, const CallArgs &) {
    App.start(JSLOC);
    Driver.start();
    return Completion::normal();
  });
  RT.main(Main);

  double N = static_cast<double>(Driver.completed());
  std::printf("AcmeAir demo (promise-enabled db interface)\n");
  std::printf("  requests completed : %llu (errors: %llu)\n",
              static_cast<unsigned long long>(Driver.completed()),
              static_cast<unsigned long long>(Driver.errors()));
  std::printf("  event-loop ticks   : %llu\n",
              static_cast<unsigned long long>(RT.tickCount()));
  std::printf("  db operations      : %llu\n",
              static_cast<unsigned long long>(App.db().opCount()));

  std::printf("\nper-request async callback executions (Fig. 6(b)):\n");
  using baselines::ApiFamily;
  for (ApiFamily Fam : {ApiFamily::NextTick, ApiFamily::Emitter,
                        ApiFamily::Promise, ApiFamily::Io}) {
    std::printf("  %-9s %6.2f\n", baselines::apiFamilyName(Fam),
                static_cast<double>(Usage.executions(Fam)) / N);
  }

  const ag::AsyncGraph &G = AsyncG.graph();
  std::printf("\nAsync Graph: %zu ticks, %zu nodes, %zu edges\n",
              G.ticks().size(), G.nodeCount(), G.edges().size());

  std::printf("\ndetector findings on the application (by category):\n");
  std::map<std::string, unsigned> ByCategory;
  for (const ag::Warning &W : G.warnings())
    ++ByCategory[ag::bugCategoryName(W.Category)];
  if (ByCategory.empty())
    std::printf("  none\n");
  for (const auto &[Cat, Count] : ByCategory)
    std::printf("  %-34s %u\n", Cat.c_str(), Count);
  if (!G.warnings().empty()) {
    const ag::Warning &W = G.warnings().front();
    std::printf("\nfirst finding: [%s] @ %s: %s\n",
                ag::bugCategoryName(W.Category), W.Loc.str().c_str(),
                W.Message.c_str());
    std::printf("(body-less GET requests leave their 'data' listeners "
                "unexecuted — a genuine AsyncG-style code smell report)\n");
  }
  return 0;
}
