//===- race_detection.cpp - the §IX data-flow race extension -------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// The paper's conclusion describes ongoing work "extending AsyncG with
// data flow analysis to automatically detect race conditions caused by
// non-deterministic event ordering". This example demonstrates that
// extension: a tiny cache warms itself from two files read concurrently;
// a third callback consumes the cache. Which read finishes last is an OS
// scheduling artifact, so `cache.config` observed by the consumer is
// nondeterministic in real Node — the race detector flags the unordered
// write/write and write/read pairs from the Async Graph's causal
// structure.
//
//===----------------------------------------------------------------------===//

#include "ag/Builder.h"
#include "detect/RaceDetector.h"
#include "jsrt/Runtime.h"
#include "node/Fs.h"
#include "viz/TextReport.h"

#include <cstdio>

using namespace asyncg;
using namespace asyncg::jsrt;

int main() {
  Runtime RT;
  RT.fileSystem().putFile("defaults.json", "{\"mode\":\"defaults\"}");
  RT.fileSystem().putFile("user.json", "{\"mode\":\"user\"}");

  ag::AsyncGBuilder AsyncG;
  detect::RaceDetector Races(AsyncG);
  RT.hooks().attach(&AsyncG);
  RT.hooks().attach(&Races);

  const char *F = "race.js";
  Function Main = RT.makeFunction("main", JSLINE(F, 1), [F](Runtime &R,
                                                            const CallArgs &) {
    Value Cache = Object::make("Cache");
    node::Fs Fs(R);

    // Both reads overwrite cache.config; their completion order is not
    // guaranteed.
    Fs.readFile(JSLINE(F, 3), "defaults.json",
                R.makeFunction("onDefaults", JSLINE(F, 3),
                               [Cache, F](Runtime &R2, const CallArgs &A) {
                                 R2.setProperty(JSLINE(F, 4), Cache,
                                                "config", A.arg(1));
                                 return Completion::normal();
                               }));
    Fs.readFile(JSLINE(F, 6), "user.json",
                R.makeFunction("onUser", JSLINE(F, 6),
                               [Cache, F](Runtime &R2, const CallArgs &A) {
                                 R2.setProperty(JSLINE(F, 7), Cache,
                                                "config", A.arg(1));
                                 return Completion::normal();
                               }));

    // An unrelated timer consumes whatever happens to be there.
    R.setTimeout(JSLINE(F, 9),
                 R.makeFunction("useConfig", JSLINE(F, 9),
                                [Cache, F](Runtime &R2, const CallArgs &) {
                                  Value Cfg = R2.getProperty(JSLINE(F, 10),
                                                             Cache,
                                                             "config");
                                  std::printf("consumer saw: %s\n",
                                              Cfg.toDisplayString().c_str());
                                  return Completion::normal();
                                }),
                 1);
    return Completion::normal();
  });

  RT.main(Main);

  std::printf("\nrecorded property accesses: %zu\n", Races.accessCount());
  std::printf("race findings:\n");
  if (Races.warnings().empty())
    std::printf("  none\n");
  for (const ag::Warning &W : Races.warnings())
    std::printf("  [%s] %s\n", ag::bugCategoryName(W.Category),
                W.Message.c_str());

  std::printf("\nfixed version (Promise.all joins the reads):\n");
  // The fix: join both reads with Promise.all, then write once and read
  // after — every access is causally ordered through the join.
  Runtime RT2;
  RT2.fileSystem().putFile("defaults.json", "{}");
  RT2.fileSystem().putFile("user.json", "{}");
  ag::AsyncGBuilder AsyncG2;
  detect::RaceDetector Races2(AsyncG2);
  RT2.hooks().attach(&AsyncG2);
  RT2.hooks().attach(&Races2);

  Function Main2 = RT2.makeFunction(
      "main", JSLINE(F, 20), [F](Runtime &R, const CallArgs &) {
        Value Cache = Object::make("Cache");
        node::Fs Fs(R);
        PromiseRef A = Fs.readFilePromise(JSLINE(F, 21), "defaults.json");
        PromiseRef B = Fs.readFilePromise(JSLINE(F, 22), "user.json");
        PromiseRef Both = R.promiseAll(JSLINE(F, 23), {A, B});
        R.promiseThen(
            JSLINE(F, 24), Both,
            R.makeFunction("merge", JSLINE(F, 24),
                           [Cache, F](Runtime &R2, const CallArgs &Args) {
                             R2.setProperty(JSLINE(F, 25), Cache, "config",
                                            Args.arg(0).asArray()->at(1));
                             Value Cfg = R2.getProperty(JSLINE(F, 26),
                                                        Cache, "config");
                             (void)Cfg;
                             return Completion::normal();
                           }));
        return Completion::normal();
      });
  RT2.main(Main2);
  std::printf("race findings: %zu (expected 0)\n",
              Races2.warnings().size());
  return 0;
}
