//===- async_pipeline.cpp - async/await pipelines under AsyncG -----------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// ECMAScript-8 style code under AsyncG: an async function pipeline that
// loads a config file, fetches two resources "concurrently", joins them
// with Promise.all, and posts the summary to an HTTP endpoint — written
// with C++20 coroutines (`co_await Await(...)`).
//
// The demo runs twice: once correctly, and once with the classic
// missing-await mistake (SO-43422932) that leaves the pipeline's promise
// without any reaction — AsyncG reports it.
//
//===----------------------------------------------------------------------===//

#include "ag/Builder.h"
#include "detect/Detectors.h"
#include "jsrt/AsyncAwait.h"
#include "node/Fs.h"
#include "node/Http.h"
#include "viz/TextReport.h"

#include <cstdio>

using namespace asyncg;
using namespace asyncg::jsrt;
namespace http = asyncg::node::http;

namespace {

const char *F = "pipeline.js";

JsAsync fetchResource(Runtime &RT, AsyncOrigin, std::string Path) {
  node::Fs Fs(RT);
  Value Data = co_await Await(Fs.readFilePromise(JSLINE(F, 10), Path));
  co_return Value::str("<" + Data.asString() + ">");
}

JsAsync pipeline(Runtime &RT, AsyncOrigin, bool Buggy, int Port) {
  // Step 1: await the config.
  node::Fs Fs(RT);
  Value Config =
      co_await Await(Fs.readFilePromise(JSLINE(F, 20), "config.json"));
  std::printf("  config loaded: %s\n", Config.asString().c_str());

  // Step 2: start both fetches, join with Promise.all.
  JsAsync A = fetchResource(RT, AsyncOrigin{"fetchResource", JSLINE(F, 22)},
                            "a.txt");
  JsAsync B = fetchResource(RT, AsyncOrigin{"fetchResource", JSLINE(F, 23)},
                            "b.txt");
  std::vector<PromiseRef> Both;
  Both.push_back(A.promise());
  Both.push_back(B.promise());
  Value Joined =
      co_await Await(RT.promiseAll(JSLINE(F, 24), std::move(Both)));
  std::string Summary = Joined.asArray()->at(0).asString() + "+" +
                        Joined.asArray()->at(1).asString();
  std::printf("  joined: %s\n", Summary.c_str());

  // Step 3: post the summary. The buggy variant forgets to await the
  // request helper's promise, so failures (and completion) are dropped.
  PromiseRef Posted = RT.promiseBare(JSLINE(F, 30), "postSummary");
  http::RequestOptions Opts;
  Opts.Method = "POST";
  Opts.Port = Port;
  Opts.Path = "/summary";
  Opts.BodyChunks.push_back(Summary);
  http::request(RT, JSLINE(F, 30), Opts,
                RT.makeBuiltin("(post done)",
                               [Posted](Runtime &R2, const CallArgs &Args) {
                                 R2.resolvePromiseInternal(Posted,
                                                           Args.arg(2));
                                 return Completion::normal();
                               }));
  if (!Buggy) {
    Value Reply = co_await Await(Posted, JSLINE(F, 31));
    std::printf("  server replied: %s\n", Reply.asString().c_str());
  }
  // Buggy: `Posted` is never awaited — missing reaction.
  co_return Value::str(Summary);
}

void runVariant(bool Buggy) {
  std::printf("=== %s variant ===\n",
              Buggy ? "buggy (missing await on the POST)" : "correct");
  Runtime RT;
  RT.fileSystem().putFile("config.json", "{\"target\":\"/summary\"}");
  RT.fileSystem().putFile("a.txt", "alpha");
  RT.fileSystem().putFile("b.txt", "beta");

  ag::AsyncGBuilder AsyncG;
  detect::DetectorSuite Detectors;
  Detectors.attachTo(AsyncG);
  RT.hooks().attach(&AsyncG);

  Function Main = RT.makeFunction(
      "main", JSLINE(F, 1), [Buggy](Runtime &R, const CallArgs &) {
        Function OnRequest = R.makeFunction(
            "summaryEndpoint", JSLINE(F, 2),
            [](Runtime &, const CallArgs &A) {
              auto Res = http::ServerResponse::from(A.arg(1));
              Res->end("stored");
              return Completion::normal();
            });
        auto Server = http::HttpServer::create(R, JSLINE(F, 2), OnRequest);
        Server->listen(JSLINE(F, 3), 7100);

        JsAsync P = pipeline(R, AsyncOrigin{"pipeline", JSLINE(F, 5)},
                             Buggy, 7100);
        R.promiseThen(JSLINE(F, 6), P.promise(),
                      R.makeBuiltin("(pipeline done)",
                                    [](Runtime &, const CallArgs &) {
                                      return Completion::normal();
                                    }));
        return Completion::normal();
      });
  RT.main(Main);

  std::printf("\nfindings:\n");
  bool Any = false;
  for (const ag::Warning &W : AsyncG.graph().warnings()) {
    if (W.Category != ag::BugCategory::MissingReaction &&
        W.Category != ag::BugCategory::DeadPromise)
      continue;
    Any = true;
    std::printf("  [%s] @ %s: %s\n", ag::bugCategoryName(W.Category),
                W.Loc.str().c_str(), W.Message.c_str());
  }
  if (!Any)
    std::printf("  none\n");
  std::printf("\n");
}

} // namespace

int main() {
  runVariant(/*Buggy=*/false);
  runVariant(/*Buggy=*/true);
  return 0;
}
