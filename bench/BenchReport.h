//===- BenchReport.h - machine-readable benchmark output -------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared `--json <path>` support for the bench/ binaries. Every harness
/// keeps its human-readable stdout table and, when asked, also writes a
/// small JSON report so tooling (tools/bench_smoke.sh, CI trend lines) can
/// consume the numbers without scraping printf output.
///
/// Schema (one object per file, conventionally named BENCH_<bench>.json):
/// \code
///   {
///     "bench": "micro_ag",
///     "config": {"requests": 3000, "clients": 8},
///     "metrics": [
///       {"name": "GraphNodeInsertion", "value": 1.1e7, "unit": "items/s"}
///     ]
///   }
/// \endcode
///
/// Every report automatically appends a "peak_rss" metric (KiB, from
/// getrusage) so memory regressions show up in the same trend lines.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_BENCH_BENCHREPORT_H
#define ASYNCG_BENCH_BENCHREPORT_H

#include "support/JsonWriter.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace asyncg {
namespace benchjson {

/// Peak resident set size of this process in KiB, or 0 when the platform
/// does not expose it. Sampled at report-serialization time, so it covers
/// the whole benchmark run.
inline double peakRssKiB() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage RU;
  if (getrusage(RUSAGE_SELF, &RU) != 0)
    return 0;
#if defined(__APPLE__)
  return static_cast<double>(RU.ru_maxrss) / 1024.0; // bytes on macOS
#else
  return static_cast<double>(RU.ru_maxrss); // KiB on Linux
#endif
#else
  return 0;
#endif
}

/// Accumulates config entries and metrics, then serializes them.
class BenchReport {
public:
  explicit BenchReport(std::string BenchName) : Bench(std::move(BenchName)) {}

  void config(const std::string &Key, const std::string &Value) {
    Configs.push_back({Key, Value, 0, false});
  }
  void config(const std::string &Key, double Value) {
    Configs.push_back({Key, std::string(), Value, true});
  }

  void metric(const std::string &Name, double Value,
              const std::string &Unit) {
    Metrics.push_back({Name, Value, Unit});
  }

  std::string json() const {
    JsonWriter W;
    W.beginObject();
    W.field("bench", Bench);
    W.key("config");
    W.beginObject();
    for (const ConfigEntry &C : Configs) {
      W.key(C.Key);
      if (C.IsNumber)
        W.value(C.Num);
      else
        W.value(C.Str);
    }
    W.endObject();
    W.key("metrics");
    W.beginArray();
    for (const Metric &M : Metrics) {
      W.beginObject();
      W.field("name", M.Name);
      W.field("value", M.Value);
      W.field("unit", M.Unit);
      W.endObject();
    }
    if (double Rss = peakRssKiB(); Rss > 0) {
      W.beginObject();
      W.field("name", "peak_rss");
      W.field("value", Rss);
      W.field("unit", "KiB");
      W.endObject();
    }
    W.endArray();
    W.endObject();
    return W.take();
  }

  /// Writes the report to \p Path; returns false (with a message on
  /// stderr) when the file cannot be written.
  bool write(const std::string &Path) const {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "benchjson: cannot write %s\n", Path.c_str());
      return false;
    }
    std::string S = json();
    S += "\n";
    size_t Written = std::fwrite(S.data(), 1, S.size(), F);
    std::fclose(F);
    return Written == S.size();
  }

private:
  struct Metric {
    std::string Name;
    double Value;
    std::string Unit;
  };
  struct ConfigEntry {
    std::string Key;
    std::string Str;
    double Num;
    bool IsNumber;
  };

  std::string Bench;
  std::vector<ConfigEntry> Configs;
  std::vector<Metric> Metrics;
};

/// Extracts "--json <path>" (or "--json=<path>") from the argument list,
/// compacting argv so downstream parsers (google-benchmark's
/// Initialize) never see it. Returns the empty string when absent.
inline std::string extractJsonPath(int &Argc, char **Argv) {
  std::string Path;
  int Out = 1;
  for (int In = 1; In < Argc; ++In) {
    if (std::strcmp(Argv[In], "--json") == 0 && In + 1 < Argc) {
      Path = Argv[++In];
      continue;
    }
    if (std::strncmp(Argv[In], "--json=", 7) == 0) {
      Path = Argv[In] + 7;
      continue;
    }
    Argv[Out++] = Argv[In];
  }
  Argc = Out;
  return Path;
}

} // namespace benchjson
} // namespace asyncg

#endif // ASYNCG_BENCH_BENCHREPORT_H
