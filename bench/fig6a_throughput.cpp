//===- fig6a_throughput.cpp - reproduces Fig. 6(a) -----------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Fig. 6(a): AcmeAir server throughput (client requests per second) under
// three instrumentation settings:
//
//   baseline     — AsyncG disabled (no analysis attached)
//   nopromise    — AsyncG without promise tracking
//   withpromise  — full AsyncG (graph + all detectors)
//
// The paper reports ~2x slowdown for nopromise and ~10x for withpromise on
// GraalVM; absolute factors here depend on the simulator's work-to-analysis
// ratio, but the ordering and the large promise-tracking gap must hold.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "ag/Builder.h"
#include "apps/acmeair/App.h"
#include "apps/acmeair/Workload.h"
#include "detect/Detectors.h"
#include "jsrt/Runtime.h"

#include <chrono>
#include <cstdio>

using namespace asyncg;
using namespace asyncg::jsrt;
using namespace asyncg::acmeair;

namespace {

struct Setting {
  const char *Name;
  bool Attach;
  bool TrackPromises;
};

double runSetting(const Setting &S, uint64_t Requests, bool PromiseApp) {
  Runtime RT;
  AppConfig ACfg;
  ACfg.UsePromises = PromiseApp;
  AcmeAirApp App(RT, ACfg);
  WorkloadConfig WCfg;
  WCfg.TotalRequests = Requests;
  WCfg.Clients = 8;
  WorkloadDriver Driver(RT, ACfg.Port, WCfg);

  ag::BuilderConfig BCfg;
  BCfg.TrackPromises = S.TrackPromises;
  ag::AsyncGBuilder Builder(BCfg);
  detect::DetectorSuite Detectors;
  Detectors.attachTo(Builder);
  if (S.Attach)
    RT.hooks().attach(&Builder);

  Function Main = RT.makeBuiltin("main", [&](Runtime &, const CallArgs &) {
    App.start(JSLOC);
    Driver.start();
    return Completion::normal();
  });

  auto Start = std::chrono::steady_clock::now();
  RT.main(Main);
  auto End = std::chrono::steady_clock::now();
  double Seconds = std::chrono::duration<double>(End - Start).count();

  if (Driver.completed() != Requests || Driver.errors() != 0) {
    std::printf("  [%s] RUN FAILED: completed=%llu errors=%llu\n", S.Name,
                static_cast<unsigned long long>(Driver.completed()),
                static_cast<unsigned long long>(Driver.errors()));
    return 0;
  }
  return static_cast<double>(Requests) / Seconds;
}

double best(const Setting &S, uint64_t Requests, int Reps) {
  double Best = 0;
  for (int I = 0; I < Reps; ++I)
    Best = std::max(Best, runSetting(S, Requests, /*PromiseApp=*/true));
  return Best;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = benchjson::extractJsonPath(argc, argv);
  const uint64_t Requests = 3000;
  const int Reps = 3;

  std::printf("==========================================================="
              "=====================\n");
  std::printf("FIGURE 6(a): AcmeAir throughput under AsyncG settings "
              "(requests/second)\n");
  std::printf("==========================================================="
              "=====================\n");
  std::printf("workload: %llu requests, 8 closed-loop clients, "
              "promise-enabled db interface\n\n",
              static_cast<unsigned long long>(Requests));

  Setting Settings[] = {
      {"baseline", false, true},
      {"nopromise", true, false},
      {"withpromise", true, true},
  };

  double Results[3] = {};
  for (int I = 0; I < 3; ++I)
    Results[I] = best(Settings[I], Requests, Reps);

  std::printf("%-14s %12s %12s\n", "setting", "req/s", "slowdown");
  for (int I = 0; I < 3; ++I)
    std::printf("%-14s %12.0f %11.2fx\n", Settings[I].Name, Results[I],
                Results[I] > 0 ? Results[0] / Results[I] : 0.0);

  std::printf("\npaper shape: baseline > nopromise (~2x slower) > "
              "withpromise (~10x slower)\n");
  bool ShapeHolds = Results[0] > Results[1] && Results[1] > Results[2];
  std::printf("ordering holds here: %s\n\n", ShapeHolds ? "yes" : "NO");

  if (!JsonPath.empty()) {
    benchjson::BenchReport Report("fig6a_throughput");
    Report.config("requests", static_cast<double>(Requests));
    Report.config("clients", 8.0);
    Report.config("reps", static_cast<double>(Reps));
    for (int I = 0; I < 3; ++I) {
      Report.metric(std::string(Settings[I].Name) + "/throughput",
                    Results[I], "req/s");
      Report.metric(std::string(Settings[I].Name) + "/slowdown",
                    Results[I] > 0 ? Results[0] / Results[I] : 0.0, "x");
    }
    Report.metric("ordering_holds", ShapeHolds ? 1 : 0, "bool");
    if (!Report.write(JsonPath))
      return 1;
  }
  return ShapeHolds ? 0 : 1;
}
