//===- fig6a_throughput.cpp - reproduces Fig. 6(a) -----------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Fig. 6(a): AcmeAir server throughput (client requests per second) under
// three instrumentation settings:
//
//   baseline           — AsyncG disabled (no analysis attached)
//   nopromise          — AsyncG without promise tracking
//   withpromise        — full AsyncG (graph + all detectors), built inline
//   nopromise-async    — nopromise behind the off-thread pipeline
//   withpromise-async  — full AsyncG behind the off-thread pipeline: the
//                        loop thread only encodes events into the SPSC
//                        ring; graph + detectors run on the builder thread.
//                        A v4 columnar TraceRecorder writes the run to disk
//                        at the same time, so this row's slowdown is the
//                        full always-on production cost (analysis + trace
//                        artifact).
//   withpromise-sampled — withpromise-async under a 5% emit-time sampling
//                        budget; reports tick coverage and dropped
//                        decoration counts alongside the throughput
//
// The async settings use DrainMode::Deferred (records buffer in the ring
// during the serving window; the builder thread drains at flush), which is
// the right shape for this single-core container — a concurrent drain
// would just time-slice against the loop thread. Two numbers are reported
// for them: the serving window (time until the last request completes,
// the Fig. 6(a) requests/second definition) and the completion window
// (serving + drain until the graph is final).
//
// The paper reports ~2x slowdown for nopromise and ~10x for withpromise on
// GraalVM; absolute factors here depend on the simulator's work-to-analysis
// ratio, but the ordering and the large promise-tracking gap must hold.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "ag/AsyncPipeline.h"
#include "ag/Builder.h"
#include "apps/acmeair/App.h"
#include "apps/acmeair/Workload.h"
#include "detect/Detectors.h"
#include "jsrt/Runtime.h"

#include <chrono>
#include <cstdio>
#include <memory>

using namespace asyncg;
using namespace asyncg::jsrt;
using namespace asyncg::acmeair;

namespace {

struct Setting {
  const char *Name;
  bool Attach;
  bool TrackPromises;
  ag::PipelineMode Mode = ag::PipelineMode::Synchronous;
  /// Tee the run into a v4 trace artifact from the builder thread.
  bool Record = false;
  /// Emit-time sampling budget (percent of loop wall time; 0 = lossless).
  double SampleBudget = 0;
};

struct SettingResult {
  /// Requests/s over the serving window (last request completed).
  double Serving = 0;
  /// Requests/s over serving + graph-drain (async modes only differ here).
  double Complete = 0;
  uint64_t Records = 0;
  /// v4 record-section bytes written by the recording tee (0 = tee off).
  uint64_t RecordedBytes = 0;
  /// SPSC ring backpressure (async settings; zeros otherwise).
  ag::BackpressureStats BP;
  /// Sampling coverage (withpromise-sampled; BudgetPct 0 otherwise).
  ag::SamplingStats Sampling;
};

SettingResult runSetting(const Setting &S, uint64_t Requests,
                         bool PromiseApp) {
  Runtime RT;
  AppConfig ACfg;
  ACfg.UsePromises = PromiseApp;
  AcmeAirApp App(RT, ACfg);
  WorkloadConfig WCfg;
  WCfg.TotalRequests = Requests;
  WCfg.Clients = 8;
  WorkloadDriver Driver(RT, ACfg.Port, WCfg);

  ag::BuilderConfig BCfg;
  BCfg.TrackPromises = S.TrackPromises;
  ag::AsyncGBuilder Builder(BCfg);
  detect::DetectorSuite Detectors;
  Detectors.attachTo(Builder);
  // In async mode the builder (and its detectors) run on the pipeline's
  // thread; the loop thread only encodes records into the ring.
  std::unique_ptr<ag::AsyncPipeline> Pipeline;
  if (S.Attach) {
    if (S.Mode == ag::PipelineMode::Async) {
      ag::PipelineConfig PCfg;
      PCfg.Drain = ag::DrainMode::Deferred;
      PCfg.RingCapacity = 1 << 21; // buffer the whole run if it fits
      PCfg.SampleBudgetPct = S.SampleBudget;
      if (S.Record)
        PCfg.RecordPath = "/tmp/fig6a_" + std::string(S.Name) + ".agtrace";
      Pipeline = std::make_unique<ag::AsyncPipeline>(Builder, PCfg);
      RT.hooks().attach(Pipeline.get());
    } else {
      RT.hooks().attach(&Builder);
    }
  }

  Function Main = RT.makeBuiltin("main", [&](Runtime &, const CallArgs &) {
    App.start(JSLOC);
    Driver.start();
    return Completion::normal();
  });

  auto Start = std::chrono::steady_clock::now();
  RT.main(Main);
  auto Served = std::chrono::steady_clock::now();
  SettingResult R;
  if (Pipeline) {
    Pipeline->stop(); // drain + join: the graph is complete after this
    R.Records = Pipeline->pushedRecords();
    R.RecordedBytes = Pipeline->recordedBytes();
    R.BP = Pipeline->backpressure();
    R.Sampling = Pipeline->sampling();
    if (S.Record && Pipeline->recordingFailed())
      std::printf("  [%s] WARNING: trace artifact write failed\n", S.Name);
  }
  auto End = std::chrono::steady_clock::now();

  if (Driver.completed() != Requests || Driver.errors() != 0) {
    std::printf("  [%s] RUN FAILED: completed=%llu errors=%llu\n", S.Name,
                static_cast<unsigned long long>(Driver.completed()),
                static_cast<unsigned long long>(Driver.errors()));
    return R;
  }
  R.Serving = static_cast<double>(Requests) /
              std::chrono::duration<double>(Served - Start).count();
  R.Complete = static_cast<double>(Requests) /
               std::chrono::duration<double>(End - Start).count();
  return R;
}

SettingResult best(const Setting &S, uint64_t Requests, int Reps) {
  SettingResult Best;
  for (int I = 0; I < Reps; ++I) {
    SettingResult R = runSetting(S, Requests, /*PromiseApp=*/true);
    if (R.Serving > Best.Serving)
      Best = R;
  }
  return Best;
}

constexpr int NumSettings = 6;

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = benchjson::extractJsonPath(argc, argv);
  const uint64_t Requests = 3000;
  const int Reps = 3;

  std::printf("==========================================================="
              "=====================\n");
  std::printf("FIGURE 6(a): AcmeAir throughput under AsyncG settings "
              "(requests/second)\n");
  std::printf("==========================================================="
              "=====================\n");
  std::printf("workload: %llu requests, 8 closed-loop clients, "
              "promise-enabled db interface\n\n",
              static_cast<unsigned long long>(Requests));

  Setting Settings[NumSettings] = {
      {"baseline", false, true, ag::PipelineMode::Synchronous},
      {"nopromise", true, false, ag::PipelineMode::Synchronous},
      {"withpromise", true, true, ag::PipelineMode::Synchronous},
      {"nopromise-async", true, false, ag::PipelineMode::Async},
      {"withpromise-async", true, true, ag::PipelineMode::Async,
       /*Record=*/true},
      {"withpromise-sampled", true, true, ag::PipelineMode::Async,
       /*Record=*/false, /*SampleBudget=*/5.0},
  };

  SettingResult Results[NumSettings];
  for (int I = 0; I < NumSettings; ++I)
    Results[I] = best(Settings[I], Requests, Reps);

  double Base = Results[0].Serving;
  std::printf("%-18s %12s %10s %14s\n", "setting", "req/s", "slowdown",
              "complete-slow");
  for (int I = 0; I < NumSettings; ++I)
    std::printf("%-18s %12.0f %9.2fx %13.2fx\n", Settings[I].Name,
                Results[I].Serving,
                Results[I].Serving > 0 ? Base / Results[I].Serving : 0.0,
                Results[I].Complete > 0 ? Base / Results[I].Complete : 0.0);

  std::printf("\npaper shape: baseline > nopromise (~2x slower) > "
              "withpromise (~10x slower)\n");
  bool ShapeHolds = Results[0].Serving > Results[1].Serving &&
                    Results[1].Serving > Results[2].Serving;
  std::printf("ordering holds here: %s\n", ShapeHolds ? "yes" : "NO");

  // The pipeline must keep the serving window substantially cheaper than
  // inline withpromise: the loop thread only encodes ring records.
  bool AsyncFaster = Results[4].Serving > Results[2].Serving;
  std::printf("async serving window beats inline withpromise: %s "
              "(%.2fx vs %.2fx slowdown; complete graph at %.2fx)\n",
              AsyncFaster ? "yes" : "NO",
              Results[4].Serving > 0 ? Base / Results[4].Serving : 0.0,
              Results[2].Serving > 0 ? Base / Results[2].Serving : 0.0,
              Results[4].Complete > 0 ? Base / Results[4].Complete : 0.0);
  std::printf("withpromise-async trace artifact: %llu records, %llu "
              "record-section bytes (v4 columnar, builder-thread tee)\n",
              static_cast<unsigned long long>(Results[4].Records),
              static_cast<unsigned long long>(Results[4].RecordedBytes));
  const ag::SamplingStats &SS = Results[5].Sampling;
  std::printf("withpromise-sampled (%.0f%% budget): %llu/%llu ticks "
              "decorated (%.1f%% coverage), %llu decoration events "
              "dropped, est emit %llu ns/event\n\n",
              SS.BudgetPct,
              static_cast<unsigned long long>(SS.SampledTicks),
              static_cast<unsigned long long>(SS.TotalTicks),
              100.0 * SS.tickCoverage(),
              static_cast<unsigned long long>(SS.DroppedEvents),
              static_cast<unsigned long long>(SS.EstEmitNs));

  if (!JsonPath.empty()) {
    benchjson::BenchReport Report("fig6a_throughput");
    Report.config("requests", static_cast<double>(Requests));
    Report.config("clients", 8.0);
    Report.config("reps", static_cast<double>(Reps));
    for (int I = 0; I < NumSettings; ++I) {
      Report.metric(std::string(Settings[I].Name) + "/throughput",
                    Results[I].Serving, "req/s");
      Report.metric(std::string(Settings[I].Name) + "/slowdown",
                    Results[I].Serving > 0 ? Base / Results[I].Serving : 0.0,
                    "x");
      if (Settings[I].Mode == ag::PipelineMode::Async) {
        Report.metric(std::string(Settings[I].Name) + "/complete_slowdown",
                      Results[I].Complete > 0 ? Base / Results[I].Complete
                                              : 0.0,
                      "x");
        Report.metric(std::string(Settings[I].Name) + "/trace_records",
                      static_cast<double>(Results[I].Records), "records");
        Report.metric(std::string(Settings[I].Name) + "/ring_max_depth",
                      static_cast<double>(Results[I].BP.MaxQueueDepth),
                      "records");
        Report.metric(std::string(Settings[I].Name) + "/ring_blocked_pushes",
                      static_cast<double>(Results[I].BP.BlockedPushes),
                      "count");
        Report.metric(std::string(Settings[I].Name) + "/ring_dropped",
                      static_cast<double>(Results[I].BP.DroppedEvents),
                      "count");
      }
      if (Settings[I].Record)
        Report.metric(std::string(Settings[I].Name) + "/trace_bytes",
                      static_cast<double>(Results[I].RecordedBytes),
                      "bytes");
      if (Settings[I].SampleBudget > 0) {
        const ag::SamplingStats &S = Results[I].Sampling;
        std::string P = Settings[I].Name;
        Report.metric(P + "/budget_pct", S.BudgetPct, "%");
        Report.metric(P + "/ticks_total",
                      static_cast<double>(S.TotalTicks), "count");
        Report.metric(P + "/ticks_sampled",
                      static_cast<double>(S.SampledTicks), "count");
        Report.metric(P + "/tick_coverage", S.tickCoverage(), "ratio");
        Report.metric(P + "/dropped_decorations",
                      static_cast<double>(S.DroppedEvents), "count");
        Report.metric(P + "/est_emit_ns",
                      static_cast<double>(S.EstEmitNs), "ns");
      }
    }
    Report.metric("ordering_holds", ShapeHolds ? 1 : 0, "bool");
    Report.metric("async_beats_inline", AsyncFaster ? 1 : 0, "bool");
    if (!Report.write(JsonPath))
      return 1;
  }
  return ShapeHolds && AsyncFaster ? 0 : 1;
}
