//===- ablation_analysis_cost.cpp - where the overhead comes from --------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Ablation over the AsyncG pipeline (DESIGN.md design-choice index): the
// AcmeAir workload runs under increasingly complete configurations so the
// cost of each piece is visible:
//
//   none            no analysis attached (hooks short-circuit)
//   counter         ApiUsageCounter only (cheapest useful analysis)
//   shadow-stack    AsyncG with graph construction disabled
//                   (Algorithm 1 tick accounting only)
//   graph           full graph, promise tracking off, no detectors
//   graph+promise   full graph incl. promises, no detectors
//   full            graph + promises + all detectors (the Fig. 6(a)
//                   "withpromise" setting)
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "ag/Builder.h"
#include "apps/acmeair/App.h"
#include "apps/acmeair/Workload.h"
#include "baselines/ApiUsageCounter.h"
#include "detect/Detectors.h"
#include "jsrt/Runtime.h"

#include <chrono>
#include <cstdio>
#include <memory>

using namespace asyncg;
using namespace asyncg::jsrt;
using namespace asyncg::acmeair;

namespace {

enum class Mode { None, Counter, ShadowStack, Graph, GraphPromise, Full };

double runMode(Mode M, uint64_t Requests) {
  Runtime RT;
  AppConfig ACfg;
  AcmeAirApp App(RT, ACfg);
  WorkloadConfig WCfg;
  WCfg.TotalRequests = Requests;
  WCfg.Clients = 8;
  WorkloadDriver Driver(RT, ACfg.Port, WCfg);

  baselines::ApiUsageCounter Counter;
  ag::BuilderConfig BCfg;
  std::unique_ptr<ag::AsyncGBuilder> Builder;
  detect::DetectorSuite Detectors;

  switch (M) {
  case Mode::None:
    break;
  case Mode::Counter:
    RT.hooks().attach(&Counter);
    break;
  case Mode::ShadowStack:
    BCfg.BuildGraph = false;
    Builder = std::make_unique<ag::AsyncGBuilder>(BCfg);
    RT.hooks().attach(Builder.get());
    break;
  case Mode::Graph:
    BCfg.TrackPromises = false;
    Builder = std::make_unique<ag::AsyncGBuilder>(BCfg);
    RT.hooks().attach(Builder.get());
    break;
  case Mode::GraphPromise:
    Builder = std::make_unique<ag::AsyncGBuilder>(BCfg);
    RT.hooks().attach(Builder.get());
    break;
  case Mode::Full:
    Builder = std::make_unique<ag::AsyncGBuilder>(BCfg);
    Detectors.attachTo(*Builder);
    RT.hooks().attach(Builder.get());
    break;
  }

  Function Main = RT.makeBuiltin("main", [&](Runtime &, const CallArgs &) {
    App.start(JSLOC);
    Driver.start();
    return Completion::normal();
  });

  auto Start = std::chrono::steady_clock::now();
  RT.main(Main);
  auto End = std::chrono::steady_clock::now();
  if (Driver.completed() != Requests || Driver.errors() != 0)
    std::printf("  RUN FAILED (mode %d)\n", static_cast<int>(M));
  return std::chrono::duration<double>(End - Start).count();
}

double bestOf(Mode M, uint64_t Requests, int Reps) {
  double Best = 1e30;
  for (int I = 0; I < Reps; ++I)
    Best = std::min(Best, runMode(M, Requests));
  return Best;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = benchjson::extractJsonPath(argc, argv);
  const uint64_t Requests = 2000;
  const int Reps = 3;

  std::printf("==========================================================="
              "=====================\n");
  std::printf("ABLATION: analysis pipeline cost on the AcmeAir workload\n");
  std::printf("==========================================================="
              "=====================\n");
  std::printf("workload: %llu requests, 8 clients; best of %d runs\n\n",
              static_cast<unsigned long long>(Requests), Reps);

  struct Row {
    const char *Name;
    Mode M;
  } Rows[] = {
      {"none", Mode::None},
      {"counter", Mode::Counter},
      {"shadow-stack", Mode::ShadowStack},
      {"graph(nopromise)", Mode::Graph},
      {"graph+promise", Mode::GraphPromise},
      {"full(detectors)", Mode::Full},
  };

  benchjson::BenchReport Report("ablation_analysis_cost");
  Report.config("requests", static_cast<double>(Requests));
  Report.config("reps", static_cast<double>(Reps));
  double Base = 0;
  std::printf("%-18s %12s %12s\n", "configuration", "seconds", "overhead");
  for (const Row &R : Rows) {
    double S = bestOf(R.M, Requests, Reps);
    if (R.M == Mode::None)
      Base = S;
    std::printf("%-18s %12.3f %11.2fx\n", R.Name, S,
                Base > 0 ? S / Base : 0.0);
    Report.metric(std::string(R.Name) + "/seconds", S, "s");
    Report.metric(std::string(R.Name) + "/overhead",
                  Base > 0 ? S / Base : 0.0, "x");
  }
  std::printf("\n");
  if (!JsonPath.empty() && !Report.write(JsonPath))
    return 1;
  return 0;
}
