//===- GBenchMain.h - BENCHMARK_MAIN with --json support --------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replacement for BENCHMARK_MAIN() used by the google-benchmark harnesses
/// (micro_ag, micro_eventloop). Keeps the normal console output and, when
/// the binary is invoked with `--json <path>`, also writes a BenchReport
/// capturing each benchmark's real time and items/s counter.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_BENCH_GBENCHMAIN_H
#define ASYNCG_BENCH_GBENCHMAIN_H

#include "BenchReport.h"

#include <benchmark/benchmark.h>

namespace asyncg {
namespace benchjson {

/// Console reporter that also records each run's headline numbers.
class CaptureReporter : public benchmark::ConsoleReporter {
public:
  struct Sample {
    std::string Name;
    double RealTime;
    std::string TimeUnit;
    double ItemsPerSecond; // < 0 when the benchmark reports no counter
  };

  std::vector<Sample> Samples;

  void ReportRuns(const std::vector<Run> &Reports) override {
    benchmark::ConsoleReporter::ReportRuns(Reports);
    for (const Run &R : Reports) {
      if (R.error_occurred || R.run_type != Run::RT_Iteration)
        continue;
      Sample S;
      S.Name = R.benchmark_name();
      S.RealTime = R.GetAdjustedRealTime();
      S.TimeUnit = benchmark::GetTimeUnitString(R.time_unit);
      auto It = R.counters.find("items_per_second");
      S.ItemsPerSecond = It != R.counters.end()
                             ? static_cast<double>(It->second.value)
                             : -1.0;
      Samples.push_back(std::move(S));
    }
  }
};

/// Drop-in main() body: strips --json, runs the registered benchmarks,
/// and writes the report if requested.
inline int gbenchMain(int Argc, char **Argv, const char *BenchName) {
  std::string JsonPath = extractJsonPath(Argc, Argv);
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  CaptureReporter Reporter;
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();
  if (JsonPath.empty())
    return 0;

  BenchReport Report(BenchName);
  Report.config("harness", "google-benchmark");
  for (const CaptureReporter::Sample &S : Reporter.Samples) {
    Report.metric(S.Name + "/real_time", S.RealTime, S.TimeUnit);
    if (S.ItemsPerSecond >= 0)
      Report.metric(S.Name + "/items_per_second", S.ItemsPerSecond,
                    "items/s");
  }
  return Report.write(JsonPath) ? 0 : 1;
}

} // namespace benchjson
} // namespace asyncg

#endif // ASYNCG_BENCH_GBENCHMAIN_H
