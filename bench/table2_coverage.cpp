//===- table2_coverage.cpp - reproduces Table II --------------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Table II compares AsyncG with related tools along supported features
// (event loop / emitters / promises / async-await, automatic detection).
// We reproduce the comparison empirically with the two baseline analyzers
// implemented in this repository:
//
//   promise-only  — a PromiseKeeper-like tool (promises, no loop model)
//   emitter-only  — a Radar-like tool (emitters, no loop model)
//   AsyncG        — this system (everything)
//
// Every Table-I case runs under each analyzer; a tool "covers" a case when
// it reports the expected category. The feature matrix then follows from
// which case families each tool detects.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "ag/Builder.h"
#include "baselines/EmitterOnlyAnalyzer.h"
#include "baselines/PromiseOnlyAnalyzer.h"
#include "cases/Case.h"
#include "detect/Detectors.h"

#include <cstdio>

using namespace asyncg;
using namespace asyncg::cases;

namespace {

bool runWithPromiseOnly(const CaseDef &Def) {
  baselines::PromiseOnlyAnalyzer A;
  runCaseWith(Def, /*Fixed=*/false, A);
  return A.detectedCategories().count(Def.Expected) != 0;
}

bool runWithEmitterOnly(const CaseDef &Def) {
  baselines::EmitterOnlyAnalyzer A;
  runCaseWith(Def, /*Fixed=*/false, A);
  return A.detectedCategories().count(Def.Expected) != 0;
}

bool runWithAsyncG(const CaseDef &Def) {
  return runCase(Def, /*Fixed=*/false).ExpectedDetected;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = benchjson::extractJsonPath(argc, argv);
  std::printf("==========================================================="
              "=====================\n");
  std::printf("TABLE II: comparison with related approaches (empirical "
              "coverage)\n");
  std::printf("==========================================================="
              "=====================\n");
  std::printf("%-14s %-34s %-9s %-9s %-7s\n", "Bug name", "Category",
              "PromKeep", "Radar", "AsyncG");
  std::printf("-----------------------------------------------------------"
              "---------------------\n");

  unsigned P = 0, E = 0, A = 0, Total = 0;
  for (const CaseDef &Def : allCases()) {
    ++Total;
    bool Pd = runWithPromiseOnly(Def);
    bool Ed = runWithEmitterOnly(Def);
    bool Ad = runWithAsyncG(Def);
    P += Pd;
    E += Ed;
    A += Ad;
    std::printf("%-14s %-34s %-9s %-9s %-7s\n", Def.Name.c_str(),
                ag::bugCategoryName(Def.Expected), Pd ? "yes" : "-",
                Ed ? "yes" : "-", Ad ? "yes" : "-");
  }
  std::printf("-----------------------------------------------------------"
              "---------------------\n");
  std::printf("%-49s %-9u %-9u %-7u   (of %u)\n", "cases detected", P, E, A,
              Total);

  std::printf("\nfeature matrix (paper Table II; rows marked * are "
              "implemented in this repo):\n");
  struct MatrixRow {
    const char *Work, *Methods, *Loop, *Emitter, *Promise, *Await, *Auto;
  } Matrix[] = {
      {"Semantics [16]", "Modelling", "Y", "N", "N", "N", "N"},
      {"PromiseKeeper [26]*", "Dynamic", "N", "N", "Y", "N", "Y"},
      {"Radar [10]*", "Static", "N", "Y", "N", "N", "Y"},
      {"Clematis [22]", "Dynamic", "N", "N", "N", "N", "N"},
      {"Sahand [12]", "Dynamic", "N", "N", "N", "N", "N"},
      {"Domino [13]", "Dynamic", "N", "N", "Y", "N", "N"},
      {"Jardis [14]", "Dynamic", "N", "Y", "Y", "N", "N"},
      {"AsyncG*", "Dynamic", "Y", "Y", "Y", "Y", "Y"},
  };
  std::printf("%-22s %-10s %-10s %-8s %-8s %-11s %-9s\n", "Work", "Methods",
              "EventLoop", "Emitter", "Promise", "Async/Await", "AutoBugs");
  for (const MatrixRow &R : Matrix)
    std::printf("%-22s %-10s %-10s %-8s %-8s %-11s %-9s\n", R.Work,
                R.Methods, R.Loop, R.Emitter, R.Promise, R.Await, R.Auto);
  std::printf("\n(the AsyncG column must dominate both implemented "
              "baselines)\n\n");
  if (!JsonPath.empty()) {
    benchjson::BenchReport Report("table2_coverage");
    Report.metric("promise_only_detected", P, "count");
    Report.metric("emitter_only_detected", E, "count");
    Report.metric("asyncg_detected", A, "count");
    Report.metric("total", Total, "count");
    if (!Report.write(JsonPath))
      return 1;
  }
  return A == Total && P < A && E < A ? 0 : 1;
}
