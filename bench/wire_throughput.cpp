//===- wire_throughput.cpp - wall-clock AcmeAir over the real backends ---------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// The wall-clock companion to fig6a_throughput: AcmeAir served over real
// loopback TCP by a real kernel backend (--kernel epoll|uring|auto,
// default epoll), driven by the wire load generator, under three
// instrumentation settings
//
//   off      — no analysis attached (the serving floor)
//   record   — full AsyncG behind the off-thread pipeline, plus a v4
//              columnar trace artifact per loop (always-on production cost)
//   sampled  — record under a 5% emit-time sampling budget
//
// each at 1 loop and at 4 SO_REUSEPORT-balanced loops. Every cell reports
// the median of --reps runs (wall-clock numbers jitter; medians gate).
//
// On hosts where both real backends probe available, the bench then runs
// the epoll-vs-uring comparison legs — {off, v4-recording} x backend at
// one loop — and reports each leg's kernel-syscall cost model
// (syscalls/request: io_uring's batched submission is the whole point).
//
// Gates (exit status):
//   - every run completes all requests with zero errors and zero dropped
//     connections;
//   - record stays within 1.3x of off (single-loop medians);
//   - 4-loop off reaches >= 2x 1-loop off — asserted only when the machine
//     has >= 4 hardware threads. On fewer cores the loops time-slice one
//     core and the scaling is physically impossible; the report then
//     carries the honest non-gating numbers and says so;
//   - comparison legs (both backends available only): uring spends
//     <= 0.5x epoll's syscalls/request and serves >= 0.95x its
//     throughput.
//
// Unlike the virtual-time benches these numbers depend on the host: CPU,
// kernel version, and whatever else the machine is running. Treat them as
// a trend line, not a constant.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "apps/cluster/Harness.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#ifdef __linux__
#include <sys/stat.h>
#endif

using namespace asyncg;

namespace {

struct Cell {
  const char *Name;
  bool Instrument;
  double SampleBudget; // 0 = lossless
  uint32_t Loops;
};

struct CellResult {
  acmeair::LoadStats Wire;
  uint64_t Records = 0;
  uint64_t RecordedBytes = 0;
  ag::SamplingStats Sampling;
  sim::KernelStats Sys;
  bool Ok = false;

  double syscallsPerReq() const {
    return Wire.Completed
               ? static_cast<double>(Sys.Syscalls) /
                     static_cast<double>(Wire.Completed)
               : 0;
  }
};

CellResult runCell(sim::KernelBackend Backend, const Cell &C,
                   uint64_t Requests, int Port,
                   const std::string &RecordDir) {
  cluster::ClusterConfig Cfg;
  Cfg.Backend = Backend;
  Cfg.Loops = C.Loops;
  Cfg.Port = Port;
  Cfg.TotalRequests = Requests;
  Cfg.TotalClients = 8;
  Cfg.Instrument = C.Instrument;
  Cfg.Mode =
      C.Instrument ? ag::PipelineMode::Async : ag::PipelineMode::Synchronous;
  Cfg.SampleBudgetPct = C.SampleBudget;
  if (C.Instrument)
    Cfg.RecordDir = RecordDir;

  cluster::ClusterHarness H(Cfg);
  cluster::ClusterResult R = H.run();

  CellResult Out;
  Out.Wire = R.Wire;
  Out.Sys = R.Sys;
  for (const cluster::ShardResult &S : R.Shards) {
    Out.Records += S.PushedRecords;
    Out.RecordedBytes += S.RecordedBytes;
    Out.Sampling.SampledTicks += S.Sampling.SampledTicks;
    Out.Sampling.TotalTicks += S.Sampling.TotalTicks;
    Out.Sampling.DroppedEvents += S.Sampling.DroppedEvents;
  }
  Out.Ok = R.Wire.Completed == Requests && R.Wire.Errors == 0 &&
           R.Wire.DroppedConns == 0;
  return Out;
}

/// Median-by-throughput of \p Reps runs (each on its own port so a
/// lingering TIME_WAIT from the previous run cannot interfere).
CellResult median(sim::KernelBackend Backend, const Cell &C,
                  uint64_t Requests, int BasePort, int Reps,
                  const std::string &RecordDir) {
  std::vector<CellResult> Rs;
  for (int I = 0; I < Reps; ++I) {
    CellResult R = runCell(Backend, C, Requests, BasePort + I, RecordDir);
    if (!R.Ok) {
      std::printf("  [%s] RUN FAILED: completed=%llu errors=%llu "
                  "dropped=%llu\n",
                  C.Name, static_cast<unsigned long long>(R.Wire.Completed),
                  static_cast<unsigned long long>(R.Wire.Errors),
                  static_cast<unsigned long long>(R.Wire.DroppedConns));
      return R;
    }
    Rs.push_back(R);
  }
  std::sort(Rs.begin(), Rs.end(),
            [](const CellResult &A, const CellResult &B) {
              return A.Wire.ReqPerSec < B.Wire.ReqPerSec;
            });
  return Rs[Rs.size() / 2];
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = benchjson::extractJsonPath(argc, argv);
  uint64_t Requests = 4000;
  int Reps = 3;
  sim::KernelBackend Backend = sim::KernelBackend::Epoll;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--requests") && I + 1 < argc)
      Requests = static_cast<uint64_t>(std::atoll(argv[++I]));
    else if (!std::strcmp(argv[I], "--reps") && I + 1 < argc)
      Reps = std::atoi(argv[++I]);
    else if (!std::strcmp(argv[I], "--kernel") && I + 1 < argc) {
      if (!std::strcmp(argv[I + 1], "auto")) {
        ++I;
        std::string Why;
        Backend = sim::resolveAutoKernelBackend(&Why);
        if (Backend == sim::KernelBackend::Sim) {
          std::fprintf(stderr, "wire_throughput: --kernel auto found no "
                               "real backend (%s)\n",
                       Why.c_str());
          return 2;
        }
        std::printf("--kernel auto: %s\n", Why.c_str());
      } else if (!sim::parseKernelBackend(argv[++I], Backend) ||
                 Backend == sim::KernelBackend::Sim) {
        std::fprintf(stderr, "wire_throughput: --kernel must be 'epoll', "
                             "'uring', or 'auto' (this is the wall-clock "
                             "bench; sim has no wire)\n");
        return 2;
      }
    }
  }

  benchjson::BenchReport Report("wire_throughput");
  std::string Unavailable;
  if (!sim::kernelBackendAvailable(Backend, &Unavailable)) {
    std::printf("wire_throughput: SKIPPED — kernel backend '%s' is not "
                "available here (%s); no wall-clock numbers\n",
                sim::kernelBackendName(Backend), Unavailable.c_str());
    Report.config("skipped", Unavailable);
    if (!JsonPath.empty())
      Report.write(JsonPath);
    return 0;
  }

  const unsigned Cores = std::thread::hardware_concurrency();
  std::string RecordDir = "/tmp/asyncg_wire_throughput";
#ifdef __linux__
  ::mkdir(RecordDir.c_str(), 0755);
#endif

  std::printf("==========================================================="
              "=====================\n");
  std::printf("WIRE THROUGHPUT: AcmeAir over loopback TCP, %s kernel "
              "backend (wall clock)\n",
              sim::kernelBackendName(Backend));
  std::printf("==========================================================="
              "=====================\n");
  std::printf("workload: %llu requests, 8 keep-alive connections, median "
              "of %d runs, %u hardware thread(s)\n\n",
              static_cast<unsigned long long>(Requests), Reps, Cores);

  const Cell Cells[] = {
      {"off-1loop", false, 0, 1},      {"record-1loop", true, 0, 1},
      {"sampled-1loop", true, 5.0, 1}, {"off-4loop", false, 0, 4},
      {"record-4loop", true, 0, 4},    {"sampled-4loop", true, 5.0, 4},
  };
  constexpr int NumCells = sizeof(Cells) / sizeof(Cells[0]);

  CellResult Results[NumCells];
  bool AllOk = true;
  int Port = 9520;
  for (int I = 0; I < NumCells; ++I) {
    Results[I] = median(Backend, Cells[I], Requests, Port, Reps, RecordDir);
    Port += Reps;
    AllOk = AllOk && Results[I].Ok;
  }

  std::printf("%-15s %10s %9s %9s %9s %11s %9s\n", "setting", "req/s",
              "p50us", "p99us", "slowdown", "rec-bytes", "sys/req");
  double Off1 = Results[0].Wire.ReqPerSec;
  for (int I = 0; I < NumCells; ++I) {
    double Base = Cells[I].Loops == 1 ? Off1 : Results[3].Wire.ReqPerSec;
    std::printf("%-15s %10.0f %9llu %9llu %8.2fx %11llu %9.2f\n",
                Cells[I].Name, Results[I].Wire.ReqPerSec,
                static_cast<unsigned long long>(Results[I].Wire.P50Us),
                static_cast<unsigned long long>(Results[I].Wire.P99Us),
                Base > 0 ? Base / Results[I].Wire.ReqPerSec : 0,
                static_cast<unsigned long long>(Results[I].RecordedBytes),
                Results[I].syscallsPerReq());
    Report.metric(std::string(Cells[I].Name) + "_reqps",
                  Results[I].Wire.ReqPerSec, "req/s");
    Report.metric(std::string(Cells[I].Name) + "_p50",
                  static_cast<double>(Results[I].Wire.P50Us), "us");
    Report.metric(std::string(Cells[I].Name) + "_p99",
                  static_cast<double>(Results[I].Wire.P99Us), "us");
  }
  const ag::SamplingStats &SS = Results[2].Sampling;
  std::printf("\nsampled-1loop coverage: %llu/%llu ticks, %llu decoration "
              "events dropped\n",
              static_cast<unsigned long long>(SS.SampledTicks),
              static_cast<unsigned long long>(SS.TotalTicks),
              static_cast<unsigned long long>(SS.DroppedEvents));

  double RecordSlowdown =
      Results[1].Wire.ReqPerSec > 0 ? Off1 / Results[1].Wire.ReqPerSec : 999;
  double Scaling =
      Off1 > 0 ? Results[3].Wire.ReqPerSec / Off1 : 0;
  Report.config("requests", static_cast<double>(Requests));
  Report.config("reps", static_cast<double>(Reps));
  Report.config("hardware_threads", static_cast<double>(Cores));
  Report.config("kernel_backend", sim::kernelBackendName(Backend));
  // Marks every metric here as wall-clock for bench_compare's looser
  // jitter tolerance class (medians already absorb the worst of it).
  Report.config("timing", "wall-clock");
  Report.metric("record_slowdown", RecordSlowdown, "x");
  // "speedup"/ratio so the compare tool treats higher as better.
  Report.metric("reuseport_speedup_1to4", Scaling, "ratio");

  bool Pass = AllOk;
  std::printf("\nrecord slowdown (1 loop): %.2fx %s (gate: <= 1.3x)\n",
              RecordSlowdown, RecordSlowdown <= 1.3 ? "PASS" : "FAIL");
  if (RecordSlowdown > 1.3)
    Pass = false;

  std::printf("SO_REUSEPORT scaling 1->4 loops: %.2fx", Scaling);
  if (Cores >= 4) {
    std::printf(" %s (gate: >= 2x)\n", Scaling >= 2.0 ? "PASS" : "FAIL");
    if (Scaling < 2.0)
      Pass = false;
  } else {
    std::printf(" NOT GATED: only %u hardware thread(s) — %u loops "
                "time-slice the same core(s), so parallel speedup is "
                "physically impossible here; the number is reported for "
                "honesty, not asserted\n",
                Cores, 4u);
  }

  // The epoll-vs-uring comparison: {off, v4-recording} x backend at one
  // loop. The main grid above already measured the chosen backend's two
  // cells; only the other backend's legs run here. Skipped (loudly, not
  // silently) when the other backend cannot probe.
  const sim::KernelBackend Other = Backend == sim::KernelBackend::Uring
                                       ? sim::KernelBackend::Epoll
                                       : sim::KernelBackend::Uring;
  std::string OtherWhy;
  if (!sim::kernelBackendAvailable(Other, &OtherWhy)) {
    std::printf("\nepoll-vs-uring comparison: SKIPPED — backend '%s' is "
                "not available here (%s); syscall-model gates not "
                "asserted\n",
                sim::kernelBackendName(Other), OtherWhy.c_str());
    Report.config("uring_comparison", "skipped: " + OtherWhy);
  } else {
    CellResult OtherOff =
        median(Other, Cells[0], Requests, Port, Reps, RecordDir);
    Port += Reps;
    CellResult OtherRec =
        median(Other, Cells[1], Requests, Port, Reps, RecordDir);
    Port += Reps;
    AllOk = AllOk && OtherOff.Ok && OtherRec.Ok;

    const CellResult &EpOff =
        Backend == sim::KernelBackend::Epoll ? Results[0] : OtherOff;
    const CellResult &EpRec =
        Backend == sim::KernelBackend::Epoll ? Results[1] : OtherRec;
    const CellResult &UrOff =
        Backend == sim::KernelBackend::Uring ? Results[0] : OtherOff;
    const CellResult &UrRec =
        Backend == sim::KernelBackend::Uring ? Results[1] : OtherRec;

    std::printf("\nepoll-vs-uring (1 loop, medians):\n");
    std::printf("%-15s %10s %9s | %10s %9s\n", "setting", "epoll-rps",
                "sys/req", "uring-rps", "sys/req");
    std::printf("%-15s %10.0f %9.2f | %10.0f %9.2f\n", "off",
                EpOff.Wire.ReqPerSec, EpOff.syscallsPerReq(),
                UrOff.Wire.ReqPerSec, UrOff.syscallsPerReq());
    std::printf("%-15s %10.0f %9.2f | %10.0f %9.2f\n", "record",
                EpRec.Wire.ReqPerSec, EpRec.syscallsPerReq(),
                UrRec.Wire.ReqPerSec, UrRec.syscallsPerReq());

    double SysRatio = EpOff.syscallsPerReq() > 0
                          ? UrOff.syscallsPerReq() / EpOff.syscallsPerReq()
                          : 999;
    double RpsRatio = EpOff.Wire.ReqPerSec > 0
                          ? UrOff.Wire.ReqPerSec / EpOff.Wire.ReqPerSec
                          : 0;
    Report.metric("epoll_syscalls_per_req", EpOff.syscallsPerReq(), "n");
    Report.metric("uring_syscalls_per_req", UrOff.syscallsPerReq(), "n");
    Report.metric("uring_record_syscalls_per_req", UrRec.syscallsPerReq(),
                  "n");
    Report.metric("uring_syscall_ratio", SysRatio, "x");
    // ratio so the compare tool treats higher as better.
    Report.metric("uring_throughput_ratio", RpsRatio, "ratio");

    std::printf("uring syscalls/request: %.2fx of epoll %s (gate: <= "
                "0.5x)\n",
                SysRatio, SysRatio <= 0.5 ? "PASS" : "FAIL");
    if (SysRatio > 0.5)
      Pass = false;
    std::printf("uring throughput: %.2fx of epoll %s (gate: >= 0.95x)\n",
                RpsRatio, RpsRatio >= 0.95 ? "PASS" : "FAIL");
    if (RpsRatio < 0.95)
      Pass = false;
    Pass = Pass && AllOk;
  }

  if (!JsonPath.empty() && Report.write(JsonPath))
    std::printf("wrote %s\n", JsonPath.c_str());
  std::printf("%s\n", Pass ? "ALL GATES PASS" : "GATE FAILURE");
  return Pass ? 0 : 1;
}
