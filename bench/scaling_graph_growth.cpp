//===- scaling_graph_growth.cpp - AG size/cost vs workload size ----------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Scalability sweep (ours, beyond the paper): how the Async Graph and the
// analysis cost grow with the number of served requests. The paper keeps
// the whole AG in memory for the run; this quantifies that design choice
// on the AcmeAir workload.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "ag/Builder.h"
#include "apps/acmeair/App.h"
#include "apps/acmeair/Workload.h"
#include "detect/Detectors.h"
#include "jsrt/Runtime.h"

#include <chrono>
#include <cstdio>

using namespace asyncg;
using namespace asyncg::jsrt;
using namespace asyncg::acmeair;

namespace {

struct Row {
  uint64_t Requests;
  size_t Nodes;
  size_t Edges;
  size_t Ticks;
  size_t WarningCount;
  size_t MemoryBytes;
  double Seconds;
};

Row runSize(uint64_t Requests) {
  Runtime RT;
  AppConfig ACfg;
  AcmeAirApp App(RT, ACfg);
  WorkloadConfig WCfg;
  WCfg.TotalRequests = Requests;
  WCfg.Clients = 8;
  WorkloadDriver Driver(RT, ACfg.Port, WCfg);

  ag::AsyncGBuilder Builder;
  detect::DetectorSuite Detectors;
  Detectors.attachTo(Builder);
  RT.hooks().attach(&Builder);

  Function Main = RT.makeBuiltin("main", [&](Runtime &, const CallArgs &) {
    App.start(JSLOC);
    Driver.start();
    return Completion::normal();
  });
  auto Start = std::chrono::steady_clock::now();
  RT.main(Main);
  auto End = std::chrono::steady_clock::now();

  Row R;
  R.Requests = Requests;
  R.Nodes = Builder.graph().nodeCount();
  R.Edges = Builder.graph().edges().size();
  R.Ticks = Builder.graph().ticks().size();
  R.WarningCount = Builder.graph().warnings().size();
  R.MemoryBytes = Builder.graph().memoryFootprint();
  R.Seconds = std::chrono::duration<double>(End - Start).count();
  return R;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = benchjson::extractJsonPath(argc, argv);
  std::printf("==========================================================="
              "=====================\n");
  std::printf("SCALING: Async Graph growth vs served requests (AcmeAir, "
              "full AsyncG)\n");
  std::printf("==========================================================="
              "=====================\n");
  std::printf("%-10s %12s %12s %10s %10s %12s %10s %12s\n", "requests",
              "nodes", "edges", "ticks", "warnings", "mem(KiB)", "seconds",
              "nodes/req");
  uint64_t Sizes[] = {125, 250, 500, 1000, 2000, 4000};
  double PrevPerReq = 0;
  bool Linearish = true;
  benchjson::BenchReport Report("scaling_graph_growth");
  Report.config("clients", 8.0);
  for (uint64_t S : Sizes) {
    Row R = runSize(S);
    double PerReq = static_cast<double>(R.Nodes) / static_cast<double>(S);
    std::printf("%-10llu %12zu %12zu %10zu %10zu %12.1f %10.3f %12.1f\n",
                static_cast<unsigned long long>(R.Requests), R.Nodes,
                R.Edges, R.Ticks, R.WarningCount,
                static_cast<double>(R.MemoryBytes) / 1024.0, R.Seconds,
                PerReq);
    if (PrevPerReq > 0 && PerReq > PrevPerReq * 1.5)
      Linearish = false;
    PrevPerReq = PerReq;
    std::string Prefix = "requests_" + std::to_string(S);
    Report.metric(Prefix + "/nodes", static_cast<double>(R.Nodes), "count");
    Report.metric(Prefix + "/edges", static_cast<double>(R.Edges), "count");
    Report.metric(Prefix + "/memory",
                  static_cast<double>(R.MemoryBytes), "bytes");
    Report.metric(Prefix + "/seconds", R.Seconds, "s");
  }
  std::printf("\ngraph growth is linear in served requests: %s\n\n",
              Linearish ? "yes" : "NO");
  Report.metric("linear_growth", Linearish ? 1 : 0, "bool");
  if (!JsonPath.empty() && !Report.write(JsonPath))
    return 1;
  return Linearish ? 0 : 1;
}
