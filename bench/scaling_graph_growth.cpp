//===- scaling_graph_growth.cpp - AG size/cost vs workload size ----------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Scalability sweep (ours, beyond the paper): how the Async Graph and the
// analysis cost grow with the number of served requests. The paper keeps
// the whole AG in memory for the run; this quantifies that design choice
// on the AcmeAir workload.
//
//===----------------------------------------------------------------------===//

#include "ag/Builder.h"
#include "apps/acmeair/App.h"
#include "apps/acmeair/Workload.h"
#include "detect/Detectors.h"
#include "jsrt/Runtime.h"

#include <chrono>
#include <cstdio>

using namespace asyncg;
using namespace asyncg::jsrt;
using namespace asyncg::acmeair;

namespace {

struct Row {
  uint64_t Requests;
  size_t Nodes;
  size_t Edges;
  size_t Ticks;
  size_t WarningCount;
  double Seconds;
};

Row runSize(uint64_t Requests) {
  Runtime RT;
  AppConfig ACfg;
  AcmeAirApp App(RT, ACfg);
  WorkloadConfig WCfg;
  WCfg.TotalRequests = Requests;
  WCfg.Clients = 8;
  WorkloadDriver Driver(RT, ACfg.Port, WCfg);

  ag::AsyncGBuilder Builder;
  detect::DetectorSuite Detectors;
  Detectors.attachTo(Builder);
  RT.hooks().attach(&Builder);

  Function Main = RT.makeBuiltin("main", [&](Runtime &, const CallArgs &) {
    App.start(JSLOC);
    Driver.start();
    return Completion::normal();
  });
  auto Start = std::chrono::steady_clock::now();
  RT.main(Main);
  auto End = std::chrono::steady_clock::now();

  Row R;
  R.Requests = Requests;
  R.Nodes = Builder.graph().nodeCount();
  R.Edges = Builder.graph().edges().size();
  R.Ticks = Builder.graph().ticks().size();
  R.WarningCount = Builder.graph().warnings().size();
  R.Seconds = std::chrono::duration<double>(End - Start).count();
  return R;
}

} // namespace

int main() {
  std::printf("==========================================================="
              "=====================\n");
  std::printf("SCALING: Async Graph growth vs served requests (AcmeAir, "
              "full AsyncG)\n");
  std::printf("==========================================================="
              "=====================\n");
  std::printf("%-10s %12s %12s %10s %10s %10s %12s\n", "requests", "nodes",
              "edges", "ticks", "warnings", "seconds", "nodes/req");
  uint64_t Sizes[] = {125, 250, 500, 1000, 2000, 4000};
  double PrevPerReq = 0;
  bool Linearish = true;
  for (uint64_t S : Sizes) {
    Row R = runSize(S);
    double PerReq = static_cast<double>(R.Nodes) / static_cast<double>(S);
    std::printf("%-10llu %12zu %12zu %10zu %10zu %10.3f %12.1f\n",
                static_cast<unsigned long long>(R.Requests), R.Nodes,
                R.Edges, R.Ticks, R.WarningCount, R.Seconds, PerReq);
    if (PrevPerReq > 0 && PerReq > PrevPerReq * 1.5)
      Linearish = false;
    PrevPerReq = PerReq;
  }
  std::printf("\ngraph growth is linear in served requests: %s\n\n",
              Linearish ? "yes" : "NO");
  return Linearish ? 0 : 1;
}
