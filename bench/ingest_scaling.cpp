//===- ingest_scaling.cpp - parallel trace ingestion benchmark -----------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Measures the parallel ingest hub (ag/IngestHub.h) against the classic
// serial replay on the Fig. 6(a) AcmeAir workload:
//
//   decode stage — the gated contest, following micro_codec's precedent:
//                both sides run the builder at BuildGraph=false (the
//                repo's documented ablation baseline: shadow stack +
//                tick accounting, no graph materialization), so the
//                numbers isolate the stage the hub actually changes —
//                frame scan, record decode, event dispatch. Serial is
//                replayTrace()'s record-at-a-time mmap path, untouched;
//                pipelined is IngestHub at --jobs 1 (frame pre-scan,
//                batch-scoped function memo, exact decoder/tick
//                pre-sizing, decode-ahead prefetch). Gated: >= 1.25x.
//                The jobs=4 decode leg gates >= 2x only on hosts with
//                >= 4 hardware threads.
//   full build — the same serial-vs-hub contest with the graph on.
//                Reported, not gated: ~80% of a full build is addNode/
//                intern/edge work that is byte-identical on both sides
//                (the ordered-commit contract demands it), so the
//                end-to-end ratio is structurally capped near 1.15x on
//                one core no matter how fast the decode stage gets.
//   jobs sweep — full-build IngestHub at 2 and 4 decode threads.
//                Reported for the record: on single-core containers
//                thread handoff overhead without parallel hardware
//                makes the sweep *slower*, which is exactly why Jobs
//                defaults to 1.
//   merge      — two cluster shard streams, serial (replay each + batch
//                ShardedGraph::build) vs the hub's streaming merge.
//                Reported; gated on parity only.
//   detect     — full pipeline with the detector suite attached (live
//                observers ride the same ordered commit). Reported, not
//                gated: detector work dominates and is identical.
//
// Every hub leg checks byte-identical DOT output (and, for the detect leg,
// an identical warnings report) against its serial reference — the
// ordered-commit contract is the point of the design, so the bench fails
// hard on any divergence at any job count.
//
// With --parity-only (the bench_smoke.sh sanitizer leg) the workload
// shrinks and the exit code gates on parity alone: timing under
// sanitizers is meaningless, but every decode pool/commit/merge path
// still runs race-checked.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "ag/Builder.h"
#include "ag/IngestHub.h"
#include "ag/ShardedGraph.h"
#include "apps/acmeair/App.h"
#include "apps/acmeair/Workload.h"
#include "apps/cluster/Harness.h"
#include "detect/Detectors.h"
#include "instr/TraceCodec.h"
#include "jsrt/Runtime.h"
#include "viz/Dot.h"
#include "viz/TextReport.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace asyncg;
using namespace asyncg::jsrt;
using namespace asyncg::acmeair;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// One serial pass: the pre-existing replay path into a fresh builder.
/// \p BuildGraph false runs the decode-stage ablation configuration.
double serialOnce(const std::string &Path, bool Detect, bool BuildGraph,
                  std::string *Dot, std::string *Warnings) {
  ag::BuilderConfig Cfg;
  Cfg.BuildGraph = BuildGraph;
  ag::AsyncGBuilder Builder(Cfg);
  std::unique_ptr<detect::DetectorSuite> Suite;
  if (Detect) {
    Suite.reset(new detect::DetectorSuite());
    Suite->attachTo(Builder);
  }
  std::string Err;
  auto T0 = std::chrono::steady_clock::now();
  if (!instr::replayTrace(Path, Builder, &Err)) {
    std::fprintf(stderr, "serial replay of %s failed: %s\n", Path.c_str(),
                 Err.c_str());
    std::exit(1);
  }
  double Secs = secondsSince(T0);
  if (Dot)
    *Dot = viz::toDot(Builder.graph());
  if (Warnings)
    *Warnings = viz::warningsReport(Builder.graph());
  return Secs;
}

/// One hub pass over \p Paths at \p Jobs decode threads.
double hubOnce(const std::vector<std::string> &Paths, unsigned Jobs,
               bool Detect, bool BuildGraph, std::string *Dot,
               std::string *Warnings) {
  ag::IngestOptions Opts;
  Opts.Jobs = Jobs;
  Opts.Builder.BuildGraph = BuildGraph;
  ag::IngestHub Hub(Opts);
  std::vector<std::unique_ptr<detect::DetectorSuite>> Suites;
  for (const std::string &P : Paths) {
    size_t S = Hub.addFile(P);
    if (Detect) {
      Suites.emplace_back(new detect::DetectorSuite());
      Suites.back()->attachTo(Hub.builder(S));
    }
  }
  std::string Err;
  auto T0 = std::chrono::steady_clock::now();
  if (!Hub.run(&Err)) {
    std::fprintf(stderr, "hub ingest failed (jobs=%u): %s\n", Jobs,
                 Err.c_str());
    std::exit(1);
  }
  double Secs = secondsSince(T0);
  if (Dot)
    *Dot = viz::toDot(Hub.graph());
  if (Warnings)
    *Warnings = viz::warningsReport(Hub.graph());
  return Secs;
}

template <typename Fn> double bestOf(int Reps, Fn &&F) {
  double Best = 1e30;
  for (int I = 0; I < Reps; ++I) {
    double S = F(I);
    if (S < Best)
      Best = S;
  }
  return Best;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = benchjson::extractJsonPath(argc, argv);
  bool ParityOnly = false;
  for (int I = 1; I < argc; ++I)
    if (std::string(argv[I]) == "--parity-only")
      ParityOnly = true;
  const uint64_t Requests = ParityOnly ? 800 : 3000;
  const int Reps = ParityOnly ? 2 : 5;
  const unsigned HwThreads = std::thread::hardware_concurrency();

  std::printf("==========================================================="
              "=====================\n");
  std::printf("INGEST: serial replay vs work-stealing frame-decode "
              "pipeline\n");
  std::printf("==========================================================="
              "=====================\n");
  std::printf("workload: AcmeAir, %llu requests, 8 closed-loop clients; "
              "%u hardware thread(s)\n\n",
              static_cast<unsigned long long>(Requests), HwThreads);

  std::string TmpDir = "/tmp";
  if (const char *T = std::getenv("TMPDIR"); T && *T)
    TmpDir = T;
  std::string TracePath = TmpDir + "/ingest_scaling.agtrace";
  std::string ShardDir = TmpDir + "/ingest_scaling_shards";

  // Record the single-stream workload trace.
  instr::TraceRecorder Rec;
  if (!Rec.open(TracePath)) {
    std::fprintf(stderr, "cannot open %s\n", TracePath.c_str());
    return 1;
  }
  {
    Runtime RT;
    AppConfig ACfg;
    AcmeAirApp App(RT, ACfg);
    WorkloadConfig WCfg;
    WCfg.TotalRequests = Requests;
    WCfg.Clients = 8;
    WorkloadDriver Driver(RT, ACfg.Port, WCfg);
    RT.hooks().attach(&Rec);
    Function Main = RT.makeBuiltin("main", [&](Runtime &, const CallArgs &) {
      App.start(JSLOC);
      Driver.start();
      return Completion::normal();
    });
    RT.main(Main);
    if (!Rec.finalize()) {
      std::fprintf(stderr, "trace finalize failed\n");
      return 1;
    }
    if (Driver.completed() != Requests || Driver.errors() != 0) {
      std::fprintf(stderr, "RUN FAILED: completed=%llu errors=%llu\n",
                   static_cast<unsigned long long>(Driver.completed()),
                   static_cast<unsigned long long>(Driver.errors()));
      return 1;
    }
  }
  uint64_t Records = Rec.recordCount();

  // Record the two-shard cluster trace for the merge leg.
  if (::system(("mkdir -p " + ShardDir).c_str()) != 0) {
    std::fprintf(stderr, "cannot create %s\n", ShardDir.c_str());
    return 1;
  }
  {
    cluster::ClusterConfig CCfg;
    CCfg.Loops = 2;
    CCfg.TotalRequests = ParityOnly ? 200 : 1000;
    CCfg.TotalClients = 4;
    CCfg.RecordDir = ShardDir;
    cluster::ClusterHarness Harness(CCfg);
    Harness.run();
  }
  std::vector<std::string> ShardPaths = {ShardDir + "/shard0.agtrace",
                                         ShardDir + "/shard1.agtrace"};

  // --- Decode-stage legs: the gated contest (BuildGraph off both sides,
  // so only the stage the hub changes is on the clock). Parity is proven
  // by the full-build legs below — there is no graph to diff here. The
  // contestants alternate within each rep so slow drift (page cache,
  // frequency scaling) hits both sides equally instead of biasing the
  // ratio.
  double DecodeSerial = 1e30, DecodePipelined = 1e30, DecodeJobs4 = 1e30;
  for (int I = 0; I < Reps + 2; ++I) {
    DecodeSerial = std::min(
        DecodeSerial, serialOnce(TracePath, false, false, nullptr, nullptr));
    DecodePipelined = std::min(
        DecodePipelined, hubOnce({TracePath}, 1, false, false, nullptr,
                                 nullptr));
    DecodeJobs4 = std::min(
        DecodeJobs4, hubOnce({TracePath}, 4, false, false, nullptr, nullptr));
  }
  double SpeedupPipelined =
      DecodePipelined > 0 ? DecodeSerial / DecodePipelined : 0;
  double SpeedupJobs4 = DecodeJobs4 > 0 ? DecodeSerial / DecodeJobs4 : 0;

  // --- Full-build legs: reported end-to-end, parity-checked -------------
  std::string DotSerial, DotPipelined, DotJ2, DotJ4;
  double Serial = bestOf(Reps, [&](int I) {
    return serialOnce(TracePath, false, true, I == 0 ? &DotSerial : nullptr,
                      nullptr);
  });
  double Pipelined = bestOf(Reps, [&](int I) {
    return hubOnce({TracePath}, 1, false, true,
                   I == 0 ? &DotPipelined : nullptr, nullptr);
  });
  double Jobs2 = bestOf(Reps, [&](int I) {
    return hubOnce({TracePath}, 2, false, true, I == 0 ? &DotJ2 : nullptr,
                   nullptr);
  });
  double Jobs4 = bestOf(Reps, [&](int I) {
    return hubOnce({TracePath}, 4, false, true, I == 0 ? &DotJ4 : nullptr,
                   nullptr);
  });
  double SpeedupFull = Pipelined > 0 ? Serial / Pipelined : 0;
  bool ParitySingle = DotSerial == DotPipelined && DotSerial == DotJ2 &&
                      DotSerial == DotJ4;

  // --- Detect leg: full pipeline with live observers --------------------
  std::string WarnSerial, WarnPipelined;
  double DetectSerial = bestOf(Reps, [&](int I) {
    return serialOnce(TracePath, true, true, nullptr,
                      I == 0 ? &WarnSerial : nullptr);
  });
  double DetectPipelined = bestOf(Reps, [&](int I) {
    return hubOnce({TracePath}, 1, true, true, nullptr,
                   I == 0 ? &WarnPipelined : nullptr);
  });
  bool ParityWarnings = WarnSerial == WarnPipelined;

  // --- Merge leg: two shard streams --------------------------------------
  std::string DotMergeSerial, DotMergeHub, WarnMergeSerial, WarnMergeHub;
  double MergeSerial = bestOf(Reps, [&](int I) {
    std::string *Dot = I == 0 ? &DotMergeSerial : nullptr;
    std::vector<std::unique_ptr<ag::AsyncGBuilder>> Builders;
    std::string Err;
    auto T0 = std::chrono::steady_clock::now();
    for (const std::string &P : ShardPaths) {
      Builders.emplace_back(new ag::AsyncGBuilder());
      if (!instr::replayTrace(P, *Builders.back(), &Err)) {
        std::fprintf(stderr, "shard replay of %s failed: %s\n", P.c_str(),
                     Err.c_str());
        std::exit(1);
      }
    }
    ag::ShardedGraph Merged;
    std::vector<const ag::AsyncGraph *> Shards;
    for (auto &B : Builders)
      Shards.push_back(&B->graph());
    Merged.build(Shards);
    double Secs = secondsSince(T0);
    if (Dot) {
      *Dot = viz::toDot(Merged.merged());
      WarnMergeSerial = viz::warningsReport(Merged.merged());
    }
    return Secs;
  });
  double MergeHub = bestOf(Reps, [&](int I) {
    double S = hubOnce(ShardPaths, 1, false, true,
                       I == 0 ? &DotMergeHub : nullptr,
                       I == 0 ? &WarnMergeHub : nullptr);
    return S;
  });
  bool ParityMerge =
      DotMergeSerial == DotMergeHub && WarnMergeSerial == WarnMergeHub;

  bool Parity = ParitySingle && ParityWarnings && ParityMerge;
  bool Jobs4GateArmed = HwThreads >= 4;

  std::printf("%-30s %14llu records\n", "event stream",
              static_cast<unsigned long long>(Records));
  std::printf("-- decode stage (BuildGraph off; the gated contest) --\n");
  std::printf("%-30s %11.2f ms  (replayTrace mmap, best of %d)\n",
              "decode serial", DecodeSerial * 1e3, Reps);
  std::printf("%-30s %11.2f ms  (%.2fx; acceptance: >= 1.25x)\n",
              "decode pipelined (jobs=1)", DecodePipelined * 1e3,
              SpeedupPipelined);
  std::printf("%-30s %11.2f ms  (%.2fx; gate %s: %u hw thread(s))\n",
              "decode parallel (jobs=4)", DecodeJobs4 * 1e3, SpeedupJobs4,
              Jobs4GateArmed ? "armed >= 2x" : "not armed", HwThreads);
  std::printf("-- full build (reported, not gated; shared graph work "
              "dominates) --\n");
  std::printf("%-30s %11.2f ms  (replayTrace mmap, best of %d)\n",
              "serial replay", Serial * 1e3, Reps);
  std::printf("%-30s %11.2f ms  (%.2fx)\n", "pipelined ingest (jobs=1)",
              Pipelined * 1e3, SpeedupFull);
  std::printf("%-30s %11.2f ms\n", "parallel ingest (jobs=2)", Jobs2 * 1e3);
  std::printf("%-30s %11.2f ms\n", "parallel ingest (jobs=4)", Jobs4 * 1e3);
  std::printf("%-30s %11.2f ms  (reported, not gated)\n",
              "serial replay + detectors", DetectSerial * 1e3);
  std::printf("%-30s %11.2f ms  (%.2fx)\n", "pipelined + detectors",
              DetectPipelined * 1e3,
              DetectPipelined > 0 ? DetectSerial / DetectPipelined : 0);
  std::printf("%-30s %11.2f ms  (2 shards, batch merge)\n",
              "merge serial", MergeSerial * 1e3);
  std::printf("%-30s %11.2f ms  (streaming merge)\n", "merge hub",
              MergeHub * 1e3);
  std::printf("%-30s %14s\n", "DOT parity (all job counts)",
              ParitySingle ? "identical" : "DIVERGED");
  std::printf("%-30s %14s\n", "warnings parity",
              ParityWarnings ? "identical" : "DIVERGED");
  std::printf("%-30s %14s\n\n", "merge parity",
              ParityMerge ? "identical" : "DIVERGED");

  std::remove(TracePath.c_str());
  for (const std::string &P : ShardPaths)
    std::remove(P.c_str());

  if (!JsonPath.empty()) {
    benchjson::BenchReport Report("ingest_scaling");
    // Real elapsed time on whatever host runs the bench; judged against
    // the looser wall-clock tolerance in bench_compare.py, like
    // wire_throughput. The hard >=1.25x decode gate lives in this bench's
    // own exit code, not in the cross-run diff.
    Report.config("timing", "wall-clock");
    Report.config("requests", static_cast<double>(Requests));
    Report.config("clients", 8.0);
    Report.config("reps", static_cast<double>(Reps));
    Report.config("hw_threads", static_cast<double>(HwThreads));
    Report.metric("trace_records", static_cast<double>(Records), "records");
    Report.metric("ingest_decode_serial_ms", DecodeSerial * 1e3, "ms");
    Report.metric("ingest_decode_pipelined_ms", DecodePipelined * 1e3, "ms");
    Report.metric("ingest_decode_jobs4_ms", DecodeJobs4 * 1e3, "ms");
    Report.metric("ingest_serial_ms", Serial * 1e3, "ms");
    Report.metric("ingest_pipelined_ms", Pipelined * 1e3, "ms");
    Report.metric("ingest_jobs2_ms", Jobs2 * 1e3, "ms");
    Report.metric("ingest_jobs4_ms", Jobs4 * 1e3, "ms");
    Report.metric("ingest_speedup_pipelined", SpeedupPipelined, "ratio");
    Report.metric("ingest_speedup_jobs4", SpeedupJobs4, "ratio");
    Report.metric("ingest_speedup_full", SpeedupFull, "ratio");
    Report.metric("ingest_detect_serial_ms", DetectSerial * 1e3, "ms");
    Report.metric("ingest_detect_pipelined_ms", DetectPipelined * 1e3, "ms");
    Report.metric("ingest_merge_serial_ms", MergeSerial * 1e3, "ms");
    Report.metric("ingest_merge_hub_ms", MergeHub * 1e3, "ms");
    Report.metric("ingest_parity", Parity ? 1 : 0, "bool");
    Report.metric("pipelined_gate_1_25x", SpeedupPipelined >= 1.25 ? 1 : 0,
                  "bool");
    // Armed only with real parallel hardware; reported as pass otherwise
    // so single-core CI doesn't gate on thread handoff overhead.
    Report.metric("jobs4_gate_2x",
                  !Jobs4GateArmed || SpeedupJobs4 >= 2.0 ? 1 : 0, "bool");
    if (!Report.write(JsonPath))
      return 1;
  }
  if (ParityOnly)
    return Parity ? 0 : 1;
  bool Pass = Parity && SpeedupPipelined >= 1.25 &&
              (!Jobs4GateArmed || SpeedupJobs4 >= 2.0);
  return Pass ? 0 : 1;
}
