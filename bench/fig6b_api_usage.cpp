//===- fig6b_api_usage.cpp - reproduces Fig. 6(b) -------------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Fig. 6(b): the average number of asynchronous callback executions per
// client request for the most used APIs while AcmeAir serves the JMeter
// workload. The paper reports nextTick ~8.70, emitter ~4.31, promise
// ~1.31 per request.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "apps/acmeair/App.h"
#include "apps/acmeair/Workload.h"
#include "baselines/ApiUsageCounter.h"
#include "jsrt/Runtime.h"

#include <cstdio>

using namespace asyncg;
using namespace asyncg::jsrt;
using namespace asyncg::acmeair;
using baselines::ApiFamily;

int main(int argc, char **argv) {
  std::string JsonPath = benchjson::extractJsonPath(argc, argv);
  const uint64_t Requests = 4000;

  Runtime RT;
  AppConfig ACfg;
  ACfg.UsePromises = true; // the paper's modified (promise) AcmeAir
  AcmeAirApp App(RT, ACfg);
  WorkloadConfig WCfg;
  WCfg.TotalRequests = Requests;
  WCfg.Clients = 8;
  WorkloadDriver Driver(RT, ACfg.Port, WCfg);

  baselines::ApiUsageCounter Usage;
  RT.hooks().attach(&Usage);

  Function Main = RT.makeBuiltin("main", [&](Runtime &, const CallArgs &) {
    App.start(JSLOC);
    Driver.start();
    return Completion::normal();
  });
  RT.main(Main);

  std::printf("==========================================================="
              "=====================\n");
  std::printf("FIGURE 6(b): async API callback executions per client "
              "request\n");
  std::printf("==========================================================="
              "=====================\n");
  std::printf("workload: %llu requests (%llu completed, %llu errors)\n\n",
              static_cast<unsigned long long>(Requests),
              static_cast<unsigned long long>(Driver.completed()),
              static_cast<unsigned long long>(Driver.errors()));

  double N = static_cast<double>(Driver.completed());
  struct Row {
    ApiFamily Fam;
    double Paper;
  } Rows[] = {
      {ApiFamily::NextTick, 8.70},
      {ApiFamily::Emitter, 4.31},
      {ApiFamily::Promise, 1.31},
  };

  benchjson::BenchReport Report("fig6b_api_usage");
  Report.config("requests", static_cast<double>(Requests));
  std::printf("%-12s %12s %12s\n", "API", "measured", "paper");
  double Prev = 1e9;
  bool OrderingHolds = true;
  for (const Row &R : Rows) {
    double PerReq = static_cast<double>(Usage.executions(R.Fam)) / N;
    std::printf("%-12s %12.2f %12.2f\n", baselines::apiFamilyName(R.Fam),
                PerReq, R.Paper);
    Report.metric(std::string(baselines::apiFamilyName(R.Fam)) +
                      "/executions_per_request",
                  PerReq, "count/req");
    if (PerReq > Prev)
      OrderingHolds = false;
    Prev = PerReq;
  }
  std::printf("\npaper ordering (nextTick > emitter > promise) holds: %s\n\n",
              OrderingHolds ? "yes" : "NO");
  Report.metric("ordering_holds", OrderingHolds ? 1 : 0, "bool");
  if (!JsonPath.empty() && !Report.write(JsonPath))
    return 1;
  return OrderingHolds && Driver.errors() == 0 ? 0 : 1;
}
