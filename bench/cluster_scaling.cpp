//===- cluster_scaling.cpp - cores vs throughput for cluster mode --------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Cluster-mode scaling curve: AcmeAir aggregate throughput at 1, 2, and 4
// event loops, fully instrumented (per-shard AsyncGBuilder + DetectorSuite
// behind the per-shard SPSC ring pipeline), with a fixed total client pool
// large enough that the single loop is dispatch-saturated. That is the
// regime cluster mode exists for: one loop is the bottleneck, and sharding
// the accept stream across N loops should recover close to N-fold
// aggregate throughput.
//
// Throughput is measured in *virtual* time: each shard has its own virtual
// clock (the wall clock of its core, were each loop pinned to one), and
// the aggregate rate is TotalRequests / max-over-shards(virtual time) —
// "wall time until the last core finishes". On a container with fewer
// cores than loops the wall numbers time-slice and cannot exhibit the
// scaling; both are reported, the virtual one is gated. Throughput runs
// disable gossip so the serving window ends with the last response (gossip
// would add up to one timer interval of idle virtual tail).
//
// A second pair of runs (gossip on) checks merge semantics: the 4-loop
// merged graph must carry cross-loop edges for the worker-to-worker
// messages, and its warning set must be identical to the single-loop
// run's — loop-local bugs don't move or duplicate when the app is
// sharded.
//
// Exit code gates (all must hold):
//   - every run completes all requests with zero errors and zero ring drops
//   - 4-loop aggregate virtual throughput >= 3x the 1-loop run
//   - 4-loop merged warning set == single-loop warning set
//   - 4-loop merged graph has cross-loop edges and zero unresolved handoffs
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "apps/cluster/Harness.h"

#include <cstdio>
#include <string>

using namespace asyncg;

namespace {

constexpr uint64_t Requests = 4000;
constexpr int Clients = 128; // saturates a single loop (~64+ in this sim)
constexpr int Reps = 2;

cluster::ClusterConfig configFor(uint32_t Loops, bool Gossip) {
  cluster::ClusterConfig Cfg;
  Cfg.Loops = Loops;
  Cfg.TotalRequests = Requests;
  Cfg.TotalClients = Clients;
  Cfg.Mode = ag::PipelineMode::Async;
  Cfg.Gossip = Gossip;
  return Cfg;
}

bool runOk(const cluster::ClusterResult &R) {
  if (R.TotalCompleted != Requests || R.TotalErrors != 0)
    return false;
  for (const cluster::ShardResult &S : R.Shards)
    if (S.Backpressure.DroppedEvents != 0)
      return false;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = benchjson::extractJsonPath(argc, argv);

  std::printf("==========================================================="
              "=====================\n");
  std::printf("CLUSTER SCALING: AcmeAir aggregate throughput vs number of "
              "event loops\n");
  std::printf("==========================================================="
              "=====================\n");
  std::printf("workload: %llu requests, %d closed-loop clients total, full "
              "instrumentation\n"
              "          (per-shard builder + detectors behind the SPSC "
              "ring), best of %d\n\n",
              static_cast<unsigned long long>(Requests), Clients, Reps);

  const uint32_t LoopCounts[] = {1, 2, 4};
  constexpr int NumPoints = 3;
  cluster::ClusterResult Best[NumPoints];
  bool AllOk = true;

  for (int I = 0; I != NumPoints; ++I) {
    for (int Rep = 0; Rep != Reps; ++Rep) {
      cluster::ClusterHarness H(configFor(LoopCounts[I], /*Gossip=*/false));
      cluster::ClusterResult R = H.run();
      if (!runOk(R)) {
        std::printf("  [loops=%u] RUN FAILED: completed=%llu errors=%llu\n",
                    LoopCounts[I],
                    static_cast<unsigned long long>(R.TotalCompleted),
                    static_cast<unsigned long long>(R.TotalErrors));
        AllOk = false;
        break;
      }
      if (R.VirtualThroughput > Best[I].VirtualThroughput)
        Best[I] = R;
    }
  }

  double Base = Best[0].VirtualThroughput;
  std::printf("%-6s %14s %8s %12s %10s %12s %10s\n", "loops", "virt req/s",
              "scale", "slowest(ms)", "wall(s)", "ring depth", "blocked");
  for (int I = 0; I != NumPoints; ++I) {
    uint64_t MaxDepth = 0, Blocked = 0;
    for (const cluster::ShardResult &S : Best[I].Shards) {
      if (S.Backpressure.MaxQueueDepth > MaxDepth)
        MaxDepth = S.Backpressure.MaxQueueDepth;
      Blocked += S.Backpressure.BlockedPushes;
    }
    std::printf("%-6u %14.0f %7.2fx %12.2f %10.3f %12llu %10llu\n",
                LoopCounts[I], Best[I].VirtualThroughput,
                Base > 0 ? Best[I].VirtualThroughput / Base : 0.0,
                static_cast<double>(Best[I].MaxVirtualTimeUs) / 1000.0,
                Best[I].WallSeconds,
                static_cast<unsigned long long>(MaxDepth),
                static_cast<unsigned long long>(Blocked));
  }

  double Scale4 = Base > 0 ? Best[2].VirtualThroughput / Base : 0.0;
  bool ScaleOk = Scale4 >= 3.0;
  std::printf("\n4-loop scaling: %.2fx (gate: >= 3x) — %s\n", Scale4,
              ScaleOk ? "ok" : "FAIL");

  // Merge-semantics runs: gossip on so cross-loop edges exist at N > 1.
  cluster::ClusterHarness H1(configFor(1, /*Gossip=*/true));
  cluster::ClusterResult R1 = H1.run();
  cluster::ClusterHarness H4(configFor(4, /*Gossip=*/true));
  cluster::ClusterResult R4 = H4.run();
  bool SemanticRunsOk = runOk(R1) && runOk(R4);

  bool WarningsEqual = R1.Warnings == R4.Warnings;
  bool XLoopOk = R4.Merge.CrossLoopEdges > 0 &&
                 R4.Merge.UnresolvedHandoffs == 0;
  std::printf("merged warnings: 1-loop=%zu 4-loop=%zu identical=%s\n",
              R1.Warnings.size(), R4.Warnings.size(),
              WarningsEqual ? "yes" : "NO");
  std::printf("4-loop cross-loop edges: %llu (unresolved handoffs: %llu) — "
              "%s\n",
              static_cast<unsigned long long>(R4.Merge.CrossLoopEdges),
              static_cast<unsigned long long>(R4.Merge.UnresolvedHandoffs),
              XLoopOk ? "ok" : "FAIL");
  for (const std::string &W : R4.Warnings)
    std::printf("  warning: %s\n", W.c_str());

  bool Ok = AllOk && ScaleOk && SemanticRunsOk && WarningsEqual && XLoopOk;

  if (!JsonPath.empty()) {
    benchjson::BenchReport Report("cluster_scaling");
    Report.config("requests", static_cast<double>(Requests));
    Report.config("clients", static_cast<double>(Clients));
    Report.config("reps", static_cast<double>(Reps));
    Report.config("mode", "async");
    for (int I = 0; I != NumPoints; ++I) {
      std::string P = "loops" + std::to_string(LoopCounts[I]);
      Report.metric(P + "/virtual_throughput", Best[I].VirtualThroughput,
                    "req/s");
      Report.metric(P + "/scale",
                    Base > 0 ? Best[I].VirtualThroughput / Base : 0.0, "x");
      Report.metric(P + "/slowest_shard_virtual_ms",
                    static_cast<double>(Best[I].MaxVirtualTimeUs) / 1000.0,
                    "ms");
      Report.metric(P + "/wall_s", Best[I].WallSeconds, "s");
      for (size_t S = 0; S != Best[I].Shards.size(); ++S) {
        const ag::BackpressureStats &BP = Best[I].Shards[S].Backpressure;
        std::string SP = P + "/shard" + std::to_string(S);
        Report.metric(SP + "/ring_max_depth",
                      static_cast<double>(BP.MaxQueueDepth), "records");
        Report.metric(SP + "/ring_blocked_pushes",
                      static_cast<double>(BP.BlockedPushes), "count");
        Report.metric(SP + "/ring_blocked_ms",
                      static_cast<double>(BP.BlockedTimeNs) / 1e6, "ms");
        Report.metric(SP + "/ring_dropped",
                      static_cast<double>(BP.DroppedEvents), "count");
        Report.metric(SP + "/trace_records",
                      static_cast<double>(Best[I].Shards[S].PushedRecords),
                      "records");
      }
    }
    Report.metric("scale_at_4_loops", Scale4, "x");
    Report.metric("xloop_edges",
                  static_cast<double>(R4.Merge.CrossLoopEdges), "edges");
    Report.metric("warnings_identical", WarningsEqual ? 1 : 0, "bool");
    Report.metric("scaling_gate", Ok ? 1 : 0, "bool");
    if (!Report.write(JsonPath))
      return 1;
  }
  return Ok ? 0 : 1;
}
