//===- fault_soak.cpp - robustness soak under deterministic fault injection ----===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// The robustness companion to wire_throughput: a long AcmeAir wire run
// over the epoll backend with the default deterministic fault mix
// (DESIGN.md §5i) switched on — injected EINTR, EAGAIN, EMFILE accept
// storms, ENOBUFS, short writes, peer resets, and deadline jitter — plus
// three focused cells the wire leg cannot exercise deterministically:
//
//   clean     — identical workload, no faults: the warning-set reference
//               and the peak-RSS baseline
//   soak      — the faulted run (default 50k requests, default mix)
//   ladder    — synthetic ring pressure driving the pipeline's
//               graceful-degradation ladder up and back down
//   recovery  — a recorded shard trace truncated at the symbol section
//               (what a crash leaves behind) must replay its full prefix
//               byte-identically through both transports
//   replay    — the same --fault-seed on the sim backend twice must
//               reproduce the identical per-shard fault schedule
//
// Gates (exit status):
//   - zero crashes: both wire legs run to completion and account for
//     every request (Completed + Abandoned == TotalRequests);
//   - every non-faulted request completes: Abandoned == 0 and errors stay
//     within the injected-fault casualty budget
//     (Errors <= DroppedConns + Timeouts);
//   - the fault mix actually fired (FaultsInjected > 0) and the hardened
//     error paths actually recovered (EINTR retries + ENOBUFS retries +
//     short writes > 0);
//   - warning parity: the faulted run's merged warning set is a subset of
//     the clean run's — degradation may miss warnings, never fabricate
//     them;
//   - flat peak RSS: the soak leg's peak stays within 1.3x of the clean
//     leg's (+32 MiB absolute slack) — fault paths must not leak;
//   - ladder: escalates under pressure, recovers to lossless, and sheds
//     only decorations (structure counts stay exact);
//   - recovery: truncated-trace replay reports Recovered with zero
//     dropped tail bytes and DOT output equal to the pristine replay;
//   - replay: two sim runs with the same seed produce identical
//     per-shard fault digests, decision counts, and completions.
//
// Wall-clock throughput numbers here are informational (the fault mix
// deliberately slows things down); the gates are the product.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "ag/Builder.h"
#include "apps/cluster/Harness.h"
#include "instr/TraceCodec.h"
#include "support/TraceFormat.h"
#include "viz/Dot.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#ifdef __linux__
#include <sys/stat.h>
#endif

using namespace asyncg;

namespace {

struct WireLeg {
  cluster::ClusterResult R;
  long RssKiB = 0;
  bool Ok = false;
};

WireLeg runWireLeg(uint32_t Loops, int Port, uint64_t Requests,
                   const sim::FaultSpec &Faults, uint64_t FaultSeed,
                   const std::string &RecordDir) {
  cluster::ClusterConfig Cfg;
  Cfg.Backend = sim::KernelBackend::Epoll;
  Cfg.Loops = Loops;
  Cfg.Port = Port;
  Cfg.TotalRequests = Requests;
  Cfg.TotalClients = 8;
  Cfg.Instrument = true;
  Cfg.Mode = ag::PipelineMode::Async;
  Cfg.Policy = ag::BackpressurePolicy::Degrade;
  Cfg.Faults = Faults;
  Cfg.FaultSeed = FaultSeed;
  Cfg.RecordDir = RecordDir;

  cluster::ClusterHarness H(Cfg);
  WireLeg Out;
  Out.R = H.run();
  Out.RssKiB = benchjson::peakRssKiB();
  // Accounting closure is the no-crash/no-hang gate; the casualty budget
  // (errors bounded by injected teardowns) is checked by the caller.
  Out.Ok = Out.R.Wire.Completed + Out.R.Wire.Abandoned == Requests;
  return Out;
}

/// Drains replayed events and sleeps per decoration when throttled, so
/// the bench can force ring pressure deterministically (same shape as the
/// unit-test sink; the bench re-runs it at soak scale).
class ThrottledSink : public instr::AnalysisBase {
public:
  const char *analysisName() const override { return "fault-soak-sink"; }

  void onFunctionEnter(const instr::FunctionEnterEvent &) override {
    ++Enters;
  }
  void onFunctionExit(const instr::FunctionExitEvent &) override { ++Exits; }
  void onObjectCreate(const instr::ObjectCreateEvent &) override {
    ++Objects;
    if (uint64_t S = StallUs.load(std::memory_order_relaxed))
      std::this_thread::sleep_for(std::chrono::microseconds(S));
  }

  uint64_t Enters = 0;
  uint64_t Exits = 0;
  uint64_t Objects = 0;
  std::atomic<uint64_t> StallUs{0};
};

struct LadderOutcome {
  ag::DegradationStats D;
  uint64_t Events = 0;
  bool StructureExact = false;
  bool DecorationsAccounted = false;
  bool Ok = false;
};

/// Floods a Degrade-policy pipeline through a stalled sink until the
/// ladder escalates, then lifts the pressure and waits for recovery.
LadderOutcome runLadderCell() {
  ThrottledSink Sink;
  Sink.StallUs.store(200);

  ag::PipelineConfig Cfg;
  Cfg.RingCapacity = 1024; // small on purpose: pressure must be reachable
  Cfg.Policy = ag::BackpressurePolicy::Degrade;
  Cfg.Drain = ag::DrainMode::Concurrent;
  Cfg.ProducerChunk = 0;
  Cfg.EscalateSpinNs = 50000;
  Cfg.RecoverQuietTicks = 4;

  LadderOutcome Out;
  auto Data = std::make_shared<jsrt::FunctionData>();
  Data->Id = 1;
  Data->Name = "soak";
  jsrt::Function F(Data);
  jsrt::CallArgs Args;
  jsrt::DispatchInfo Dispatch;
  jsrt::Completion Result;

  uint64_t Total = 0;
  {
    ag::AsyncPipeline P(Sink, Cfg);
    instr::ObjectCreateEvent Ev;
    instr::TickBoundaryEvent Tick;
    // Keep pushing structure + decorations until the ladder has both
    // escalated and shed something, bounded so a broken ladder cannot
    // hang the bench.
    while ((P.degradation().Escalations == 0 ||
            P.degradation().RecordsShed == 0) &&
           Total < 2000000) {
      instr::FunctionEnterEvent Enter{F, Args, Dispatch};
      P.onFunctionEnter(Enter);
      Ev.Obj = ++Total;
      P.onObjectCreate(Ev);
      instr::FunctionExitEvent Exit{F, Result, Dispatch};
      P.onFunctionExit(Exit);
    }
    // Pressure off; quiet tick boundaries walk the ladder back down.
    Sink.StallUs.store(0);
    for (int I = 0; I != 20000 && P.degradation().FinalTier != 0; ++I) {
      P.onTickBoundary(Tick);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    P.stop();
    Out.D = P.degradation();
  }
  Out.Events = Total;
  Out.StructureExact = Sink.Enters == Total && Sink.Exits == Total;
  Out.DecorationsAccounted = Sink.Objects + Out.D.RecordsShed == Total;
  Out.Ok = Out.D.Escalations >= 1 && Out.D.Recoveries >= 1 &&
           Out.D.FinalTier == 0 && Out.D.RecordsShed > 0 &&
           Out.StructureExact && Out.DecorationsAccounted;
  return Out;
}

std::vector<uint8_t> slurpBytes(const std::string &Path) {
  std::vector<uint8_t> Bytes;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Bytes;
  std::fseek(F, 0, SEEK_END);
  long N = std::ftell(F);
  std::fseek(F, 0, SEEK_SET);
  Bytes.resize(static_cast<size_t>(N));
  if (N > 0 && std::fread(Bytes.data(), 1, Bytes.size(), F) != Bytes.size())
    Bytes.clear();
  std::fclose(F);
  return Bytes;
}

bool spitBytes(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  bool Ok = std::fwrite(Bytes.data(), 1, Bytes.size(), F) == Bytes.size();
  std::fclose(F);
  return Ok;
}

struct RecoveryOutcome {
  uint64_t Records = 0;
  uint64_t DroppedTailBytes = 0;
  bool Ok = false;
};

/// Truncates \p TracePath the way a crash between the last frame flush and
/// finalize() would (cut at the symbol section, header counts still the
/// zero placeholder) and checks the recovered replay reproduces the
/// pristine replay's DOT byte-for-byte through both transports.
RecoveryOutcome runRecoveryCell(const std::string &TracePath) {
  RecoveryOutcome Out;
  std::vector<uint8_t> Full = slurpBytes(TracePath);
  if (Full.size() < sizeof(trace::TraceFileHeader)) {
    std::printf("  [recovery] cannot read %s\n", TracePath.c_str());
    return Out;
  }
  trace::TraceFileHeader H;
  std::memcpy(&H, Full.data(), sizeof(H));
  if (H.Version != 4 || H.SymtabOffset == 0 ||
      H.SymtabOffset >= Full.size()) {
    std::printf("  [recovery] %s is not a finalized v4 trace\n",
                TracePath.c_str());
    return Out;
  }

  ag::AsyncGBuilder Pristine;
  std::string Err;
  if (!instr::replayTrace(TracePath, Pristine, &Err)) {
    std::printf("  [recovery] pristine replay failed: %s\n", Err.c_str());
    return Out;
  }
  std::string Want = viz::toDot(Pristine.graph());

  std::vector<uint8_t> Torn(Full.begin(),
                            Full.begin() +
                                static_cast<long>(H.SymtabOffset));
  for (size_t I = 16; I < 32; ++I)
    Torn[I] = 0; // the un-patched placeholder a real torn file carries
  std::string TornPath = TracePath + ".torn";
  if (!spitBytes(TornPath, Torn))
    return Out;

  Out.Ok = true;
  for (auto T :
       {instr::ReplayTransport::Stdio, instr::ReplayTransport::Mmap}) {
    ag::AsyncGBuilder B;
    instr::ReplayStats Stats;
    if (!instr::replayTrace(TornPath, B, &Err, T, &Stats)) {
      std::printf("  [recovery] torn replay failed: %s\n", Err.c_str());
      Out.Ok = false;
      break;
    }
    bool DotMatch = viz::toDot(B.graph()) == Want;
    if (!Stats.Recovered || Stats.DroppedTailBytes != 0 || !DotMatch) {
      std::printf("  [recovery] transport %d: recovered=%d dropped=%llu "
                  "dot_match=%d\n",
                  static_cast<int>(T), Stats.Recovered ? 1 : 0,
                  static_cast<unsigned long long>(Stats.DroppedTailBytes),
                  DotMatch ? 1 : 0);
      Out.Ok = false;
    }
    Out.Records = Stats.Records;
    Out.DroppedTailBytes = Stats.DroppedTailBytes;
  }
  std::remove(TornPath.c_str());
  return Out;
}

/// One virtual-time cluster run under a jitter-heavy mix (the kinds that
/// fire on the sim kernel surface), for the seed-reproducibility gate.
cluster::ClusterResult runSimLeg(uint64_t Requests, uint64_t FaultSeed) {
  cluster::ClusterConfig Cfg;
  Cfg.Loops = 2;
  Cfg.TotalRequests = Requests;
  Cfg.TotalClients = 8;
  Cfg.Instrument = true;
  // Cross-loop gossip arrival is real thread interleaving even under
  // virtual time; off, each shard's decision stream is a pure function
  // of (spec, seed, workload) — which is the contract under test.
  Cfg.Gossip = false;
  sim::FaultSpec::parse("jitter:0.2,eintr:0.1", Cfg.Faults);
  Cfg.FaultSeed = FaultSeed;
  cluster::ClusterHarness H(Cfg);
  return H.run();
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = benchjson::extractJsonPath(argc, argv);
  uint64_t Requests = 50000;
  uint32_t Loops = 2;
  int Port = 9640;
  uint64_t FaultSeed = 7;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--requests") && I + 1 < argc)
      Requests = static_cast<uint64_t>(std::atoll(argv[++I]));
    else if (!std::strcmp(argv[I], "--loops") && I + 1 < argc)
      Loops = static_cast<uint32_t>(std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--port") && I + 1 < argc)
      Port = std::atoi(argv[++I]);
    else if (!std::strcmp(argv[I], "--fault-seed") && I + 1 < argc)
      FaultSeed = static_cast<uint64_t>(std::atoll(argv[++I]));
    else {
      std::fprintf(stderr,
                   "usage: %s [--requests N] [--loops N] [--port N] "
                   "[--fault-seed N] [--json FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  benchjson::BenchReport Report("fault_soak");
  std::string Unavailable;
  if (!sim::kernelBackendAvailable(sim::KernelBackend::Epoll,
                                   &Unavailable)) {
    std::printf("fault_soak: SKIPPED — epoll backend not available here "
                "(%s)\n",
                Unavailable.c_str());
    Report.config("skipped", Unavailable);
    if (!JsonPath.empty())
      Report.write(JsonPath);
    return 0;
  }

  std::string RecordDir = "/tmp/asyncg_fault_soak";
#ifdef __linux__
  ::mkdir(RecordDir.c_str(), 0755);
  ::mkdir((RecordDir + "/clean").c_str(), 0755);
  ::mkdir((RecordDir + "/soak").c_str(), 0755);
#endif

  sim::FaultSpec Mix = sim::FaultSpec::defaultMix();
  std::printf("==========================================================="
              "=====================\n");
  std::printf("FAULT SOAK: AcmeAir over loopback TCP under deterministic "
              "fault injection\n");
  std::printf("==========================================================="
              "=====================\n");
  std::printf("workload: %llu requests, %u loop(s), mix '%s', seed %llu\n\n",
              static_cast<unsigned long long>(Requests), Loops,
              Mix.str().c_str(),
              static_cast<unsigned long long>(FaultSeed));
  Report.config("requests", static_cast<double>(Requests));
  Report.config("loops", static_cast<double>(Loops));
  Report.config("fault_spec", Mix.str());
  Report.config("fault_seed", static_cast<double>(FaultSeed));
  Report.config("timing", "wall-clock");

  bool Pass = true;
  auto Gate = [&](const char *Name, bool Ok) {
    std::printf("gate %-38s %s\n", Name, Ok ? "PASS" : "FAIL");
    if (!Ok)
      Pass = false;
  };

  // Clean reference leg: warning-set reference + peak-RSS baseline. Runs
  // first so the process-wide RSS high-water mark belongs to it, not to
  // the faulted leg it gates.
  std::printf("-- clean leg (no faults) --\n");
  WireLeg Clean = runWireLeg(Loops, Port, Requests, sim::FaultSpec(),
                             FaultSeed, RecordDir + "/clean");
  std::printf("  %.0f req/s, %llu completed, %llu errors, %lu KiB peak "
              "RSS, %zu warning(s)\n",
              Clean.R.Wire.ReqPerSec,
              static_cast<unsigned long long>(Clean.R.Wire.Completed),
              static_cast<unsigned long long>(Clean.R.Wire.Errors),
              Clean.RssKiB, Clean.R.Warnings.size());
  Gate("clean: all requests complete",
       Clean.Ok && Clean.R.Wire.Errors == 0 && Clean.R.Wire.Abandoned == 0);

  // The soak itself: default mix, same size.
  std::printf("\n-- fault soak leg (mix '%s') --\n", Mix.str().c_str());
  WireLeg Soak = runWireLeg(Loops, Port + 1, Requests, Mix, FaultSeed,
                            RecordDir + "/soak");
  const acmeair::LoadStats &W = Soak.R.Wire;
  std::printf("  %.0f req/s, %llu completed, %llu errors, %llu dropped, "
              "%llu timeouts, %llu retries, %llu abandoned\n",
              W.ReqPerSec, static_cast<unsigned long long>(W.Completed),
              static_cast<unsigned long long>(W.Errors),
              static_cast<unsigned long long>(W.DroppedConns),
              static_cast<unsigned long long>(W.Timeouts),
              static_cast<unsigned long long>(W.Retries),
              static_cast<unsigned long long>(W.Abandoned));
  std::printf("  faults: %llu injected / %llu decisions\n",
              static_cast<unsigned long long>(Soak.R.FaultsInjected),
              static_cast<unsigned long long>(Soak.R.FaultDecisions));
  const sim::NetRecoveryStats &N = Soak.R.Net;
  std::printf("  recovery: %llu EINTR retries, %llu accept pauses, %llu "
              "ENOBUFS retries, %llu short writes, %llu resets, %llu "
              "drained conns\n",
              static_cast<unsigned long long>(N.EintrRetries),
              static_cast<unsigned long long>(N.AcceptPauses),
              static_cast<unsigned long long>(N.EnobufsRetries),
              static_cast<unsigned long long>(N.ShortWrites),
              static_cast<unsigned long long>(N.ResetsInjected),
              static_cast<unsigned long long>(N.DrainedConns));
  std::printf("  peak RSS %lu KiB (clean leg %lu KiB), %zu warning(s)\n",
              Soak.RssKiB, Clean.RssKiB, Soak.R.Warnings.size());

  Gate("soak: zero crashes, every request accounted", Soak.Ok);
  Gate("soak: no request abandoned", W.Abandoned == 0);
  // Errors (non-200s from a retry landing on the sibling shard where the
  // session token is unknown) are bounded by injected teardowns.
  Gate("soak: errors within fault casualty budget",
       W.Errors <= W.DroppedConns + W.Timeouts);
  Gate("soak: fault mix actually fired", Soak.R.FaultsInjected > 0);
  Gate("soak: hardened paths recovered faults",
       N.EintrRetries + N.EnobufsRetries + N.ShortWrites > 0);

  // Warning parity: sorted resolved strings; degradation may miss
  // warnings, never fabricate them.
  bool WarnSubset =
      std::includes(Clean.R.Warnings.begin(), Clean.R.Warnings.end(),
                    Soak.R.Warnings.begin(), Soak.R.Warnings.end());
  Gate("soak: warning parity (subset of clean)", WarnSubset);

  // Flat peak RSS: ru_maxrss is a process-wide high-water mark and the
  // clean leg set it first, so growth here is growth in the fault paths.
  long RssCap =
      std::max(Clean.RssKiB + Clean.RssKiB * 3 / 10, Clean.RssKiB + 32768L);
  Gate("soak: peak RSS flat (<= 1.3x clean + 32 MiB)",
       Soak.RssKiB <= RssCap);

  // Ladder cell: the soak's 2^21 ring never fills under wire load, so the
  // escalation/recovery contract is driven synthetically at a reachable
  // ring size — same pipeline, same policy, deterministic pressure.
  std::printf("\n-- degradation ladder cell (synthetic ring pressure) --\n");
  LadderOutcome L = runLadderCell();
  std::printf("  %llu events: %llu escalations, %llu recoveries, %llu "
              "records shed, final tier %u, degraded %.1f ms\n",
              static_cast<unsigned long long>(L.Events),
              static_cast<unsigned long long>(L.D.Escalations),
              static_cast<unsigned long long>(L.D.Recoveries),
              static_cast<unsigned long long>(L.D.RecordsShed),
              L.D.FinalTier,
              static_cast<double>(L.D.TimeNs[1] + L.D.TimeNs[2]) / 1e6);
  Gate("ladder: escalates, sheds, recovers to lossless", L.Ok);

  // Crash-tolerant trace cell: tear the soak leg's shard-0 recording the
  // way a crash would and demand a byte-identical prefix replay.
  std::printf("\n-- truncated-trace recovery cell --\n");
  RecoveryOutcome Rec = runRecoveryCell(RecordDir + "/soak/shard0.agtrace");
  std::printf("  recovered %llu records, %llu tail bytes dropped\n",
              static_cast<unsigned long long>(Rec.Records),
              static_cast<unsigned long long>(Rec.DroppedTailBytes));
  Gate("recovery: torn trace replays clean prefix (DOT parity)", Rec.Ok);

  // Reproducibility cell: virtual time, so the whole run — including the
  // fault schedule — is a pure function of (spec, seed).
  std::printf("\n-- fault-schedule reproducibility cell (sim backend) --\n");
  uint64_t SimReqs = std::min<uint64_t>(Requests / 10, 5000);
  cluster::ClusterResult A = runSimLeg(SimReqs, FaultSeed);
  cluster::ClusterResult B = runSimLeg(SimReqs, FaultSeed);
  bool Repro = A.Shards.size() == B.Shards.size() &&
               A.TotalCompleted == B.TotalCompleted &&
               A.MaxVirtualTimeUs == B.MaxVirtualTimeUs;
  if (!Repro)
    std::printf("  run outcome diverged: completed %llu vs %llu, virtual "
                "time %llu vs %llu us\n",
                static_cast<unsigned long long>(A.TotalCompleted),
                static_cast<unsigned long long>(B.TotalCompleted),
                static_cast<unsigned long long>(A.MaxVirtualTimeUs),
                static_cast<unsigned long long>(B.MaxVirtualTimeUs));
  for (size_t I = 0; I < A.Shards.size() && I < B.Shards.size(); ++I) {
    bool Same = A.Shards[I].FaultDigest == B.Shards[I].FaultDigest &&
                A.Shards[I].FaultDecisions == B.Shards[I].FaultDecisions &&
                A.Shards[I].FaultsInjected == B.Shards[I].FaultsInjected;
    Repro = Repro && Same;
    std::printf("  shard %zu: digest %016llx (%llu injected / %llu "
                "decisions)%s\n",
                I,
                static_cast<unsigned long long>(A.Shards[I].FaultDigest),
                static_cast<unsigned long long>(A.Shards[I].FaultsInjected),
                static_cast<unsigned long long>(A.Shards[I].FaultDecisions),
                Same ? ""
                     : " DIVERGED across runs");
  }
  Gate("replay: same seed, identical fault schedule",
       Repro && A.FaultsInjected > 0);

  // Report. Throughputs are informational trend lines; the degr_/net_
  // counters are what bench_compare watches for robustness regressions.
  Report.metric("clean_reqps", Clean.R.Wire.ReqPerSec, "req/s");
  Report.metric("soak_reqps", W.ReqPerSec, "req/s");
  Report.metric("soak_slowdown",
                W.ReqPerSec > 0 ? Clean.R.Wire.ReqPerSec / W.ReqPerSec : 999,
                "x");
  Report.metric("soak_p99", static_cast<double>(W.P99Us), "us");
  Report.metric("soak_timeouts", static_cast<double>(W.Timeouts), "n");
  Report.metric("soak_retries", static_cast<double>(W.Retries), "n");
  Report.metric("soak_abandoned", static_cast<double>(W.Abandoned), "n");
  Report.metric("faults_injected",
                static_cast<double>(Soak.R.FaultsInjected), "n");
  Report.metric("fault_decisions",
                static_cast<double>(Soak.R.FaultDecisions), "n");
  Report.metric("net_eintr_retries", static_cast<double>(N.EintrRetries),
                "n");
  Report.metric("net_accept_pauses", static_cast<double>(N.AcceptPauses),
                "n");
  Report.metric("net_enobufs_retries",
                static_cast<double>(N.EnobufsRetries), "n");
  Report.metric("net_short_writes", static_cast<double>(N.ShortWrites),
                "n");
  Report.metric("net_drained_conns", static_cast<double>(N.DrainedConns),
                "n");
  Report.metric("rss_clean", static_cast<double>(Clean.RssKiB), "KiB");
  Report.metric("rss_soak", static_cast<double>(Soak.RssKiB), "KiB");
  Report.metric("warnings_clean",
                static_cast<double>(Clean.R.Warnings.size()), "n");
  Report.metric("warnings_soak",
                static_cast<double>(Soak.R.Warnings.size()), "n");
  Report.metric("degr_escalations",
                static_cast<double>(L.D.Escalations), "n");
  Report.metric("degr_recoveries", static_cast<double>(L.D.Recoveries),
                "n");
  Report.metric("degr_records_shed",
                static_cast<double>(L.D.RecordsShed), "n");
  Report.metric("degr_watchdog_stalls",
                static_cast<double>(Soak.R.Degradation.WatchdogStalls +
                                    L.D.WatchdogStalls),
                "n");
  // bool metrics: bench_compare flags any flip as a regression.
  Report.metric("degr_recovered_to_lossless",
                L.D.FinalTier == 0 ? 1 : 0, "bool");
  Report.metric("trace_recovery_dot_parity", Rec.Ok ? 1 : 0, "bool");
  Report.metric("fault_schedule_reproducible", Repro ? 1 : 0, "bool");
  Report.metric("recovered_records", static_cast<double>(Rec.Records),
                "n");

  if (!JsonPath.empty() && Report.write(JsonPath))
    std::printf("\nwrote %s\n", JsonPath.c_str());
  std::printf("%s\n", Pass ? "ALL GATES PASS" : "GATE FAILURE");
  return Pass ? 0 : 1;
}
