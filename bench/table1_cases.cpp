//===- table1_cases.cpp - reproduces Table I -----------------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Table I of the paper lists real-world bugs (StackOverflow questions and
// GitHub issues) and the category AsyncG assigns. This harness runs every
// case program under full AsyncG and prints the detected categories, plus
// the fixed-variant check (the expected warning must disappear).
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "cases/Case.h"
#include "support/Format.h"

#include <cstdio>

using namespace asyncg;
using namespace asyncg::cases;

int main(int argc, char **argv) {
  std::string JsonPath = asyncg::benchjson::extractJsonPath(argc, argv);
  std::printf("==========================================================="
              "=====================\n");
  std::printf("TABLE I: Detected bugs (paper section VII-A)\n");
  std::printf("==========================================================="
              "=====================\n");
  std::printf("%-14s %-34s %-8s %-6s\n", "Bug name", "Categories",
              "Detected", "Fixed");
  std::printf("-----------------------------------------------------------"
              "---------------------\n");

  unsigned Detected = 0, FixedClean = 0, Total = 0, Fixable = 0;
  for (const CaseDef &Def : allCases()) {
    ++Total;
    CaseResult Buggy = runCase(Def, /*Fixed=*/false);
    bool FixedOk = true;
    if (Def.HasFix) {
      ++Fixable;
      CaseResult Fixed = runCase(Def, /*Fixed=*/true);
      FixedOk = !Fixed.ExpectedDetected;
      if (FixedOk)
        ++FixedClean;
    }
    if (Buggy.ExpectedDetected)
      ++Detected;
    std::printf("%-14s %-34s %-8s %-6s\n", Def.Name.c_str(),
                ag::bugCategoryName(Def.Expected),
                Buggy.ExpectedDetected ? "yes" : "NO",
                Def.HasFix ? (FixedOk ? "clean" : "DIRTY") : "-");
  }

  std::printf("-----------------------------------------------------------"
              "---------------------\n");
  std::printf("detected %u/%u buggy variants; %u/%u fixed variants clean\n",
              Detected, Total, FixedClean, Fixable);
  std::printf("(paper: AsyncG locates the cause of all Table-I bugs)\n\n");
  if (!JsonPath.empty()) {
    asyncg::benchjson::BenchReport Report("table1_cases");
    Report.metric("detected", Detected, "count");
    Report.metric("total", Total, "count");
    Report.metric("fixed_clean", FixedClean, "count");
    Report.metric("fixable", Fixable, "count");
    if (!Report.write(JsonPath))
      return 1;
  }
  return Detected == Total && FixedClean == Fixable ? 0 : 1;
}
