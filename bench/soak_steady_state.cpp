//===- soak_steady_state.cpp - bounded-memory soak (retirement) ---------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Long-haul soak (ours, beyond the paper): drives the AcmeAir workload for
// many requests twice — once with the full in-memory Async Graph (the
// paper's design) and once with tick-epoch retirement (--retire) — and
// reports the steady-state builder footprint, peak process RSS, and the
// first-half vs second-half request throughput drift. Demonstrates that
// retirement turns the O(run-length) graph into an O(retain-window)
// structure without slowing the loop down over time.
//
//   soak_steady_state [--requests N] [--clients N] [--window N]
//                     [--json FILE]
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "ag/Builder.h"
#include "apps/acmeair/App.h"
#include "apps/acmeair/Workload.h"
#include "detect/Detectors.h"
#include "jsrt/Runtime.h"
#include "support/SymbolTable.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace asyncg;
using namespace asyncg::jsrt;
using namespace asyncg::acmeair;

namespace {

using Clock = std::chrono::steady_clock;

/// Piggybacks on the instrumentation stream to sample the builder footprint
/// periodically and timestamp the moment half the requests completed. Lives
/// outside the graph pipeline: it only reads.
class SoakSampler : public instr::AnalysisBase {
public:
  SoakSampler(const ag::AsyncGBuilder &Builder, const WorkloadDriver &Driver,
              uint64_t HalfRequests)
      : Builder(Builder), Driver(Driver), HalfRequests(HalfRequests) {}

  const char *analysisName() const override { return "SoakSampler"; }

  void onFunctionEnter(const instr::FunctionEnterEvent &) override {
    if (++Events % SampleEvery != 0)
      return;
    size_t Foot = Builder.memoryFootprint();
    Samples.push_back(Foot);
    Peak = std::max(Peak, Foot);
    if (HalfAt == Clock::time_point() && Driver.completed() >= HalfRequests) {
      HalfAt = Clock::now();
      HalfSampleIndex = Samples.size();
    }
  }

  uint64_t Events = 0;
  static constexpr uint64_t SampleEvery = 4096;
  std::vector<size_t> Samples;
  size_t Peak = 0;
  Clock::time_point HalfAt;
  size_t HalfSampleIndex = 0;

private:
  const ag::AsyncGBuilder &Builder;
  const WorkloadDriver &Driver;
  uint64_t HalfRequests;
};

struct SoakRun {
  uint64_t Completed = 0;
  uint64_t Errors = 0;
  double Seconds = 0;
  double FirstHalfSecs = 0;
  double SecondHalfSecs = 0;
  size_t FinalFootprint = 0;
  size_t PeakFootprint = 0;
  /// Largest sample seen after the halfway point (steady state).
  size_t SecondHalfMax = 0;
  /// Footprint at the halfway point (start of steady state).
  size_t HalfFootprint = 0;
  size_t Warnings = 0;
};

SoakRun runSoak(uint64_t Requests, int Clients, bool Retire,
                uint32_t Window) {
  Runtime RT;
  AppConfig ACfg;
  AcmeAirApp App(RT, ACfg);
  WorkloadConfig WCfg;
  WCfg.TotalRequests = Requests;
  WCfg.Clients = Clients;
  WorkloadDriver Driver(RT, ACfg.Port, WCfg);

  ag::BuilderConfig BCfg;
  BCfg.Retire = Retire;
  BCfg.RetainWindow = Window;
  BCfg.ExpectedNodes = Retire ? 4096 : Requests * 16;
  BCfg.ExpectedEdges = Retire ? 8192 : Requests * 24;
  ag::AsyncGBuilder Builder(BCfg);
  detect::DetectorSuite Detectors;
  Detectors.attachTo(Builder);
  SoakSampler Sampler(Builder, Driver, Requests / 2);
  RT.hooks().attach(&Builder);
  RT.hooks().attach(&Sampler);

  Function Main = RT.makeBuiltin("main", [&](Runtime &, const CallArgs &) {
    App.start(JSLOC);
    Driver.start();
    return Completion::normal();
  });
  auto Start = Clock::now();
  RT.main(Main);
  auto End = Clock::now();

  SoakRun R;
  R.Completed = Driver.completed();
  R.Errors = Driver.errors();
  R.Seconds = std::chrono::duration<double>(End - Start).count();
  if (Sampler.HalfAt != Clock::time_point()) {
    R.FirstHalfSecs =
        std::chrono::duration<double>(Sampler.HalfAt - Start).count();
    R.SecondHalfSecs =
        std::chrono::duration<double>(End - Sampler.HalfAt).count();
  }
  R.FinalFootprint = Builder.memoryFootprint();
  R.PeakFootprint = std::max(Sampler.Peak, R.FinalFootprint);
  if (Sampler.HalfSampleIndex > 0 &&
      Sampler.HalfSampleIndex <= Sampler.Samples.size()) {
    R.HalfFootprint = Sampler.Samples[Sampler.HalfSampleIndex - 1];
    for (size_t I = Sampler.HalfSampleIndex; I < Sampler.Samples.size(); ++I)
      R.SecondHalfMax = std::max(R.SecondHalfMax, Sampler.Samples[I]);
    R.SecondHalfMax = std::max(R.SecondHalfMax, R.FinalFootprint);
  }
  R.Warnings = Builder.graph().warnings().size();
  if (std::getenv("SOAK_DUMP")) {
    const ag::AsyncGraph &G = Builder.graph();
    std::fprintf(stderr,
                 "[dump retire=%d] ticks vec=%zu live=%zu | nodes vec=%zu "
                 "live=%zu | edges vec=%zu live=%zu | warnings=%zu | "
                 "retired ticks=%llu nodes=%llu\n",
                 Retire, G.ticks().size(), G.liveTickCount(),
                 G.nodes().size(), G.nodeCount(), G.edges().size(),
                 G.liveEdgeCount(), G.warnings().size(),
                 static_cast<unsigned long long>(G.retired().Ticks),
                 static_cast<unsigned long long>(G.retired().Nodes));
  }
  return R;
}

double mib(size_t Bytes) {
  return static_cast<double>(Bytes) / (1024.0 * 1024.0);
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = benchjson::extractJsonPath(argc, argv);
  uint64_t Requests = 50000;
  int Clients = 8;
  uint32_t Window = 8;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--requests") == 0 && I + 1 < argc)
      Requests = std::strtoull(argv[++I], nullptr, 10);
    else if (std::strcmp(argv[I], "--clients") == 0 && I + 1 < argc)
      Clients = std::atoi(argv[++I]);
    else if (std::strcmp(argv[I], "--window") == 0 && I + 1 < argc)
      Window = static_cast<uint32_t>(std::strtoul(argv[++I], nullptr, 10));
    else {
      std::fprintf(stderr,
                   "usage: %s [--requests N] [--clients N] [--window N]"
                   " [--json FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("==============================================================="
              "=================\n");
  std::printf("SOAK: bounded-memory steady state (AcmeAir, %llu requests, "
              "%d clients)\n",
              static_cast<unsigned long long>(Requests), Clients);
  std::printf("==============================================================="
              "=================\n");

  SoakRun Full = runSoak(Requests, Clients, /*Retire=*/false, Window);
  SoakRun Ret = runSoak(Requests, Clients, /*Retire=*/true, Window);

  auto Report = [&](const char *Name, const SoakRun &R) {
    double ReqPerSec = R.Seconds > 0
                           ? static_cast<double>(R.Completed) / R.Seconds
                           : 0;
    std::printf("%-12s %8llu req  %8.3f s  %10.1f req/s  footprint "
                "%8.2f MiB (peak %8.2f MiB)  warnings %zu\n",
                Name, static_cast<unsigned long long>(R.Completed),
                R.Seconds, ReqPerSec, mib(R.FinalFootprint),
                mib(R.PeakFootprint), R.Warnings);
  };
  Report("unbounded", Full);
  Report("retire", Ret);

  double FootprintRatio =
      Full.FinalFootprint > 0
          ? static_cast<double>(Ret.FinalFootprint) /
                static_cast<double>(Full.FinalFootprint)
          : 1.0;
  // Steady state is flat when the footprint never grows appreciably past
  // its halfway-point level in the second half of the run.
  double SecondHalfGrowth =
      Ret.HalfFootprint > 0
          ? static_cast<double>(Ret.SecondHalfMax) /
                static_cast<double>(Ret.HalfFootprint)
          : 0.0;
  // Throughput drift: how much slower the second half ran than the first
  // (positive = slowdown). The unbounded graph drifts as indices grow; the
  // retired one should not.
  double Drift = 0;
  if (Ret.FirstHalfSecs > 0 && Ret.SecondHalfSecs > 0) {
    double FirstRate = static_cast<double>(Requests) / 2 / Ret.FirstHalfSecs;
    double SecondRate =
        static_cast<double>(Ret.Completed - Requests / 2) /
        Ret.SecondHalfSecs;
    Drift = (FirstRate - SecondRate) / FirstRate;
  }

  std::printf("\nretire/unbounded footprint ratio : %6.3f\n", FootprintRatio);
  std::printf("retire second-half growth        : %6.3f "
              "(max/halfway footprint)\n",
              SecondHalfGrowth);
  std::printf("retire req/s drift (first->second): %+6.2f%%\n", Drift * 100);

  benchjson::BenchReport R("soak_steady_state");
  R.config("requests", static_cast<double>(Requests));
  R.config("clients", static_cast<double>(Clients));
  R.config("retain_window", static_cast<double>(Window));
  R.metric("unbounded/footprint", static_cast<double>(Full.FinalFootprint),
           "bytes");
  R.metric("unbounded/peak_footprint",
           static_cast<double>(Full.PeakFootprint), "bytes");
  R.metric("unbounded/seconds", Full.Seconds, "s");
  R.metric("unbounded/warnings", static_cast<double>(Full.Warnings), "count");
  R.metric("retire/footprint", static_cast<double>(Ret.FinalFootprint),
           "bytes");
  R.metric("retire/peak_footprint", static_cast<double>(Ret.PeakFootprint),
           "bytes");
  R.metric("retire/seconds", Ret.Seconds, "s");
  R.metric("retire/warnings", static_cast<double>(Ret.Warnings), "count");
  R.metric("symbol_table", static_cast<double>(symtab().memoryUsage()),
           "bytes");
  R.metric("footprint_ratio", FootprintRatio, "ratio");
  R.metric("second_half_growth", SecondHalfGrowth, "ratio");
  R.metric("throughput_drift", Drift, "ratio");
  if (!JsonPath.empty() && !R.write(JsonPath))
    return 1;

  // Acceptance gates (only meaningful once the run is long enough for the
  // retain window to be a tiny fraction of the tick count).
  bool Ok = true;
  if (Requests >= 10000) {
    if (FootprintRatio > 0.10) {
      std::printf("FAIL: retire footprint is %.1f%% of unbounded "
                  "(budget: 10%%)\n",
                  FootprintRatio * 100);
      Ok = false;
    }
    if (SecondHalfGrowth > 1.10) {
      std::printf("FAIL: retired footprint grew %.1f%% past its halfway "
                  "level (budget: 10%%)\n",
                  (SecondHalfGrowth - 1) * 100);
      Ok = false;
    }
    if (Drift > 0.05) {
      std::printf("FAIL: second-half throughput %.1f%% below first half "
                  "(budget: 5%%)\n",
                  Drift * 100);
      Ok = false;
    }
  }
  std::printf("\nbounded-memory steady state: %s\n", Ok ? "yes" : "NO");
  return Ok ? 0 : 1;
}
