//===- micro_eventloop.cpp - event-loop micro benchmarks -----------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark micro benchmarks of the jsrt primitives, with and
// without AsyncG attached — the per-operation view of the Fig. 6(a)
// overhead.
//
//===----------------------------------------------------------------------===//

#include "ag/Builder.h"
#include "detect/Detectors.h"
#include "jsrt/Runtime.h"

#include "GBenchMain.h"

#include <benchmark/benchmark.h>

using namespace asyncg;
using namespace asyncg::jsrt;

namespace {

enum class Instr { Off, AsyncG, AsyncGDetect };

/// Runs a program that schedules N nextTick callbacks per loop pass.
void runProgram(Instr I, const std::function<void(Runtime &)> &Body) {
  Runtime RT;
  ag::AsyncGBuilder Builder;
  detect::DetectorSuite Detectors;
  if (I == Instr::AsyncGDetect)
    Detectors.attachTo(Builder);
  if (I != Instr::Off)
    RT.hooks().attach(&Builder);
  Function Main = RT.makeBuiltin("main", [&](Runtime &R, const CallArgs &) {
    Body(R);
    return Completion::normal();
  });
  RT.main(Main);
}

void nextTickChain(Runtime &R, int Depth) {
  if (Depth == 0)
    return;
  R.nextTick(SourceLocation::internal(),
             R.makeBuiltin("tick", [Depth](Runtime &R2, const CallArgs &) {
               nextTickChain(R2, Depth - 1);
               return Completion::normal();
             }));
}

void benchNextTick(benchmark::State &State, Instr I) {
  for (auto _ : State)
    runProgram(I, [](Runtime &R) { nextTickChain(R, 256); });
  State.SetItemsProcessed(State.iterations() * 256);
}

void benchTimers(benchmark::State &State, Instr I) {
  for (auto _ : State) {
    runProgram(I, [](Runtime &R) {
      for (int T = 0; T < 256; ++T)
        R.setTimeout(SourceLocation::internal(),
                     R.makeBuiltin("timer",
                                   [](Runtime &, const CallArgs &) {
                                     return Completion::normal();
                                   }),
                     static_cast<double>(T % 16));
    });
  }
  State.SetItemsProcessed(State.iterations() * 256);
}

void benchPromiseChain(benchmark::State &State, Instr I) {
  for (auto _ : State) {
    runProgram(I, [](Runtime &R) {
      PromiseRef P =
          R.promiseResolvedWith(SourceLocation::internal(), Value::number(0));
      for (int T = 0; T < 128; ++T)
        P = R.promiseThen(SourceLocation::internal(), P,
                          R.makeBuiltin("step",
                                        [](Runtime &, const CallArgs &A) {
                                          return Completion::normal(
                                              A.arg(0));
                                        }));
      // Terminate the chain so the missing-rejection detector is quiet.
      R.promiseCatch(SourceLocation::internal(), P,
                     R.makeBuiltin("catch", [](Runtime &, const CallArgs &) {
                       return Completion::normal();
                     }));
    });
  }
  State.SetItemsProcessed(State.iterations() * 128);
}

void benchEmitterEmit(benchmark::State &State, Instr I) {
  for (auto _ : State) {
    runProgram(I, [](Runtime &R) {
      EmitterRef E = R.emitterCreate(SourceLocation::internal());
      for (int L = 0; L < 4; ++L)
        R.emitterOn(SourceLocation::internal(), E, "evt",
                    R.makeBuiltin("listener",
                                  [](Runtime &, const CallArgs &) {
                                    return Completion::normal();
                                  }));
      for (int T = 0; T < 64; ++T)
        R.emitterEmit(SourceLocation::internal(), E, "evt",
                      {Value::number(T)});
    });
  }
  State.SetItemsProcessed(State.iterations() * 64 * 4);
}

#define REGISTER_INSTR_BENCH(Fn)                                             \
  BENCHMARK_CAPTURE(Fn, baseline, Instr::Off);                               \
  BENCHMARK_CAPTURE(Fn, asyncg, Instr::AsyncG);                              \
  BENCHMARK_CAPTURE(Fn, asyncg_detectors, Instr::AsyncGDetect)

REGISTER_INSTR_BENCH(benchNextTick);
REGISTER_INSTR_BENCH(benchTimers);
REGISTER_INSTR_BENCH(benchPromiseChain);
REGISTER_INSTR_BENCH(benchEmitterEmit);

} // namespace

int main(int argc, char **argv) {
  return asyncg::benchjson::gbenchMain(argc, argv, "micro_eventloop");
}
