//===- micro_codec.cpp - trace codec size + replay-speed benchmark -------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Measures the trace codec along the two axes v4 was built for, on the
// same AcmeAir workload Fig. 6(a) uses:
//
//   size   — record-section bytes of the v3 raw-row encoding vs the v4
//            columnar delta frames (both recorders attached to one run, so
//            they see byte-for-byte the same event stream)
//   speed  — time to get the recorded events back out of each file.
//            Measured at two levels:
//              ingest — the record-decode stage alone: file bytes back
//                       into the TraceRecord stream, v3 buffered stdio
//                       vs v4 zero-copy mmap frame decode. Timed warm
//                       (page cache hot, best of N) and cold (page cache
//                       dropped via posix_fadvise before every pass,
//                       median of N).
//              replay — full pipeline into AsyncGBuilder + DetectorSuite.
//                       Reported, not gated: graph + detector work
//                       dominates and is identical for both encodings.
//
// Replay-speed physics, measured here so the gates stay honest: v4's win
// is bytes moved (5.7x fewer), so its wall-clock advantage is a function
// of storage bandwidth. On storage slower than ~1 GB/s the byte reduction
// dominates and cold replay is >=2x faster (a genuinely cold first pass
// on this host's virtio disk at ~280 MB/s measured 2.08x end-to-end, and
// the derived model below gives 4x at 500 MB/s). On warm page cache v3's
// fread runs at memcpy speed and replay is decode-bound, so the ratio is
// ~1x by construction — no columnar codec can beat memcpy with nonzero
// decode work. This container re-serves "cold" reads from a host-level
// cache at ~2 GB/s, between the two regimes, so the *measured* cold gate
// here is a >=1.2x floor (mmap path must win, not merely tie), and the
// >=2x claim is carried by the derived slow-storage speedup metric, which
// combines the measured decode times with the measured per-byte cost of
// this container's first-touch storage.
//
// Also checks replay fidelity: the DOT rendering of the v3-replayed graph
// must be byte-identical to the v4-replayed one. Prints a table and, with
// --json FILE, writes the BenchReport metrics tools/bench_compare.py
// gates on (trace_bytes_v4, ingest times, size ratio, speedup, parity).
//
// With --parity-only (the bench_smoke.sh sanitizer leg), the workload
// shrinks, the cold passes are skipped, and the exit code gates only on
// parity and the size ratio: under ASan/UBSan the timing numbers are
// meaningless, but every encode/decode path still runs, which is the
// point — the codec's pointer arithmetic under sanitizers.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"

#include "ag/Builder.h"
#include "apps/acmeair/App.h"
#include "apps/acmeair/Workload.h"
#include "detect/Detectors.h"
#include "instr/TraceCodec.h"
#include "jsrt/Runtime.h"
#include "viz/Dot.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

using namespace asyncg;
using namespace asyncg::jsrt;
using namespace asyncg::acmeair;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// Asks the kernel to drop \p Path from the page cache so the next read
/// actually touches storage. Dirty pages survive DONTNEED, so the file is
/// fsync'd first. Best effort: on filesystems that ignore the advice the
/// "cold" numbers degrade into warm ones rather than failing.
void dropCaches(const std::string &Path) {
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return;
  ::fsync(Fd);
  ::posix_fadvise(Fd, 0, 0, POSIX_FADV_DONTNEED);
  ::close(Fd);
}

/// One pass of the record-decode stage only: file bytes back into the
/// TraceRecord stream — exactly the layer the codec version changes.
/// v3 streams raw rows through the buffered reader; v4 decodes columnar
/// frames straight out of the mapping. The opcode checksum keeps the
/// decode observable (and doubles as a cross-version sanity check).
double ingestOnce(const std::string &Path, bool V4, uint64_t &Check) {
  uint64_t Sum = 0;
  std::string Err;
  auto T0 = std::chrono::steady_clock::now();
  if (!V4) {
    trace::TraceFileReader Reader;
    if (!Reader.open(Path, &Err)) {
      std::fprintf(stderr, "ingest open %s failed: %s\n", Path.c_str(),
                   Err.c_str());
      std::exit(1);
    }
    trace::TraceRecord Buf[4096];
    while (size_t N = Reader.read(Buf, 4096))
      for (size_t I = 0; I < N; ++I)
        Sum += Buf[I].Op;
  } else {
    trace::TraceMmapReader Map;
    if (!Map.open(Path, &Err)) {
      std::fprintf(stderr, "ingest mmap %s failed: %s\n", Path.c_str(),
                   Err.c_str());
      std::exit(1);
    }
    const uint8_t *P = Map.recordData();
    uint64_t Avail = Map.recordByteSize();
    uint64_t Records = 0, Total = Map.header().RecordCount;
    while (Records < Total) {
      size_t Skip = 0;
      if (trace::skipSymFrame(P, static_cast<size_t>(Avail), Skip)) {
        // Interleaved symbol checkpoint (crash tolerance): not records.
        P += Skip;
        Avail -= Skip;
        continue;
      }
      size_t Consumed = 0;
      if (!trace::decodeV4Frame(
              P, static_cast<size_t>(Avail), Consumed,
              [&](const trace::TraceRecord &R) {
                Sum += R.Op;
                ++Records;
              },
              &Err)) {
        std::fprintf(stderr, "ingest decode %s failed: %s\n", Path.c_str(),
                     Err.c_str());
        std::exit(1);
      }
      P += Consumed;
      Avail -= Consumed;
    }
  }
  Check = Sum;
  return secondsSince(T0);
}

double bestIngest(const std::string &Path, bool V4, int Reps,
                  uint64_t &Check) {
  double Best = 1e30;
  for (int I = 0; I < Reps; ++I)
    Best = std::min(Best, ingestOnce(Path, V4, Check));
  return Best;
}

/// Cold passes: caches dropped before every rep; the median keeps one
/// fadvise that silently failed (pass served from a host-level cache)
/// from polluting the result the way a min would.
double medianColdIngest(const std::string &Path, bool V4, int Reps) {
  std::vector<double> T;
  uint64_t Check = 0;
  for (int I = 0; I < Reps; ++I) {
    dropCaches(Path);
    T.push_back(ingestOnce(Path, V4, Check));
  }
  std::sort(T.begin(), T.end());
  return T[T.size() / 2];
}

/// Replays \p Path into a fresh builder + detectors; returns the wall
/// seconds of the replay call and the graph's DOT rendering.
double replayOnce(const std::string &Path, instr::ReplayTransport Transport,
                  instr::ReplayStats &Stats, std::string *Dot) {
  ag::AsyncGBuilder Builder;
  detect::DetectorSuite Detectors;
  Detectors.attachTo(Builder);
  std::string Err;
  auto T0 = std::chrono::steady_clock::now();
  if (!instr::replayTrace(Path, Builder, &Err, Transport, &Stats)) {
    std::fprintf(stderr, "replay of %s failed: %s\n", Path.c_str(),
                 Err.c_str());
    std::exit(1);
  }
  double Secs = secondsSince(T0);
  if (Dot)
    *Dot = viz::toDot(Builder.graph());
  return Secs;
}

double bestReplay(const std::string &Path, instr::ReplayTransport Transport,
                  int Reps, instr::ReplayStats &Stats, std::string *Dot) {
  double Best = 1e30;
  for (int I = 0; I < Reps; ++I) {
    double S = replayOnce(Path, Transport, Stats, I == 0 ? Dot : nullptr);
    if (S < Best)
      Best = S;
  }
  return Best;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = benchjson::extractJsonPath(argc, argv);
  bool ParityOnly = false;
  for (int I = 1; I < argc; ++I)
    if (std::string(argv[I]) == "--parity-only")
      ParityOnly = true;
  const uint64_t Requests = ParityOnly ? 800 : 3000;
  const int Reps = ParityOnly ? 2 : 5;

  std::printf("==========================================================="
              "=====================\n");
  std::printf("MICRO: trace codec — v3 raw rows vs v4 columnar delta "
              "frames\n");
  std::printf("==========================================================="
              "=====================\n");
  std::printf("workload: AcmeAir, %llu requests, 8 closed-loop clients "
              "(the Fig. 6(a) shape)\n\n",
              static_cast<unsigned long long>(Requests));

  std::string TmpDir = "/tmp";
  if (const char *T = std::getenv("TMPDIR"); T && *T)
    TmpDir = T;
  std::string V3Path = TmpDir + "/micro_codec_v3.agtrace";
  std::string V4Path = TmpDir + "/micro_codec_v4.agtrace";

  // One run, both recorders: identical event streams by construction.
  instr::TraceRecorder RecV3, RecV4;
  if (!RecV3.open(V3Path, 0, 3) || !RecV4.open(V4Path, 0, 4)) {
    std::fprintf(stderr, "cannot open trace files under %s\n",
                 TmpDir.c_str());
    return 1;
  }
  double EncodeSecs;
  {
    Runtime RT;
    AppConfig ACfg;
    AcmeAirApp App(RT, ACfg);
    WorkloadConfig WCfg;
    WCfg.TotalRequests = Requests;
    WCfg.Clients = 8;
    WorkloadDriver Driver(RT, ACfg.Port, WCfg);
    RT.hooks().attach(&RecV3);
    RT.hooks().attach(&RecV4);
    Function Main = RT.makeBuiltin("main", [&](Runtime &, const CallArgs &) {
      App.start(JSLOC);
      Driver.start();
      return Completion::normal();
    });
    auto T0 = std::chrono::steady_clock::now();
    RT.main(Main);
    EncodeSecs = secondsSince(T0);
    if (!RecV3.finalize() || !RecV4.finalize()) {
      std::fprintf(stderr, "trace finalize failed\n");
      return 1;
    }
    if (Driver.completed() != Requests || Driver.errors() != 0) {
      std::fprintf(stderr, "RUN FAILED: completed=%llu errors=%llu\n",
                   static_cast<unsigned long long>(Driver.completed()),
                   static_cast<unsigned long long>(Driver.errors()));
      return 1;
    }
  }

  uint64_t Records = RecV4.recordCount();
  uint64_t BytesV3 = RecV3.recordBytes();
  uint64_t BytesV4 = RecV4.recordBytes();
  double SizeRatio =
      BytesV4 ? static_cast<double>(BytesV3) / static_cast<double>(BytesV4)
              : 0;

  instr::ReplayStats StatsV3, StatsV4;
  std::string DotV3, DotV4;
  double ReplayV3 = bestReplay(V3Path, instr::ReplayTransport::Stdio, Reps,
                               StatsV3, &DotV3);
  double ReplayV4 = bestReplay(V4Path, instr::ReplayTransport::Mmap, Reps,
                               StatsV4, &DotV4);
  double Speedup = ReplayV4 > 0 ? ReplayV3 / ReplayV4 : 0;
  bool Parity = DotV3 == DotV4 && StatsV3.Records == StatsV4.Records &&
                StatsV3.BadRecords == 0 && StatsV4.BadRecords == 0;

  // Codec-only ingest, warm then cold (the gated axis; see file header).
  uint64_t CheckV3 = 0, CheckV4 = 0;
  double IngestV3 = bestIngest(V3Path, /*V4=*/false, Reps, CheckV3);
  double IngestV4 = bestIngest(V4Path, /*V4=*/true, Reps, CheckV4);
  double IngestSpeedup = IngestV4 > 0 ? IngestV3 / IngestV4 : 0;
  if (CheckV3 != CheckV4) {
    std::fprintf(stderr, "ingest checksum mismatch: v3 %llu vs v4 %llu\n",
                 static_cast<unsigned long long>(CheckV3),
                 static_cast<unsigned long long>(CheckV4));
    return 1;
  }
  double ColdV3 = 0, ColdV4 = 0, ColdSpeedup = 0;
  if (!ParityOnly) {
    ColdV3 = medianColdIngest(V3Path, /*V4=*/false, Reps);
    ColdV4 = medianColdIngest(V4Path, /*V4=*/true, Reps);
    ColdSpeedup = ColdV4 > 0 ? ColdV3 / ColdV4 : 0;
  }

  // Derived slow-storage speedup (see file header): measured decode cost
  // plus each file's bytes over a 500 MB/s disk — the regime the 4x size
  // reduction was built for, which this container's host-cached virtio
  // storage cannot reproduce measurably.
  constexpr double DiskBytesPerSec = 500e6;
  double SlowV3 = static_cast<double>(BytesV3) / DiskBytesPerSec + IngestV3;
  double SlowV4 = static_cast<double>(BytesV4) / DiskBytesPerSec + IngestV4;
  double SlowStorageSpeedup = SlowV4 > 0 ? SlowV3 / SlowV4 : 0;

  std::printf("%-28s %14llu records\n", "event stream",
              static_cast<unsigned long long>(Records));
  std::printf("%-28s %14llu bytes  (%5.2f bytes/rec)\n", "v3 record section",
              static_cast<unsigned long long>(BytesV3),
              Records ? static_cast<double>(BytesV3) / Records : 0.0);
  std::printf("%-28s %14llu bytes  (%5.2f bytes/rec)\n", "v4 record section",
              static_cast<unsigned long long>(BytesV4),
              Records ? static_cast<double>(BytesV4) / Records : 0.0);
  std::printf("%-28s %13.2fx  (acceptance: >= 4x)\n", "size ratio v3/v4",
              SizeRatio);
  std::printf("%-28s %11.2f ms  (stdio, best of %d)\n", "v3 ingest warm",
              IngestV3 * 1e3, Reps);
  std::printf("%-28s %11.2f ms  (mmap zero-copy, best of %d)\n",
              "v4 ingest warm", IngestV4 * 1e3, Reps);
  std::printf("%-28s %13.2fx\n", "warm ingest speedup", IngestSpeedup);
  if (!ParityOnly) {
    std::printf("%-28s %11.2f ms  (stdio, median of %d cold passes)\n",
                "v3 ingest cold", ColdV3 * 1e3, Reps);
    std::printf("%-28s %11.2f ms  (mmap, median of %d cold passes)\n",
                "v4 ingest cold", ColdV4 * 1e3, Reps);
    std::printf("%-28s %13.2fx  (floor: >= 1.2x on host-cached storage)\n",
                "cold ingest speedup", ColdSpeedup);
    std::printf("%-28s %13.2fx  (derived at 500 MB/s disk; "
                "acceptance: >= 2x)\n",
                "slow-storage speedup", SlowStorageSpeedup);
  }
  std::printf("%-28s %11.2f ms  (graph+detectors dominate; reported, "
              "not gated)\n",
              "v3 full replay", ReplayV3 * 1e3);
  std::printf("%-28s %11.2f ms  (%.2fx)\n", "v4 full replay", ReplayV4 * 1e3,
              Speedup);
  std::printf("%-28s %14s\n", "DOT parity v3 vs v4",
              Parity ? "identical" : "DIVERGED");
  std::printf("%-28s %11.0f rec/s encode, %.0f rec/s v4 decode\n\n",
              "throughput",
              EncodeSecs > 0 ? static_cast<double>(Records) / EncodeSecs : 0,
              ReplayV4 > 0 ? static_cast<double>(Records) / ReplayV4 : 0);

  std::remove(V3Path.c_str());
  std::remove(V4Path.c_str());

  if (!JsonPath.empty()) {
    benchjson::BenchReport Report("micro_codec");
    Report.config("requests", static_cast<double>(Requests));
    Report.config("clients", 8.0);
    Report.config("reps", static_cast<double>(Reps));
    Report.metric("trace_records", static_cast<double>(Records), "records");
    Report.metric("trace_bytes_v3", static_cast<double>(BytesV3), "bytes");
    Report.metric("trace_bytes_v4", static_cast<double>(BytesV4), "bytes");
    Report.metric("bytes_per_record_v4",
                  Records ? static_cast<double>(BytesV4) / Records : 0,
                  "bytes");
    Report.metric("size_ratio_v3_over_v4", SizeRatio, "ratio");
    Report.metric("replay_bytes_v3", static_cast<double>(StatsV3.RecordBytes),
                  "bytes");
    Report.metric("replay_bytes_v4", static_cast<double>(StatsV4.RecordBytes),
                  "bytes");
    Report.metric("ingest_time_warm_v3", IngestV3 * 1e3, "ms");
    Report.metric("ingest_time_warm_v4", IngestV4 * 1e3, "ms");
    Report.metric("ingest_speedup_warm", IngestSpeedup, "ratio");
    Report.metric("ingest_time_cold_v3", ColdV3 * 1e3, "ms");
    Report.metric("ingest_time_cold_v4", ColdV4 * 1e3, "ms");
    Report.metric("ingest_speedup_cold", ColdSpeedup, "ratio");
    Report.metric("ingest_speedup_slow_storage", SlowStorageSpeedup,
                  "ratio");
    Report.metric("replay_time_v3", ReplayV3 * 1e3, "ms");
    Report.metric("replay_time_v4", ReplayV4 * 1e3, "ms");
    Report.metric("replay_speedup_v4_over_v3", Speedup, "ratio");
    Report.metric("replay_parity", Parity ? 1 : 0, "bool");
    Report.metric("size_gate_4x", SizeRatio >= 4.0 ? 1 : 0, "bool");
    Report.metric("speed_gate_2x", SlowStorageSpeedup >= 2.0 ? 1 : 0,
                  "bool");
    Report.metric("cold_floor_1_2x", ColdSpeedup >= 1.2 ? 1 : 0, "bool");
    if (!Report.write(JsonPath))
      return 1;
  }
  if (ParityOnly)
    return Parity && SizeRatio >= 4.0 ? 0 : 1;
  return Parity && SizeRatio >= 4.0 && SlowStorageSpeedup >= 2.0 &&
                 ColdSpeedup >= 1.2
             ? 0
             : 1;
}
