//===- micro_ring.cpp - SPSC ring + pipeline throughput micro bench ----------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Throughput of the async-pipeline transport layer:
//
//   RingPushPop/<batch>    — uncontended push/pop of 32-byte TraceRecords
//                            in spans of <batch> (per-record cost floor)
//   RingTransfer/<cap>     — producer thread -> consumer thread through a
//                            ring of <cap> records, batched drain
//   PipelineEvents         — hook-event encode + ring + decode + dispatch,
//                            end to end through AsyncPipeline
//
// Reports records/s (items_per_second); run with --json for a BenchReport.
//
//===----------------------------------------------------------------------===//

#include "GBenchMain.h"

#include "ag/AsyncPipeline.h"
#include "support/SpscRing.h"
#include "support/TraceFormat.h"

#include <thread>

using namespace asyncg;

namespace {

trace::TraceRecord makeRecord(uint64_t I) {
  trace::TraceRecord R;
  R.Op = static_cast<uint8_t>(trace::TraceOp::ObjCreate);
  R.D64 = I;
  R.E64 = I ^ 0x9e3779b97f4a7c15ull;
  return R;
}

void BM_RingPushPop(benchmark::State &State) {
  const size_t Batch = static_cast<size_t>(State.range(0));
  SpscRing<trace::TraceRecord> Ring(1 << 12);
  std::vector<trace::TraceRecord> Span(Batch);
  for (size_t I = 0; I != Batch; ++I)
    Span[I] = makeRecord(I);
  std::vector<trace::TraceRecord> Out(Batch);

  for (auto _ : State) {
    benchmark::DoNotOptimize(Ring.tryPushAll(Span.data(), Batch));
    benchmark::DoNotOptimize(Ring.tryPopBatch(Out.data(), Batch));
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Batch));
}
BENCHMARK(BM_RingPushPop)->Arg(1)->Arg(4)->Arg(16);

void BM_RingTransfer(benchmark::State &State) {
  const size_t Capacity = static_cast<size_t>(State.range(0));
  constexpr uint64_t Total = 1 << 20;

  for (auto _ : State) {
    SpscRing<trace::TraceRecord> Ring(Capacity);
    std::thread Consumer([&Ring] {
      trace::TraceRecord Buf[256];
      uint64_t Seen = 0;
      while (Seen != Total) {
        size_t N = Ring.tryPopBatch(Buf, 256);
        if (N == 0) {
          std::this_thread::yield();
          continue;
        }
        Seen += N;
      }
    });

    trace::TraceRecord Span[4];
    for (uint64_t I = 0; I != Total; I += 4) {
      for (uint64_t J = 0; J != 4; ++J)
        Span[J] = makeRecord(I + J);
      while (!Ring.tryPushAll(Span, 4))
        std::this_thread::yield();
    }
    Consumer.join();
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Total));
}
BENCHMARK(BM_RingTransfer)->Arg(1 << 10)->Arg(1 << 16)->UseRealTime();

/// Sink that only counts: isolates the pipeline transport + codec cost
/// from graph construction.
class CountingSink final : public instr::AnalysisBase {
public:
  const char *analysisName() const override { return "counting-sink"; }
  void onObjectCreate(const instr::ObjectCreateEvent &) override { ++Seen; }
  uint64_t Seen = 0;
};

void BM_PipelineEvents(benchmark::State &State) {
  constexpr uint64_t Total = 1 << 18;
  for (auto _ : State) {
    CountingSink Sink;
    {
      ag::AsyncPipeline Pipeline(Sink);
      instr::ObjectCreateEvent Ev;
      Ev.IsPromise = true;
      for (uint64_t I = 0; I != Total; ++I) {
        Ev.Obj = I + 1;
        Pipeline.onObjectCreate(Ev);
      }
      Pipeline.stop();
    }
    if (Sink.Seen != Total)
      State.SkipWithError("pipeline lost events");
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Total));
}
BENCHMARK(BM_PipelineEvents)->UseRealTime();

} // namespace

int main(int argc, char **argv) {
  return asyncg::benchjson::gbenchMain(argc, argv, "micro_ring");
}
