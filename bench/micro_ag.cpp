//===- micro_ag.cpp - Async Graph construction micro benchmarks ----------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark micro benchmarks of the AG data structures themselves:
// node/edge insertion rates, registration-to-execution mapping through the
// pending lists and the context validator, and graph queries. These
// isolate the builder's costs from the runtime's.
//
//===----------------------------------------------------------------------===//

#include "ag/Builder.h"
#include "ag/Graph.h"
#include "ag/Validator.h"
#include "viz/Dot.h"
#include "viz/JsonDump.h"

#include "GBenchMain.h"

#include <benchmark/benchmark.h>

using namespace asyncg;
using namespace asyncg::ag;

namespace {

void benchGraphNodeInsertion(benchmark::State &State) {
  for (auto _ : State) {
    AsyncGraph G;
    AgTick T;
    T.Index = 1;
    for (int I = 0; I < 1024; ++I) {
      AgNode N;
      N.Kind = NodeKind::CR;
      N.Sched = static_cast<jsrt::ScheduleId>(I + 1);
      N.Label = "L1: nextTick";
      G.addNode(std::move(N), T);
    }
    G.appendTick(std::move(T));
    benchmark::DoNotOptimize(G.nodeCount());
  }
  State.SetItemsProcessed(State.iterations() * 1024);
}
BENCHMARK(benchGraphNodeInsertion);

void benchGraphEdges(benchmark::State &State) {
  for (auto _ : State) {
    AsyncGraph G;
    AgTick T;
    T.Index = 1;
    for (int I = 0; I < 512; ++I) {
      AgNode N;
      N.Kind = I % 2 ? NodeKind::CE : NodeKind::CR;
      G.addNode(std::move(N), T);
    }
    G.appendTick(std::move(T));
    for (int I = 0; I + 1 < 512; I += 2) {
      G.addEdge(static_cast<NodeId>(I + 1), static_cast<NodeId>(I),
                EdgeKind::Binding);
      G.addEdge(static_cast<NodeId>(I), static_cast<NodeId>(I + 1),
                EdgeKind::Causal);
    }
    benchmark::DoNotOptimize(G.edges().size());
  }
  State.SetItemsProcessed(State.iterations() * 512);
}
BENCHMARK(benchGraphEdges);

void benchValidator(benchmark::State &State) {
  PendingReg Reg;
  Reg.Sched = 7;
  Reg.Api = jsrt::ApiKind::EmitterOn;
  Reg.BoundObj = 42;
  Reg.Event = "data";

  jsrt::DispatchInfo D;
  D.Sched = 7;
  D.Trigger.K = jsrt::TriggerInfo::Kind::Emitter;
  D.Trigger.Obj = 42;
  D.Trigger.Event = "data";

  for (auto _ : State) {
    bool V = ContextValidator::isValid(Reg, D, jsrt::PhaseKind::Io);
    bool C = ContextValidator::contextMatches(Reg, D, jsrt::PhaseKind::Io);
    benchmark::DoNotOptimize(V);
    benchmark::DoNotOptimize(C);
  }
  State.SetItemsProcessed(State.iterations() * 2);
}
BENCHMARK(benchValidator);

/// Builds a representative graph via the real builder from synthetic
/// instrumentation events (no runtime), measuring builder throughput.
void benchBuilderSyntheticTicks(benchmark::State &State) {
  for (auto _ : State) {
    AsyncGBuilder B;
    jsrt::CallArgs NoArgs;
    jsrt::Completion Ok;
    for (uint64_t I = 0; I < 256; ++I) {
      // One registration followed by the matching execution tick.
      auto Fn = std::make_shared<jsrt::FunctionData>();
      Fn->Id = I + 1;
      Fn->Name = "cb";
      jsrt::Function F(Fn);

      instr::ApiCallEvent Reg;
      Reg.Api = jsrt::ApiKind::SetImmediate;
      Reg.Sched = I + 1;
      Reg.Callbacks = {F};
      Reg.TargetPhase = jsrt::PhaseKind::Check;
      B.onApiCall(Reg);

      jsrt::DispatchInfo D;
      D.Phase = jsrt::PhaseKind::Check;
      D.TopLevel = true;
      D.Sched = I + 1;
      D.Api = jsrt::ApiKind::SetImmediate;
      B.onFunctionEnter(instr::FunctionEnterEvent{F, NoArgs, D});
      B.onFunctionExit(instr::FunctionExitEvent{F, Ok, D});
    }
    B.onLoopEnd(instr::LoopEndEvent{256, false});
    benchmark::DoNotOptimize(B.graph().nodeCount());
  }
  State.SetItemsProcessed(State.iterations() * 256);
}
BENCHMARK(benchBuilderSyntheticTicks);

void benchSerializeDot(benchmark::State &State) {
  AsyncGBuilder B;
  jsrt::CallArgs NoArgs;
  jsrt::Completion Ok;
  for (uint64_t I = 0; I < 512; ++I) {
    auto Fn = std::make_shared<jsrt::FunctionData>();
    Fn->Id = I + 1;
    jsrt::Function F(Fn);
    instr::ApiCallEvent Reg;
    Reg.Api = jsrt::ApiKind::NextTick;
    Reg.Sched = I + 1;
    Reg.Callbacks = {F};
    Reg.TargetPhase = jsrt::PhaseKind::NextTick;
    B.onApiCall(Reg);
    jsrt::DispatchInfo D;
    D.Phase = jsrt::PhaseKind::NextTick;
    D.TopLevel = true;
    D.Sched = I + 1;
    D.Api = jsrt::ApiKind::NextTick;
    B.onFunctionEnter(instr::FunctionEnterEvent{F, NoArgs, D});
    B.onFunctionExit(instr::FunctionExitEvent{F, Ok, D});
  }
  for (auto _ : State) {
    std::string Dot = viz::toDot(B.graph());
    std::string Json = viz::toJson(B.graph());
    benchmark::DoNotOptimize(Dot.size());
    benchmark::DoNotOptimize(Json.size());
  }
}
BENCHMARK(benchSerializeDot);

} // namespace

int main(int argc, char **argv) {
  return asyncg::benchjson::gbenchMain(argc, argv, "micro_ag");
}
