file(REMOVE_RECURSE
  "CMakeFiles/fig1_server_bug.dir/fig1_server_bug.cpp.o"
  "CMakeFiles/fig1_server_bug.dir/fig1_server_bug.cpp.o.d"
  "fig1_server_bug"
  "fig1_server_bug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_server_bug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
