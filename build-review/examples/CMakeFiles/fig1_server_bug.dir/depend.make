# Empty dependencies file for fig1_server_bug.
# This may be replaced when dependencies are built.
