# Empty compiler generated dependencies file for fig4_promise_emitter.
# This may be replaced when dependencies are built.
