file(REMOVE_RECURSE
  "CMakeFiles/fig4_promise_emitter.dir/fig4_promise_emitter.cpp.o"
  "CMakeFiles/fig4_promise_emitter.dir/fig4_promise_emitter.cpp.o.d"
  "fig4_promise_emitter"
  "fig4_promise_emitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_promise_emitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
