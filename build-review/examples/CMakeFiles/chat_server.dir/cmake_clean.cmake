file(REMOVE_RECURSE
  "CMakeFiles/chat_server.dir/chat_server.cpp.o"
  "CMakeFiles/chat_server.dir/chat_server.cpp.o.d"
  "chat_server"
  "chat_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chat_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
