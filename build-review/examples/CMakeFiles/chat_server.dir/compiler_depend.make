# Empty compiler generated dependencies file for chat_server.
# This may be replaced when dependencies are built.
