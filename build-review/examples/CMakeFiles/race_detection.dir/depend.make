# Empty dependencies file for race_detection.
# This may be replaced when dependencies are built.
