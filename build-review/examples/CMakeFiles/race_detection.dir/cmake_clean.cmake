file(REMOVE_RECURSE
  "CMakeFiles/race_detection.dir/race_detection.cpp.o"
  "CMakeFiles/race_detection.dir/race_detection.cpp.o.d"
  "race_detection"
  "race_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/race_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
