file(REMOVE_RECURSE
  "CMakeFiles/acmeair_demo.dir/acmeair_demo.cpp.o"
  "CMakeFiles/acmeair_demo.dir/acmeair_demo.cpp.o.d"
  "acmeair_demo"
  "acmeair_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acmeair_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
