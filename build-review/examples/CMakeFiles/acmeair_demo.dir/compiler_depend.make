# Empty compiler generated dependencies file for acmeair_demo.
# This may be replaced when dependencies are built.
