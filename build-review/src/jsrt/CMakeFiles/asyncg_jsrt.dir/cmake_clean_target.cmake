file(REMOVE_RECURSE
  "libasyncg_jsrt.a"
)
