file(REMOVE_RECURSE
  "CMakeFiles/asyncg_jsrt.dir/Runtime.cpp.o"
  "CMakeFiles/asyncg_jsrt.dir/Runtime.cpp.o.d"
  "CMakeFiles/asyncg_jsrt.dir/TimerHeap.cpp.o"
  "CMakeFiles/asyncg_jsrt.dir/TimerHeap.cpp.o.d"
  "CMakeFiles/asyncg_jsrt.dir/Value.cpp.o"
  "CMakeFiles/asyncg_jsrt.dir/Value.cpp.o.d"
  "libasyncg_jsrt.a"
  "libasyncg_jsrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncg_jsrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
