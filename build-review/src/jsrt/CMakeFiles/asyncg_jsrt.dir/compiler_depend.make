# Empty compiler generated dependencies file for asyncg_jsrt.
# This may be replaced when dependencies are built.
