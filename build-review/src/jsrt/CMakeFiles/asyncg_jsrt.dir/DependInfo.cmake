
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jsrt/Runtime.cpp" "src/jsrt/CMakeFiles/asyncg_jsrt.dir/Runtime.cpp.o" "gcc" "src/jsrt/CMakeFiles/asyncg_jsrt.dir/Runtime.cpp.o.d"
  "/root/repo/src/jsrt/TimerHeap.cpp" "src/jsrt/CMakeFiles/asyncg_jsrt.dir/TimerHeap.cpp.o" "gcc" "src/jsrt/CMakeFiles/asyncg_jsrt.dir/TimerHeap.cpp.o.d"
  "/root/repo/src/jsrt/Value.cpp" "src/jsrt/CMakeFiles/asyncg_jsrt.dir/Value.cpp.o" "gcc" "src/jsrt/CMakeFiles/asyncg_jsrt.dir/Value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/support/CMakeFiles/asyncg_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/asyncg_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/instr/CMakeFiles/asyncg_instr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
