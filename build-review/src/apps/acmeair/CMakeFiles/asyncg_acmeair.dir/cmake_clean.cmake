file(REMOVE_RECURSE
  "CMakeFiles/asyncg_acmeair.dir/App.cpp.o"
  "CMakeFiles/asyncg_acmeair.dir/App.cpp.o.d"
  "CMakeFiles/asyncg_acmeair.dir/MockMongo.cpp.o"
  "CMakeFiles/asyncg_acmeair.dir/MockMongo.cpp.o.d"
  "CMakeFiles/asyncg_acmeair.dir/Workload.cpp.o"
  "CMakeFiles/asyncg_acmeair.dir/Workload.cpp.o.d"
  "libasyncg_acmeair.a"
  "libasyncg_acmeair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncg_acmeair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
