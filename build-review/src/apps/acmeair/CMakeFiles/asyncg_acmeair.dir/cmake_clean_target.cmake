file(REMOVE_RECURSE
  "libasyncg_acmeair.a"
)
