# Empty dependencies file for asyncg_acmeair.
# This may be replaced when dependencies are built.
