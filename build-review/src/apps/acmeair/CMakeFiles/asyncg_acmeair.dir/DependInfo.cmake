
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/acmeair/App.cpp" "src/apps/acmeair/CMakeFiles/asyncg_acmeair.dir/App.cpp.o" "gcc" "src/apps/acmeair/CMakeFiles/asyncg_acmeair.dir/App.cpp.o.d"
  "/root/repo/src/apps/acmeair/MockMongo.cpp" "src/apps/acmeair/CMakeFiles/asyncg_acmeair.dir/MockMongo.cpp.o" "gcc" "src/apps/acmeair/CMakeFiles/asyncg_acmeair.dir/MockMongo.cpp.o.d"
  "/root/repo/src/apps/acmeair/Workload.cpp" "src/apps/acmeair/CMakeFiles/asyncg_acmeair.dir/Workload.cpp.o" "gcc" "src/apps/acmeair/CMakeFiles/asyncg_acmeair.dir/Workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/node/CMakeFiles/asyncg_node.dir/DependInfo.cmake"
  "/root/repo/build-review/src/jsrt/CMakeFiles/asyncg_jsrt.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/asyncg_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/instr/CMakeFiles/asyncg_instr.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/asyncg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
