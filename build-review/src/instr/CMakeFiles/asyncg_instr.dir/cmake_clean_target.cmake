file(REMOVE_RECURSE
  "libasyncg_instr.a"
)
