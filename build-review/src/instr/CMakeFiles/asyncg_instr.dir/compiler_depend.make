# Empty compiler generated dependencies file for asyncg_instr.
# This may be replaced when dependencies are built.
