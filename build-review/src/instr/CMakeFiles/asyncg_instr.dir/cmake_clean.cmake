file(REMOVE_RECURSE
  "CMakeFiles/asyncg_instr.dir/Hooks.cpp.o"
  "CMakeFiles/asyncg_instr.dir/Hooks.cpp.o.d"
  "libasyncg_instr.a"
  "libasyncg_instr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncg_instr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
