file(REMOVE_RECURSE
  "CMakeFiles/asyncg_viz.dir/Dot.cpp.o"
  "CMakeFiles/asyncg_viz.dir/Dot.cpp.o.d"
  "CMakeFiles/asyncg_viz.dir/Html.cpp.o"
  "CMakeFiles/asyncg_viz.dir/Html.cpp.o.d"
  "CMakeFiles/asyncg_viz.dir/JsonDump.cpp.o"
  "CMakeFiles/asyncg_viz.dir/JsonDump.cpp.o.d"
  "CMakeFiles/asyncg_viz.dir/TextReport.cpp.o"
  "CMakeFiles/asyncg_viz.dir/TextReport.cpp.o.d"
  "libasyncg_viz.a"
  "libasyncg_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncg_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
