# Empty dependencies file for asyncg_viz.
# This may be replaced when dependencies are built.
