file(REMOVE_RECURSE
  "libasyncg_viz.a"
)
