
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/node/Events.cpp" "src/node/CMakeFiles/asyncg_node.dir/Events.cpp.o" "gcc" "src/node/CMakeFiles/asyncg_node.dir/Events.cpp.o.d"
  "/root/repo/src/node/Fs.cpp" "src/node/CMakeFiles/asyncg_node.dir/Fs.cpp.o" "gcc" "src/node/CMakeFiles/asyncg_node.dir/Fs.cpp.o.d"
  "/root/repo/src/node/Http.cpp" "src/node/CMakeFiles/asyncg_node.dir/Http.cpp.o" "gcc" "src/node/CMakeFiles/asyncg_node.dir/Http.cpp.o.d"
  "/root/repo/src/node/Net.cpp" "src/node/CMakeFiles/asyncg_node.dir/Net.cpp.o" "gcc" "src/node/CMakeFiles/asyncg_node.dir/Net.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/jsrt/CMakeFiles/asyncg_jsrt.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/asyncg_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/instr/CMakeFiles/asyncg_instr.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/asyncg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
