file(REMOVE_RECURSE
  "CMakeFiles/asyncg_node.dir/Events.cpp.o"
  "CMakeFiles/asyncg_node.dir/Events.cpp.o.d"
  "CMakeFiles/asyncg_node.dir/Fs.cpp.o"
  "CMakeFiles/asyncg_node.dir/Fs.cpp.o.d"
  "CMakeFiles/asyncg_node.dir/Http.cpp.o"
  "CMakeFiles/asyncg_node.dir/Http.cpp.o.d"
  "CMakeFiles/asyncg_node.dir/Net.cpp.o"
  "CMakeFiles/asyncg_node.dir/Net.cpp.o.d"
  "libasyncg_node.a"
  "libasyncg_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncg_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
