file(REMOVE_RECURSE
  "libasyncg_node.a"
)
