# Empty dependencies file for asyncg_node.
# This may be replaced when dependencies are built.
