
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/AgQueries.cpp" "src/detect/CMakeFiles/asyncg_detect.dir/AgQueries.cpp.o" "gcc" "src/detect/CMakeFiles/asyncg_detect.dir/AgQueries.cpp.o.d"
  "/root/repo/src/detect/EmitterDetectors.cpp" "src/detect/CMakeFiles/asyncg_detect.dir/EmitterDetectors.cpp.o" "gcc" "src/detect/CMakeFiles/asyncg_detect.dir/EmitterDetectors.cpp.o.d"
  "/root/repo/src/detect/PromiseDetectors.cpp" "src/detect/CMakeFiles/asyncg_detect.dir/PromiseDetectors.cpp.o" "gcc" "src/detect/CMakeFiles/asyncg_detect.dir/PromiseDetectors.cpp.o.d"
  "/root/repo/src/detect/RaceDetector.cpp" "src/detect/CMakeFiles/asyncg_detect.dir/RaceDetector.cpp.o" "gcc" "src/detect/CMakeFiles/asyncg_detect.dir/RaceDetector.cpp.o.d"
  "/root/repo/src/detect/SchedulingDetectors.cpp" "src/detect/CMakeFiles/asyncg_detect.dir/SchedulingDetectors.cpp.o" "gcc" "src/detect/CMakeFiles/asyncg_detect.dir/SchedulingDetectors.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/ag/CMakeFiles/asyncg_ag.dir/DependInfo.cmake"
  "/root/repo/build-review/src/jsrt/CMakeFiles/asyncg_jsrt.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/asyncg_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/instr/CMakeFiles/asyncg_instr.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/asyncg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
