file(REMOVE_RECURSE
  "libasyncg_detect.a"
)
