file(REMOVE_RECURSE
  "CMakeFiles/asyncg_detect.dir/AgQueries.cpp.o"
  "CMakeFiles/asyncg_detect.dir/AgQueries.cpp.o.d"
  "CMakeFiles/asyncg_detect.dir/EmitterDetectors.cpp.o"
  "CMakeFiles/asyncg_detect.dir/EmitterDetectors.cpp.o.d"
  "CMakeFiles/asyncg_detect.dir/PromiseDetectors.cpp.o"
  "CMakeFiles/asyncg_detect.dir/PromiseDetectors.cpp.o.d"
  "CMakeFiles/asyncg_detect.dir/RaceDetector.cpp.o"
  "CMakeFiles/asyncg_detect.dir/RaceDetector.cpp.o.d"
  "CMakeFiles/asyncg_detect.dir/SchedulingDetectors.cpp.o"
  "CMakeFiles/asyncg_detect.dir/SchedulingDetectors.cpp.o.d"
  "libasyncg_detect.a"
  "libasyncg_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncg_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
