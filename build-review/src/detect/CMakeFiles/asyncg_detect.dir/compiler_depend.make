# Empty compiler generated dependencies file for asyncg_detect.
# This may be replaced when dependencies are built.
