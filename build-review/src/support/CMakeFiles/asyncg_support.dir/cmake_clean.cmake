file(REMOVE_RECURSE
  "CMakeFiles/asyncg_support.dir/Format.cpp.o"
  "CMakeFiles/asyncg_support.dir/Format.cpp.o.d"
  "CMakeFiles/asyncg_support.dir/JsonWriter.cpp.o"
  "CMakeFiles/asyncg_support.dir/JsonWriter.cpp.o.d"
  "CMakeFiles/asyncg_support.dir/Statistic.cpp.o"
  "CMakeFiles/asyncg_support.dir/Statistic.cpp.o.d"
  "CMakeFiles/asyncg_support.dir/SymbolTable.cpp.o"
  "CMakeFiles/asyncg_support.dir/SymbolTable.cpp.o.d"
  "libasyncg_support.a"
  "libasyncg_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncg_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
