
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/Format.cpp" "src/support/CMakeFiles/asyncg_support.dir/Format.cpp.o" "gcc" "src/support/CMakeFiles/asyncg_support.dir/Format.cpp.o.d"
  "/root/repo/src/support/JsonWriter.cpp" "src/support/CMakeFiles/asyncg_support.dir/JsonWriter.cpp.o" "gcc" "src/support/CMakeFiles/asyncg_support.dir/JsonWriter.cpp.o.d"
  "/root/repo/src/support/Statistic.cpp" "src/support/CMakeFiles/asyncg_support.dir/Statistic.cpp.o" "gcc" "src/support/CMakeFiles/asyncg_support.dir/Statistic.cpp.o.d"
  "/root/repo/src/support/SymbolTable.cpp" "src/support/CMakeFiles/asyncg_support.dir/SymbolTable.cpp.o" "gcc" "src/support/CMakeFiles/asyncg_support.dir/SymbolTable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
