# Empty compiler generated dependencies file for asyncg_support.
# This may be replaced when dependencies are built.
