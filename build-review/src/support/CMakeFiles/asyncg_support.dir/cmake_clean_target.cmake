file(REMOVE_RECURSE
  "libasyncg_support.a"
)
