# Empty compiler generated dependencies file for asyncg_ag.
# This may be replaced when dependencies are built.
