file(REMOVE_RECURSE
  "libasyncg_ag.a"
)
