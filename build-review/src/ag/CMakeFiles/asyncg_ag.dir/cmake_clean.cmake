file(REMOVE_RECURSE
  "CMakeFiles/asyncg_ag.dir/Builder.cpp.o"
  "CMakeFiles/asyncg_ag.dir/Builder.cpp.o.d"
  "CMakeFiles/asyncg_ag.dir/Graph.cpp.o"
  "CMakeFiles/asyncg_ag.dir/Graph.cpp.o.d"
  "libasyncg_ag.a"
  "libasyncg_ag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncg_ag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
