file(REMOVE_RECURSE
  "CMakeFiles/asyncg_sim.dir/FileSystem.cpp.o"
  "CMakeFiles/asyncg_sim.dir/FileSystem.cpp.o.d"
  "CMakeFiles/asyncg_sim.dir/Kernel.cpp.o"
  "CMakeFiles/asyncg_sim.dir/Kernel.cpp.o.d"
  "CMakeFiles/asyncg_sim.dir/Network.cpp.o"
  "CMakeFiles/asyncg_sim.dir/Network.cpp.o.d"
  "libasyncg_sim.a"
  "libasyncg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
