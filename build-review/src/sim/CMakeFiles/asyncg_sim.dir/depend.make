# Empty dependencies file for asyncg_sim.
# This may be replaced when dependencies are built.
