
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/FileSystem.cpp" "src/sim/CMakeFiles/asyncg_sim.dir/FileSystem.cpp.o" "gcc" "src/sim/CMakeFiles/asyncg_sim.dir/FileSystem.cpp.o.d"
  "/root/repo/src/sim/Kernel.cpp" "src/sim/CMakeFiles/asyncg_sim.dir/Kernel.cpp.o" "gcc" "src/sim/CMakeFiles/asyncg_sim.dir/Kernel.cpp.o.d"
  "/root/repo/src/sim/Network.cpp" "src/sim/CMakeFiles/asyncg_sim.dir/Network.cpp.o" "gcc" "src/sim/CMakeFiles/asyncg_sim.dir/Network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/support/CMakeFiles/asyncg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
