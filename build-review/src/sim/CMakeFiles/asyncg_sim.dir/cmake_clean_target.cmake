file(REMOVE_RECURSE
  "libasyncg_sim.a"
)
