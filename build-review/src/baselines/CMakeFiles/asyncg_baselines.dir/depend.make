# Empty dependencies file for asyncg_baselines.
# This may be replaced when dependencies are built.
