file(REMOVE_RECURSE
  "CMakeFiles/asyncg_baselines.dir/ApiUsageCounter.cpp.o"
  "CMakeFiles/asyncg_baselines.dir/ApiUsageCounter.cpp.o.d"
  "CMakeFiles/asyncg_baselines.dir/EmitterOnlyAnalyzer.cpp.o"
  "CMakeFiles/asyncg_baselines.dir/EmitterOnlyAnalyzer.cpp.o.d"
  "CMakeFiles/asyncg_baselines.dir/PromiseOnlyAnalyzer.cpp.o"
  "CMakeFiles/asyncg_baselines.dir/PromiseOnlyAnalyzer.cpp.o.d"
  "libasyncg_baselines.a"
  "libasyncg_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncg_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
