file(REMOVE_RECURSE
  "libasyncg_baselines.a"
)
