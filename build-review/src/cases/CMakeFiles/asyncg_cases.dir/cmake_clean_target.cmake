file(REMOVE_RECURSE
  "libasyncg_cases.a"
)
