file(REMOVE_RECURSE
  "CMakeFiles/asyncg_cases.dir/CaseRunner.cpp.o"
  "CMakeFiles/asyncg_cases.dir/CaseRunner.cpp.o.d"
  "CMakeFiles/asyncg_cases.dir/CasesEmitter.cpp.o"
  "CMakeFiles/asyncg_cases.dir/CasesEmitter.cpp.o.d"
  "CMakeFiles/asyncg_cases.dir/CasesPromise.cpp.o"
  "CMakeFiles/asyncg_cases.dir/CasesPromise.cpp.o.d"
  "CMakeFiles/asyncg_cases.dir/CasesScheduling.cpp.o"
  "CMakeFiles/asyncg_cases.dir/CasesScheduling.cpp.o.d"
  "CMakeFiles/asyncg_cases.dir/Registry.cpp.o"
  "CMakeFiles/asyncg_cases.dir/Registry.cpp.o.d"
  "libasyncg_cases.a"
  "libasyncg_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncg_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
