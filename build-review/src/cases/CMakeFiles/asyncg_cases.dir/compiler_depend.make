# Empty compiler generated dependencies file for asyncg_cases.
# This may be replaced when dependencies are built.
