# CMake generated Testfile for 
# Source directory: /root/repo/src/cases
# Build directory: /root/repo/build-review/src/cases
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
