file(REMOVE_RECURSE
  "CMakeFiles/ablation_analysis_cost.dir/ablation_analysis_cost.cpp.o"
  "CMakeFiles/ablation_analysis_cost.dir/ablation_analysis_cost.cpp.o.d"
  "ablation_analysis_cost"
  "ablation_analysis_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_analysis_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
