# Empty compiler generated dependencies file for ablation_analysis_cost.
# This may be replaced when dependencies are built.
