# Empty compiler generated dependencies file for micro_ag.
# This may be replaced when dependencies are built.
