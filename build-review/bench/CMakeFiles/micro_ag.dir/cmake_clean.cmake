file(REMOVE_RECURSE
  "CMakeFiles/micro_ag.dir/micro_ag.cpp.o"
  "CMakeFiles/micro_ag.dir/micro_ag.cpp.o.d"
  "micro_ag"
  "micro_ag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
