# Empty compiler generated dependencies file for fig6b_api_usage.
# This may be replaced when dependencies are built.
