file(REMOVE_RECURSE
  "CMakeFiles/fig6b_api_usage.dir/fig6b_api_usage.cpp.o"
  "CMakeFiles/fig6b_api_usage.dir/fig6b_api_usage.cpp.o.d"
  "fig6b_api_usage"
  "fig6b_api_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_api_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
