file(REMOVE_RECURSE
  "CMakeFiles/micro_eventloop.dir/micro_eventloop.cpp.o"
  "CMakeFiles/micro_eventloop.dir/micro_eventloop.cpp.o.d"
  "micro_eventloop"
  "micro_eventloop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_eventloop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
