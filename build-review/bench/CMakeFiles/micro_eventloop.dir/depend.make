# Empty dependencies file for micro_eventloop.
# This may be replaced when dependencies are built.
