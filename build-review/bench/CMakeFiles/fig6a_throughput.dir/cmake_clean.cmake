file(REMOVE_RECURSE
  "CMakeFiles/fig6a_throughput.dir/fig6a_throughput.cpp.o"
  "CMakeFiles/fig6a_throughput.dir/fig6a_throughput.cpp.o.d"
  "fig6a_throughput"
  "fig6a_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
