# Empty dependencies file for fig6a_throughput.
# This may be replaced when dependencies are built.
