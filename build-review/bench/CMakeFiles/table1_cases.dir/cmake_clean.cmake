file(REMOVE_RECURSE
  "CMakeFiles/table1_cases.dir/table1_cases.cpp.o"
  "CMakeFiles/table1_cases.dir/table1_cases.cpp.o.d"
  "table1_cases"
  "table1_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
