# Empty compiler generated dependencies file for table1_cases.
# This may be replaced when dependencies are built.
