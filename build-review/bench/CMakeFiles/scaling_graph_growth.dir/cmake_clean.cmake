file(REMOVE_RECURSE
  "CMakeFiles/scaling_graph_growth.dir/scaling_graph_growth.cpp.o"
  "CMakeFiles/scaling_graph_growth.dir/scaling_graph_growth.cpp.o.d"
  "scaling_graph_growth"
  "scaling_graph_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_graph_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
