# Empty compiler generated dependencies file for scaling_graph_growth.
# This may be replaced when dependencies are built.
