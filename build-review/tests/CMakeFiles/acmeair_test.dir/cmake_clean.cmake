file(REMOVE_RECURSE
  "CMakeFiles/acmeair_test.dir/AcmeAirTest.cpp.o"
  "CMakeFiles/acmeair_test.dir/AcmeAirTest.cpp.o.d"
  "acmeair_test"
  "acmeair_test.pdb"
  "acmeair_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acmeair_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
