# Empty dependencies file for acmeair_test.
# This may be replaced when dependencies are built.
