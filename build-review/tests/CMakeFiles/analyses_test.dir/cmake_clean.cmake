file(REMOVE_RECURSE
  "CMakeFiles/analyses_test.dir/AnalysesTest.cpp.o"
  "CMakeFiles/analyses_test.dir/AnalysesTest.cpp.o.d"
  "analyses_test"
  "analyses_test.pdb"
  "analyses_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyses_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
