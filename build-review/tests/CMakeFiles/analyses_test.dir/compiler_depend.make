# Empty compiler generated dependencies file for analyses_test.
# This may be replaced when dependencies are built.
