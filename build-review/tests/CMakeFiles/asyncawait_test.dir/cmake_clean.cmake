file(REMOVE_RECURSE
  "CMakeFiles/asyncawait_test.dir/AsyncAwaitTest.cpp.o"
  "CMakeFiles/asyncawait_test.dir/AsyncAwaitTest.cpp.o.d"
  "asyncawait_test"
  "asyncawait_test.pdb"
  "asyncawait_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncawait_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
