# Empty compiler generated dependencies file for asyncawait_test.
# This may be replaced when dependencies are built.
