# Empty dependencies file for promise_test.
# This may be replaced when dependencies are built.
