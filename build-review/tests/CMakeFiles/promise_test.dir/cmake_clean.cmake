file(REMOVE_RECURSE
  "CMakeFiles/promise_test.dir/PromiseTest.cpp.o"
  "CMakeFiles/promise_test.dir/PromiseTest.cpp.o.d"
  "promise_test"
  "promise_test.pdb"
  "promise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
