file(REMOVE_RECURSE
  "CMakeFiles/cases_test.dir/CasesTest.cpp.o"
  "CMakeFiles/cases_test.dir/CasesTest.cpp.o.d"
  "cases_test"
  "cases_test.pdb"
  "cases_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
