# Empty dependencies file for jsrt_smoke_test.
# This may be replaced when dependencies are built.
