file(REMOVE_RECURSE
  "CMakeFiles/jsrt_smoke_test.dir/JsrtSmokeTest.cpp.o"
  "CMakeFiles/jsrt_smoke_test.dir/JsrtSmokeTest.cpp.o.d"
  "jsrt_smoke_test"
  "jsrt_smoke_test.pdb"
  "jsrt_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsrt_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
