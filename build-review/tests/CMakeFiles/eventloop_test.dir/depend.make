# Empty dependencies file for eventloop_test.
# This may be replaced when dependencies are built.
