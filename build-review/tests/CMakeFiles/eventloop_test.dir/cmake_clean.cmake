file(REMOVE_RECURSE
  "CMakeFiles/eventloop_test.dir/EventLoopTest.cpp.o"
  "CMakeFiles/eventloop_test.dir/EventLoopTest.cpp.o.d"
  "eventloop_test"
  "eventloop_test.pdb"
  "eventloop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eventloop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
