# Empty compiler generated dependencies file for acmeair_routes_test.
# This may be replaced when dependencies are built.
