file(REMOVE_RECURSE
  "CMakeFiles/acmeair_routes_test.dir/AcmeAirRoutesTest.cpp.o"
  "CMakeFiles/acmeair_routes_test.dir/AcmeAirRoutesTest.cpp.o.d"
  "acmeair_routes_test"
  "acmeair_routes_test.pdb"
  "acmeair_routes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acmeair_routes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
