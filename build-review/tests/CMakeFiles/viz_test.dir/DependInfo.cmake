
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/VizTest.cpp" "tests/CMakeFiles/viz_test.dir/VizTest.cpp.o" "gcc" "tests/CMakeFiles/viz_test.dir/VizTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/cases/CMakeFiles/asyncg_cases.dir/DependInfo.cmake"
  "/root/repo/build-review/src/viz/CMakeFiles/asyncg_viz.dir/DependInfo.cmake"
  "/root/repo/build-review/src/detect/CMakeFiles/asyncg_detect.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ag/CMakeFiles/asyncg_ag.dir/DependInfo.cmake"
  "/root/repo/build-review/src/node/CMakeFiles/asyncg_node.dir/DependInfo.cmake"
  "/root/repo/build-review/src/jsrt/CMakeFiles/asyncg_jsrt.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/asyncg_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/instr/CMakeFiles/asyncg_instr.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/asyncg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
