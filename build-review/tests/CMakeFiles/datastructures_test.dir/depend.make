# Empty dependencies file for datastructures_test.
# This may be replaced when dependencies are built.
