file(REMOVE_RECURSE
  "CMakeFiles/datastructures_test.dir/DataStructuresTest.cpp.o"
  "CMakeFiles/datastructures_test.dir/DataStructuresTest.cpp.o.d"
  "datastructures_test"
  "datastructures_test.pdb"
  "datastructures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datastructures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
