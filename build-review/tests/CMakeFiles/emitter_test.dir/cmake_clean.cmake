file(REMOVE_RECURSE
  "CMakeFiles/emitter_test.dir/EmitterTest.cpp.o"
  "CMakeFiles/emitter_test.dir/EmitterTest.cpp.o.d"
  "emitter_test"
  "emitter_test.pdb"
  "emitter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emitter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
