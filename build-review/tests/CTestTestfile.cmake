# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/jsrt_smoke_test[1]_include.cmake")
include("/root/repo/build-review/tests/cases_test[1]_include.cmake")
include("/root/repo/build-review/tests/acmeair_test[1]_include.cmake")
include("/root/repo/build-review/tests/support_test[1]_include.cmake")
include("/root/repo/build-review/tests/sim_test[1]_include.cmake")
include("/root/repo/build-review/tests/value_test[1]_include.cmake")
include("/root/repo/build-review/tests/eventloop_test[1]_include.cmake")
include("/root/repo/build-review/tests/promise_test[1]_include.cmake")
include("/root/repo/build-review/tests/emitter_test[1]_include.cmake")
include("/root/repo/build-review/tests/asyncawait_test[1]_include.cmake")
include("/root/repo/build-review/tests/node_test[1]_include.cmake")
include("/root/repo/build-review/tests/builder_test[1]_include.cmake")
include("/root/repo/build-review/tests/detector_test[1]_include.cmake")
include("/root/repo/build-review/tests/property_test[1]_include.cmake")
include("/root/repo/build-review/tests/viz_test[1]_include.cmake")
include("/root/repo/build-review/tests/analyses_test[1]_include.cmake")
include("/root/repo/build-review/tests/race_detector_test[1]_include.cmake")
include("/root/repo/build-review/tests/acmeair_routes_test[1]_include.cmake")
include("/root/repo/build-review/tests/datastructures_test[1]_include.cmake")
include("/root/repo/build-review/tests/stress_test[1]_include.cmake")
include("/root/repo/build-review/tests/paper_examples_test[1]_include.cmake")
