# Empty compiler generated dependencies file for asyncg_cli.
# This may be replaced when dependencies are built.
