file(REMOVE_RECURSE
  "CMakeFiles/asyncg_cli.dir/asyncg_cli.cpp.o"
  "CMakeFiles/asyncg_cli.dir/asyncg_cli.cpp.o.d"
  "asyncg_cli"
  "asyncg_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncg_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
