//===- TraceCodec.cpp - Hook events <-> binary trace records ------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "instr/TraceCodec.h"

#include "jsrt/Ids.h"

#include <cstring>
#include <memory>

using namespace asyncg;
using namespace asyncg::instr;
using namespace asyncg::trace;

static uint64_t doubleBits(double D) {
  uint64_t U;
  std::memcpy(&U, &D, sizeof(U));
  return U;
}

static double bitsDouble(uint64_t U) {
  double D;
  std::memcpy(&D, &U, sizeof(D));
  return D;
}

//===----------------------------------------------------------------------===//
// TraceEncoder
//===----------------------------------------------------------------------===//

void TraceEncoder::defineFunc(const jsrt::Function &F,
                              std::vector<TraceRecord> &Out) {
  jsrt::FunctionId Id = F.id();
  // One encoder serves one shard, so the seen-set is indexed by the dense
  // shard-local id; records still carry the full (shard-packed) id.
  uint64_t Local = jsrt::idLocal(Id);
  if (Local < SeenFunc.size() && SeenFunc[Local])
    return;
  if (Local >= SeenFunc.size())
    SeenFunc.resize(Local + 1, false);
  SeenFunc[Local] = true;

  TraceRecord R;
  R.Op = static_cast<uint8_t>(TraceOp::FuncDef);
  R.A8 = F.isBuiltin() ? 1 : 0;
  R.C32 = Symbol(F.name()).id();
  R.D64 = Id;
  R.F64 = packLoc(F.loc().fileSymbol().id(), F.loc().line());
  Out.push_back(R);
}

void TraceEncoder::shardInfo(uint32_t Shard, std::vector<TraceRecord> &Out) {
  TraceRecord R;
  R.Op = static_cast<uint8_t>(TraceOp::ShardInfo);
  R.C32 = Shard;
  Out.push_back(R);
}

void TraceEncoder::functionEnter(const FunctionEnterEvent &E,
                                 std::vector<TraceRecord> &Out) {
  defineFunc(E.F, Out);

  const jsrt::DispatchInfo &D = E.Dispatch;
  if (!D.Trigger.isNone()) {
    TraceRecord T;
    T.Op = static_cast<uint8_t>(TraceOp::EnterTrigger);
    T.A8 = static_cast<uint8_t>(D.Trigger.K);
    T.B16 = D.Trigger.IsReject ? 1 : 0;
    T.C32 = D.Trigger.Event.id();
    T.D64 = D.Trigger.Id;
    T.E64 = D.Trigger.Obj;
    Out.push_back(T);
  }

  TraceRecord R;
  R.Op = static_cast<uint8_t>(TraceOp::Enter);
  R.A8 = static_cast<uint8_t>(D.Phase);
  R.B16 = D.TopLevel ? 1 : 0;
  R.C32 = static_cast<uint32_t>(D.Api);
  R.D64 = E.F.id();
  R.E64 = D.Sched;
  R.F64 = D.TickSeq;
  Out.push_back(R);
}

void TraceEncoder::functionExit(const FunctionExitEvent &E,
                                std::vector<TraceRecord> &Out) {
  TraceRecord R;
  R.Op = static_cast<uint8_t>(TraceOp::Exit);
  R.D64 = E.F.id();
  Out.push_back(R);
}

void TraceEncoder::apiCall(const ApiCallEvent &E,
                           std::vector<TraceRecord> &Out) {
  TraceRecord Base;
  Base.Op = static_cast<uint8_t>(TraceOp::ApiBase);
  Base.A8 = static_cast<uint8_t>(E.Api);
  uint16_t Flags = 0;
  if (E.Once)
    Flags |= 1;
  if (E.HasRejectHandler)
    Flags |= 2;
  if (E.TriggerHadEffect)
    Flags |= 4;
  if (E.Internal)
    Flags |= 8;
  Flags |= static_cast<uint16_t>(static_cast<uint16_t>(E.TargetPhase) << 8);
  Base.B16 = Flags;
  Base.C32 = E.EventName.id();
  Base.D64 = E.Sched;
  Base.E64 = E.BoundObj;
  Base.F64 = E.Trigger;
  Out.push_back(Base);

  TraceRecord Ext;
  Ext.Op = static_cast<uint8_t>(TraceOp::ApiExt);
  Ext.A8 = static_cast<uint8_t>(E.Callbacks.size());
  Ext.B16 = static_cast<uint16_t>(E.InputObjs.size());
  Ext.C32 = E.Loc.line();
  Ext.D64 = doubleBits(E.TimeoutMs);
  Ext.E64 = E.DerivedObj;
  Ext.F64 = packLoc(E.Loc.fileSymbol().id(), 0);
  Out.push_back(Ext);

  for (size_t I = 0; I < E.Callbacks.size(); I += 3) {
    TraceRecord R;
    R.Op = static_cast<uint8_t>(TraceOp::ApiFuncs);
    uint64_t Ids[3] = {0, 0, 0};
    size_t N = 0;
    for (; N != 3 && I + N < E.Callbacks.size(); ++N)
      Ids[N] = E.Callbacks[I + N].id();
    R.A8 = static_cast<uint8_t>(N);
    R.D64 = Ids[0];
    R.E64 = Ids[1];
    R.F64 = Ids[2];
    Out.push_back(R);
  }

  for (size_t I = 0; I < E.InputObjs.size(); I += 3) {
    TraceRecord R;
    R.Op = static_cast<uint8_t>(TraceOp::ApiInputs);
    uint64_t Ids[3] = {0, 0, 0};
    size_t N = 0;
    for (; N != 3 && I + N < E.InputObjs.size(); ++N)
      Ids[N] = E.InputObjs[I + N];
    R.A8 = static_cast<uint8_t>(N);
    R.D64 = Ids[0];
    R.E64 = Ids[1];
    R.F64 = Ids[2];
    Out.push_back(R);
  }
}

void TraceEncoder::objectCreate(const ObjectCreateEvent &E,
                                std::vector<TraceRecord> &Out) {
  TraceRecord R;
  R.Op = static_cast<uint8_t>(TraceOp::ObjCreate);
  R.A8 = static_cast<uint8_t>((E.IsPromise ? 1 : 0) | (E.Internal ? 2 : 0));
  R.B16 = static_cast<uint16_t>(E.Relation);
  R.C32 = E.Name.id();
  R.D64 = E.Obj;
  R.E64 = E.Parent;
  R.F64 = packLoc(E.Loc.fileSymbol().id(), E.Loc.line());
  Out.push_back(R);
}

void TraceEncoder::reactionResult(const ReactionResultEvent &E,
                                  std::vector<TraceRecord> &Out) {
  TraceRecord R;
  R.Op = static_cast<uint8_t>(TraceOp::ReactionResult);
  R.A8 = static_cast<uint8_t>((E.ReturnedUndefined ? 1 : 0) |
                              (E.Threw ? 2 : 0));
  R.D64 = E.Source;
  R.E64 = E.Derived;
  R.F64 = E.Sched;
  Out.push_back(R);
}

void TraceEncoder::promiseLink(const PromiseLinkEvent &E,
                               std::vector<TraceRecord> &Out) {
  TraceRecord R;
  R.Op = static_cast<uint8_t>(TraceOp::PromiseLink);
  R.D64 = E.Returned;
  R.E64 = E.Derived;
  Out.push_back(R);
}

void TraceEncoder::objectRelease(const ObjectReleaseEvent &E,
                                 std::vector<TraceRecord> &Out) {
  TraceRecord R;
  R.Op = static_cast<uint8_t>(TraceOp::ObjectRelease);
  R.A8 = E.IsPromise ? 1 : 0;
  R.D64 = E.Obj;
  Out.push_back(R);
}

void TraceEncoder::loopEnd(const LoopEndEvent &E,
                           std::vector<TraceRecord> &Out) {
  TraceRecord R;
  R.Op = static_cast<uint8_t>(TraceOp::LoopEnd);
  R.A8 = E.TickBudgetExhausted ? 1 : 0;
  R.D64 = E.Ticks;
  Out.push_back(R);
}

//===----------------------------------------------------------------------===//
// TraceDecoder
//===----------------------------------------------------------------------===//

TraceDecoder::TraceDecoder() { Funcs.reserve(256); }

Symbol TraceDecoder::sym(uint32_t Raw) const {
  if (Remap.empty())
    return Symbol::fromId(Raw);
  if (Raw >= Remap.size())
    return Symbol();
  return Symbol::fromId(Remap[Raw]);
}

SourceLocation TraceDecoder::loc(uint64_t Packed) const {
  return SourceLocation(sym(packedLocFile(Packed)), packedLocLine(Packed));
}

const jsrt::Function &TraceDecoder::funcFor(jsrt::FunctionId Id) {
  if (BatchOn) {
    FnMemoEntry &E = FnMemo[Id % FnMemoSize];
    if (E.F && E.Id == Id)
      return *E.F;
    if (jsrt::Function *F = Funcs.find(Id)) {
      E.Id = Id;
      E.F = F;
      return *F;
    }
  } else if (jsrt::Function *F = Funcs.find(Id)) {
    return *F;
  }
  auto Data = std::make_shared<jsrt::FunctionData>();
  Data->Id = Id;
  jsrt::Function &Slot = Funcs[Id];
  Slot = jsrt::Function(std::move(Data));
  // The insertion may have rehashed Funcs; every memoized pointer is
  // suspect now.
  for (FnMemoEntry &E : FnMemo)
    E = FnMemoEntry();
  return Slot;
}

void TraceDecoder::decode(const TraceRecord *Records, size_t N,
                          AnalysisBase &Sink) {
  for (size_t I = 0; I != N; ++I)
    feed(Records[I], Sink);
}

void TraceDecoder::decodeBatch(const TraceRecord *Records, size_t N,
                               AnalysisBase &Sink) {
  beginBatch();
  for (size_t I = 0; I != N; ++I)
    feed(Records[I], Sink);
  endBatch();
}

void TraceDecoder::finishApiIfReady(AnalysisBase &Sink) {
  if (!ApiOpen || ApiFuncsLeft != 0 || ApiInputsLeft != 0)
    return;
  ApiOpen = false;
  Api.Loc = ApiLoc;
  Sink.onApiCall(Api);
}

void TraceDecoder::feed(const TraceRecord &R, AnalysisBase &Sink) {
  // An ApiBase..ApiInputs sequence interrupted by any other opcode is a
  // malformed trace; drop the partial event and keep going.
  TraceOp Op = static_cast<TraceOp>(R.Op);
  if (ApiOpen && !(Op == TraceOp::ApiExt || Op == TraceOp::ApiFuncs ||
                   Op == TraceOp::ApiInputs)) {
    ApiOpen = false;
    ++BadRecords;
  }

  switch (Op) {
  case TraceOp::FuncDef: {
    const jsrt::Function &F = funcFor(R.D64);
    // Fill (or refresh) the identity: placeholders created by earlier
    // ApiFuncs references gain their name/location here.
    F.ref()->Name = std::string(sym(R.C32).view());
    F.ref()->Loc = loc(R.F64);
    F.ref()->IsBuiltin = R.A8 != 0;
    return;
  }

  case TraceOp::EnterTrigger: {
    PendingTrigger.K = static_cast<jsrt::TriggerInfo::Kind>(R.A8);
    PendingTrigger.IsReject = (R.B16 & 1) != 0;
    PendingTrigger.Event = sym(R.C32);
    PendingTrigger.Id = R.D64;
    PendingTrigger.Obj = R.E64;
    return;
  }

  case TraceOp::Enter: {
    static const jsrt::CallArgs EmptyArgs;
    jsrt::DispatchInfo D;
    D.Phase = static_cast<jsrt::PhaseKind>(R.A8);
    D.TopLevel = (R.B16 & 1) != 0;
    D.Api = static_cast<jsrt::ApiKind>(R.C32);
    D.Sched = R.E64;
    D.TickSeq = R.F64;
    D.Trigger = PendingTrigger;
    PendingTrigger = jsrt::TriggerInfo();
    jsrt::Function F = funcFor(R.D64);
    FunctionEnterEvent Ev{F, EmptyArgs, D};
    Sink.onFunctionEnter(Ev);
    return;
  }

  case TraceOp::Exit: {
    static const jsrt::Completion NormalResult;
    static const jsrt::DispatchInfo NoDispatch;
    jsrt::Function F = funcFor(R.D64);
    FunctionExitEvent Ev{F, NormalResult, NoDispatch};
    Sink.onFunctionExit(Ev);
    return;
  }

  case TraceOp::ApiBase: {
    Api.Api = static_cast<jsrt::ApiKind>(R.A8);
    Api.Once = (R.B16 & 1) != 0;
    Api.HasRejectHandler = (R.B16 & 2) != 0;
    Api.TriggerHadEffect = (R.B16 & 4) != 0;
    Api.Internal = (R.B16 & 8) != 0;
    Api.TargetPhase = static_cast<jsrt::PhaseKind>((R.B16 >> 8) & 0xf);
    Api.EventName = sym(R.C32);
    Api.Sched = R.D64;
    Api.BoundObj = R.E64;
    Api.Trigger = R.F64;
    Api.Callbacks.clear();
    Api.InputObjs.clear();
    ApiFuncsLeft = 0;
    ApiInputsLeft = 0;
    ApiOpen = true;
    return;
  }

  case TraceOp::ApiExt: {
    if (!ApiOpen) {
      ++BadRecords;
      return;
    }
    ApiFuncsLeft = R.A8;
    ApiInputsLeft = R.B16;
    ApiLoc = SourceLocation(sym(packedLocFile(R.F64)), R.C32);
    Api.TimeoutMs = bitsDouble(R.D64);
    Api.DerivedObj = R.E64;
    finishApiIfReady(Sink);
    return;
  }

  case TraceOp::ApiFuncs: {
    if (!ApiOpen) {
      ++BadRecords;
      return;
    }
    uint64_t Ids[3] = {R.D64, R.E64, R.F64};
    for (unsigned I = 0; I != R.A8 && ApiFuncsLeft != 0; ++I) {
      Api.Callbacks.push_back(funcFor(Ids[I]));
      --ApiFuncsLeft;
    }
    finishApiIfReady(Sink);
    return;
  }

  case TraceOp::ApiInputs: {
    if (!ApiOpen) {
      ++BadRecords;
      return;
    }
    uint64_t Ids[3] = {R.D64, R.E64, R.F64};
    for (unsigned I = 0; I != R.A8 && ApiInputsLeft != 0; ++I) {
      Api.InputObjs.push_back(Ids[I]);
      --ApiInputsLeft;
    }
    finishApiIfReady(Sink);
    return;
  }

  case TraceOp::ObjCreate: {
    ObjectCreateEvent Ev;
    Ev.IsPromise = (R.A8 & 1) != 0;
    Ev.Internal = (R.A8 & 2) != 0;
    Ev.Relation = static_cast<jsrt::ApiKind>(R.B16);
    Ev.Name = sym(R.C32);
    Ev.Obj = R.D64;
    Ev.Parent = R.E64;
    Ev.Loc = loc(R.F64);
    Sink.onObjectCreate(Ev);
    return;
  }

  case TraceOp::ReactionResult: {
    ReactionResultEvent Ev;
    Ev.ReturnedUndefined = (R.A8 & 1) != 0;
    Ev.Threw = (R.A8 & 2) != 0;
    Ev.Source = R.D64;
    Ev.Derived = R.E64;
    Ev.Sched = R.F64;
    Sink.onReactionResult(Ev);
    return;
  }

  case TraceOp::PromiseLink: {
    PromiseLinkEvent Ev;
    Ev.Returned = R.D64;
    Ev.Derived = R.E64;
    Sink.onPromiseLink(Ev);
    return;
  }

  case TraceOp::ObjectRelease: {
    ObjectReleaseEvent Ev;
    Ev.IsPromise = (R.A8 & 1) != 0;
    Ev.Obj = R.D64;
    Sink.onObjectRelease(Ev);
    return;
  }

  case TraceOp::LoopEnd: {
    LoopEndEvent Ev;
    Ev.TickBudgetExhausted = (R.A8 & 1) != 0;
    Ev.Ticks = R.D64;
    Sink.onLoopEnd(Ev);
    return;
  }

  case TraceOp::ShardInfo: {
    // Stream metadata, not an event: remember which shard recorded this
    // stream so consumers (merge layers, tools) can ask.
    ShardId = R.C32;
    return;
  }
  }
  ++BadRecords;
}

//===----------------------------------------------------------------------===//
// TraceRecorder + replay
//===----------------------------------------------------------------------===//

bool TraceRecorder::open(const std::string &Path, uint32_t Shard,
                         uint32_t Version) {
  if (Shard != 0 && Version < 3)
    return false; // ShardInfo is a v3 opcode
  if (!Writer.open(Path, Version))
    return false;
  Scratch.clear();
  if (Shard != 0) {
    Encoder.shardInfo(Shard, Scratch);
    flushScratch();
  }
  return true;
}

bool TraceRecorder::finalize() {
  flushScratch();
  return Writer.finalize();
}

void TraceRecorder::flushScratch() {
  Writer.append(Scratch.data(), Scratch.size());
  Scratch.clear();
}

void TraceRecorder::onFunctionEnter(const FunctionEnterEvent &E) {
  Encoder.functionEnter(E, Scratch);
  flushScratch();
}
void TraceRecorder::onFunctionExit(const FunctionExitEvent &E) {
  Encoder.functionExit(E, Scratch);
  flushScratch();
}
void TraceRecorder::onApiCall(const ApiCallEvent &E) {
  Encoder.apiCall(E, Scratch);
  flushScratch();
}
void TraceRecorder::onObjectCreate(const ObjectCreateEvent &E) {
  Encoder.objectCreate(E, Scratch);
  flushScratch();
}
void TraceRecorder::onReactionResult(const ReactionResultEvent &E) {
  Encoder.reactionResult(E, Scratch);
  flushScratch();
}
void TraceRecorder::onPromiseLink(const PromiseLinkEvent &E) {
  Encoder.promiseLink(E, Scratch);
  flushScratch();
}
void TraceRecorder::onObjectRelease(const ObjectReleaseEvent &E) {
  Encoder.objectRelease(E, Scratch);
  flushScratch();
}
void TraceRecorder::onLoopEnd(const LoopEndEvent &E) {
  Encoder.loopEnd(E, Scratch);
  flushScratch();
}

namespace {

/// Replays a torn/truncated v4 image through the checkpoint-recovery
/// scanner: whole frames only, symbol remap grown from the interleaved
/// checkpoints. Shared by both transports' fallback paths.
bool replayRecovered(const uint8_t *Bytes, uint64_t Size, AnalysisBase &Sink,
                     std::string *Err, ReplayStats *Stats) {
  TraceDecoder Decoder;
  std::vector<SymbolId> Remap;
  size_t Mapped = 0;
  trace::TraceRecoveryInfo Info;
  bool Ok = trace::recoverV4Prefix(
      Bytes, Size, Remap,
      [&](const trace::TraceRecord *R, size_t N) {
        if (Remap.size() != Mapped) {
          Decoder.setSymbolRemap(Remap);
          Mapped = Remap.size();
        }
        for (size_t I = 0; I != N; ++I)
          Decoder.decodeOne(R[I], Sink);
        // Frame boundary: the retirement safe point, as in normal replay.
        Sink.onBatchBoundary();
      },
      &Info, Err);
  if (Ok && Stats) {
    Stats->Records = Info.Records;
    Stats->RecordBytes = Info.RecordBytes;
    Stats->BadRecords = Decoder.badRecords();
    Stats->Version = trace::TraceVersion;
    Stats->Recovered = true;
    Stats->DroppedTailBytes = Info.DroppedBytes;
  }
  return Ok;
}

bool slurpFile(const std::string &Path, std::vector<uint8_t> &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  bool Ok = std::fseek(F, 0, SEEK_END) == 0;
  long Size = Ok ? std::ftell(F) : -1;
  Ok = Ok && Size >= 0 && std::fseek(F, 0, SEEK_SET) == 0;
  if (Ok) {
    Out.resize(static_cast<size_t>(Size));
    Ok = Out.empty() ||
         std::fread(Out.data(), 1, Out.size(), F) == Out.size();
  }
  std::fclose(F);
  return Ok;
}

bool replayStdio(const std::string &Path, AnalysisBase &Sink,
                 std::string *Err, ReplayStats *Stats) {
  TraceFileReader Reader;
  std::string OpenErr;
  if (!Reader.open(Path, &OpenErr)) {
    // Strict open refused the file — a recording cut off by a crash never
    // got its symbol section or header counts. Salvage the clean
    // frame-aligned prefix from the checkpoint chain; if the image is not
    // recoverable v4 either, report the original failure.
    std::vector<uint8_t> Bytes;
    if (slurpFile(Path, Bytes) &&
        replayRecovered(Bytes.data(), Bytes.size(), Sink, nullptr, Stats))
      return true;
    if (Err)
      *Err = OpenErr;
    return false;
  }
  TraceDecoder Decoder;
  Decoder.setSymbolRemap(Reader.symbolRemap());
  uint64_t Records = 0;
  TraceRecord Buf[1024];
  while (size_t N = Reader.read(Buf, 1024)) {
    Decoder.decode(Buf, N, Sink);
    Records += N;
    // Chunk boundary: lets a retiring builder reclaim quiesced regions so
    // replaying a long trace needs only O(live-window) memory too.
    Sink.onBatchBoundary();
  }
  if (Stats) {
    Stats->Records = Records;
    Stats->RecordBytes = Reader.version() <= trace::TraceLastRawVersion
                             ? Reader.recordCount() * sizeof(TraceRecord)
                             : 0; // see mmap path for exact v4 bytes
    Stats->BadRecords = Decoder.badRecords();
    Stats->Version = Reader.version();
  }
  if (!Reader.error().empty()) {
    if (Err)
      *Err = Reader.error();
    return false;
  }
  return true;
}

bool replayMmap(const std::string &Path, AnalysisBase &Sink,
                std::string *Err, ReplayStats *Stats) {
  TraceMmapReader Map;
  std::string OpenErr;
  if (!Map.open(Path, &OpenErr)) {
    if (OpenErr != "mmap unavailable on this platform" &&
        OpenErr != "cannot open trace file" &&
        OpenErr != "cannot mmap trace file") {
      // Validation (not mmap itself) failed: try torn-tail recovery over a
      // raw mapping of the same file.
      TraceMmapReader Raw;
      if (Raw.openRaw(Path, nullptr) &&
          replayRecovered(Raw.data(), Raw.size(), Sink, nullptr, Stats))
        return true;
    }
    if (Err)
      *Err = OpenErr;
    return false;
  }
  TraceDecoder Decoder;
  Decoder.setSymbolRemap(Map.symbolRemap());
  const TraceFileHeader &H = Map.header();
  uint64_t Records = 0;
  bool Ok = true;

  if (H.Version <= trace::TraceLastRawVersion) {
    // Raw rows: feed batches straight out of the mapping (the file layout
    // is the in-memory layout).
    const auto *R = reinterpret_cast<const TraceRecord *>(Map.recordData());
    uint64_t Left = H.RecordCount;
    while (Left != 0) {
      size_t N = Left < 4096 ? static_cast<size_t>(Left) : 4096;
      Decoder.decode(R, N, Sink);
      R += N;
      Left -= N;
      Records += N;
      Sink.onBatchBoundary();
    }
  } else {
    // v4 frames: decode record-at-a-time from the mapping into the event
    // decoder — no intermediate record buffer.
    const uint8_t *P = Map.recordData();
    uint64_t Avail = Map.recordByteSize();
    while (Records < H.RecordCount) {
      if (Avail == 0) {
        Ok = false;
        if (Err)
          *Err = "trace file truncated: missing frames";
        break;
      }
      size_t Skip = 0;
      if (trace::skipSymFrame(P, static_cast<size_t>(Avail), Skip)) {
        // Symbol checkpoint: superseded by the finalized symbol section.
        P += Skip;
        Avail -= Skip;
        continue;
      }
      size_t Consumed = 0;
      Ok = trace::decodeV4Frame(
          P, static_cast<size_t>(Avail), Consumed,
          [&](const TraceRecord &R) {
            Decoder.decodeOne(R, Sink);
            ++Records;
          },
          Err);
      if (!Ok)
        break;
      P += Consumed;
      Avail -= Consumed;
      // Frame boundary: the retirement safe point of this transport.
      Sink.onBatchBoundary();
    }
  }

  if (Stats) {
    Stats->Records = Records;
    Stats->RecordBytes = Map.recordByteSize();
    Stats->BadRecords = Decoder.badRecords();
    Stats->Version = H.Version;
  }
  return Ok;
}

} // namespace

bool instr::replayTrace(const std::string &Path, AnalysisBase &Sink,
                        std::string *Err, ReplayTransport Transport,
                        ReplayStats *Stats) {
  if (Transport == ReplayTransport::Stdio)
    return replayStdio(Path, Sink, Err, Stats);
  if (Transport == ReplayTransport::Mmap)
    return replayMmap(Path, Sink, Err, Stats);
  // Auto: v4 gets the zero-copy path; raw versions keep their historical
  // stdio path (and any mmap setup failure falls back to stdio). Peek at
  // the header alone to pick — full validation happens in the chosen path.
  {
    TraceFileHeader H = {};
    std::FILE *F = std::fopen(Path.c_str(), "rb");
    bool GotHeader = F && std::fread(&H, sizeof(H), 1, F) == 1;
    if (F)
      std::fclose(F);
    if (!GotHeader ||
        std::memcmp(H.Magic, trace::TraceMagic, sizeof(H.Magic)) != 0 ||
        H.Version <= trace::TraceLastRawVersion)
      return replayStdio(Path, Sink, Err, Stats);
  }
  std::string MmapErr;
  if (replayMmap(Path, Sink, &MmapErr, Stats))
    return true;
  if (MmapErr == "mmap unavailable on this platform" ||
      MmapErr == "cannot mmap trace file")
    return replayStdio(Path, Sink, Err, Stats);
  if (Err)
    *Err = MmapErr;
  return false;
}
