//===- Hooks.cpp - Instrumentation hook interface ---------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "instr/Hooks.h"

using namespace asyncg;
using namespace asyncg::instr;

// Out-of-line virtual method anchor.
AnalysisBase::~AnalysisBase() = default;

thread_local uint64_t instr::detail::ConstructedEvents = 0;

uint64_t instr::constructedEventCount() {
  return detail::ConstructedEvents;
}

void instr::resetConstructedEventCount() {
  detail::ConstructedEvents = 0;
}
