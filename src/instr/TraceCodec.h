//===- TraceCodec.h - Hook events <-> binary trace records ------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates between the instrumentation hook events (instr/Hooks.h) and
/// the fixed-size binary records of support/TraceFormat.h:
///
///  - TraceEncoder runs on the event-loop thread. It turns each event into
///    a short span of records in a caller-owned scratch vector (steady
///    state: no allocation) and emits one FuncDef per function the first
///    time it appears, so consumers can rebuild Function identities.
///  - TraceDecoder runs wherever the records are consumed — the async
///    pipeline's builder thread or an offline replay — and fires the
///    reconstructed events into any AnalysisBase. Function handles are
///    materialized from FuncDef records (name, location, builtin flag; the
///    body is empty, which no analysis invokes).
///  - TraceRecorder is an AnalysisBase that encodes straight into an
///    `.agtrace` file: attach it to a runtime to record a workload, then
///    replayTrace() the file into a fresh AsyncGBuilder at zero loop cost.
///
/// PropertyAccessEvent and UncaughtErrorEvent are not encoded (they carry
/// borrowed Values / uninterned strings and feed only the synchronous race
/// analysis); everything the Async Graph builder consumes round-trips.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_INSTR_TRACECODEC_H
#define ASYNCG_INSTR_TRACECODEC_H

#include "instr/Hooks.h"
#include "support/FlatMap.h"
#include "support/TraceFormat.h"

#include <string>
#include <vector>

namespace asyncg {
namespace instr {

//===----------------------------------------------------------------------===//
// TraceEncoder
//===----------------------------------------------------------------------===//

/// Encodes hook events into trace records. Append-only into a caller-owned
/// vector so the caller controls batching (ring push vs file write).
class TraceEncoder {
public:
  /// \name Event encoders: append the event's records to \p Out.
  /// @{
  void functionEnter(const FunctionEnterEvent &E,
                     std::vector<trace::TraceRecord> &Out);
  void functionExit(const FunctionExitEvent &E,
                    std::vector<trace::TraceRecord> &Out);
  void apiCall(const ApiCallEvent &E, std::vector<trace::TraceRecord> &Out);
  void objectCreate(const ObjectCreateEvent &E,
                    std::vector<trace::TraceRecord> &Out);
  void reactionResult(const ReactionResultEvent &E,
                      std::vector<trace::TraceRecord> &Out);
  void promiseLink(const PromiseLinkEvent &E,
                   std::vector<trace::TraceRecord> &Out);
  void objectRelease(const ObjectReleaseEvent &E,
                     std::vector<trace::TraceRecord> &Out);
  void loopEnd(const LoopEndEvent &E, std::vector<trace::TraceRecord> &Out);
  /// @}

  /// Appends a v3 ShardInfo record naming the recording loop's shard.
  /// Cluster streams emit it first; callers skip it for shard 0 so
  /// single-loop traces stay byte-identical to v2.
  void shardInfo(uint32_t Shard, std::vector<trace::TraceRecord> &Out);

private:
  /// Emits a FuncDef for \p F if this encoder hasn't yet.
  void defineFunc(const jsrt::Function &F,
                  std::vector<trace::TraceRecord> &Out);

  /// Function ids already defined, indexed by the shard-local part of the
  /// id (an encoder serves exactly one shard, and local ids are small and
  /// sequential; the full id carries the shard in its top bits).
  std::vector<bool> SeenFunc;
};

//===----------------------------------------------------------------------===//
// TraceDecoder
//===----------------------------------------------------------------------===//

/// Decodes trace records and fires the reconstructed events into a sink
/// analysis. Single-threaded; feed records in encode order.
class TraceDecoder {
public:
  TraceDecoder();

  /// Installs the old-id -> new-id symbol mapping of a cross-process trace
  /// (TraceFileReader::symbolRemap()). Without one, ids are taken as-is
  /// (in-process ring transport).
  void setSymbolRemap(std::vector<SymbolId> Remap) {
    this->Remap = std::move(Remap);
  }

  /// Decodes \p N records, invoking \p Sink's hooks.
  void decode(const trace::TraceRecord *Records, size_t N,
              AnalysisBase &Sink);

  /// Decodes a single record (the v4 mmap replay path feeds records
  /// straight out of the frame decoder, no intermediate buffer).
  void decodeOne(const trace::TraceRecord &R, AnalysisBase &Sink) {
    feed(R, Sink);
  }

  /// Batch variant of decode() for the parallel ingest pipeline: identical
  /// event semantics, but function-identity lookups are served from a
  /// small direct-mapped memo while the batch runs. A trace frame
  /// re-enters the same handful of callbacks thousands of times, so
  /// hoisting the per-record hash probe into the memo is one of the
  /// batch path's structural wins over record-at-a-time replay. The memo
  /// only caches entries already in Funcs and is invalidated whenever an
  /// insertion could rehash the map, so cross-frame decoder state is
  /// unaffected.
  void decodeBatch(const trace::TraceRecord *Records, size_t N,
                   AnalysisBase &Sink);

  /// Scoped enable/disable of the batch memo for callers that feed records
  /// one at a time but still batch-wise (the single-thread pipelined
  /// ingest decodes frames straight out of the mapping). Balance every
  /// beginBatch with endBatch; batches must not nest.
  void beginBatch() { BatchOn = true; }
  void endBatch() { BatchOn = false; }

  /// Pre-sizes the function table for \p N FuncDef records so it never
  /// rehashes mid-stream (each rehash also invalidates the batch memo).
  /// Callers that pre-scan the trace know the record count up front; a
  /// trace defines roughly one function per ten records at the high end.
  void reserveFuncs(size_t N) { Funcs.reserve(N); }

  /// Records whose opcode or sequencing was invalid (diagnostics; such
  /// records are skipped).
  uint64_t badRecords() const { return BadRecords; }

  /// Shard announced by a v3 ShardInfo record (0 for single-loop traces).
  uint32_t shard() const { return ShardId; }

private:
  void feed(const trace::TraceRecord &R, AnalysisBase &Sink);
  Symbol sym(uint32_t Raw) const;
  SourceLocation loc(uint64_t Packed) const;

  /// Returns the Function handle for \p Id, creating a placeholder if no
  /// FuncDef arrived yet (e.g. callbacks referenced before first entry).
  const jsrt::Function &funcFor(jsrt::FunctionId Id);

  FlatMap<jsrt::FunctionId, jsrt::Function> Funcs;
  std::vector<SymbolId> Remap;

  /// Direct-mapped function memo, live only inside a batch. Entries point
  /// into Funcs, so any insertion (which may rehash) clears the memo. 128
  /// slots (2 KiB) cover the working set of callbacks a server workload
  /// cycles through per frame; at 16 the AcmeAir trace thrashed on
  /// conflict misses.
  static constexpr unsigned FnMemoSize = 128;
  struct FnMemoEntry {
    jsrt::FunctionId Id = 0;
    const jsrt::Function *F = nullptr;
  };
  FnMemoEntry FnMemo[FnMemoSize];
  bool BatchOn = false;

  /// Pending EnterTrigger for the next Enter.
  jsrt::TriggerInfo PendingTrigger;
  /// Multi-record ApiCall assembly state.
  ApiCallEvent Api;
  SourceLocation ApiLoc;
  unsigned ApiFuncsLeft = 0;
  unsigned ApiInputsLeft = 0;
  bool ApiOpen = false;

  uint32_t ShardId = 0;
  uint64_t BadRecords = 0;

  void finishApiIfReady(AnalysisBase &Sink);
};

//===----------------------------------------------------------------------===//
// Recording and replay
//===----------------------------------------------------------------------===//

/// An analysis that records the instrumented run into an `.agtrace` file.
///
/// \code
///   instr::TraceRecorder Rec;
///   Rec.open("run.agtrace");
///   RT.hooks().attach(&Rec);
///   RT.main(Main);
///   Rec.finalize();
/// \endcode
class TraceRecorder final : public AnalysisBase {
public:
  const char *analysisName() const override { return "trace-recorder"; }

  /// Opens \p Path. When recording a cluster shard, pass its non-zero
  /// \p Shard and a ShardInfo record leads the stream; shard 0 writes no
  /// such record, keeping single-loop v3 traces byte-identical to v2.
  /// \p Version selects the file encoding (v4 columnar frames by default;
  /// 2/3 write the raw 32-byte rows for older consumers). A non-zero
  /// shard needs the ShardInfo opcode and therefore \p Version >= 3.
  bool open(const std::string &Path, uint32_t Shard = 0,
            uint32_t Version = trace::TraceVersion);
  bool finalize();
  uint64_t recordCount() const { return Writer.recordCount(); }

  /// Bytes of the record section written so far (the size lever v4 pulls;
  /// excludes header/symbol sections and any still-buffered records).
  uint64_t recordBytes() const { return Writer.recordBytes(); }

  void onFunctionEnter(const FunctionEnterEvent &E) override;
  void onFunctionExit(const FunctionExitEvent &E) override;
  void onApiCall(const ApiCallEvent &E) override;
  void onObjectCreate(const ObjectCreateEvent &E) override;
  void onReactionResult(const ReactionResultEvent &E) override;
  void onPromiseLink(const PromiseLinkEvent &E) override;
  void onObjectRelease(const ObjectReleaseEvent &E) override;
  void onLoopEnd(const LoopEndEvent &E) override;

private:
  void flushScratch();

  TraceEncoder Encoder;
  std::vector<trace::TraceRecord> Scratch;
  trace::TraceFileWriter Writer;
};

/// How replayTrace reads the file back.
enum class ReplayTransport {
  /// v4 traces replay zero-copy from an mmap of the file; raw v1..v3
  /// traces stream through stdio (their historical path).
  Auto,
  /// Force buffered stdio reads (any version).
  Stdio,
  /// Force the mmap path (any version; raw rows are fed straight from the
  /// mapping, v4 frames decode record-at-a-time from the mapping). Fails
  /// where mmap is unavailable.
  Mmap,
};

/// Decode-side counters from a replay.
struct ReplayStats {
  uint64_t Records = 0;
  /// Bytes of the file's record section (what the codec version controls).
  uint64_t RecordBytes = 0;
  /// Records whose opcode or sequencing was invalid (skipped).
  uint64_t BadRecords = 0;
  uint32_t Version = 0;
  /// True when the strict open failed (torn/truncated recording) and the
  /// replay salvaged the clean frame-aligned prefix via the v4 checkpoint
  /// chain instead. Records/RecordBytes then describe the prefix.
  bool Recovered = false;
  /// Bytes abandoned after the last clean frame (recovered replays only).
  uint64_t DroppedTailBytes = 0;
};

/// Rebuilds a run from \p Path by firing every recorded event into
/// \p Sink (typically an ag::AsyncGBuilder). Returns false and sets
/// \p Err on open/validation/decode failure. \p Stats, when non-null,
/// receives decode-side counters even on partial failure.
bool replayTrace(const std::string &Path, AnalysisBase &Sink,
                 std::string *Err = nullptr,
                 ReplayTransport Transport = ReplayTransport::Auto,
                 ReplayStats *Stats = nullptr);

} // namespace instr
} // namespace asyncg

#endif // ASYNCG_INSTR_TRACECODEC_H
