//===- Hooks.h - Instrumentation hook interface -----------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumentation framework standing in for NodeProf (§V-A): the jsrt
/// runtime fires events at every function invocation, asynchronous API
/// call, object creation, promise settlement, and loop lifecycle point.
/// Analyses subclass AnalysisBase and attach to the registry; they can be
/// attached and detached at runtime ("AsyncG is pluggable, and can be
/// enabled/disabled at runtime"), and with no analyses attached every hook
/// site reduces to a single empty() check.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_INSTR_HOOKS_H
#define ASYNCG_INSTR_HOOKS_H

#include "jsrt/ApiKind.h"
#include "jsrt/Completion.h"
#include "jsrt/Dispatch.h"
#include "jsrt/Function.h"
#include "jsrt/Ids.h"
#include "jsrt/PhaseKind.h"
#include "jsrt/Value.h"
#include "support/SourceLocation.h"
#include "support/SymbolTable.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace asyncg {
namespace instr {

/// Counts ApiCallEvent / ObjectCreateEvent constructions. Hook sites must
/// build these only behind a !HookRegistry::empty() guard; the lazy-fire
/// test asserts this stays 0 through an uninstrumented run. Atomic because
/// the async pipeline's decoder reconstructs events on the builder thread
/// while the loop thread keeps constructing its own.
uint64_t constructedEventCount();
void resetConstructedEventCount();
namespace detail {
/// Per-thread: each loop thread (and the pipeline's decoder thread)
/// counts its own constructions, so the hot path pays a plain increment
/// instead of an atomic RMW. constructedEventCount() reads the calling
/// thread's count, which is what the lazy-fire test observes.
extern thread_local uint64_t ConstructedEvents;
}

/// Fired before a function body runs (Algorithm 1/3's functionEnter).
struct FunctionEnterEvent {
  const jsrt::Function &F;
  const jsrt::CallArgs &Args;
  const jsrt::DispatchInfo &Dispatch;
};

/// Fired after a function body runs (Algorithm 1's functionExit).
struct FunctionExitEvent {
  const jsrt::Function &F;
  const jsrt::Completion &Result;
  const jsrt::DispatchInfo &Dispatch;
};

/// Fired at every asynchronous API call: registrations (CR nodes) and
/// trigger actions (CT nodes). This carries the information Algorithm 2's
/// per-API templates extract: which callbacks, the target phase, whether
/// the callback runs once, and the bound emitter/promise object.
struct ApiCallEvent {
  ApiCallEvent() { ++detail::ConstructedEvents; }

  /// Resets every field to its construction default while keeping the
  /// Callbacks/InputObjs heap capacity, so a scratch event can be reused
  /// across fire sites without reallocating per call (see scratchApiCall).
  void clear() {
    ++detail::ConstructedEvents;
    Api = jsrt::ApiKind::None;
    Loc = SourceLocation();
    Sched = 0;
    Callbacks.clear();
    TargetPhase = jsrt::PhaseKind::Main;
    Once = true;
    BoundObj = 0;
    DerivedObj = 0;
    InputObjs.clear();
    EventName = Symbol();
    TimeoutMs = 0;
    HasRejectHandler = false;
    Trigger = 0;
    TriggerHadEffect = false;
    Internal = false;
  }

  jsrt::ApiKind Api = jsrt::ApiKind::None;
  /// Call-site location.
  SourceLocation Loc;
  /// Registration id (CR identity); 0 for pure trigger actions.
  jsrt::ScheduleId Sched = 0;
  /// The callbacks registered by this call.
  std::vector<jsrt::Function> Callbacks;
  /// The phase the callbacks will be scheduled in.
  jsrt::PhaseKind TargetPhase = jsrt::PhaseKind::Main;
  /// True if the callback is scheduled exactly once (setImmediate) rather
  /// than possibly many times (emitter.on, setInterval).
  bool Once = true;
  /// Emitter/promise object the call is bound to; 0 when none.
  jsrt::ObjectId BoundObj = 0;
  /// Derived promise created by this call (then/catch/combinators).
  jsrt::ObjectId DerivedObj = 0;
  /// Input promises for combinators.
  std::vector<jsrt::ObjectId> InputObjs;
  /// Emitter event name (interned).
  Symbol EventName;
  /// Timer delay in milliseconds (timers only).
  double TimeoutMs = 0;
  /// True if this registration includes a rejection handler (then with two
  /// arguments, catch, await).
  bool HasRejectHandler = false;
  /// Trigger action id (CT identity); 0 for registrations.
  jsrt::TriggerId Trigger = 0;
  /// For triggers: true iff the action did something (emit had listeners /
  /// settle changed state). A false value on emit is a dead emit; a false
  /// value on resolve/reject is a double settle.
  bool TriggerHadEffect = false;
  /// True when the call originates from internal library machinery rather
  /// than application code.
  bool Internal = false;
};

/// Returns a cleared thread-local scratch ApiCallEvent. Hot fire sites
/// reuse it so the Callbacks/InputObjs heap capacity survives across
/// events instead of being allocated and freed per API call. The reference
/// is valid until the next scratchApiCall() on this thread; hook handlers
/// must copy anything they keep (they already do — the event dies at the
/// end of the fire either way).
inline ApiCallEvent &scratchApiCall() {
  thread_local ApiCallEvent E;
  E.clear();
  return E;
}

/// Fired when a promise or emitter object is created (OB nodes).
struct ObjectCreateEvent {
  ObjectCreateEvent() { ++detail::ConstructedEvents; }

  jsrt::ObjectId Obj = 0;
  bool IsPromise = false;
  /// Debug name ("EventEmitter", "Promise", "http.Server", ...), interned.
  Symbol Name;
  SourceLocation Loc;
  bool Internal = false;
  /// For promises derived from another promise: the parent and the API
  /// that derived it (then/catch/all/...), driving the dashed relation
  /// edges between OB nodes.
  jsrt::ObjectId Parent = 0;
  jsrt::ApiKind Relation = jsrt::ApiKind::None;
};

/// Fired when a then-reaction returns and its result resolves the derived
/// promise. Feeds the Missing-Return and Broken-Promise-Chain analyses.
struct ReactionResultEvent {
  jsrt::ObjectId Source = 0;
  jsrt::ObjectId Derived = 0;
  jsrt::ScheduleId Sched = 0;
  bool ReturnedUndefined = false;
  bool Threw = false;
};

/// Fired when a then-reaction returns a promise that gets adopted into the
/// chain (the paper's "link" relation edge).
struct PromiseLinkEvent {
  /// The promise returned by the reaction callback.
  jsrt::ObjectId Returned = 0;
  /// The derived promise that adopts it.
  jsrt::ObjectId Derived = 0;
};

/// Fired on tracked property reads/writes (Runtime::getProperty /
/// setProperty). Feeds the data-flow race analysis (the paper's §IX
/// ongoing-research extension).
struct PropertyAccessEvent {
  /// Identity of the accessed object.
  uintptr_t Obj = 0;
  std::string Key;
  bool IsWrite = false;
  SourceLocation Loc;
};

/// Fired when a Throw completion escapes a top-level dispatch.
struct UncaughtErrorEvent {
  const jsrt::Value &Error;
  SourceLocation Loc;
  uint64_t TickSeq = 0;
};

/// Fired when a tracked promise or emitter object is no longer reachable
/// by the program (the runtime's weak registry observed its destruction).
/// This is the definitive end of the object's story: no further listener
/// can fire, no reaction can be added, no settle can land — analyses can
/// finalize per-object verdicts and the builder can release the pending
/// registrations bound to it. Fired in creation order, at deterministic
/// loop points (once per loop iteration and before loop end), so recorded
/// traces replay identically.
struct ObjectReleaseEvent {
  jsrt::ObjectId Obj = 0;
  bool IsPromise = false;
};

/// Fired when the event loop finishes (normally, by stop(), or by
/// exhausting the tick budget — the latter indicates starvation, e.g. the
/// recursive-nextTick bug of Fig. 1).
struct LoopEndEvent {
  uint64_t Ticks = 0;
  bool TickBudgetExhausted = false;
};

/// Fired at the top of every event-loop turn — a safe point between
/// dispatches, never mid-event. Not part of the recorded trace (the Async
/// Graph derives ticks from Enter records); transports use it for
/// deferred maintenance on the loop thread: the async pipeline flushes
/// its producer-side record chunk and re-evaluates its overhead-budget
/// sampling decision here.
struct TickBoundaryEvent {
  /// Dispatch tick sequence at the boundary.
  uint64_t TickSeq = 0;
};

/// Base class for dynamic analyses (AsyncG, the baselines, counters).
/// All hooks default to no-ops; override what you need.
class AnalysisBase {
public:
  virtual ~AnalysisBase();

  /// Short analysis name for reports.
  virtual const char *analysisName() const { return "analysis"; }

  virtual void onFunctionEnter(const FunctionEnterEvent &E) { (void)E; }
  virtual void onFunctionExit(const FunctionExitEvent &E) { (void)E; }
  virtual void onApiCall(const ApiCallEvent &E) { (void)E; }
  virtual void onObjectCreate(const ObjectCreateEvent &E) { (void)E; }
  virtual void onReactionResult(const ReactionResultEvent &E) { (void)E; }
  virtual void onPromiseLink(const PromiseLinkEvent &E) { (void)E; }
  virtual void onObjectRelease(const ObjectReleaseEvent &E) { (void)E; }
  virtual void onPropertyAccess(const PropertyAccessEvent &E) { (void)E; }
  virtual void onUncaughtError(const UncaughtErrorEvent &E) { (void)E; }
  virtual void onLoopEnd(const LoopEndEvent &E) { (void)E; }
  virtual void onTickBoundary(const TickBoundaryEvent &E) { (void)E; }

  /// Fired by batching transports (the async pipeline between ring drains,
  /// the trace replayer between file chunks) on the thread that runs the
  /// analysis: a safe point for deferred maintenance such as Async Graph
  /// region retirement. Never fired mid-event.
  virtual void onBatchBoundary() {}
};

/// Registry of attached analyses. The runtime owns one; hook dispatch is a
/// plain loop, so an empty registry costs one branch per hook site.
///
/// Attach and detach are safe from inside a hook callback (an analysis may
/// detach itself at runtime): firing iterates by index over the size
/// captured at loop start, detach during a fire nulls the slot instead of
/// erasing it, and the vector is compacted when the outermost fire
/// returns. Analyses attached mid-fire are not invoked for the event that
/// was already in flight.
class HookRegistry {
public:
  /// Attaches an analysis (not owned). May be called while running.
  void attach(AnalysisBase *A) {
    assert(A && "attaching null analysis");
    Analyses.push_back(A);
    ++Live;
  }

  /// Detaches a previously attached analysis. Safe while running, including
  /// from inside a hook callback of a fire* loop.
  void detach(AnalysisBase *A) {
    for (AnalysisBase *&Slot : Analyses) {
      if (Slot != A)
        continue;
      Slot = nullptr;
      --Live;
      NeedsCompact = true;
    }
    if (FireDepth == 0)
      compact();
  }

  bool empty() const { return Live == 0; }
  size_t size() const { return Live; }

  void fireFunctionEnter(const FunctionEnterEvent &E) {
    fire([&E](AnalysisBase *A) { A->onFunctionEnter(E); });
  }
  void fireFunctionExit(const FunctionExitEvent &E) {
    fire([&E](AnalysisBase *A) { A->onFunctionExit(E); });
  }
  void fireApiCall(const ApiCallEvent &E) {
    fire([&E](AnalysisBase *A) { A->onApiCall(E); });
  }
  void fireObjectCreate(const ObjectCreateEvent &E) {
    fire([&E](AnalysisBase *A) { A->onObjectCreate(E); });
  }
  void fireReactionResult(const ReactionResultEvent &E) {
    fire([&E](AnalysisBase *A) { A->onReactionResult(E); });
  }
  void firePromiseLink(const PromiseLinkEvent &E) {
    fire([&E](AnalysisBase *A) { A->onPromiseLink(E); });
  }
  void fireObjectRelease(const ObjectReleaseEvent &E) {
    fire([&E](AnalysisBase *A) { A->onObjectRelease(E); });
  }
  void firePropertyAccess(const PropertyAccessEvent &E) {
    fire([&E](AnalysisBase *A) { A->onPropertyAccess(E); });
  }
  void fireUncaughtError(const UncaughtErrorEvent &E) {
    fire([&E](AnalysisBase *A) { A->onUncaughtError(E); });
  }
  void fireLoopEnd(const LoopEndEvent &E) {
    fire([&E](AnalysisBase *A) { A->onLoopEnd(E); });
  }
  void fireTickBoundary(const TickBoundaryEvent &E) {
    fire([&E](AnalysisBase *A) { A->onTickBoundary(E); });
  }

private:
  template <typename Fn> void fire(Fn &&Invoke) {
    ++FireDepth;
    // Index-based over the size at loop start: detach nulls slots (checked
    // below) and attach appends past N (skipped for this event).
    size_t N = Analyses.size();
    for (size_t I = 0; I != N; ++I)
      if (AnalysisBase *A = Analyses[I])
        Invoke(A);
    if (--FireDepth == 0 && NeedsCompact)
      compact();
  }

  void compact() {
    Analyses.erase(std::remove(Analyses.begin(), Analyses.end(), nullptr),
                   Analyses.end());
    NeedsCompact = false;
    assert(Analyses.size() == Live && "live count out of sync");
  }

  std::vector<AnalysisBase *> Analyses;
  size_t Live = 0;
  size_t FireDepth = 0;
  bool NeedsCompact = false;
};

} // namespace instr
} // namespace asyncg

#endif // ASYNCG_INSTR_HOOKS_H
