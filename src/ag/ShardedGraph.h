//===- ShardedGraph.h - Cross-loop Async Graph merge ------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cluster-mode merge layer: each event loop of a sharded runtime
/// builds its own AsyncGraph lock-free (all runtime ids carry the shard in
/// their top bits, so the per-shard graphs never collide), and after the
/// loops join, a ShardedGraph unions them into one AsyncGraph that the
/// detectors' results, queries, and DOT rendering operate on.
///
/// What the merge adds beyond the union: cross-loop causal edges. A
/// cluster send fires a CT on the sending shard carrying a freshly minted
/// handoff id; the delivery runs as a top-level tick on the receiving
/// shard whose CE records that foreign id as its Sched (no local
/// registration matches it). After the union both ends live in one graph,
/// and every ClusterRecv CE is joined to the CT owning its handoff id with
/// a Causal edge labeled "xloop".
///
/// What the merge does NOT do: order ticks across shards. Per-shard
/// virtual clocks are independent (like wall clocks of separate cores), so
/// merged ticks are renumbered shard-major — all of shard 0's ticks, then
/// shard 1's, each block keeping its loop-local order, which is the only
/// order that exists. Cross-shard ordering claims come solely from the
/// "xloop" edges. A single-shard merge is an exact copy: same node ids,
/// same tick names, byte-identical DOT.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_AG_SHARDEDGRAPH_H
#define ASYNCG_AG_SHARDEDGRAPH_H

#include "ag/Graph.h"

#include <cstdint>
#include <vector>

namespace asyncg {
namespace ag {

/// Counters describing one merge (for reports and tests).
struct MergeStats {
  uint32_t Shards = 0;
  uint64_t Ticks = 0;
  uint64_t Nodes = 0;
  uint64_t Edges = 0;
  uint64_t Warnings = 0;
  /// "xloop" Causal edges added by the handoff join.
  uint64_t CrossLoopEdges = 0;
  /// ClusterRecv executions whose sender CT was not in the union (its
  /// region retired before the merge, or the trace was truncated).
  uint64_t UnresolvedHandoffs = 0;
  /// Retired (tombstoned) per-shard ticks the union skipped; their content
  /// lives only in each shard's RetiredSummary.
  uint64_t SkippedRetiredTicks = 0;
};

/// Merges per-shard Async Graphs into one graph. Two drivers share the
/// same union logic:
///
///  - build() is the original single-shot batch merge (cluster harness at
///    quiesce): all shards at once, then the handoff join.
///  - mergeShard()/finishMerge() is the incremental form the streaming
///    ingest hub (ag/IngestHub.h) uses: shards are unioned one at a time,
///    in shard-id order, as their streams finish draining; finishMerge()
///    runs the handoff join over whatever has been unioned. The final
///    graph is identical to a build() over the same shards in the same
///    order — tick renumbering stays shard-major either way.
class ShardedGraph {
public:
  /// Unions \p Shards (index = shard id, so element 0 is loop 0) into the
  /// merged graph and joins cross-loop handoffs. Node ids, tick indices,
  /// and warning anchors are remapped; the inputs are not modified.
  MergeStats build(const std::vector<const AsyncGraph *> &Shards);

  /// Incrementally unions \p In as shard \p Shard. Call in increasing
  /// shard order (ids name the merge blocks: renumbering is shard-major).
  void mergeShard(const AsyncGraph &In, uint32_t Shard);

  /// Joins cross-loop handoffs over everything merged so far and returns
  /// the final stats. Call once, after the last mergeShard().
  const MergeStats &finishMerge();

  const AsyncGraph &merged() const { return G; }
  AsyncGraph &merged() { return G; }
  const MergeStats &stats() const { return Stats; }

private:
  AsyncGraph G;
  MergeStats Stats;
  /// Tick-renumbering high-water mark across incremental merges.
  uint32_t IndexBase = 0;
};

} // namespace ag
} // namespace asyncg

#endif // ASYNCG_AG_SHARDEDGRAPH_H
