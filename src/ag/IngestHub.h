//===- IngestHub.h - Parallel trace ingestion + stream merge ----*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offline trace ingestion, restructured around the v4 frame layout: every
/// record frame is self-contained (column deltas reset per frame), so the
/// expensive half of replay — frame bytes -> TraceRecord rows — can run
/// out of order, as long as the cheap half — records -> decoder events ->
/// builder — applies frames in file order. The hub exploits that split
/// three ways:
///
///  - Pre-scan. scanV4Frames() locates every frame of the mapped record
///    section up front (O(frames), header reads only), which both feeds
///    the decode scheduler and tells the hub the exact record count before
///    the first event fires, so graph storage is pre-sized once instead of
///    grown through reallocation.
///
///  - Pipelined decode. With Jobs == 1 the hub decodes frames inline,
///    straight from the mapping, under the decoder's batch memo
///    (TraceDecoder::beginBatch) and with the next frame prefetched while
///    the current one is applied. With Jobs >= 2 it runs Jobs - 1 decode
///    workers plus the committing thread: workers pull frame tasks from a
///    shared MpmcQueue and decode into per-slot record buffers; the
///    committer applies finished slots strictly in frame order, and when
///    its next-needed slot is still pending it steals a decode task
///    itself instead of blocking. Ordered commit keeps the decoder's
///    cross-frame state (api assembly, symbol remap, function table)
///    exactly as serial replay would have it, so DOT output and warning
///    sets are byte-identical to replayTrace() at any job count.
///
///  - Streaming merge. N input streams (e.g. one per cluster shard) are
///    ingested in bounded round-robin tick windows, each stream feeding
///    its own AsyncGBuilder — live observers attached via builder() see
///    every stream make progress instead of one stream at a time. At the
///    end the per-stream graphs are unioned through ShardedGraph's
///    incremental mergeShard()/finishMerge(), in stream order, which is
///    the same shard-major renumbering the batch merge performs: the
///    merged graph is byte-identical to ShardedGraph::build() over the
///    same graphs. Cross-loop handoffs are also tracked incrementally
///    during ingestion (sender CT trigger ids vs ClusterRecv CE schedule
///    ids) for live stats; the authoritative "xloop" edges still come
///    from the final merge.
///
/// Torn streams (crash recordings) take the recovery pre-scan
/// (scanV4Recovery): frames are located with per-frame symbol-remap
/// snapshots and decoded through the same pipeline; a frame that fails to
/// decode truncates the stream there, mirroring recoverV4Prefix's
/// clean-prefix guarantee. Raw v1..v3 traces — no frames to parallelize —
/// fall back to replayTrace() per stream.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_AG_INGESTHUB_H
#define ASYNCG_AG_INGESTHUB_H

#include "ag/Builder.h"
#include "ag/ShardedGraph.h"
#include "support/TraceFormat.h"

#include <memory>
#include <string>
#include <vector>

namespace asyncg {
namespace ag {

/// Ingestion configuration.
struct IngestOptions {
  /// Total threads working on decode: 1 ingests inline (pipelined but
  /// threadless — the right setting on single-core hosts); N >= 2 spawns
  /// N - 1 decode workers beside the committing thread.
  unsigned Jobs = 1;
  /// Multi-stream scheduling grain: a stream yields to the next one after
  /// committing this many ticks. Smaller windows mean fresher live stats
  /// across streams; the final merged graph is identical either way.
  uint32_t WindowTicks = 256;
  /// Builder template applied to every stream (promise/emitter filtering,
  /// retirement, ...). The storage hints are superseded by the pre-scan
  /// unless PreSize is off.
  BuilderConfig Builder;
  /// Pre-size each stream's graph from the pre-scanned record count.
  bool PreSize = true;
};

/// Per-stream outcome counters.
struct IngestStreamStats {
  std::string Path;
  uint32_t Version = 0;
  uint64_t Records = 0;
  uint64_t RecordBytes = 0;
  uint64_t Frames = 0;
  uint64_t BadRecords = 0;
  /// Strict open failed; the clean frame prefix was salvaged through the
  /// checkpoint chain (Records/RecordBytes then describe the prefix).
  bool Recovered = false;
  uint64_t DroppedTailBytes = 0;
  /// Stream went through replayTrace() (raw v1..v3, or no mmap) rather
  /// than the frame pipeline.
  bool Fallback = false;
};

/// Whole-run counters.
struct IngestStats {
  uint64_t Records = 0;
  uint64_t Frames = 0;
  /// Round-robin turns taken (1 per stream when everything fits one
  /// window).
  uint64_t Windows = 0;
  /// Cross-loop handoff deliveries observed during ingestion, and how
  /// many had already seen their sender's CT when counted (live view;
  /// the merge's MergeStats is authoritative). Tracked only for
  /// non-retiring builders.
  uint64_t HandoffsSeen = 0;
  uint64_t HandoffsResolvedLive = 0;
  std::vector<IngestStreamStats> Streams;
};

/// Ingests one or more `.agtrace` streams into one Async Graph.
///
/// \code
///   ag::IngestHub Hub(Opts);
///   size_t S0 = Hub.addFile("shard0.agtrace");
///   Suite.attach(Hub.builder(S0));           // optional live detectors
///   if (!Hub.run(&Err)) ...;
///   viz::toDot(Hub.graph(), Out);
/// \endcode
///
/// Single-shot: addFile() then one run(). For cluster traces, add files
/// in shard order — stream index is the merge's shard id.
class IngestHub {
public:
  explicit IngestHub(IngestOptions Opts = IngestOptions());
  ~IngestHub();

  IngestHub(const IngestHub &) = delete;
  IngestHub &operator=(const IngestHub &) = delete;

  /// Registers an input stream; returns its index. The stream's builder
  /// exists immediately, so observers can be attached before run().
  size_t addFile(const std::string &Path);

  size_t streams() const { return Streams.size(); }

  /// Stream \p I's builder (valid for the hub's lifetime).
  AsyncGBuilder &builder(size_t I);
  const AsyncGBuilder &builder(size_t I) const;

  /// Ingests every stream. Returns false with \p Err set on the first
  /// unrecoverable failure (stats up to that point remain valid).
  bool run(std::string *Err = nullptr);

  /// The result graph: the merged union for multi-stream runs, stream 0's
  /// builder graph for single-stream runs (no copy). Valid after run().
  const AsyncGraph &graph() const;

  const IngestStats &stats() const { return Stats; }

  /// Merge counters (all-zero for single-stream runs, which skip the
  /// union). Valid after run().
  const MergeStats &mergeStats() const { return Merged.stats(); }

private:
  struct Stream;
  struct DecodePool;

  /// Classifies \p S (validated v4 / recovered v4 / fallback) and runs
  /// its pre-scan. Returns false with \p Err on unrecoverable failure.
  bool prepareStream(Stream &S, std::string *Err);
  /// Commits frames of \p S until the tick window closes or the stream
  /// drains. Returns false with \p Err on unrecoverable failure.
  bool pumpStream(Stream &S, std::string *Err);
  /// Decodes one located frame into \p Out (worker-side half; stateless).
  static bool decodeFrameInto(const Stream &S, size_t FrameIdx,
                              std::vector<trace::TraceRecord> &Out,
                              std::string *Err);
  /// Applies the truncate-or-fail policy for a frame whose varint streams
  /// failed to decode. Returns true when the stream was truncated
  /// (recovered streams), false for a hard error (validated streams).
  bool handleBadFrame(Stream &S, size_t FrameIdx, const std::string &FrameErr,
                      std::string *Err);
  /// Installs the symbol-remap prefix frame \p F expects (recovery scans).
  void syncRemap(Stream &S, const trace::TraceFrameRef &F);
  /// Scans new graph nodes of \p S for cross-loop handoff bookkeeping.
  void scanHandoffs(Stream &S);
  void finishStream(Stream &S);

  IngestOptions Opts;
  std::vector<std::unique_ptr<Stream>> Streams;
  std::unique_ptr<DecodePool> Pool;
  ShardedGraph Merged;
  IngestStats Stats;
  bool Ran = false;

  /// Sender CT trigger ids seen so far, across streams (live handoff
  /// tracking; value unused).
  FlatMap<jsrt::TriggerId, uint8_t> CtSeen;
  /// ClusterRecv schedule ids whose CT had not been seen yet when the
  /// delivery was counted.
  std::vector<jsrt::ScheduleId> ParkedHandoffs;
};

} // namespace ag
} // namespace asyncg

#endif // ASYNCG_AG_INGESTHUB_H
