//===- Validator.h - CE-to-CR context validation ----------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 3's context validator: decides whether a pending callback
/// registration matches the current execution context — the tick's phase
/// type, the trigger (emitter event / promise action) bound to the call,
/// and the registration's target phase.
///
/// The runtime's dispatch metadata also carries the registration id, which
/// makes the mapping exact; the builder uses the contextual validation as
/// the paper describes and asserts agreement with the id (the unit tests
/// exercise the contextual path directly).
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_AG_VALIDATOR_H
#define ASYNCG_AG_VALIDATOR_H

#include "ag/Warning.h"
#include "jsrt/ApiKind.h"
#include "jsrt/Dispatch.h"
#include "jsrt/Ids.h"
#include "jsrt/PhaseKind.h"
#include "support/SymbolTable.h"

namespace asyncg {
namespace ag {

/// One pending callback registration (an entry of the paper's
/// L_pending^cb lists).
struct PendingReg {
  /// The CR node this registration produced.
  NodeId Cr = InvalidNode;
  jsrt::ScheduleId Sched = 0;
  jsrt::ApiKind Api = jsrt::ApiKind::None;
  /// Phase the callback is expected to execute in.
  jsrt::PhaseKind TargetPhase = jsrt::PhaseKind::Main;
  /// Scheduled exactly once (then/setTimeout) vs possibly many times
  /// (on/setInterval) — Algorithm 3's scheduleOnce().
  bool Once = true;
  /// Bound emitter/promise object; 0 when none.
  jsrt::ObjectId BoundObj = 0;
  /// Emitter event name for listener registrations (interned; equality
  /// against the trigger's event is an integer compare).
  Symbol Event;
  /// Tick index of the CR node — the region this registration pins while
  /// it is pending (epoch retirement accounting).
  uint32_t RegTick = 0;
};

/// The context validator (Algorithm 3, line 3).
class ContextValidator {
public:
  /// Contextual match: does \p Reg explain an execution dispatched with
  /// \p D in a tick of phase \p TickPhase?
  static bool contextMatches(const PendingReg &Reg,
                             const jsrt::DispatchInfo &D,
                             jsrt::PhaseKind TickPhase) {
    using jsrt::ApiKind;
    using jsrt::PhaseKind;
    using jsrt::TriggerInfo;

    // Emitter listeners execute under an emit trigger on the same object
    // and event, in whatever phase the emit fires.
    if (jsrt::isEmitterRegistrationApi(Reg.Api) ||
        (Reg.Api == ApiKind::NetCreateServer ||
         Reg.Api == ApiKind::HttpCreateServer))
      return D.Trigger.K == TriggerInfo::Kind::Emitter &&
             D.Trigger.Obj == Reg.BoundObj && D.Trigger.Event == Reg.Event;

    // Promise executors run instantly in the registering tick.
    if (Reg.Api == ApiKind::PromiseCtor)
      return TickPhase == Reg.TargetPhase && D.Trigger.isNone();

    // Promise reactions (then/catch/finally/await and internal adoption
    // reactions) run in promise micro-ticks under a settle trigger on the
    // bound promise.
    if (Reg.TargetPhase == PhaseKind::PromiseMicro && Reg.BoundObj != 0)
      return TickPhase == PhaseKind::PromiseMicro &&
             D.Trigger.K == TriggerInfo::Kind::Promise &&
             D.Trigger.Obj == Reg.BoundObj;

    // Self-scheduling and external registrations execute as top-level
    // callbacks of their target phase.
    return TickPhase == Reg.TargetPhase;
  }

  /// Full validity: the registration id must agree (exact mapping), and
  /// when it does, the context must explain it too.
  static bool isValid(const PendingReg &Reg, const jsrt::DispatchInfo &D,
                      jsrt::PhaseKind TickPhase) {
    if (D.Sched != 0)
      return D.Sched == Reg.Sched;
    return contextMatches(Reg, D, TickPhase);
  }
};

} // namespace ag
} // namespace asyncg

#endif // ASYNCG_AG_VALIDATOR_H
