//===- Templates.h - Per-API registration templates -------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 2's `getAsyncTemplate`: classifies every asynchronous API and
/// carries the information the builder needs to process a call — whether it
/// registers callbacks, triggers previously registered ones, relates
/// objects (combinators), or is bookkeeping; plus label construction for
/// the resulting nodes.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_AG_TEMPLATES_H
#define ASYNCG_AG_TEMPLATES_H

#include "instr/Hooks.h"
#include "jsrt/ApiKind.h"
#include "support/SymbolTable.h"

#include <array>
#include <string>

namespace asyncg {
namespace ag {

/// How the builder processes an API call.
enum class TemplateKind {
  /// Registers one or more callbacks: produces a CR node and pending-list
  /// entries (nextTick, timers, immediates, then/catch, on/once, I/O APIs).
  Registration,
  /// Explicitly triggers registered callbacks: produces a CT node
  /// (emit, resolve, reject).
  Trigger,
  /// Relates promise objects without registering user callbacks
  /// (Promise.all/race/allSettled/any): produces relation edges.
  Combinator,
  /// No node; forwarded to observers for bookkeeping analyses
  /// (removeListener, removeAllListeners, listen).
  Misc,
};

/// Template record for one API kind.
struct ApiTemplate {
  TemplateKind Kind = TemplateKind::Misc;
  /// External scheduling (OS events) rather than self-scheduling (§II-A).
  bool External = false;
};

/// Returns the template for \p Api (Algorithm 2 line 3).
inline ApiTemplate getAsyncTemplate(jsrt::ApiKind Api) {
  using jsrt::ApiKind;
  switch (Api) {
  case ApiKind::NextTick:
  case ApiKind::QueueMicrotask:
  case ApiKind::SetTimeout:
  case ApiKind::SetInterval:
  case ApiKind::SetImmediate:
  case ApiKind::PromiseCtor:
  case ApiKind::PromiseThen:
  case ApiKind::PromiseCatch:
  case ApiKind::PromiseFinally:
  case ApiKind::Await:
  case ApiKind::EmitterOn:
  case ApiKind::EmitterOnce:
  case ApiKind::EmitterPrepend:
    return {TemplateKind::Registration, false};

  case ApiKind::FsReadFile:
  case ApiKind::FsWriteFile:
  case ApiKind::NetCreateServer:
  case ApiKind::NetConnect:
  case ApiKind::HttpCreateServer:
  case ApiKind::HttpRequest:
  case ApiKind::DbQuery:
    return {TemplateKind::Registration, true};

  case ApiKind::EmitterEmit:
  case ApiKind::PromiseResolve:
  case ApiKind::PromiseReject:
    return {TemplateKind::Trigger, false};

  // Cross-loop send: a CT whose execution is dispatched by another loop
  // (ClusterRecv never reaches onApiCall — it arrives as the delivery
  // tick's DispatchInfo — but the switch must stay exhaustive).
  case ApiKind::ClusterSend:
    return {TemplateKind::Trigger, true};
  case ApiKind::ClusterRecv:
    return {TemplateKind::Misc, true};

  case ApiKind::PromiseAll:
  case ApiKind::PromiseRace:
  case ApiKind::PromiseAllSettled:
  case ApiKind::PromiseAny:
    return {TemplateKind::Combinator, false};

  case ApiKind::EmitterRemoveListener:
  case ApiKind::EmitterRemoveAll:
  case ApiKind::NetListen:
    return {TemplateKind::Misc, false};

  case ApiKind::Internal:
    // Internal registrations (adoption reactions, close callbacks) carry
    // callbacks; internal trigger-less calls are bookkeeping.
    return {TemplateKind::Registration, false};

  case ApiKind::None:
    return {TemplateKind::Misc, false};
  }
  return {TemplateKind::Misc, false};
}

/// Interned apiKindName(), computed once per kind.
inline Symbol apiKindSymbol(jsrt::ApiKind Api) {
  static const auto Names = [] {
    std::array<Symbol, static_cast<size_t>(jsrt::ApiKind::ClusterRecv) + 1> A;
    for (size_t I = 0; I != A.size(); ++I)
      A[I] = Symbol(jsrt::apiKindName(static_cast<jsrt::ApiKind>(I)));
    return A;
  }();
  return Names[static_cast<size_t>(Api)];
}

/// The label builders append into a caller-owned scratch buffer (steady
/// state: zero allocations once the buffer has grown) and intern the
/// result; repeated labels hit the symbol table's fast path.

/// Builds the display label of a CR node ("L7: createServer",
/// "L9: on(foo)").
inline Symbol crLabel(const instr::ApiCallEvent &E, std::string &Scratch) {
  Scratch.clear();
  E.Loc.appendShort(Scratch);
  Scratch += ": ";
  Scratch += jsrt::apiKindName(E.Api);
  if (!E.EventName.empty()) {
    Scratch += '(';
    Scratch += E.EventName.view();
    Scratch += ')';
  }
  return Symbol(std::string_view(Scratch));
}

/// Builds the display label of a CT node ("L15: emit(foo)", "L3: resolve").
inline Symbol ctLabel(const instr::ApiCallEvent &E, std::string &Scratch) {
  Scratch.clear();
  E.Loc.appendShort(Scratch);
  Scratch += ": ";
  Scratch += jsrt::apiKindName(E.Api);
  if (E.Api == jsrt::ApiKind::EmitterEmit) {
    Scratch += '(';
    Scratch += E.EventName.view();
    Scratch += ')';
  }
  return Symbol(std::string_view(Scratch));
}

/// Builds the display label of an OB node ("L1: E5", "L2: P7", "*: E1").
inline Symbol obLabel(const instr::ObjectCreateEvent &E,
                      std::string &Scratch) {
  Scratch.clear();
  E.Loc.appendShort(Scratch);
  Scratch += ": ";
  Scratch += E.IsPromise ? 'P' : 'E';
  Scratch += std::to_string(E.Obj);
  return Symbol(std::string_view(Scratch));
}

} // namespace ag
} // namespace asyncg

#endif // ASYNCG_AG_TEMPLATES_H
