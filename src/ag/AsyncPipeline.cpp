//===- AsyncPipeline.cpp - Off-thread Async Graph construction ----------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "ag/AsyncPipeline.h"

#include <cassert>
#include <chrono>
#include <cstdio>

using namespace asyncg;
using namespace asyncg::ag;

const char *ag::degradeTierName(DegradeTier T) {
  switch (T) {
  case DegradeTier::Lossless:
    return "lossless";
  case DegradeTier::Sampled:
    return "sampled";
  case DegradeTier::StructuralOnly:
    return "structural";
  }
  return "?";
}

AsyncPipeline::AsyncPipeline(instr::AnalysisBase &Sink, PipelineConfig Config)
    : Sink(Sink), Config(Config), Ring(Config.RingCapacity) {
  assert(Ring.capacity() >= 1024 &&
         "ring too small for the largest event span");
  // A pending chunk plus the largest event span must fit all-or-nothing.
  if (this->Config.ProducerChunk > Ring.capacity() / 2)
    this->Config.ProducerChunk = Ring.capacity() / 2;
  SamplingOn = Config.SampleBudgetPct > 0;
  Start = std::chrono::steady_clock::now();
  Scratch.reserve(this->Config.ProducerChunk ? this->Config.ProducerChunk + 64
                                             : 64);
  Builder = std::thread([this] { consumerMain(); });
}

AsyncPipeline::~AsyncPipeline() { stop(); }

void AsyncPipeline::wakeConsumer() {
  {
    std::lock_guard<std::mutex> Lock(WakeMutex);
    WakeRequested = true;
  }
  WakeCv.notify_one();
}

void AsyncPipeline::pushPending() {
  size_t N = Scratch.size();
  if (N == 0)
    return;
  if (!Ring.tryPushAll(Scratch.data(), N)) {
    // Ring overflow in deferred mode: the builder thread must drain during
    // the run after all.
    if (Config.Drain == DrainMode::Deferred)
      wakeConsumer();
    BlockedPushes.fetch_add(1, std::memory_order_relaxed);
    auto T0 = std::chrono::steady_clock::now();
    if (Config.Policy == BackpressurePolicy::Degrade) {
      N = pushDegraded();
    } else {
      do
        std::this_thread::yield();
      while (!Ring.tryPushAll(Scratch.data(), N));
    }
    auto Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - T0)
                  .count();
    BlockedTimeNs.fetch_add(static_cast<uint64_t>(Ns),
                            std::memory_order_relaxed);
  }
  // Producer is the only writer of Pushed: plain load + store beats an RMW
  // on the per-event path.
  if (N) {
    uint64_t Total = Pushed.load(std::memory_order_relaxed) + N;
    Pushed.store(Total, std::memory_order_relaxed);
    uint64_t Depth = Total - Consumed.load(std::memory_order_relaxed);
    if (Depth > MaxQueueDepth.load(std::memory_order_relaxed))
      MaxQueueDepth.store(Depth, std::memory_order_relaxed);
  }
  Scratch.clear();
}

size_t AsyncPipeline::pushDegraded() {
  for (;;) {
    // One bounded spin window per tier. A push that fits ends the fight;
    // a window that expires escalates — the loop never blocks until the
    // ladder has already shed everything sheddable.
    auto SpinStart = std::chrono::steady_clock::now();
    do {
      std::this_thread::yield();
      if (Ring.tryPushAll(Scratch.data(), Scratch.size()))
        return Scratch.size();
    } while (std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now() - SpinStart)
                 .count() < static_cast<int64_t>(Config.EscalateSpinNs));
    if (LadderTier != DegradeTier::StructuralOnly) {
      setTier(static_cast<DegradeTier>(static_cast<uint8_t>(LadderTier) + 1));
      Escalations.fetch_add(1, std::memory_order_relaxed);
      shedPendingDecorations();
      if (Scratch.empty())
        return 0;
      continue;
    }
    // Already structural-only and the ring is still full: structure must
    // not drop (the builder's shadow stack depends on it), so this is the
    // one residual blocking path — entered only after both sheds.
    do
      std::this_thread::yield();
    while (!Ring.tryPushAll(Scratch.data(), Scratch.size()));
    return Scratch.size();
  }
}

void AsyncPipeline::setTier(DegradeTier T) {
  uint64_t NowNs = nsSinceStart();
  uint64_t Since = TierSinceNs.load(std::memory_order_relaxed);
  if (NowNs > Since)
    TierTimeNs[static_cast<size_t>(LadderTier)].fetch_add(
        NowNs - Since, std::memory_order_relaxed);
  TierSinceNs.store(NowNs, std::memory_order_relaxed);
  LadderTier = T;
  TierAtomic.store(static_cast<uint32_t>(T), std::memory_order_relaxed);
  QuietTicks = 0;
}

void AsyncPipeline::shedPendingDecorations() {
  // Droppable opcodes are contiguous (ApiBase..PromiseLink), so filtering
  // by range removes whole decoration record groups and can never strand
  // an ApiExt/ApiFuncs continuation without its ApiBase.
  constexpr uint8_t FirstDecor = static_cast<uint8_t>(trace::TraceOp::ApiBase);
  constexpr uint8_t LastDecor =
      static_cast<uint8_t>(trace::TraceOp::PromiseLink);
  size_t W = 0;
  uint64_t Shed = 0;
  for (const trace::TraceRecord &R : Scratch) {
    if (R.Op >= FirstDecor && R.Op <= LastDecor) {
      ++Shed;
      continue;
    }
    Scratch[W++] = R;
  }
  Scratch.resize(W);
  if (Shed)
    LadderShed.fetch_add(Shed, std::memory_order_relaxed);
}

void AsyncPipeline::pushScratch(bool Structural) {
  if (Config.Policy != BackpressurePolicy::Drop && Config.ProducerChunk) {
    // Chunked producer: let events accumulate in Scratch and spill in one
    // amortized push (ring availability check + two counter updates per
    // chunk instead of per event). Tick boundaries and flush() push the
    // remainder, so nothing is held past one loop turn.
    if (Scratch.size() >= Config.ProducerChunk)
      pushPending();
    return;
  }
  size_t N = Scratch.size();
  if (N == 0)
    return;
  if (!Ring.tryPushAll(Scratch.data(), N)) {
    if (!Structural && Config.Policy == BackpressurePolicy::Drop) {
      DroppedEvents.fetch_add(1, std::memory_order_relaxed);
      Scratch.clear();
      return;
    }
    pushPending(); // spins until space frees up
    return;
  }
  uint64_t Total = Pushed.load(std::memory_order_relaxed) + N;
  Pushed.store(Total, std::memory_order_relaxed);
  uint64_t Depth = Total - Consumed.load(std::memory_order_relaxed);
  if (Depth > MaxQueueDepth.load(std::memory_order_relaxed))
    MaxQueueDepth.store(Depth, std::memory_order_relaxed);
  Scratch.clear();
}

void AsyncPipeline::flush() {
  pushPending();
  uint64_t Target = Pushed.load(std::memory_order_relaxed);
  if (Config.Drain == DrainMode::Deferred)
    wakeConsumer();
  while (Consumed.load(std::memory_order_acquire) < Target)
    std::this_thread::yield();
}

void AsyncPipeline::stop() {
  if (!Builder.joinable())
    return;
  flush();
  StopRequested.store(true, std::memory_order_release);
  if (Config.Drain == DrainMode::Deferred)
    wakeConsumer();
  Builder.join();
}

void AsyncPipeline::consumerMain() {
  std::vector<trace::TraceRecord> Buf(Config.DrainBatch ? Config.DrainBatch
                                                        : 1);
  // Recording tee: the drained batches double as the trace artifact, so
  // the loop thread never pays for encoding the file.
  bool Tee = !Config.RecordPath.empty();
  if (Tee && !RecWriter.open(Config.RecordPath, Config.RecordVersion)) {
    RecordFailed.store(true, std::memory_order_relaxed);
    Tee = false;
  }
  while (true) {
    // Watchdog heartbeat: one relaxed store per pass (and per batch below)
    // proves the builder is alive and making progress.
    HeartbeatNs.store(nsSinceStart(), std::memory_order_relaxed);
    if (Config.Drain == DrainMode::Deferred) {
      // Park *before* touching the ring: records buffer until flush()/
      // stop() asks for a drain or the producer overflows the ring. The
      // flag persists across a drain pass, so a wake that arrives while
      // we are draining just triggers one more (possibly empty) pass —
      // never a lost request.
      std::unique_lock<std::mutex> Lock(WakeMutex);
      WakeCv.wait(Lock, [this] { return WakeRequested; });
      WakeRequested = false;
    }
    size_t N;
    while ((N = Ring.tryPopBatch(Buf.data(), Buf.size())) > 0) {
      if (Tee) {
        if (RecWriter.append(Buf.data(), N)) {
          RecordedBytes.store(RecWriter.recordBytes(),
                              std::memory_order_relaxed);
        } else {
          RecordFailed.store(true, std::memory_order_relaxed);
          Tee = false;
        }
      }
      Decoder.decode(Buf.data(), N, Sink);
      // Batch boundary on the builder thread: the sink may retire quiesced
      // graph regions here, off the event-loop thread's critical path.
      Sink.onBatchBoundary();
      // Release so flush()'s acquire load sees the sink writes of this
      // batch.
      Consumed.fetch_add(N, std::memory_order_release);
      HeartbeatNs.store(nsSinceStart(), std::memory_order_relaxed);
    }
    if (StopRequested.load(std::memory_order_acquire) && Ring.emptyApprox())
      break;
    if (Config.Drain == DrainMode::Concurrent)
      std::this_thread::yield();
  }
  if (RecWriter.isOpen()) {
    // The producer is parked in stop()'s join, so the global symbol table
    // is quiescent for the symbol-section write.
    if (!RecWriter.finalize())
      RecordFailed.store(true, std::memory_order_relaxed);
    RecordedBytes.store(RecWriter.recordBytes(), std::memory_order_relaxed);
  }
}

void AsyncPipeline::emitEnd(std::chrono::steady_clock::time_point T0) {
  if (!SamplingOn)
    return;
  if (CalibrateLeft) {
    auto Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - T0)
                  .count();
    --CalibrateLeft;
    CalibNs += static_cast<uint64_t>(Ns);
    ++CalibCount;
    EstEmitNs.store(CalibNs / CalibCount, std::memory_order_relaxed);
    EstSpentNs.fetch_add(static_cast<uint64_t>(Ns),
                         std::memory_order_relaxed);
    return;
  }
  // Past calibration: charge the average without touching the clock.
  EstSpentNs.fetch_add(EstEmitNs.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
}

void AsyncPipeline::onTickBoundary(const instr::TickBoundaryEvent &E) {
  (void)E;
  // Bound chunked-producer latency to one loop turn — but only when the
  // builder is actually consuming live. In Deferred mode it is parked
  // until flush()/stop(), so spilling partial chunks per tick would only
  // defeat the chunk amortization without making the graph any fresher.
  if (Config.Drain == DrainMode::Concurrent &&
      Config.Policy != BackpressurePolicy::Drop && Config.ProducerChunk)
    pushPending();
  // Builder-thread watchdog: a live (Concurrent) builder that has not made
  // progress for WatchdogStallMs while a backlog exists is stalled. One
  // warning per episode; counting continues either way.
  if (Config.WatchdogStallMs && Config.Drain == DrainMode::Concurrent) {
    uint64_t Depth = Pushed.load(std::memory_order_relaxed) -
                     Consumed.load(std::memory_order_relaxed);
    uint64_t NowNs = nsSinceStart();
    uint64_t Hb = HeartbeatNs.load(std::memory_order_relaxed);
    if (Depth > 0 && NowNs > Hb &&
        NowNs - Hb > uint64_t(Config.WatchdogStallMs) * 1000000) {
      if (!InStall) {
        InStall = true;
        WatchdogStalls.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr,
                     "asyncg: pipeline builder thread stalled for %llums "
                     "with %llu records queued\n",
                     static_cast<unsigned long long>((NowNs - Hb) / 1000000),
                     static_cast<unsigned long long>(Depth));
      }
    } else {
      InStall = false;
    }
  }
  // Degradation-ladder bookkeeping: the per-tick sampling decision for the
  // Sampled tier, and the quiet-ring recovery countdown.
  if (Config.Policy == BackpressurePolicy::Degrade) {
    ++LadderTicks;
    uint32_t Stride =
        Config.LadderSampleStride ? Config.LadderSampleStride : 1;
    LadderSampleTick = (LadderTicks % Stride) == 0;
    if (LadderTier != DegradeTier::Lossless) {
      uint64_t Depth = Pushed.load(std::memory_order_relaxed) -
                       Consumed.load(std::memory_order_relaxed);
      double LowWater =
          static_cast<double>(Ring.capacity()) * Config.RecoverLowWaterPct /
          100.0;
      if (static_cast<double>(Depth) <= LowWater) {
        if (++QuietTicks >= Config.RecoverQuietTicks) {
          setTier(
              static_cast<DegradeTier>(static_cast<uint8_t>(LadderTier) - 1));
          Recoveries.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        QuietTicks = 0;
      }
    }
  }
  if (!SamplingOn)
    return;
  TotalTicks.fetch_add(1, std::memory_order_relaxed);
  if (CalibrateLeft) {
    // Still calibrating the per-event cost: emit everything.
    SampleThisTick = true;
    SampledTicks.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto ElapsedNs = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  double AllowedNs =
      static_cast<double>(ElapsedNs) * Config.SampleBudgetPct / 100.0;
  SampleThisTick = static_cast<double>(EstSpentNs.load(
                       std::memory_order_relaxed)) <= AllowedNs;
  if (SampleThisTick)
    SampledTicks.fetch_add(1, std::memory_order_relaxed);
}

void AsyncPipeline::onFunctionEnter(const instr::FunctionEnterEvent &E) {
  auto T0 = emitStart();
  Encoder.functionEnter(E, Scratch);
  pushScratch(/*Structural=*/true);
  emitEnd(T0);
}

void AsyncPipeline::onFunctionExit(const instr::FunctionExitEvent &E) {
  auto T0 = emitStart();
  Encoder.functionExit(E, Scratch);
  pushScratch(/*Structural=*/true);
  emitEnd(T0);
}

void AsyncPipeline::onApiCall(const instr::ApiCallEvent &E) {
  if (!decorationGate())
    return;
  auto T0 = emitStart();
  Encoder.apiCall(E, Scratch);
  pushScratch(/*Structural=*/false);
  emitEnd(T0);
}

void AsyncPipeline::onObjectCreate(const instr::ObjectCreateEvent &E) {
  if (!decorationGate())
    return;
  auto T0 = emitStart();
  Encoder.objectCreate(E, Scratch);
  pushScratch(/*Structural=*/false);
  emitEnd(T0);
}

void AsyncPipeline::onReactionResult(const instr::ReactionResultEvent &E) {
  if (!decorationGate())
    return;
  auto T0 = emitStart();
  Encoder.reactionResult(E, Scratch);
  pushScratch(/*Structural=*/false);
  emitEnd(T0);
}

void AsyncPipeline::onPromiseLink(const instr::PromiseLinkEvent &E) {
  if (!decorationGate())
    return;
  auto T0 = emitStart();
  Encoder.promiseLink(E, Scratch);
  pushScratch(/*Structural=*/false);
  emitEnd(T0);
}

void AsyncPipeline::onObjectRelease(const instr::ObjectReleaseEvent &E) {
  auto T0 = emitStart();
  Encoder.objectRelease(E, Scratch);
  // Structural: region-pending accounting depends on every release being
  // observed, so these never drop under BackpressurePolicy::Drop and are
  // never skipped by sampling.
  pushScratch(/*Structural=*/true);
  emitEnd(T0);
}

void AsyncPipeline::onLoopEnd(const instr::LoopEndEvent &E) {
  Encoder.loopEnd(E, Scratch);
  pushScratch(/*Structural=*/true);
  // The loop is over: spill any partial chunk so flush() has nothing left
  // to do on the producer side.
  pushPending();
}
