//===- AsyncPipeline.cpp - Off-thread Async Graph construction ----------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "ag/AsyncPipeline.h"

#include <cassert>
#include <chrono>

using namespace asyncg;
using namespace asyncg::ag;

AsyncPipeline::AsyncPipeline(instr::AnalysisBase &Sink, PipelineConfig Config)
    : Sink(Sink), Config(Config), Ring(Config.RingCapacity) {
  assert(Ring.capacity() >= 1024 &&
         "ring too small for the largest event span");
  Scratch.reserve(64);
  Builder = std::thread([this] { consumerMain(); });
}

AsyncPipeline::~AsyncPipeline() { stop(); }

void AsyncPipeline::wakeConsumer() {
  {
    std::lock_guard<std::mutex> Lock(WakeMutex);
    WakeRequested = true;
  }
  WakeCv.notify_one();
}

void AsyncPipeline::pushScratch(bool Structural) {
  size_t N = Scratch.size();
  if (N == 0)
    return;
  const trace::TraceRecord *Data = Scratch.data();
  if (!Ring.tryPushAll(Data, N)) {
    if (!Structural && Config.Policy == BackpressurePolicy::Drop) {
      DroppedEvents.fetch_add(1, std::memory_order_relaxed);
      Scratch.clear();
      return;
    }
    // Ring overflow in deferred mode: the builder thread must drain during
    // the run after all.
    if (Config.Drain == DrainMode::Deferred)
      wakeConsumer();
    BlockedPushes.fetch_add(1, std::memory_order_relaxed);
    auto T0 = std::chrono::steady_clock::now();
    do
      std::this_thread::yield();
    while (!Ring.tryPushAll(Data, N));
    auto Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - T0)
                  .count();
    BlockedTimeNs.fetch_add(static_cast<uint64_t>(Ns),
                            std::memory_order_relaxed);
  }
  uint64_t Total = Pushed.fetch_add(N, std::memory_order_relaxed) + N;
  uint64_t Depth = Total - Consumed.load(std::memory_order_relaxed);
  if (Depth > MaxQueueDepth.load(std::memory_order_relaxed))
    MaxQueueDepth.store(Depth, std::memory_order_relaxed);
  Scratch.clear();
}

void AsyncPipeline::flush() {
  uint64_t Target = Pushed.load(std::memory_order_relaxed);
  if (Config.Drain == DrainMode::Deferred)
    wakeConsumer();
  while (Consumed.load(std::memory_order_acquire) < Target)
    std::this_thread::yield();
}

void AsyncPipeline::stop() {
  if (!Builder.joinable())
    return;
  flush();
  StopRequested.store(true, std::memory_order_release);
  if (Config.Drain == DrainMode::Deferred)
    wakeConsumer();
  Builder.join();
}

void AsyncPipeline::consumerMain() {
  std::vector<trace::TraceRecord> Buf(Config.DrainBatch ? Config.DrainBatch
                                                        : 1);
  while (true) {
    if (Config.Drain == DrainMode::Deferred) {
      // Park *before* touching the ring: records buffer until flush()/
      // stop() asks for a drain or the producer overflows the ring. The
      // flag persists across a drain pass, so a wake that arrives while
      // we are draining just triggers one more (possibly empty) pass —
      // never a lost request.
      std::unique_lock<std::mutex> Lock(WakeMutex);
      WakeCv.wait(Lock, [this] { return WakeRequested; });
      WakeRequested = false;
    }
    size_t N;
    while ((N = Ring.tryPopBatch(Buf.data(), Buf.size())) > 0) {
      Decoder.decode(Buf.data(), N, Sink);
      // Batch boundary on the builder thread: the sink may retire quiesced
      // graph regions here, off the event-loop thread's critical path.
      Sink.onBatchBoundary();
      // Release so flush()'s acquire load sees the sink writes of this
      // batch.
      Consumed.fetch_add(N, std::memory_order_release);
    }
    if (StopRequested.load(std::memory_order_acquire) && Ring.emptyApprox())
      break;
    if (Config.Drain == DrainMode::Concurrent)
      std::this_thread::yield();
  }
}

void AsyncPipeline::onFunctionEnter(const instr::FunctionEnterEvent &E) {
  Encoder.functionEnter(E, Scratch);
  pushScratch(/*Structural=*/true);
}

void AsyncPipeline::onFunctionExit(const instr::FunctionExitEvent &E) {
  Encoder.functionExit(E, Scratch);
  pushScratch(/*Structural=*/true);
}

void AsyncPipeline::onApiCall(const instr::ApiCallEvent &E) {
  Encoder.apiCall(E, Scratch);
  pushScratch(/*Structural=*/false);
}

void AsyncPipeline::onObjectCreate(const instr::ObjectCreateEvent &E) {
  Encoder.objectCreate(E, Scratch);
  pushScratch(/*Structural=*/false);
}

void AsyncPipeline::onReactionResult(const instr::ReactionResultEvent &E) {
  Encoder.reactionResult(E, Scratch);
  pushScratch(/*Structural=*/false);
}

void AsyncPipeline::onPromiseLink(const instr::PromiseLinkEvent &E) {
  Encoder.promiseLink(E, Scratch);
  pushScratch(/*Structural=*/false);
}

void AsyncPipeline::onObjectRelease(const instr::ObjectReleaseEvent &E) {
  Encoder.objectRelease(E, Scratch);
  // Structural: region-pending accounting depends on every release being
  // observed, so these never drop under BackpressurePolicy::Drop.
  pushScratch(/*Structural=*/true);
}

void AsyncPipeline::onLoopEnd(const instr::LoopEndEvent &E) {
  Encoder.loopEnd(E, Scratch);
  pushScratch(/*Structural=*/true);
}
