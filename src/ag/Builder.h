//===- Builder.h - AsyncG: builds the Async Graph at runtime ----*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AsyncG analysis (§V): attaches to the instrumentation hooks and
/// builds the Async Graph of the running application.
///
///  - Algorithm 1: a shadow stack identifies event-loop ticks — a new tick
///    starts when a function is entered with an empty shadow stack; ticks
///    are appended to the graph only when non-empty.
///  - Algorithm 2: per-API templates process asynchronous API calls into
///    CR nodes and pending-registration lists.
///  - Algorithm 3: a context validator maps every callback execution to
///    the registration that scheduled it, creating CE nodes, dashed
///    binding edges, and causal edges from the CR or the CT (trigger).
///
/// Bug detectors subscribe as GraphObservers and analyze the graph online.
/// The builder can be attached/detached from the runtime's hook registry
/// at any time, and its configuration supports the paper's evaluation
/// settings (full tracking vs promise tracking excluded, Fig. 6(a)).
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_AG_BUILDER_H
#define ASYNCG_AG_BUILDER_H

#include "ag/Graph.h"
#include "ag/Observer.h"
#include "ag/Validator.h"
#include "instr/Hooks.h"
#include "support/FlatMap.h"

#include <string>
#include <vector>

namespace asyncg {
namespace ag {

/// Builder configuration (the Fig. 6(a) instrumentation settings).
struct BuilderConfig {
  /// Track promise-related APIs (the "withpromise" setting); false is the
  /// paper's "nopromise" configuration.
  bool TrackPromises = true;
  /// Track emitter APIs (always on in the paper; exposed for ablation).
  bool TrackEmitters = true;
  /// Build graph nodes/edges. When false, only the shadow stack and tick
  /// accounting run (ablation baseline for the analysis cost benches).
  bool BuildGraph = true;
  /// Storage pre-sizing hints passed to AsyncGraph::reserveHint(); raise
  /// them for long-running workloads to avoid growth reallocations.
  size_t ExpectedNodes = 256;
  size_t ExpectedEdges = 512;
  /// Tick-epoch retirement: once a tick-rooted region has no pending
  /// registrations, live listeners/timers, or unreleased tracked objects,
  /// and has fallen RetainWindow ticks behind the newest committed tick,
  /// its nodes are folded into the graph's RetiredSummary and reclaimed.
  /// Off by default: the full graph is the paper's behavior, and short
  /// runs want it for post-mortem queries.
  bool Retire = false;
  /// How many committed ticks a quiesced region is retained before being
  /// retired (the live window available to detectors and viz).
  uint32_t RetainWindow = 8;
};

/// The AsyncG dynamic analysis.
class AsyncGBuilder : public instr::AnalysisBase {
public:
  explicit AsyncGBuilder(BuilderConfig Config = BuilderConfig());
  ~AsyncGBuilder() override;

  const char *analysisName() const override { return "AsyncG"; }

  const BuilderConfig &config() const { return Config; }
  AsyncGraph &graph() { return Graph; }
  const AsyncGraph &graph() const { return Graph; }

  /// Attaches an online analysis (not owned).
  void addObserver(GraphObserver *O) { Observers.push_back(O); }

  /// \name Builder context exposed to observers
  /// @{

  /// The innermost callback-execution node currently running, or
  /// InvalidNode.
  NodeId currentCe() const;

  /// All active CE nodes, outermost first (the execution context stack).
  std::vector<NodeId> activeCes() const;

  /// Index of the currently open tick (0 before the first).
  uint32_t currentTickIndex() const { return CurTick.Index; }
  jsrt::PhaseKind currentTickPhase() const { return CurTick.Phase; }

  /// Total ticks opened (including empty ones that were not committed).
  uint64_t ticksOpened() const { return TickCounter; }

  /// Total ticks committed to the graph, counting retired ones. Monotonic,
  /// so stream-merge layers can use it to measure tick-window progress
  /// even when retirement reclaims the tick storage itself.
  uint64_t ticksCommitted() const { return CommittedCount; }
  /// @}

  /// Bytes retained by the builder: the graph plus the validator's pending
  /// lists and the retirement accounting. The global symbol table is
  /// reported separately by symtab().memoryUsage().
  size_t memoryFootprint() const;

  /// \name AnalysisBase hooks
  /// @{
  void onFunctionEnter(const instr::FunctionEnterEvent &E) override;
  void onFunctionExit(const instr::FunctionExitEvent &E) override;
  void onApiCall(const instr::ApiCallEvent &E) override;
  void onObjectCreate(const instr::ObjectCreateEvent &E) override;
  void onReactionResult(const instr::ReactionResultEvent &E) override;
  void onPromiseLink(const instr::PromiseLinkEvent &E) override;
  void onObjectRelease(const instr::ObjectReleaseEvent &E) override;
  void onLoopEnd(const instr::LoopEndEvent &E) override;
  /// Safe point between pipeline/replay batches: retires eligible regions
  /// when Config.Retire is on and no tick is open.
  void onBatchBoundary() override;
  /// @}

private:
  /// True when \p Api should be ignored under the current configuration.
  bool filtered(jsrt::ApiKind Api) const;

  /// Opens a new tick of the given phase (committing the previous one if
  /// it has nodes) — Algorithm 1 lines 2-4.
  void openTick(jsrt::PhaseKind Phase);

  /// Commits the current tick to the graph if non-empty — Algorithm 1
  /// lines 9-10.
  void commitTick();

  /// Makes sure some tick is open before adding nodes outside callbacks.
  void ensureTick(jsrt::PhaseKind Phase);

  /// Adds a node, wiring the happens-in edge from the innermost active CE
  /// and notifying observers.
  NodeId addNode(AgNode N);

  void addEdge(NodeId From, NodeId To, EdgeKind Kind, Symbol Label = Symbol());

  /// "L7: handler" display label for a CE executing \p F (built in the
  /// scratch buffer, interned).
  Symbol ceLabel(const jsrt::Function &F);

  void processRegistration(const instr::ApiCallEvent &E);
  void processTrigger(const instr::ApiCallEvent &E);
  void processCombinator(const instr::ApiCallEvent &E);
  void processRemoval(const instr::ApiCallEvent &E);

  /// \name Tick-epoch retirement accounting
  /// Each committed tick roots a region; RegionPending counts the
  /// obligations pinning it: one per pending registration whose CR lives
  /// in the tick, one per unreleased tracked object whose OB lives in it.
  /// A region whose count reaches zero after commit is quiesced; once it
  /// falls RetainWindow ticks behind the newest committed tick it is
  /// retired (observers notified, then storage reclaimed).
  /// @{
  void pinRegion(uint32_t Tick);
  void unpinRegion(uint32_t Tick);
  /// Retires every quiesced region outside the retain window. Called at
  /// commitTick and from onBatchBoundary (never while a tick is open).
  void runRetireScan();
  /// @}

  BuilderConfig Config;
  AsyncGraph Graph;
  std::vector<GraphObserver *> Observers;

  /// False until the first observed top-level dispatch: when attached in
  /// the middle of a run, the builder starts from the following tick
  /// (§V-B) and ignores enter/exit events of frames it never saw open.
  bool Synced = false;

  /// Algorithm 1's sstack (function ids).
  std::vector<jsrt::FunctionId> ShadowStack;
  /// Per-frame CE node (InvalidNode for plain calls), parallel to
  /// ShadowStack.
  std::vector<NodeId> CeStack;

  /// The currently open tick (committed when non-empty).
  AgTick CurTick;
  bool TickOpen = false;
  uint64_t TickCounter = 0;

  /// The pending registration lists L_pending^cb, keyed by callback
  /// function identity (flat-hash: probed on every function enter).
  FlatMap<jsrt::FunctionId, std::vector<PendingReg>> Pending;

  /// Obligation count per (committed or open) tick index; absent = zero.
  FlatMap<uint32_t, uint32_t> RegionPending;
  /// Committed ticks whose obligation count dropped to zero, awaiting the
  /// retain window. May transiently hold duplicates/live entries; the
  /// retire scan re-checks.
  std::vector<uint32_t> Quiesced;
  /// Commit ordinal per retained committed tick (1-based); a region is
  /// outside the retain window once CommittedCount has advanced
  /// RetainWindow past its ordinal, i.e. the window is measured in
  /// committed (rendered) ticks, not opened tick indices. Erased at
  /// retirement, so the map is proportional to the retained ticks.
  FlatMap<uint32_t, uint64_t> RegionOrdinal;
  uint64_t CommittedCount = 0;

  /// Reusable scratch for FlatMap key collection during releases.
  std::vector<jsrt::FunctionId> KeyScratch;

  /// Reusable label-building buffer: steady state allocates nothing.
  std::string Scratch;
};

} // namespace ag
} // namespace asyncg

#endif // ASYNCG_AG_BUILDER_H
