//===- ShardedGraph.cpp - Cross-loop Async Graph merge ------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "ag/ShardedGraph.h"

#include <cassert>

using namespace asyncg;
using namespace asyncg::ag;

void ShardedGraph::mergeShard(const AsyncGraph &In, uint32_t Shard) {
  assert(Shard >= Stats.Shards && "merge shards in increasing id order");
  Stats.Shards = Shard + 1;

  // Tick indices are renumbered shard-major: shard s's ticks keep their
  // loop-local indices shifted past everything merged so far. With one
  // shard the shift is zero and the copy is exact.

  // Old node id -> merged node id, for this shard's edges and warnings.
  // Ids are dense (the parity-relevant graphs never retire, and retired
  // slots just leave unused remap entries).
  std::vector<NodeId> Remap(In.nodes().size(), InvalidNode);

  const uint32_t ShardBase = IndexBase;
  uint32_t MaxIndex = IndexBase;
  for (const AgTick &T : In.ticks()) {
    if (T.Retired) {
      ++Stats.SkippedRetiredTicks;
      continue;
    }
    AgTick NT;
    NT.Index = ShardBase + T.Index;
    NT.Phase = T.Phase;
    NT.Shard = Shard;
    if (NT.Index > MaxIndex)
      MaxIndex = NT.Index;
    for (NodeId Old : T.Nodes) {
      AgNode N = In.node(Old); // copy; addNode reassigns Id and Tick
      Remap[Old] = G.addNode(std::move(N), NT);
      ++Stats.Nodes;
    }
    G.appendTick(std::move(NT));
    ++Stats.Ticks;
  }
  IndexBase = MaxIndex;

  // Edges stay within their shard graph, so they can be re-added as soon
  // as the shard's nodes exist; storage order is preserved, which is
  // what keeps a one-shard merge byte-identical in DOT.
  for (uint32_t E = 0; E != In.edges().size(); ++E) {
    if (In.deadEdge(E))
      continue;
    const AgEdge &Ed = In.edge(E);
    NodeId From = Remap[Ed.From], To = Remap[Ed.To];
    if (From == InvalidNode || To == InvalidNode)
      continue; // endpoint's tick retired after the edge survived
    G.addEdge(From, To, Ed.Kind, Ed.Label);
    ++Stats.Edges;
  }

  for (const Warning &W : In.warnings()) {
    Warning NW = W;
    NW.Node = (W.Node != InvalidNode && W.Node < Remap.size()) ? Remap[W.Node]
                                                               : InvalidNode;
    if (NW.Tick != 0)
      NW.Tick += ShardBase;
    if (G.addWarning(std::move(NW)))
      ++Stats.Warnings;
  }
}

const MergeStats &ShardedGraph::finishMerge() {
  // Join cross-loop handoffs: every delivery execution (a top-level CE
  // whose Api is ClusterRecv and whose Sched is the sender-minted handoff
  // id) gains a Causal edge from the sending shard's CT. Loop-local CEs
  // never carry ClusterRecv, so single-loop graphs are untouched.
  static const Symbol XLoop("xloop");
  for (const AgNode &N : G.nodes()) {
    if (N.Id == InvalidNode || N.Kind != NodeKind::CE ||
        N.Api != jsrt::ApiKind::ClusterRecv || N.Sched == 0)
      continue;
    NodeId Ct = G.triggerNode(N.Sched);
    if (Ct == InvalidNode) {
      ++Stats.UnresolvedHandoffs;
      continue;
    }
    G.addEdge(Ct, N.Id, EdgeKind::Causal, XLoop);
    ++Stats.CrossLoopEdges;
  }
  return Stats;
}

MergeStats ShardedGraph::build(const std::vector<const AsyncGraph *> &Shards) {
  assert(G.ticks().empty() && "ShardedGraph is single-shot");
  Stats = MergeStats();
  IndexBase = 0;
  for (uint32_t S = 0; S != Shards.size(); ++S)
    mergeShard(*Shards[S], S);
  return finishMerge();
}
