//===- IngestHub.cpp - Parallel trace ingestion + stream merge ------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "ag/IngestHub.h"

#include "instr/TraceCodec.h"
#include "support/MpmcQueue.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#endif

using namespace asyncg;
using namespace asyncg::ag;

namespace {

/// Slot lifecycle: the committer marks a slot Queued and pushes its frame
/// task; whichever thread pops the task decodes into the slot and flips it
/// to Done or Error; the committer consumes it in frame order and recycles
/// it to Empty. The queue's push/pop pair carries the ownership handoff,
/// the Done store/load pair carries the decoded records back.
enum SlotState : int { SlotEmpty = 0, SlotQueued, SlotDone, SlotError };

/// Touch the leading cache lines of the next frame while the current one
/// is being applied; the bulk of the paging is handled by the madvise
/// below, this hides the first-line miss of each frame switch.
inline void prefetchFrame(const uint8_t *P, size_t Bytes) {
#if defined(__GNUC__)
  size_t N = Bytes < 4096 ? Bytes : size_t(4096);
  for (size_t O = 0; O < N; O += 64)
    __builtin_prefetch(P + O, 0, 1);
#else
  (void)P;
  (void)Bytes;
#endif
}

/// Tell the kernel the record section will be read front to back soon.
inline void adviseWillNeed(const uint8_t *P, size_t Len) {
#if defined(__unix__) || defined(__APPLE__)
  long Page = sysconf(_SC_PAGESIZE);
  if (Page <= 0 || Len == 0)
    return;
  auto Addr = reinterpret_cast<uintptr_t>(P);
  uintptr_t Aligned = Addr & ~static_cast<uintptr_t>(Page - 1);
  posix_madvise(reinterpret_cast<void *>(Aligned), Len + (Addr - Aligned),
                POSIX_MADV_WILLNEED);
#else
  (void)P;
  (void)Len;
#endif
}

} // namespace

//===----------------------------------------------------------------------===//
// Stream and decode-pool state
//===----------------------------------------------------------------------===//

struct IngestHub::Stream {
  explicit Stream(size_t Idx, std::string Path, const BuilderConfig &Config)
      : Idx(Idx), Path(std::move(Path)),
        Builder(new AsyncGBuilder(Config)) {}

  size_t Idx;
  std::string Path;
  std::unique_ptr<AsyncGBuilder> Builder;

  /// Keeps the mapping (and with it Base) alive for the hub's lifetime.
  trace::TraceMmapReader Map;
  instr::TraceDecoder Decoder;

  /// Frame plan from the pre-scan. Offsets are relative to Base, which is
  /// the record section for validated streams and the whole image for
  /// recovery scans. Never shrunk after prepare (decode workers read it);
  /// truncation lowers Limit instead.
  std::vector<trace::TraceFrameRef> Frames;
  const uint8_t *Base = nullptr;
  uint64_t ImageSize = 0;
  size_t Limit = 0;

  size_t NextFrame = 0;  ///< next frame to commit (in order)
  size_t NextQueued = 0; ///< next frame to hand to the decode pool
  uint64_t WindowBase = 0;

  bool Recovered = false;
  bool Fallback = false;
  bool Drained = false;
  std::vector<SymbolId> RecoveryRemap;
  uint32_t RemapInstalled = 0;
  trace::TraceRecoveryInfo Recovery;

  /// Scratch for paths that materialize a frame before applying it
  /// (recovered streams at Jobs == 1: a half-decoded frame must not leak
  /// events into the builder).
  std::vector<trace::TraceRecord> Scratch;

  /// Handoff-stat scan cursor into the builder graph's node storage.
  size_t ScanPos = 0;

  struct Slot {
    std::vector<trace::TraceRecord> Records;
    std::string Err;
    std::atomic<int> State{SlotEmpty};
  };
  /// Sliding decode window; frame F lands in slot F % Slots.size().
  std::vector<Slot> Slots;
};

struct IngestHub::DecodePool {
  struct Task {
    Stream *S = nullptr;
    size_t FrameIdx = 0;
  };

  DecodePool(unsigned Workers, size_t QueueCap) : Queue(QueueCap) {
    Threads.reserve(Workers);
    for (unsigned I = 0; I != Workers; ++I)
      Threads.emplace_back([this] { workerMain(); });
  }

  ~DecodePool() {
    {
      std::lock_guard<std::mutex> L(M);
      Stop.store(true, std::memory_order_relaxed);
    }
    Cv.notify_all();
    for (std::thread &T : Threads)
      T.join();
  }

  /// Pops and decodes one frame task; false when the queue is empty. Also
  /// the committer's steal entry point: decode is stateless, so any thread
  /// may serve any task.
  bool runOne() {
    Task T;
    if (!Queue.tryPop(T))
      return false;
    Stream::Slot &SL = T.S->Slots[T.FrameIdx % T.S->Slots.size()];
    bool Ok = decodeFrameInto(*T.S, T.FrameIdx, SL.Records, &SL.Err);
    SL.State.store(Ok ? SlotDone : SlotError, std::memory_order_release);
    Cv.notify_all();
    return true;
  }

  void notifyWork() { Cv.notify_all(); }

  void waitBriefly() {
    std::unique_lock<std::mutex> L(M);
    Cv.wait_for(L, std::chrono::milliseconds(1));
  }

  void workerMain() {
    while (!Stop.load(std::memory_order_relaxed)) {
      if (runOne())
        continue;
      std::unique_lock<std::mutex> L(M);
      if (Stop.load(std::memory_order_relaxed) || Queue.sizeApprox() != 0)
        continue;
      Cv.wait_for(L, std::chrono::milliseconds(1));
    }
  }

  MpmcQueue<Task> Queue;
  std::mutex M;
  std::condition_variable Cv;
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Threads;
};

//===----------------------------------------------------------------------===//
// IngestHub
//===----------------------------------------------------------------------===//

IngestHub::IngestHub(IngestOptions Opts) : Opts(std::move(Opts)) {
  if (this->Opts.Jobs == 0)
    this->Opts.Jobs = 1;
  if (this->Opts.WindowTicks == 0)
    this->Opts.WindowTicks = 1;
}

IngestHub::~IngestHub() = default;

size_t IngestHub::addFile(const std::string &Path) {
  size_t Idx = Streams.size();
  Streams.emplace_back(new Stream(Idx, Path, Opts.Builder));
  Stats.Streams.emplace_back();
  Stats.Streams.back().Path = Path;
  return Idx;
}

AsyncGBuilder &IngestHub::builder(size_t I) { return *Streams[I]->Builder; }

const AsyncGBuilder &IngestHub::builder(size_t I) const {
  return *Streams[I]->Builder;
}

const AsyncGraph &IngestHub::graph() const {
  if (Streams.size() > 1)
    return Merged.merged();
  return Streams.front()->Builder->graph();
}

bool IngestHub::decodeFrameInto(const Stream &S, size_t FrameIdx,
                                std::vector<trace::TraceRecord> &Out,
                                std::string *Err) {
  const trace::TraceFrameRef &F = S.Frames[FrameIdx];
  Out.clear();
  Out.reserve(F.Records);
  size_t Consumed = 0;
  if (!trace::decodeV4Frame(
          S.Base + F.Offset, F.Bytes, Consumed,
          [&Out](const trace::TraceRecord &R) { Out.push_back(R); }, Err))
    return false;
  if (Consumed != F.Bytes) {
    if (Err)
      *Err = "corrupt trace: frame size disagrees with scan";
    return false;
  }
  return true;
}

bool IngestHub::prepareStream(Stream &S, std::string *Err) {
  IngestStreamStats &St = Stats.Streams[S.Idx];
  std::string OpenErr;
  if (S.Map.open(S.Path, &OpenErr)) {
    St.Version = S.Map.header().Version;
    if (St.Version <= trace::TraceLastRawVersion) {
      // Raw rows have no frames to parallelize; replayTrace is already the
      // best path for them.
      S.Fallback = true;
      St.Fallback = true;
      return true;
    }
    S.Base = S.Map.recordData();
    S.ImageSize = S.Map.size();
    if (!trace::scanV4Frames(S.Base, S.Map.recordByteSize(),
                             S.Map.header().RecordCount, S.Frames, Err))
      return false; // validated images never trip this
    S.Decoder.setSymbolRemap(S.Map.symbolRemap());
    St.RecordBytes = S.Map.recordByteSize();
    adviseWillNeed(S.Base, static_cast<size_t>(S.Map.recordByteSize()));
  } else if (OpenErr == "mmap unavailable on this platform" ||
             OpenErr == "cannot open trace file" ||
             OpenErr == "cannot mmap trace file") {
    // Not a content problem; replayTrace's stdio path handles (or properly
    // reports) these.
    S.Fallback = true;
    St.Fallback = true;
    return true;
  } else {
    // Validation failed: torn recording. Locate the clean frame prefix
    // through the checkpoint chain; if the image is not recoverable v4
    // either, fall back so replayTrace reports the original failure.
    if (!S.Map.openRaw(S.Path, nullptr) ||
        !trace::scanV4Recovery(S.Map.data(), S.Map.size(), S.Frames,
                               S.RecoveryRemap, &S.Recovery, nullptr)) {
      S.Fallback = true;
      St.Fallback = true;
      return true;
    }
    S.Recovered = true;
    St.Recovered = true;
    St.Version = trace::TraceVersion;
    St.DroppedTailBytes = S.Recovery.DroppedBytes;
    S.Base = S.Map.data();
    S.ImageSize = S.Map.size();
    adviseWillNeed(S.Base, static_cast<size_t>(S.ImageSize));
  }

  S.Limit = S.Frames.size();
  if (Opts.PreSize) {
    // Pre-size the graph (node/edge/tick/adjacency storage and the four
    // node indices) and the decoder's function table from the exact record
    // count the pre-scan established. The divisors slightly overshoot the
    // observed record:node (~2.8), record:edge (~1.7), record:tick (~7.5)
    // and record:funcdef (~12) ratios of the paper workloads so the
    // *last* — and costliest — rehash/reallocation never happens
    // mid-ingest.
    uint64_t Records = 0;
    for (const trace::TraceFrameRef &F : S.Frames)
      Records += F.Records;
    if (Opts.Builder.BuildGraph)
      S.Builder->graph().reserveHint(
          static_cast<size_t>(Records / 2 + 1024),
          static_cast<size_t>(Records * 2 / 3 + 1024),
          static_cast<size_t>(Records / 6 + 64));
    S.Decoder.reserveFuncs(static_cast<size_t>(Records / 8 + 256));
  }
  if (Opts.Jobs >= 2)
    S.Slots = std::vector<Stream::Slot>(2 * Opts.Jobs + 2);
  return true;
}

void IngestHub::syncRemap(Stream &S, const trace::TraceFrameRef &F) {
  if (!S.Recovered || F.RemapSize == S.RemapInstalled)
    return;
  S.Decoder.setSymbolRemap(std::vector<SymbolId>(
      S.RecoveryRemap.begin(), S.RecoveryRemap.begin() + F.RemapSize));
  S.RemapInstalled = F.RemapSize;
}

bool IngestHub::handleBadFrame(Stream &S, size_t FrameIdx,
                               const std::string &FrameErr, std::string *Err) {
  if (!S.Recovered) {
    if (Err)
      *Err = S.Path + ": " + FrameErr;
    return false;
  }
  // Clean-prefix guarantee: a recovered frame whose varint streams fail to
  // decode is dropped with everything after it, exactly where
  // recoverV4Prefix would have stopped. Frames stays intact for in-flight
  // decode workers; Limit carries the truncation.
  S.Limit = FrameIdx;
  S.Recovery.TailError = FrameErr;
  S.Recovery.DroppedBytes = S.ImageSize - S.Frames[FrameIdx].Offset;
  Stats.Streams[S.Idx].DroppedTailBytes = S.Recovery.DroppedBytes;
  return true;
}

bool IngestHub::pumpStream(Stream &S, std::string *Err) {
  IngestStreamStats &St = Stats.Streams[S.Idx];

  if (S.Fallback) {
    // Whole-stream replay in this stream's first turn: raw traces carry no
    // frame structure to window over, and the merge result is independent
    // of interleaving anyway.
    instr::ReplayStats RS;
    std::string RErr;
    if (!instr::replayTrace(S.Path, *S.Builder, &RErr,
                            instr::ReplayTransport::Auto, &RS)) {
      if (Err)
        *Err = S.Path + ": " + RErr;
      return false;
    }
    St.Version = RS.Version;
    St.Records = RS.Records;
    St.RecordBytes = RS.RecordBytes;
    St.BadRecords = RS.BadRecords;
    St.Recovered = RS.Recovered;
    St.DroppedTailBytes = RS.DroppedTailBytes;
    Stats.Records += RS.Records;
    S.Drained = true;
    return true;
  }

  S.WindowBase = S.Builder->ticksCommitted();
  const bool Windowed = Streams.size() > 1;

  auto Commit = [&](const trace::TraceFrameRef &F, uint64_t N) {
    S.Builder->onBatchBoundary();
    St.Records += N;
    ++St.Frames;
    if (S.Recovered)
      St.RecordBytes += F.Bytes;
    Stats.Records += N;
    ++Stats.Frames;
  };
  auto WindowClosed = [&] {
    return Windowed &&
           S.Builder->ticksCommitted() - S.WindowBase >= Opts.WindowTicks;
  };

  if (Opts.Jobs < 2) {
    // Inline pipelined path: frames decode straight out of the mapping
    // under the batch memo, with the next frame prefetched during apply.
    while (S.NextFrame < S.Limit) {
      const trace::TraceFrameRef &F = S.Frames[S.NextFrame];
      syncRemap(S, F);
      if (S.NextFrame + 1 < S.Limit)
        prefetchFrame(S.Base + S.Frames[S.NextFrame + 1].Offset,
                      S.Frames[S.NextFrame + 1].Bytes);
      std::string FrameErr;
      bool Ok;
      uint64_t Emitted = 0;
      size_t Consumed = 0;
      if (!S.Recovered) {
        S.Decoder.beginBatch();
        Ok = trace::decodeV4Frame(
            S.Base + F.Offset, F.Bytes, Consumed,
            [&](const trace::TraceRecord &R) {
              S.Decoder.decodeOne(R, *S.Builder);
              ++Emitted;
            },
            &FrameErr);
        S.Decoder.endBatch();
      } else {
        // A torn stream's frame may fail mid-decode; materialize it first
        // so the builder only ever sees whole frames.
        Ok = decodeFrameInto(S, S.NextFrame, S.Scratch, &FrameErr);
        if (Ok) {
          S.Decoder.decodeBatch(S.Scratch.data(), S.Scratch.size(),
                                *S.Builder);
          Emitted = S.Scratch.size();
        }
      }
      if (!Ok) {
        if (!handleBadFrame(S, S.NextFrame, FrameErr, Err))
          return false;
        break;
      }
      Commit(F, Emitted);
      ++S.NextFrame;
      if (WindowClosed())
        break;
    }
  } else {
    const size_t W = S.Slots.size();
    while (S.NextFrame < S.Limit) {
      // Keep the decode window primed: up to W frames in flight.
      bool Pushed = false;
      while (S.NextQueued < S.Frames.size() &&
             S.NextQueued < S.NextFrame + W) {
        Stream::Slot &QS = S.Slots[S.NextQueued % W];
        QS.State.store(SlotQueued, std::memory_order_relaxed);
        if (!Pool->Queue.tryPush({&S, S.NextQueued})) {
          QS.State.store(SlotEmpty, std::memory_order_relaxed);
          break;
        }
        Pushed = true;
        ++S.NextQueued;
      }
      if (Pushed)
        Pool->notifyWork();

      Stream::Slot &SL = S.Slots[S.NextFrame % W];
      int State = SL.State.load(std::memory_order_acquire);
      if (State == SlotDone) {
        const trace::TraceFrameRef &F = S.Frames[S.NextFrame];
        syncRemap(S, F);
        S.Decoder.decodeBatch(SL.Records.data(), SL.Records.size(),
                              *S.Builder);
        uint64_t N = SL.Records.size();
        SL.State.store(SlotEmpty, std::memory_order_relaxed);
        Commit(F, N);
        ++S.NextFrame;
        if (WindowClosed())
          break;
        continue;
      }
      if (State == SlotError) {
        std::string FrameErr = SL.Err;
        SL.State.store(SlotEmpty, std::memory_order_relaxed);
        if (!handleBadFrame(S, S.NextFrame, FrameErr, Err))
          return false;
        break;
      }
      // Next frame still decoding: steal a decode task instead of
      // blocking; park briefly only when the queue is dry too.
      if (!Pool->runOne())
        Pool->waitBriefly();
    }
  }

  if (S.NextFrame >= S.Limit)
    S.Drained = true;
  return true;
}

void IngestHub::scanHandoffs(Stream &S) {
  // Node slots are recycled under retirement, which would invalidate the
  // cursor; the live view is only kept for full graphs.
  if (Opts.Builder.Retire)
    return;
  const std::vector<AgNode> &Nodes = S.Builder->graph().nodes();
  for (; S.ScanPos < Nodes.size(); ++S.ScanPos) {
    const AgNode &N = Nodes[S.ScanPos];
    if (N.Id == InvalidNode)
      continue;
    if (N.Kind == NodeKind::CT && N.Trigger != 0) {
      CtSeen[N.Trigger] = 1;
    } else if (N.Kind == NodeKind::CE &&
               N.Api == jsrt::ApiKind::ClusterRecv && N.Sched != 0) {
      ++Stats.HandoffsSeen;
      if (CtSeen.find(N.Sched))
        ++Stats.HandoffsResolvedLive;
      else
        ParkedHandoffs.push_back(N.Sched);
    }
  }
}

void IngestHub::finishStream(Stream &S) {
  Stats.Streams[S.Idx].BadRecords = S.Decoder.badRecords();
}

bool IngestHub::run(std::string *Err) {
  if (Ran) {
    if (Err)
      *Err = "ingest hub is single-shot";
    return false;
  }
  Ran = true;
  if (Streams.empty()) {
    if (Err)
      *Err = "ingest: no input streams";
    return false;
  }

  for (auto &SP : Streams)
    if (!prepareStream(*SP, Err))
      return false;

  bool NeedPool = false;
  if (Opts.Jobs >= 2)
    for (auto &SP : Streams)
      NeedPool |= !SP->Slots.empty();
  if (NeedPool) {
    size_t Cap = Streams.size() * (2 * Opts.Jobs + 2);
    Pool.reset(new DecodePool(Opts.Jobs - 1, Cap < 64 ? 64 : Cap));
  }

  // Bounded round-robin over the live streams; each turn commits up to
  // WindowTicks ticks (single-stream runs drain in one turn).
  bool Ok = true;
  for (bool AllDrained = false; Ok && !AllDrained;) {
    AllDrained = true;
    for (auto &SP : Streams) {
      Stream &S = *SP;
      if (S.Drained)
        continue;
      ++Stats.Windows;
      if (!pumpStream(S, Err)) {
        Ok = false;
        break;
      }
      scanHandoffs(S);
      if (S.Drained)
        finishStream(S);
      else
        AllDrained = false;
    }
  }
  Pool.reset(); // joins the decode workers
  if (!Ok)
    return false;

  // Deliveries whose sender CT arrived in a later window resolve now.
  for (jsrt::ScheduleId Id : ParkedHandoffs)
    if (CtSeen.find(Id))
      ++Stats.HandoffsResolvedLive;

  // Shard-major union in stream order: identical to the single-shot
  // ShardedGraph::build() over the same graphs.
  if (Streams.size() > 1) {
    for (uint32_t I = 0; I != Streams.size(); ++I)
      Merged.mergeShard(Streams[I]->Builder->graph(), I);
    Merged.finishMerge();
  }
  return true;
}
