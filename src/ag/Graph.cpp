//===- Graph.cpp - The Async Graph model --------------------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "ag/Graph.h"

#include <algorithm>
#include <cassert>

using namespace asyncg;
using namespace asyncg::ag;

void AsyncGraph::appendTick(AgTick T) {
  assert(!T.Nodes.empty() && "only non-empty ticks are appended");
  assert((Ticks.empty() || Ticks.back().Index < T.Index) &&
         "tick indices must be increasing");
  Ticks.push_back(std::move(T));
}

NodeId AsyncGraph::addNode(AgNode N, AgTick &T) {
  NodeId Id = static_cast<NodeId>(Nodes.size());
  N.Id = Id;
  N.Tick = T.Index;
  T.Nodes.push_back(Id);

  switch (N.Kind) {
  case NodeKind::OB:
    ObjIndex[N.Obj] = Id;
    break;
  case NodeKind::CR:
    if (N.Sched != 0)
      SchedIndex[N.Sched] = Id;
    break;
  case NodeKind::CT:
    if (N.Trigger != 0)
      TriggerIndex[N.Trigger] = Id;
    break;
  case NodeKind::CE:
    if (N.Sched != 0) {
      ExecChain &C = ExecIndex[N.Sched];
      uint32_t Cell = static_cast<uint32_t>(ExecPool.size());
      ExecPool.push_back(detail::AdjCell{Id, detail::AdjNil});
      if (C.Tail == detail::AdjNil)
        C.Head = Cell;
      else
        ExecPool[C.Tail].Next = Cell;
      C.Tail = Cell;
    }
    break;
  }

  Nodes.push_back(std::move(N));
  Out.emplace_back();
  In.emplace_back();
  return Id;
}

void AsyncGraph::pushAdj(AdjList &L, uint32_t E) {
  uint32_t Cell = static_cast<uint32_t>(AdjPool.size());
  AdjPool.push_back(detail::AdjCell{E, detail::AdjNil});
  if (L.Tail == detail::AdjNil)
    L.Head = Cell;
  else
    AdjPool[L.Tail].Next = Cell;
  L.Tail = Cell;
  ++L.Count;
}

void AsyncGraph::addEdge(NodeId From, NodeId To, EdgeKind Kind, Symbol Label) {
  assert(From < Nodes.size() && To < Nodes.size() && "edge endpoints exist");
  uint32_t E = static_cast<uint32_t>(Edges.size());
  Edges.push_back(AgEdge{From, To, Kind, Label});
  pushAdj(Out[From], E);
  pushAdj(In[To], E);
}

void AsyncGraph::reserveHint(size_t ExpectedNodes, size_t ExpectedEdges) {
  Nodes.reserve(ExpectedNodes);
  Out.reserve(ExpectedNodes);
  In.reserve(ExpectedNodes);
  Edges.reserve(ExpectedEdges);
  AdjPool.reserve(ExpectedEdges * 2);
  ObjIndex.reserve(ExpectedNodes / 4);
  SchedIndex.reserve(ExpectedNodes / 4);
  TriggerIndex.reserve(ExpectedNodes / 4);
  ExecIndex.reserve(ExpectedNodes / 4);
  ExecPool.reserve(ExpectedNodes / 4);
}

bool AsyncGraph::addWarning(Warning W) {
  auto Key = std::make_tuple(static_cast<int>(W.Category), W.Node,
                             W.Loc.fileSymbol().id(), W.Loc.line());
  if (!WarningKeys.insert(Key).second)
    return false;
  Warnings.push_back(std::move(W));
  return true;
}

void AsyncGraph::clearWarnings(const std::set<BugCategory> &Categories) {
  std::vector<Warning> Kept;
  Kept.reserve(Warnings.size());
  for (Warning &W : Warnings) {
    if (Categories.count(W.Category)) {
      WarningKeys.erase(std::make_tuple(static_cast<int>(W.Category), W.Node,
                                        W.Loc.fileSymbol().id(),
                                        W.Loc.line()));
      continue;
    }
    Kept.push_back(std::move(W));
  }
  Warnings = std::move(Kept);
}

NodeId AsyncGraph::objectNode(jsrt::ObjectId Obj) const {
  const NodeId *N = ObjIndex.find(Obj);
  return N ? *N : InvalidNode;
}

NodeId AsyncGraph::registrationNode(jsrt::ScheduleId S) const {
  const NodeId *N = SchedIndex.find(S);
  return N ? *N : InvalidNode;
}

NodeId AsyncGraph::triggerNode(jsrt::TriggerId T) const {
  const NodeId *N = TriggerIndex.find(T);
  return N ? *N : InvalidNode;
}

std::vector<NodeId> AsyncGraph::executionsOf(jsrt::ScheduleId S) const {
  std::vector<NodeId> R;
  const ExecChain *C = ExecIndex.find(S);
  if (!C)
    return R;
  for (uint32_t At = C->Head; At != detail::AdjNil; At = ExecPool[At].Next)
    R.push_back(ExecPool[At].Edge);
  return R;
}

std::vector<Warning> AsyncGraph::warningsOf(BugCategory C) const {
  std::vector<Warning> R;
  for (const Warning &W : Warnings)
    if (W.Category == C)
      R.push_back(W);
  return R;
}

bool AsyncGraph::hasWarning(BugCategory C) const {
  return std::any_of(Warnings.begin(), Warnings.end(),
                     [C](const Warning &W) { return W.Category == C; });
}

/// True for the relation labels that derive one promise from another
/// through a reaction (combinator input edges and adoption links are not
/// derivations). Compared by interned id: the three symbols are created
/// once.
static bool isDerivationLabel(Symbol L) {
  static const Symbol Then("then"), Catch("catch"), Finally("finally");
  return L == Then || L == Catch || L == Finally;
}

std::vector<NodeId> AsyncGraph::derivedPromises(NodeId ObNode,
                                                const char *Label) const {
  std::vector<NodeId> R;
  assert(ObNode < Nodes.size() && Nodes[ObNode].Kind == NodeKind::OB &&
         "derivedPromises on a non-OB node");
  for (uint32_t E : outEdges(ObNode)) {
    const AgEdge &Edge = Edges[E];
    if (Edge.Kind != EdgeKind::Relation || !isDerivationLabel(Edge.Label))
      continue;
    if (Label && Edge.Label != std::string_view(Label))
      continue;
    const AgNode &To = Nodes[Edge.To];
    if (To.Kind == NodeKind::OB && To.IsPromise)
      R.push_back(Edge.To);
  }
  return R;
}

NodeId AsyncGraph::parentPromise(NodeId ObNode) const {
  assert(ObNode < Nodes.size() && Nodes[ObNode].Kind == NodeKind::OB &&
         "parentPromise on a non-OB node");
  for (uint32_t E : inEdges(ObNode)) {
    const AgEdge &Edge = Edges[E];
    if (Edge.Kind != EdgeKind::Relation || !isDerivationLabel(Edge.Label))
      continue;
    const AgNode &From = Nodes[Edge.From];
    if (From.Kind == NodeKind::OB && From.IsPromise)
      return Edge.From;
  }
  return InvalidNode;
}

size_t AsyncGraph::memoryFootprint() const {
  size_t Bytes = 0;
  Bytes += Nodes.capacity() * sizeof(AgNode);
  Bytes += Edges.capacity() * sizeof(AgEdge);
  Bytes += Out.capacity() * sizeof(AdjList);
  Bytes += In.capacity() * sizeof(AdjList);
  Bytes += AdjPool.capacity() * sizeof(detail::AdjCell);
  Bytes += ExecPool.capacity() * sizeof(detail::AdjCell);
  Bytes += ObjIndex.memoryUsage() + SchedIndex.memoryUsage() +
           TriggerIndex.memoryUsage() + ExecIndex.memoryUsage();
  Bytes += Ticks.capacity() * sizeof(AgTick);
  for (const AgTick &T : Ticks)
    Bytes += T.Nodes.capacity() * sizeof(NodeId);
  Bytes += Warnings.capacity() * sizeof(Warning);
  return Bytes;
}
