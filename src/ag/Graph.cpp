//===- Graph.cpp - The Async Graph model --------------------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "ag/Graph.h"

#include <algorithm>
#include <cassert>

using namespace asyncg;
using namespace asyncg::ag;

void AsyncGraph::appendTick(AgTick T) {
  assert(!T.Nodes.empty() && "only non-empty ticks are appended");
  assert((Ticks.empty() || Ticks.back().Index < T.Index) &&
         "tick indices must be increasing");
  Ticks.push_back(std::move(T));
}

NodeId AsyncGraph::addNode(AgNode N, AgTick &T) {
  NodeId Id;
  if (!FreeNodes.empty()) {
    Id = FreeNodes.back();
    FreeNodes.pop_back();
  } else {
    Id = static_cast<NodeId>(Nodes.size());
    Nodes.emplace_back();
    Out.emplace_back();
    In.emplace_back();
  }
  N.Id = Id;
  N.Tick = T.Index;
  T.Nodes.push_back(Id);

  switch (N.Kind) {
  case NodeKind::OB:
    ObjIndex[N.Obj] = Id;
    break;
  case NodeKind::CR:
    if (N.Sched != 0)
      SchedIndex[N.Sched] = Id;
    break;
  case NodeKind::CT:
    if (N.Trigger != 0)
      TriggerIndex[N.Trigger] = Id;
    break;
  case NodeKind::CE:
    if (N.Sched != 0) {
      ExecChain &C = ExecIndex[N.Sched];
      uint32_t Cell;
      if (ExecFree != detail::AdjNil) {
        Cell = ExecFree;
        ExecFree = ExecPool[Cell].Next;
        ExecPool[Cell] = detail::AdjCell{Id, detail::AdjNil};
      } else {
        Cell = static_cast<uint32_t>(ExecPool.size());
        ExecPool.push_back(detail::AdjCell{Id, detail::AdjNil});
      }
      if (C.Tail == detail::AdjNil)
        C.Head = Cell;
      else
        ExecPool[C.Tail].Next = Cell;
      C.Tail = Cell;
    }
    break;
  }

  Nodes[Id] = std::move(N);
  return Id;
}

void AsyncGraph::pushAdj(AdjList &L, uint32_t E) {
  uint32_t Cell;
  if (AdjFree != detail::AdjNil) {
    Cell = AdjFree;
    AdjFree = AdjPool[Cell].Next;
    AdjPool[Cell] = detail::AdjCell{E, detail::AdjNil};
  } else {
    Cell = static_cast<uint32_t>(AdjPool.size());
    AdjPool.push_back(detail::AdjCell{E, detail::AdjNil});
  }
  if (L.Tail == detail::AdjNil)
    L.Head = Cell;
  else
    AdjPool[L.Tail].Next = Cell;
  L.Tail = Cell;
  ++L.Count;
}

void AsyncGraph::unlinkAdj(AdjList &L, uint32_t E) {
  uint32_t Prev = detail::AdjNil;
  for (uint32_t At = L.Head; At != detail::AdjNil; At = AdjPool[At].Next) {
    if (AdjPool[At].Edge != E) {
      Prev = At;
      continue;
    }
    uint32_t Next = AdjPool[At].Next;
    if (Prev == detail::AdjNil)
      L.Head = Next;
    else
      AdjPool[Prev].Next = Next;
    if (L.Tail == At)
      L.Tail = Prev;
    AdjPool[At].Next = AdjFree;
    AdjFree = At;
    --L.Count;
    return;
  }
  assert(false && "unlinkAdj: edge not in list");
}

uint32_t AsyncGraph::addEdge(NodeId From, NodeId To, EdgeKind Kind,
                             Symbol Label) {
  assert(From < Nodes.size() && To < Nodes.size() && "edge endpoints exist");
  assert(Nodes[From].Id == From && Nodes[To].Id == To &&
         "edge endpoints are live");
  uint32_t E;
  if (!FreeEdges.empty()) {
    E = FreeEdges.back();
    FreeEdges.pop_back();
    Edges[E] = AgEdge{From, To, Kind, Label};
  } else {
    E = static_cast<uint32_t>(Edges.size());
    Edges.push_back(AgEdge{From, To, Kind, Label});
  }
  pushAdj(Out[From], E);
  pushAdj(In[To], E);
  return E;
}

void AsyncGraph::removeEdge(uint32_t E) {
  AgEdge &Ed = Edges[E];
  assert(Ed.From != InvalidNode && "removing a dead edge");
  unlinkAdj(Out[Ed.From], E);
  unlinkAdj(In[Ed.To], E);
  Ed.From = InvalidNode;
  Ed.To = InvalidNode;
  FreeEdges.push_back(E);
  ++Summary.Edges;
}

void AsyncGraph::reserveHint(size_t ExpectedNodes, size_t ExpectedEdges,
                             size_t ExpectedTicks) {
  if (ExpectedTicks)
    Ticks.reserve(ExpectedTicks);
  Nodes.reserve(ExpectedNodes);
  Out.reserve(ExpectedNodes);
  In.reserve(ExpectedNodes);
  Edges.reserve(ExpectedEdges);
  AdjPool.reserve(ExpectedEdges * 2);
  ObjIndex.reserve(ExpectedNodes / 4);
  SchedIndex.reserve(ExpectedNodes / 4);
  TriggerIndex.reserve(ExpectedNodes / 4);
  ExecIndex.reserve(ExpectedNodes / 4);
  ExecPool.reserve(ExpectedNodes / 4);
}

bool AsyncGraph::addWarning(Warning W) {
  auto Key = std::make_tuple(static_cast<int>(W.Category), W.Message.id(),
                             W.Loc.fileSymbol().id(), W.Loc.line());
  if (!WarningKeys.insert(Key).second)
    return false;
  Warnings.push_back(std::move(W));
  return true;
}

void AsyncGraph::clearWarnings(const std::set<BugCategory> &Categories) {
  std::vector<Warning> Kept;
  Kept.reserve(Warnings.size());
  for (Warning &W : Warnings) {
    if (!W.Sticky && Categories.count(W.Category)) {
      WarningKeys.erase(std::make_tuple(static_cast<int>(W.Category),
                                        W.Message.id(),
                                        W.Loc.fileSymbol().id(),
                                        W.Loc.line()));
      continue;
    }
    Kept.push_back(std::move(W));
  }
  Warnings = std::move(Kept);
}

void AsyncGraph::retireNode(NodeId N) {
  AgNode &Node = Nodes[N];
  assert(Node.Id == N && "retiring a dead node");

  ++Summary.Nodes;
  ++Summary.ByKind[static_cast<int>(Node.Kind)];
  ++Summary.ByApi[static_cast<uint32_t>(Node.Api)];
  ++Summary.ByLoc[(static_cast<uint64_t>(Node.Loc.fileSymbol().id()) << 32) |
                  Node.Loc.line()];

  // Unlink every incident edge. Read each cell's Next before removal:
  // removeEdge frees the cell we stand on (its Next becomes a freelist
  // link), but never any other cell of the same chain — the edge's second
  // cell lives in the opposite endpoint's list (the graph has no
  // self-edges).
  for (int Dir = 0; Dir != 2; ++Dir) {
    uint32_t Head = Dir == 0 ? Out[N].Head : In[N].Head;
    for (uint32_t At = Head, Next; At != detail::AdjNil; At = Next) {
      Next = AdjPool[At].Next;
      uint32_t E = AdjPool[At].Edge;
      if (Edges[E].From != InvalidNode)
        removeEdge(E);
    }
  }
  assert(Out[N].Count == 0 && In[N].Count == 0 &&
         "adjacency must drain with its edges");
  Out[N] = AdjList{};
  In[N] = AdjList{};

  switch (Node.Kind) {
  case NodeKind::OB:
    if (const NodeId *P = ObjIndex.find(Node.Obj); P && *P == N)
      ObjIndex.erase(Node.Obj);
    break;
  case NodeKind::CR:
    if (Node.Sched != 0)
      if (const NodeId *P = SchedIndex.find(Node.Sched); P && *P == N)
        SchedIndex.erase(Node.Sched);
    break;
  case NodeKind::CT:
    if (Node.Trigger != 0)
      if (const NodeId *P = TriggerIndex.find(Node.Trigger); P && *P == N)
        TriggerIndex.erase(Node.Trigger);
    break;
  case NodeKind::CE:
    if (Node.Sched != 0)
      if (ExecChain *C = ExecIndex.find(Node.Sched)) {
        uint32_t Prev = detail::AdjNil;
        for (uint32_t At = C->Head; At != detail::AdjNil;
             At = ExecPool[At].Next) {
          if (ExecPool[At].Edge != N) {
            Prev = At;
            continue;
          }
          uint32_t Next = ExecPool[At].Next;
          if (Prev == detail::AdjNil)
            C->Head = Next;
          else
            ExecPool[Prev].Next = Next;
          if (C->Tail == At)
            C->Tail = Prev;
          ExecPool[At].Next = ExecFree;
          ExecFree = At;
          break;
        }
        if (C->Head == detail::AdjNil)
          ExecIndex.erase(Node.Sched);
      }
    break;
  }

  Nodes[N] = AgNode{}; // default Id is InvalidNode: the dead-slot marker
  FreeNodes.push_back(N);
}

void AsyncGraph::retireTick(uint32_t Index) {
  auto It = std::lower_bound(
      Ticks.begin(), Ticks.end(), Index,
      [](const AgTick &T, uint32_t I) { return T.Index < I; });
  if (It == Ticks.end() || It->Index != Index || It->Retired)
    return;
  AgTick &T = *It;

  // Warnings anchored to dying nodes lose their node reference (the id is
  // about to be recycled); category/location/message — everything the
  // warning report prints — stay.
  for (Warning &W : Warnings)
    if (W.Node != InvalidNode && W.Node < Nodes.size() &&
        Nodes[W.Node].Id == W.Node && Nodes[W.Node].Tick == Index)
      W.Node = InvalidNode;

  for (NodeId N : T.Nodes)
    retireNode(N);
  std::vector<NodeId>().swap(T.Nodes);
  T.Retired = true;
  ++Summary.Ticks;
  ++RetiredInVector;

  // Compact the tick vector once tombstones dominate, so Ticks itself
  // stays O(live window).
  if (RetiredInVector > 64 && RetiredInVector * 2 > Ticks.size()) {
    Ticks.erase(std::remove_if(Ticks.begin(), Ticks.end(),
                               [](const AgTick &T) { return T.Retired; }),
                Ticks.end());
    RetiredInVector = 0;
  }
}

NodeId AsyncGraph::objectNode(jsrt::ObjectId Obj) const {
  const NodeId *N = ObjIndex.find(Obj);
  return N ? *N : InvalidNode;
}

NodeId AsyncGraph::registrationNode(jsrt::ScheduleId S) const {
  const NodeId *N = SchedIndex.find(S);
  return N ? *N : InvalidNode;
}

NodeId AsyncGraph::triggerNode(jsrt::TriggerId T) const {
  const NodeId *N = TriggerIndex.find(T);
  return N ? *N : InvalidNode;
}

std::vector<NodeId> AsyncGraph::executionsOf(jsrt::ScheduleId S) const {
  std::vector<NodeId> R;
  const ExecChain *C = ExecIndex.find(S);
  if (!C)
    return R;
  for (uint32_t At = C->Head; At != detail::AdjNil; At = ExecPool[At].Next)
    R.push_back(ExecPool[At].Edge);
  return R;
}

std::vector<Warning> AsyncGraph::warningsOf(BugCategory C) const {
  std::vector<Warning> R;
  for (const Warning &W : Warnings)
    if (W.Category == C)
      R.push_back(W);
  return R;
}

bool AsyncGraph::hasWarning(BugCategory C) const {
  return std::any_of(Warnings.begin(), Warnings.end(),
                     [C](const Warning &W) { return W.Category == C; });
}

/// True for the relation labels that derive one promise from another
/// through a reaction (combinator input edges and adoption links are not
/// derivations). Compared by interned id: the three symbols are created
/// once.
static bool isDerivationLabel(Symbol L) {
  static const Symbol Then("then"), Catch("catch"), Finally("finally");
  return L == Then || L == Catch || L == Finally;
}

std::vector<NodeId> AsyncGraph::derivedPromises(NodeId ObNode,
                                                const char *Label) const {
  std::vector<NodeId> R;
  assert(ObNode < Nodes.size() && Nodes[ObNode].Kind == NodeKind::OB &&
         "derivedPromises on a non-OB node");
  for (uint32_t E : outEdges(ObNode)) {
    const AgEdge &Edge = Edges[E];
    if (Edge.Kind != EdgeKind::Relation || !isDerivationLabel(Edge.Label))
      continue;
    if (Label && Edge.Label != std::string_view(Label))
      continue;
    const AgNode &To = Nodes[Edge.To];
    if (To.Kind == NodeKind::OB && To.IsPromise)
      R.push_back(Edge.To);
  }
  return R;
}

NodeId AsyncGraph::parentPromise(NodeId ObNode) const {
  assert(ObNode < Nodes.size() && Nodes[ObNode].Kind == NodeKind::OB &&
         "parentPromise on a non-OB node");
  for (uint32_t E : inEdges(ObNode)) {
    const AgEdge &Edge = Edges[E];
    if (Edge.Kind != EdgeKind::Relation || !isDerivationLabel(Edge.Label))
      continue;
    const AgNode &From = Nodes[Edge.From];
    if (From.Kind == NodeKind::OB && From.IsPromise)
      return Edge.From;
  }
  return InvalidNode;
}

size_t AsyncGraph::memoryFootprint() const {
  size_t Bytes = 0;
  Bytes += Nodes.capacity() * sizeof(AgNode);
  Bytes += Edges.capacity() * sizeof(AgEdge);
  Bytes += Out.capacity() * sizeof(AdjList);
  Bytes += In.capacity() * sizeof(AdjList);
  Bytes += AdjPool.capacity() * sizeof(detail::AdjCell);
  Bytes += ExecPool.capacity() * sizeof(detail::AdjCell);
  Bytes += ObjIndex.memoryUsage() + SchedIndex.memoryUsage() +
           TriggerIndex.memoryUsage() + ExecIndex.memoryUsage();
  Bytes += Ticks.capacity() * sizeof(AgTick);
  for (const AgTick &T : Ticks)
    Bytes += T.Nodes.capacity() * sizeof(NodeId);
  Bytes += Warnings.capacity() * sizeof(Warning);
  // Warning dedup keys: red-black tree nodes (key + 3 pointers + color).
  Bytes += WarningKeys.size() *
           (sizeof(std::tuple<int, SymbolId, SymbolId, uint32_t>) +
            4 * sizeof(void *));
  Bytes += FreeNodes.capacity() * sizeof(NodeId);
  Bytes += FreeEdges.capacity() * sizeof(uint32_t);
  Bytes += Summary.ByApi.memoryUsage() + Summary.ByLoc.memoryUsage();
  return Bytes;
}
