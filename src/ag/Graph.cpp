//===- Graph.cpp - The Async Graph model --------------------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "ag/Graph.h"

#include <algorithm>
#include <cassert>

using namespace asyncg;
using namespace asyncg::ag;

void AsyncGraph::appendTick(AgTick T) {
  assert(!T.Nodes.empty() && "only non-empty ticks are appended");
  assert((Ticks.empty() || Ticks.back().Index < T.Index) &&
         "tick indices must be increasing");
  Ticks.push_back(std::move(T));
}

NodeId AsyncGraph::addNode(AgNode N, AgTick &T) {
  NodeId Id = static_cast<NodeId>(Nodes.size());
  N.Id = Id;
  N.Tick = T.Index;
  T.Nodes.push_back(Id);

  switch (N.Kind) {
  case NodeKind::OB:
    ObjIndex[N.Obj] = Id;
    break;
  case NodeKind::CR:
    if (N.Sched != 0)
      SchedIndex[N.Sched] = Id;
    break;
  case NodeKind::CT:
    if (N.Trigger != 0)
      TriggerIndex[N.Trigger] = Id;
    break;
  case NodeKind::CE:
    if (N.Sched != 0)
      ExecIndex.emplace(N.Sched, Id);
    break;
  }

  Nodes.push_back(std::move(N));
  Out.emplace_back();
  In.emplace_back();
  return Id;
}

void AsyncGraph::addEdge(NodeId From, NodeId To, EdgeKind Kind,
                         std::string Label) {
  assert(From < Nodes.size() && To < Nodes.size() && "edge endpoints exist");
  uint32_t E = static_cast<uint32_t>(Edges.size());
  Edges.push_back(AgEdge{From, To, Kind, std::move(Label)});
  Out[From].push_back(E);
  In[To].push_back(E);
}

bool AsyncGraph::addWarning(Warning W) {
  auto Key =
      std::make_tuple(static_cast<int>(W.Category), W.Node, W.Loc.str());
  if (!WarningKeys.insert(Key).second)
    return false;
  Warnings.push_back(std::move(W));
  return true;
}

void AsyncGraph::clearWarnings(const std::set<BugCategory> &Categories) {
  std::vector<Warning> Kept;
  Kept.reserve(Warnings.size());
  for (Warning &W : Warnings) {
    if (Categories.count(W.Category)) {
      WarningKeys.erase(std::make_tuple(static_cast<int>(W.Category), W.Node,
                                        W.Loc.str()));
      continue;
    }
    Kept.push_back(std::move(W));
  }
  Warnings = std::move(Kept);
}

NodeId AsyncGraph::objectNode(jsrt::ObjectId Obj) const {
  auto It = ObjIndex.find(Obj);
  return It == ObjIndex.end() ? InvalidNode : It->second;
}

NodeId AsyncGraph::registrationNode(jsrt::ScheduleId S) const {
  auto It = SchedIndex.find(S);
  return It == SchedIndex.end() ? InvalidNode : It->second;
}

NodeId AsyncGraph::triggerNode(jsrt::TriggerId T) const {
  auto It = TriggerIndex.find(T);
  return It == TriggerIndex.end() ? InvalidNode : It->second;
}

std::vector<NodeId> AsyncGraph::executionsOf(jsrt::ScheduleId S) const {
  std::vector<NodeId> R;
  auto [B, E] = ExecIndex.equal_range(S);
  for (auto It = B; It != E; ++It)
    R.push_back(It->second);
  return R;
}

std::vector<Warning> AsyncGraph::warningsOf(BugCategory C) const {
  std::vector<Warning> R;
  for (const Warning &W : Warnings)
    if (W.Category == C)
      R.push_back(W);
  return R;
}

bool AsyncGraph::hasWarning(BugCategory C) const {
  return std::any_of(Warnings.begin(), Warnings.end(),
                     [C](const Warning &W) { return W.Category == C; });
}

/// True for the relation labels that derive one promise from another
/// through a reaction (combinator input edges and adoption links are not
/// derivations).
static bool isDerivationLabel(const std::string &L) {
  return L == "then" || L == "catch" || L == "finally";
}

std::vector<NodeId> AsyncGraph::derivedPromises(NodeId ObNode,
                                                const char *Label) const {
  std::vector<NodeId> R;
  assert(ObNode < Nodes.size() && Nodes[ObNode].Kind == NodeKind::OB &&
         "derivedPromises on a non-OB node");
  for (uint32_t E : Out[ObNode]) {
    const AgEdge &Edge = Edges[E];
    if (Edge.Kind != EdgeKind::Relation || !isDerivationLabel(Edge.Label))
      continue;
    if (Label && Edge.Label != Label)
      continue;
    const AgNode &To = Nodes[Edge.To];
    if (To.Kind == NodeKind::OB && To.IsPromise)
      R.push_back(Edge.To);
  }
  return R;
}

NodeId AsyncGraph::parentPromise(NodeId ObNode) const {
  assert(ObNode < Nodes.size() && Nodes[ObNode].Kind == NodeKind::OB &&
         "parentPromise on a non-OB node");
  for (uint32_t E : In[ObNode]) {
    const AgEdge &Edge = Edges[E];
    if (Edge.Kind != EdgeKind::Relation || !isDerivationLabel(Edge.Label))
      continue;
    const AgNode &From = Nodes[Edge.From];
    if (From.Kind == NodeKind::OB && From.IsPromise)
      return Edge.From;
  }
  return InvalidNode;
}
