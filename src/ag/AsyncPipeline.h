//===- AsyncPipeline.h - Off-thread Async Graph construction ----*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Moves Async Graph construction off the event-loop thread. The pipeline
/// attaches to the hook registry like any analysis, but instead of building
/// the graph inline it encodes each event into fixed-size trace records
/// (instr/TraceCodec.h) and pushes them through a lock-free SPSC ring
/// (support/SpscRing.h); a dedicated builder thread drains the ring in
/// batches and drives the wrapped sink — normally an ag::AsyncGBuilder with
/// its detectors attached as graph observers.
///
/// What the loop thread pays per event is therefore just the encode (a few
/// stores into a scratch vector, no allocation in steady state) plus one
/// release store; graph nodes, label interning, FlatMap probes, and
/// detector work all happen on the builder thread.
///
/// Backpressure when the ring is full is selectable:
///  - Block (default): spin-yield until space frees up. Lossless.
///  - Drop: discard the event and bump droppedEvents(). Only *decoration*
///    events (API calls, object creation, reaction results, promise links)
///    are droppable; structural records — function enter/exit and loop end,
///    which keep the builder's shadow stack balanced — always block.
///
/// flush() is the completion barrier: it returns once every record pushed
/// so far has been decoded, so the graph is complete and safe to read
/// (call it after the loop finishes, before inspecting the graph). stop()
/// flushes and joins the builder thread; the destructor stops implicitly.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_AG_ASYNCPIPELINE_H
#define ASYNCG_AG_ASYNCPIPELINE_H

#include "instr/TraceCodec.h"
#include "support/SpscRing.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace asyncg {
namespace ag {

/// How graph construction is driven; tools and benches switch on this.
enum class PipelineMode {
  /// Builder attached directly to the hooks (the pre-pipeline behavior).
  Synchronous,
  /// Builder driven from the ring-draining thread via AsyncPipeline.
  Async,
};

/// What the producer does when the ring is full.
enum class BackpressurePolicy {
  Block,   ///< Spin-yield until space frees up (lossless).
  Drop,    ///< Discard decoration events, counting them.
  Degrade, ///< Escalate the degradation ladder instead of blocking.
};

/// The graceful-degradation ladder (BackpressurePolicy::Degrade). Under
/// sustained ring backpressure the producer escalates one tier instead of
/// blocking the event loop; once the ring drains back below the low-water
/// mark for long enough it steps back down. The contract at every tier:
/// structure (function enter/exit, object release, loop end) is never shed
/// — only decorations — so the graph skeleton stays exact and warnings are
/// missed, never fabricated.
enum class DegradeTier : uint8_t {
  Lossless = 0,       ///< Everything emitted.
  Sampled = 1,        ///< Decorations on 1 of LadderSampleStride ticks.
  StructuralOnly = 2, ///< No decorations at all.
};

constexpr size_t NumDegradeTiers = 3;

/// Stable lowercase tier name ("lossless", "sampled", "structural").
const char *degradeTierName(DegradeTier T);

/// Ladder accounting, reported in every BenchReport so a run that shed
/// coverage says so. TimeNs accumulates for every pipeline (a run that
/// never degrades reports its whole lifetime under Lossless).
struct DegradationStats {
  /// Wall time spent in each tier, indexed by DegradeTier.
  uint64_t TimeNs[NumDegradeTiers] = {};
  /// Decoration records shed by the ladder (gate skips count the event,
  /// stuck-chunk filtering counts raw records).
  uint64_t RecordsShed = 0;
  uint64_t Escalations = 0;
  uint64_t Recoveries = 0;
  /// Tier at snapshot time (DegradeTier; the acceptance gate checks the
  /// run ends back at Lossless).
  uint32_t FinalTier = 0;
  /// Builder-thread stall episodes the watchdog observed.
  uint64_t WatchdogStalls = 0;

  void merge(const DegradationStats &O) {
    for (size_t I = 0; I != NumDegradeTiers; ++I)
      TimeNs[I] += O.TimeNs[I];
    RecordsShed += O.RecordsShed;
    Escalations += O.Escalations;
    Recoveries += O.Recoveries;
    FinalTier = FinalTier > O.FinalTier ? FinalTier : O.FinalTier;
    WatchdogStalls += O.WatchdogStalls;
  }
};

/// When the builder thread consumes the ring.
enum class DrainMode {
  /// Decode continuously as records arrive. Lowest graph latency; right
  /// when a spare core is available to absorb the builder work.
  Concurrent,
  /// Park the builder thread and buffer records in the ring during the
  /// run; decode at flush()/stop() (or when the ring fills). Keeps the
  /// loop thread's serving window free of builder CPU contention — the
  /// in-memory analogue of recording a trace and replaying it afterwards,
  /// right on single-core/saturated machines. Size RingCapacity for the
  /// expected record volume; overflow degrades gracefully into draining
  /// during the run (Block) or dropping decorations (Drop).
  Deferred,
};

/// Producer-side backpressure counters: how hard the loop thread had to
/// fight for ring space. All zeros when the ring was sized right.
struct BackpressureStats {
  /// Pushes that found the ring full and had to spin (Block) at least once.
  uint64_t BlockedPushes = 0;
  /// Total producer wall time spent spinning on a full ring.
  uint64_t BlockedTimeNs = 0;
  /// Decoration events discarded under BackpressurePolicy::Drop.
  uint64_t DroppedEvents = 0;
  /// Deepest pushed-minus-consumed backlog observed at push time.
  uint64_t MaxQueueDepth = 0;
};

/// Coverage counters for the overhead-budgeted sampling mode
/// (PipelineConfig::SampleBudgetPct). Like BackpressureStats these travel
/// alongside the graph so detectors and reports can state degraded
/// confidence: on unsampled ticks the pipeline emits only structural
/// events (enter/exit/release/loop-end — the graph skeleton stays exact),
/// while decoration events (API calls, object creation, reaction results,
/// promise links) are skipped and counted here. Linearizability and
/// lifetime warnings that hinge on decorations may therefore be missed —
/// never fabricated — on unsampled ticks.
struct SamplingStats {
  /// Configured budget (percent of loop wall time; 0 = sampling off).
  double BudgetPct = 0;
  /// Loop turns observed / turns on which decorations were emitted.
  uint64_t TotalTicks = 0;
  uint64_t SampledTicks = 0;
  /// Decoration events skipped on unsampled ticks (the dropped coverage).
  uint64_t DroppedEvents = 0;
  /// Calibrated per-event emit cost and the estimated total emit time the
  /// budget decisions were based on.
  uint64_t EstEmitNs = 0;
  uint64_t EstSpentNs = 0;

  bool enabled() const { return BudgetPct > 0; }
  /// Fraction of ticks with full decoration coverage (1 when lossless).
  double tickCoverage() const {
    return TotalTicks ? static_cast<double>(SampledTicks) / TotalTicks : 1.0;
  }
};

struct PipelineConfig {
  /// Ring capacity in records (rounded up to a power of two). Must be at
  /// least large enough for the largest single event span.
  size_t RingCapacity = 1 << 16;
  /// Max records the builder thread decodes per drain.
  size_t DrainBatch = 256;
  BackpressurePolicy Policy = BackpressurePolicy::Block;
  DrainMode Drain = DrainMode::Concurrent;
  /// Records the producer accumulates before one amortized ring push
  /// (Block policy only; Drop keeps per-event pushes so a full ring can
  /// shed exactly one decoration event). Pending records are flushed at
  /// every tick boundary and at flush(), so builder latency is bounded by
  /// one loop turn. 0 pushes per event.
  size_t ProducerChunk = 256;
  /// Overhead budget for adaptive sampling: the percentage of loop wall
  /// time the producer may spend emitting (0 = off, lossless). The
  /// pipeline calibrates the per-event emit cost on its first events,
  /// then decides once per tick boundary whether the estimated spend is
  /// under budget; over-budget ticks emit structural events only and
  /// count skipped decorations in SamplingStats.
  double SampleBudgetPct = 0;
  /// \name Degradation ladder + watchdog (BackpressurePolicy::Degrade)
  /// @{
  /// How long a full-ring push spins before escalating one tier. Small by
  /// design: the whole point of the ladder is not to block the loop.
  uint64_t EscalateSpinNs = 100 * 1000;
  /// Sampled tier: decorations are emitted on 1 of this many ticks.
  uint32_t LadderSampleStride = 4;
  /// Recovery low-water mark: the ring backlog must stay under this
  /// percentage of capacity...
  double RecoverLowWaterPct = 25.0;
  /// ...for this many consecutive tick boundaries before stepping down.
  uint32_t RecoverQuietTicks = 16;
  /// Builder-thread watchdog: warn (once per episode) when the builder
  /// heartbeat is older than this while the ring has a backlog. 0 = off.
  /// Concurrent drain only — a Deferred builder is parked by design.
  uint32_t WatchdogStallMs = 0;
  /// @}
  /// When non-empty, the builder thread tees every record it drains into
  /// this .agtrace file while decoding it into the sink, producing a
  /// replayable artifact at zero cost to the loop thread (the ring hand-
  /// off already paid for the records; the symbol section comes from the
  /// process-global table at finalize). The file is finalized at stop().
  std::string RecordPath;
  /// File encoding for RecordPath (v4 columnar frames by default).
  uint32_t RecordVersion = trace::TraceVersion;
};

/// The asynchronous instrumentation pipeline. Attach to a HookRegistry on
/// the loop thread; \p Sink runs exclusively on the internal builder
/// thread until stop().
class AsyncPipeline final : public instr::AnalysisBase {
public:
  /// Starts the builder thread. \p Sink (typically an AsyncGBuilder) must
  /// outlive the pipeline and must not be touched by other threads until
  /// flush()/stop() establishes a barrier.
  explicit AsyncPipeline(instr::AnalysisBase &Sink,
                         PipelineConfig Config = PipelineConfig());
  ~AsyncPipeline() override;

  const char *analysisName() const override { return "async-pipeline"; }

  /// Producer-side barrier: returns once everything pushed so far has been
  /// decoded into the sink. Call from the producer thread.
  void flush();

  /// flush() + join the builder thread. Idempotent; after stop() the sink
  /// is safe to use from any thread again.
  void stop();

  /// \name Counters (records are ring slots; events are hook firings)
  /// @{
  uint64_t pushedRecords() const {
    return Pushed.load(std::memory_order_relaxed);
  }
  uint64_t consumedRecords() const {
    return Consumed.load(std::memory_order_relaxed);
  }
  /// Decoration events discarded under BackpressurePolicy::Drop.
  uint64_t droppedEvents() const {
    return DroppedEvents.load(std::memory_order_relaxed);
  }

  /// Snapshot of the producer's backpressure counters (exact after
  /// flush()/stop(); racy-but-monotone while the loop is running).
  BackpressureStats backpressure() const {
    BackpressureStats S;
    S.BlockedPushes = BlockedPushes.load(std::memory_order_relaxed);
    S.BlockedTimeNs = BlockedTimeNs.load(std::memory_order_relaxed);
    S.DroppedEvents = DroppedEvents.load(std::memory_order_relaxed);
    S.MaxQueueDepth = MaxQueueDepth.load(std::memory_order_relaxed);
    return S;
  }

  /// Bytes of the record section written to Config.RecordPath so far
  /// (exact after stop(); racy-but-monotone mid-run). 0 when the tee is
  /// off or nothing has been drained yet.
  uint64_t recordedBytes() const {
    return RecordedBytes.load(std::memory_order_relaxed);
  }
  /// True when the tee could not open or write RecordPath. The pipeline
  /// keeps building the graph; only the artifact is lost.
  bool recordingFailed() const {
    return RecordFailed.load(std::memory_order_relaxed);
  }

  /// Snapshot of the ladder/watchdog counters (exact after flush()/stop();
  /// racy-but-monotone mid-run). Meaningful for every policy: a pipeline
  /// that never degrades reports its whole lifetime under Lossless.
  DegradationStats degradation() const {
    DegradationStats D;
    for (size_t I = 0; I != NumDegradeTiers; ++I)
      D.TimeNs[I] = TierTimeNs[I].load(std::memory_order_relaxed);
    uint32_t T = TierAtomic.load(std::memory_order_relaxed);
    uint64_t NowNs = nsSinceStart();
    uint64_t Since = TierSinceNs.load(std::memory_order_relaxed);
    if (NowNs > Since)
      D.TimeNs[T] += NowNs - Since;
    D.RecordsShed = LadderShed.load(std::memory_order_relaxed);
    D.Escalations = Escalations.load(std::memory_order_relaxed);
    D.Recoveries = Recoveries.load(std::memory_order_relaxed);
    D.FinalTier = T;
    D.WatchdogStalls = WatchdogStalls.load(std::memory_order_relaxed);
    return D;
  }

  /// Snapshot of the sampling coverage counters (exact after flush()/
  /// stop()). All zeros except BudgetPct when sampling never kicked in.
  SamplingStats sampling() const {
    SamplingStats S;
    S.BudgetPct = Config.SampleBudgetPct;
    S.TotalTicks = TotalTicks.load(std::memory_order_relaxed);
    S.SampledTicks = SampledTicks.load(std::memory_order_relaxed);
    S.DroppedEvents = SamplingDropped.load(std::memory_order_relaxed);
    S.EstEmitNs = EstEmitNs.load(std::memory_order_relaxed);
    S.EstSpentNs = EstSpentNs.load(std::memory_order_relaxed);
    return S;
  }
  /// @}

  /// \name AnalysisBase hooks (producer side)
  /// @{
  void onFunctionEnter(const instr::FunctionEnterEvent &E) override;
  void onFunctionExit(const instr::FunctionExitEvent &E) override;
  void onApiCall(const instr::ApiCallEvent &E) override;
  void onObjectCreate(const instr::ObjectCreateEvent &E) override;
  void onReactionResult(const instr::ReactionResultEvent &E) override;
  void onPromiseLink(const instr::PromiseLinkEvent &E) override;
  void onObjectRelease(const instr::ObjectReleaseEvent &E) override;
  void onLoopEnd(const instr::LoopEndEvent &E) override;
  void onTickBoundary(const instr::TickBoundaryEvent &E) override;
  /// @}

private:
  /// Emit-cost calibration window for the sampling mode: the first this
  /// many emitted events are individually timed, after which the running
  /// average is charged per event with no clock reads on the hot path.
  static constexpr unsigned CalibrateEvents = 2048;

  /// Pushes Scratch into the ring all-or-nothing. Structural events ignore
  /// the Drop policy (the shadow stack must stay balanced). Under the
  /// Block policy with ProducerChunk set, records accumulate in Scratch
  /// across events and only spill once the chunk fills.
  void pushScratch(bool Structural);

  /// Pushes whatever Scratch holds right now (chunk spill / tick boundary
  /// / flush). Producer thread only.
  void pushPending();

  /// Degrade policy: bounded-spin push of Scratch, escalating the ladder
  /// and shedding pending decorations when the ring stays full. Returns
  /// the number of records actually pushed (< Scratch.size() after sheds).
  size_t pushDegraded();

  /// Nanoseconds since pipeline start (the ladder/watchdog time base).
  uint64_t nsSinceStart() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - Start)
            .count());
  }

  /// Moves the ladder to \p T, folding elapsed time into the old tier's
  /// bucket. Producer thread only.
  void setTier(DegradeTier T);

  /// Removes decoration records from the pending Scratch, counting them
  /// as shed. Structural records (and whole decoration record groups —
  /// the droppable opcodes are contiguous) survive.
  void shedPendingDecorations();

  /// Sampling gate for decoration events: true = emit. Counts the skip.
  bool sampleGate() {
    if (!SamplingOn || SampleThisTick)
      return true;
    SamplingDropped.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// Combined decoration gate: the degradation ladder first (tier sheds),
  /// then the overhead-budget sampler.
  bool decorationGate() {
    if (Config.Policy == BackpressurePolicy::Degrade &&
        LadderTier != DegradeTier::Lossless &&
        (LadderTier == DegradeTier::StructuralOnly || !LadderSampleTick)) {
      LadderShed.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    return sampleGate();
  }

  /// \name Emit-cost accounting (no-ops while sampling is off).
  /// @{
  std::chrono::steady_clock::time_point emitStart() const {
    if (SamplingOn && CalibrateLeft)
      return std::chrono::steady_clock::now();
    return {};
  }
  void emitEnd(std::chrono::steady_clock::time_point T0);
  /// @}

  void consumerMain();

  /// Deferred mode: unparks the builder thread.
  void wakeConsumer();

  instr::AnalysisBase &Sink;
  PipelineConfig Config;
  SpscRing<trace::TraceRecord> Ring;

  /// Producer-side encoder state + scratch (loop thread only).
  instr::TraceEncoder Encoder;
  std::vector<trace::TraceRecord> Scratch;

  /// Consumer-side decoder state (builder thread only).
  instr::TraceDecoder Decoder;

  /// Recording tee (builder thread only; the atomics mirror its progress
  /// for cross-thread snapshots).
  trace::TraceFileWriter RecWriter;
  std::atomic<uint64_t> RecordedBytes{0};
  std::atomic<bool> RecordFailed{false};

  std::atomic<uint64_t> Pushed{0};
  std::atomic<uint64_t> Consumed{0};
  std::atomic<uint64_t> DroppedEvents{0};

  /// Sampling state. The decision and calibration counters live on the
  /// producer thread; the exported totals are atomic only so mid-run
  /// snapshots from other threads stay well-defined.
  bool SamplingOn = false;
  bool SampleThisTick = true;
  unsigned CalibrateLeft = CalibrateEvents;
  uint64_t CalibNs = 0;
  uint64_t CalibCount = 0;
  std::chrono::steady_clock::time_point Start;
  std::atomic<uint64_t> EstEmitNs{0};
  std::atomic<uint64_t> EstSpentNs{0};
  std::atomic<uint64_t> TotalTicks{0};
  std::atomic<uint64_t> SampledTicks{0};
  std::atomic<uint64_t> SamplingDropped{0};

  /// Backpressure counters, written by the producer only (atomic so
  /// mid-run snapshots from other threads stay well-defined).
  std::atomic<uint64_t> BlockedPushes{0};
  std::atomic<uint64_t> BlockedTimeNs{0};
  std::atomic<uint64_t> MaxQueueDepth{0};
  std::atomic<bool> StopRequested{false};

  /// Degradation-ladder state. The tier and decisions live on the
  /// producer thread; atomics mirror them for cross-thread snapshots.
  DegradeTier LadderTier = DegradeTier::Lossless;
  bool LadderSampleTick = true;
  uint64_t LadderTicks = 0;
  uint32_t QuietTicks = 0;
  std::atomic<uint32_t> TierAtomic{0};
  std::atomic<uint64_t> TierSinceNs{0};
  std::atomic<uint64_t> TierTimeNs[NumDegradeTiers] = {};
  std::atomic<uint64_t> LadderShed{0};
  std::atomic<uint64_t> Escalations{0};
  std::atomic<uint64_t> Recoveries{0};

  /// Watchdog: the builder thread stores its progress time here; the
  /// producer compares at tick boundaries and warns on stalls.
  std::atomic<uint64_t> HeartbeatNs{0};
  std::atomic<uint64_t> WatchdogStalls{0};
  bool InStall = false;

  /// Parking lot for DrainMode::Deferred (unused in Concurrent mode).
  std::mutex WakeMutex;
  std::condition_variable WakeCv;
  bool WakeRequested = false;

  std::thread Builder;
};

} // namespace ag
} // namespace asyncg

#endif // ASYNCG_AG_ASYNCPIPELINE_H
