//===- Warning.h - Bug categories and warning records -----------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bug/code-smell categories AsyncG reports (§VI of the paper) and the
/// warning records attached to Async Graph nodes (the "⚠" annotations in
/// the paper's figures).
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_AG_WARNING_H
#define ASYNCG_AG_WARNING_H

#include "support/SourceLocation.h"
#include "support/SymbolTable.h"

#include <cstdint>

namespace asyncg {
namespace ag {

/// Node identifier within one AsyncGraph.
using NodeId = uint32_t;

/// Sentinel for "no node".
constexpr NodeId InvalidNode = ~static_cast<NodeId>(0);

/// All bug categories of §VI. The first three are scheduling bugs, the
/// next five emitter bugs, the next five promise bugs; the last two are the
/// AG-assisted manual patterns of §VI-B, reported by the query helpers.
enum class BugCategory {
  // Scheduling bugs (§VI-A.1).
  RecursiveMicrotask,
  MixedSimilarApis,
  TimeoutExecutionOrder,
  // Emitter bugs (§VI-A.2).
  DeadListener,
  DeadEmit,
  InvalidListenerRemoval,
  DuplicateListener,
  AddListenerWithinListener,
  // Promise bugs (§VI-A.3).
  DeadPromise,
  MissingReaction,
  MissingExceptionalReaction,
  MissingReturnInThen,
  DoubleSettle,
  // AG-assisted manual patterns (§VI-B).
  ExpectSyncCallback,
  BrokenPromiseChain,
  // §IX ongoing-research extension: data-flow race detection.
  EventRace,
  // Extra (Node's MaxListenersExceededWarning heuristic): many live
  // listeners for one event usually means a subscription leak.
  ListenerLeak,
};

/// Stable display name for a category ("Dead Emits", ... as in Table I).
inline const char *bugCategoryName(BugCategory C) {
  switch (C) {
  case BugCategory::RecursiveMicrotask:
    return "Recursive Micro Tasks";
  case BugCategory::MixedSimilarApis:
    return "Mixing Similar APIs";
  case BugCategory::TimeoutExecutionOrder:
    return "Unexpected Timeout Execution Order";
  case BugCategory::DeadListener:
    return "Dead Listeners";
  case BugCategory::DeadEmit:
    return "Dead Emits";
  case BugCategory::InvalidListenerRemoval:
    return "Invalid Listener Removal";
  case BugCategory::DuplicateListener:
    return "Duplicate Listeners";
  case BugCategory::AddListenerWithinListener:
    return "Add Listener within Listener";
  case BugCategory::DeadPromise:
    return "Dead Promise";
  case BugCategory::MissingReaction:
    return "Missing Reaction";
  case BugCategory::MissingExceptionalReaction:
    return "Missing Exceptional Reaction";
  case BugCategory::MissingReturnInThen:
    return "Missing Return In Then";
  case BugCategory::DoubleSettle:
    return "Double Resolve or Reject";
  case BugCategory::ExpectSyncCallback:
    return "Expect Sync Callback";
  case BugCategory::BrokenPromiseChain:
    return "Broken Promise Chain";
  case BugCategory::EventRace:
    return "Event Race";
  case BugCategory::ListenerLeak:
    return "Listener Leak";
  }
  return "Unknown";
}

/// One reported warning, anchored to a graph node and a source location.
/// The message text is interned; warnings are deduplicated anyway, so the
/// symbol table holds each distinct message once.
struct Warning {
  BugCategory Category;
  Symbol Message;
  SourceLocation Loc;
  NodeId Node = InvalidNode;
  uint32_t Tick = 0;
  /// Sticky warnings record definitive verdicts (e.g. a listener whose
  /// emitter was released without ever emitting) and survive
  /// AsyncGraph::clearWarnings; non-sticky ones are end-of-drain snapshots
  /// that detectors clear and recompute on every loop drain.
  bool Sticky = false;
};

} // namespace ag
} // namespace asyncg

#endif // ASYNCG_AG_WARNING_H
