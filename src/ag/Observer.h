//===- Observer.h - Graph construction observers ----------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observers watch the Async Graph as the builder constructs it; the bug
/// detectors of §VI are observers, which is how AsyncG "automatically
/// analyzes the AG of an application and reports warnings" online while
/// the application runs.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_AG_OBSERVER_H
#define ASYNCG_AG_OBSERVER_H

#include "ag/Graph.h"
#include "instr/Hooks.h"

namespace asyncg {
namespace ag {

class AsyncGBuilder;

/// Interface for online graph analyses. All hooks default to no-ops.
class GraphObserver {
public:
  virtual ~GraphObserver();

  /// Short name for reports.
  virtual const char *observerName() const { return "observer"; }

  /// A new tick opened (its nodes are not yet known).
  virtual void onTickStart(AsyncGBuilder &B, const AgTick &T) {
    (void)B;
    (void)T;
  }

  /// A node was added to the graph.
  virtual void onNodeAdded(AsyncGBuilder &B, NodeId N) {
    (void)B;
    (void)N;
  }

  /// An edge was added to the graph.
  virtual void onEdgeAdded(AsyncGBuilder &B, const AgEdge &E) {
    (void)B;
    (void)E;
  }

  /// Any asynchronous API call, including Misc ones that produce no node
  /// (removeListener and friends).
  virtual void onApiEvent(AsyncGBuilder &B, const instr::ApiCallEvent &E) {
    (void)B;
    (void)E;
  }

  /// The event loop drained: run end-of-run analyses. May fire more than
  /// once if the embedder pumps the loop again; implementations should
  /// recompute rather than accumulate (see AsyncGraph::clearWarnings).
  virtual void onEnd(AsyncGBuilder &B) { (void)B; }
};

} // namespace ag
} // namespace asyncg

#endif // ASYNCG_AG_OBSERVER_H
