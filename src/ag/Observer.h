//===- Observer.h - Graph construction observers ----------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observers watch the Async Graph as the builder constructs it; the bug
/// detectors of §VI are observers, which is how AsyncG "automatically
/// analyzes the AG of an application and reports warnings" online while
/// the application runs.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_AG_OBSERVER_H
#define ASYNCG_AG_OBSERVER_H

#include "ag/Graph.h"
#include "instr/Hooks.h"

namespace asyncg {
namespace ag {

class AsyncGBuilder;

/// Interface for online graph analyses. All hooks default to no-ops.
class GraphObserver {
public:
  virtual ~GraphObserver();

  /// Short name for reports.
  virtual const char *observerName() const { return "observer"; }

  /// A new tick opened (its nodes are not yet known).
  virtual void onTickStart(AsyncGBuilder &B, const AgTick &T) {
    (void)B;
    (void)T;
  }

  /// A node was added to the graph.
  virtual void onNodeAdded(AsyncGBuilder &B, NodeId N) {
    (void)B;
    (void)N;
  }

  /// An edge was added to the graph.
  virtual void onEdgeAdded(AsyncGBuilder &B, const AgEdge &E) {
    (void)B;
    (void)E;
  }

  /// Any asynchronous API call, including Misc ones that produce no node
  /// (removeListener and friends).
  virtual void onApiEvent(AsyncGBuilder &B, const instr::ApiCallEvent &E) {
    (void)B;
    (void)E;
  }

  /// A pending registration was explicitly removed (removeListener,
  /// removeAllListeners). \p Cr is the registration's CR node, still live.
  virtual void onRegistrationRemoved(AsyncGBuilder &B, NodeId Cr) {
    (void)B;
    (void)Cr;
  }

  /// A pending registration was released because the object it was bound
  /// to (its emitter or promise) was released: it can never fire again.
  /// \p Cr is the registration's CR node, still live — detectors can issue
  /// definitive (sticky) verdicts here. Fired once per released pending
  /// registration, before the registration is erased.
  virtual void onRegistrationReleased(AsyncGBuilder &B, NodeId Cr) {
    (void)B;
    (void)Cr;
  }

  /// A tracked object (promise or emitter) was released by the program.
  /// \p Ob is its OB node or InvalidNode if the object was never bound
  /// into the graph. Fired after every registration bound to the object
  /// was released (see onRegistrationReleased).
  virtual void onObjectReleased(AsyncGBuilder &B, NodeId Ob,
                                jsrt::ObjectId Obj, bool IsPromise) {
    (void)B;
    (void)Ob;
    (void)Obj;
    (void)IsPromise;
  }

  /// The region rooted at tick \p TickIndex is about to be retired: its
  /// nodes will be folded into the graph's RetiredSummary and reclaimed
  /// when this returns. Observers must drop any state keyed by the
  /// region's tick or node ids.
  virtual void onRegionRetire(AsyncGBuilder &B, uint32_t TickIndex) {
    (void)B;
    (void)TickIndex;
  }

  /// The event loop drained: run end-of-run analyses. May fire more than
  /// once if the embedder pumps the loop again; implementations should
  /// recompute rather than accumulate (see AsyncGraph::clearWarnings).
  virtual void onEnd(AsyncGBuilder &B) { (void)B; }
};

} // namespace ag
} // namespace asyncg

#endif // ASYNCG_AG_OBSERVER_H
