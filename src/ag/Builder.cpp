//===- Builder.cpp - AsyncG: builds the Async Graph at runtime ---------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "ag/Builder.h"

#include "ag/Templates.h"

#include <cassert>

using namespace asyncg;
using namespace asyncg::ag;
using namespace asyncg::jsrt;

GraphObserver::~GraphObserver() = default;

AsyncGBuilder::AsyncGBuilder(BuilderConfig Config) : Config(Config) {
  if (Config.BuildGraph)
    Graph.reserveHint(Config.ExpectedNodes, Config.ExpectedEdges);
  CurTick.Nodes.reserve(16);
}

AsyncGBuilder::~AsyncGBuilder() = default;

NodeId AsyncGBuilder::currentCe() const {
  for (auto It = CeStack.rbegin(), E = CeStack.rend(); It != E; ++It)
    if (*It != InvalidNode)
      return *It;
  return InvalidNode;
}

std::vector<NodeId> AsyncGBuilder::activeCes() const {
  std::vector<NodeId> R;
  for (NodeId N : CeStack)
    if (N != InvalidNode)
      R.push_back(N);
  return R;
}

bool AsyncGBuilder::filtered(ApiKind Api) const {
  if (!Config.TrackPromises && isPromiseApi(Api))
    return true;
  if (!Config.TrackEmitters &&
      (isEmitterRegistrationApi(Api) || Api == ApiKind::EmitterEmit ||
       Api == ApiKind::EmitterRemoveListener ||
       Api == ApiKind::EmitterRemoveAll))
    return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Ticks (Algorithm 1)
//===----------------------------------------------------------------------===//

void AsyncGBuilder::openTick(PhaseKind Phase) {
  commitTick();
  CurTick.Nodes.clear();
  CurTick.Index = static_cast<uint32_t>(++TickCounter);
  CurTick.Phase = Phase;
  TickOpen = true;
  for (GraphObserver *O : Observers)
    O->onTickStart(*this, CurTick);
}

void AsyncGBuilder::commitTick() {
  if (!TickOpen)
    return;
  if (!CurTick.Nodes.empty()) {
    // Move the node list into the graph instead of copying it; the next
    // tick's vector is pre-sized to the committed tick's node count.
    size_t LastTickNodes = CurTick.Nodes.size();
    uint32_t Committed = CurTick.Index;
    Graph.appendTick(std::move(CurTick));
    CurTick.Nodes = std::vector<NodeId>();
    CurTick.Nodes.reserve(LastTickNodes);
    ++CommittedCount;
    if (Config.Retire) {
      RegionOrdinal[Committed] = CommittedCount;
      // A tick with no obligations quiesces at commit; otherwise the last
      // unpin queues it (see unpinRegion).
      if (!RegionPending.contains(Committed))
        Quiesced.push_back(Committed);
      runRetireScan();
    }
  }
  CurTick.Nodes.clear();
  TickOpen = false;
}

//===----------------------------------------------------------------------===//
// Tick-epoch retirement
//===----------------------------------------------------------------------===//

void AsyncGBuilder::pinRegion(uint32_t Tick) {
  if (!Config.Retire)
    return;
  ++RegionPending[Tick];
}

void AsyncGBuilder::unpinRegion(uint32_t Tick) {
  if (!Config.Retire)
    return;
  uint32_t *Count = RegionPending.find(Tick);
  assert(Count && *Count > 0 && "unpin without a matching pin");
  if (--*Count == 0) {
    RegionPending.erase(Tick);
    // Still-open ticks (no ordinal yet) quiesce at commitTick instead;
    // obligations can only be added while a tick is open.
    if (RegionOrdinal.contains(Tick))
      Quiesced.push_back(Tick);
  }
}

void AsyncGBuilder::runRetireScan() {
  if (!Config.Retire || Quiesced.empty())
    return;
  // Clamped to 1 so the newest committed tick is never retired (its
  // ordinal equals CommittedCount).
  uint64_t Window = Config.RetainWindow ? Config.RetainWindow : 1;
  size_t W = 0;
  for (size_t I = 0; I != Quiesced.size(); ++I) {
    uint32_t T = Quiesced[I];
    const uint64_t *Ord = RegionOrdinal.find(T);
    if (!Ord)
      continue; // stale duplicate of an already-retired region
    if (*Ord + Window > CommittedCount) {
      Quiesced[W++] = T; // still inside the retain window
      continue;
    }
    for (GraphObserver *O : Observers)
      O->onRegionRetire(*this, T);
    Graph.retireTick(T);
    RegionOrdinal.erase(T);
  }
  Quiesced.resize(W);
}

void AsyncGBuilder::onBatchBoundary() {
  // Between pipeline ring drains / replay chunks, on the thread driving
  // this builder. Never retire with a tick open: its nodes still gain
  // edges to recent regions.
  if (Config.Retire && !TickOpen)
    runRetireScan();
}

void AsyncGBuilder::ensureTick(PhaseKind Phase) {
  if (!TickOpen)
    openTick(Phase);
}

//===----------------------------------------------------------------------===//
// Node/edge plumbing
//===----------------------------------------------------------------------===//

Symbol AsyncGBuilder::ceLabel(const Function &F) {
  Scratch.clear();
  F.loc().appendShort(Scratch);
  Scratch += ": ";
  Scratch += F.name();
  return Symbol(std::string_view(Scratch));
}

NodeId AsyncGBuilder::addNode(AgNode N) {
  ensureTick(CurTick.Index == 0 ? PhaseKind::Main : CurTick.Phase);
  NodeId Enclosing = currentCe();
  NodeId Id = Graph.addNode(std::move(N), CurTick);
  // The "happens-in" edge: the enclosing CE to any node created during it.
  if (Enclosing != InvalidNode)
    addEdge(Enclosing, Id, EdgeKind::HappensIn);
  for (GraphObserver *O : Observers)
    O->onNodeAdded(*this, Id);
  return Id;
}

void AsyncGBuilder::addEdge(NodeId From, NodeId To, EdgeKind Kind,
                            Symbol Label) {
  uint32_t E = Graph.addEdge(From, To, Kind, Label);
  for (GraphObserver *O : Observers)
    O->onEdgeAdded(*this, Graph.edges()[E]);
}

//===----------------------------------------------------------------------===//
// Function enter/exit (Algorithms 1 and 3)
//===----------------------------------------------------------------------===//

void AsyncGBuilder::onFunctionEnter(const instr::FunctionEnterEvent &E) {
  const DispatchInfo &D = E.Dispatch;

  // §V-B: when AsyncG is enabled in the middle of a run the real stack may
  // not be empty; it waits for the current tick to finish and constructs
  // the shadow stack from the following tick. We synchronize at the first
  // top-level dispatch we observe.
  if (!Synced) {
    if (!D.TopLevel)
      return;
    Synced = true;
  }

  // Algorithm 1: a new tick starts when the shadow stack is empty; its
  // type comes from the dispatch (getIterType).
  if (ShadowStack.empty())
    openTick(D.Phase);
  ShadowStack.push_back(E.F.id());

  NodeId Ce = InvalidNode;
  if (Config.BuildGraph && !filtered(D.Api)) {
    // Algorithm 3: map this execution to a pending registration.
    if (std::vector<PendingReg> *RegsP = Pending.find(E.F.id())) {
      auto &Regs = *RegsP;
      for (size_t I = 0, N = Regs.size(); I != N; ++I) {
        PendingReg &Reg = Regs[I];
        if (!ContextValidator::isValid(Reg, D, CurTick.Phase))
          continue;
        assert(ContextValidator::contextMatches(Reg, D, CurTick.Phase) &&
               "registration id and contextual validation disagree");

        AgNode Node;
        Node.Kind = NodeKind::CE;
        Node.Loc = E.F.loc();
        Node.Api = Reg.Api;
        Node.Label = ceLabel(E.F);
        Node.Func = E.F.id();
        Node.Sched = Reg.Sched;
        Node.Obj = Reg.BoundObj;
        Node.Event = Reg.Event;
        Node.Internal = E.F.isBuiltin();
        Ce = addNode(std::move(Node));

        // Dashed binding edge CE ⇠ CR.
        addEdge(Ce, Reg.Cr, EdgeKind::Binding);
        // Causal edge from the trigger if one exists, else from the CR.
        NodeId Ct = D.Trigger.isNone() ? InvalidNode
                                       : Graph.triggerNode(D.Trigger.Id);
        if (Ct != InvalidNode)
          addEdge(Ct, Ce, EdgeKind::Causal);
        else
          addEdge(Reg.Cr, Ce, EdgeKind::Causal);

        ++Graph.node(Reg.Cr).ExecCount;
        if (Reg.Once) {
          unpinRegion(Reg.RegTick);
          Regs.erase(Regs.begin() + static_cast<ptrdiff_t>(I));
          // Drop the emptied key so the map stays proportional to the
          // genuinely pending registrations.
          if (Regs.empty())
            Pending.erase(E.F.id());
        }
        break;
      }
    }

    // Top-level executions without a tracked registration (internal I/O
    // dispatchers, pass-through micro-tasks) still root their tick —
    // unless the whole phase is excluded by the configuration.
    if (Ce == InvalidNode && D.TopLevel &&
        !(D.Phase == PhaseKind::PromiseMicro && !Config.TrackPromises)) {
      AgNode Node;
      Node.Kind = NodeKind::CE;
      Node.Loc = E.F.loc();
      Node.Api = D.Api;
      Node.Label = ceLabel(E.F);
      Node.Func = E.F.id();
      Node.Sched = D.Sched;
      Node.Internal = true;
      Ce = addNode(std::move(Node));
      // Pass-through micro-tasks (a reaction with no handler for the taken
      // path) still consume their registration: bind the CE to the CR even
      // though the executing body is internal.
      NodeId Cr = D.Sched != 0 ? Graph.registrationNode(D.Sched)
                               : InvalidNode;
      if (Cr != InvalidNode) {
        addEdge(Ce, Cr, EdgeKind::Binding);
        ++Graph.node(Cr).ExecCount;
      }
      NodeId Ct = D.Trigger.isNone() ? InvalidNode
                                     : Graph.triggerNode(D.Trigger.Id);
      if (Ct != InvalidNode)
        addEdge(Ct, Ce, EdgeKind::Causal);
      else if (Cr != InvalidNode)
        addEdge(Cr, Ce, EdgeKind::Causal);
    }
  }
  CeStack.push_back(Ce);
}

void AsyncGBuilder::onFunctionExit(const instr::FunctionExitEvent &E) {
  // Exits of frames entered before the builder attached are ignored
  // (mid-run activation, see onFunctionEnter).
  if (!Synced || ShadowStack.empty())
    return;
  [[maybe_unused]] FunctionId Popped = ShadowStack.back();
  ShadowStack.pop_back();
  assert(Popped == E.F.id() && "shadow stack out of sync");
  (void)E;
  CeStack.pop_back();
  if (ShadowStack.empty())
    commitTick();
}

//===----------------------------------------------------------------------===//
// API calls (Algorithm 2)
//===----------------------------------------------------------------------===//

void AsyncGBuilder::processRegistration(const instr::ApiCallEvent &E) {
  AgNode Node;
  Node.Kind = NodeKind::CR;
  Node.Loc = E.Loc;
  Node.Api = E.Api;
  Node.Label = crLabel(E, Scratch);
  Node.Func = E.Callbacks.empty() ? 0 : E.Callbacks.front().id();
  Node.Sched = E.Sched;
  Node.Obj = E.BoundObj;
  Node.Event = E.EventName;
  Node.Internal = E.Internal || E.Loc.isInternal();
  Node.TimeoutMs = E.TimeoutMs;
  Node.HasRejectHandler = E.HasRejectHandler;
  Node.DerivedObj = E.DerivedObj;
  NodeId Cr = addNode(std::move(Node));

  for (const Function &Cb : E.Callbacks) {
    PendingReg Reg;
    Reg.Cr = Cr;
    Reg.Sched = E.Sched;
    Reg.Api = E.Api;
    Reg.TargetPhase = E.TargetPhase;
    Reg.Once = E.Once;
    Reg.BoundObj = E.BoundObj;
    Reg.Event = E.EventName;
    Reg.RegTick = Graph.node(Cr).Tick;
    pinRegion(Reg.RegTick);
    Pending[Cb.id()].push_back(std::move(Reg));
  }

  // Relation edge from the bound object's OB node (△ ⇠ □, labeled with the
  // event name for emitters and the API name for promises).
  if (E.BoundObj != 0) {
    NodeId Ob = Graph.objectNode(E.BoundObj);
    if (Ob != InvalidNode)
      addEdge(Ob, Cr, EdgeKind::Relation,
              E.EventName.empty() ? apiKindSymbol(E.Api) : E.EventName);
  }
}

void AsyncGBuilder::processTrigger(const instr::ApiCallEvent &E) {
  AgNode Node;
  Node.Kind = NodeKind::CT;
  Node.Loc = E.Loc;
  Node.Api = E.Api;
  Node.Label = ctLabel(E, Scratch);
  Node.Obj = E.BoundObj;
  Node.Trigger = E.Trigger;
  Node.Event = E.EventName;
  Node.HadEffect = E.TriggerHadEffect;
  Node.Internal = E.Internal || E.Loc.isInternal();
  NodeId Ct = addNode(std::move(Node));

  if (E.BoundObj != 0) {
    NodeId Ob = Graph.objectNode(E.BoundObj);
    if (Ob != InvalidNode)
      addEdge(Ob, Ct, EdgeKind::Relation,
              E.EventName.empty() ? apiKindSymbol(E.Api) : E.EventName);
  }
}

void AsyncGBuilder::processCombinator(const instr::ApiCallEvent &E) {
  NodeId Result = Graph.objectNode(E.BoundObj);
  if (Result == InvalidNode)
    return;
  for (ObjectId In : E.InputObjs) {
    NodeId Ob = Graph.objectNode(In);
    if (Ob != InvalidNode)
      addEdge(Ob, Result, EdgeKind::Relation, apiKindSymbol(E.Api));
  }
}

void AsyncGBuilder::processRemoval(const instr::ApiCallEvent &E) {
  // A removed registration can never fire: mark its CR, notify observers,
  // and erase it from the pending lists (releasing its region pin).
  if (E.Api == ApiKind::EmitterRemoveListener) {
    if (!E.TriggerHadEffect || E.Callbacks.empty())
      return;
    FunctionId Fn = E.Callbacks.front().id();
    std::vector<PendingReg> *Regs = Pending.find(Fn);
    if (!Regs)
      return;
    for (size_t I = 0, N = Regs->size(); I != N; ++I) {
      PendingReg &Reg = (*Regs)[I];
      if (Reg.BoundObj != E.BoundObj || Reg.Event != E.EventName)
        continue;
      NodeId CrId = Reg.Cr;
      Graph.node(CrId).Removed = true;
      unpinRegion(Reg.RegTick);
      Regs->erase(Regs->begin() + static_cast<ptrdiff_t>(I));
      if (Regs->empty())
        Pending.erase(Fn);
      for (GraphObserver *O : Observers)
        O->onRegistrationRemoved(*this, CrId);
      return;
    }
    return;
  }

  if (E.Api == ApiKind::EmitterRemoveAll) {
    KeyScratch.clear();
    for (auto &[Fn, Regs] : Pending) {
      size_t W = 0;
      for (size_t I = 0; I != Regs.size(); ++I) {
        PendingReg &Reg = Regs[I];
        if (Reg.BoundObj == E.BoundObj && Reg.Event == E.EventName) {
          NodeId CrId = Reg.Cr;
          Graph.node(CrId).Removed = true;
          unpinRegion(Reg.RegTick);
          for (GraphObserver *O : Observers)
            O->onRegistrationRemoved(*this, CrId);
          continue;
        }
        if (W != I)
          Regs[W] = std::move(Regs[I]);
        ++W;
      }
      Regs.resize(W);
      if (Regs.empty())
        KeyScratch.push_back(Fn);
    }
    // Erase emptied keys after the iteration: FlatMap must not be mutated
    // while being walked.
    for (FunctionId Fn : KeyScratch)
      Pending.erase(Fn);
  }
}

void AsyncGBuilder::onApiCall(const instr::ApiCallEvent &E) {
  if (!Config.BuildGraph || filtered(E.Api))
    return;

  ApiTemplate T = getAsyncTemplate(E.Api);
  switch (T.Kind) {
  case TemplateKind::Registration:
    // Internal calls without callbacks are bookkeeping, not registrations.
    if (!E.Callbacks.empty())
      processRegistration(E);
    break;
  case TemplateKind::Trigger:
    processTrigger(E);
    break;
  case TemplateKind::Combinator:
    processCombinator(E);
    break;
  case TemplateKind::Misc:
    processRemoval(E);
    break;
  }

  for (GraphObserver *O : Observers)
    O->onApiEvent(*this, E);
}

//===----------------------------------------------------------------------===//
// Objects, reactions, loop end
//===----------------------------------------------------------------------===//

void AsyncGBuilder::onObjectCreate(const instr::ObjectCreateEvent &E) {
  if (!Config.BuildGraph)
    return;
  if (E.IsPromise ? !Config.TrackPromises : !Config.TrackEmitters)
    return;

  AgNode Node;
  Node.Kind = NodeKind::OB;
  Node.Loc = E.Loc;
  Node.Label = obLabel(E, Scratch);
  Node.Obj = E.Obj;
  Node.Internal = E.Internal || E.Loc.isInternal();
  Node.IsPromise = E.IsPromise;
  NodeId Ob = addNode(std::move(Node));
  // The OB pins its region until the runtime releases the object: queries
  // and detectors can reach it for as long as the program can.
  pinRegion(Graph.node(Ob).Tick);

  // Promise chain relation: parent △ ⇠ derived △ labeled with the API.
  if (E.Parent != 0) {
    NodeId Parent = Graph.objectNode(E.Parent);
    if (Parent != InvalidNode)
      addEdge(Parent, Ob, EdgeKind::Relation, apiKindSymbol(E.Relation));
  }
}

void AsyncGBuilder::onReactionResult(const instr::ReactionResultEvent &E) {
  if (!Config.BuildGraph || !Config.TrackPromises)
    return;
  NodeId Ob = Graph.objectNode(E.Derived);
  if (Ob != InvalidNode)
    Graph.node(Ob).ReactionReturnedUndefined = E.ReturnedUndefined;
}

void AsyncGBuilder::onPromiseLink(const instr::PromiseLinkEvent &E) {
  if (!Config.BuildGraph || !Config.TrackPromises)
    return;
  NodeId From = Graph.objectNode(E.Returned);
  NodeId To = Graph.objectNode(E.Derived);
  if (From != InvalidNode && To != InvalidNode)
    addEdge(From, To, EdgeKind::Relation, "link");
}

void AsyncGBuilder::onObjectRelease(const instr::ObjectReleaseEvent &E) {
  if (!Config.BuildGraph)
    return;
  if (E.IsPromise ? !Config.TrackPromises : !Config.TrackEmitters)
    return;

  // Every registration still bound to the object can never fire again:
  // give observers the definitive verdict, then erase it. This runs in
  // both modes so detector inputs are identical with and without --retire.
  KeyScratch.clear();
  for (auto &[Fn, Regs] : Pending) {
    size_t W = 0;
    for (size_t I = 0; I != Regs.size(); ++I) {
      PendingReg &Reg = Regs[I];
      if (Reg.BoundObj == E.Obj) {
        NodeId CrId = Reg.Cr;
        for (GraphObserver *O : Observers)
          O->onRegistrationReleased(*this, CrId);
        unpinRegion(Reg.RegTick);
        continue;
      }
      if (W != I)
        Regs[W] = std::move(Regs[I]);
      ++W;
    }
    Regs.resize(W);
    if (Regs.empty())
      KeyScratch.push_back(Fn);
  }
  for (FunctionId Fn : KeyScratch)
    Pending.erase(Fn);

  NodeId Ob = Graph.objectNode(E.Obj);
  for (GraphObserver *O : Observers)
    O->onObjectReleased(*this, Ob, E.Obj, E.IsPromise);
  // The object's OB node (if it was ever bound into the graph) no longer
  // pins its region.
  if (Ob != InvalidNode)
    unpinRegion(Graph.node(Ob).Tick);
}

void AsyncGBuilder::onLoopEnd(const instr::LoopEndEvent &E) {
  (void)E;
  assert(ShadowStack.empty() && "loop ended mid-callback");
  commitTick();
  // Regions quiesced by releases since the last commit retire now, before
  // end-of-run analyses run over the retained window.
  runRetireScan();
  for (GraphObserver *O : Observers)
    O->onEnd(*this);
}

size_t AsyncGBuilder::memoryFootprint() const {
  size_t Bytes = Graph.memoryFootprint();
  Bytes += Pending.memoryUsage();
  for (const auto &KV : Pending)
    Bytes += KV.second.capacity() * sizeof(PendingReg);
  Bytes += RegionPending.memoryUsage();
  Bytes += RegionOrdinal.memoryUsage();
  Bytes += Quiesced.capacity() * sizeof(uint32_t);
  Bytes += KeyScratch.capacity() * sizeof(jsrt::FunctionId);
  Bytes += ShadowStack.capacity() * sizeof(jsrt::FunctionId);
  Bytes += CeStack.capacity() * sizeof(NodeId);
  Bytes += CurTick.Nodes.capacity() * sizeof(NodeId);
  return Bytes;
}
