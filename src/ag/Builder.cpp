//===- Builder.cpp - AsyncG: builds the Async Graph at runtime ---------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "ag/Builder.h"

#include "ag/Templates.h"

#include <cassert>

using namespace asyncg;
using namespace asyncg::ag;
using namespace asyncg::jsrt;

GraphObserver::~GraphObserver() = default;

AsyncGBuilder::AsyncGBuilder(BuilderConfig Config) : Config(Config) {
  if (Config.BuildGraph)
    Graph.reserveHint(Config.ExpectedNodes, Config.ExpectedEdges);
  CurTick.Nodes.reserve(16);
}

AsyncGBuilder::~AsyncGBuilder() = default;

NodeId AsyncGBuilder::currentCe() const {
  for (auto It = CeStack.rbegin(), E = CeStack.rend(); It != E; ++It)
    if (*It != InvalidNode)
      return *It;
  return InvalidNode;
}

std::vector<NodeId> AsyncGBuilder::activeCes() const {
  std::vector<NodeId> R;
  for (NodeId N : CeStack)
    if (N != InvalidNode)
      R.push_back(N);
  return R;
}

bool AsyncGBuilder::filtered(ApiKind Api) const {
  if (!Config.TrackPromises && isPromiseApi(Api))
    return true;
  if (!Config.TrackEmitters &&
      (isEmitterRegistrationApi(Api) || Api == ApiKind::EmitterEmit ||
       Api == ApiKind::EmitterRemoveListener ||
       Api == ApiKind::EmitterRemoveAll))
    return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Ticks (Algorithm 1)
//===----------------------------------------------------------------------===//

void AsyncGBuilder::openTick(PhaseKind Phase) {
  commitTick();
  CurTick.Nodes.clear();
  CurTick.Index = static_cast<uint32_t>(++TickCounter);
  CurTick.Phase = Phase;
  TickOpen = true;
  for (GraphObserver *O : Observers)
    O->onTickStart(*this, CurTick);
}

void AsyncGBuilder::commitTick() {
  if (!TickOpen)
    return;
  if (!CurTick.Nodes.empty()) {
    // Move the node list into the graph instead of copying it; the next
    // tick's vector is pre-sized to the committed tick's node count.
    size_t LastTickNodes = CurTick.Nodes.size();
    Graph.appendTick(std::move(CurTick));
    CurTick.Nodes = std::vector<NodeId>();
    CurTick.Nodes.reserve(LastTickNodes);
  }
  CurTick.Nodes.clear();
  TickOpen = false;
}

void AsyncGBuilder::ensureTick(PhaseKind Phase) {
  if (!TickOpen)
    openTick(Phase);
}

//===----------------------------------------------------------------------===//
// Node/edge plumbing
//===----------------------------------------------------------------------===//

Symbol AsyncGBuilder::ceLabel(const Function &F) {
  Scratch.clear();
  F.loc().appendShort(Scratch);
  Scratch += ": ";
  Scratch += F.name();
  return Symbol(std::string_view(Scratch));
}

NodeId AsyncGBuilder::addNode(AgNode N) {
  ensureTick(CurTick.Index == 0 ? PhaseKind::Main : CurTick.Phase);
  NodeId Enclosing = currentCe();
  NodeId Id = Graph.addNode(std::move(N), CurTick);
  // The "happens-in" edge: the enclosing CE to any node created during it.
  if (Enclosing != InvalidNode)
    addEdge(Enclosing, Id, EdgeKind::HappensIn);
  for (GraphObserver *O : Observers)
    O->onNodeAdded(*this, Id);
  return Id;
}

void AsyncGBuilder::addEdge(NodeId From, NodeId To, EdgeKind Kind,
                            Symbol Label) {
  Graph.addEdge(From, To, Kind, Label);
  for (GraphObserver *O : Observers)
    O->onEdgeAdded(*this, Graph.edges().back());
}

//===----------------------------------------------------------------------===//
// Function enter/exit (Algorithms 1 and 3)
//===----------------------------------------------------------------------===//

void AsyncGBuilder::onFunctionEnter(const instr::FunctionEnterEvent &E) {
  const DispatchInfo &D = E.Dispatch;

  // §V-B: when AsyncG is enabled in the middle of a run the real stack may
  // not be empty; it waits for the current tick to finish and constructs
  // the shadow stack from the following tick. We synchronize at the first
  // top-level dispatch we observe.
  if (!Synced) {
    if (!D.TopLevel)
      return;
    Synced = true;
  }

  // Algorithm 1: a new tick starts when the shadow stack is empty; its
  // type comes from the dispatch (getIterType).
  if (ShadowStack.empty())
    openTick(D.Phase);
  ShadowStack.push_back(E.F.id());

  NodeId Ce = InvalidNode;
  if (Config.BuildGraph && !filtered(D.Api)) {
    // Algorithm 3: map this execution to a pending registration.
    if (std::vector<PendingReg> *RegsP = Pending.find(E.F.id())) {
      auto &Regs = *RegsP;
      for (size_t I = 0, N = Regs.size(); I != N; ++I) {
        PendingReg &Reg = Regs[I];
        if (!ContextValidator::isValid(Reg, D, CurTick.Phase))
          continue;
        assert(ContextValidator::contextMatches(Reg, D, CurTick.Phase) &&
               "registration id and contextual validation disagree");

        AgNode Node;
        Node.Kind = NodeKind::CE;
        Node.Loc = E.F.loc();
        Node.Api = Reg.Api;
        Node.Label = ceLabel(E.F);
        Node.Func = E.F.id();
        Node.Sched = Reg.Sched;
        Node.Obj = Reg.BoundObj;
        Node.Event = Reg.Event;
        Node.Internal = E.F.isBuiltin();
        Ce = addNode(std::move(Node));

        // Dashed binding edge CE ⇠ CR.
        addEdge(Ce, Reg.Cr, EdgeKind::Binding);
        // Causal edge from the trigger if one exists, else from the CR.
        NodeId Ct = D.Trigger.isNone() ? InvalidNode
                                       : Graph.triggerNode(D.Trigger.Id);
        if (Ct != InvalidNode)
          addEdge(Ct, Ce, EdgeKind::Causal);
        else
          addEdge(Reg.Cr, Ce, EdgeKind::Causal);

        ++Graph.node(Reg.Cr).ExecCount;
        if (Reg.Once)
          Regs.erase(Regs.begin() + static_cast<ptrdiff_t>(I));
        break;
      }
    }

    // Top-level executions without a tracked registration (internal I/O
    // dispatchers, pass-through micro-tasks) still root their tick —
    // unless the whole phase is excluded by the configuration.
    if (Ce == InvalidNode && D.TopLevel &&
        !(D.Phase == PhaseKind::PromiseMicro && !Config.TrackPromises)) {
      AgNode Node;
      Node.Kind = NodeKind::CE;
      Node.Loc = E.F.loc();
      Node.Api = D.Api;
      Node.Label = ceLabel(E.F);
      Node.Func = E.F.id();
      Node.Sched = D.Sched;
      Node.Internal = true;
      Ce = addNode(std::move(Node));
      // Pass-through micro-tasks (a reaction with no handler for the taken
      // path) still consume their registration: bind the CE to the CR even
      // though the executing body is internal.
      NodeId Cr = D.Sched != 0 ? Graph.registrationNode(D.Sched)
                               : InvalidNode;
      if (Cr != InvalidNode) {
        addEdge(Ce, Cr, EdgeKind::Binding);
        ++Graph.node(Cr).ExecCount;
      }
      NodeId Ct = D.Trigger.isNone() ? InvalidNode
                                     : Graph.triggerNode(D.Trigger.Id);
      if (Ct != InvalidNode)
        addEdge(Ct, Ce, EdgeKind::Causal);
      else if (Cr != InvalidNode)
        addEdge(Cr, Ce, EdgeKind::Causal);
    }
  }
  CeStack.push_back(Ce);
}

void AsyncGBuilder::onFunctionExit(const instr::FunctionExitEvent &E) {
  // Exits of frames entered before the builder attached are ignored
  // (mid-run activation, see onFunctionEnter).
  if (!Synced || ShadowStack.empty())
    return;
  [[maybe_unused]] FunctionId Popped = ShadowStack.back();
  ShadowStack.pop_back();
  assert(Popped == E.F.id() && "shadow stack out of sync");
  (void)E;
  CeStack.pop_back();
  if (ShadowStack.empty())
    commitTick();
}

//===----------------------------------------------------------------------===//
// API calls (Algorithm 2)
//===----------------------------------------------------------------------===//

void AsyncGBuilder::processRegistration(const instr::ApiCallEvent &E) {
  AgNode Node;
  Node.Kind = NodeKind::CR;
  Node.Loc = E.Loc;
  Node.Api = E.Api;
  Node.Label = crLabel(E, Scratch);
  Node.Func = E.Callbacks.empty() ? 0 : E.Callbacks.front().id();
  Node.Sched = E.Sched;
  Node.Obj = E.BoundObj;
  Node.Event = E.EventName;
  Node.Internal = E.Internal || E.Loc.isInternal();
  Node.TimeoutMs = E.TimeoutMs;
  Node.HasRejectHandler = E.HasRejectHandler;
  Node.DerivedObj = E.DerivedObj;
  NodeId Cr = addNode(std::move(Node));

  for (const Function &Cb : E.Callbacks) {
    PendingReg Reg;
    Reg.Cr = Cr;
    Reg.Sched = E.Sched;
    Reg.Api = E.Api;
    Reg.TargetPhase = E.TargetPhase;
    Reg.Once = E.Once;
    Reg.BoundObj = E.BoundObj;
    Reg.Event = E.EventName;
    Pending[Cb.id()].push_back(std::move(Reg));
  }

  // Relation edge from the bound object's OB node (△ ⇠ □, labeled with the
  // event name for emitters and the API name for promises).
  if (E.BoundObj != 0) {
    NodeId Ob = Graph.objectNode(E.BoundObj);
    if (Ob != InvalidNode)
      addEdge(Ob, Cr, EdgeKind::Relation,
              E.EventName.empty() ? apiKindSymbol(E.Api) : E.EventName);
  }
}

void AsyncGBuilder::processTrigger(const instr::ApiCallEvent &E) {
  AgNode Node;
  Node.Kind = NodeKind::CT;
  Node.Loc = E.Loc;
  Node.Api = E.Api;
  Node.Label = ctLabel(E, Scratch);
  Node.Obj = E.BoundObj;
  Node.Trigger = E.Trigger;
  Node.Event = E.EventName;
  Node.HadEffect = E.TriggerHadEffect;
  Node.Internal = E.Internal || E.Loc.isInternal();
  NodeId Ct = addNode(std::move(Node));

  if (E.BoundObj != 0) {
    NodeId Ob = Graph.objectNode(E.BoundObj);
    if (Ob != InvalidNode)
      addEdge(Ob, Ct, EdgeKind::Relation,
              E.EventName.empty() ? apiKindSymbol(E.Api) : E.EventName);
  }
}

void AsyncGBuilder::processCombinator(const instr::ApiCallEvent &E) {
  NodeId Result = Graph.objectNode(E.BoundObj);
  if (Result == InvalidNode)
    return;
  for (ObjectId In : E.InputObjs) {
    NodeId Ob = Graph.objectNode(In);
    if (Ob != InvalidNode)
      addEdge(Ob, Result, EdgeKind::Relation, apiKindSymbol(E.Api));
  }
}

void AsyncGBuilder::processRemoval(const instr::ApiCallEvent &E) {
  if (E.Api == ApiKind::EmitterRemoveListener) {
    if (!E.TriggerHadEffect || E.Callbacks.empty())
      return;
    std::vector<PendingReg> *Regs = Pending.find(E.Callbacks.front().id());
    if (!Regs)
      return;
    for (PendingReg &Reg : *Regs) {
      if (Reg.BoundObj != E.BoundObj || Reg.Event != E.EventName)
        continue;
      AgNode &Cr = Graph.node(Reg.Cr);
      if (Cr.Removed)
        continue;
      Cr.Removed = true;
      return;
    }
    return;
  }

  if (E.Api == ApiKind::EmitterRemoveAll) {
    for (auto &[Fn, Regs] : Pending) {
      (void)Fn;
      for (PendingReg &Reg : Regs)
        if (Reg.BoundObj == E.BoundObj && Reg.Event == E.EventName)
          Graph.node(Reg.Cr).Removed = true;
    }
  }
}

void AsyncGBuilder::onApiCall(const instr::ApiCallEvent &E) {
  if (!Config.BuildGraph || filtered(E.Api))
    return;

  ApiTemplate T = getAsyncTemplate(E.Api);
  switch (T.Kind) {
  case TemplateKind::Registration:
    // Internal calls without callbacks are bookkeeping, not registrations.
    if (!E.Callbacks.empty())
      processRegistration(E);
    break;
  case TemplateKind::Trigger:
    processTrigger(E);
    break;
  case TemplateKind::Combinator:
    processCombinator(E);
    break;
  case TemplateKind::Misc:
    processRemoval(E);
    break;
  }

  for (GraphObserver *O : Observers)
    O->onApiEvent(*this, E);
}

//===----------------------------------------------------------------------===//
// Objects, reactions, loop end
//===----------------------------------------------------------------------===//

void AsyncGBuilder::onObjectCreate(const instr::ObjectCreateEvent &E) {
  if (!Config.BuildGraph)
    return;
  if (E.IsPromise ? !Config.TrackPromises : !Config.TrackEmitters)
    return;

  AgNode Node;
  Node.Kind = NodeKind::OB;
  Node.Loc = E.Loc;
  Node.Label = obLabel(E, Scratch);
  Node.Obj = E.Obj;
  Node.Internal = E.Internal || E.Loc.isInternal();
  Node.IsPromise = E.IsPromise;
  NodeId Ob = addNode(std::move(Node));

  // Promise chain relation: parent △ ⇠ derived △ labeled with the API.
  if (E.Parent != 0) {
    NodeId Parent = Graph.objectNode(E.Parent);
    if (Parent != InvalidNode)
      addEdge(Parent, Ob, EdgeKind::Relation, apiKindSymbol(E.Relation));
  }
}

void AsyncGBuilder::onReactionResult(const instr::ReactionResultEvent &E) {
  if (!Config.BuildGraph || !Config.TrackPromises)
    return;
  NodeId Ob = Graph.objectNode(E.Derived);
  if (Ob != InvalidNode)
    Graph.node(Ob).ReactionReturnedUndefined = E.ReturnedUndefined;
}

void AsyncGBuilder::onPromiseLink(const instr::PromiseLinkEvent &E) {
  if (!Config.BuildGraph || !Config.TrackPromises)
    return;
  NodeId From = Graph.objectNode(E.Returned);
  NodeId To = Graph.objectNode(E.Derived);
  if (From != InvalidNode && To != InvalidNode)
    addEdge(From, To, EdgeKind::Relation, "link");
}

void AsyncGBuilder::onLoopEnd(const instr::LoopEndEvent &E) {
  (void)E;
  assert(ShadowStack.empty() && "loop ended mid-callback");
  commitTick();
  for (GraphObserver *O : Observers)
    O->onEnd(*this);
}
