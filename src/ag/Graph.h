//===- Graph.h - The Async Graph model --------------------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Async Graph (AG) of §IV: a time-oriented graph whose nodes belong to
/// event-loop ticks. Node kinds: Callback Registration (□ CR), Callback
/// Execution (○ CE), Callback Trigger (★ CT), Object Binding (△ OB).
/// Edge kinds: direct/causal (→), happens-in (○ → nodes executed during the
/// CE), registration binding (dashed CE ⇠ CR), and labeled relation edges
/// (OB ⇠ CR listener registrations, OB ⇠ OB promise chains and links).
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_AG_GRAPH_H
#define ASYNCG_AG_GRAPH_H

#include "ag/Warning.h"
#include "jsrt/ApiKind.h"
#include "jsrt/Ids.h"
#include "jsrt/PhaseKind.h"
#include "support/SourceLocation.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace asyncg {
namespace ag {

/// Async Graph node kinds (§IV-A).
enum class NodeKind {
  CR, ///< □ Callback Registration.
  CE, ///< ○ Callback Execution.
  CT, ///< ★ Callback Trigger (emit / resolve / reject).
  OB, ///< △ Object Binding (promise or emitter creation).
};

inline const char *nodeKindName(NodeKind K) {
  switch (K) {
  case NodeKind::CR:
    return "CR";
  case NodeKind::CE:
    return "CE";
  case NodeKind::CT:
    return "CT";
  case NodeKind::OB:
    return "OB";
  }
  return "?";
}

/// Async Graph edge kinds (§IV-A).
enum class EdgeKind {
  Causal,    ///< α → β: α causes the execution of β (CR→CE, CT→CE).
  HappensIn, ///< CE → node: the node happened during that CE.
  Binding,   ///< CE ⇠ CR (dashed): execution bound to its registration.
  Relation,  ///< dashed labeled edge: OB⇠CR (event name), OB⇠OB (then/link).
};

inline const char *edgeKindName(EdgeKind K) {
  switch (K) {
  case EdgeKind::Causal:
    return "causal";
  case EdgeKind::HappensIn:
    return "happens-in";
  case EdgeKind::Binding:
    return "binding";
  case EdgeKind::Relation:
    return "relation";
  }
  return "?";
}

/// One graph node.
struct AgNode {
  NodeId Id = InvalidNode;
  NodeKind Kind = NodeKind::CR;
  /// 1-based tick index the node belongs to.
  uint32_t Tick = 0;
  SourceLocation Loc;
  jsrt::ApiKind Api = jsrt::ApiKind::None;
  /// Display label, e.g. "L7: createServer".
  std::string Label;
  /// CR: registered callback; CE: executed function.
  jsrt::FunctionId Func = 0;
  /// CR: its registration id; CE: the matched registration's id.
  jsrt::ScheduleId Sched = 0;
  /// OB: the object's id; CR/CT: the bound emitter/promise.
  jsrt::ObjectId Obj = 0;
  /// CT only: the trigger action id.
  jsrt::TriggerId Trigger = 0;
  /// Emitter event name (CR listener registrations, CT emits).
  std::string Event;
  /// True for internal-library nodes (rendered "*").
  bool Internal = false;
  /// OB only: promise (true) or emitter (false).
  bool IsPromise = false;
  /// CT only: whether the action had an effect (emit had listeners, settle
  /// changed state). False means dead emit / double settle.
  bool HadEffect = true;
  /// CR only: number of CE nodes bound to this registration so far.
  uint32_t ExecCount = 0;
  /// CR only: the registration was explicitly removed (removeListener,
  /// clearTimeout); removed registrations are not dead listeners.
  bool Removed = false;
  /// CR only: setTimeout delay in milliseconds.
  double TimeoutMs = 0;
  /// CR only (promise reactions): includes a rejection handler.
  bool HasRejectHandler = false;
  /// CR only (promise reactions): the derived promise.
  jsrt::ObjectId DerivedObj = 0;
  /// OB promise only: a reaction producing this promise returned undefined
  /// (missing-return candidate).
  bool ReactionReturnedUndefined = false;
};

/// One graph edge.
struct AgEdge {
  NodeId From = InvalidNode;
  NodeId To = InvalidNode;
  EdgeKind Kind = EdgeKind::Causal;
  std::string Label;
};

/// One event-loop tick ("t3: io").
struct AgTick {
  uint32_t Index = 0;
  jsrt::PhaseKind Phase = jsrt::PhaseKind::Main;
  std::vector<NodeId> Nodes;

  std::string name() const {
    return "t" + std::to_string(Index) + ": " +
           jsrt::phaseKindName(Phase);
  }
};

/// The Async Graph: ticks, nodes, edges, adjacency, and warnings.
class AsyncGraph {
public:
  /// \name Construction (used by the builder)
  /// @{

  /// Appends a committed (non-empty) tick.
  void appendTick(AgTick T);

  /// Adds a node; assigns its id, records it in its tick, and indexes it.
  /// \p T must be the currently open tick's storage (builder-managed).
  NodeId addNode(AgNode N, AgTick &T);

  /// Adds an edge and updates adjacency.
  void addEdge(NodeId From, NodeId To, EdgeKind Kind,
               std::string Label = std::string());

  /// Records a warning (deduplicated on (category, node)). Returns true if
  /// newly added.
  bool addWarning(Warning W);

  /// Drops all end-of-run warnings so a re-run of the final analyses (after
  /// another loop drain) can recompute them. \p Categories selects which.
  void clearWarnings(const std::set<BugCategory> &Categories);
  /// @}

  /// \name Queries
  /// @{
  const std::vector<AgTick> &ticks() const { return Ticks; }
  const std::vector<AgNode> &nodes() const { return Nodes; }
  const std::vector<AgEdge> &edges() const { return Edges; }
  const std::vector<Warning> &warnings() const { return Warnings; }

  const AgNode &node(NodeId N) const { return Nodes[N]; }
  AgNode &node(NodeId N) { return Nodes[N]; }
  size_t nodeCount() const { return Nodes.size(); }

  /// Edge indices leaving / entering a node.
  const std::vector<uint32_t> &outEdges(NodeId N) const { return Out[N]; }
  const std::vector<uint32_t> &inEdges(NodeId N) const { return In[N]; }
  const AgEdge &edge(uint32_t E) const { return Edges[E]; }

  /// OB node for an object id, or InvalidNode.
  NodeId objectNode(jsrt::ObjectId Obj) const;

  /// CR node for a registration id, or InvalidNode.
  NodeId registrationNode(jsrt::ScheduleId S) const;

  /// CT node for a trigger id, or InvalidNode.
  NodeId triggerNode(jsrt::TriggerId T) const;

  /// All CE nodes bound to a registration.
  std::vector<NodeId> executionsOf(jsrt::ScheduleId S) const;

  /// Warnings of one category.
  std::vector<Warning> warningsOf(BugCategory C) const;

  bool hasWarning(BugCategory C) const;

  /// \returns promise OB nodes derived from \p Obj via then/catch/finally
  /// relation edges (the forward promise chain). When \p Label is
  /// non-null, only derivations through that API count (e.g. "then" for
  /// value-consuming derivations).
  std::vector<NodeId> derivedPromises(NodeId ObNode,
                                      const char *Label = nullptr) const;

  /// \returns the OB this promise was derived from, or InvalidNode.
  NodeId parentPromise(NodeId ObNode) const;
  /// @}

private:
  std::vector<AgTick> Ticks;
  std::vector<AgNode> Nodes;
  std::vector<AgEdge> Edges;
  std::vector<std::vector<uint32_t>> Out;
  std::vector<std::vector<uint32_t>> In;
  std::vector<Warning> Warnings;
  std::set<std::tuple<int, NodeId, std::string>> WarningKeys;
  std::map<jsrt::ObjectId, NodeId> ObjIndex;
  std::map<jsrt::ScheduleId, NodeId> SchedIndex;
  std::map<jsrt::TriggerId, NodeId> TriggerIndex;
  std::multimap<jsrt::ScheduleId, NodeId> ExecIndex;
};

} // namespace ag
} // namespace asyncg

#endif // ASYNCG_AG_GRAPH_H
