//===- Graph.h - The Async Graph model --------------------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Async Graph (AG) of §IV: a time-oriented graph whose nodes belong to
/// event-loop ticks. Node kinds: Callback Registration (□ CR), Callback
/// Execution (○ CE), Callback Trigger (★ CT), Object Binding (△ OB).
/// Edge kinds: direct/causal (→), happens-in (○ → nodes executed during the
/// CE), registration binding (dashed CE ⇠ CR), and labeled relation edges
/// (OB ⇠ CR listener registrations, OB ⇠ OB promise chains and links).
///
/// Storage is built for the instrumentation hot path: labels and event
/// names are interned Symbols (4 bytes, no per-node heap traffic), the
/// id→node indices are open-addressing FlatMaps, and adjacency lists live
/// in one shared pool instead of a vector-per-node.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_AG_GRAPH_H
#define ASYNCG_AG_GRAPH_H

#include "ag/Warning.h"
#include "jsrt/ApiKind.h"
#include "jsrt/Ids.h"
#include "jsrt/PhaseKind.h"
#include "support/FlatMap.h"
#include "support/SourceLocation.h"
#include "support/SymbolTable.h"

#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <vector>

namespace asyncg {
namespace ag {

/// Async Graph node kinds (§IV-A).
enum class NodeKind {
  CR, ///< □ Callback Registration.
  CE, ///< ○ Callback Execution.
  CT, ///< ★ Callback Trigger (emit / resolve / reject).
  OB, ///< △ Object Binding (promise or emitter creation).
};

inline const char *nodeKindName(NodeKind K) {
  switch (K) {
  case NodeKind::CR:
    return "CR";
  case NodeKind::CE:
    return "CE";
  case NodeKind::CT:
    return "CT";
  case NodeKind::OB:
    return "OB";
  }
  return "?";
}

/// Async Graph edge kinds (§IV-A).
enum class EdgeKind {
  Causal,    ///< α → β: α causes the execution of β (CR→CE, CT→CE).
  HappensIn, ///< CE → node: the node happened during that CE.
  Binding,   ///< CE ⇠ CR (dashed): execution bound to its registration.
  Relation,  ///< dashed labeled edge: OB⇠CR (event name), OB⇠OB (then/link).
};

inline const char *edgeKindName(EdgeKind K) {
  switch (K) {
  case EdgeKind::Causal:
    return "causal";
  case EdgeKind::HappensIn:
    return "happens-in";
  case EdgeKind::Binding:
    return "binding";
  case EdgeKind::Relation:
    return "relation";
  }
  return "?";
}

/// One graph node.
struct AgNode {
  NodeId Id = InvalidNode;
  NodeKind Kind = NodeKind::CR;
  /// 1-based tick index the node belongs to.
  uint32_t Tick = 0;
  SourceLocation Loc;
  jsrt::ApiKind Api = jsrt::ApiKind::None;
  /// Display label, e.g. "L7: createServer" (interned).
  Symbol Label;
  /// CR: registered callback; CE: executed function.
  jsrt::FunctionId Func = 0;
  /// CR: its registration id; CE: the matched registration's id.
  jsrt::ScheduleId Sched = 0;
  /// OB: the object's id; CR/CT: the bound emitter/promise.
  jsrt::ObjectId Obj = 0;
  /// CT only: the trigger action id.
  jsrt::TriggerId Trigger = 0;
  /// Emitter event name (CR listener registrations, CT emits), interned.
  Symbol Event;
  /// True for internal-library nodes (rendered "*").
  bool Internal = false;
  /// OB only: promise (true) or emitter (false).
  bool IsPromise = false;
  /// CT only: whether the action had an effect (emit had listeners, settle
  /// changed state). False means dead emit / double settle.
  bool HadEffect = true;
  /// CR only: number of CE nodes bound to this registration so far.
  uint32_t ExecCount = 0;
  /// CR only: the registration was explicitly removed (removeListener,
  /// clearTimeout); removed registrations are not dead listeners.
  bool Removed = false;
  /// CR only: setTimeout delay in milliseconds.
  double TimeoutMs = 0;
  /// CR only (promise reactions): includes a rejection handler.
  bool HasRejectHandler = false;
  /// CR only (promise reactions): the derived promise.
  jsrt::ObjectId DerivedObj = 0;
  /// OB promise only: a reaction producing this promise returned undefined
  /// (missing-return candidate).
  bool ReactionReturnedUndefined = false;
};

/// One graph edge.
struct AgEdge {
  NodeId From = InvalidNode;
  NodeId To = InvalidNode;
  EdgeKind Kind = EdgeKind::Causal;
  Symbol Label;
};

/// One event-loop tick ("t3: io"; "t3: io @s2" on shard 2 of a merged
/// cluster graph).
struct AgTick {
  uint32_t Index = 0;
  jsrt::PhaseKind Phase = jsrt::PhaseKind::Main;
  /// Cluster shard the tick ran on. Only merged multi-loop graphs carry
  /// non-zero shards; it affects name() only when non-zero, so single-loop
  /// graphs render identically with or without the merge layer.
  uint32_t Shard = 0;
  std::vector<NodeId> Nodes;
  /// True once the tick's region was retired: its nodes were reclaimed and
  /// folded into the graph's RetiredSummary. Kept as a tombstone (Index
  /// still orders the vector for binary search) until compaction.
  bool Retired = false;

  std::string name() const {
    std::string S("t");
    S += std::to_string(Index);
    S += ": ";
    S += jsrt::phaseKindName(Phase);
    if (Shard != 0) {
      S += " @s";
      S += std::to_string(Shard);
    }
    return S;
  }
};

namespace detail {
/// One cell of the shared adjacency pool: an edge index plus the pool
/// index of the next cell in the same per-node list.
struct AdjCell {
  uint32_t Edge;
  uint32_t Next;
};
constexpr uint32_t AdjNil = ~0u;
} // namespace detail

/// Lightweight view over one node's in- or out-edge indices, replacing the
/// per-node std::vector the adjacency used to copy into. Iterates the
/// shared pool in insertion order.
class EdgeRange {
public:
  class iterator {
  public:
    using value_type = uint32_t;
    iterator(const detail::AdjCell *Pool, uint32_t At)
        : Pool(Pool), At(At) {}
    uint32_t operator*() const { return Pool[At].Edge; }
    iterator &operator++() {
      At = Pool[At].Next;
      return *this;
    }
    bool operator==(const iterator &O) const { return At == O.At; }
    bool operator!=(const iterator &O) const { return At != O.At; }

  private:
    const detail::AdjCell *Pool;
    uint32_t At;
  };

  EdgeRange(const detail::AdjCell *Pool, uint32_t Head, uint32_t Count)
      : Pool(Pool), Head(Head), Count(Count) {}

  iterator begin() const { return iterator(Pool, Head); }
  iterator end() const { return iterator(Pool, detail::AdjNil); }
  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  uint32_t front() const { return Pool[Head].Edge; }

  /// O(I) chain walk; kept for tests and occasional positional access.
  uint32_t operator[](size_t I) const {
    uint32_t At = Head;
    while (I--)
      At = Pool[At].Next;
    return Pool[At].Edge;
  }

private:
  const detail::AdjCell *Pool;
  uint32_t Head;
  uint32_t Count;
};

/// Compact residue of retired regions: what the graph remembers about
/// reclaimed ticks once their nodes and edges are gone. Bounded by the
/// number of distinct APIs and source locations, not by run length.
struct RetiredSummary {
  uint64_t Ticks = 0;
  uint64_t Nodes = 0;
  uint64_t Edges = 0;
  /// Nodes by NodeKind (CR/CE/CT/OB).
  uint64_t ByKind[4] = {0, 0, 0, 0};
  /// Nodes per jsrt::ApiKind (cast to uint32_t).
  FlatMap<uint32_t, uint64_t> ByApi;
  /// Nodes per packed (file symbol << 32 | line) source location.
  FlatMap<uint64_t, uint64_t> ByLoc;
};

/// The Async Graph: ticks, nodes, edges, adjacency, and warnings.
class AsyncGraph {
public:
  /// \name Construction (used by the builder)
  /// @{

  /// Appends a committed (non-empty) tick.
  void appendTick(AgTick T);

  /// Adds a node; assigns its id, records it in its tick, and indexes it.
  /// \p T must be the currently open tick's storage (builder-managed).
  NodeId addNode(AgNode N, AgTick &T);

  /// Adds an edge and updates adjacency. Returns the edge's slot in
  /// edges() — a recycled freelist slot when regions have retired, so
  /// callers must not assume the new edge is edges().back().
  uint32_t addEdge(NodeId From, NodeId To, EdgeKind Kind,
                   Symbol Label = Symbol());

  /// Records a warning (deduplicated on (category, message, location) —
  /// deliberately not on the node id, which is recycled once regions
  /// retire). Returns true if newly added.
  bool addWarning(Warning W);

  /// Drops all non-sticky end-of-run warnings so a re-run of the final
  /// analyses (after another loop drain) can recompute them. \p Categories
  /// selects which. Sticky warnings (definitive verdicts) survive.
  void clearWarnings(const std::set<BugCategory> &Categories);

  /// Pre-sizes node/edge/adjacency storage for an expected graph size
  /// (builder-known workload hints); cheap to call more than once.
  /// \p ExpectedTicks additionally pre-sizes the tick storage (callers
  /// with an exact workload size, like the ingest hub's frame pre-scan;
  /// 0 leaves it growing on demand).
  void reserveHint(size_t ExpectedNodes, size_t ExpectedEdges,
                   size_t ExpectedTicks = 0);

  /// Retires the region rooted at tick \p Index: folds every node into the
  /// RetiredSummary, unlinks and frees all incident edges and adjacency
  /// cells, drops the id-index entries, invalidates warnings anchored to
  /// the dying nodes, and pushes node/edge slots onto freelists so live
  /// NodeIds stay stable while storage is recycled. The caller (the
  /// builder) guarantees the region has quiesced: no pending registration,
  /// live listener/timer, or unreleased tracked object pins it. No-op if
  /// the tick is unknown or already retired.
  void retireTick(uint32_t Index);
  /// @}

  /// \name Queries
  /// @{
  const std::vector<AgTick> &ticks() const { return Ticks; }
  const std::vector<AgNode> &nodes() const { return Nodes; }
  const std::vector<AgEdge> &edges() const { return Edges; }
  const std::vector<Warning> &warnings() const { return Warnings; }

  const AgNode &node(NodeId N) const { return Nodes[N]; }
  AgNode &node(NodeId N) { return Nodes[N]; }

  /// Live node count (slots minus freelisted ones). Equals nodes().size()
  /// until regions retire.
  size_t nodeCount() const { return Nodes.size() - FreeNodes.size(); }
  size_t liveEdgeCount() const { return Edges.size() - FreeEdges.size(); }
  size_t liveTickCount() const { return Ticks.size() - RetiredInVector; }

  /// True if the node slot was reclaimed by retirement (cold-path scans
  /// over nodes() must skip these).
  bool deadNode(NodeId N) const { return Nodes[N].Id == InvalidNode; }
  /// True if the edge slot was reclaimed by retirement.
  bool deadEdge(uint32_t E) const { return Edges[E].From == InvalidNode; }

  /// Aggregate residue of everything retired so far.
  const RetiredSummary &retired() const { return Summary; }

  /// Edge indices leaving / entering a node.
  EdgeRange outEdges(NodeId N) const {
    return EdgeRange(AdjPool.data(), Out[N].Head, Out[N].Count);
  }
  EdgeRange inEdges(NodeId N) const {
    return EdgeRange(AdjPool.data(), In[N].Head, In[N].Count);
  }
  const AgEdge &edge(uint32_t E) const { return Edges[E]; }

  /// OB node for an object id, or InvalidNode.
  NodeId objectNode(jsrt::ObjectId Obj) const;

  /// CR node for a registration id, or InvalidNode.
  NodeId registrationNode(jsrt::ScheduleId S) const;

  /// CT node for a trigger id, or InvalidNode.
  NodeId triggerNode(jsrt::TriggerId T) const;

  /// All CE nodes bound to a registration, in execution order.
  std::vector<NodeId> executionsOf(jsrt::ScheduleId S) const;

  /// Warnings of one category.
  std::vector<Warning> warningsOf(BugCategory C) const;

  bool hasWarning(BugCategory C) const;

  /// \returns promise OB nodes derived from \p Obj via then/catch/finally
  /// relation edges (the forward promise chain). When \p Label is
  /// non-null, only derivations through that API count (e.g. "then" for
  /// value-consuming derivations).
  std::vector<NodeId> derivedPromises(NodeId ObNode,
                                      const char *Label = nullptr) const;

  /// \returns the OB this promise was derived from, or InvalidNode.
  NodeId parentPromise(NodeId ObNode) const;

  /// Bytes held by the graph's own storage (nodes, edges, adjacency pool,
  /// indices, ticks, warnings). The shared symbol table is global and
  /// reported separately by symtab().memoryUsage().
  size_t memoryFootprint() const;
  /// @}

private:
  /// Per-node adjacency list head/tail into AdjPool.
  struct AdjList {
    uint32_t Head = detail::AdjNil;
    uint32_t Tail = detail::AdjNil;
    uint32_t Count = 0;
  };

  /// Per-registration execution chain head/tail into ExecPool.
  struct ExecChain {
    uint32_t Head = detail::AdjNil;
    uint32_t Tail = detail::AdjNil;
  };

  void pushAdj(AdjList &L, uint32_t E);
  /// Unlinks the cell for edge \p E from list \p L and freelists it.
  void unlinkAdj(AdjList &L, uint32_t E);
  /// Unlinks \p E from both endpoints' adjacency and freelists the slot.
  void removeEdge(uint32_t E);
  /// Reclaims one node: edges, index entries, exec chains, then the slot.
  void retireNode(NodeId N);

  std::vector<AgTick> Ticks;
  std::vector<AgNode> Nodes;
  std::vector<AgEdge> Edges;
  std::vector<AdjList> Out;
  std::vector<AdjList> In;
  /// Shared pool of adjacency cells (one per edge per direction).
  std::vector<detail::AdjCell> AdjPool;
  std::vector<Warning> Warnings;
  /// Dedup key: (category, message symbol, file symbol, line). The node id
  /// is deliberately excluded: ids are recycled across retired regions, and
  /// keying on the site keeps warning storage bounded by distinct sites.
  std::set<std::tuple<int, SymbolId, SymbolId, uint32_t>> WarningKeys;
  FlatMap<jsrt::ObjectId, NodeId> ObjIndex;
  FlatMap<jsrt::ScheduleId, NodeId> SchedIndex;
  FlatMap<jsrt::TriggerId, NodeId> TriggerIndex;
  /// CE nodes per registration id, chained through ExecPool in insertion
  /// order (replaces the std::multimap).
  FlatMap<jsrt::ScheduleId, ExecChain> ExecIndex;
  std::vector<detail::AdjCell> ExecPool;

  /// \name Retirement storage
  /// Freelists recycle slots so live ids stay stable; the summary is the
  /// bounded residue of everything reclaimed.
  /// @{
  std::vector<NodeId> FreeNodes;
  std::vector<uint32_t> FreeEdges;
  uint32_t AdjFree = detail::AdjNil;
  uint32_t ExecFree = detail::AdjNil;
  /// Tombstoned (retired) AgTick entries still in Ticks; the vector is
  /// compacted once they dominate.
  size_t RetiredInVector = 0;
  RetiredSummary Summary;
  /// @}
};

} // namespace ag
} // namespace asyncg

#endif // ASYNCG_AG_GRAPH_H
