//===- Case.h - Table-I bug case infrastructure -----------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Infrastructure for the paper's evaluation case study (§VII-A, Table I):
/// each real-world bug (StackOverflow question / GitHub issue) is
/// re-implemented as a small jsrt program, in a buggy and (where the paper
/// gives one) a fixed variant. The case runner executes a variant under a
/// configurable analysis and reports which bug categories were detected.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_CASES_CASE_H
#define ASYNCG_CASES_CASE_H

#include "ag/Builder.h"
#include "ag/Warning.h"
#include "detect/Detectors.h"
#include "jsrt/Runtime.h"

#include <functional>
#include <set>
#include <string>
#include <vector>

namespace asyncg {
namespace cases {

/// One Table-I case.
struct CaseDef {
  /// Bug identifier as in Table I ("SO-33330277", "GH-npm-12754").
  std::string Name;
  /// One-line description of the programmer's mistake.
  std::string Description;
  /// The category Table I assigns.
  ag::BugCategory Expected;
  /// True when a fixed variant exists.
  bool HasFix = true;
  /// Runtime configuration (e.g. a tick budget for starving programs).
  jsrt::RuntimeConfig Config;
  /// Builds and runs the program (calls RT.main). \p Fixed selects the
  /// fixed variant.
  std::function<void(jsrt::Runtime &RT, bool Fixed)> Run;
  /// Optional post-run analysis for the §VI-B manual patterns (AG queries);
  /// runs after the loop with the built graph.
  std::function<void(jsrt::Runtime &RT, ag::AsyncGraph &G)> PostAnalysis;
};

/// Result of one case execution.
struct CaseResult {
  std::string Name;
  ag::BugCategory Expected;
  bool Fixed = false;
  /// Categories of all warnings reported.
  std::set<ag::BugCategory> Detected;
  /// All warnings, for reports.
  std::vector<ag::Warning> Warnings;
  /// Whether the expected category was reported.
  bool ExpectedDetected = false;
  uint64_t Ticks = 0;
  size_t GraphNodes = 0;
  size_t GraphEdges = 0;
  size_t UncaughtErrors = 0;

  /// For the buggy variant: detection succeeded. For the fixed variant:
  /// the expected bug is gone.
  bool passed() const { return Fixed ? !ExpectedDetected : ExpectedDetected; }
};

/// All Table-I cases (plus the §VII-A SO-17894000 case-study entry), in
/// the paper's order.
const std::vector<CaseDef> &allCases();

/// Looks a case up by name; asserts it exists.
const CaseDef &findCase(const std::string &Name);

/// Runs one case variant under AsyncG with the full detector suite.
CaseResult runCase(const CaseDef &Def, bool Fixed,
                   ag::BuilderConfig BCfg = ag::BuilderConfig(),
                   detect::DetectorConfig DCfg = detect::DetectorConfig());

/// Runs a case under an arbitrary analysis (used by the Table-II coverage
/// bench with the baseline analyzers). The analysis is attached before the
/// program runs; warnings must be retrievable by the caller afterwards.
void runCaseWith(const CaseDef &Def, bool Fixed,
                 instr::AnalysisBase &Analysis);

} // namespace cases
} // namespace asyncg

#endif // ASYNCG_CASES_CASE_H
