//===- CaseRunner.cpp - executes Table-I cases under an analysis -------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "cases/Case.h"

#include <cassert>

using namespace asyncg;
using namespace asyncg::cases;
using namespace asyncg::jsrt;

const CaseDef &asyncg::cases::findCase(const std::string &Name) {
  for (const CaseDef &C : allCases())
    if (C.Name == Name)
      return C;
  assert(false && "unknown case name");
  static CaseDef Dummy;
  return Dummy;
}

CaseResult asyncg::cases::runCase(const CaseDef &Def, bool Fixed,
                                  ag::BuilderConfig BCfg,
                                  detect::DetectorConfig DCfg) {
  Runtime RT(Def.Config);
  ag::AsyncGBuilder Builder(BCfg);
  detect::DetectorSuite Detectors(DCfg);
  Detectors.attachTo(Builder);
  RT.hooks().attach(&Builder);

  Def.Run(RT, Fixed);

  if (Def.PostAnalysis)
    Def.PostAnalysis(RT, Builder.graph());

  CaseResult R;
  R.Name = Def.Name;
  R.Expected = Def.Expected;
  R.Fixed = Fixed;
  for (const ag::Warning &W : Builder.graph().warnings()) {
    R.Detected.insert(W.Category);
    R.Warnings.push_back(W);
  }
  R.ExpectedDetected = R.Detected.count(Def.Expected) != 0;
  R.Ticks = RT.tickCount();
  R.GraphNodes = Builder.graph().nodeCount();
  R.GraphEdges = Builder.graph().edges().size();
  R.UncaughtErrors = RT.uncaughtErrors().size();
  return R;
}

void asyncg::cases::runCaseWith(const CaseDef &Def, bool Fixed,
                                instr::AnalysisBase &Analysis) {
  Runtime RT(Def.Config);
  RT.hooks().attach(&Analysis);
  Def.Run(RT, Fixed);
}
