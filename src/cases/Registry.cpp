//===- Registry.cpp - Table-I case registry ------------------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "cases/CaseDefs.h"

using namespace asyncg;
using namespace asyncg::cases;

const std::vector<CaseDef> &asyncg::cases::allCases() {
  static const std::vector<CaseDef> Cases = [] {
    // Table I order, plus the SO-17894000 case-study entry of §VII-A.
    std::vector<CaseDef> V;
    V.push_back(makeSO38140113());
    V.push_back(makeSO32559324());
    V.push_back(makeSO33330277());
    V.push_back(makeSO30515037());
    V.push_back(makeSO50996870());
    V.push_back(makeSO28830663());
    V.push_back(makeSO30724625());
    V.push_back(makeSO43422932());
    V.push_back(makeSO10444077());
    V.push_back(makeSO45881685());
    V.push_back(makeSO31978347());
    V.push_back(makeGHvuex2());
    V.push_back(makeGHflock13());
    V.push_back(makeGHnpm12754());
    V.push_back(makeSO17894000());
    return V;
  }();
  return Cases;
}
