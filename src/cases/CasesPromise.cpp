//===- CasesPromise.cpp - promise-bug cases of Table I -------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "cases/CaseDefs.h"

#include "detect/AgQueries.h"
#include "jsrt/AsyncAwait.h"

#include <memory>

using namespace asyncg;
using namespace asyncg::cases;
using namespace asyncg::jsrt;

//===----------------------------------------------------------------------===//
// SO-50996870: a database promise chain broken by a reaction that starts
// the next query without returning its promise.
//===----------------------------------------------------------------------===//

CaseDef asyncg::cases::makeSO50996870() {
  CaseDef C;
  C.Name = "SO-50996870";
  C.Description = "a then-callback starts the next db query but does not "
                  "return its promise; the following then sees undefined";
  C.Expected = ag::BugCategory::BrokenPromiseChain;
  C.Run = [](Runtime &RT, bool Fixed) {
    const char *F = "so-50996870.js";
    Function Main = RT.makeFunction(
        "main", JSLINE(F, 1), [F, Fixed](Runtime &R, const CallArgs &) {
          // db.get('users') ...
          PromiseRef Users =
              delayedValue(R, JSLINE(F, 1), 5, Value::str("users-rows"));
          Function Step = R.makeFunction(
              "loadPosts", JSLINE(F, 2),
              [F, Fixed](Runtime &R2, const CallArgs &) {
                PromiseRef Posts = delayedValue(R2, JSLINE(F, 2), 5,
                                                Value::str("posts-rows"));
                if (Fixed)
                  return Completion::normal(Value::promise(Posts));
                // Missing return: the promise is dropped.
                return Completion::normal();
              });
          PromiseRef AfterUsers = R.promiseThen(JSLINE(F, 2), Users, Step);
          Function UsePosts = R.makeFunction(
              "usePosts", JSLINE(F, 3), [](Runtime &, const CallArgs &A) {
                // posts is undefined in the buggy variant.
                (void)A;
                return Completion::normal();
              });
          PromiseRef Tail =
              R.promiseThen(JSLINE(F, 3), AfterUsers, UsePosts);
          R.promiseCatch(JSLINE(F, 4), Tail,
                         R.makeFunction("onErr", JSLINE(F, 4),
                                        [](Runtime &, const CallArgs &) {
                                          return Completion::normal();
                                        }));
          return Completion::normal();
        });
    RT.main(Main);
  };
  C.PostAnalysis = [](Runtime &, ag::AsyncGraph &G) {
    detect::reportBrokenPromiseChains(G);
  };
  return C;
}

//===----------------------------------------------------------------------===//
// SO-43422932: forgetting `await` — the async function's promise is used
// as if it were the value, and nothing ever reacts to it.
//===----------------------------------------------------------------------===//

namespace {

JsAsync fetchJson(Runtime &RT, AsyncOrigin) {
  const char *F = "so-43422932.js";
  Value Json = co_await Await(
      delayedValue(RT, JSLINE(F, 2), 10, Value::str("{\"ok\":true}")));
  co_return Json;
}

JsAsync soMain(Runtime &RT, AsyncOrigin, bool Fixed) {
  const char *F = "so-43422932.js";
  JsAsync DataP = fetchJson(RT, AsyncOrigin{"fetchJson", JSLINE(F, 1)});
  if (Fixed) {
    Value Data = co_await Await(DataP.promise(), JSLINE(F, 6));
    (void)Data;
    co_return Value::undefined();
  }
  // Missing await: `data` is the promise object itself.
  Value Data = DataP.toValue();
  (void)Data.isPromise(); // "[object Promise]" used by mistake.
  co_return Value::undefined();
}

} // namespace

CaseDef asyncg::cases::makeSO43422932() {
  CaseDef C;
  C.Name = "SO-43422932";
  C.Description = "missing await on an async function call; the returned "
                  "promise is never resolved into a value by anyone";
  C.Expected = ag::BugCategory::MissingReaction;
  C.Run = [](Runtime &RT, bool Fixed) {
    const char *F = "so-43422932.js";
    Function Main = RT.makeFunction(
        "main", JSLINE(F, 5), [F, Fixed](Runtime &R, const CallArgs &) {
          JsAsync M = soMain(R, AsyncOrigin{"soMain", JSLINE(F, 5)}, Fixed);
          // The driver awaits soMain itself (as node does for top-level).
          R.promiseThen(SourceLocation::internal(), M.promise(),
                        R.makeBuiltin("(done)",
                                      [](Runtime &, const CallArgs &) {
                                        return Completion::normal();
                                      }));
          return Completion::normal();
        });
    RT.main(Main);
  };
  return C;
}

//===----------------------------------------------------------------------===//
// GH-vuex-2: a then-callback performs the commit but returns nothing, so
// the chained then receives undefined.
//===----------------------------------------------------------------------===//

CaseDef asyncg::cases::makeGHvuex2() {
  CaseDef C;
  C.Name = "GH-vuex-2";
  C.Description = "an action's then-callback forgets to return the "
                  "computed value; downstream reactions get undefined";
  C.Expected = ag::BugCategory::MissingReturnInThen;
  C.Run = [](Runtime &RT, bool Fixed) {
    const char *F = "gh-vuex-2.js";
    Function Main = RT.makeFunction(
        "main", JSLINE(F, 1), [F, Fixed](Runtime &R, const CallArgs &) {
          PromiseRef Loaded =
              delayedValue(R, JSLINE(F, 1), 5, Value::number(7));
          Function Commit = R.makeFunction(
              "commitResult", JSLINE(F, 2),
              [Fixed](Runtime &, const CallArgs &A) {
                Value V = A.arg(0);
                if (Fixed)
                  return Completion::normal(V);
                return Completion::normal(); // missing return
              });
          PromiseRef Action = R.promiseThen(JSLINE(F, 2), Loaded, Commit);
          PromiseRef Used = R.promiseThen(
              JSLINE(F, 4), Action,
              R.makeFunction("useResult", JSLINE(F, 4),
                             [](Runtime &, const CallArgs &) {
                               return Completion::normal();
                             }));
          R.promiseCatch(JSLINE(F, 5), Used,
                         R.makeFunction("onErr", JSLINE(F, 5),
                                        [](Runtime &, const CallArgs &) {
                                          return Completion::normal();
                                        }));
          return Completion::normal();
        });
    RT.main(Main);
  };
  return C;
}

//===----------------------------------------------------------------------===//
// GH-flock-13: a migration promise chain with no exception handler
// anywhere; a rejection would be silently dropped.
//===----------------------------------------------------------------------===//

CaseDef asyncg::cases::makeGHflock13() {
  CaseDef C;
  C.Name = "GH-flock-13";
  C.Description = "migrate().then(...) without any catch: the chain does "
                  "not end with a reject reaction";
  C.Expected = ag::BugCategory::MissingExceptionalReaction;
  C.Run = [](Runtime &RT, bool Fixed) {
    const char *F = "gh-flock-13.js";
    Function Main = RT.makeFunction(
        "main", JSLINE(F, 1), [F, Fixed](Runtime &R, const CallArgs &) {
          PromiseRef Migrated =
              delayedValue(R, JSLINE(F, 1), 5, Value::str("migrated"));
          PromiseRef Tail = R.promiseThen(
              JSLINE(F, 2), Migrated,
              R.makeFunction("logDone", JSLINE(F, 2),
                             [](Runtime &, const CallArgs &A) {
                               return Completion::normal(A.arg(0));
                             }));
          if (Fixed)
            R.promiseCatch(JSLINE(F, 3), Tail,
                           R.makeFunction("onErr", JSLINE(F, 3),
                                          [](Runtime &, const CallArgs &) {
                                            return Completion::normal();
                                          }));
          return Completion::normal();
        });
    RT.main(Main);
  };
  return C;
}
