// SO-28830663: nextTick vs setTimeout(0) vs setImmediate in one tick —
// they run in phase order, not registration order.
process.nextTick(() => log('step1'));
setTimeout(() => log('step2'), 0);
setImmediate(() => log('step3'));
// prints: step1, step3?, step2? — depends on phases, not source order
