// SO-33330277 (paper Fig. 1): recursive nextTick blocks the event loop.
const http = require('http');
function compute() {
  performSomeComputation();
  process.nextTick(compute);      // BUG: starves every other phase
  // FIX: setImmediate(compute);  // immediates let I/O interleave
}
http.createServer((request, response) => {
  response.end('Hello World!');
}).listen(5000);
compute();
