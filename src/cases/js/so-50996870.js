// SO-50996870: broken promise chain — the reaction starts the next query
// but does not return its promise, so the next then sees undefined.
db.get('users')
  .then(users => { processUsers(users); db.get('posts'); })  // BUG
  // FIX:        { processUsers(users); return db.get('posts'); }
  .then(posts => usePosts(posts))   // posts === undefined
  .catch(err => console.error(err));
