// SO-30724625: emitting on a freshly constructed emitter instead of the
// shared bus that holds the listeners.
const bus = new EventEmitter();
bus.on('msg', handler);
const other = new EventEmitter();   // BUG: second instance by mistake
other.emit('msg', 'hi');            // dead emit
// FIX: bus.emit('msg', 'hi');
