// GH-npm-12754: npm's progress gauge pulsed itself with nextTick,
// starving the install's file I/O.
function pulse() {
  drawProgress();
  process.nextTick(pulse);   // BUG; fixed upstream with setImmediate
}
pulse();
fs.readFile('package.json', (err, data) => { /* never reached */ });
