// SO-45881685: running setup twice registers the same listener twice;
// every emit then fires it twice.
function setup(socket) { socket.on('data', onData); }
setup(socket);
setup(socket);   // BUG: duplicate listener
