// SO-32559324: the helper emits before returning the emitter the caller
// subscribes on.
function doWork() {
  const e = new EventEmitter();
  e.emit('done', 42);                           // BUG: dead emit
  // FIX: setImmediate(() => e.emit('done', 42));
  return e;
}
doWork().on('done', v => console.log(v));
