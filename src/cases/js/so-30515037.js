// SO-30515037: busy-waiting on a flag with nextTick starves the timer
// that would set the flag.
let done = false;
setTimeout(() => { done = true; }, 10);
function poll() {
  if (!done) process.nextTick(poll);   // BUG
  // FIX: if (!done) setImmediate(poll);
}
poll();
