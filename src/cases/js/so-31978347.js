// SO-31978347: expecting fs.readFile's callback to have run already.
let content;
fs.readFile('file.txt', (err, data) => { content = data; });
console.log(content);   // BUG: undefined — the callback runs ticks later
