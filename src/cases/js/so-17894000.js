// SO-17894000: the 'close' listener is registered inside the 'data'
// listener — lost whenever the connection closes before any data.
net.createServer(socket => {
  socket.on('data', d => {
    socket.on('close', () => { /* BUG: registered too late */ });
  });
  // FIX: register the 'close' listener here, next to 'data'.
}).listen(9000);
