// SO-10444077: removeListener with a function that merely *looks* the
// same; removal is by identity.
const e = new EventEmitter();
e.on('evt', function handler() { /* ... */ });
e.removeListener('evt', function handler() { /* ... */ });  // BUG: no-op
// FIX: keep the reference and remove exactly it.
