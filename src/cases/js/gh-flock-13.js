// GH-flock-13: a migration chain with no exception handler anywhere; a
// rejection is silently dropped.
migrate()
  .then(() => console.log('done'));
  // FIX: .catch(err => { console.error(err); process.exit(1); });
