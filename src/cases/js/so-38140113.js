// SO-38140113: emitting inside the constructor — before any listener
// can possibly be registered.
class MyEmitter extends EventEmitter {
  constructor() {
    super();
    this.emit('e');                             // BUG: dead emit
    // FIX: process.nextTick(() => this.emit('e'));
  }
}
const me = new MyEmitter();
me.on('e', () => console.log('got e'));         // dead listener
