// SO-43422932: missing await — `data` is the promise object itself, and
// nothing ever resolves it into a value.
async function fetchJson() { await delay(10); return {...}; }
async function main() {
  const data = fetchJson();   // BUG: missing await
  // FIX: const data = await fetchJson();
  use(data);                  // "[object Promise]"
}
