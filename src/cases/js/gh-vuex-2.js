// GH-vuex-2: the then-callback forgets to return the computed value, so
// downstream reactions receive undefined.
loadData()
  .then(v => { commit(v); })      // BUG: missing return
  // FIX:    { commit(v); return v; }
  .then(v => useResult(v))        // v === undefined
  .catch(err => handle(err));
