//===- CasesScheduling.cpp - scheduling-bug cases of Table I -----------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduling-bug entries of Table I, re-implemented against jsrt with
/// the line numbers of the snippets the paper (or the referenced
/// StackOverflow question) shows.
///
//===----------------------------------------------------------------------===//

#include "cases/CaseDefs.h"

#include "detect/AgQueries.h"
#include "node/Fs.h"
#include "node/Http.h"

#include <memory>

using namespace asyncg;
using namespace asyncg::cases;
using namespace asyncg::jsrt;

PromiseRef asyncg::cases::delayedValue(Runtime &RT, SourceLocation Loc,
                                       double Ms, Value V) {
  PromiseRef P = RT.promiseBare(Loc, "delay");
  RT.setTimeout(Loc,
                RT.makeBuiltin("(delay resolve)",
                               [P, V](Runtime &R, const CallArgs &) {
                                 R.resolvePromiseInternal(P, V);
                                 return Completion::normal();
                               }),
                Ms);
  return P;
}

void asyncg::cases::sendRequests(Runtime &RT, int Port, int Count) {
  if (Count <= 0)
    return;
  Runtime *R = &RT;
  Function OnResponse = RT.makeBuiltin(
      "(client response)", [R, Port, Count](Runtime &, const CallArgs &) {
        sendRequests(*R, Port, Count - 1);
        return Completion::normal();
      });
  node::http::RequestOptions Opts;
  Opts.Port = Port;
  Opts.Path = "/";
  node::http::request(RT, SourceLocation::internal(), Opts, OnResponse);
}

//===----------------------------------------------------------------------===//
// SO-33330277: the Fig. 1 bug — recursive nextTick starves the HTTP server.
//===----------------------------------------------------------------------===//

CaseDef asyncg::cases::makeSO33330277() {
  CaseDef C;
  C.Name = "SO-33330277";
  C.Description = "recursive process.nextTick blocks the event loop; an "
                  "HTTP server never serves any request (paper Fig. 1)";
  C.Expected = ag::BugCategory::RecursiveMicrotask;
  C.Config.MaxTicks = 300;
  C.Run = [](Runtime &RT, bool Fixed) {
    const char *F = "so-33330277.js";
    Function Compute = RT.makeFunction("compute", JSLINE(F, 2), nullptr);
    Compute.ref()->Body = [Compute, F, Fixed](Runtime &R, const CallArgs &) {
      // performSomeComputation();
      if (Fixed)
        R.setImmediate(JSLINE(F, 5), Compute);
      else
        R.nextTick(JSLINE(F, 5), Compute);
      return Completion::normal();
    };

    Function Main = RT.makeFunction(
        "main", JSLINE(F, 1), [Compute, F](Runtime &R, const CallArgs &) {
          Function Handler = R.makeFunction(
              "requestHandler", JSLINE(F, 7),
              [](Runtime &, const CallArgs &A) {
                auto Res = node::http::ServerResponse::from(A.arg(1));
                Res->end("Hello World!");
                return Completion::normal();
              });
          auto Server = node::http::HttpServer::create(R, JSLINE(F, 7),
                                                       Handler);
          Server->listen(JSLINE(F, 9), 5000);
          Completion Result = R.call(Compute); // L10: compute();
          // The paper evaluates this "tested with a client sending new
          // requests".
          sendRequests(R, 5000, 3);
          return Result;
        });
    RT.main(Main);
  };
  return C;
}

//===----------------------------------------------------------------------===//
// SO-30515037: a nextTick polling loop waits on a flag set by a timer that
// can never fire.
//===----------------------------------------------------------------------===//

CaseDef asyncg::cases::makeSO30515037() {
  CaseDef C;
  C.Name = "SO-30515037";
  C.Description = "busy-wait with process.nextTick on a flag set by "
                  "setTimeout; the timers phase is starved forever";
  C.Expected = ag::BugCategory::RecursiveMicrotask;
  C.Config.MaxTicks = 200;
  C.Run = [](Runtime &RT, bool Fixed) {
    const char *F = "so-30515037.js";
    auto Done = std::make_shared<bool>(false);

    Function Poll = RT.makeFunction("poll", JSLINE(F, 3), nullptr);
    Poll.ref()->Body = [Poll, Done, F, Fixed](Runtime &R, const CallArgs &) {
      if (!*Done) {
        if (Fixed)
          R.setImmediate(JSLINE(F, 4), Poll);
        else
          R.nextTick(JSLINE(F, 4), Poll);
      }
      return Completion::normal();
    };

    Function Main = RT.makeFunction(
        "main", JSLINE(F, 1), [Poll, Done, F](Runtime &R, const CallArgs &) {
          R.setTimeout(JSLINE(F, 2),
                       R.makeFunction("setDone", JSLINE(F, 2),
                                      [Done](Runtime &, const CallArgs &) {
                                        *Done = true;
                                        return Completion::normal();
                                      }),
                       10);
          return R.call(Poll);
        });
    RT.main(Main);
  };
  return C;
}

//===----------------------------------------------------------------------===//
// GH-npm-12754: npm's progress gauge pulsed via recursive nextTick,
// starving the actual install I/O.
//===----------------------------------------------------------------------===//

CaseDef asyncg::cases::makeGHnpm12754() {
  CaseDef C;
  C.Name = "GH-npm-12754";
  C.Description = "npm progress gauge re-schedules itself with nextTick "
                  "and starves the install's file I/O";
  C.Expected = ag::BugCategory::RecursiveMicrotask;
  C.Config.MaxTicks = 200;
  C.Run = [](Runtime &RT, bool Fixed) {
    const char *F = "gh-npm-12754.js";
    Function Pulse = RT.makeFunction("pulse", JSLINE(F, 1), nullptr);
    Pulse.ref()->Body = [Pulse, F, Fixed](Runtime &R, const CallArgs &) {
      // drawProgress();
      if (Fixed)
        R.setImmediate(JSLINE(F, 3), Pulse);
      else
        R.nextTick(JSLINE(F, 3), Pulse);
      return Completion::normal();
    };

    Function Main = RT.makeFunction(
        "main", JSLINE(F, 1), [Pulse, F](Runtime &R, const CallArgs &) {
          R.fileSystem().putFile("package.json", "{\"name\":\"app\"}");
          node::Fs Fs(R);
          Fs.readFile(JSLINE(F, 6), "package.json",
                      R.makeFunction("onManifest", JSLINE(F, 6),
                                     [](Runtime &, const CallArgs &) {
                                       return Completion::normal();
                                     }));
          return R.call(Pulse);
        });
    RT.main(Main);
  };
  return C;
}

//===----------------------------------------------------------------------===//
// SO-28830663: nextTick vs setTimeout(0) vs setImmediate in one tick.
//===----------------------------------------------------------------------===//

CaseDef asyncg::cases::makeSO28830663() {
  CaseDef C;
  C.Name = "SO-28830663";
  C.Description = "deferring related steps with nextTick, setTimeout(0) "
                  "and setImmediate in the same tick; they run in phase "
                  "order, not registration order";
  C.Expected = ag::BugCategory::MixedSimilarApis;
  C.Run = [](Runtime &RT, bool Fixed) {
    const char *F = "so-28830663.js";
    Function Main = RT.makeFunction(
        "main", JSLINE(F, 1), [F, Fixed](Runtime &R, const CallArgs &) {
          auto Step = [&R, F](const char *Name, uint32_t Line) {
            return R.makeFunction(Name, JSLINE(F, Line),
                                  [](Runtime &, const CallArgs &) {
                                    return Completion::normal();
                                  });
          };
          if (Fixed) {
            // Fixed: one consistent deferral mechanism.
            R.setImmediate(JSLINE(F, 2), Step("step1", 2));
            R.setImmediate(JSLINE(F, 3), Step("step2", 3));
            R.setImmediate(JSLINE(F, 4), Step("step3", 4));
          } else {
            R.nextTick(JSLINE(F, 2), Step("step1", 2));
            R.setTimeout(JSLINE(F, 3), Step("step2", 3), 0);
            R.setImmediate(JSLINE(F, 4), Step("step3", 4));
          }
          return Completion::normal();
        });
    RT.main(Main);
  };
  return C;
}

//===----------------------------------------------------------------------===//
// SO-31978347: reading a variable right after fs.readFile registers the
// callback that would set it (§VI-B.1, manual AG pattern).
//===----------------------------------------------------------------------===//

CaseDef asyncg::cases::makeSO31978347() {
  CaseDef C;
  C.Name = "SO-31978347";
  C.Description = "expects fs.readFile's callback to have run by the next "
                  "line; the value is read before the I/O tick";
  C.Expected = ag::BugCategory::ExpectSyncCallback;

  struct State {
    ScheduleId ReadSched = 0;
    bool Fixed = false;
    bool SawUndefinedRead = false;
  };
  auto S = std::make_shared<State>();

  C.Run = [S](Runtime &RT, bool Fixed) {
    S->Fixed = Fixed;
    const char *F = "so-31978347.js";
    auto Content = std::make_shared<Value>();

    Function Main = RT.makeFunction(
        "main", JSLINE(F, 1), [S, Content, F, Fixed](Runtime &R,
                                                     const CallArgs &) {
          R.fileSystem().putFile("file.txt", "hello");
          node::Fs Fs(R);
          Function OnRead = R.makeFunction(
              "onRead", JSLINE(F, 2),
              [S, Content, Fixed](Runtime &, const CallArgs &A) {
                *Content = A.arg(1);
                if (Fixed) {
                  // Fixed: consume the data inside the callback.
                  (void)Content->asString();
                }
                return Completion::normal();
              });
          S->ReadSched = Fs.readFile(JSLINE(F, 2), "file.txt", OnRead);
          if (!Fixed) {
            // console.log(content) — still undefined here.
            S->SawUndefinedRead = Content->isUndefined();
          }
          return Completion::normal();
        });
    RT.main(Main);
  };
  C.PostAnalysis = [S](Runtime &, ag::AsyncGraph &G) {
    // §VI-B: the developer inspects the suspect registration in the AG.
    if (!S->Fixed)
      detect::reportExpectSyncCallback(G, S->ReadSched);
  };
  return C;
}
