//===- CaseDefs.h - factories for the individual cases ----------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal header of the cases library: one factory per Table-I bug case
/// (the original JavaScript each case mirrors lives in src/cases/js/),
/// plus small helpers shared by the case programs.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_CASES_CASEDEFS_H
#define ASYNCG_CASES_CASEDEFS_H

#include "cases/Case.h"

namespace asyncg {
namespace cases {

// Scheduling bugs.
CaseDef makeSO33330277(); ///< Fig. 1: recursive nextTick blocks the server.
CaseDef makeSO30515037(); ///< nextTick polling loop starves its own timer.
CaseDef makeGHnpm12754(); ///< npm progress gauge nextTick recursion.
CaseDef makeSO28830663(); ///< mixing nextTick/setTimeout(0)/setImmediate.
CaseDef makeSO31978347(); ///< expecting fs.readFile to run synchronously.

// Emitter bugs.
CaseDef makeSO38140113(); ///< emit in constructor before listeners exist.
CaseDef makeSO32559324(); ///< emit before the caller can attach a listener.
CaseDef makeSO30724625(); ///< emit on a fresh emitter instead of the bus.
CaseDef makeSO10444077(); ///< removeListener with a look-alike function.
CaseDef makeSO45881685(); ///< the same listener registered twice.
CaseDef makeSO17894000(); ///< 'close' listener registered inside 'data'.

// Promise bugs.
CaseDef makeSO50996870(); ///< broken chain: missing return in a reaction.
CaseDef makeSO43422932(); ///< missing await: the promise is never used.
CaseDef makeGHvuex2();    ///< then-callback without return breaks the chain.
CaseDef makeGHflock13();  ///< chain without any exception handler.

// Shared helpers.

/// A promise resolved with \p V after \p Ms virtual milliseconds.
jsrt::PromiseRef delayedValue(jsrt::Runtime &RT, SourceLocation Loc,
                              double Ms, jsrt::Value V);

/// Issues \p Count sequential HTTP GET requests against \p Port from a
/// simulated client (each response triggers the next request).
void sendRequests(jsrt::Runtime &RT, int Port, int Count);

} // namespace cases
} // namespace asyncg

#endif // ASYNCG_CASES_CASEDEFS_H
