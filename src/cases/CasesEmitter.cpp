//===- CasesEmitter.cpp - emitter-bug cases of Table I ------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "cases/CaseDefs.h"

#include "node/Net.h"

#include <memory>

using namespace asyncg;
using namespace asyncg::cases;
using namespace asyncg::jsrt;

//===----------------------------------------------------------------------===//
// SO-38140113: this.emit('e') inside a constructor fires before any
// listener can possibly be registered.
//===----------------------------------------------------------------------===//

CaseDef asyncg::cases::makeSO38140113() {
  CaseDef C;
  C.Name = "SO-38140113";
  C.Description = "MyEmitter emits 'e' inside its constructor; listeners "
                  "registered after construction never see it";
  C.Expected = ag::BugCategory::DeadEmit;
  C.Run = [](Runtime &RT, bool Fixed) {
    const char *F = "so-38140113.js";
    Function Main = RT.makeFunction(
        "main", JSLINE(F, 6), [F, Fixed](Runtime &R, const CallArgs &) {
          // new MyEmitter(): constructor body.
          EmitterRef Me = R.emitterCreate(JSLINE(F, 2), "MyEmitter");
          if (Fixed) {
            // Fixed variant: defer the emission one tick.
            R.nextTick(JSLINE(F, 3),
                       R.makeFunction("emitLater", JSLINE(F, 3),
                                      [Me, F](Runtime &R2,
                                              const CallArgs &) {
                                        R2.emitterEmit(JSLINE(F, 3), Me,
                                                       "e");
                                        return Completion::normal();
                                      }));
          } else {
            R.emitterEmit(JSLINE(F, 3), Me, "e"); // dead emit
          }
          // me.on('e', ...) — after the constructor returned.
          R.emitterOn(JSLINE(F, 7), Me, "e",
                      R.makeFunction("onE", JSLINE(F, 7),
                                     [](Runtime &, const CallArgs &) {
                                       return Completion::normal();
                                     }));
          return Completion::normal();
        });
    RT.main(Main);
  };
  return C;
}

//===----------------------------------------------------------------------===//
// SO-32559324: a helper returns an emitter but emits synchronously before
// returning, so the caller's .on() comes too late.
//===----------------------------------------------------------------------===//

CaseDef asyncg::cases::makeSO32559324() {
  CaseDef C;
  C.Name = "SO-32559324";
  C.Description = "doWork() emits 'done' synchronously before returning "
                  "the emitter the caller subscribes on";
  C.Expected = ag::BugCategory::DeadEmit;
  C.Run = [](Runtime &RT, bool Fixed) {
    const char *F = "so-32559324.js";
    Function Main = RT.makeFunction(
        "main", JSLINE(F, 6), [F, Fixed](Runtime &R, const CallArgs &) {
          // function doWork() { ... }
          EmitterRef E = R.emitterCreate(JSLINE(F, 2));
          if (Fixed) {
            R.setImmediate(
                JSLINE(F, 3),
                R.makeFunction("emitDone", JSLINE(F, 3),
                               [E, F](Runtime &R2, const CallArgs &) {
                                 R2.emitterEmit(JSLINE(F, 3), E, "done",
                                                {Value::number(42)});
                                 return Completion::normal();
                               }));
          } else {
            R.emitterEmit(JSLINE(F, 3), E, "done", {Value::number(42)});
          }
          // doWork().on('done', ...)
          R.emitterOn(JSLINE(F, 6), E, "done",
                      R.makeFunction("onDone", JSLINE(F, 6),
                                     [](Runtime &, const CallArgs &) {
                                       return Completion::normal();
                                     }));
          return Completion::normal();
        });
    RT.main(Main);
  };
  return C;
}

//===----------------------------------------------------------------------===//
// SO-30724625: emitting on a freshly constructed emitter instead of the
// shared bus holding the listeners.
//===----------------------------------------------------------------------===//

CaseDef asyncg::cases::makeSO30724625() {
  CaseDef C;
  C.Name = "SO-30724625";
  C.Description = "a second EventEmitter instance is constructed by "
                  "mistake; emits go to the instance without listeners";
  C.Expected = ag::BugCategory::DeadEmit;
  C.Run = [](Runtime &RT, bool Fixed) {
    const char *F = "so-30724625.js";
    Function Main = RT.makeFunction(
        "main", JSLINE(F, 1), [F, Fixed](Runtime &R, const CallArgs &) {
          EmitterRef Bus = R.emitterCreate(JSLINE(F, 1), "Bus");
          R.emitterOn(JSLINE(F, 2), Bus, "msg",
                      R.makeFunction("onMsg", JSLINE(F, 2),
                                     [](Runtime &, const CallArgs &) {
                                       return Completion::normal();
                                     }));
          EmitterRef Other = R.emitterCreate(JSLINE(F, 3), "Bus");
          R.emitterEmit(JSLINE(F, 4), Fixed ? Bus : Other, "msg",
                        {Value::str("hi")});
          return Completion::normal();
        });
    RT.main(Main);
  };
  return C;
}

//===----------------------------------------------------------------------===//
// SO-10444077: removeListener with a fresh function object that merely
// looks like the registered listener.
//===----------------------------------------------------------------------===//

CaseDef asyncg::cases::makeSO10444077() {
  CaseDef C;
  C.Name = "SO-10444077";
  C.Description = "removeListener is passed a new function object that "
                  "looks identical; nothing is removed";
  C.Expected = ag::BugCategory::InvalidListenerRemoval;
  C.Run = [](Runtime &RT, bool Fixed) {
    const char *F = "so-10444077.js";
    Function Main = RT.makeFunction(
        "main", JSLINE(F, 1), [F, Fixed](Runtime &R, const CallArgs &) {
          EmitterRef E = R.emitterCreate(JSLINE(F, 1));
          auto Body = [](Runtime &, const CallArgs &) {
            return Completion::normal();
          };
          Function Handler = R.makeFunction("handler", JSLINE(F, 2), Body);
          R.emitterOn(JSLINE(F, 2), E, "evt", Handler);
          R.emitterEmit(JSLINE(F, 3), E, "evt");
          if (Fixed) {
            R.emitterRemoveListener(JSLINE(F, 4), E, "evt", Handler);
          } else {
            // A different function object with the same source shape.
            Function LookAlike =
                R.makeFunction("handler", JSLINE(F, 4), Body);
            R.emitterRemoveListener(JSLINE(F, 4), E, "evt", LookAlike);
          }
          return Completion::normal();
        });
    RT.main(Main);
  };
  return C;
}

//===----------------------------------------------------------------------===//
// SO-45881685: the same function registered twice for the same event.
//===----------------------------------------------------------------------===//

CaseDef asyncg::cases::makeSO45881685() {
  CaseDef C;
  C.Name = "SO-45881685";
  C.Description = "a setup function runs twice and registers the same "
                  "listener twice; every emit fires it twice";
  C.Expected = ag::BugCategory::DuplicateListener;
  C.Run = [](Runtime &RT, bool Fixed) {
    const char *F = "so-45881685.js";
    Function Main = RT.makeFunction(
        "main", JSLINE(F, 1), [F, Fixed](Runtime &R, const CallArgs &) {
          EmitterRef Socket = R.emitterCreate(JSLINE(F, 1), "Socket");
          Function OnData = R.makeFunction("onData", JSLINE(F, 2),
                                           [](Runtime &, const CallArgs &) {
                                             return Completion::normal();
                                           });
          // setup(socket) called twice.
          R.emitterOn(JSLINE(F, 2), Socket, "data", OnData);
          if (!Fixed)
            R.emitterOn(JSLINE(F, 2), Socket, "data", OnData);
          R.emitterEmit(JSLINE(F, 5), Socket, "data",
                        {Value::str("chunk")});
          return Completion::normal();
        });
    RT.main(Main);
  };
  return C;
}

//===----------------------------------------------------------------------===//
// SO-17894000: the 'close' listener is registered inside the 'data'
// listener; a connection closing before any data loses it (§VII-A).
//===----------------------------------------------------------------------===//

CaseDef asyncg::cases::makeSO17894000() {
  CaseDef C;
  C.Name = "SO-17894000";
  C.Description = "'close' listener registered within the 'data' listener "
                  "of the same socket (lost if the peer closes first)";
  C.Expected = ag::BugCategory::AddListenerWithinListener;
  C.Run = [](Runtime &RT, bool Fixed) {
    const char *F = "so-17894000.js";
    Function Main = RT.makeFunction(
        "main", JSLINE(F, 1), [F, Fixed](Runtime &R, const CallArgs &) {
          Function OnConnection = R.makeFunction(
              "onConnection", JSLINE(F, 1),
              [F, Fixed](Runtime &R2, const CallArgs &A) {
                auto Sock = node::Socket::from(A.arg(0));
                Function OnClose = R2.makeFunction(
                    "onClose", JSLINE(F, 3),
                    [](Runtime &, const CallArgs &) {
                      return Completion::normal();
                    });
                Function OnData = R2.makeFunction(
                    "onData", JSLINE(F, 2),
                    [F, Sock, OnClose, Fixed](Runtime &R3,
                                              const CallArgs &) {
                      if (!Fixed)
                        R3.emitterOn(JSLINE(F, 3), Sock->emitter(), "close",
                                     OnClose);
                      return Completion::normal();
                    });
                R2.emitterOn(JSLINE(F, 2), Sock->emitter(), "data", OnData);
                if (Fixed)
                  R2.emitterOn(JSLINE(F, 5), Sock->emitter(), "close",
                               OnClose);
                return Completion::normal();
              });
          auto Server = node::createServer(R, JSLINE(F, 1), OnConnection);
          Server->listen(JSLINE(F, 7), 9000);

          // A client connects, sends one chunk, and disconnects.
          node::connect(R, SourceLocation::internal(), 9000,
                        R.makeBuiltin("(client)", [](Runtime &R2,
                                                     const CallArgs &A) {
                          auto Client = node::Socket::from(A.arg(0));
                          Client->write("ping");
                          R2.setTimeout(
                              SourceLocation::internal(),
                              R2.makeBuiltin("(client close)",
                                             [Client](Runtime &,
                                                      const CallArgs &) {
                                               Client->destroy();
                                               return Completion::normal();
                                             }),
                              5);
                          return Completion::normal();
                        }));
          return Completion::normal();
        });
    RT.main(Main);
  };
  return C;
}
