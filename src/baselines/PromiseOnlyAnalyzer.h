//===- PromiseOnlyAnalyzer.h - PromiseKeeper-like baseline ------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A baseline analysis modelled on PromiseKeeper [26] / promise graphs
/// [15]: it tracks promises only — no event loop model, no emitters —
/// and detects the promise-bug categories. Used by the Table-II coverage
/// comparison to show which bugs a promise-only tool can and cannot find.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_BASELINES_PROMISEONLYANALYZER_H
#define ASYNCG_BASELINES_PROMISEONLYANALYZER_H

#include "ag/Warning.h"
#include "instr/Hooks.h"

#include <map>
#include <set>
#include <vector>

namespace asyncg {
namespace baselines {

/// The promise-only baseline.
class PromiseOnlyAnalyzer : public instr::AnalysisBase {
public:
  const char *analysisName() const override { return "promise-only"; }

  void onApiCall(const instr::ApiCallEvent &E) override;
  void onObjectCreate(const instr::ObjectCreateEvent &E) override;
  void onReactionResult(const instr::ReactionResultEvent &E) override;
  void onLoopEnd(const instr::LoopEndEvent &E) override;

  const std::vector<ag::Warning> &warnings() const { return Warnings; }

  std::set<ag::BugCategory> detectedCategories() const {
    std::set<ag::BugCategory> S;
    for (const ag::Warning &W : Warnings)
      S.insert(W.Category);
    return S;
  }

private:
  struct PromiseInfo {
    SourceLocation Loc;
    bool Internal = false;
    bool Settled = false;
    bool Reacted = false;
    bool RejectHandled = false;
    bool DerivedWithReject = false;
    bool ReturnedUndefined = false;
    std::vector<jsrt::ObjectId> DerivedThen;
    jsrt::ObjectId Parent = 0;
  };

  void warn(ag::BugCategory Cat, SourceLocation Loc, std::string Message);

  std::map<jsrt::ObjectId, PromiseInfo> Promises;
  std::vector<ag::Warning> Warnings;
  std::set<std::pair<int, std::string>> Dedup;
};

} // namespace baselines
} // namespace asyncg

#endif // ASYNCG_BASELINES_PROMISEONLYANALYZER_H
