//===- PromiseOnlyAnalyzer.cpp - PromiseKeeper-like baseline ------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "baselines/PromiseOnlyAnalyzer.h"

using namespace asyncg;
using namespace asyncg::baselines;
using namespace asyncg::jsrt;

void PromiseOnlyAnalyzer::warn(ag::BugCategory Cat, SourceLocation Loc,
                               std::string Message) {
  if (!Dedup.insert({static_cast<int>(Cat), Loc.str() + Message}).second)
    return;
  ag::Warning W;
  W.Category = Cat;
  W.Loc = std::move(Loc);
  W.Message = std::move(Message);
  Warnings.push_back(std::move(W));
}

void PromiseOnlyAnalyzer::onObjectCreate(const instr::ObjectCreateEvent &E) {
  if (!E.IsPromise)
    return;
  PromiseInfo &P = Promises[E.Obj];
  P.Loc = E.Loc;
  P.Internal = E.Internal;
  P.Parent = E.Parent;
}

void PromiseOnlyAnalyzer::onApiCall(const instr::ApiCallEvent &E) {
  switch (E.Api) {
  case ApiKind::PromiseResolve:
  case ApiKind::PromiseReject: {
    PromiseInfo &P = Promises[E.BoundObj];
    if (!E.TriggerHadEffect) {
      if (!E.Internal)
        warn(ag::BugCategory::DoubleSettle, E.Loc,
             "resolve/reject on an already-settled promise");
      return;
    }
    P.Settled = true;
    return;
  }
  case ApiKind::PromiseThen:
  case ApiKind::PromiseCatch:
  case ApiKind::PromiseFinally:
  case ApiKind::Await: {
    PromiseInfo &P = Promises[E.BoundObj];
    P.Reacted = true;
    if (E.HasRejectHandler)
      P.RejectHandled = true;
    if (E.DerivedObj != 0) {
      Promises[E.DerivedObj].Parent = E.BoundObj;
      if (E.Api == ApiKind::PromiseThen)
        P.DerivedThen.push_back(E.DerivedObj);
      if (E.HasRejectHandler)
        Promises[E.DerivedObj].DerivedWithReject = true;
      else if (E.Api == ApiKind::PromiseCatch)
        Promises[E.DerivedObj].DerivedWithReject = true;
    }
    return;
  }
  case ApiKind::Internal:
    // Internal adoption/combinator reactions: the promise is consumed.
    if (E.BoundObj != 0 && Promises.count(E.BoundObj)) {
      Promises[E.BoundObj].Reacted = true;
      Promises[E.BoundObj].RejectHandled = true;
    }
    return;
  default:
    return;
  }
}

void PromiseOnlyAnalyzer::onReactionResult(
    const instr::ReactionResultEvent &E) {
  Promises[E.Derived].ReturnedUndefined = E.ReturnedUndefined;
}

void PromiseOnlyAnalyzer::onLoopEnd(const instr::LoopEndEvent &E) {
  (void)E;
  for (const auto &[Id, P] : Promises) {
    (void)Id;
    if (P.Internal)
      continue;
    bool IsRoot = P.Parent == 0;
    bool IsLeaf = P.DerivedThen.empty();

    if (!P.Settled && IsRoot)
      warn(ag::BugCategory::DeadPromise, P.Loc,
           "promise never resolved or rejected");
    if (P.Settled && IsRoot && !P.Reacted)
      warn(ag::BugCategory::MissingReaction, P.Loc,
           "settled promise without any reaction");
    if (!IsRoot && IsLeaf && !P.RejectHandled && !P.DerivedWithReject)
      warn(ag::BugCategory::MissingExceptionalReaction, P.Loc,
           "promise chain without a reject reaction");
    if (P.ReturnedUndefined && !P.DerivedThen.empty())
      warn(ag::BugCategory::MissingReturnInThen, P.Loc,
           "reaction returned undefined but the chain continues");
  }
}
