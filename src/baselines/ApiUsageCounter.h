//===- ApiUsageCounter.h - per-API callback execution counter ---*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counts asynchronous callback executions per API family. This is the
/// measurement behind Fig. 6(b): "the average number of callback
/// executions per client request for the most used asynchronous APIs:
/// process.nextTick, emitter, and promise".
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_BASELINES_APIUSAGECOUNTER_H
#define ASYNCG_BASELINES_APIUSAGECOUNTER_H

#include "instr/Hooks.h"

#include <cstdint>

namespace asyncg {
namespace baselines {

/// API families reported by Fig. 6(b) (plus the remaining families for
/// completeness).
enum class ApiFamily {
  NextTick,
  Emitter,
  Promise,
  Timer,
  Immediate,
  Io,
  Other,
};

inline const char *apiFamilyName(ApiFamily F) {
  switch (F) {
  case ApiFamily::NextTick:
    return "nextTick";
  case ApiFamily::Emitter:
    return "emitter";
  case ApiFamily::Promise:
    return "promise";
  case ApiFamily::Timer:
    return "timer";
  case ApiFamily::Immediate:
    return "immediate";
  case ApiFamily::Io:
    return "io";
  case ApiFamily::Other:
    return "other";
  }
  return "?";
}

/// Classifies the API a callback execution was registered with.
ApiFamily classifyApi(jsrt::ApiKind K);

/// The counting analysis: cheap, allocation-free per event.
class ApiUsageCounter : public instr::AnalysisBase {
public:
  const char *analysisName() const override { return "api-usage-counter"; }

  void onFunctionEnter(const instr::FunctionEnterEvent &E) override;

  /// Callback executions observed for \p F.
  uint64_t executions(ApiFamily F) const {
    return Counts[static_cast<int>(F)];
  }

  uint64_t totalExecutions() const {
    uint64_t T = 0;
    for (uint64_t C : Counts)
      T += C;
    return T;
  }

  void reset() {
    for (uint64_t &C : Counts)
      C = 0;
  }

private:
  uint64_t Counts[7] = {};
};

} // namespace baselines
} // namespace asyncg

#endif // ASYNCG_BASELINES_APIUSAGECOUNTER_H
