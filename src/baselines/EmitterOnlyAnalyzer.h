//===- EmitterOnlyAnalyzer.h - Radar-like emitter baseline ------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A baseline analysis modelled on Radar [10]: it reasons about emitters
/// (dead emits, dead listeners) without any event-loop model and without
/// promise support. Used by the Table-II coverage comparison.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_BASELINES_EMITTERONLYANALYZER_H
#define ASYNCG_BASELINES_EMITTERONLYANALYZER_H

#include "ag/Warning.h"
#include "instr/Hooks.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace asyncg {
namespace baselines {

/// The emitter-only baseline.
class EmitterOnlyAnalyzer : public instr::AnalysisBase {
public:
  const char *analysisName() const override { return "emitter-only"; }

  void onApiCall(const instr::ApiCallEvent &E) override;
  void onFunctionEnter(const instr::FunctionEnterEvent &E) override;
  void onLoopEnd(const instr::LoopEndEvent &E) override;

  const std::vector<ag::Warning> &warnings() const { return Warnings; }

  std::set<ag::BugCategory> detectedCategories() const {
    std::set<ag::BugCategory> S;
    for (const ag::Warning &W : Warnings)
      S.insert(W.Category);
    return S;
  }

private:
  struct ListenerInfo {
    SourceLocation Loc;
    std::string Event;
    bool Executed = false;
    bool Removed = false;
    bool Internal = false;
  };

  void warn(ag::BugCategory Cat, SourceLocation Loc, std::string Message);

  /// Keyed by registration id.
  std::map<jsrt::ScheduleId, ListenerInfo> Listeners;
  std::vector<ag::Warning> Warnings;
  std::set<std::pair<int, std::string>> Dedup;
};

} // namespace baselines
} // namespace asyncg

#endif // ASYNCG_BASELINES_EMITTERONLYANALYZER_H
