//===- EmitterOnlyAnalyzer.cpp - Radar-like emitter baseline ------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "baselines/EmitterOnlyAnalyzer.h"

using namespace asyncg;
using namespace asyncg::baselines;
using namespace asyncg::jsrt;

void EmitterOnlyAnalyzer::warn(ag::BugCategory Cat, SourceLocation Loc,
                               std::string Message) {
  if (!Dedup.insert({static_cast<int>(Cat), Loc.str() + Message}).second)
    return;
  ag::Warning W;
  W.Category = Cat;
  W.Loc = std::move(Loc);
  W.Message = std::move(Message);
  Warnings.push_back(std::move(W));
}

void EmitterOnlyAnalyzer::onApiCall(const instr::ApiCallEvent &E) {
  switch (E.Api) {
  case ApiKind::EmitterOn:
  case ApiKind::EmitterOnce:
  case ApiKind::EmitterPrepend:
  case ApiKind::NetCreateServer:
  case ApiKind::HttpCreateServer: {
    ListenerInfo &L = Listeners[E.Sched];
    L.Loc = E.Loc;
    L.Event = E.EventName.str();
    L.Internal = E.Internal || E.Loc.isInternal();
    return;
  }
  case ApiKind::EmitterEmit:
    if (!E.TriggerHadEffect && !E.Internal && !E.Loc.isInternal())
      warn(ag::BugCategory::DeadEmit, E.Loc,
           "event '" + E.EventName.str() + "' emitted without listeners");
    return;
  case ApiKind::EmitterRemoveListener:
    // Without callback-identity modelling, Radar-style analyses cannot
    // tell a failing removal apart (over-approximated away): no warning.
    return;
  default:
    return;
  }
}

void EmitterOnlyAnalyzer::onFunctionEnter(
    const instr::FunctionEnterEvent &E) {
  if (E.Dispatch.Sched == 0)
    return;
  auto It = Listeners.find(E.Dispatch.Sched);
  if (It != Listeners.end())
    It->second.Executed = true;
}

void EmitterOnlyAnalyzer::onLoopEnd(const instr::LoopEndEvent &E) {
  (void)E;
  for (const auto &[Sched, L] : Listeners) {
    (void)Sched;
    if (!L.Executed && !L.Removed && !L.Internal)
      warn(ag::BugCategory::DeadListener, L.Loc,
           "listener for '" + L.Event + "' never executed");
  }
}
