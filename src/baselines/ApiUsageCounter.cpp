//===- ApiUsageCounter.cpp - per-API callback execution counter ---------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "baselines/ApiUsageCounter.h"

using namespace asyncg;
using namespace asyncg::baselines;
using namespace asyncg::jsrt;

ApiFamily asyncg::baselines::classifyApi(ApiKind K) {
  switch (K) {
  case ApiKind::NextTick:
    return ApiFamily::NextTick;
  case ApiKind::SetTimeout:
  case ApiKind::SetInterval:
    return ApiFamily::Timer;
  case ApiKind::SetImmediate:
    return ApiFamily::Immediate;
  case ApiKind::PromiseCtor:
  case ApiKind::PromiseThen:
  case ApiKind::PromiseCatch:
  case ApiKind::PromiseFinally:
  case ApiKind::Await:
  case ApiKind::PromiseAll:
  case ApiKind::PromiseRace:
  case ApiKind::PromiseAllSettled:
  case ApiKind::PromiseAny:
    return ApiFamily::Promise;
  case ApiKind::EmitterOn:
  case ApiKind::EmitterOnce:
  case ApiKind::EmitterPrepend:
  case ApiKind::NetCreateServer:
  case ApiKind::HttpCreateServer:
    return ApiFamily::Emitter;
  case ApiKind::FsReadFile:
  case ApiKind::FsWriteFile:
  case ApiKind::NetConnect:
  case ApiKind::NetListen:
  case ApiKind::HttpRequest:
  case ApiKind::DbQuery:
    return ApiFamily::Io;
  default:
    return ApiFamily::Other;
  }
}

void ApiUsageCounter::onFunctionEnter(const instr::FunctionEnterEvent &E) {
  const DispatchInfo &D = E.Dispatch;
  // Count executions of *registered* callbacks (emitter listeners run
  // nested under emit; everything else runs top-level).
  if (D.Sched == 0)
    return;
  ++Counts[static_cast<int>(classifyApi(D.Api))];
}
