//===- Events.h - node:events helpers (events.once) -------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `events` module helpers bridging emitters and promises —
/// `events.once(emitter, name)` resolves with the first emission's
/// arguments. This is precisely the kind of API *combination* (emitter +
/// promise) the paper argues AsyncG is first to reason about.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_NODE_EVENTS_H
#define ASYNCG_NODE_EVENTS_H

#include "jsrt/Runtime.h"
#include "support/SourceLocation.h"

#include <string>

namespace asyncg {
namespace node {
namespace events {

/// events.once(emitter, name): a promise fulfilled with an array of the
/// first emission's arguments. Like Node, a first 'error' emission rejects
/// the promise instead (unless \p Event is "error" itself).
jsrt::PromiseRef once(jsrt::Runtime &RT, SourceLocation Loc,
                      const jsrt::EmitterRef &E, const std::string &Event);

} // namespace events
} // namespace node
} // namespace asyncg

#endif // ASYNCG_NODE_EVENTS_H
