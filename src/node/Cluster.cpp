//===- Cluster.cpp - node:cluster-like cross-loop messaging -------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "node/Cluster.h"

using namespace asyncg;
using namespace asyncg::node::cluster;
using namespace asyncg::jsrt;

Worker::Worker(Runtime &RT, sim::ClusterKernel &Kernel)
    : RT(RT), Kernel(Kernel) {
  assert(RT.shard() < Kernel.size() && "runtime shard outside the cluster");
  Channel = RT.emitterCreate(SourceLocation::internal(), "cluster.Worker",
                             /*Internal=*/true);
  EmitterRef Ch = Channel;
  Deliver = RT.makeBuiltin(
      "(cluster message)", [Ch](Runtime &RT2, const CallArgs &A) {
        RT2.emitterEmit(SourceLocation::internal(), Ch, "message", A.all());
        return Completion::normal();
      });
}

bool Worker::send(SourceLocation Loc, uint32_t ToShard,
                  std::string Payload) {
  assert(ToShard < Kernel.size() && "destination shard outside the cluster");
  // The CT fires on this loop even if the post below is dropped — exactly
  // like a process.send() racing worker exit: the send happened, the
  // delivery didn't.
  TriggerId Handoff = RT.emitExternalTrigger(
      std::move(Loc), ApiKind::ClusterSend, Channel->Id, "message");
  sim::ClusterMessage M;
  M.From = RT.shard();
  M.Handoff = Handoff;
  M.Payload = std::move(Payload);
  if (!Kernel.post(ToShard, std::move(M)))
    return false;
  ++Sent;
  return true;
}

bool Worker::pump(Runtime &RT2) {
  Inbox.clear();
  if (Kernel.drain(RT2.shard(), Inbox) == 0)
    return false;
  for (sim::ClusterMessage &M : Inbox) {
    // Top-level I/O tick whose Sched is the sender-minted handoff id. No
    // local registration matches it, so the shard's builder records the
    // tick's CE with that foreign Sched — the merge joins it to the
    // sender's CT.
    RT2.dispatchExternal(Deliver,
                         {Value::str(std::move(M.Payload)),
                          Value::number(static_cast<double>(M.From))},
                         M.Handoff, ApiKind::ClusterRecv);
    ++Received;
  }
  Inbox.clear();
  return true;
}

bool Worker::waitForWork(Runtime &RT2) {
  return Kernel.waitForWork(RT2.shard());
}
