//===- Cluster.h - node:cluster-like cross-loop messaging -------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `cluster` module: each event loop in a multi-loop cluster owns one
/// Worker, which is both the JS-visible messaging endpoint (a channel
/// emitter carrying 'message' events) and the loop's jsrt::LoopPort (the
/// hook runLoop uses to pump cross-loop deliveries and park on the shared
/// kernel when local work runs dry).
///
/// A send mints a handoff id on the sending loop — a CT-producing
/// ApiCallEvent (ApiKind::ClusterSend), so the sender's shard graph shows
/// the trigger — and posts plain data to the sim::ClusterKernel. The
/// receiving loop's pump dispatches each delivery as a top-level I/O tick
/// whose Sched is that handoff id (ApiKind::ClusterRecv); the tick emits
/// 'message' on the receiver's channel. Per-shard graphs never reference
/// each other's nodes — the handoff id is the only shared token, and
/// ag::ShardedGraph joins it back into a cross-loop causal edge at merge
/// time.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_NODE_CLUSTER_H
#define ASYNCG_NODE_CLUSTER_H

#include "jsrt/Runtime.h"
#include "sim/Cluster.h"
#include "support/SourceLocation.h"

#include <string>
#include <vector>

namespace asyncg {
namespace node {
namespace cluster {

/// One loop's membership in a cluster: messaging endpoint + loop port.
/// Create it on the loop's own thread after constructing the Runtime, and
/// install with `RT.setLoopPort(&W)` before running the loop.
class Worker final : public jsrt::LoopPort {
public:
  Worker(jsrt::Runtime &RT, sim::ClusterKernel &Kernel);

  /// The channel emitter. Deliveries emit 'message' on it with args
  /// (payload string, sender shard number); register listeners with
  /// `RT.emitterOn(Loc, W.channel(), "message", Fn)`.
  const jsrt::EmitterRef &channel() const { return Channel; }

  /// process.send()-style cross-loop message: fires the ClusterSend
  /// trigger event and posts to \p ToShard's delivery queue. Returns false
  /// once the cluster has quiesced (the message is dropped).
  bool send(SourceLocation Loc, uint32_t ToShard, std::string Payload);

  uint64_t sent() const { return Sent; }
  uint64_t received() const { return Received; }

  /// \name jsrt::LoopPort
  /// @{
  bool pump(jsrt::Runtime &RT) override;
  bool waitForWork(jsrt::Runtime &RT) override;
  /// @}

private:
  jsrt::Runtime &RT;
  sim::ClusterKernel &Kernel;
  jsrt::EmitterRef Channel;
  /// The builtin that runs each delivery tick (reused across messages).
  jsrt::Function Deliver;
  /// Drain scratch, reused across pumps.
  std::vector<sim::ClusterMessage> Inbox;
  uint64_t Sent = 0;
  uint64_t Received = 0;
};

} // namespace cluster
} // namespace node
} // namespace asyncg

#endif // ASYNCG_NODE_CLUSTER_H
