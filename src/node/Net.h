//===- Net.h - node:net-like TCP servers and sockets ------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `net` module: TCP servers and sockets wrapping the simulated network
/// in EventEmitter objects. Servers emit 'connection' and 'close'; sockets
/// emit 'data', 'end', and 'close'. Incoming OS events are delivered by
/// internal dispatcher callbacks in the I/O phase, and socket 'close'
/// events go through the close-handlers phase (lowest priority), matching
/// the paper's phase taxonomy (§II-B).
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_NODE_NET_H
#define ASYNCG_NODE_NET_H

#include "jsrt/Runtime.h"
#include "sim/Network.h"
#include "support/SourceLocation.h"

#include <memory>
#include <string>

namespace asyncg {
namespace node {

/// A JS-visible TCP socket: an emitter ('data'/'end'/'close') plus write
/// and teardown methods. Wraps one endpoint of a simulated connection.
class Socket : public std::enable_shared_from_this<Socket> {
public:
  /// Wraps a raw simulated socket and wires its events through internal
  /// I/O dispatch into the emitter.
  static std::shared_ptr<Socket> wrap(jsrt::Runtime &RT,
                                      std::shared_ptr<sim::Socket> Raw);

  /// The emitter carrying 'data' (string chunk), 'end', and 'close'.
  const jsrt::EmitterRef &emitter() const { return Em; }

  /// Sends bytes to the peer. Returns false once ended/destroyed.
  bool write(const std::string &Bytes) { return Raw->write(Bytes); }

  /// Half-closes the connection.
  void end() { Raw->end(); }

  /// Tears the connection down (both sides see 'close').
  void destroy() { Raw->destroy(); }

  /// Boxes this socket into a JS value (External-tagged).
  jsrt::Value toValue() { return jsrt::Value::external(shared_from_this(),
                                                       ExternalTag); }

  /// Unboxes a socket from a JS value.
  static std::shared_ptr<Socket> from(const jsrt::Value &V) {
    return V.asExternal<Socket>(ExternalTag);
  }

  static constexpr const char *ExternalTag = "net.Socket";

private:
  Socket(jsrt::Runtime &RT, std::shared_ptr<sim::Socket> Raw)
      : RT(RT), Raw(std::move(Raw)) {}

  jsrt::Runtime &RT;
  std::shared_ptr<sim::Socket> Raw;
  jsrt::EmitterRef Em;
};

/// A JS-visible TCP server: an emitter carrying 'connection' (Socket value)
/// and 'close'.
class Server : public std::enable_shared_from_this<Server> {
public:
  const jsrt::EmitterRef &emitter() const { return Em; }

  /// server.listen(port). Returns false if the port is in use.
  bool listen(SourceLocation Loc, int Port);

  /// server.close(): stops accepting; emits 'close' in the close phase.
  void close(SourceLocation Loc);

  bool isListening() const { return Port >= 0; }

  static constexpr const char *ExternalTag = "net.Server";

private:
  friend std::shared_ptr<Server> createServer(jsrt::Runtime &,
                                              SourceLocation,
                                              const jsrt::Function &);
  explicit Server(jsrt::Runtime &RT) : RT(RT) {}

  jsrt::Runtime &RT;
  jsrt::EmitterRef Em;
  int Port = -1;
};

/// net.createServer([connectionListener]): creates a server whose internal
/// emitter receives the listener on 'connection' — the paper's
/// "□ L7: createServer registers the callback with an internal event
/// emitter (*: E1)" structure.
std::shared_ptr<Server> createServer(jsrt::Runtime &RT, SourceLocation Loc,
                                     const jsrt::Function &OnConnection =
                                         jsrt::Function());

/// net.connect(port, [connectListener]): client side. The listener receives
/// the connected Socket value. Returns immediately; connection (or an
/// 'error'-style uncaught report when nothing listens) happens in the I/O
/// phase.
void connect(jsrt::Runtime &RT, SourceLocation Loc, int Port,
             const jsrt::Function &OnConnect);

} // namespace node
} // namespace asyncg

#endif // ASYNCG_NODE_NET_H
