//===- Net.cpp - node:net-like TCP servers and sockets -----------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "node/Net.h"

using namespace asyncg;
using namespace asyncg::node;
using namespace asyncg::jsrt;

std::shared_ptr<Socket> Socket::wrap(Runtime &RT,
                                     std::shared_ptr<sim::Socket> Raw) {
  std::shared_ptr<Socket> S(new Socket(RT, std::move(Raw)));
  S->Em = RT.emitterCreate(SourceLocation::internal(), "net.Socket",
                           /*Internal=*/true);

  // Raw handlers run inside kernel completions (loop I/O context); each OS
  // event becomes an internal top-level dispatch that synchronously emits
  // on the socket emitter. They hold the wrapper strongly — an open socket
  // stays alive like any active libuv handle; the cycle is broken when the
  // close event fires.
  Runtime *R = &RT;
  std::shared_ptr<Socket> Self = S;
  S->Raw->onData([R, Self](const std::string &Bytes) {
    R->dispatchInternal("(socket data)", [Self, Bytes](Runtime &RT2) {
      RT2.emitterEmit(SourceLocation::internal(), Self->Em, "data",
                      {Value::str(Bytes)});
    });
  });
  S->Raw->onEnd([R, Self] {
    R->dispatchInternal("(socket end)", [Self](Runtime &RT2) {
      RT2.emitterEmit(SourceLocation::internal(), Self->Em, "end");
    });
  });
  S->Raw->onClose([R, Self] {
    // Close events run in the close-handlers phase (lowest priority).
    Function EmitClose =
        R->makeBuiltin("(socket close)", [Self](Runtime &RT2,
                                                const CallArgs &) {
          RT2.emitterEmit(SourceLocation::internal(), Self->Em, "close");
          return Completion::normal();
        });
    R->scheduleCloseCallback(SourceLocation::internal(), EmitClose);
    Self->Raw->clearHandlers();
  });
  return S;
}

std::shared_ptr<Server> asyncg::node::createServer(
    Runtime &RT, SourceLocation Loc, const Function &OnConnection) {
  std::shared_ptr<Server> S(new Server(RT));
  S->Em = RT.emitterCreate(SourceLocation::internal(), "net.Server",
                           /*Internal=*/true);
  if (OnConnection.isValid())
    RT.emitterOnVia(std::move(Loc), ApiKind::NetCreateServer, S->Em,
                    "connection", OnConnection);
  return S;
}

bool Server::listen(SourceLocation Loc, int Port) {
  assert(!isListening() && "server already listening");
  Runtime *R = &RT;
  EmitterRef ServerEm = Em;
  // The listener table holds a strong self-reference while listening — a
  // listening server keeps the process alive in Node; close() releases it.
  std::shared_ptr<Server> Self = shared_from_this();
  bool Ok = RT.network().listen(
      Port, [R, ServerEm, Self](std::shared_ptr<sim::Socket> Raw) {
        (void)Self;
        R->dispatchInternal("(tcp accept)", [ServerEm, Raw](Runtime &RT2) {
          auto Sock = Socket::wrap(RT2, Raw);
          RT2.emitterEmit(SourceLocation::internal(), ServerEm, "connection",
                          {Sock->toValue()});
        });
      });
  if (!Ok)
    return false;
  this->Port = Port;

  // Surface the listen call itself to the analyses (a CR-less API use).
  if (!RT.hooks().empty()) {
    instr::ApiCallEvent &E = instr::scratchApiCall();
    E.Api = ApiKind::NetListen;
    E.Loc = std::move(Loc);
    E.BoundObj = Em->Id;
    RT.hooks().fireApiCall(E);
  }
  return true;
}

void Server::close(SourceLocation Loc) {
  (void)Loc;
  if (!isListening())
    return;
  RT.network().closePort(Port);
  Port = -1;
  EmitterRef ServerEm = Em;
  Function EmitClose = RT.makeBuiltin(
      "(server close)", [ServerEm](Runtime &RT2, const CallArgs &) {
        RT2.emitterEmit(SourceLocation::internal(), ServerEm, "close");
        return Completion::normal();
      });
  RT.scheduleCloseCallback(SourceLocation::internal(), EmitClose);
}

void asyncg::node::connect(Runtime &RT, SourceLocation Loc, int Port,
                           const Function &OnConnect) {
  assert(OnConnect.isValid() && "net.connect requires a listener");
  ScheduleId Sched =
      RT.registerExternal(std::move(Loc), ApiKind::NetConnect, OnConnect);
  Runtime *R = &RT;
  bool Ok = RT.network().connect(
      Port, [R, OnConnect, Sched](std::shared_ptr<sim::Socket> Raw) {
        // Runs in a kernel completion: dispatch the user's connect callback
        // as an I/O tick with the connected socket.
        auto Sock = Socket::wrap(*R, Raw);
        R->dispatchExternal(OnConnect, {Sock->toValue()}, Sched,
                            ApiKind::NetConnect);
      });
  if (!Ok) {
    // Connection refused: report asynchronously, as the OS would.
    RT.kernel().submit(RT.network().latency(), [R, Port] {
      R->dispatchInternal("(connect error)", [Port](Runtime &RT2) {
        RT2.reportUncaught(
            Value::str("ECONNREFUSED: connect to port " +
                       std::to_string(Port)),
            SourceLocation::internal());
      });
    });
  }
}
