//===- Fs.cpp - node:fs-like asynchronous file API ---------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "node/Fs.h"

using namespace asyncg;
using namespace asyncg::node;
using namespace asyncg::jsrt;

ScheduleId Fs::readFile(SourceLocation Loc, const std::string &Path,
                        const Function &Cb) {
  assert(Cb.isValid() && "fs.readFile requires a callback");
  ScheduleId Sched =
      RT.registerExternal(std::move(Loc), ApiKind::FsReadFile, Cb);
  Runtime *R = &RT;
  RT.fileSystem().readFileAsync(Path, [R, Cb, Sched](sim::FileResult Res) {
    Value Err = Res.ok() ? Value::null() : Value::str(Res.Error);
    Value Data = Res.ok() ? Value::str(Res.Data) : Value::undefined();
    R->dispatchExternal(Cb, {std::move(Err), std::move(Data)}, Sched,
                        ApiKind::FsReadFile);
  });
  return Sched;
}

ScheduleId Fs::writeFile(SourceLocation Loc, const std::string &Path,
                         std::string Data, const Function &Cb) {
  assert(Cb.isValid() && "fs.writeFile requires a callback");
  ScheduleId Sched =
      RT.registerExternal(std::move(Loc), ApiKind::FsWriteFile, Cb);
  Runtime *R = &RT;
  RT.fileSystem().writeFileAsync(
      Path, std::move(Data), [R, Cb, Sched](sim::FileResult Res) {
        Value Err = Res.ok() ? Value::null() : Value::str(Res.Error);
        R->dispatchExternal(Cb, {std::move(Err)}, Sched,
                            ApiKind::FsWriteFile);
      });
  return Sched;
}

PromiseRef Fs::readFilePromise(SourceLocation Loc, const std::string &Path) {
  PromiseRef P = RT.promiseBare(Loc, "fs.readFile");
  Function Cb = RT.makeBuiltin(
      "(fs resolve)", [P](Runtime &R, const CallArgs &A) {
        if (A.arg(0).isNull())
          R.resolvePromiseInternal(P, A.arg(1));
        else
          R.rejectPromiseInternal(P, A.arg(0));
        return Completion::normal();
      });
  readFile(std::move(Loc), Path, Cb);
  return P;
}
