//===- Fs.h - node:fs-like asynchronous file API ----------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The callback-style `fs` module on top of the simulated file system:
/// completions arrive through the kernel and dispatch in the event loop's
/// I/O phase, exactly like libuv's threadpool-backed fs operations. This is
/// an "external scheduling" source in the paper's taxonomy (§II-A).
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_NODE_FS_H
#define ASYNCG_NODE_FS_H

#include "jsrt/Runtime.h"
#include "support/SourceLocation.h"

#include <string>

namespace asyncg {
namespace node {

/// The `fs` module facade.
class Fs {
public:
  explicit Fs(jsrt::Runtime &RT) : RT(RT) {}

  /// fs.readFile(path, (err, data) => ...). \p Cb receives (null, string)
  /// on success or (string error, undefined) on failure. Returns the
  /// registration id (usable with the AG query helpers).
  jsrt::ScheduleId readFile(SourceLocation Loc, const std::string &Path,
                            const jsrt::Function &Cb);

  /// fs.writeFile(path, data, (err) => ...).
  jsrt::ScheduleId writeFile(SourceLocation Loc, const std::string &Path,
                             std::string Data, const jsrt::Function &Cb);

  /// fs.readFile returning a promise (the `fs/promises` flavour).
  jsrt::PromiseRef readFilePromise(SourceLocation Loc,
                                   const std::string &Path);

private:
  jsrt::Runtime &RT;
};

} // namespace node
} // namespace asyncg

#endif // ASYNCG_NODE_FS_H
