//===- Http.cpp - node:http-like HTTP server and client ----------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "node/Http.h"

#include "support/Format.h"

using namespace asyncg;
using namespace asyncg::node;
using namespace asyncg::node::http;
using namespace asyncg::jsrt;

//===----------------------------------------------------------------------===//
// Wire framing
//===----------------------------------------------------------------------===//

std::string asyncg::node::http::frameRequestLine(const std::string &Method,
                                                 const std::string &Path) {
  return "REQ " + Method + " " + Path;
}

std::string asyncg::node::http::frameDataChunk(const std::string &Chunk) {
  return "DAT " + Chunk;
}

std::string asyncg::node::http::frameEnd() { return "END"; }

std::string asyncg::node::http::frameResponse(int Status,
                                              const std::string &Body) {
  return strFormat("RES %d %s", Status, Body.c_str());
}

bool asyncg::node::http::parseResponse(const std::string &Msg,
                                       ClientResponse &Out) {
  if (!startsWith(Msg, "RES "))
    return false;
  size_t Sp = Msg.find(' ', 4);
  if (Sp == std::string::npos) {
    Out.Status = std::atoi(Msg.substr(4).c_str());
    Out.Body.clear();
    return true;
  }
  Out.Status = std::atoi(Msg.substr(4, Sp - 4).c_str());
  Out.Body = Msg.substr(Sp + 1);
  return true;
}

//===----------------------------------------------------------------------===//
// ServerResponse
//===----------------------------------------------------------------------===//

bool ServerResponse::end(const std::string &Body) {
  if (Ended)
    return false;
  Ended = true;
  Sock->write(frameResponse(StatusCode, Body));
  // Node's http internals complete the outgoing message on the next tick
  // (write-finished bookkeeping).
  RT->nextTick(SourceLocation::internal(),
               RT->makeBuiltin("(response finish)",
                               [](jsrt::Runtime &, const CallArgs &) {
                                 return Completion::normal();
                               }));
  return true;
}

//===----------------------------------------------------------------------===//
// HttpServer
//===----------------------------------------------------------------------===//

namespace {

/// Per-connection parser state.
struct ConnState {
  std::shared_ptr<IncomingMessage> CurrentReq;
};

} // namespace

std::shared_ptr<HttpServer> HttpServer::create(Runtime &RT,
                                               SourceLocation Loc,
                                               const Function &OnRequest) {
  std::shared_ptr<HttpServer> S(new HttpServer(RT));
  S->Em = RT.emitterCreate(SourceLocation::internal(), "http.Server",
                           /*Internal=*/true);
  if (OnRequest.isValid())
    RT.emitterOnVia(std::move(Loc), ApiKind::HttpCreateServer, S->Em,
                    "request", OnRequest);

  EmitterRef ServerEm = S->Em;
  Function OnConnection = RT.makeBuiltin(
      "(http connection)", [ServerEm](Runtime &R, const CallArgs &A) {
        std::shared_ptr<Socket> Sock = Socket::from(A.arg(0));
        auto Conn = std::make_shared<ConnState>();

        Function OnData = R.makeBuiltin(
            "(http parse)",
            [ServerEm, Sock, Conn](Runtime &R2, const CallArgs &A2) {
              const std::string &Msg = A2.arg(0).asString();
              if (startsWith(Msg, "REQ ")) {
                std::string Rest = Msg.substr(4);
                size_t Sp = Rest.find(' ');
                std::string Method =
                    Sp == std::string::npos ? Rest : Rest.substr(0, Sp);
                std::string Path =
                    Sp == std::string::npos ? "/" : Rest.substr(Sp + 1);
                EmitterRef ReqEm =
                    R2.emitterCreate(SourceLocation::internal(),
                                     "http.IncomingMessage",
                                     /*Internal=*/true);
                Conn->CurrentReq = std::make_shared<IncomingMessage>(
                    ReqEm, std::move(Method), std::move(Path));
                auto Res = std::make_shared<ServerResponse>(R2, Sock);
                R2.emitterEmit(SourceLocation::internal(), ServerEm,
                               "request",
                               {Conn->CurrentReq->toValue(),
                                Res->toValue()});
                return Completion::normal();
              }
              if (startsWith(Msg, "DAT ")) {
                if (Conn->CurrentReq)
                  R2.emitterEmit(SourceLocation::internal(),
                                 Conn->CurrentReq->emitter(), "data",
                                 {Value::str(Msg.substr(4))});
                return Completion::normal();
              }
              if (Msg == "END") {
                if (Conn->CurrentReq) {
                  auto Req = Conn->CurrentReq;
                  // Keep-alive: ready for the next REQ on this socket.
                  Conn->CurrentReq = nullptr;
                  R2.emitterEmit(SourceLocation::internal(), Req->emitter(),
                                 "end");
                  // The message is complete: drop its listeners, as Node's
                  // http internals detach the completed IncomingMessage.
                  // The listener closures hold the last strong references
                  // to the request (and the response captured in the app's
                  // handlers), so this is what lets the per-request
                  // emitters expire and be swept as released — without it
                  // a keep-alive server retains every message forever.
                  Req->emitter()->Events.clear();
                }
                return Completion::normal();
              }
              return Completion::normal();
            });
        R.emitterOnVia(SourceLocation::internal(), ApiKind::EmitterOn,
                       Sock->emitter(), "data", OnData);
        return Completion::normal();
      });

  S->Tcp = node::createServer(RT, SourceLocation::internal(), OnConnection);
  return S;
}

bool HttpServer::listen(SourceLocation Loc, int Port) {
  return Tcp->listen(std::move(Loc), Port);
}

void HttpServer::close(SourceLocation Loc) {
  Tcp->close(Loc);
  EmitterRef ServerEm = Em;
  Function EmitClose = RT.makeBuiltin(
      "(http close)", [ServerEm](Runtime &R, const CallArgs &) {
        R.emitterEmit(SourceLocation::internal(), ServerEm, "close");
        return Completion::normal();
      });
  RT.scheduleCloseCallback(SourceLocation::internal(), EmitClose);
}

//===----------------------------------------------------------------------===//
// Client
//===----------------------------------------------------------------------===//

void asyncg::node::http::request(Runtime &RT, SourceLocation Loc,
                                 RequestOptions Options, const Function &Cb) {
  assert(Cb.isValid() && "http.request requires a callback");
  ScheduleId Sched =
      RT.registerExternal(std::move(Loc), ApiKind::HttpRequest, Cb);
  Runtime *R = &RT;

  bool Ok = RT.network().connect(
      Options.Port,
      [R, Cb, Sched, Options](std::shared_ptr<sim::Socket> Raw) {
        // Client endpoint stays raw C++: only the final response callback
        // is a JS dispatch.
        Raw->onData([R, Cb, Sched, Raw](const std::string &Msg) {
          ClientResponse Res;
          if (!parseResponse(Msg, Res))
            return;
          Raw->destroy();
          R->dispatchExternal(Cb,
                              {Value::null(),
                               Value::number(Res.Status),
                               Value::str(Res.Body)},
                              Sched, ApiKind::HttpRequest);
        });
        Raw->write(frameRequestLine(Options.Method, Options.Path));
        for (const std::string &Chunk : Options.BodyChunks)
          Raw->write(frameDataChunk(Chunk));
        Raw->write(frameEnd());
      });

  if (!Ok) {
    RT.kernel().submit(RT.network().latency(), [R, Cb, Sched, Options] {
      R->dispatchExternal(
          Cb,
          {Value::str(strFormat("ECONNREFUSED: port %d", Options.Port)),
           Value::undefined(), Value::undefined()},
          Sched, ApiKind::HttpRequest);
    });
  }
}
