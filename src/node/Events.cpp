//===- Events.cpp - node:events helpers (events.once) --------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "node/Events.h"

#include "jsrt/Object.h"

using namespace asyncg;
using namespace asyncg::node;
using namespace asyncg::jsrt;

PromiseRef asyncg::node::events::once(Runtime &RT, SourceLocation Loc,
                                      const EmitterRef &E,
                                      const std::string &Event) {
  assert(E && "events.once on null emitter");
  PromiseRef P = RT.promiseBare(Loc, "events.once(" + Event + ")");
  auto Settled = std::make_shared<bool>(false);

  Function OnEvent = RT.makeBuiltin(
      "(once " + Event + ")",
      [P, Settled](Runtime &R, const CallArgs &A) {
        if (*Settled)
          return Completion::normal();
        *Settled = true;
        R.resolvePromiseInternal(P, ArrayData::make(A.all()));
        return Completion::normal();
      });
  RT.emitterOnce(Loc, E, Event, OnEvent);

  if (Event != "error") {
    // A first 'error' emission rejects the pending promise (Node
    // semantics). The error listener also suppresses the
    // unhandled-'error' crash while we wait.
    Function OnError = RT.makeBuiltin(
        "(once error)", [P, Settled](Runtime &R, const CallArgs &A) {
          if (*Settled)
            return Completion::normal();
          *Settled = true;
          R.rejectPromiseInternal(P, A.arg(0));
          return Completion::normal();
        });
    RT.emitterOnce(SourceLocation::internal(), E, "error", OnError);
  }
  return P;
}
