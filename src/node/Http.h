//===- Http.h - node:http-like HTTP server and client -----------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal HTTP layer over the net module, sufficient for the paper's
/// examples and the AcmeAir evaluation server. The wire protocol is a
/// simplified framing where each simulated network message is one unit:
///
///   client -> server:  "REQ <METHOD> <PATH>" | "DAT <chunk>" | "END"
///   server -> client:  "RES <status> <body>"
///
/// Structure mirrors Node: http.createServer registers the request handler
/// on an internal 'request' event emitter; each incoming request is itself
/// an emitter delivering 'data' chunks and 'end' (the §II-A example);
/// responses are written through a ServerResponse object. Connections are
/// keep-alive: a client may send many REQ/DAT/END cycles on one socket.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_NODE_HTTP_H
#define ASYNCG_NODE_HTTP_H

#include "jsrt/Runtime.h"
#include "node/Net.h"
#include "support/SourceLocation.h"

#include <memory>
#include <string>
#include <vector>

namespace asyncg {
namespace node {
namespace http {

/// An incoming HTTP request: an emitter ('data' string chunks, 'end') plus
/// the request line.
class IncomingMessage
    : public std::enable_shared_from_this<IncomingMessage> {
public:
  IncomingMessage(jsrt::EmitterRef Em, std::string Method, std::string Url)
      : Em(std::move(Em)), Method(std::move(Method)), Url(std::move(Url)) {}

  const jsrt::EmitterRef &emitter() const { return Em; }
  const std::string &method() const { return Method; }
  const std::string &url() const { return Url; }

  jsrt::Value toValue() {
    return jsrt::Value::external(shared_from_this(), ExternalTag);
  }
  static std::shared_ptr<IncomingMessage> from(const jsrt::Value &V) {
    return V.asExternal<IncomingMessage>(ExternalTag);
  }

  static constexpr const char *ExternalTag = "http.IncomingMessage";

private:
  jsrt::EmitterRef Em;
  std::string Method;
  std::string Url;
};

/// The response writer handed to request handlers.
class ServerResponse : public std::enable_shared_from_this<ServerResponse> {
public:
  ServerResponse(jsrt::Runtime &RT, std::shared_ptr<Socket> Sock)
      : RT(&RT), Sock(std::move(Sock)) {}

  /// res.writeHead(status).
  void writeHead(int Status) { StatusCode = Status; }

  /// res.end([body]): sends the response. Returns false if already ended.
  bool end(const std::string &Body = std::string());

  bool isEnded() const { return Ended; }
  int statusCode() const { return StatusCode; }

  jsrt::Value toValue() {
    return jsrt::Value::external(shared_from_this(), ExternalTag);
  }
  static std::shared_ptr<ServerResponse> from(const jsrt::Value &V) {
    return V.asExternal<ServerResponse>(ExternalTag);
  }

  static constexpr const char *ExternalTag = "http.ServerResponse";

private:
  jsrt::Runtime *RT;
  std::shared_ptr<Socket> Sock;
  int StatusCode = 200;
  bool Ended = false;
};

/// An HTTP server. Emits 'request' with (IncomingMessage, ServerResponse)
/// values and 'close'.
class HttpServer : public std::enable_shared_from_this<HttpServer> {
public:
  /// http.createServer([requestListener]).
  static std::shared_ptr<HttpServer>
  create(jsrt::Runtime &RT, SourceLocation Loc,
         const jsrt::Function &OnRequest = jsrt::Function());

  const jsrt::EmitterRef &emitter() const { return Em; }

  /// server.listen(port).
  bool listen(SourceLocation Loc, int Port);

  /// server.close().
  void close(SourceLocation Loc);

private:
  explicit HttpServer(jsrt::Runtime &RT) : RT(RT) {}

  jsrt::Runtime &RT;
  jsrt::EmitterRef Em;
  std::shared_ptr<Server> Tcp;
};

/// Client-side response passed to http.request callbacks.
struct ClientResponse {
  int Status = 0;
  std::string Body;
};

/// Options for http.request.
struct RequestOptions {
  std::string Method = "GET";
  int Port = 0;
  std::string Path = "/";
  /// Body chunks, each sent as a separate DAT message (separate 'data'
  /// events server-side).
  std::vector<std::string> BodyChunks;
};

/// http.request(options, (err, status, body) => ...). One request per
/// connection; the callback is dispatched in the I/O phase.
void request(jsrt::Runtime &RT, SourceLocation Loc, RequestOptions Options,
             const jsrt::Function &Cb);

/// Serializes/parses the wire framing (exposed for the workload driver and
/// tests).
std::string frameRequestLine(const std::string &Method,
                             const std::string &Path);
std::string frameDataChunk(const std::string &Chunk);
std::string frameEnd();
std::string frameResponse(int Status, const std::string &Body);
/// Parses "RES <status> <body>"; returns false when \p Msg is not a
/// response frame.
bool parseResponse(const std::string &Msg, ClientResponse &Out);

} // namespace http
} // namespace node
} // namespace asyncg

#endif // ASYNCG_NODE_HTTP_H
