//===- TextReport.h - plain-text Async Graph reports ------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plain-text renderings of Async Graphs and warning lists for terminals:
/// a tick-by-tick listing (the textual equivalent of the paper's figures)
/// and a warnings report.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_VIZ_TEXTREPORT_H
#define ASYNCG_VIZ_TEXTREPORT_H

#include "ag/Graph.h"

#include <string>

namespace asyncg {
namespace viz {

/// Options for the text rendering.
struct TextOptions {
  /// Maximum ticks rendered (0 = all); large graphs truncate with a note.
  size_t MaxTicks = 0;
  /// Include internal-library nodes.
  bool IncludeInternal = true;
};

/// Tick-by-tick listing: one block per tick, one line per node with its
/// kind glyph ([] CR, () CE, ** CT, /\ OB), label, and key edges.
std::string toText(const ag::AsyncGraph &G,
                   const TextOptions &Opts = TextOptions());

/// One line per warning: "category @ loc: message".
std::string warningsReport(const ag::AsyncGraph &G);

} // namespace viz
} // namespace asyncg

#endif // ASYNCG_VIZ_TEXTREPORT_H
