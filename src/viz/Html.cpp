//===- Html.cpp - self-contained HTML Async Graph viewer ------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "viz/Html.h"

#include "support/Format.h"
#include "viz/JsonDump.h"

using namespace asyncg;
using namespace asyncg::viz;

std::string asyncg::viz::toHtml(const ag::AsyncGraph &G,
                                const std::string &Title) {
  std::string Json = toJson(G);
  // Avoid closing the embedding <script> early.
  std::string Safe;
  Safe.reserve(Json.size());
  for (size_t I = 0; I < Json.size(); ++I) {
    if (Json.compare(I, 2, "</") == 0) {
      Safe += "<\\/";
      ++I;
      continue;
    }
    Safe += Json[I];
  }

  std::string Out;
  Out += "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n";
  Out += "<title>" + escapeString(Title) + "</title>\n";
  Out += R"(<style>
 body { font-family: Helvetica, Arial, sans-serif; margin: 16px; }
 h1 { font-size: 18px; }
 #summary { color: #555; margin-bottom: 12px; }
 #ticks { display: flex; flex-wrap: wrap; align-items: flex-start; gap: 8px; }
 .tick { border: 1px dashed #999; border-radius: 6px; padding: 6px;
         min-width: 150px; background: #fafafa; }
 .tick h2 { font-size: 12px; margin: 0 0 6px 0; color: #333; }
 .node { font-size: 11px; padding: 2px 4px; margin: 2px 0; border-radius: 4px;
         border: 1px solid #ccc; background: #fff; cursor: default;
         white-space: nowrap; }
 .node.CR { border-style: solid; }
 .node.CE { border-radius: 12px; }
 .node.CT { background: #fdf3d7; }
 .node.OB { background: #e7f0fd; }
 .node.internal { color: #888; }
 .node.warned { border-color: #c0392b; border-width: 2px; background: #fdecea; }
 #warnings { margin-top: 16px; }
 .warning { color: #c0392b; font-size: 12px; margin: 2px 0; }
 #detail { position: fixed; right: 16px; bottom: 16px; max-width: 420px;
           background: #222; color: #eee; font-size: 11px; padding: 8px;
           border-radius: 6px; display: none; white-space: pre-line; }
</style></head><body>
)";
  Out += "<h1>" + escapeString(Title) + "</h1>\n";
  Out += "<div id=\"summary\"></div>\n<div id=\"ticks\"></div>\n";
  Out += "<div id=\"warnings\"></div>\n<div id=\"detail\"></div>\n";
  Out += "<script>\nconst AG = " + Safe + ";\n";
  Out += R"JS(
const GLYPH = {CR: "□", CE: "○", CT: "★", OB: "△"};
const warned = new Set(AG.warnings.filter(w => w.node !== undefined)
                                  .map(w => w.node));
document.getElementById("summary").textContent =
  `${AG.stats.ticks} ticks · ${AG.stats.nodes} nodes · ` +
  `${AG.stats.edges} edges · ${AG.stats.warnings} warnings`;

const edgesFrom = {}, edgesTo = {};
for (const e of AG.edges) {
  (edgesFrom[e.from] = edgesFrom[e.from] || []).push(e);
  (edgesTo[e.to] = edgesTo[e.to] || []).push(e);
}
const detail = document.getElementById("detail");
function describe(n) {
  let s = `${GLYPH[n.kind]} ${n.label}  [${n.kind} @ ${n.loc}]`;
  for (const e of edgesFrom[n.id] || [])
    s += `\n  -[${e.kind}${e.label ? ":" + e.label : ""}]-> ` +
         AG.nodes[e.to].label;
  for (const e of edgesTo[n.id] || [])
    s += `\n  <-[${e.kind}${e.label ? ":" + e.label : ""}]- ` +
         AG.nodes[e.from].label;
  return s;
}
const ticksDiv = document.getElementById("ticks");
for (const t of AG.ticks) {
  const col = document.createElement("div");
  col.className = "tick";
  const h = document.createElement("h2");
  h.textContent = `t${t.index}: ${t.phase}`;
  col.appendChild(h);
  for (const id of t.nodes) {
    const n = AG.nodes[id];
    const d = document.createElement("div");
    d.className = "node " + n.kind + (n.internal ? " internal" : "") +
                  (warned.has(n.id) ? " warned" : "");
    d.textContent = `${GLYPH[n.kind]} ${n.label}`;
    d.onmouseenter = () => {
      detail.textContent = describe(n);
      detail.style.display = "block";
    };
    d.onmouseleave = () => { detail.style.display = "none"; };
    col.appendChild(d);
  }
  ticksDiv.appendChild(col);
}
const wDiv = document.getElementById("warnings");
if (AG.warnings.length) {
  const h = document.createElement("h1");
  h.textContent = "Warnings";
  wDiv.appendChild(h);
  for (const w of AG.warnings) {
    const d = document.createElement("div");
    d.className = "warning";
    d.textContent = `[${w.category}] @ ${w.loc}: ${w.message}`;
    wDiv.appendChild(d);
  }
}
</script></body></html>
)JS";
  return Out;
}
