//===- JsonDump.h - JSON serialization of Async Graphs ----------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes an Async Graph into the JSON log format (the paper artifact
/// dumps a log that its website visualizes with D3; this is the equivalent
/// machine-readable dump).
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_VIZ_JSONDUMP_H
#define ASYNCG_VIZ_JSONDUMP_H

#include "ag/Graph.h"

#include <string>

namespace asyncg {
namespace viz {

/// Serializes \p G as a JSON document with ticks, nodes, edges, warnings,
/// and summary statistics.
std::string toJson(const ag::AsyncGraph &G);

/// Writes \p Contents to \p Path; returns false on I/O failure. (Small
/// helper so examples can dump graphs next to their binaries.)
bool writeFile(const std::string &Path, const std::string &Contents);

} // namespace viz
} // namespace asyncg

#endif // ASYNCG_VIZ_JSONDUMP_H
