//===- Dot.h - DOT rendering of Async Graphs --------------------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders an Async Graph in the DOT language (§V-C: "AsyncG can visualize
/// the AG using the DOT language"). Ticks become clusters ("t3: io"); node
/// shapes follow the paper: CR □ box, CE ○ ellipse, CT ★ diamond, OB △
/// triangle; binding and relation edges are dashed; warnings highlight
/// their node in red with a "(!)" marker.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_VIZ_DOT_H
#define ASYNCG_VIZ_DOT_H

#include "ag/Graph.h"

#include <string>

namespace asyncg {
namespace viz {

/// DOT rendering options.
struct DotOptions {
  /// Include internal-library nodes ("*" locations).
  bool IncludeInternal = true;
  /// Include happens-in edges (they can clutter large graphs).
  bool IncludeHappensIn = true;
  /// Graph title.
  std::string Title = "Async Graph";
};

/// Renders \p G as a DOT digraph.
std::string toDot(const ag::AsyncGraph &G, const DotOptions &Opts = DotOptions());

} // namespace viz
} // namespace asyncg

#endif // ASYNCG_VIZ_DOT_H
