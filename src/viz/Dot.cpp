//===- Dot.cpp - DOT rendering of Async Graphs --------------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "viz/Dot.h"

#include "support/Format.h"

#include <set>

using namespace asyncg;
using namespace asyncg::viz;
using namespace asyncg::ag;

namespace {

const char *shapeOf(NodeKind K) {
  switch (K) {
  case NodeKind::CR:
    return "box";
  case NodeKind::CE:
    return "ellipse";
  case NodeKind::CT:
    return "diamond";
  case NodeKind::OB:
    return "triangle";
  }
  return "box";
}

} // namespace

std::string asyncg::viz::toDot(const AsyncGraph &G, const DotOptions &Opts) {
  std::string Out;
  Out += "digraph AsyncGraph {\n";
  Out += strFormat("  label=\"%s\";\n", escapeString(Opts.Title).c_str());
  Out += "  rankdir=LR;\n  fontname=\"Helvetica\";\n";
  Out += "  node [fontname=\"Helvetica\", fontsize=10];\n";
  Out += "  edge [fontname=\"Helvetica\", fontsize=9];\n";

  // Nodes with warnings get highlighted.
  std::set<NodeId> Warned;
  for (const Warning &W : G.warnings())
    if (W.Node != InvalidNode)
      Warned.insert(W.Node);

  std::set<NodeId> Skipped;

  if (G.retired().Ticks != 0)
    Out += strFormat("  // %llu retired tick(s) folded into summary\n",
                     static_cast<unsigned long long>(G.retired().Ticks));

  // One cluster per tick.
  for (const AgTick &T : G.ticks()) {
    if (T.Retired)
      continue;
    Out += strFormat("  subgraph cluster_t%u {\n", T.Index);
    Out += strFormat("    label=\"%s\";\n    style=dashed;\n",
                     escapeString(T.name()).c_str());
    for (NodeId N : T.Nodes) {
      const AgNode &Node = G.node(N);
      if (!Opts.IncludeInternal && Node.Internal) {
        Skipped.insert(N);
        continue;
      }
      std::string Label = Node.Label.str();
      bool HasWarning = Warned.count(N) != 0;
      if (HasWarning)
        Label = "(!) " + Label;
      Out += strFormat(
          "    n%u [label=\"%s\", shape=%s%s];\n", N,
          escapeString(Label).c_str(), shapeOf(Node.Kind),
          HasWarning ? ", color=red, penwidth=2"
                     : (Node.Internal ? ", color=gray50, fontcolor=gray30"
                                      : ""));
    }
    Out += "  }\n";
  }

  for (const AgEdge &E : G.edges()) {
    if (E.From == InvalidNode) // freelisted (retired) edge slot
      continue;
    if (Skipped.count(E.From) || Skipped.count(E.To))
      continue;
    const char *Style = "solid";
    const char *Extra = "";
    switch (E.Kind) {
    case EdgeKind::Causal:
      Style = "solid";
      break;
    case EdgeKind::HappensIn:
      if (!Opts.IncludeHappensIn)
        continue;
      Style = "dotted";
      Extra = ", arrowhead=open, color=gray50";
      break;
    case EdgeKind::Binding:
      Style = "dashed";
      Extra = ", dir=back, color=gray30";
      break;
    case EdgeKind::Relation:
      Style = "dashed";
      Extra = ", color=blue3, fontcolor=blue3";
      break;
    }
    if (E.Label.empty())
      Out += strFormat("  n%u -> n%u [style=%s%s];\n", E.From, E.To, Style,
                       Extra);
    else
      Out += strFormat("  n%u -> n%u [style=%s%s, label=\"%s\"];\n", E.From,
                       E.To, Style, Extra, escapeString(E.Label.view()).c_str());
  }

  Out += "}\n";
  return Out;
}
