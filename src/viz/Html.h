//===- Html.h - self-contained HTML Async Graph viewer ----------*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders an Async Graph as a single self-contained HTML page — the
/// equivalent of the paper artifact's visualization website
/// (asyncgraph.github.io), which renders AsyncG's dumped log. The page
/// embeds the JSON dump and a small renderer: ticks become columns,
/// nodes are glyph chips (□ ○ ★ △) with warning highlighting, and
/// hovering a node lists its edges.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_VIZ_HTML_H
#define ASYNCG_VIZ_HTML_H

#include "ag/Graph.h"

#include <string>

namespace asyncg {
namespace viz {

/// Renders \p G as a standalone HTML document.
std::string toHtml(const ag::AsyncGraph &G,
                   const std::string &Title = "Async Graph");

} // namespace viz
} // namespace asyncg

#endif // ASYNCG_VIZ_HTML_H
