//===- JsonDump.cpp - JSON serialization of Async Graphs ----------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "viz/JsonDump.h"

#include "support/JsonWriter.h"

#include <cstdio>

using namespace asyncg;
using namespace asyncg::viz;
using namespace asyncg::ag;

std::string asyncg::viz::toJson(const AsyncGraph &G) {
  JsonWriter W;
  W.beginObject();

  W.key("ticks");
  W.beginArray();
  for (const AgTick &T : G.ticks()) {
    if (T.Retired)
      continue;
    W.beginObject();
    W.field("index", static_cast<uint64_t>(T.Index));
    W.field("phase", jsrt::phaseKindName(T.Phase));
    W.key("nodes");
    W.beginArray();
    for (NodeId N : T.Nodes)
      W.value(static_cast<uint64_t>(N));
    W.endArray();
    W.endObject();
  }
  W.endArray();

  W.key("nodes");
  W.beginArray();
  for (const AgNode &N : G.nodes()) {
    if (N.Id == InvalidNode) // freelisted (retired) node slot
      continue;
    W.beginObject();
    W.field("id", static_cast<uint64_t>(N.Id));
    W.field("kind", nodeKindName(N.Kind));
    W.field("tick", static_cast<uint64_t>(N.Tick));
    W.field("label", N.Label);
    W.field("loc", N.Loc.str());
    W.field("api", jsrt::apiKindName(N.Api));
    if (N.Obj != 0)
      W.field("obj", static_cast<uint64_t>(N.Obj));
    if (N.Sched != 0)
      W.field("sched", static_cast<uint64_t>(N.Sched));
    if (!N.Event.empty())
      W.field("event", N.Event);
    if (N.Internal)
      W.field("internal", true);
    if (N.Kind == NodeKind::OB)
      W.field("promise", N.IsPromise);
    if (N.Kind == NodeKind::CT)
      W.field("hadEffect", N.HadEffect);
    if (N.Kind == NodeKind::CR) {
      W.field("execCount", static_cast<uint64_t>(N.ExecCount));
      if (N.Removed)
        W.field("removed", true);
    }
    W.endObject();
  }
  W.endArray();

  W.key("edges");
  W.beginArray();
  for (const AgEdge &E : G.edges()) {
    if (E.From == InvalidNode) // freelisted (retired) edge slot
      continue;
    W.beginObject();
    W.field("from", static_cast<uint64_t>(E.From));
    W.field("to", static_cast<uint64_t>(E.To));
    W.field("kind", edgeKindName(E.Kind));
    if (!E.Label.empty())
      W.field("label", E.Label);
    W.endObject();
  }
  W.endArray();

  W.key("warnings");
  W.beginArray();
  for (const Warning &Wn : G.warnings()) {
    W.beginObject();
    W.field("category", bugCategoryName(Wn.Category));
    W.field("message", Wn.Message);
    W.field("loc", Wn.Loc.str());
    if (Wn.Node != InvalidNode)
      W.field("node", static_cast<uint64_t>(Wn.Node));
    W.field("tick", static_cast<uint64_t>(Wn.Tick));
    W.endObject();
  }
  W.endArray();

  W.key("stats");
  W.beginObject();
  W.field("ticks", static_cast<uint64_t>(G.liveTickCount()));
  W.field("nodes", static_cast<uint64_t>(G.nodeCount()));
  W.field("edges", static_cast<uint64_t>(G.liveEdgeCount()));
  W.field("warnings", static_cast<uint64_t>(G.warnings().size()));
  W.endObject();

  const RetiredSummary &R = G.retired();
  if (R.Ticks != 0) {
    W.key("retired");
    W.beginObject();
    W.field("ticks", R.Ticks);
    W.field("nodes", R.Nodes);
    W.field("edges", R.Edges);
    W.key("byKind");
    W.beginObject();
    for (int K = 0; K != 4; ++K)
      if (R.ByKind[K] != 0)
        W.field(nodeKindName(static_cast<NodeKind>(K)), R.ByKind[K]);
    W.endObject();
    W.endObject();
  }

  W.endObject();
  return W.take();
}

bool asyncg::viz::writeFile(const std::string &Path,
                            const std::string &Contents) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  size_t Written = std::fwrite(Contents.data(), 1, Contents.size(), F);
  std::fclose(F);
  return Written == Contents.size();
}
