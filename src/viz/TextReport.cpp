//===- TextReport.cpp - plain-text Async Graph reports -------------------------===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//

#include "viz/TextReport.h"

#include "support/Format.h"

#include <set>

using namespace asyncg;
using namespace asyncg::viz;
using namespace asyncg::ag;

namespace {

const char *glyphOf(NodeKind K) {
  switch (K) {
  case NodeKind::CR:
    return "[]";
  case NodeKind::CE:
    return "()";
  case NodeKind::CT:
    return "**";
  case NodeKind::OB:
    return "/\\";
  }
  return "??";
}

} // namespace

std::string asyncg::viz::toText(const AsyncGraph &G,
                                const TextOptions &Opts) {
  std::set<NodeId> Warned;
  for (const Warning &W : G.warnings())
    if (W.Node != InvalidNode)
      Warned.insert(W.Node);

  std::string Out;
  const RetiredSummary &Retired = G.retired();
  if (Retired.Ticks != 0)
    Out += strFormat("[%llu retired tick(s): %llu nodes, %llu edges "
                     "folded into summary]\n",
                     static_cast<unsigned long long>(Retired.Ticks),
                     static_cast<unsigned long long>(Retired.Nodes),
                     static_cast<unsigned long long>(Retired.Edges));
  size_t Rendered = 0;
  size_t LiveTicks = G.liveTickCount();
  for (const AgTick &T : G.ticks()) {
    if (T.Retired)
      continue;
    if (Opts.MaxTicks != 0 && Rendered == Opts.MaxTicks) {
      Out += strFormat("... (%zu more ticks)\n", LiveTicks - Rendered);
      break;
    }
    ++Rendered;
    Out += T.name() + "\n";
    for (NodeId N : T.Nodes) {
      const AgNode &Node = G.node(N);
      if (!Opts.IncludeInternal && Node.Internal)
        continue;
      std::string Line =
          strFormat("  %s %s", glyphOf(Node.Kind), Node.Label.c_str());
      // Key relations rendered inline.
      for (uint32_t E : G.outEdges(N)) {
        const AgEdge &Edge = G.edge(E);
        if (Edge.Kind == EdgeKind::Binding)
          Line += strFormat("  ~~> %s", G.node(Edge.To).Label.c_str());
        else if (Edge.Kind == EdgeKind::Relation && !Edge.Label.empty())
          Line += strFormat("  --%s--> %s", Edge.Label.c_str(),
                            G.node(Edge.To).Label.c_str());
      }
      if (Warned.count(N))
        Line += "   (!)";
      Out += Line + "\n";
    }
  }
  return Out;
}

std::string asyncg::viz::warningsReport(const AsyncGraph &G) {
  if (G.warnings().empty())
    return "no warnings\n";
  std::string Out;
  for (const Warning &W : G.warnings())
    Out += strFormat("warning[%s] @ %s (t%u): %s\n",
                     bugCategoryName(W.Category), W.Loc.str().c_str(),
                     W.Tick, W.Message.c_str());
  return Out;
}
