//===- SpscRing.h - Lock-free single-producer/single-consumer ring -*- C++ -*-===//
//
// Part of AsyncG-C++. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-capacity, cache-line-padded, lock-free SPSC ring buffer. The
/// async instrumentation pipeline (ag/AsyncPipeline.h) uses it to hand
/// compact binary trace records from the event-loop thread to the graph
/// builder thread without locks or allocation on either side.
///
/// Design (the classic bounded SPSC queue with cached peer cursors):
///  - Head (consumer cursor) and Tail (producer cursor) are monotonically
///    increasing uint64_t values; slot = cursor & (capacity - 1). They
///    live on separate cache lines so the producer and consumer don't
///    false-share.
///  - Each side keeps a *cached* copy of the other side's cursor and only
///    re-reads the shared atomic when the cached value suggests the ring
///    is full (producer) or empty (consumer). In steady state a push or a
///    batched pop touches exactly one shared cache line.
///  - All element types must be trivially copyable: batch transfers are
///    plain memcpy-able loops with no per-element synchronization.
///
/// Synchronization contract: the release store of Tail publishes every
/// element write (and anything else the producer did before pushing, e.g.
/// symbol-table interning) to the consumer's acquire load of Tail — and
/// symmetrically for Head, so the producer can reuse slots the consumer
/// vacated.
///
//===----------------------------------------------------------------------===//

#ifndef ASYNCG_SUPPORT_SPSCRING_H
#define ASYNCG_SUPPORT_SPSCRING_H

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>

namespace asyncg {

/// Rounds \p N up to the next power of two (min 2).
constexpr size_t roundUpPow2(size_t N) {
  size_t P = 2;
  while (P < N)
    P <<= 1;
  return P;
}

template <typename T> class SpscRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "SpscRing elements must be trivially copyable");

public:
  /// Creates a ring holding \p Capacity elements (rounded up to a power of
  /// two).
  explicit SpscRing(size_t Capacity)
      : Mask(roundUpPow2(Capacity) - 1),
        Buf(std::make_unique<T[]>(Mask + 1)) {}

  SpscRing(const SpscRing &) = delete;
  SpscRing &operator=(const SpscRing &) = delete;

  size_t capacity() const { return Mask + 1; }

  /// Producer: pushes one element. Returns false when the ring is full.
  bool tryPush(const T &V) { return tryPushAll(&V, 1); }

  /// Producer: pushes all \p N elements or none (events spanning several
  /// records must never be torn). Returns false when fewer than \p N slots
  /// are free. \p N must not exceed capacity().
  bool tryPushAll(const T *Items, size_t N) {
    assert(N <= capacity() && "batch larger than the ring");
    uint64_t T0 = Tail.load(std::memory_order_relaxed);
    if (T0 + N - CachedHead > capacity()) {
      CachedHead = Head.load(std::memory_order_acquire);
      if (T0 + N - CachedHead > capacity())
        return false;
    }
    for (size_t I = 0; I != N; ++I)
      Buf[(T0 + I) & Mask] = Items[I];
    Tail.store(T0 + N, std::memory_order_release);
    return true;
  }

  /// Consumer: pops one element. Returns false when the ring is empty.
  bool tryPop(T &Out) { return tryPopBatch(&Out, 1) == 1; }

  /// Consumer: pops up to \p Max elements into \p Out; returns the count
  /// (0 when empty).
  size_t tryPopBatch(T *Out, size_t Max) {
    uint64_t H0 = Head.load(std::memory_order_relaxed);
    if (CachedTail == H0) {
      CachedTail = Tail.load(std::memory_order_acquire);
      if (CachedTail == H0)
        return 0;
    }
    size_t N = static_cast<size_t>(CachedTail - H0);
    if (N > Max)
      N = Max;
    for (size_t I = 0; I != N; ++I)
      Out[I] = Buf[(H0 + I) & Mask];
    Head.store(H0 + N, std::memory_order_release);
    return N;
  }

  /// Approximate occupancy; exact only when called from the producer (the
  /// consumer can still drain concurrently) or when both sides are quiet.
  size_t sizeApprox() const {
    uint64_t T0 = Tail.load(std::memory_order_acquire);
    uint64_t H0 = Head.load(std::memory_order_acquire);
    return static_cast<size_t>(T0 - H0);
  }

  bool emptyApprox() const { return sizeApprox() == 0; }

private:
  /// Consumer cursor; owned by the consumer, read by the producer.
  alignas(64) std::atomic<uint64_t> Head{0};
  /// Producer's cached view of Head (producer-private line).
  alignas(64) uint64_t CachedHead = 0;
  /// Producer cursor; owned by the producer, read by the consumer.
  alignas(64) std::atomic<uint64_t> Tail{0};
  /// Consumer's cached view of Tail (consumer-private line).
  alignas(64) uint64_t CachedTail = 0;

  const size_t Mask;
  std::unique_ptr<T[]> Buf;
};

} // namespace asyncg

#endif // ASYNCG_SUPPORT_SPSCRING_H
